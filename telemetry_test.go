package espresso

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"espresso/internal/pindex"
)

// TestTelemetryPoolGaugeBurst pins the ctx-pool gauges: a borrow burst
// past maxIdleCtxs must be visible in the snapshot as created = burst,
// idle = cap, retired = burst − cap.
func TestTelemetryPoolGaugeBurst(t *testing.T) {
	rt, err := Open(Options{Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.CreateHeap("pool", 8<<20); err != nil {
		t.Fatal(err)
	}
	m, err := rt.OpenPMap("pool", "burst", PMapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const burst = maxIdleCtxs + 8
	ctxs := make([]*pindex.Ctx, 0, burst)
	for i := 0; i < burst; i++ {
		ctxs = append(ctxs, m.borrow())
	}
	for _, c := range ctxs {
		m.put(c)
	}
	snap := rt.Metrics()
	if got := snap.Gauges["pmap.burst.ctx.created"]; got != burst {
		t.Fatalf("created gauge = %d, want %d", got, burst)
	}
	if got := snap.Gauges["pmap.burst.ctx.idle"]; got != maxIdleCtxs {
		t.Fatalf("idle gauge = %d, want %d", got, maxIdleCtxs)
	}
	if got := snap.Gauges["pmap.burst.ctx.retired"]; got != burst-maxIdleCtxs {
		t.Fatalf("retired gauge = %d, want %d", got, burst-maxIdleCtxs)
	}
}

// TestTelemetryConcurrentFoldExactTotals is the end-to-end race check of
// the telemetry design: 8 mutators churn allocations, barriered ref
// stores, and durable index puts while concurrent collections cycle and
// a folding goroutine snapshots continuously, asserting every counter is
// monotonic across folds. When the dust settles the deltas must equal
// the oracle exactly — lock-free cells may not lose a single update.
func TestTelemetryConcurrentFoldExactTotals(t *testing.T) {
	rt, err := Open(Options{Telemetry: true, ConcurrentGC: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.CreateHeap("churn", 48<<20); err != nil {
		t.Fatal(err)
	}
	// Big table + high load factor: no grows, so the entry-allocation
	// oracle below stays exact (index.grows is asserted zero).
	pm, err := rt.OpenPMap("churn", "ops", PMapOptions{InitialBuckets: 1024, MaxLoadFactor: 64})
	if err != nil {
		t.Fatal(err)
	}
	node := MustClass("telemetry/Node", nil,
		RefTo("next", "telemetry/Node"), Long("v"))
	nextF := rt.MustResolveField(node, "next")

	const goroutines = 8
	const perG = 150

	muts := make([]*Mutator, goroutines)
	for g := range muts {
		if muts[g], err = rt.NewMutator(); err != nil {
			t.Fatal(err)
		}
	}
	snap0 := rt.Metrics()

	done := make(chan struct{})
	var gcWG sync.WaitGroup
	gcWG.Add(1)
	go func() {
		defer gcWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := rt.PersistentGCConcurrent("churn"); err != nil {
				t.Errorf("concurrent GC: %v", err)
				return
			}
		}
	}()

	foldDone := make(chan struct{})
	var foldWG sync.WaitGroup
	foldWG.Add(1)
	go func() {
		defer foldWG.Done()
		prev := map[string]uint64{}
		for {
			select {
			case <-foldDone:
				return
			default:
			}
			s := rt.Metrics()
			for name, v := range s.Counters {
				if v < prev[name] {
					t.Errorf("counter %s went backwards: %d -> %d", name, prev[name], v)
					return
				}
				prev[name] = v
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := muts[g]
			base := int64(g) << 32
			for i := int64(0); i < perG; i++ {
				var opErr error
				m.Do(func() {
					n1, err := m.PNew(node, 0)
					if err != nil {
						opErr = err
						return
					}
					n2, err := m.PNew(node, 0)
					if err != nil {
						opErr = err
						return
					}
					opErr = m.SetRefFast(n1, nextF, n2)
				})
				if opErr == nil {
					opErr = pm.Put(base+i, 0)
				}
				if opErr != nil {
					errs[g] = fmt.Errorf("iter %d: %w", i, opErr)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(done)
	gcWG.Wait()
	close(foldDone)
	foldWG.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("mutator %d: %v", g, err)
		}
	}
	for _, m := range muts {
		m.Release()
	}

	snap1 := rt.Metrics()
	delta := func(name string) uint64 { return snap1.Counters[name] - snap0.Counters[name] }
	const ops = goroutines * perG
	if got := delta("refstore.stores"); got != ops {
		t.Fatalf("refstore.stores delta = %d, want %d", got, ops)
	}
	if got := delta("index.puts"); got != ops {
		t.Fatalf("index.puts delta = %d, want %d", got, ops)
	}
	if got := delta("index.grows"); got != 0 {
		t.Fatalf("index.grows delta = %d, want 0 (oracle assumes no table growth)", got)
	}
	// Each iteration allocates two nodes plus at least one index entry.
	// The entry count is a lower bound, not an equality: a Put that loses
	// its link CAS under contention allocates a fresh entry for the retry,
	// so the floor proves no update was lost without assuming a quiescent
	// insert path.
	if got := delta("alloc.objects"); got < 3*ops {
		t.Fatalf("alloc.objects delta = %d, want >= %d", got, 3*ops)
	}
	if delta("gc.cycles") == 0 {
		t.Fatal("no concurrent collection completed during the churn")
	}
}

// TestShardedTelemetryAggregation pins ShardedPMap.Metrics: counters sum
// across shard registries and shard-local spans come back re-tagged with
// their shard index.
func TestShardedTelemetryAggregation(t *testing.T) {
	rt, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.OpenSharded("agg", ShardedPMapOptions{Shards: 2, Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 100
	for i := int64(0); i < keys; i++ {
		if err := m.Put(i*7919, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.GCShard(0); err != nil {
		t.Fatal(err)
	}
	snap := m.Metrics()
	if got := snap.Counters["index.puts"]; got != keys {
		t.Fatalf("aggregated index.puts = %d, want %d", got, keys)
	}
	opens := 0
	gcTagged := false
	for _, sp := range snap.Spans {
		if sp.Shard >= m.NumShards() {
			t.Fatalf("span %s carries shard tag %d >= %d", sp.Name, sp.Shard, m.NumShards())
		}
		switch {
		case sp.Name == "shard.open":
			// One set-level span covering the whole joined open; set-level
			// events keep Shard -1 through aggregation.
			opens++
			if sp.Shard != -1 {
				t.Fatalf("shard.open span tagged %d, want -1 (set-level)", sp.Shard)
			}
		case sp.Shard < 0:
			t.Fatalf("shard-local span %s survived aggregation untagged", sp.Name)
		}
		if strings.HasPrefix(sp.Name, "gc.") && sp.Shard == 0 {
			gcTagged = true
		}
	}
	if opens != 1 {
		t.Fatalf("saw %d shard.open spans, want 1", opens)
	}
	if !gcTagged {
		t.Fatal("GCShard(0) left no gc.* span tagged with shard 0")
	}
	if got := snap.Gauges["shardedpmap.agg.ctx.created"]; got < 1 {
		t.Fatalf("ctx.created gauge = %d, want >= 1", got)
	}
	if s0 := m.ShardMetrics(0); s0.Counters["gc.cycles"] != 1 {
		t.Fatalf("shard 0 gc.cycles = %d, want 1", s0.Counters["gc.cycles"])
	}
}

// TestTelemetryHTTPFacade boots a runtime with the opt-in listener,
// scrapes both endpoints through a real HTTP round trip, and verifies
// Close tears the listener down.
func TestTelemetryHTTPFacade(t *testing.T) {
	rt, err := Open(Options{TelemetryAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := rt.TelemetryAddr()
	if addr == "" {
		t.Fatal("TelemetryAddr empty with TelemetryAddr option set")
	}
	if err := rt.CreateHeap("web", 8<<20); err != nil {
		t.Fatal(err)
	}
	person := MustClass("telemetry/Person", nil, Long("id"))
	if _, err := rt.PNew(person); err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if body := get("/metrics"); !strings.Contains(body, "espresso_alloc_objects_total") {
		t.Fatalf("/metrics misses espresso_alloc_objects_total:\n%s", body)
	}
	if body := get("/vars"); !strings.Contains(body, `"alloc.objects"`) {
		t.Fatalf("/vars misses alloc.objects:\n%s", body)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	client := http.Client{Timeout: 2 * time.Second}
	if _, err := client.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("listener still serving after Close")
	}
}
