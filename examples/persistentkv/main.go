// Persistentkv builds a crash-safe key-value store on PJH collections:
// a persistent hash map whose mutations run in undo-log transactions,
// surviving a simulated power loss mid-update.
//
//	go run ./examples/persistentkv
package main

import (
	"fmt"
	"log"

	"espresso/internal/klass"
	"espresso/internal/nvm"
	"espresso/internal/pcollections"
	"espresso/internal/pheap"
)

func main() {
	heap, err := pheap.Create(klass.NewRegistry(), pheap.Config{
		DataSize: 8 << 20,
		Mode:     nvm.Tracked, // crash images available
	})
	if err != nil {
		log.Fatal(err)
	}
	world, err := pcollections.NewWorld(heap)
	if err != nil {
		log.Fatal(err)
	}

	kv, err := world.NewMap(64)
	if err != nil {
		log.Fatal(err)
	}
	if err := heap.SetRoot("kvstore", kv); err != nil {
		log.Fatal(err)
	}

	// Store 100 committed entries.
	for k := int64(0); k < 100; k++ {
		box, err := world.NewLong(k * 10)
		if err != nil {
			log.Fatal(err)
		}
		if err := world.MapPut(kv, k, box); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("committed %d entries\n", world.MapLen(kv))

	// Power loss: take a crash image with an arbitrary subset of
	// unflushed lines, as real NVM would keep.
	img := heap.Device().CrashImage(nvm.CrashRandomEviction, 42)
	fmt.Println("simulated power loss; rebooting from the crash image")

	reloaded, err := pheap.Load(nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked}), klass.NewRegistry())
	if err != nil {
		log.Fatal(err)
	}
	world2, err := pcollections.NewWorld(reloaded) // rolls back any open tx
	if err != nil {
		log.Fatal(err)
	}
	kv2, ok := reloaded.GetRoot("kvstore")
	if !ok {
		log.Fatal("kv root lost")
	}
	good := 0
	for k := int64(0); k < 100; k++ {
		box, ok := world2.MapGet(kv2, k)
		if ok && world2.LongValue(box) == k*10 {
			good++
		}
	}
	fmt.Printf("after reboot: %d/%d committed entries intact, map size %d\n",
		good, 100, world2.MapLen(kv2))
	if good != 100 {
		log.Fatal("data loss detected!")
	}
	fmt.Println("kv store survived the crash")
}
