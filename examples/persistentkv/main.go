// Persistentkv builds a crash-safe concurrent key-value store on the
// durable lock-free persistent index (internal/pindex): several
// goroutines insert and delete in parallel, the machine "loses power"
// with NO shutdown flush at all, and the reloaded store contains exactly
// the committed mappings.
//
// # The guarantee (durable linearizability)
//
// Every mutation publishes with one CAS whose slot carries a dirty mark
// until the publishing thread — or any reader that observes it — flushes
// the cache line and retires the mark. An operation returns only after
// the link it depends on is persisted, so:
//
//   - when Put returns, the mapping survives any later crash (no
//     FlushObject, no FlushAll — the adversarial CrashFlushedOnly image
//     below keeps only explicitly flushed lines);
//   - when Delete returns, the key can never resurrect;
//   - an operation in flight at the crash lands atomically: the mapping
//     is either entirely there or entirely absent, never torn.
//
// # Recovery semantics
//
// Reopening the index (pindex.Open / Runtime.OpenPMap) runs a one-pass
// recovery walk: links whose dirty mark persisted are retired (the link
// itself was already durable), nodes whose delete mark persisted are
// physically unlinked, and the entry count is rebuilt. Nodes whose
// publishing CAS never persisted are unreachable from the reloaded image
// by construction — they are ordinary garbage for the next persistent
// collection.
//
//	go run ./examples/persistentkv
package main

import (
	"fmt"
	"log"
	"sync"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
	"espresso/internal/pindex"
)

const (
	goroutines = 4
	perG       = 50
)

func main() {
	heap, err := pheap.Create(klass.NewRegistry(), pheap.Config{
		DataSize: 8 << 20,
		Mode:     nvm.Tracked, // crash images available
	})
	if err != nil {
		log.Fatal(err)
	}
	ix, err := pindex.Open(heap, pindex.NoPin{}, "kvstore", pindex.Options{})
	if err != nil {
		log.Fatal(err)
	}
	boxK, err := heap.Registry().Define(klass.MustInstance("kv/Box", nil,
		klass.Field{Name: "v", Type: layout.FTLong}))
	if err != nil {
		log.Fatal(err)
	}

	// Four goroutines store their own key ranges concurrently — each with
	// its own lock-free operation context — then delete every fourth key.
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := ix.NewCtx()
			defer c.Release()
			for i := 0; i < perG; i++ {
				key := int64(g*1000 + i)
				// Value box on the mutator's own PLAB — the same lock-free
				// allocation path the index's nodes take.
				box, err := c.Allocator().Alloc(boxK, 0)
				if err != nil {
					log.Fatal(err)
				}
				heap.SetWord(box, layout.FieldOff(0), uint64(key*10))
				heap.FlushRange(box, 0, boxK.SizeOf(0))
				if err := c.Put(key, box); err != nil {
					log.Fatal(err)
				}
				if i%4 == 3 {
					if !c.Delete(key) {
						log.Fatal("delete missed its own insert")
					}
				}
			}
		}(g)
	}
	wg.Wait()
	fmt.Printf("committed %d entries from %d goroutines (no shutdown flush!)\n",
		ix.Len(), goroutines)

	// Power loss, worst case: only explicitly flushed lines survive.
	img := heap.Device().CrashImage(nvm.CrashFlushedOnly, 0)
	fmt.Println("simulated power loss; rebooting from the crash image")

	reloaded, err := pheap.Load(nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked}), klass.NewRegistry())
	if err != nil {
		log.Fatal(err)
	}
	ix2, err := pindex.Open(reloaded, pindex.NoPin{}, "kvstore", pindex.Options{})
	if err != nil {
		log.Fatal(err)
	}
	c := ix2.NewCtx()
	defer c.Release()
	good, want := 0, 0
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			key := int64(g*1000 + i)
			box, ok := c.Get(key)
			if i%4 == 3 {
				if ok {
					log.Fatalf("deleted key %d resurrected!", key)
				}
				continue
			}
			want++
			if ok && int64(reloaded.GetWord(box, layout.FieldOff(0))) == key*10 {
				good++
			}
		}
	}
	fmt.Printf("after reboot: %d/%d committed entries intact, %d deletes honored, index size %d\n",
		good, want, goroutines*perG-want, ix2.Len())
	if good != want || ix2.Len() != want {
		log.Fatal("data loss detected!")
	}
	fmt.Println("kv store survived the crash with exactly the committed keys")
}
