// Shardedkv runs a range-partitioned sharded map (internal/pshard)
// through its full life cycle: four independent persistent heaps behind
// one key space, concurrent mutators, a staggered per-shard collection,
// a worst-case power loss, and a parallel-recovery reboot that must
// produce exactly the committed mappings.
//
// # Why shards
//
// Each shard owns its own device, region-top table, redo log, index, GC
// phase word, and safepoint domain — no lock, cache line, or fence is
// shared between shards. That buys two things this example demonstrates:
//
//   - GCShard(i) pauses only shard i's operations; the other three
//     shards keep serving (staggered pauses instead of stacked ones);
//   - reopening the set fans per-shard recovery out across workers, so
//     restart time scales with the slowest shard, not the sum.
//
// # The crash rule
//
// The set's manifest (shard count, hash-range table, generation) is
// fully persisted before any shard heap exists, so a reboot re-derives
// the complete shard list from the manifest alone — even out of a crash
// that strands a partially-created set. The crash below is the
// adversarial CrashFlushedOnly image per device: only explicitly flushed
// lines survive, on every shard independently.
//
//	go run ./examples/shardedkv
package main

import (
	"fmt"
	"log"
	"sync"

	"espresso/internal/nvm"
	"espresso/internal/pshard"
)

const (
	shards     = 4
	goroutines = 4
	perG       = 200
)

func main() {
	store := pshard.NewMemStore()
	set, err := pshard.OpenSet(store, "kv", pshard.Options{
		Shards:        shards,
		ShardDataSize: 4 << 20,
		Mode:          nvm.Tracked, // crash images available
	})
	if err != nil {
		log.Fatal(err)
	}

	// Four mutators, each with its own operation context, write disjoint
	// key ranges; keys route to shards by hash range, so every goroutine
	// touches every shard. Every fourth key is deleted again.
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := set.NewCtx()
			defer c.Release()
			for i := 0; i < perG; i++ {
				key := int64(g*100000 + i)
				if err := c.Put(key, key*10); err != nil {
					log.Fatal(err)
				}
				if i%4 == 3 && !c.Delete(key) {
					log.Fatal("delete missed its own insert")
				}
			}
		}(g)
	}
	wg.Wait()
	fmt.Printf("committed %d entries across %d shards (no shutdown flush!)\n",
		set.Len(), set.NumShards())

	// A staggered collection: shard 1 compacts under its own world lock
	// while shards 0, 2, 3 stay fully available (their devices see zero
	// traffic during it — pshard's tests assert exactly that).
	if _, err := set.GCShard(1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("collected shard 1; sibling shards never paused")

	// Power loss, worst case, on every device at once: only explicitly
	// flushed lines survive, per shard independently.
	images := map[string][]byte{
		pshard.ManifestName("kv"): crash(store, pshard.ManifestName("kv")),
	}
	for i := 0; i < shards; i++ {
		name := pshard.ShardHeapName("kv", i)
		images[name] = crash(store, name)
	}
	fmt.Println("simulated power loss; rebooting from per-shard crash images")

	// Reboot: a fresh store holding only the crash images. OpenSet fans
	// recovery out across 4 workers — heap load, interrupted-GC repair,
	// and index recovery per shard, in parallel.
	store2 := pshard.NewMemStore()
	for name, img := range images {
		if err := store2.Register(name, nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})); err != nil {
			log.Fatal(err)
		}
	}
	set2, err := pshard.OpenSet(store2, "kv", pshard.Options{RecoveryWorkers: 4})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < set2.NumShards(); i++ {
		rec := set2.Shard(i).Recovery()
		fmt.Printf("  shard %d recovered: %d entries, %d device reads, gc-repair=%v\n",
			i, set2.Shard(i).Index().Len(), rec.Dev.Reads, rec.GCRecovered)
	}

	// The reloaded set must contain exactly the committed mappings.
	c := set2.NewCtx()
	defer c.Release()
	good, want := 0, 0
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			key := int64(g*100000 + i)
			v, ok := c.Get(key)
			if i%4 == 3 {
				if ok {
					log.Fatalf("deleted key %d resurrected!", key)
				}
				continue
			}
			want++
			if ok && v == key*10 {
				good++
			}
		}
	}
	fmt.Printf("after reboot: %d/%d committed entries intact, deletes honored, set size %d\n",
		good, want, set2.Len())
	if good != want || set2.Len() != want {
		log.Fatal("data loss detected!")
	}
	fmt.Println("sharded kv survived the crash with exactly the committed keys")
}

// crash takes the worst-case power-loss image of one named device.
func crash(store *pshard.MemStore, name string) []byte {
	dev, err := store.Open(name)
	if err != nil {
		log.Fatal(err)
	}
	return dev.CrashImage(nvm.CrashFlushedOnly, 0)
}
