// Socialgraph demonstrates mixed DRAM/NVM object graphs (paper §3.2/§3.4):
// persistent user profiles whose "session" field points at volatile
// objects — legal under the default safety level, kept consistent by the
// NVM remembered set during volatile GCs, and nullified by the zeroing
// scan after a reboot.
//
//	go run ./examples/socialgraph
package main

import (
	"fmt"
	"log"
	"os"

	"espresso"
)

var (
	user = espresso.MustClass("User", nil,
		espresso.Long("id"),
		espresso.Str("handle"),
		espresso.RefTo("bestFriend", "User"),
		espresso.RefTo("session", "Session"), // may point into DRAM!
	)
	session = espresso.MustClass("Session", nil,
		espresso.Long("loginTime"),
	)
)

func main() {
	dir, err := os.MkdirTemp("", "espresso-social-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	rt, err := espresso.Open(espresso.Options{HeapDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.CreateHeap("social", 4<<20); err != nil {
		log.Fatal(err)
	}

	// Two persistent users who are best friends.
	alice, _ := rt.PNew(user)
	bob, _ := rt.PNew(user)
	aname, _ := rt.NewString("alice", true)
	bname, _ := rt.NewString("bob", true)
	rt.SetLong(alice, "id", 1)
	rt.SetRef(alice, "handle", aname)
	rt.SetRef(alice, "bestFriend", bob)
	rt.SetLong(bob, "id", 2)
	rt.SetRef(bob, "handle", bname)
	rt.SetRef(bob, "bestFriend", alice)

	// Alice has a live session — a VOLATILE object referenced from NVM.
	sess, _ := rt.New(session)
	rt.SetLong(sess, "loginTime", 1718000000)
	rt.SetRef(alice, "session", sess)
	fmt.Println("alice's session lives in DRAM, referenced from NVM")

	// Churn the young generation until scavenges happen: the session must
	// survive them via the NVM remembered set, and the NVM slot must
	// follow the object as it moves.
	for i := 0; i < 300000; i++ {
		if _, err := rt.New(session); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after %d scavenges: ", rt.Volatile().MinorGCs)
	s, _ := rt.GetRef(alice, "session")
	lt, _ := rt.GetLong(s, "loginTime")
	fmt.Printf("session alive, loginTime=%d\n", lt)

	rt.FlushTransitive(alice)
	rt.SetRoot("alice", alice)
	rt.SyncHeap("social")

	// Reboot under zeroing safety: the stale DRAM pointer is nullified;
	// the persistent graph is intact.
	rt2, err := espresso.Open(espresso.Options{HeapDir: dir, Safety: espresso.Zeroing})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt2.LoadHeap("social"); err != nil {
		log.Fatal(err)
	}
	a2, _ := rt2.GetRoot("alice")
	s2, _ := rt2.GetRef(a2, "session")
	if s2 != 0 {
		log.Fatal("stale DRAM pointer survived the zeroing load!")
	}
	fmt.Println("after reboot (zeroing safety): session pointer is null, as it must be")
	b2, _ := rt2.GetRef(a2, "bestFriend")
	h2ref, _ := rt2.GetRef(b2, "handle")
	h2s, _ := rt2.GetString(h2ref)
	back, _ := rt2.GetRef(b2, "bestFriend")
	fmt.Printf("persistent graph intact: alice ↔ %s (cycle closes: %v)\n", h2s, back == a2)
}
