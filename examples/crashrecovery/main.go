// Crashrecovery kills the crash-consistent garbage collector mid-compact
// and shows §4.3's recovery completing the collection at the next load:
// the object graph is bit-for-bit intact afterwards.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pgc"
	"espresso/internal/pheap"
)

func main() {
	reg := klass.NewRegistry()
	heap, err := pheap.Create(reg, pheap.Config{DataSize: 4 << 20, Mode: nvm.Tracked})
	if err != nil {
		log.Fatal(err)
	}
	node, err := reg.Define(klass.MustInstance("Node", nil,
		klass.Field{Name: "value", Type: layout.FTLong},
		klass.Field{Name: "next", Type: layout.FTRef, RefKlass: "Node"},
	))
	if err != nil {
		log.Fatal(err)
	}

	// A linked list of 1000 live nodes, interleaved with garbage.
	var head layout.Ref
	for i := 0; i < 1000; i++ {
		if _, err := heap.Alloc(node, 0); err != nil { // garbage
			log.Fatal(err)
		}
		ref, err := heap.Alloc(node, 0)
		if err != nil {
			log.Fatal(err)
		}
		heap.SetWord(ref, layout.FieldOff(0), uint64(i))
		heap.SetWord(ref, layout.FieldOff(1), uint64(head))
		head = ref
	}
	heap.SetRoot("list", head)
	heap.Device().FlushAll()
	fmt.Println("built 1000-node list (plus 1000 garbage nodes)")

	// Start a collection and kill it at its 200th flush — mid-compaction,
	// after the mark bitmap persisted and the heap was stamped active.
	base := heap.Device().Stats().Flushes
	heap.Device().SetFlushHook(func(n uint64) {
		if n == base+200 {
			panic("simulated power loss during GC")
		}
	})
	func() {
		defer func() {
			if r := recover(); r != nil {
				fmt.Printf("GC crashed: %v\n", r)
			}
		}()
		if _, err := pgc.Collect(heap, pgc.NoRoots{}); err != nil {
			log.Fatal(err)
		}
	}()
	heap.Device().SetFlushHook(nil)

	// Reboot from what actually reached NVM (random eviction of dirty lines).
	img := heap.Device().CrashImage(nvm.CrashRandomEviction, 7)
	reloaded, err := pheap.Load(nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked}), klass.NewRegistry())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded image: gcActive=%v (collection was interrupted)\n", reloaded.GCActive())

	res, err := pgc.Recover(reloaded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery finished the collection: %d live objects, %d moved\n",
		res.LiveObjects, res.MovedObjects)

	// Verify the list.
	head2, ok := reloaded.GetRoot("list")
	if !ok {
		log.Fatal("list root lost")
	}
	count, want := 0, uint64(999)
	for ref := head2; ref != layout.NullRef; {
		if v := reloaded.GetWord(ref, layout.FieldOff(0)); v != want {
			log.Fatalf("node %d holds %d, want %d", count, v, want)
		}
		want--
		count++
		ref = layout.Ref(reloaded.GetWord(ref, layout.FieldOff(1)))
	}
	fmt.Printf("list verified: %d nodes in order — graph intact after crash + recovery\n", count)
}
