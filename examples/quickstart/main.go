// Quickstart walks the paper's Figure 11: check for a heap, load it or
// create it, allocate persistent objects with pnew, register a root, and
// read everything back after a simulated reboot.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"espresso"
)

var person = espresso.MustClass("Person", nil,
	espresso.Long("id"),
	espresso.Str("name"),
)

func main() {
	dir, err := os.MkdirTemp("", "espresso-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// First process: create the heap and persist a Person.
	rt, err := espresso.Open(espresso.Options{HeapDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	if !rt.ExistsHeap("Jimmy") {
		fmt.Println("heap does not exist: creating it (Figure 11, else-branch)")
		if err := rt.CreateHeap("Jimmy", 1<<20); err != nil {
			log.Fatal(err)
		}
		p, err := rt.PNew(person) // Person p = pnew Person(...)
		if err != nil {
			log.Fatal(err)
		}
		name, _ := rt.NewString("Jimmy", true) // pnew String("Jimmy", true)
		rt.SetLong(p, "id", 1001)
		rt.SetRef(p, "name", name)
		rt.FlushObject(p) // persist the fields (§3.5)
		if err := rt.SetRoot("Jimmy_info", p); err != nil {
			log.Fatal(err)
		}
		if err := rt.SyncHeap("Jimmy"); err != nil {
			log.Fatal(err)
		}
		fmt.Println("persisted Person{id: 1001, name: \"Jimmy\"} and synced the heap image")
	}

	// Second process (fresh runtime, fresh registry — classes come back
	// from the Klass segment): load and fetch by root.
	rt2, err := espresso.Open(espresso.Options{HeapDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	if !rt2.ExistsHeap("Jimmy") {
		log.Fatal("heap lost")
	}
	if err := rt2.LoadHeap("Jimmy"); err != nil { // loadHeap("Jimmy")
		log.Fatal(err)
	}
	p, ok := rt2.GetRoot("Jimmy_info") // (Person) getRoot("Jimmy_info")
	if !ok {
		log.Fatal("root lost")
	}
	// The cast the paper writes as (Person): alias-aware checkcast.
	if err := rt2.CheckCast(p, "Person"); err != nil {
		log.Fatal(err)
	}
	id, _ := rt2.GetLong(p, "id")
	nameRef, _ := rt2.GetRef(p, "name")
	name, _ := rt2.GetString(nameRef)
	fmt.Printf("after reboot: Person{id: %d, name: %q}\n", id, name)
}
