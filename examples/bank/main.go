// Bank demonstrates the coarse-grained PJO programming model (paper §5):
// account entities managed through the JPA-compatible EntityManager API,
// with the backend database keeping data as persistent Java objects.
// Transfers are ACID transactions; the invariant (total balance) holds
// across commits.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"

	"espresso/internal/core"
	"espresso/internal/h2"
	"espresso/internal/jpa"
	"espresso/internal/nvm"
	"espresso/internal/pjo"
)

var account = jpa.MustEntityDef("Account", nil,
	jpa.FieldDef{Name: "owner", Kind: jpa.FStr},
	jpa.FieldDef{Name: "balance", Kind: jpa.FInt},
)

func main() {
	db, err := h2.New(16<<20, nvm.Direct)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := core.NewRuntime(core.Config{PJHDataSize: 16 << 20})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rt.CreateHeap("bank", 0); err != nil {
		log.Fatal(err)
	}
	em := pjo.NewProvider(rt, db)
	if err := em.EnsureSchema(account); err != nil {
		log.Fatal(err)
	}

	// Open 10 accounts with 1000 each (em.persist inside a transaction,
	// exactly the Figure 3 pattern).
	em.Begin()
	for i := int64(0); i < 10; i++ {
		a := account.NewEntity(i)
		a.SetStr("owner", fmt.Sprintf("customer-%d", i))
		a.SetInt("balance", 1000)
		if err := em.Persist(a); err != nil {
			log.Fatal(err)
		}
	}
	if err := em.Commit(); err != nil {
		log.Fatal(err)
	}

	transfer := func(from, to, amount int64) error {
		src, err := em.Find(account, from)
		if err != nil {
			return err
		}
		dst, err := em.Find(account, to)
		if err != nil {
			return err
		}
		if src.GetInt("balance") < amount {
			return fmt.Errorf("insufficient funds in %d", from)
		}
		em.Begin()
		src.SetInt("balance", src.GetInt("balance")-amount)
		dst.SetInt("balance", dst.GetInt("balance")+amount)
		em.Persist(src)
		em.Persist(dst)
		return em.Commit()
	}

	for i := 0; i < 200; i++ {
		if err := transfer(int64(i%10), int64((i*3+1)%10), int64(1+i%50)); err != nil {
			log.Fatal(err)
		}
	}

	total := int64(0)
	for i := int64(0); i < 10; i++ {
		a, err := em.Find(account, i)
		if err != nil || a == nil {
			log.Fatalf("account %d lost: %v", i, err)
		}
		fmt.Printf("account %d (%s): %d\n", i, a.GetStr("owner"), a.GetInt("balance"))
		total += a.GetInt("balance")
	}
	fmt.Printf("total after 200 transfers: %d (invariant: 10000)\n", total)
	if total != 10000 {
		log.Fatal("conservation violated!")
	}
}
