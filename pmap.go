package espresso

import (
	"fmt"
	"sync"
	"sync/atomic"

	"espresso/internal/pindex"
	"espresso/internal/telemetry"
)

// PMapOptions configures OpenPMap. Zero values select the pindex
// defaults (8 initial buckets, load factor 4, 64K max buckets).
type PMapOptions struct {
	// InitialBuckets is the starting bucket-table size (power of two).
	InitialBuckets int
	// MaxLoadFactor is the entries-per-bucket threshold past which the
	// table doubles.
	MaxLoadFactor float64
	// MaxBuckets caps the table (power of two).
	MaxBuckets int
}

// maxIdleCtxs bounds every per-map (and, through ShardedPMap, per-shard)
// idle operation-context pool. Each idle ctx pins a PLAB region
// (layout.RegionSize, 256 KB) of its heap until the next persistent
// collection, so an unbounded pool multiplied by N sharded heaps would
// quietly pin N × peak-concurrency regions. 32 covers any plausible
// serving concurrency per map while capping the idle footprint at
// 8 MB per map (or per shard).
const maxIdleCtxs = 32

// PMap is a durable, lock-free, resizable persistent hash map — the
// serving-style concurrent index over the persistent heap
// (internal/pindex), opened by name like any other root object. All
// methods are safe for concurrent use from any goroutine: each call
// borrows a per-goroutine operation context (PLAB allocator + SATB
// barrier buffer) from an internal pool, runs as one safepoint interval,
// and is durable-linearizable — when Put or Delete returns, the mutation
// has been persisted (no FlushObject call needed), and a reload after a
// crash recovers exactly the committed mappings.
//
// Operations must not nest: code running inside a Scan callback (or
// otherwise already inside a PMap or Mutator.Do safepoint interval on
// the same goroutine) must not call other PMap or Runtime operations —
// a collector pause waiting between the two lock acquisitions deadlocks
// the process.
type PMap struct {
	ix *pindex.Index

	// ctxs is a free list of operation contexts, capped at maxIdleCtxs.
	// sync.Pool would be the obvious choice, but it sheds entries on
	// runtime GCs (and randomly under the race detector), and a shed Ctx
	// leaks its attached PLAB region until the next persistent collection
	// — a quarter-megabyte per drop. Releasing past the cap is explicit
	// instead: the ctx hands its PLAB headroom back to the heap first.
	mu   sync.Mutex
	ctxs []*pindex.Ctx

	// Pool telemetry (gauges on the heap's registry when enabled):
	// created counts every NewCtx, retired every release past the cap.
	// created − retired − idle is the number checked out right now;
	// retired > 0 flags a concurrency burst past maxIdleCtxs, each drop
	// costing a PLAB detach/reattach on the next miss.
	created atomic.Int64
	retired atomic.Int64
}

// registerPoolGauges publishes the ctx pool's occupancy on reg under
// prefix (e.g. "pmap.sessions.ctx"). idle is sampled at snapshot time —
// gauge callbacks run outside the registry lock precisely so this can
// take the pool lock.
func (m *PMap) registerPoolGauges(reg *telemetry.Registry, prefix string) {
	reg.RegisterGauge(prefix+".idle", func() int64 {
		m.mu.Lock()
		n := len(m.ctxs)
		m.mu.Unlock()
		return int64(n)
	})
	reg.RegisterGauge(prefix+".created", m.created.Load)
	reg.RegisterGauge(prefix+".retired", m.retired.Load)
}

// OpenPMap attaches to (or creates) the persistent map registered under
// mapName in the named loaded heap. Attaching runs the index recovery
// pass, so a map that crashed mid-operation is consistent before the
// first lookup.
func (rt *Runtime) OpenPMap(heapName, mapName string, opts PMapOptions) (*PMap, error) {
	h, ok := rt.Heap(heapName)
	if !ok {
		return nil, fmt.Errorf("espresso: heap %q is not loaded", heapName)
	}
	ix, err := pindex.Open(h, rt.Runtime.SafepointPinner(), mapName, pindex.Options{
		InitialBuckets: opts.InitialBuckets,
		MaxLoadFactor:  opts.MaxLoadFactor,
		MaxBuckets:     opts.MaxBuckets,
	})
	if err != nil {
		return nil, err
	}
	m := &PMap{ix: ix}
	m.registerPoolGauges(h.Telemetry(), "pmap."+mapName+".ctx")
	return m, nil
}

// Index exposes the underlying pindex handle (per-goroutine Ctx access,
// stats, tooling).
func (m *PMap) Index() *pindex.Index { return m.ix }

func (m *PMap) borrow() *pindex.Ctx {
	m.mu.Lock()
	if n := len(m.ctxs); n > 0 {
		c := m.ctxs[n-1]
		m.ctxs = m.ctxs[:n-1]
		m.mu.Unlock()
		return c
	}
	m.mu.Unlock()
	m.created.Add(1)
	return m.ix.NewCtx()
}

func (m *PMap) put(c *pindex.Ctx) {
	m.mu.Lock()
	if len(m.ctxs) < maxIdleCtxs {
		m.ctxs = append(m.ctxs, c)
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()
	// Past the cap: retire the ctx properly so its PLAB region unpins now
	// rather than at the next collection.
	m.retired.Add(1)
	c.Release()
}

// Put durably inserts or updates key → val. val must be 0 or reference
// an object in the same persistent heap (volatile references are
// rejected — see pindex.Ctx.Put).
func (m *PMap) Put(key int64, val Ref) error {
	c := m.borrow()
	defer m.put(c)
	return c.Put(key, val)
}

// Get looks key up; the answer is durable before it is returned.
func (m *PMap) Get(key int64) (Ref, bool) {
	c := m.borrow()
	defer m.put(c)
	return c.Get(key)
}

// Delete durably removes key, reporting whether it was present.
func (m *PMap) Delete(key int64) bool {
	c := m.borrow()
	defer m.put(c)
	return c.Delete(key)
}

// Scan walks every entry until fn returns false (weakly consistent, as
// lock-free iteration always is). It pins the world for its duration;
// prefer short scans while a concurrent collection runs, and never call
// other PMap or Runtime operations from fn (see the type doc: nested
// safepoint intervals can deadlock against a waiting collector pause).
func (m *PMap) Scan(fn func(key int64, val Ref) bool) {
	c := m.borrow()
	defer m.put(c)
	c.Scan(fn)
}

// Len reports the entry count (exact when quiescent).
func (m *PMap) Len() int { return m.ix.Len() }
