package espresso_test

import (
	"testing"

	"espresso"
)

// TestFacadeRoundTrip exercises the public API end to end: class
// declaration, heap creation, pnew, flush, roots, reload from disk,
// persistent GC.
func TestFacadeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rt, err := espresso.Open(espresso.Options{HeapDir: dir, TrackedNVM: true})
	if err != nil {
		t.Fatal(err)
	}
	person := espresso.MustClass("Person", nil, espresso.Long("id"), espresso.Str("name"))
	if rt.ExistsHeap("Jimmy") {
		t.Fatal("heap should not exist")
	}
	if err := rt.CreateHeap("Jimmy", 1<<20); err != nil {
		t.Fatal(err)
	}
	p, err := rt.PNew(person)
	if err != nil {
		t.Fatal(err)
	}
	name, err := rt.NewString("Jimmy", true)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetLong(p, "id", 1001)
	rt.SetRef(p, "name", name)
	if err := rt.FlushObject(p); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetRoot("Jimmy_info", p); err != nil {
		t.Fatal(err)
	}
	if res, err := rt.PersistentGC("Jimmy"); err != nil || res.LiveObjects != 3 {
		// Person + string + the heap's collections are not there: person,
		// name, and the ptx log do not exist here — live = 2 objects.
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.SyncHeap("Jimmy"); err != nil {
		t.Fatal(err)
	}

	rt2, err := espresso.Open(espresso.Options{HeapDir: dir, TrackedNVM: true, Safety: espresso.Zeroing})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt2.LoadHeap("Jimmy"); err != nil {
		t.Fatal(err)
	}
	got, ok := rt2.GetRoot("Jimmy_info")
	if !ok {
		t.Fatal("root lost")
	}
	if err := rt2.CheckCast(got, "Person"); err != nil {
		t.Fatal(err)
	}
	id, _ := rt2.GetLong(got, "id")
	nref, _ := rt2.GetRef(got, "name")
	s, _ := rt2.GetString(nref)
	if id != 1001 || s != "Jimmy" {
		t.Fatalf("round trip: %d %q", id, s)
	}
}

func TestFacadeArraysAndVolatile(t *testing.T) {
	rt, err := espresso.Open(espresso.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.CreateHeap("h", 1<<20); err != nil {
		t.Fatal(err)
	}
	arr, err := rt.PNewLongArray(16)
	if err != nil {
		t.Fatal(err)
	}
	rt.SetLongElem(arr, 3, 99)
	if v, _ := rt.GetLongElem(arr, 3); v != 99 {
		t.Fatalf("elem = %d", v)
	}
	person := espresso.MustClass("VolPerson", nil, espresso.Long("id"))
	v, err := rt.New(person)
	if err != nil {
		t.Fatal(err)
	}
	if rt.InPersistent(v) {
		t.Fatal("new allocated persistently")
	}
	oa, err := rt.PNewArray("VolPerson", 4)
	if err != nil {
		t.Fatal(err)
	}
	if rt.ArrayLen(oa) != 4 {
		t.Fatalf("len = %d", rt.ArrayLen(oa))
	}
}
