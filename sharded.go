package espresso

import (
	"sync"
	"sync/atomic"
	"time"

	"espresso/internal/pgc"
	"espresso/internal/pindex"
	"espresso/internal/pshard"
)

// ShardedPMapOptions configures OpenSharded. Zero values select the
// pshard defaults (4 shards, 16 MB per shard, one recovery worker per
// shard).
type ShardedPMapOptions struct {
	// Shards is the shard count for a newly created set; reopening reads
	// the count from the persisted manifest and ignores this.
	Shards int
	// RecoveryWorkers bounds how many shards load and recover
	// concurrently during OpenSharded (default: one per shard).
	RecoveryWorkers int
	// ShardDataSize is each shard's data-heap size at creation.
	ShardDataSize int
	// Index sizes each shard's hash index (per shard, not per set).
	Index PMapOptions
	// NVMWriteLatency models media write cost per flushed line on the
	// set's devices.
	NVMWriteLatency time.Duration
	// Telemetry gives every shard its own observability registry plus a
	// set-level one; ShardedPMap.Metrics aggregates them with spans
	// re-tagged by shard. Independent of Options.Telemetry on the
	// runtime — a sharded set is its own safepoint/telemetry domain.
	Telemetry bool
	// Degraded opens the set fence-and-serve instead of fail-fast: a
	// shard whose image cannot be loaded or recovered is quarantined
	// (operations routed to it fail with ErrShardQuarantined; Get and
	// Delete read as absent) while healthy shards serve, salvage
	// recovery amputates — never fabricates — damaged state, and a
	// background loop retries the shard with capped exponential backoff.
	// See docs/robustness.md.
	Degraded bool
}

// ErrShardQuarantined matches (errors.Is) every operation error caused
// by routing to a quarantined shard of a degraded set.
var ErrShardQuarantined = pshard.ErrShardQuarantined

// ShardedPMap is a range-partitioned persistent map over N independent
// persistent heaps (internal/pshard): keys route by hash range to a
// shard that owns its own device, region-top table, index, GC phase
// word, and safepoint domain — no lock or fence is shared between
// shards. Collections run one shard at a time (staggered pauses), and
// reopening recovers all shards in parallel, so restart time tracks the
// slowest shard rather than the sum.
//
// All methods are safe for concurrent use; like PMap, each call borrows
// a per-goroutine operation context from a bounded pool (maxIdleCtxs)
// and is durable-linearizable. Operations must not nest (see PMap's
// type doc).
type ShardedPMap struct {
	set *pshard.Set

	mu   sync.Mutex
	ctxs []*pshard.Ctx

	// Pool telemetry, mirroring PMap's: created counts NewCtx calls,
	// retired releases past maxIdleCtxs. A sharded ctx lazily holds up to
	// one PLAB region per shard, so a high retired count here costs N
	// detach/reattach cycles per drop.
	created atomic.Int64
	retired atomic.Int64
}

// OpenSharded opens (or creates) the sharded persistent map registered
// under base with the runtime's heap store (HeapDir when set, memory
// otherwise). Creation persists a manifest before any shard exists;
// reopening fans per-shard recovery out in parallel goroutines with
// errors joined. See docs/sharding.md for the manifest format and crash
// rules.
//
// The set's heaps are independent of the runtime's LoadHeap world: they
// appear in the same name store (as "<base>-manifest" and "<base>-sN")
// but are not loaded into the runtime's address map, and their
// collections never pause runtime mutators.
func (rt *Runtime) OpenSharded(base string, opts ShardedPMapOptions) (*ShardedPMap, error) {
	mgr := rt.Runtime.NameManager()
	set, err := pshard.OpenSet(pshard.DirStore{Mgr: mgr}, base, pshard.Options{
		Shards:          opts.Shards,
		RecoveryWorkers: opts.RecoveryWorkers,
		ShardDataSize:   opts.ShardDataSize,
		Index: pindex.Options{
			InitialBuckets: opts.Index.InitialBuckets,
			MaxLoadFactor:  opts.Index.MaxLoadFactor,
			MaxBuckets:     opts.Index.MaxBuckets,
		},
		Mode:         mgr.Mode(),
		WriteLatency: opts.NVMWriteLatency,
		Telemetry:    opts.Telemetry,
		Degraded:     opts.Degraded,
	})
	if err != nil {
		return nil, err
	}
	m := &ShardedPMap{set: set}
	if reg := set.Telemetry(); reg != nil {
		reg.RegisterGauge("shardedpmap."+base+".ctx.idle", func() int64 {
			m.mu.Lock()
			n := len(m.ctxs)
			m.mu.Unlock()
			return int64(n)
		})
		reg.RegisterGauge("shardedpmap."+base+".ctx.created", m.created.Load)
		reg.RegisterGauge("shardedpmap."+base+".ctx.retired", m.retired.Load)
	}
	return m, nil
}

// Metrics aggregates the set-level registry with every shard's —
// counters and histograms summed, shard-local spans re-tagged with
// their shard index so the merged timeline shows which shard paused.
// Empty unless ShardedPMapOptions.Telemetry was set.
func (m *ShardedPMap) Metrics() MetricsSnapshot { return m.set.Metrics() }

// ShardMetrics folds one shard's registry only.
func (m *ShardedPMap) ShardMetrics(i int) MetricsSnapshot { return m.set.ShardMetrics(i) }

// Set exposes the underlying shard set (per-shard stats, explicit Ctx
// management, tooling).
func (m *ShardedPMap) Set() *pshard.Set { return m.set }

func (m *ShardedPMap) borrow() *pshard.Ctx {
	m.mu.Lock()
	if n := len(m.ctxs); n > 0 {
		c := m.ctxs[n-1]
		m.ctxs = m.ctxs[:n-1]
		m.mu.Unlock()
		return c
	}
	m.mu.Unlock()
	m.created.Add(1)
	return m.set.NewCtx()
}

func (m *ShardedPMap) putCtx(c *pshard.Ctx) {
	m.mu.Lock()
	if len(m.ctxs) < maxIdleCtxs {
		m.ctxs = append(m.ctxs, c)
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()
	// Past the cap: a sharded ctx can hold one PLAB region per shard, so
	// releasing promptly matters N times more here than on PMap.
	m.retired.Add(1)
	c.Release()
}

// Put durably maps key → val on the key's owning shard.
func (m *ShardedPMap) Put(key, val int64) error {
	c := m.borrow()
	defer m.putCtx(c)
	return c.Put(key, val)
}

// Get looks key up; the answer is durable before it is returned. On a
// degraded set a quarantined shard reads as absent — use Lookup when
// "not present" and "shard unavailable" must stay distinguishable.
func (m *ShardedPMap) Get(key int64) (int64, bool) {
	c := m.borrow()
	defer m.putCtx(c)
	return c.Get(key)
}

// Lookup is Get with degraded-mode quarantines made visible: the error
// matches ErrShardQuarantined when key's owning shard is fenced off.
func (m *ShardedPMap) Lookup(key int64) (int64, bool, error) {
	c := m.borrow()
	defer m.putCtx(c)
	return c.Lookup(key)
}

// Delete durably removes key, reporting whether it was present. On a
// degraded set a quarantined shard reports false — use Remove when the
// cases must stay distinguishable.
func (m *ShardedPMap) Delete(key int64) bool {
	c := m.borrow()
	defer m.putCtx(c)
	return c.Delete(key)
}

// Remove is Delete with degraded-mode quarantines made visible: the
// error matches ErrShardQuarantined when key's owning shard is fenced
// off.
func (m *ShardedPMap) Remove(key int64) (bool, error) {
	c := m.borrow()
	defer m.putCtx(c)
	return c.Remove(key)
}

// Scan walks every entry of every shard until fn returns false (weakly
// consistent per shard; shards visited in hash-range order). It pins one
// shard at a time, and fn must not call other map operations.
func (m *ShardedPMap) Scan(fn func(key, val int64) bool) {
	c := m.borrow()
	defer m.putCtx(c)
	c.Scan(fn)
}

// Len sums the shard entry counts (exact when quiescent).
func (m *ShardedPMap) Len() int { return m.set.Len() }

// NumShards reports the shard count.
func (m *ShardedPMap) NumShards() int { return m.set.NumShards() }

// ShardOf reports which shard owns key (diagnostics, placement checks).
func (m *ShardedPMap) ShardOf(key int64) int { return m.set.ShardOf(key) }

// GCShard collects one shard: only operations routed to it pause.
func (m *ShardedPMap) GCShard(i int) (GCResult, error) { return m.set.GCShard(i) }

// GC collects every shard one at a time — the sharded deployment's
// staggered-pause full collection.
func (m *ShardedPMap) GC() ([]pgc.Result, error) { return m.set.GCAll() }

// Sync persists the manifest and every shard image to the heap store's
// backing tier (a no-op for memory-only runtimes).
func (m *ShardedPMap) Sync() error { return m.set.Sync() }

// Quarantined lists the currently fenced-off shards (always empty
// unless the set was opened Degraded).
func (m *ShardedPMap) Quarantined() []int { return m.set.Quarantined() }

// RetryQuarantined synchronously attempts to reopen every quarantined
// shard now, ignoring backoff timers, and returns the shards that came
// back healthy.
func (m *ShardedPMap) RetryQuarantined() []int { return m.set.RetryQuarantined() }

// Close stops the set's background quarantine-retry loop, if any.
// Idempotent; the map's data stays durable and reopenable.
func (m *ShardedPMap) Close() { m.set.Close() }
