// Benchmarks regenerating the paper's figures (DESIGN.md §4 maps each to
// its experiment). Run them all with:
//
//	go test -bench=. -benchmem
//
// cmd/espresso-bench runs the same experiments at paper-scale and prints
// the tables/series; these benches keep each figure's workload under the
// testing.B harness so regressions show up in CI.
package espresso_test

import (
	"io"
	"testing"

	"espresso/internal/experiments"
)

// benchScale shrinks workloads so a full -bench=. pass stays fast; the
// shapes (who wins, rough factors) are scale-invariant.
const benchScale = experiments.Scale(20)

// BenchmarkFig04JPABreakdown measures the JPA commit pipeline whose
// phase split is Figure 4 (paper: transformation 41.9% of commit time).
func BenchmarkFig04JPABreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig4(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig06PCJBreakdown measures the PCJ create path whose phase
// split is Figure 6 (paper: metadata 36.8%, data 1.8%).
func BenchmarkFig06PCJBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig6(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15MicroPJHvsPCJ runs the five-type create/set/get
// comparison of Figure 15 and reports the aggregate speedup (paper: 6.0x
// to 256.3x, PJH over PCJ).
func BenchmarkFig15MicroPJHvsPCJ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig15(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		min, max := rows[0].Speedup, rows[0].Speedup
		for _, r := range rows {
			if r.Speedup < min {
				min = r.Speedup
			}
			if r.Speedup > max {
				max = r.Speedup
			}
		}
		b.ReportMetric(min, "min-speedup")
		b.ReportMetric(max, "max-speedup")
	}
}

// BenchmarkFig16JPABThroughput runs the four JPAB tests on both
// providers (Figure 16; paper: H2-PJO up to 3.24x over H2-JPA).
func BenchmarkFig16JPABThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig16(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.PJO / r.JPA
		}
		b.ReportMetric(sum/float64(len(rows)), "avg-PJO/JPA")
	}
}

// BenchmarkFig17BasicTestBreakdown reruns BasicTest with phase profiles
// on both providers (Figure 17's stacked bars).
func BenchmarkFig17BasicTestBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig17(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig18HeapLoad builds and reloads heaps under both safety
// levels (Figure 18; paper: UG flat, zeroing linear, ~72.76 ms at 2M
// objects).
func BenchmarkFig18HeapLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig18(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		b.ReportMetric(last.UGMillis, "UG-ms")
		b.ReportMetric(last.ZeroMs, "zero-ms")
	}
}

// BenchmarkGCRecoverableFlushCost measures the §6.4 experiment: the
// crash-consistent GC's pause with and without clflush (paper: +17.8%).
func BenchmarkGCRecoverableFlushCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.GCFlushCost(16 << 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OverheadPct, "flush-overhead-%")
	}
}
