package telemetry

import (
	"sync"
	"time"
)

// Span taxonomy. Spans are timed phase events, not per-op traces: a GC
// cycle emits on the order of ten, a shard recovery a handful. Names are
// hierarchical and fixed so dashboards and tests can match exactly.
//
// GC (emitted by internal/pgc):
//
//	gc.handshake   initial safepoint handshake (concurrent cycles)
//	gc.mark        marking — concurrent with mutators, or in-pause (STW)
//	gc.mark.worker one per mark worker: that worker's loop wall time
//	gc.finalpause  the whole remark+compact pause (concurrent cycles)
//	gc.remark      final SATB drain + allocate-black sweep (inside finalpause)
//	gc.summarize   bitmap summary (inside finalpause, or the STW pause)
//	gc.compact     move + reference-fix + fill passes
//	gc.fix.worker  one per compaction fix worker
//	gc.redo        redo-log finish batch append + commit
//	gc.stw         the whole pause of a stop-the-world collection
//
// Safepoints (emitted by internal/core):
//
//	safepoint.wait time from a pause request to world-stopped
//
// Recovery (emitted by pgc.Recover, pindex recovery, pshard.OpenSet):
//
//	recovery.gc     resumed compaction replay of a mid-GC crash
//	recovery.index  index recovery pass (prune persisted deletes, recount)
//	shard.recover   one shard's full reopen (load + GC recover + index)
//	shard.open      the whole set reopen, all shards joined
const (
	SpanGCHandshake  = "gc.handshake"
	SpanGCMark       = "gc.mark"
	SpanGCMarkWorker = "gc.mark.worker"
	SpanGCFinalPause = "gc.finalpause"
	SpanGCRemark     = "gc.remark"
	SpanGCSummarize  = "gc.summarize"
	SpanGCCompact    = "gc.compact"
	SpanGCFixWorker  = "gc.fix.worker"
	SpanGCRedo       = "gc.redo"
	SpanGCSTW        = "gc.stw"
	SpanSafepoint    = "safepoint.wait"
	SpanRecoveryGC   = "recovery.gc"
	SpanRecoveryIdx  = "recovery.index"
	SpanShardRecover = "shard.recover"
	SpanShardOpen    = "shard.open"
)

// Span is one recorded phase event.
type Span struct {
	Seq    uint64        `json:"seq"`              // monotonic per recorder
	Name   string        `json:"name"`             // taxonomy constant above
	Shard  int           `json:"shard,omitempty"`  // -1 when not sharded
	Worker int           `json:"worker,omitempty"` // -1 for serial phases
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
}

// DefaultSpanDepth is the ring capacity: enough for hundreds of GC
// cycles of history in a few tens of KB of DRAM.
const DefaultSpanDepth = 2048

// SpanRecorder is a bounded in-DRAM ring buffer of phase events. Spans
// are emitted from cold phase boundaries (a pause start, a recovery
// join), never from per-op paths, so a mutex is the right tool: the
// critical section is an index bump and a struct copy.
type SpanRecorder struct {
	mu   sync.Mutex
	ring []Span
	next uint64 // total spans ever recorded; ring slot is next % len
}

// NewSpanRecorder creates a ring holding the last depth spans.
func NewSpanRecorder(depth int) *SpanRecorder {
	if depth < 1 {
		depth = 1
	}
	return &SpanRecorder{ring: make([]Span, depth)}
}

// Record appends one span, overwriting the oldest when full.
func (sr *SpanRecorder) Record(name string, shard, worker int, start time.Time, d time.Duration) {
	if sr == nil {
		return
	}
	sr.mu.Lock()
	sr.ring[sr.next%uint64(len(sr.ring))] = Span{
		Seq: sr.next, Name: name, Shard: shard, Worker: worker, Start: start, Dur: d,
	}
	sr.next++
	sr.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (sr *SpanRecorder) Snapshot() []Span {
	if sr == nil {
		return nil
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	n := sr.next
	depth := uint64(len(sr.ring))
	count := n
	if count > depth {
		count = depth
	}
	out := make([]Span, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, sr.ring[i%depth])
	}
	return out
}

// Dropped reports how many spans have been overwritten.
func (sr *SpanRecorder) Dropped() uint64 {
	if sr == nil {
		return 0
	}
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if sr.next <= uint64(len(sr.ring)) {
		return 0
	}
	return sr.next - uint64(len(sr.ring))
}
