package blackbox

import (
	"math/rand"
	"testing"

	"espresso/internal/nvm"
)

// Property test for Decode under arbitrary media corruption: starting
// from a valid ring with a known set of appended records, flip random
// bytes anywhere in the ring window and decode. Decode may truncate,
// discard, or error — but it must never panic and never fabricate: every
// record it surfaces must be byte-for-byte one that Append produced.
func TestDecodeNeverFabricatesUnderRandomCorruption(t *testing.T) {
	const events = 40
	rng := rand.New(rand.NewSource(20260808))

	build := func() ([]byte, map[uint64]Record) {
		dev := nvm.New(nvm.Config{Size: testRing + 128, Mode: nvm.Tracked})
		if err := Format(dev, 64, testRing); err != nil {
			t.Fatal(err)
		}
		r, err := Attach(dev, 64, testRing)
		if err != nil {
			t.Fatal(err)
		}
		appended := make(map[uint64]Record, events)
		r.SetMirror(func(rec Record) { appended[rec.Seq] = rec })
		for i := 0; i < events; i++ {
			r.Append(EvGCBegin, uint64(i), uint64(i*2), uint64(i*3))
		}
		return dev.CrashImage(nvm.CrashFlushedOnly, 0), appended
	}
	golden, appended := build()

	for trial := 0; trial < 300; trial++ {
		img := append([]byte(nil), golden...)
		// 1–16 corrupted bytes per trial, anywhere in the ring window
		// (header included), each XORed with a random nonzero mask.
		for i, n := 0, 1+rng.Intn(16); i < n; i++ {
			off := 64 + rng.Intn(testRing)
			img[off] ^= byte(1 + rng.Intn(255))
		}
		dev := nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})
		tl, err := Decode(dev, 64, testRing)
		if err != nil {
			continue // header damage: an error, never a panic
		}
		for _, got := range tl.Events {
			want, ok := appended[got.Seq]
			if !ok {
				t.Fatalf("trial %d: decoded seq %d was never appended", trial, got.Seq)
			}
			if got != want {
				t.Fatalf("trial %d: seq %d decoded as %+v, appended as %+v", trial, got.Seq, got, want)
			}
		}
	}
}
