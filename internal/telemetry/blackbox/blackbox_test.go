package blackbox

import (
	"fmt"
	"testing"

	"espresso/internal/nvm"
)

const testRing = HeaderSize + 8*RecordSize // 8-slot ring

func newRing(t *testing.T, size int) (*nvm.Device, *Recorder) {
	t.Helper()
	dev := nvm.New(nvm.Config{Size: size + 128, Mode: nvm.Tracked})
	if err := Format(dev, 64, size); err != nil {
		t.Fatal(err)
	}
	r, err := Attach(dev, 64, size)
	if err != nil {
		t.Fatal(err)
	}
	return dev, r
}

// TestRoundtrip: appended events decode back in order with their
// payloads, and the timeline metadata is right for an unwrapped ring.
func TestRoundtrip(t *testing.T) {
	dev, r := newRing(t, testRing)
	r.Append(EvHeapCreate, 1, 2, 3)
	r.Append(EvGCBegin, 0, 7, 0)
	r.Append(EvGCEnd, 10, 4, 99)
	tl, err := Decode(dev, 64, testRing)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Events) != 3 || tl.FirstSeq != 1 || tl.Wrapped() || tl.Discarded != 0 {
		t.Fatalf("timeline = %+v", tl)
	}
	want := []struct {
		kind       uint64
		p0, p1, p2 uint64
	}{{EvHeapCreate, 1, 2, 3}, {EvGCBegin, 0, 7, 0}, {EvGCEnd, 10, 4, 99}}
	for i, w := range want {
		e := tl.Events[i]
		if e.Seq != uint64(i+1) || e.Kind != w.kind || e.P0 != w.p0 || e.P1 != w.p1 || e.P2 != w.p2 {
			t.Fatalf("event %d = %+v, want %+v", i, e, w)
		}
		if e.Shard != -1 {
			t.Fatalf("event %d shard = %d, want -1 (untagged)", i, e.Shard)
		}
	}
}

// TestTornTailTruncated: a record whose checksum does not verify (a torn
// line) is dropped, and with it everything after — the reader never
// fabricates a suffix.
func TestTornTailTruncated(t *testing.T) {
	dev, r := newRing(t, testRing)
	for i := 0; i < 5; i++ {
		r.Append(EvGCBegin, uint64(i), 0, 0)
	}
	// Tear record seq=4 (slot 3): flip a payload byte without fixing the
	// checksum.
	slot := 64 + HeaderSize + 3*RecordSize
	dev.WriteU64(slot+rP0, 0xDEAD)
	dev.Flush(slot, RecordSize)

	tl, err := Decode(dev, 64, testRing)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Events) != 3 {
		t.Fatalf("decoded %d events, want 3 (torn seq 4 truncates 4 and 5)", len(tl.Events))
	}
	for i, e := range tl.Events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d seq = %d", i, e.Seq)
		}
	}
	if tl.Discarded != 1 {
		t.Fatalf("discarded = %d, want 1 (valid seq 5 beyond the gap)", tl.Discarded)
	}
}

// TestWrap: appending past capacity overwrites the oldest slots; the
// decode returns the newest capacity-sized window, contiguous.
func TestWrap(t *testing.T) {
	dev, r := newRing(t, testRing)
	const n = 8 + 5 // wrap by 5
	for i := 0; i < n; i++ {
		r.Append(EvGCBegin, uint64(i), 0, 0)
	}
	tl, err := Decode(dev, 64, testRing)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Events) != 8 || tl.FirstSeq != n-8+1 || !tl.Wrapped() {
		t.Fatalf("timeline = first %d, %d events, wrapped %v", tl.FirstSeq, len(tl.Events), tl.Wrapped())
	}
	for i, e := range tl.Events {
		if wantSeq := uint64(n - 8 + 1 + i); e.Seq != wantSeq || e.P0 != wantSeq-1 {
			t.Fatalf("event %d = seq %d p0 %d, want seq %d", i, e.Seq, e.P0, wantSeq)
		}
	}
}

// TestAttachResumesAndScrubs: re-attaching resumes the sequence after
// the last contiguous record, and scrubs any valid-but-stranded records
// beyond a gap so they can never resurface as fabricated history once
// fresh appends close the gap.
func TestAttachResumesAndScrubs(t *testing.T) {
	dev, r := newRing(t, testRing)
	for i := 0; i < 5; i++ {
		r.Append(EvGCBegin, uint64(i), 0, 0)
	}
	// Tear seq 4: slot 3 checksum breaks, seq 5 is stranded beyond it.
	slot := 64 + HeaderSize + 3*RecordSize
	dev.WriteU64(slot+rCksum, 0)
	dev.Flush(slot, RecordSize)

	r2, err := Attach(dev, 64, testRing)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Seq() != 3 {
		t.Fatalf("resumed seq = %d, want 3 (last contiguous)", r2.Seq())
	}
	// New seq-4 and seq-5 appends must be the ones decoded — not the
	// stale pre-crash seq 5.
	r2.Append(EvRedoCommit, 1000, 0, 0)
	r2.Append(EvRedoCommit, 1001, 0, 0)
	tl, err := Decode(dev, 64, testRing)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Events) != 5 || tl.Discarded != 0 {
		t.Fatalf("decoded %d events, %d discarded; want 5, 0", len(tl.Events), tl.Discarded)
	}
	if e := tl.Events[4]; e.Seq != 5 || e.Kind != EvRedoCommit || e.P0 != 1001 {
		t.Fatalf("event 5 = %+v, want fresh redo.commit", e)
	}
}

// TestDecodeEmptyAndGarbage: an all-zero ring decodes empty; a ring full
// of garbage (no valid checksums) decodes empty rather than erroring —
// decode is forensic, not validating.
func TestDecodeEmptyAndGarbage(t *testing.T) {
	dev, _ := newRing(t, testRing)
	tl, err := Decode(dev, 64, testRing)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Events) != 0 {
		t.Fatalf("empty ring decoded %d events", len(tl.Events))
	}
	for i := 0; i < 8; i++ {
		slot := 64 + HeaderSize + i*RecordSize
		for w := 0; w < RecordSize; w += 8 {
			dev.WriteU64(slot+w, uint64(0x5A5A5A5A00+i*8+w))
		}
	}
	dev.FlushAll()
	tl, err = Decode(dev, 64, testRing)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Events) != 0 {
		t.Fatalf("garbage ring decoded %d events", len(tl.Events))
	}
}

// TestDecodeRejectsBadHeader: a ring whose header does not carry the
// magic/version is an error — the caller pointed Decode at the wrong
// offset or a pre-format image.
func TestDecodeRejectsBadHeader(t *testing.T) {
	dev := nvm.New(nvm.Config{Size: testRing + 128, Mode: nvm.Tracked})
	if _, err := Decode(dev, 64, testRing); err == nil {
		t.Fatal("unformatted ring decoded without error")
	}
}

// TestCrashAtEveryFlush: the journal's crash contract, in miniature. A
// DRAM mirror records what was appended; for every flush boundary k, the
// run is crashed at flush k and the decoded timeline must be a strict
// prefix of the mirror — checksum-valid, sequence-contiguous, never
// fabricated. (The full-system sweep lives in the blackbox experiment.)
func TestCrashAtEveryFlush(t *testing.T) {
	const events = 20
	type crashPoint struct{ k uint64 }
	// First pass: count flushes for the whole run.
	dev, r := newRing(t, testRing)
	for i := 0; i < events; i++ {
		r.Append(EvGCBegin, uint64(i), uint64(i*2), 0)
	}
	total := dev.Stats().Flushes

	for k := uint64(1); k <= total; k++ {
		k := k
		t.Run(fmt.Sprintf("flush%d", k), func(t *testing.T) {
			dev := nvm.New(nvm.Config{Size: testRing + 128, Mode: nvm.Tracked})
			if err := Format(dev, 64, testRing); err != nil {
				t.Fatal(err)
			}
			r, err := Attach(dev, 64, testRing)
			if err != nil {
				t.Fatal(err)
			}
			var mirror []Record
			r.SetMirror(func(rec Record) { mirror = append(mirror, rec) })
			dev.SetFlushHook(func(count uint64) {
				if count == k {
					panic(crashPoint{k})
				}
			})
			func() {
				defer func() {
					if p := recover(); p != nil {
						if _, ok := p.(crashPoint); !ok {
							panic(p)
						}
					}
				}()
				for i := 0; i < events; i++ {
					r.Append(EvGCBegin, uint64(i), uint64(i*2), 0)
				}
			}()
			dev.SetFlushHook(nil)
			img := dev.CrashImage(nvm.CrashFlushedOnly, 0)
			dead := nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})
			tl, err := Decode(dead, 64, testRing)
			if err != nil {
				t.Fatal(err)
			}
			// Strict prefix of the mirror, modulo the ring window: the
			// decode may start later than seq 1 (overwritten slots) but
			// every decoded record must match the mirror at its seq.
			for _, e := range tl.Events {
				if e.Seq == 0 || e.Seq > uint64(len(mirror)) {
					t.Fatalf("decoded seq %d beyond mirror (%d appended)", e.Seq, len(mirror))
				}
				m := mirror[e.Seq-1]
				if e.Kind != m.Kind || e.P0 != m.P0 || e.P1 != m.P1 || e.P2 != m.P2 {
					t.Fatalf("decoded seq %d = %+v, mirror has %+v", e.Seq, e, m)
				}
			}
			for i := 1; i < len(tl.Events); i++ {
				if tl.Events[i].Seq != tl.Events[i-1].Seq+1 {
					t.Fatalf("non-contiguous decode at %d", i)
				}
			}
		})
	}
}
