// Package blackbox is the NVM-persisted flight recorder: a bounded,
// per-heap event journal that survives crashes, so a dead process can be
// debugged from its heap image the way an aircraft is debugged from its
// black box.
//
// The journal is a ring of fixed-size 64-byte records — exactly one
// device cache line each, so a record persists atomically with its line
// flush — carved out of the heap device like the pshard manifest: the
// header is written, flushed and fenced before first use, and carries a
// format version.
//
// Crash rule (mirrors the index's link-and-persist): a record is
// accepted on read only if its checksum validates AND its sequence
// number is contiguous with the previous accepted record. Appends issue
// one line write + one flush and NO fence — every emission point sits at
// an already-fenced publication point (GC phase transition, redo commit,
// safepoint, recovery step), so the record rides into the next existing
// fence and mutator fast paths gain zero fences. A crash can therefore
// lose the tail of the journal but can never tear or fabricate a record:
// the decoder truncates at the first gap and at any checksum failure.
package blackbox

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"espresso/internal/nvm"
	"espresso/internal/telemetry"
)

const (
	// RecordSize is one journal record: one device line, persisted
	// atomically by its flush.
	RecordSize = nvm.LineSize
	// HeaderSize is the ring header: one line at the start of the region.
	HeaderSize = nvm.LineSize

	// Magic identifies a formatted ring header ("ESPRBBX1").
	Magic uint64 = 0x3158424252505345
	// Version is the ring format version.
	Version uint64 = 1
)

// Header word offsets (bytes, relative to the ring region base).
const (
	hMagic    = 0
	hVersion  = 8
	hCapacity = 16 // slots, in records
	hEpochNS  = 24 // unix nanoseconds at Format time; record times are deltas
)

// Record word offsets (bytes, relative to the record base).
const (
	rSeq    = 0  // monotonic sequence, first record is 1; 0 marks an empty slot
	rKind   = 8  // event kind
	rTime   = 16 // nanoseconds since the header epoch
	rP0     = 24
	rP1     = 32
	rP2     = 40
	rCksum  = 48 // checksum over the six words above
	rUnused = 56 // reserved, written as 0
)

// Event kinds. The numeric values are part of the on-media format: append
// new kinds at the end, never renumber.
const (
	EvNone uint64 = iota
	// EvHeapCreate: heap formatted. p0=data bytes, p1=regions, p2=format version.
	EvHeapCreate
	// EvHeapLoad: heap reopened from an image. p0=global TS, p1=GC-active
	// word, p2=persisted GC phase.
	EvHeapLoad
	// EvFormatUpgrade: in-place heap format upgrade. p0=from, p1=to.
	EvFormatUpgrade
	// EvGCBegin: collection cycle entered. p0=mode (0 STW, 1 concurrent),
	// p1=global TS at begin.
	EvGCBegin
	// EvGCMarkDone: mark bitmaps persisted. p0=live objects, p1=live bytes.
	EvGCMarkDone
	// EvGCStamp: new GC stamp published (SetGCState). p0=stamp, p1=live
	// objects, p2=live bytes.
	EvGCStamp
	// EvGCCompactDone: compaction moves complete. p0=moved objects,
	// p1=moved bytes.
	EvGCCompactDone
	// EvRedoCommit: a redo batch reached its commit point. p0=entries.
	EvRedoCommit
	// EvGCEnd: cycle finished. p0=live objects, p1=moved objects, p2=new top.
	EvGCEnd
	// EvGCAbort: concurrent cycle aborted (mutator raced the stamp).
	// p0=global TS at abort.
	EvGCAbort
	// EvCounterSnap: folded registry totals. p0=alloc.objects,
	// p1=refstore.stores, p2=index.puts.
	EvCounterSnap
	// EvSafepoint: world stopped. p0=cumulative waits, p1=cumulative wait
	// ns, p2=this stop's wait ns.
	EvSafepoint
	// EvRecoveryGCBegin: crash recovery found an interrupted cycle.
	// p0=persisted stamp, p1=GC-active word.
	EvRecoveryGCBegin
	// EvRecoveryGCEnd: recovery completed the cycle. p0=live objects,
	// p1=moved objects, p2=new top.
	EvRecoveryGCEnd
	// EvRecoveryIndex: index recovery walk done. p0=entries kept,
	// p1=pruned, p2=dirty slots cleared.
	EvRecoveryIndex
	// EvShardOpen: shard heap opened. p0=shard, p1=1 if GC recovery ran
	// (or the shard was freshly created), p2=index entries recovered.
	EvShardOpen
	// EvShardGC: per-shard collection requested. p0=shard.
	EvShardGC
	// EvPLABHandoff: allocator dispensed a region chunk to a mutator PLAB.
	// p0=region, p1=chunk base, p2=chunk bytes.
	EvPLABHandoff
	// EvShardQuarantined: a degraded-mode set fenced a failing shard off
	// instead of serving it. p0=shard, p1=retry attempts so far. Journaled
	// in the sibling that observed it when the failing shard's own ring is
	// unreachable.
	EvShardQuarantined
	// EvShardSalvaged: a shard reopened through salvage recovery.
	// p0=shard, p1=regions quarantined, p2=index entries lost.
	EvShardSalvaged

	numKinds
)

var kindNames = [...]string{
	"none",
	"heap.create",
	"heap.load",
	"heap.upgrade",
	"gc.begin",
	"gc.markdone",
	"gc.stamp",
	"gc.compactdone",
	"redo.commit",
	"gc.end",
	"gc.abort",
	"counters.snap",
	"safepoint",
	"recovery.gc.begin",
	"recovery.gc.end",
	"recovery.index",
	"shard.open",
	"shard.gc",
	"plab.handoff",
	"shard.quarantined",
	"shard.salvaged",
}

// KindName returns the stable string name for an event kind.
func KindName(k uint64) string {
	if k < uint64(len(kindNames)) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Record is one decoded journal entry.
type Record struct {
	Seq    uint64 `json:"seq"`
	Kind   uint64 `json:"kind"`
	TimeNS uint64 `json:"time_ns"` // nanoseconds since the ring epoch
	P0     uint64 `json:"p0"`
	P1     uint64 `json:"p1"`
	P2     uint64 `json:"p2"`
	// Shard is a decode-side tag (-1 for a single heap); pshard aggregation
	// re-tags each shard's timeline with its index. Not stored on media.
	Shard int `json:"shard"`
}

// KindName returns the record's event-kind name.
func (r Record) KindName() string { return KindName(r.Kind) }

// checksum mixes the six meaningful record words. Any single-word tear
// flips it; an all-zero slot never validates (the mix of zeros is
// nonzero, and Seq 0 is invalid regardless).
func checksum(seq, kind, ts, p0, p1, p2 uint64) uint64 {
	h := Magic
	for _, w := range [...]uint64{seq, kind, ts, p0, p1, p2} {
		h ^= w
		h *= 0x9E3779B97F4A7C15
		h ^= h >> 29
	}
	return h
}

// Format initializes the ring region [off, off+size) on dev: header
// written, flushed, fenced before first use — the manifest-first crash
// rule. The slot area is left as found (zero on fresh devices; stale
// slots on a reused region are rejected by checksum+sequence on read).
func Format(dev *nvm.Device, off, size int) error {
	if off%nvm.LineSize != 0 || size%nvm.LineSize != 0 {
		return fmt.Errorf("blackbox: ring [%d,+%d) not line-aligned", off, size)
	}
	if size < HeaderSize+RecordSize {
		return fmt.Errorf("blackbox: ring of %d bytes too small for header + one record", size)
	}
	capacity := uint64((size - HeaderSize) / RecordSize)
	dev.WriteU64(off+hMagic, Magic)
	dev.WriteU64(off+hVersion, Version)
	dev.WriteU64(off+hCapacity, capacity)
	dev.WriteU64(off+hEpochNS, uint64(time.Now().UnixNano()))
	dev.Flush(off, HeaderSize)
	dev.Fence()
	return nil
}

// Recorder appends events to a formatted ring. All methods are safe on a
// nil receiver (no-ops), so emission sites never branch on whether the
// recorder is enabled.
type Recorder struct {
	dev      *nvm.Device
	off      int
	capacity uint64
	epoch    int64
	seq      atomic.Uint64
	tel      atomic.Pointer[telemetry.Registry]
	mirror   func(Record) // test oracle hook, called before the append persists
}

// Attach opens the formatted ring at [off, off+size) for appending. The
// sequence counter resumes past the newest decodable record, so a
// reopened heap continues its journal instead of overwriting it. Any
// checksum-valid record stranded beyond a crash-torn sequence hole is
// scrubbed first: left in place it could become contiguous with fresh
// appends and resurface mid-timeline as fabricated history.
func Attach(dev *nvm.Device, off, size int) (*Recorder, error) {
	tl, err := Decode(dev, off, size)
	if err != nil {
		return nil, err
	}
	r := &Recorder{
		dev:      dev,
		off:      off,
		capacity: tl.Capacity,
		epoch:    tl.EpochNS,
	}
	var last uint64
	if n := len(tl.Events); n > 0 {
		last = tl.Events[n-1].Seq
	}
	r.seq.Store(last)
	if tl.Discarded > 0 {
		var buf [RecordSize]byte
		for i := uint64(0); i < tl.Capacity; i++ {
			slotOff := off + HeaderSize + int(i)*RecordSize
			dev.ReadBytes(slotOff, buf[:])
			if seq := binary.LittleEndian.Uint64(buf[rSeq:]); seq > last {
				dev.Zero(slotOff, RecordSize)
				dev.Flush(slotOff, RecordSize)
			}
		}
		dev.Fence()
	}
	return r, nil
}

// SetTelemetry attributes append traffic (one write + one flushed line
// per event, zero fences) to the registry's shared cell under
// nvm.SubBlackbox. Nil registry (or receiver) is fine.
func (r *Recorder) SetTelemetry(reg *telemetry.Registry) {
	if r == nil {
		return
	}
	r.tel.Store(reg)
}

// SetMirror installs a DRAM oracle hook invoked with each record just
// before its line is flushed. Crash-sweep tests compare the decoded
// on-media timeline against the mirror: because the mirror runs first,
// the decoded journal is always a prefix of it. Install while quiescent.
func (r *Recorder) SetMirror(fn func(Record)) {
	if r == nil {
		return
	}
	r.mirror = fn
}

// Seq returns the sequence number of the most recent append (0 if none).
func (r *Recorder) Seq() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Capacity returns the ring capacity in records (0 on a nil recorder).
func (r *Recorder) Capacity() uint64 {
	if r == nil {
		return 0
	}
	return r.capacity
}

// Append journals one event: claim a sequence, write the record's line,
// flush it — no fence. The caller is an already-fenced publication point,
// so the record becomes durable no later than the site's own next fence;
// until then a crash simply truncates the tail (checksum + contiguity
// reject a torn record). Safe for concurrent use: distinct sequences map
// to distinct slots.
func (r *Recorder) Append(kind, p0, p1, p2 uint64) {
	if r == nil {
		return
	}
	seq := r.seq.Add(1)
	now := time.Now().UnixNano() - r.epoch
	if now < 0 {
		now = 0
	}
	rec := Record{Seq: seq, Kind: kind, TimeNS: uint64(now), P0: p0, P1: p1, P2: p2, Shard: -1}
	if r.mirror != nil {
		r.mirror(rec)
	}
	var buf [RecordSize]byte
	binary.LittleEndian.PutUint64(buf[rSeq:], seq)
	binary.LittleEndian.PutUint64(buf[rKind:], kind)
	binary.LittleEndian.PutUint64(buf[rTime:], rec.TimeNS)
	binary.LittleEndian.PutUint64(buf[rP0:], p0)
	binary.LittleEndian.PutUint64(buf[rP1:], p1)
	binary.LittleEndian.PutUint64(buf[rP2:], p2)
	binary.LittleEndian.PutUint64(buf[rCksum:], checksum(seq, kind, rec.TimeNS, p0, p1, p2))
	slotOff := r.off + HeaderSize + int((seq-1)%r.capacity)*RecordSize
	r.dev.WriteBytes(slotOff, buf[:])
	r.dev.Flush(slotOff, RecordSize)
	r.tel.Load().Shared().AtomicDev(nvm.SubBlackbox, 0, 1, 1, 0)
}

// Timeline is a decoded journal: the longest contiguous, checksum-valid
// run of records ending at the newest sequence the ring retains.
type Timeline struct {
	Capacity uint64   `json:"capacity"`
	EpochNS  int64    `json:"epoch_ns"` // unix nanoseconds of ring format time
	FirstSeq uint64   `json:"first_seq"`
	Events   []Record `json:"events"`
	// Discarded counts checksum-valid records dropped because they were
	// not sequence-contiguous (beyond a torn hole). Torn records
	// themselves are invisible — they fail the checksum.
	Discarded int `json:"discarded"`
}

// Wrapped reports whether the ring has overwritten its oldest records.
func (t Timeline) Wrapped() bool { return t.FirstSeq > 1 }

// Decode reads the ring at [off, off+size) from dev and reconstructs the
// timeline. It never writes to the device, so it is safe on a raw (and
// possibly torn) crash image. The acceptance rule: scan every slot, keep
// records whose checksum validates, then walk sequence numbers upward
// from the oldest the ring can still hold and stop at the first gap —
// a torn tail is silently truncated, never fabricated.
func Decode(dev *nvm.Device, off, size int) (Timeline, error) {
	if off < 0 || size < HeaderSize+RecordSize || off+size > dev.Size() {
		return Timeline{}, fmt.Errorf("blackbox: ring [%d,+%d) out of range for %d-byte device", off, size, dev.Size())
	}
	if m := dev.ReadU64(off + hMagic); m != Magic {
		return Timeline{}, fmt.Errorf("blackbox: bad ring magic %#x", m)
	}
	if v := dev.ReadU64(off + hVersion); v != Version {
		return Timeline{}, fmt.Errorf("blackbox: unsupported ring version %d", v)
	}
	capacity := dev.ReadU64(off + hCapacity)
	if capacity == 0 || capacity > uint64((size-HeaderSize)/RecordSize) {
		return Timeline{}, fmt.Errorf("blackbox: header capacity %d inconsistent with %d-byte ring", capacity, size)
	}
	tl := Timeline{Capacity: capacity, EpochNS: int64(dev.ReadU64(off + hEpochNS))}

	valid := make(map[uint64]Record, capacity)
	var buf [RecordSize]byte
	var maxSeq uint64
	for i := uint64(0); i < capacity; i++ {
		dev.ReadBytes(off+HeaderSize+int(i)*RecordSize, buf[:])
		seq := binary.LittleEndian.Uint64(buf[rSeq:])
		if seq == 0 {
			continue
		}
		kind := binary.LittleEndian.Uint64(buf[rKind:])
		ts := binary.LittleEndian.Uint64(buf[rTime:])
		p0 := binary.LittleEndian.Uint64(buf[rP0:])
		p1 := binary.LittleEndian.Uint64(buf[rP1:])
		p2 := binary.LittleEndian.Uint64(buf[rP2:])
		if binary.LittleEndian.Uint64(buf[rCksum:]) != checksum(seq, kind, ts, p0, p1, p2) {
			continue // torn or stale line
		}
		if (seq-1)%capacity != i {
			continue // valid bits from an earlier format in the wrong home slot
		}
		valid[seq] = Record{Seq: seq, Kind: kind, TimeNS: ts, P0: p0, P1: p1, P2: p2, Shard: -1}
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	if maxSeq == 0 {
		tl.FirstSeq = 1
		return tl, nil
	}
	low := uint64(1)
	if maxSeq > capacity {
		low = maxSeq - capacity + 1
	}
	tl.FirstSeq = low
	for s := low; ; s++ {
		rec, ok := valid[s]
		if !ok {
			break
		}
		tl.Events = append(tl.Events, rec)
		delete(valid, s)
	}
	// Whatever valid records remain sit beyond a hole in the sequence (a
	// crash landed between their flush and an earlier record's): count
	// them, never surface them.
	for s := range valid {
		if s >= low {
			tl.Discarded++
		}
	}
	return tl, nil
}
