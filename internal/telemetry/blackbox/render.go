package blackbox

import (
	"fmt"
	"io"
	"time"
)

// Describe renders a record's payload words with kind-specific field
// names, for the human-readable timeline.
func (r Record) Describe() string {
	switch r.Kind {
	case EvHeapCreate:
		return fmt.Sprintf("data=%d regions=%d format=v%d", r.P0, r.P1, r.P2)
	case EvHeapLoad:
		return fmt.Sprintf("ts=%d gc_active=%d phase=%d", r.P0, r.P1, r.P2)
	case EvFormatUpgrade:
		return fmt.Sprintf("v%d -> v%d", r.P0, r.P1)
	case EvGCBegin:
		mode := "stw"
		if r.P0 == 1 {
			mode = "concurrent"
		}
		return fmt.Sprintf("mode=%s ts=%d", mode, r.P1)
	case EvGCMarkDone:
		return fmt.Sprintf("live=%d live_bytes=%d", r.P0, r.P1)
	case EvGCStamp:
		return fmt.Sprintf("stamp=%d live=%d live_bytes=%d", r.P0, r.P1, r.P2)
	case EvGCCompactDone:
		return fmt.Sprintf("moved=%d moved_bytes=%d", r.P0, r.P1)
	case EvRedoCommit:
		return fmt.Sprintf("entries=%d", r.P0)
	case EvGCEnd:
		return fmt.Sprintf("live=%d moved=%d top=%d", r.P0, r.P1, r.P2)
	case EvGCAbort:
		return fmt.Sprintf("ts=%d", r.P0)
	case EvCounterSnap:
		return fmt.Sprintf("alloc.objects=%d refstore.stores=%d index.puts=%d", r.P0, r.P1, r.P2)
	case EvSafepoint:
		return fmt.Sprintf("waits=%d wait_total=%s wait_last=%s", r.P0,
			time.Duration(r.P1), time.Duration(r.P2))
	case EvRecoveryGCBegin:
		return fmt.Sprintf("stamp=%d gc_active=%d", r.P0, r.P1)
	case EvRecoveryGCEnd:
		return fmt.Sprintf("live=%d moved=%d top=%d", r.P0, r.P1, r.P2)
	case EvRecoveryIndex:
		return fmt.Sprintf("entries=%d pruned=%d dirty_cleared=%d", r.P0, r.P1, r.P2)
	case EvShardOpen:
		return fmt.Sprintf("shard=%d recovered=%d entries=%d", r.P0, r.P1, r.P2)
	case EvShardGC:
		return fmt.Sprintf("shard=%d", r.P0)
	case EvPLABHandoff:
		return fmt.Sprintf("region=%d base=%d bytes=%d", r.P0, r.P1, r.P2)
	default:
		return fmt.Sprintf("p0=%d p1=%d p2=%d", r.P0, r.P1, r.P2)
	}
}

// WriteText renders the post-mortem report: the last lastN events
// (lastN <= 0 means all), a GC cycle reconstruction, and a recovery
// narrative — what an operator reads first off a crashed image.
func WriteText(w io.Writer, tl Timeline, lastN int) {
	fmt.Fprintf(w, "flight recorder: %d event(s) decoded (capacity %d, first seq %d",
		len(tl.Events), tl.Capacity, tl.FirstSeq)
	if tl.Wrapped() {
		fmt.Fprintf(w, ", ring wrapped")
	}
	if tl.Discarded > 0 {
		fmt.Fprintf(w, ", %d record(s) beyond a torn hole discarded", tl.Discarded)
	}
	fmt.Fprintf(w, ")\n")
	if len(tl.Events) == 0 {
		return
	}

	events := tl.Events
	if lastN > 0 && len(events) > lastN {
		fmt.Fprintf(w, "\ntimeline (last %d of %d):\n", lastN, len(events))
		events = events[len(events)-lastN:]
	} else {
		fmt.Fprintf(w, "\ntimeline:\n")
	}
	base := tl.Events[0].TimeNS
	for _, e := range events {
		shard := ""
		if e.Shard >= 0 {
			shard = fmt.Sprintf(" [shard %d]", e.Shard)
		}
		fmt.Fprintf(w, "  #%-6d +%-12s %-18s %s%s\n",
			e.Seq, sinceBase(e.TimeNS, base), e.KindName(), e.Describe(), shard)
	}

	writeGCCycles(w, tl.Events)
	writeRecovery(w, tl.Events)
}

func sinceBase(ts, base uint64) string {
	if ts < base {
		// Events from before the decode window's first record (clock skew
		// across reopen) — render as absolute-from-epoch.
		return time.Duration(ts).Truncate(time.Microsecond).String()
	}
	return time.Duration(ts - base).Truncate(time.Microsecond).String()
}

// writeGCCycles reconstructs collection cycles from begin/phase/end
// events: one line per cycle with phases in order, duration, and outcome.
func writeGCCycles(w io.Writer, events []Record) {
	type cycle struct {
		begin   Record
		phases  []Record
		end     *Record
		aborted bool
	}
	var cycles []cycle
	var open *cycle
	for _, e := range events {
		switch e.Kind {
		case EvGCBegin, EvRecoveryGCBegin:
			if open != nil {
				cycles = append(cycles, *open) // crashed mid-cycle: no end event
			}
			open = &cycle{begin: e}
		case EvGCMarkDone, EvGCStamp, EvGCCompactDone, EvRedoCommit:
			if open != nil {
				open.phases = append(open.phases, e)
			}
		case EvGCEnd, EvRecoveryGCEnd:
			if open != nil {
				e := e
				open.end = &e
				cycles = append(cycles, *open)
				open = nil
			}
		case EvGCAbort:
			if open != nil {
				open.aborted = true
				cycles = append(cycles, *open)
				open = nil
			}
		}
	}
	if open != nil {
		cycles = append(cycles, *open)
	}
	if len(cycles) == 0 {
		return
	}
	fmt.Fprintf(w, "\ngc cycles:\n")
	for i, c := range cycles {
		fmt.Fprintf(w, "  cycle %d: %s (%s)", i+1, c.begin.KindName(), c.begin.Describe())
		for _, p := range c.phases {
			fmt.Fprintf(w, " -> %s", p.KindName())
		}
		switch {
		case c.aborted:
			fmt.Fprintf(w, " -> ABORTED")
		case c.end != nil:
			dur := time.Duration(c.end.TimeNS - c.begin.TimeNS).Truncate(time.Microsecond)
			fmt.Fprintf(w, " -> %s (%s, %s)", c.end.KindName(), c.end.Describe(), dur)
		default:
			fmt.Fprintf(w, " -> INTERRUPTED (journal ends mid-cycle)")
		}
		fmt.Fprintf(w, "\n")
	}
}

// writeRecovery narrates crash-recovery activity: heap loads, format
// upgrades, GC and index recovery steps, shard reopens.
func writeRecovery(w io.Writer, events []Record) {
	var lines []string
	for _, e := range events {
		switch e.Kind {
		case EvHeapLoad:
			lines = append(lines, fmt.Sprintf("heap reopened (%s)", e.Describe()))
		case EvFormatUpgrade:
			lines = append(lines, fmt.Sprintf("format upgraded in place (%s)", e.Describe()))
		case EvRecoveryGCBegin:
			lines = append(lines, fmt.Sprintf("interrupted GC cycle found (%s)", e.Describe()))
		case EvRecoveryGCEnd:
			lines = append(lines, fmt.Sprintf("interrupted GC cycle completed by recovery (%s)", e.Describe()))
		case EvRecoveryIndex:
			lines = append(lines, fmt.Sprintf("index recovery walk (%s)", e.Describe()))
		case EvShardOpen:
			lines = append(lines, fmt.Sprintf("shard opened (%s)", e.Describe()))
		}
	}
	if len(lines) == 0 {
		return
	}
	fmt.Fprintf(w, "\nrecovery narrative:\n")
	for _, l := range lines {
		fmt.Fprintf(w, "  - %s\n", l)
	}
}
