package blackbox_test

import (
	"strings"
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pgc"
	"espresso/internal/pheap"
	"espresso/internal/telemetry/blackbox"
)

// buildCrashedImage runs a deterministic workload — create, allocate,
// collect — on a tracked device and crashes it (flushed-lines-only), so
// the test decodes exactly what a post-mortem of a real crash would.
func buildCrashedImage(t *testing.T) []byte {
	t.Helper()
	reg := klass.NewRegistry()
	h, err := pheap.Create(reg, pheap.Config{DataSize: 1 << 20, Mode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.EnableFlightRecorder(); err != nil {
		t.Fatal(err)
	}
	node, err := reg.Define(klass.MustInstance("pm/Node", nil,
		klass.Field{Name: "id", Type: layout.FTLong},
		klass.Field{Name: "next", Type: layout.FTRef},
	))
	if err != nil {
		t.Fatal(err)
	}
	var prev layout.Ref
	for i := 0; i < 64; i++ {
		ref, err := h.Alloc(node, 0)
		if err != nil {
			t.Fatal(err)
		}
		h.SetWord(ref, layout.FieldOff(0), uint64(i))
		if prev != layout.NullRef {
			h.SetWord(ref, layout.FieldOff(1), uint64(prev))
		}
		prev = ref
	}
	if err := h.SetRoot("head", prev); err != nil {
		t.Fatal(err)
	}
	if _, err := pgc.Collect(h, pgc.NoRoots{}); err != nil {
		t.Fatal(err)
	}
	return h.Device().CrashImage(nvm.CrashFlushedOnly, 0)
}

// TestPostmortemGolden: the heaptool postmortem pipeline — locate the
// ring on a raw crashed image, decode, render — produces the expected
// report: the GC cycle reconstructed phase by phase from journal events
// alone, without loading (or repairing) the heap.
func TestPostmortemGolden(t *testing.T) {
	img := buildCrashedImage(t)
	dev := nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})

	off, size, err := pheap.BlackboxRegion(dev)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := blackbox.Decode(dev, off, size)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Events) == 0 {
		t.Fatal("crashed image decoded to an empty timeline")
	}

	// The workload's journal is deterministic: PLAB handoffs from the
	// allocation burst, then the full STW cycle in phase order.
	var kinds []string
	for _, e := range tl.Events {
		kinds = append(kinds, e.KindName())
	}
	joined := strings.Join(kinds, " ")
	wantChain := "gc.begin gc.markdone gc.stamp gc.compactdone redo.commit gc.end"
	if !strings.Contains(joined, wantChain) {
		t.Fatalf("timeline %q missing GC phase chain %q", joined, wantChain)
	}
	if kinds[0] != "plab.handoff" {
		t.Fatalf("first event = %s, want plab.handoff from the allocation burst", kinds[0])
	}

	var buf strings.Builder
	blackbox.WriteText(&buf, tl, 0)
	out := buf.String()
	for _, want := range []string{
		"flight recorder: ",
		"timeline:",
		"gc cycles:",
		"cycle 1: gc.begin (mode=stw",
		"-> gc.markdone -> gc.stamp -> gc.compactdone -> redo.commit",
		"-> gc.end (live=64",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}

	// -last N bounds the timeline without touching the reconstruction.
	var short strings.Builder
	blackbox.WriteText(&short, tl, 2)
	if !strings.Contains(short.String(), "timeline (last 2 of ") {
		t.Fatalf("lastN render missing bounded header:\n%s", short.String())
	}
}

// TestPostmortemTornTail: tearing the final journal record (the crash
// caught the append mid-line) truncates the decoded timeline by exactly
// that record — the report renders from what survives and the torn
// record is never shown.
func TestPostmortemTornTail(t *testing.T) {
	img := buildCrashedImage(t)
	dev := nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})
	off, size, err := pheap.BlackboxRegion(dev)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := blackbox.Decode(dev, off, size)
	if err != nil {
		t.Fatal(err)
	}
	n := len(whole.Events)
	if n < 2 {
		t.Fatalf("workload journaled only %d events", n)
	}

	// Tear the newest record in place: payload byte flipped, checksum
	// now stale — what a crash mid-line-write leaves behind.
	last := whole.Events[n-1]
	slot := off + blackbox.HeaderSize + int((last.Seq-1)%uint64(whole.Capacity))*blackbox.RecordSize
	dev.WriteU64(slot+24, last.P0^0xFF)
	dev.Flush(slot, blackbox.RecordSize)

	tl, err := blackbox.Decode(dev, off, size)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Events) != n-1 {
		t.Fatalf("torn tail decoded %d events, want %d", len(tl.Events), n-1)
	}
	if tl.Events[len(tl.Events)-1].Seq != last.Seq-1 {
		t.Fatalf("timeline does not end just before the torn record")
	}
	var buf strings.Builder
	blackbox.WriteText(&buf, tl, 0)
	if strings.Contains(buf.String(), "gc.end (live=64") && last.KindName() == "gc.end" {
		t.Fatalf("torn gc.end still rendered:\n%s", buf.String())
	}
}
