package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the fixed bucket count: bucket i counts observations in
// (2^(i-1), 2^i] microseconds, bucket 0 everything ≤ 1 µs, the last
// bucket everything past ~8.9 s. Power-of-two bounds make Observe one
// bit-length instruction — no search, no float math.
const HistBuckets = 24

// Histogram is a fixed-bucket latency histogram. Observe is lock-free
// (three atomic adds) and allocation-free; it is meant for phase-level
// latencies (pauses, waits, recoveries), not per-op hot paths.
//
// A nil *Histogram no-ops, matching the rest of the package.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNS   atomic.Uint64
	maxNS   atomic.Uint64
}

// BucketIndex returns the bucket for a duration.
func BucketIndex(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	if us <= 1 {
		return 0
	}
	i := bits.Len64(us - 1) // ceil(log2(us))
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// BucketBound returns the inclusive upper bound of bucket i (the last
// bucket reports the largest representable duration).
func BucketBound(i int) time.Duration {
	if i >= HistBuckets-1 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[BucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(uint64(d))
	for {
		old := h.maxNS.Load()
		if uint64(d) <= old || h.maxNS.CompareAndSwap(old, uint64(d)) {
			break
		}
	}
}

// HistogramSnapshot is one folded histogram.
type HistogramSnapshot struct {
	Count   uint64              `json:"count"`
	SumNS   uint64              `json:"sum_ns"`
	MaxNS   uint64              `json:"max_ns"`
	Buckets [HistBuckets]uint64 `json:"buckets"`
}

// Snapshot folds the histogram with atomic loads.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNS = h.sumNS.Load()
	s.MaxNS = h.maxNS.Load()
	return s
}

// Mean returns the mean observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) from
// the bucket counts — bucket-resolution, which is what fixed buckets buy.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target >= s.Count {
		target = s.Count - 1
	}
	var seen uint64
	for i, b := range s.Buckets {
		seen += b
		if seen > target {
			return BucketBound(i)
		}
	}
	return BucketBound(HistBuckets - 1)
}
