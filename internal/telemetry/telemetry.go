// Package telemetry is the runtime-wide observability layer: lock-free
// per-mutator counter cells, fixed-bucket latency histograms, a bounded
// GC/recovery span recorder, and snapshot/export surfaces (Prometheus
// text, JSON, an opt-in HTTP listener).
//
// The design constraint comes from the durable-set literature (Zuriel et
// al.): instrumentation on a lock-free persistent operation must itself
// be fence-free and allocation-free, or it invalidates what it measures.
// So the hot-path primitive here is the Cell — a cache-line-padded block
// of counters owned by exactly one mutator, registered with the Registry
// the same way remembered-set delta buffers register with their heap.
// The owner bumps counters with plain load+store pairs on atomic words
// (one MOV each on x86 — no RMW, no lock prefix, no fence) and a
// snapshot folds every registered cell with atomic loads. Nothing on the
// mutator fast path takes a lock, issues a fence, allocates, or touches
// a cache line another thread writes.
//
// Everything else — histograms, spans, gauges, the shared cell for
// pathways without an owner — is cold-path machinery and uses ordinary
// atomics or a mutex.
//
// All methods are nil-receiver-safe: a disabled runtime passes nil
// registries and nil cells around and every record call degenerates to
// one predictable branch.
package telemetry

import (
	"sync/atomic"

	"espresso/internal/nvm"
)

// Counter identifies one counter slot in a Cell. The catalog is fixed at
// compile time so cells are flat arrays, not maps.
type Counter int

// Operation-mix counters.
const (
	// Allocation path (subsystem alloc).
	CtrAllocObjects Counter = iota // objects allocated (PLAB + hole + humongous)
	CtrAllocBytes                  // bytes allocated
	CtrPLABRefills                 // regions fetched from the dispenser
	CtrPLABRetires                 // PLABs sealed because the next object overflowed them
	CtrHoleAllocs                  // allocations served from recycled holes
	CtrHumongous                   // humongous (multi-region) allocations

	// Reference-store barrier (subsystem refstore).
	CtrRefStores      // reference stores into persistent objects
	CtrSATBRecords    // pre-write barrier records while concurrent mark ran
	CtrRemsetPublish  // remset delta-buffer publications (commit/safepoint/overflow)
	CtrRemsetDeltas   // individual deltas published
	CtrSafepointWaits // collector pauses begun (safepoint write-lock acquisitions)

	// Index operation mix (subsystem index).
	CtrIndexGets        // Get operations
	CtrIndexPuts        // Put operations
	CtrIndexDeletes     // Delete operations
	CtrIndexScans       // Scan operations
	CtrIndexHelpFlushes // dirty links persisted on behalf of other threads
	CtrIndexGrows       // bucket-table doublings

	// GC event counters (subsystem gc).
	CtrGCCycles     // persistent collections completed
	CtrGCRecoveries // crash recoveries replayed

	// Robustness counters (degraded-mode sharding and salvage recovery).
	CtrShardQuarantined   // shards fenced off by a degraded-mode open or retry
	CtrSalvageRegionsLost // heap regions quarantined by salvage recovery

	ctrDevBase // start of the per-subsystem device counters
)

// The per-subsystem device counters follow the operation counters:
// four (reads, writes, flushed lines, fences) for each nvm.Subsystem.
const devMetrics = 4

// NumCounters is the total counter-slot count of a Cell.
const NumCounters = int(ctrDevBase) + devMetrics*int(nvm.NumSubsystems)

// DevCounter returns the counter slot for one device metric of one
// subsystem. metric: 0 reads, 1 writes, 2 flushed lines, 3 fences.
func DevCounter(sub nvm.Subsystem, metric int) Counter {
	return ctrDevBase + Counter(devMetrics*int(sub)+metric)
}

// opNames indexes the operation-mix counter names; device counters are
// named dev.<subsystem>.<metric>.
var opNames = [...]string{
	"alloc.objects", "alloc.bytes", "alloc.plab_refills", "alloc.plab_retires",
	"alloc.hole_allocs", "alloc.humongous",
	"refstore.stores", "refstore.satb_records", "refstore.remset_publishes",
	"refstore.remset_deltas", "safepoint.pauses",
	"index.gets", "index.puts", "index.deletes", "index.scans",
	"index.help_flushes", "index.grows",
	"gc.cycles", "gc.recoveries",
	"shard.quarantined", "salvage.regions_lost",
}

var devMetricNames = [devMetrics]string{"reads", "writes", "flushed_lines", "fences"}

// Name returns the stable dotted metric name of a counter.
func (c Counter) Name() string {
	if int(c) < len(opNames) {
		return opNames[c]
	}
	d := int(c - ctrDevBase)
	return "dev." + nvm.Subsystem(d/devMetrics).String() + "." + devMetricNames[d%devMetrics]
}

// Cell is one owner's counter block. Exactly one goroutine — the owner —
// may call the plain (non-Atomic) mutators; any goroutine may read via a
// Registry snapshot. The leading and trailing pads keep the counter
// words off any line shared with neighboring allocations, so the owner's
// stores never contend with another thread's traffic.
type Cell struct {
	_ [8]uint64 // cache-line pad
	v [NumCounters]atomic.Uint64
	_ [8]uint64 // cache-line pad
}

// Inc bumps ctr by one. Owner-only: the load+store pair is not an
// atomic RMW — that is the point (no lock prefix, no fence) — so racing
// owners would lose updates. Concurrent snapshot reads are safe.
func (c *Cell) Inc(ctr Counter) {
	if c == nil {
		return
	}
	w := &c.v[ctr]
	w.Store(w.Load() + 1)
}

// Add bumps ctr by n. Owner-only, like Inc.
func (c *Cell) Add(ctr Counter, n uint64) {
	if c == nil || n == 0 {
		return
	}
	w := &c.v[ctr]
	w.Store(w.Load() + n)
}

// Dev attributes device traffic to sub. Owner-only, like Inc.
func (c *Cell) Dev(sub nvm.Subsystem, reads, writes, lines, fences uint64) {
	if c == nil {
		return
	}
	base := DevCounter(sub, 0)
	c.Add(base, reads)
	c.Add(base+1, writes)
	c.Add(base+2, lines)
	c.Add(base+3, fences)
}

// AtomicInc bumps ctr with an atomic add — the variant for *shared*
// cells (the Registry's fallback cell for pathways without a per-mutator
// owner, and cold-path publication counters). Never use it on a hot
// mutator path: the RMW is a locked instruction and the shared cell is a
// shared cache line.
func (c *Cell) AtomicInc(ctr Counter) {
	if c == nil {
		return
	}
	c.v[ctr].Add(1)
}

// AtomicAdd bumps ctr by n atomically; see AtomicInc.
func (c *Cell) AtomicAdd(ctr Counter, n uint64) {
	if c == nil || n == 0 {
		return
	}
	c.v[ctr].Add(n)
}

// AtomicDev attributes device traffic to sub with atomic adds; the
// shared-cell / cold-path variant of Dev.
func (c *Cell) AtomicDev(sub nvm.Subsystem, reads, writes, lines, fences uint64) {
	if c == nil {
		return
	}
	base := DevCounter(sub, 0)
	c.AtomicAdd(base, reads)
	c.AtomicAdd(base+1, writes)
	c.AtomicAdd(base+2, lines)
	c.AtomicAdd(base+3, fences)
}

// AtomicDevStats is AtomicDev taking an nvm.Stats delta — the fold entry
// point for exclusive measured windows (GC phases, redo commits,
// recovery replays).
func (c *Cell) AtomicDevStats(sub nvm.Subsystem, s nvm.Stats) {
	c.AtomicDev(sub, s.Reads, s.Writes, s.FlushedLines, s.Fences)
}

// load reads one counter with an atomic load (snapshot path).
func (c *Cell) load(ctr Counter) uint64 { return c.v[ctr].Load() }
