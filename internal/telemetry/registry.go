package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Registry is one observability domain: a runtime, or one shard of a
// sharded set. Cells register with it like remembered-set delta buffers
// register with their heap — created per owner, folded only when a
// snapshot asks, handed back on release so no count is ever lost.
//
// A nil *Registry is the disabled state: every method no-ops (or
// returns nil cells, whose methods no-op in turn), so instrumented code
// never branches on a config flag.
type Registry struct {
	mu      sync.Mutex
	cells   []*Cell
	retired [NumCounters]uint64 // folded counts of released cells
	gauges  map[string]func() int64
	hists   map[string]*Histogram

	shared *Cell // fallback cell for pathways without an owner (atomic ops only)
	spans  *SpanRecorder
}

// New creates an empty registry with a span ring of the default depth.
func New() *Registry {
	return &Registry{
		gauges: make(map[string]func() int64),
		hists:  make(map[string]*Histogram),
		shared: &Cell{},
		spans:  NewSpanRecorder(DefaultSpanDepth),
	}
}

// NewCell creates and registers a counter cell for one owner. Returns
// nil (a valid no-op cell) on a nil registry.
func (r *Registry) NewCell() *Cell {
	if r == nil {
		return nil
	}
	c := &Cell{}
	r.mu.Lock()
	r.cells = append(r.cells, c)
	r.mu.Unlock()
	return c
}

// ReleaseCell unregisters c, folding its counts into the retired
// accumulator so totals stay monotonic across owner churn.
func (r *Registry) ReleaseCell(c *Cell) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, other := range r.cells {
		if other == c {
			r.cells = append(r.cells[:i], r.cells[i+1:]...)
			for ctr := 0; ctr < NumCounters; ctr++ {
				r.retired[ctr] += c.load(Counter(ctr))
			}
			return
		}
	}
}

// Shared returns the registry's fallback cell for pathways that have no
// per-mutator owner. Use only the Atomic* methods on it.
func (r *Registry) Shared() *Cell {
	if r == nil {
		return nil
	}
	return r.shared
}

// RegisterGauge installs a named gauge callback, sampled at snapshot
// time. Re-registering a name replaces the callback. fn must be safe to
// call from any goroutine.
func (r *Registry) RegisterGauge(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = fn
	r.mu.Unlock()
}

// UnregisterGauge removes a gauge.
func (r *Registry) UnregisterGauge(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.gauges, name)
	r.mu.Unlock()
}

// Hist returns the named histogram, creating it on first use. Returns
// nil (valid, no-op) on a nil registry.
func (r *Registry) Hist(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RecordSpan appends one timed phase event to the span ring and observes
// its duration in the histogram of the same name. shard and worker are
// -1 when not applicable.
func (r *Registry) RecordSpan(name string, shard, worker int, start time.Time, d time.Duration) {
	if r == nil {
		return
	}
	r.spans.Record(name, shard, worker, start, d)
	r.Hist(name).Observe(d)
}

// Span times fn and records it; the convenience form for serial phases.
func (r *Registry) Span(name string, shard, worker int, fn func()) {
	if r == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	r.RecordSpan(name, shard, worker, start, time.Since(start))
}

// Spans returns the retained span events, oldest first.
func (r *Registry) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans.Snapshot()
}

// Snapshot folds every registered cell (plus the retired accumulator,
// the shared cell, gauges, histograms, and retained spans) into one
// consistent-enough view: each counter is read with one atomic load, so
// under live traffic the snapshot is per-counter atomic — and because
// counters only grow and released cells fold into the retired
// accumulator under the same lock, successive snapshots are monotonic
// per counter.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: make(map[string]uint64),
		Gauges:   make(map[string]int64),
		Hists:    make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	totals := r.retired
	for _, c := range r.cells {
		for ctr := 0; ctr < NumCounters; ctr++ {
			totals[ctr] += c.load(Counter(ctr))
		}
	}
	for ctr := 0; ctr < NumCounters; ctr++ {
		totals[ctr] += r.shared.load(Counter(ctr))
	}
	gauges := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		gauges = append(gauges, name)
	}
	fns := make([]func() int64, len(gauges))
	for i, name := range gauges {
		fns[i] = r.gauges[name]
	}
	for name, h := range r.hists {
		s.Hists[name] = h.Snapshot()
	}
	r.mu.Unlock()

	for ctr := 0; ctr < NumCounters; ctr++ {
		s.Counters[Counter(ctr).Name()] = totals[ctr]
	}
	// Gauges run outside the lock: a callback may take its own lock (ctx
	// pools do) and must not nest under the registry's.
	for i, name := range gauges {
		s.Gauges[name] = fns[i]()
	}
	s.Spans = r.spans.Snapshot()
	// The span ring's overwrite count rides along as a counter so both
	// export formats say when the retained spans are a suffix, not the
	// whole history.
	s.Counters["spans.dropped"] = r.spans.Dropped()
	return s
}

// Snapshot is one folded view of a registry — the exchange format for
// exporters, aggregation across shards, and tests.
type Snapshot struct {
	Counters map[string]uint64            `json:"counters"`
	Gauges   map[string]int64             `json:"gauges"`
	Hists    map[string]HistogramSnapshot `json:"histograms"`
	Spans    []Span                       `json:"spans,omitempty"`
}

// Add folds other into s counter-by-counter (gauges and histogram
// buckets sum; spans concatenate, ordered by start) — per-shard
// aggregation for sharded sets.
func (s *Snapshot) Add(other Snapshot) {
	for k, v := range other.Counters {
		s.Counters[k] += v
	}
	for k, v := range other.Gauges {
		s.Gauges[k] += v
	}
	for k, v := range other.Hists {
		h := s.Hists[k]
		h.Count += v.Count
		h.SumNS += v.SumNS
		for i := range v.Buckets {
			h.Buckets[i] += v.Buckets[i]
		}
		if v.MaxNS > h.MaxNS {
			h.MaxNS = v.MaxNS
		}
		s.Hists[k] = h
	}
	s.Spans = append(s.Spans, other.Spans...)
	sort.SliceStable(s.Spans, func(i, j int) bool { return s.Spans[i].Start.Before(s.Spans[j].Start) })
}

// Counter returns one counter by name (0 when absent).
func (s *Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// SpanTotal sums the durations of every retained span with the given
// name — the phase-decomposition accessor the GC timeline checks use.
func (s *Snapshot) SpanTotal(name string) time.Duration {
	var d time.Duration
	for _, sp := range s.Spans {
		if sp.Name == name {
			d += sp.Dur
		}
	}
	return d
}
