package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestSpansDroppedCounterExported: overflowing the span ring surfaces as
// the spans.dropped counter in both export formats, so a consumer can
// tell a complete history from a retained suffix.
func TestSpansDroppedCounterExported(t *testing.T) {
	r := New()
	start := time.Now()
	for i := 0; i < DefaultSpanDepth+7; i++ {
		r.RecordSpan(SpanSafepoint, -1, -1, start, time.Microsecond)
	}
	snap := r.Snapshot()
	if got := snap.Counter("spans.dropped"); got != 7 {
		t.Fatalf("spans.dropped = %d, want 7", got)
	}

	var prom bytes.Buffer
	WritePrometheus(&prom, snap)
	if !strings.Contains(prom.String(), "espresso_spans_dropped_total 7") {
		t.Fatalf("Prometheus export missing spans.dropped:\n%s", prom.String())
	}

	var js bytes.Buffer
	if err := WriteJSON(&js, snap); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Counters["spans.dropped"] != 7 {
		t.Fatalf("JSON export spans.dropped = %d, want 7", decoded.Counters["spans.dropped"])
	}

	// A fresh registry exports the counter at zero rather than omitting
	// it — absence and emptiness must not be confused.
	fresh := New().Snapshot()
	if got := fresh.Counter("spans.dropped"); got != 0 {
		t.Fatalf("fresh registry spans.dropped = %d, want 0", got)
	}
}

// TestPrometheusHistogramScrapeFormat: the histogram families render as
// cumulative _bucket series with an +Inf terminal, plus _sum and _count,
// exactly as a Prometheus scraper expects.
func TestPrometheusHistogramScrapeFormat(t *testing.T) {
	r := New()
	// Two observations into the same histogram, far enough apart to land
	// in different buckets.
	start := time.Now()
	r.RecordSpan(SpanGCCompact, -1, -1, start, 5*time.Microsecond)
	r.RecordSpan(SpanGCCompact, -1, -1, start, 3*time.Millisecond)
	var buf bytes.Buffer
	WritePrometheus(&buf, r.Snapshot())
	out := buf.String()

	if !strings.Contains(out, "# TYPE espresso_gc_compact_seconds histogram\n") {
		t.Fatalf("missing histogram TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `espresso_gc_compact_seconds_bucket{le="+Inf"} 2`) {
		t.Fatalf("missing +Inf bucket with total count:\n%s", out)
	}
	if !strings.Contains(out, "espresso_gc_compact_seconds_count 2") {
		t.Fatalf("missing _count:\n%s", out)
	}
	if !strings.Contains(out, "espresso_gc_compact_seconds_sum ") {
		t.Fatalf("missing _sum:\n%s", out)
	}

	// Bucket counts must be cumulative: each le series ≥ the previous.
	var last uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "espresso_gc_compact_seconds_bucket") {
			continue
		}
		var n uint64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative at %q (%d after %d)", line, n, last)
		}
		last = n
	}
	if last != 2 {
		t.Fatalf("final cumulative bucket = %d, want 2", last)
	}
}

// TestPprofEndpointsServed: the telemetry listener serves the standard
// Go profile endpoints alongside /metrics and /vars.
func TestPprofEndpointsServed(t *testing.T) {
	srv, err := StartHTTP("localhost:0", New())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/goroutine?debug=1",
		"/debug/pprof/cmdline",
	} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
	}
}
