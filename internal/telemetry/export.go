package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// Export surfaces. Two renderings of a Snapshot:
//
//   - Prometheus text exposition (WritePrometheus, served at /metrics):
//     counters as espresso_<name>_total, gauges as espresso_<name>,
//     histograms as _bucket/_sum/_count families;
//   - expvar-style JSON (WriteJSON, served at /vars): the Snapshot
//     marshalled verbatim, spans included — what heaptool top consumes.
//
// The HTTP listener is opt-in: nothing binds a port unless the embedder
// asks (espresso.Options.TelemetryAddr).

// promName converts a dotted metric name to a Prometheus-safe one.
func promName(name string) string {
	return "espresso_" + strings.NewReplacer(".", "_", "-", "_", "/", "_").Replace(name)
}

// WritePrometheus renders s in the Prometheus text exposition format.
func WritePrometheus(w io.Writer, s Snapshot) {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n", promName(name), promName(name), s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", promName(name), promName(name), s.Gauges[name])
	}
	names = names[:0]
	for name := range s.Hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Hists[name]
		p := promName(name) + "_seconds"
		fmt.Fprintf(w, "# TYPE %s histogram\n", p)
		var cum uint64
		for i, b := range h.Buckets {
			cum += b
			if b == 0 && i < HistBuckets-1 {
				continue // sparse rendering; cumulative counts stay correct
			}
			le := "+Inf"
			if i < HistBuckets-1 {
				le = fmt.Sprintf("%g", BucketBound(i).Seconds())
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", p, le, cum)
		}
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", p, time.Duration(h.SumNS).Seconds(), p, h.Count)
	}
}

// WriteJSON renders s as indented JSON.
func WriteJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Source produces snapshots for an exporter — a single Registry, or an
// aggregation like a sharded set.
type Source interface{ Snapshot() Snapshot }

// Handler serves /metrics (Prometheus text) and /vars (JSON snapshot)
// from src, plus the standard Go profiles under /debug/pprof/ — GC pool
// workers and shard recovery goroutines carry pprof labels (gc-worker,
// shard), so CPU profiles scraped here attribute time per worker and
// per shard.
func Handler(src Source) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		WritePrometheus(w, src.Snapshot())
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, src.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HTTPServer is a live export endpoint.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartHTTP binds addr (host:port; port 0 picks a free one) and serves
// the export endpoints from src in a background goroutine.
func StartHTTP(addr string, src Source) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &HTTPServer{ln: ln, srv: &http.Server{Handler: Handler(src)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound address (resolves port 0).
func (s *HTTPServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener.
func (s *HTTPServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
