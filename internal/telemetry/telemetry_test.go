package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"espresso/internal/nvm"
)

func TestCellFoldAndRetire(t *testing.T) {
	r := New()
	a, b := r.NewCell(), r.NewCell()
	a.Inc(CtrAllocObjects)
	a.Add(CtrAllocBytes, 64)
	b.Add(CtrAllocObjects, 2)
	b.Dev(nvm.SubAlloc, 1, 2, 3, 4)
	s := r.Snapshot()
	if got := s.Counter(CtrAllocObjects.Name()); got != 3 {
		t.Fatalf("alloc.objects = %d, want 3", got)
	}
	if got := s.Counter(DevCounter(nvm.SubAlloc, 3).Name()); got != 4 {
		t.Fatalf("dev.alloc.fences = %d, want 4", got)
	}
	// Releasing a cell folds it into the retired accumulator: totals must
	// not regress.
	r.ReleaseCell(a)
	r.ReleaseCell(b)
	s2 := r.Snapshot()
	for name, v := range s.Counters {
		if s2.Counters[name] != v {
			t.Fatalf("%s regressed after release: %d -> %d", name, v, s2.Counters[name])
		}
	}
	// A new cell keeps accumulating on top.
	c := r.NewCell()
	c.Inc(CtrAllocObjects)
	if got := r.Snapshot().Counters[CtrAllocObjects.Name()]; got != 4 {
		t.Fatalf("alloc.objects after churn = %d, want 4", got)
	}
}

func TestSharedCellAtomics(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Shared().AtomicInc(CtrGCCycles)
				r.Shared().AtomicDevStats(nvm.SubGC, nvm.Stats{Reads: 1, Writes: 2})
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counter(CtrGCCycles.Name()); got != 8000 {
		t.Fatalf("gc.cycles = %d, want 8000", got)
	}
	if got := s.Counter(DevCounter(nvm.SubGC, 1).Name()); got != 16000 {
		t.Fatalf("dev.gc.writes = %d, want 16000", got)
	}
}

func TestSnapshotMonotonicUnderChurn(t *testing.T) {
	r := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.NewCell()
			for i := 0; ; i++ {
				select {
				case <-stop:
					r.ReleaseCell(c)
					return
				default:
				}
				c.Inc(CtrRefStores)
				if i%100 == 99 { // churn owners too
					r.ReleaseCell(c)
					c = r.NewCell()
				}
			}
		}()
	}
	prev := uint64(0)
	for i := 0; i < 200; i++ {
		v := r.Snapshot().Counters[CtrRefStores.Name()]
		if v < prev {
			t.Fatalf("snapshot %d: refstore.stores regressed %d -> %d", i, prev, v)
		}
		prev = v
	}
	close(stop)
	wg.Wait()
}

func TestCounterNamesUnique(t *testing.T) {
	seen := map[string]Counter{}
	for c := 0; c < NumCounters; c++ {
		name := Counter(c).Name()
		if name == "" {
			t.Fatalf("counter %d has empty name", c)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("counters %d and %d share name %q", prev, c, name)
		}
		seen[name] = Counter(c)
	}
}

func TestHistogram(t *testing.T) {
	if BucketIndex(0) != 0 || BucketIndex(time.Microsecond) != 0 {
		t.Fatal("sub-microsecond observations must land in bucket 0")
	}
	if BucketIndex(2*time.Microsecond) != 1 || BucketIndex(3*time.Microsecond) != 2 {
		t.Fatalf("power-of-two bucketing broken: 2µs->%d 3µs->%d",
			BucketIndex(2*time.Microsecond), BucketIndex(3*time.Microsecond))
	}
	if BucketIndex(time.Hour) != HistBuckets-1 {
		t.Fatal("overflow must clamp to the last bucket")
	}
	var h Histogram
	h.Observe(time.Microsecond)
	h.Observe(8 * time.Microsecond)
	h.Observe(100 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Mean(); got != time.Duration(s.SumNS/3) {
		t.Fatalf("mean = %v", got)
	}
	if q := s.Quantile(1); q < 100*time.Millisecond {
		t.Fatalf("p100 bound %v < max observation", q)
	}
	if q := s.Quantile(0); q > 2*time.Microsecond {
		t.Fatalf("p0 bound %v too high", q)
	}
	if s.MaxNS != uint64(100*time.Millisecond) {
		t.Fatalf("max = %d", s.MaxNS)
	}
}

func TestSpanRingWraps(t *testing.T) {
	sr := NewSpanRecorder(4)
	base := time.Now()
	for i := 0; i < 10; i++ {
		sr.Record("gc.mark", -1, i, base.Add(time.Duration(i)), time.Duration(i+1))
	}
	got := sr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	for i, sp := range got {
		if sp.Worker != 6+i {
			t.Fatalf("slot %d holds worker %d, want %d (oldest-first)", i, sp.Worker, 6+i)
		}
	}
	if sr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", sr.Dropped())
	}
}

func TestRegistrySpansAndHists(t *testing.T) {
	r := New()
	start := time.Now()
	r.RecordSpan(SpanGCMark, 2, 1, start, 5*time.Millisecond)
	r.Span(SpanGCCompact, -1, -1, func() {})
	s := r.Snapshot()
	if got := s.SpanTotal(SpanGCMark); got != 5*time.Millisecond {
		t.Fatalf("SpanTotal = %v", got)
	}
	if len(s.Spans) != 2 {
		t.Fatalf("spans = %d", len(s.Spans))
	}
	if s.Spans[0].Shard != 2 || s.Spans[0].Worker != 1 {
		t.Fatalf("span tags lost: %+v", s.Spans[0])
	}
	// RecordSpan also observes the same-name histogram.
	if h, ok := s.Hists[SpanGCMark]; !ok || h.Count != 1 {
		t.Fatalf("histogram for %s missing or empty", SpanGCMark)
	}
}

func TestGauges(t *testing.T) {
	r := New()
	v := int64(7)
	r.RegisterGauge("pool.idle", func() int64 { return v })
	if got := r.Snapshot().Gauges["pool.idle"]; got != 7 {
		t.Fatalf("gauge = %d", got)
	}
	v = 9
	if got := r.Snapshot().Gauges["pool.idle"]; got != 9 {
		t.Fatalf("gauge resample = %d", got)
	}
	// A gauge callback that takes its own lock must not deadlock against
	// the registry (gauges run outside the registry lock).
	var mu sync.Mutex
	r.RegisterGauge("locked", func() int64 {
		mu.Lock()
		defer mu.Unlock()
		return 1
	})
	_ = r.Snapshot()
	r.UnregisterGauge("pool.idle")
	if _, ok := r.Snapshot().Gauges["pool.idle"]; ok {
		t.Fatal("unregistered gauge still sampled")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.NewCell()
	if c != nil {
		t.Fatal("nil registry must hand out nil cells")
	}
	c.Inc(CtrAllocObjects)
	c.Add(CtrAllocBytes, 8)
	c.Dev(nvm.SubAlloc, 1, 1, 1, 1)
	c.AtomicInc(CtrGCCycles)
	c.AtomicDevStats(nvm.SubGC, nvm.Stats{})
	r.ReleaseCell(c)
	if r.Shared() != nil {
		t.Fatal("nil registry shared cell must be nil")
	}
	r.RegisterGauge("x", func() int64 { return 0 })
	r.Hist("x").Observe(time.Second)
	r.RecordSpan(SpanGCMark, -1, -1, time.Now(), time.Second)
	ran := false
	r.Span(SpanGCMark, -1, -1, func() { ran = true })
	if !ran {
		t.Fatal("nil registry Span must still run fn")
	}
	if got := r.Snapshot(); len(got.Counters) != 0 || len(got.Spans) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var sr *SpanRecorder
	sr.Record("x", 0, 0, time.Now(), 0)
	if sr.Snapshot() != nil || sr.Dropped() != 0 {
		t.Fatal("nil recorder must no-op")
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Snapshot().Count != 0 {
		t.Fatal("nil histogram must no-op")
	}
}

func TestSnapshotAdd(t *testing.T) {
	r1, r2 := New(), New()
	r1.NewCell().Add(CtrIndexPuts, 3)
	r2.NewCell().Add(CtrIndexPuts, 4)
	r1.RegisterGauge("g", func() int64 { return 1 })
	r2.RegisterGauge("g", func() int64 { return 2 })
	r1.RecordSpan(SpanGCMark, 0, -1, time.Now(), time.Millisecond)
	r2.RecordSpan(SpanGCMark, 1, -1, time.Now().Add(-time.Second), 2*time.Millisecond)
	agg := r1.Snapshot()
	agg.Add(r2.Snapshot())
	if got := agg.Counter(CtrIndexPuts.Name()); got != 7 {
		t.Fatalf("aggregated index.puts = %d", got)
	}
	if agg.Gauges["g"] != 3 {
		t.Fatalf("aggregated gauge = %d", agg.Gauges["g"])
	}
	if got := agg.SpanTotal(SpanGCMark); got != 3*time.Millisecond {
		t.Fatalf("aggregated span total = %v", got)
	}
	if !agg.Spans[0].Start.Before(agg.Spans[1].Start) {
		t.Fatal("aggregated spans not start-ordered")
	}
}

func TestExportRendering(t *testing.T) {
	r := New()
	r.NewCell().Add(CtrAllocObjects, 5)
	r.RegisterGauge("pmap.users.ctx.idle", func() int64 { return 2 })
	r.RecordSpan(SpanGCSTW, -1, -1, time.Now(), 3*time.Millisecond)
	s := r.Snapshot()

	var prom bytes.Buffer
	WritePrometheus(&prom, s)
	text := prom.String()
	for _, want := range []string{
		"espresso_alloc_objects_total 5",
		"espresso_pmap_users_ctx_idle 2",
		"espresso_gc_stw_seconds_count 1",
		`espresso_gc_stw_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q in:\n%s", want, text)
		}
	}

	var js bytes.Buffer
	if err := WriteJSON(&js, s); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter(CtrAllocObjects.Name()) != 5 || len(back.Spans) != 1 {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := New()
	r.NewCell().Add(CtrIndexGets, 11)
	srv, err := StartHTTP("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if body := get("/metrics"); !strings.Contains(body, "espresso_index_gets_total 11") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/vars")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counter(CtrIndexGets.Name()) != 11 {
		t.Fatalf("/vars counter = %d", snap.Counter(CtrIndexGets.Name()))
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/vars", srv.Addr())); err == nil {
		t.Fatal("listener still serving after Close")
	}
}
