package pgc

import (
	"fmt"
	"time"

	"espresso/internal/nvm"
	"espresso/internal/pgc/concurrent"
	"espresso/internal/pheap"
	"espresso/internal/telemetry"
	"espresso/internal/telemetry/blackbox"
)

// World is the mutator-handshake hook the concurrent collector pauses
// through. StopWorld returns with every mutator parked at a safepoint
// (outside any heap operation) and the collector exclusive; StartWorld
// releases them. core.Runtime adapts its safepoint lock; callers that
// already guarantee quiescence (tests, single-threaded tools) pass
// StoppedWorld.
type World interface {
	StopWorld()
	StartWorld()
}

// StoppedWorld is the World for callers whose mutators are already
// stopped — the stop-the-world contract pgc.Collect has always assumed.
type StoppedWorld struct{}

// StopWorld is a no-op: nothing is running.
func (StoppedWorld) StopWorld() {}

// StartWorld is a no-op.
func (StoppedWorld) StartWorld() {}

// CollectConcurrent runs a crash-consistent collection of h with marking
// concurrent to the mutators — the pause holds only final remark,
// summary, compaction, and the redo-log finish.
//
// The protocol:
//
//  1. Initial handshake (brief pause): detach PLABs and recycled holes
//     (pheap.PrepareForCollection — region tops are already persisted),
//     snapshot the region-top table, capture the root set, clear both
//     bitmaps, arm the SATB pre-write barrier, and persist the GC-phase
//     word as mid-concurrent-mark.
//  2. Concurrent mark: trace the graph below the snapshot tops while
//     mutators keep bump-allocating above them (allocate-black) and the
//     barrier records every overwritten referent; drain those records
//     until a drain comes back empty.
//  3. Final pause: one last SATB drain + trace, the allocate-black sweep
//     over everything allocated since the snapshot, then exactly the STW
//     collector's tail — persist bitmaps, stamp gcActive (after which
//     the phase word is retired: the persisted bitmap now carries the
//     cycle), summarize, compact, finish through the redo log, patch
//     roots, republish holes.
//
// Crash consistency: before gcActive is set the heap is untouched — a
// crash leaves the phase word announcing the aborted mark, which
// Recover/Load clear (fall back to a fresh cycle). After gcActive is set
// the persisted bitmap drives the standard resumable recovery.
//
// The result's reachable post-GC heap is byte-identical to Collect's on
// the same quiescent workload: both run the same tracer and the summary
// is a pure function of the bitmap.
//
// CollectConcurrent runs with one GC worker; CollectConcurrentWorkers
// fans marking and the parallel compaction passes over a pool.
func CollectConcurrent(h *pheap.Heap, ext Rooter, w World) (Result, error) {
	return CollectConcurrentWorkers(h, ext, w, 1)
}

// CollectConcurrentWorkers is CollectConcurrent with marking fanned over
// workers work-stealing tracers (which also drain the SATB and
// remset-delta buffers concurrently with tracing) and the compaction
// pause's reference-fix and fill passes sharded over the same count.
// The heap image it produces is byte-identical for every workers value
// on a quiescent heap: marking publishes idempotent bitmap bits and a
// commutative CAS-max card summary, and the compaction passes only
// reorder operations on disjoint cache lines.
func CollectConcurrentWorkers(h *pheap.Heap, ext Rooter, w World, workers int) (Result, error) {
	if workers < 1 {
		workers = 1
	}
	if !h.TryBeginCollection() {
		return Result{}, fmt.Errorf("pgc: another collection of this heap is already running")
	}
	defer h.EndCollection()
	if h.GCActive() {
		return Result{}, fmt.Errorf("pgc: heap is mid-collection; run Recover first")
	}
	if ext == nil {
		ext = NoRoots{}
	}
	if w == nil {
		w = StoppedWorld{}
	}
	dev := h.Device()
	statsBefore := dev.Stats()
	tel := h.Telemetry() // nil when telemetry is disabled; every method no-ops
	fr := h.FlightRecorder()
	var pauseStats nvm.Stats

	// Phase 1: initial handshake.
	w.StopWorld()
	pause1Start := time.Now()
	p1Before := dev.Stats()
	if h.GCPhase() != pheap.GCPhaseIdle {
		h.SetGCPhase(pheap.GCPhaseIdle) // stale announcement from an aborted cycle
	}
	h.PrepareForCollection()
	h.MarkBitmap().ClearAll()
	h.RegionBitmap().ClearAll()
	snap := h.SnapshotRegionTops()
	roots := heapRoots(h, ext)
	h.BeginConcurrentMark(snap)
	h.SetGCPhase(pheap.GCPhaseConcurrentMark)
	fr.Append(blackbox.EvGCBegin, 1, h.GlobalTS(), 0)
	pauseStats = pauseStats.Add(dev.Stats().Sub(p1Before))
	pause1 := time.Since(pause1Start)
	w.StartWorld()
	tel.RecordSpan(telemetry.SpanGCHandshake, -1, -1, pause1Start, pause1)

	// Phase 2: concurrent mark. Any error aborts the cycle: disarm the
	// barrier under a pause and clear the phase word — nothing has moved.
	markStart := time.Now()
	mk := concurrent.NewMarker(h, snap, workers)
	abort := func(err error) (Result, error) {
		w.StopWorld()
		h.EndConcurrentMark()
		h.SetGCPhase(pheap.GCPhaseIdle)
		fr.Append(blackbox.EvGCAbort, h.GlobalTS(), 0, 0)
		w.StartWorld()
		return Result{}, err
	}
	if err := mk.MarkRoots(roots); err != nil {
		return abort(err)
	}
	if err := mk.ConcurrentDrainLoop(); err != nil {
		return abort(err)
	}
	markTime := time.Since(markStart)
	tel.RecordSpan(telemetry.SpanGCMark, -1, -1, markStart, markTime)
	// Snapshot the workers' locally-tallied device traffic now, while it
	// covers exactly the concurrent phase: these reads and writes were
	// folded into the shared counters between the pauses (or will be
	// folded during pause 2, for the remark's share), so the pause-window
	// deltas below miss precisely this amount. Mutator traffic during
	// marking is attributed at its own call sites and never lands here.
	var concStats nvm.Stats
	for _, ws := range mk.MarkWorkerStats() {
		concStats = concStats.Add(ws)
	}

	// Phase 3: final pause.
	w.StopWorld()
	pause2Start := time.Now()
	p2Before := dev.Stats()
	finalErr := func(err error) (Result, error) {
		h.SetGCPhase(pheap.GCPhaseIdle)
		fr.Append(blackbox.EvGCAbort, h.GlobalTS(), 0, 0)
		w.StartWorld()
		return Result{}, err
	}
	h.PrepareForCollection() // mutators attached fresh PLABs while marking ran
	h.EndConcurrentMark()
	dirtyRegions := h.SATBDirtyCards()
	remarkStart := time.Now()
	if err := mk.FinalRemark(h.SnapshotRegionTops()); err != nil {
		return finalErr(err)
	}
	tel.RecordSpan(telemetry.SpanGCRemark, -1, -1, remarkStart, time.Since(remarkStart))
	liveObjects, liveBytes := mk.Counts()
	h.PersistMarkBitmapUsed()
	h.RegionBitmap().Persist()
	fr.Append(blackbox.EvGCMarkDone, uint64(liveObjects), uint64(liveBytes), 0)

	// From here the tail is the STW collector's: stamp, summarize,
	// compact, finish. The phase word retires once gcActive carries the
	// cycle — the persisted bitmap is complete, so recovery resumes the
	// compaction rather than discarding the mark.
	cur := h.GlobalTS() + 1
	h.SetGCState(cur, true)
	h.SetGCPhase(pheap.GCPhaseIdle)
	fr.Append(blackbox.EvGCStamp, cur, uint64(liveObjects), uint64(liveBytes))
	sumStart := time.Now()
	s, err := Summarize(h)
	if err != nil {
		h.SetGCState(cur, false)
		return finalErr(err)
	}
	sumTime := time.Since(sumStart)
	if s.LiveObjects != liveObjects || s.LiveBytes != liveBytes {
		h.SetGCState(cur, false)
		return finalErr(fmt.Errorf("pgc: summary disagrees with concurrent marking: %d/%d objects, %d/%d bytes",
			s.LiveObjects, liveObjects, s.LiveBytes, liveBytes))
	}
	// The compactor skips reference fixing for regions the marker proved
	// free of references to moved objects; the barrier's dirty cards veto
	// regions mutated after their objects were traced. This is what keeps
	// the pause proportional to churn + moves, not to everything live.
	h.ResetFreeHoles()
	compactStart := time.Now()
	cr := compact(h, s, cur, buildCleanCards(s, mk.MaxOutgoing(), dirtyRegions), workers)
	compactTime := time.Since(compactStart)
	fr.Append(blackbox.EvGCCompactDone, uint64(s.MovedObjects), uint64(s.MovedBytes), 0)
	redoBefore := dev.Stats()
	redoStart := time.Now()
	finish(h, s, cr.topEntries)
	redoStats := dev.Stats().Sub(redoBefore)
	redoTime := time.Since(redoStart)
	ext.UpdateRoots(s.Forward)
	h.SetFreeHoles(cr.holes)
	fr.Append(blackbox.EvGCEnd, uint64(s.LiveObjects), uint64(s.MovedObjects), uint64(s.NewTop))
	snapCounters(h, fr)
	pauseStats = pauseStats.Add(dev.Stats().Sub(p2Before))
	pause2 := time.Since(pause2Start)
	w.StartWorld()

	// Phase timeline + device attribution, recorded after the world
	// restarts (the span ring is DRAM-only; nothing here holds the pause
	// open). GC device traffic is the two pause windows plus the
	// concurrent-phase worker traffic snapshotted above, minus the
	// redo-log finish window, which gets its own subsystem.
	tel.RecordSpan(telemetry.SpanGCSummarize, -1, -1, sumStart, sumTime)
	tel.RecordSpan(telemetry.SpanGCCompact, -1, -1, compactStart, compactTime)
	tel.RecordSpan(telemetry.SpanGCRedo, -1, -1, redoStart, redoTime)
	tel.RecordSpan(telemetry.SpanGCFinalPause, -1, -1, pause2Start, pause2)
	for i, d := range mk.MarkWorkerTimes() {
		tel.RecordSpan(telemetry.SpanGCMarkWorker, -1, i, markStart, d)
	}
	for i, d := range cr.fixWorkerTimes {
		tel.RecordSpan(telemetry.SpanGCFixWorker, -1, i, compactStart, d)
	}
	if sc := tel.Shared(); sc != nil {
		sc.AtomicInc(telemetry.CtrGCCycles)
		sc.AtomicDevStats(nvm.SubGC, pauseStats.Add(concStats).Sub(redoStats))
		sc.AtomicDevStats(nvm.SubRedo, redoStats)
	}

	return Result{
		LiveObjects:           s.LiveObjects,
		LiveBytes:             s.LiveBytes,
		MovedObjects:          s.MovedObjects,
		MovedBytes:            s.MovedBytes,
		NewTop:                s.NewTop,
		MarkTime:              markTime,
		PauseTime:             pause1 + pause2,
		DeviceStats:           dev.Stats().Sub(statsBefore),
		PauseDeviceStats:      pauseStats,
		MarkWorkerStats:       mk.MarkWorkerStats(),
		CompactFixWorkerStats: cr.fixWorkerStats,
		CompactSerialStats:    cr.serialStats,
		MarkWorkerTimes:       mk.MarkWorkerTimes(),
		CompactFixWorkerTimes: cr.fixWorkerTimes,
	}, nil
}
