package pgc

import (
	"bytes"
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/nvm/faultdev"
	"espresso/internal/pgc/concurrent"
	"espresso/internal/pheap"
)

// buildGarbageBelt allocates g unrooted nodes before anything else — a
// concentrated block of dead wood at the bottom of the heap. Scattered
// garbage in a buildGraph workload (~25%) stays under the summary's
// dense-prefix budget (1/3) and is handled in place, so tests that need
// the evacuation and reference-fix machinery exercised lay a belt first:
// cumulative garbage then exceeds the budget at the first live object
// and everything above the belt moves.
func buildGarbageBelt(t testing.TB, h *pheap.Heap, reg *klass.Registry, g int) {
	t.Helper()
	node := nodeKlass(reg)
	for i := 0; i < g; i++ {
		if _, err := h.Alloc(node, 0); err != nil {
			t.Fatal(err)
		}
	}
}

// runMark clears the bitmaps, snapshots the tops, and runs one full
// parallel marking pass over the quiescent heap — the marker driven the
// way the collectors drive it, minus summary and compaction.
func runMark(t *testing.T, h *pheap.Heap, workers int) *concurrent.Marker {
	t.Helper()
	h.PrepareForCollection()
	h.MarkBitmap().ClearAll()
	h.RegionBitmap().ClearAll()
	mk := concurrent.NewMarker(h, h.SnapshotRegionTops(), workers)
	if err := mk.MarkRoots(heapRoots(h, NoRoots{})); err != nil {
		t.Fatalf("mark (workers=%d): %v", workers, err)
	}
	return mk
}

// TestSummaryDeadWoodBudget pins the dense-prefix policy: garbage whose
// cumulative share of the prefix stays within 1/deadWoodDenominator is
// absorbed as dead wood (no evacuation, gaps plugged with fillers and —
// when line-sized — recycled as holes), while a concentrated belt that
// exceeds the budget forces everything above it to slide. Both outcomes
// must be pure functions of the bitmap: a second collection finds
// nothing left to do.
func TestSummaryDeadWoodBudget(t *testing.T) {
	// Light, scattered garbage: drop every 9th node from the chain
	// (~11% dead, under the 1/3 budget) — everything stays put.
	h, reg := newHeap(t, 2<<20)
	node := nodeKlass(reg)
	var head layout.Ref
	var headID uint64
	m := &model{next: map[uint64]uint64{}, other: map[uint64]uint64{}, roots: map[string]uint64{}}
	live := 0
	for i := 0; i < 270; i++ {
		ref, err := h.Alloc(node, 0)
		if err != nil {
			t.Fatal(err)
		}
		if i%9 == 0 {
			continue // unrooted: dead wood
		}
		id := uint64(i + 1)
		h.SetWord(ref, layout.FieldOff(fID), id)
		h.SetWord(ref, layout.FieldOff(fNext), uint64(head))
		m.next[id] = headID
		head, headID = ref, id
		live++
	}
	if err := h.SetRoot("head", head); err != nil {
		t.Fatal(err)
	}
	m.roots["head"] = headID
	h.Device().Flush(h.Geo().DataOff, h.Top()-h.Geo().DataOff)
	h.Device().Fence()
	top := h.Top()
	res, err := Collect(h, NoRoots{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveObjects != live || res.MovedObjects != 0 {
		t.Fatalf("light garbage: live %d moved %d, want %d moved 0 (dead wood evacuated?)",
			res.LiveObjects, res.MovedObjects, live)
	}
	if res.NewTop != top {
		t.Fatalf("light garbage: top slid %d → %d despite in-place summary", top, res.NewTop)
	}
	verifyGraph(t, h, m)
	// The dead nodes' slots must now parse as fillers.
	fillerBytes := 0
	if err := h.ForEachObject(func(off int, k *klass.Klass, size int) bool {
		if pheap.IsFiller(k) {
			fillerBytes += size
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if want := (270 - live) * node.SizeOf(0); fillerBytes != want {
		t.Fatalf("light garbage: %d filler bytes, want %d (interior gaps unplugged)", fillerBytes, want)
	}
	if res2, err := Collect(h, NoRoots{}); err != nil || res2.MovedObjects != 0 || res2.LiveObjects != live {
		t.Fatalf("second collection not a fixpoint: %+v %v", res2, err)
	}

	// Heavy, concentrated garbage: a belt over the budget evacuates
	// every live object.
	h2, reg2 := newHeap(t, 2<<20)
	buildGarbageBelt(t, h2, reg2, 200)
	m2 := buildGraph(t, h2, reg2, 5, 100, 3)
	want2 := len(m2.reachable())
	res, err = Collect(h2, NoRoots{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveObjects != want2 || res.MovedObjects != want2 {
		t.Fatalf("belt: live %d moved %d, want all %d moved", res.LiveObjects, res.MovedObjects, want2)
	}
	verifyGraph(t, h2, m2)
}

// TestParallelMarkTerminationDeepChain is the deterministic termination
// test for the work-stealing barrier's hardest shape: a single deep
// chain holds exactly one gray object at any moment, so only the worker
// owning it ever has work — the other workers must spin through failed
// steals and SATB-shard drains, park in the idle barrier, and the pool
// must still quiesce with every object marked exactly once. If the
// barrier exited early (idle count racing the owner's pushes) the counts
// would come up short; if claiming raced, the per-worker counts would
// sum past the chain length. Marking repeatedly must reproduce the same
// totals — the bitmap claim makes the trace deterministic even though
// the idle/steal interleaving is not.
func TestParallelMarkTerminationDeepChain(t *testing.T) {
	const n = 3000
	h, reg := newHeap(t, 4<<20)
	node := nodeKlass(reg)
	size := node.SizeOf(0)
	refs := make([]layout.Ref, n)
	var head layout.Ref
	for i := 0; i < n; i++ {
		ref, err := h.Alloc(node, 0)
		if err != nil {
			t.Fatal(err)
		}
		h.SetWord(ref, layout.FieldOff(fID), uint64(i+1))
		h.SetWord(ref, layout.FieldOff(fNext), uint64(head))
		refs[i] = ref
		head = ref
	}
	if err := h.SetRoot("head", head); err != nil {
		t.Fatal(err)
	}
	h.Device().Flush(h.Geo().DataOff, h.Top()-h.Geo().DataOff)
	h.Device().Fence()

	dataOff := h.Geo().DataOff
	for round := 0; round < 3; round++ {
		mk := runMark(t, h, 4)
		objs, bs := mk.Counts()
		if objs != n || bs != n*size {
			t.Fatalf("round %d: counted %d objects / %d bytes, want %d / %d",
				round, objs, bs, n, n*size)
		}
		sum := 0
		for _, c := range mk.WorkerObjectCounts() {
			sum += c
		}
		if sum != n {
			t.Fatalf("round %d: per-worker counts sum to %d, want %d (an object was claimed twice or dropped)",
				round, sum, n)
		}
		bm := h.MarkBitmap()
		for i, ref := range refs {
			if !bm.Get((h.OffOf(ref) - dataOff) / layout.WordSize) {
				t.Fatalf("round %d: node %d unmarked after termination", round, i+1)
			}
		}
	}
}

// TestParallelMarkCountsWideGraph: the steal-heavy counterpart — a wide
// random graph keeps every deque busy, so the claim CAS is what prevents
// double counting. The per-worker counts must sum to exactly the model's
// reachable set for any worker count.
func TestParallelMarkCountsWideGraph(t *testing.T) {
	h, reg := newHeap(t, 4<<20)
	m := buildGraph(t, h, reg, 31, 1500, 8)
	want := len(m.reachable())
	for _, workers := range []int{1, 2, 4, 8} {
		mk := runMark(t, h, workers)
		objs, _ := mk.Counts()
		sum := 0
		for _, c := range mk.WorkerObjectCounts() {
			sum += c
		}
		if objs != want || sum != want {
			t.Fatalf("workers=%d: counted %d (per-worker sum %d), want %d",
				workers, objs, sum, want)
		}
	}
}

// TestCollectParallelWorkersByteIdentical is the worker-count
// differential oracle: on a quiescent heap every workers value must
// produce the same heap image bit for bit — marking publishes idempotent
// bitmap bits, the summary is a pure function of the bitmap, and the
// parallel compaction passes only reorder writes on disjoint lines.
func TestCollectParallelWorkersByteIdentical(t *testing.T) {
	build := func() *pheap.Heap {
		h, reg := newHeap(t, 4<<20)
		buildGarbageBelt(t, h, reg, 250)
		buildGraph(t, h, reg, 77, 600, 6)
		return h
	}
	h1 := build()
	r1, err := CollectConcurrentWorkers(h1, NoRoots{}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.MovedObjects == 0 {
		t.Fatal("workload compacted nothing; the parallel fix pass is untested")
	}
	geo := h1.Geo()
	sections := []struct {
		name   string
		off, n int
	}{
		{"data area", geo.DataOff, geo.DataSize},
		{"region-top table", geo.RegionTopOff, geo.RegionTopSize},
		{"name table", geo.NameTabOff, geo.NameTabCap * 64},
		{"mark bitmap", geo.MarkBmpOff, geo.MarkBmpSize},
	}
	for _, workers := range []int{2, 4, 8} {
		hN := build()
		rN, err := CollectConcurrentWorkers(hN, NoRoots{}, nil, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if r1.LiveObjects != rN.LiveObjects || r1.LiveBytes != rN.LiveBytes ||
			r1.MovedObjects != rN.MovedObjects || r1.NewTop != rN.NewTop {
			t.Fatalf("workers=%d results differ: %+v vs %+v", workers, r1, rN)
		}
		if len(rN.MarkWorkerStats) != workers || len(rN.CompactFixWorkerStats) != workers {
			t.Fatalf("workers=%d: per-worker stats have %d/%d entries",
				workers, len(rN.MarkWorkerStats), len(rN.CompactFixWorkerStats))
		}
		for _, sec := range sections {
			a := h1.Device().View(sec.off, sec.n)
			b := hN.Device().View(sec.off, sec.n)
			if !bytes.Equal(a, b) {
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("workers=%d: %s differs at byte %d (abs %d): %#x vs %#x",
							workers, sec.name, i, sec.off+i, a[i], b[i])
					}
				}
			}
		}
	}
}

// TestCollectParallelCrashAtEveryFlush is the workers=4 arm of the
// crash sweep: the parallel fix and fill passes interleave their flushes
// nondeterministically across workers, so crashing at the k-th flush
// samples genuinely different partial states than the serial sweep —
// recovery (always single-threaded) must still restore the graph from
// any of them.
func TestCollectParallelCrashAtEveryFlush(t *testing.T) {
	const seed = 173
	h0, reg0 := newHeap(t, 2<<20)
	buildGarbageBelt(t, h0, reg0, 120)
	m := buildGraph(t, h0, reg0, seed, 120, 4)
	base := h0.Device().Stats().Flushes
	if res, err := CollectConcurrentWorkers(h0, NoRoots{}, nil, 4); err != nil {
		t.Fatal(err)
	} else if res.MovedObjects == 0 {
		t.Fatal("workload compacted nothing; the sweep misses the move protocol")
	}
	totalFlushes := h0.Device().Stats().Flushes - base
	if totalFlushes < 20 {
		t.Fatalf("suspiciously few flushes in a parallel GC: %d", totalFlushes)
	}

	hSnap, regSnap := newHeap(t, 2<<20)
	buildGarbageBelt(t, hSnap, regSnap, 120)
	buildGraph(t, hSnap, regSnap, seed, 120, 4)
	hSnap.Device().FlushAll()
	pristine := hSnap.Device().CrashImage(nvm.CrashFlushedOnly, 0)

	step := uint64(1)
	if totalFlushes > 200 {
		step = totalFlushes / 200
	}
	for k := uint64(1); k <= totalFlushes; k += step {
		img := make([]byte, len(pristine))
		copy(img, pristine)
		dev := nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})
		h, err := pheap.Load(dev, klass.NewRegistry())
		if err != nil {
			t.Fatalf("k=%d: load pristine: %v", k, err)
		}
		faultdev.CrashIn(dev, k)
		crashed, err := faultdev.Run(dev, func() error {
			_, err := CollectConcurrentWorkers(h, NoRoots{}, nil, 4)
			return err
		})
		if err != nil {
			t.Fatalf("k=%d: collect: %v", k, err)
		}

		after := nvm.FromImage(dev.CrashImage(nvm.CrashRandomEviction, int64(k)), nvm.Config{Mode: nvm.Tracked})
		h2, err := pheap.Load(after, klass.NewRegistry())
		if err != nil {
			t.Fatalf("k=%d: reload: %v", k, err)
		}
		if _, err := Recover(h2); err != nil {
			t.Fatalf("k=%d: recover: %v", k, err)
		}
		if h2.GCActive() {
			t.Fatalf("k=%d: gcActive after recovery", k)
		}
		verifyGraph(t, h2, m)
		if !crashed {
			break // k beyond the GC's flush count: clean finish
		}
	}
}

// TestRecoverSplitFinishBatch is the single-publish regression test: the
// finish batch is accumulated by several fill workers (each stamps the
// top entries of the regions it owns), and nothing any of them produced
// may become durable before the ONE RedoCommit's count+state flush. The
// test crashes a workers=4 collection at every flush of the finish tail
// — redo entries written but uncommitted, the commit point itself, and
// every step of the replay — and asserts the all-old-or-all-new rule on
// the crash image: an uncommitted log must leave every persisted region
// top and root at its exact pre-GC value (a single leaked worker batch
// would show as a mixed table), a committed one is completed by
// load+recovery. Either way recovery must converge to the clean run's
// image, byte for byte.
func TestRecoverSplitFinishBatch(t *testing.T) {
	const seed = 58
	build := func() (*pheap.Heap, *model) {
		h, reg := newHeap(t, 2<<20)
		buildGarbageBelt(t, h, reg, 200)
		m := buildGraph(t, h, reg, seed, 150, 5)
		h.Device().FlushAll()
		return h, m
	}

	// Clean reference run — over a load of the same pristine image every
	// crashed run starts from, so the flush ordinals and the region-top
	// table line up exactly (pheap.Load seals half-open regions, which
	// already rewrites tops before any collection runs).
	h0, m := build()
	pristine := h0.Device().CrashImage(nvm.CrashFlushedOnly, 0)
	hClean, err := pheap.Load(nvm.FromImage(append([]byte(nil), pristine...), nvm.Config{Mode: nvm.Tracked}), klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	geo := hClean.Geo()
	preTops := make([]uint64, geo.DataRegions())
	for r := range preTops {
		preTops[r] = hClean.Device().ReadU64(hClean.RegionTopMetaOff(r))
	}
	base := hClean.Device().Stats().Flushes
	res, err := CollectConcurrentWorkers(hClean, NoRoots{}, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.MovedObjects == 0 {
		t.Fatal("test graph compacted nothing; the finish batch is trivial")
	}
	totalFlushes := hClean.Device().Stats().Flushes - base
	postTops := make([]uint64, geo.DataRegions())
	for r := range postTops {
		postTops[r] = hClean.Device().ReadU64(hClean.RegionTopMetaOff(r))
	}
	// finish commits one entry per root, one per data region, plus the
	// gcActive retirement; RedoCommit flushes entries then count+state,
	// RedoApply flushes each applied entry then the state retirement.
	batch := len(hClean.Roots()) + geo.DataRegions() + 1
	tail := uint64(2*batch + 8) // generous cover of commit + replay + slack
	firstK := uint64(1)
	if totalFlushes > tail {
		firstK = totalFlushes - tail
	}

	for k := firstK; k <= totalFlushes; k++ {
		img := make([]byte, len(pristine))
		copy(img, pristine)
		dev := nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})
		h, err := pheap.Load(dev, klass.NewRegistry())
		if err != nil {
			t.Fatalf("k=%d: load pristine: %v", k, err)
		}
		faultdev.CrashIn(dev, k)
		crashed, err := faultdev.Run(dev, func() error {
			_, err := CollectConcurrentWorkers(h, NoRoots{}, nil, 4)
			return err
		})
		if err != nil {
			t.Fatalf("k=%d: collect: %v", k, err)
		}

		// Inspect the raw crash image before any recovery runs. With no
		// committed log pending, the metadata must be all-old (collection
		// still active — no worker's top entries may have leaked) or
		// all-new (the crash fell after the log was fully replayed and
		// retired, gcActive cleared with it). Anything mixed is a
		// single-publish violation.
		after := nvm.FromImage(dev.CrashImage(nvm.CrashFlushedOnly, 0), nvm.Config{Mode: nvm.Tracked})
		if after.ReadU64(geo.RedoOff) != 1 {
			want, label := preTops, "pre-GC"
			if after.ReadU64(hClean.GCActiveMetaOff()) == 0 {
				want, label = postTops, "post-GC"
			}
			for r := range want {
				if got := after.ReadU64(hClean.RegionTopMetaOff(r)); got != want[r] {
					t.Fatalf("k=%d: region %d top %#x != %s %#x with no redo log pending (split finish batch)",
						k, r, got, label, want[r])
				}
			}
		}

		h2, err := pheap.Load(after, klass.NewRegistry())
		if err != nil {
			t.Fatalf("k=%d: reload: %v", k, err)
		}
		if _, err := Recover(h2); err != nil {
			t.Fatalf("k=%d: recover: %v", k, err)
		}
		if h2.GCActive() {
			t.Fatalf("k=%d: gcActive after recovery", k)
		}
		verifyGraph(t, h2, m)
		for r := range postTops {
			got := h2.Device().ReadU64(h2.RegionTopMetaOff(r))
			if got == postTops[r] {
				continue
			}
			// When the crash fell after the commit point, the reload
			// replayed the redo log and retired the collection before
			// Recover ran — and pheap.Load then sealed the half-open last
			// region (tail plugged, top advanced to the region end). That
			// is load policy, not a finish-batch leak; only the sealed
			// variant of the clean run's partial top is acceptable.
			start := uint64(geo.DataOff + r*layout.RegionSize)
			end := start + layout.RegionSize
			if postTops[r] > start && postTops[r] < end && got == end {
				continue
			}
			t.Fatalf("k=%d: region %d top %#x != clean run's %#x after recovery",
				k, r, got, postTops[r])
		}
		// The compacted prefix must converge on the clean run's bytes
		// (above NewTop the crashed attempt may leave arbitrary junk in
		// regions the finish reset to untouched).
		a := hClean.Device().View(geo.DataOff, res.NewTop-geo.DataOff)
		b := h2.Device().View(geo.DataOff, res.NewTop-geo.DataOff)
		if !bytes.Equal(a, b) {
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("k=%d: compacted prefix differs from clean run at byte %d (abs %d): %#x vs %#x",
						k, i, geo.DataOff+i, a[i], b[i])
				}
			}
		}
		if !crashed {
			break
		}
	}
}
