package pgc

import (
	"fmt"
	"math/rand"
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/nvm/faultdev"
	"espresso/internal/pheap"
)

// The test graph class: Node { id long; next ref; other ref }.
const (
	fID    = 0
	fNext  = 1
	fOther = 2
)

func nodeKlass(reg *klass.Registry) *klass.Klass {
	k, err := reg.Define(klass.MustInstance("Node", nil,
		klass.Field{Name: "id", Type: layout.FTLong},
		klass.Field{Name: "next", Type: layout.FTRef, RefKlass: "Node"},
		klass.Field{Name: "other", Type: layout.FTRef, RefKlass: "Node"},
	))
	if err != nil {
		panic(err)
	}
	return k
}

// model describes the intended object graph by stable node ids.
type model struct {
	next  map[uint64]uint64 // id → id of next (0 = null)
	other map[uint64]uint64
	roots map[string]uint64 // root name → id
}

// buildGraph allocates n nodes with random links and nRoots named roots,
// deterministically from seed. Unrooted subgraphs become garbage.
func buildGraph(t testing.TB, h *pheap.Heap, reg *klass.Registry, seed int64, n, nRoots int) *model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	node := nodeKlass(reg)
	refs := make([]layout.Ref, n)
	m := &model{next: map[uint64]uint64{}, other: map[uint64]uint64{}, roots: map[string]uint64{}}
	for i := range refs {
		ref, err := h.Alloc(node, 0)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
		h.SetWord(ref, layout.FieldOff(fID), uint64(i+1))
	}
	link := func(from int, field int, tgt map[uint64]uint64) {
		to := rng.Intn(n + 1) // n means null
		var toRef layout.Ref
		var toID uint64
		if to < n {
			toRef = refs[to]
			toID = uint64(to + 1)
		}
		h.SetWord(refs[from], layout.FieldOff(field), uint64(toRef))
		tgt[uint64(from+1)] = toID
	}
	for i := 0; i < n; i++ {
		link(i, fNext, m.next)
		link(i, fOther, m.other)
	}
	for r := 0; r < nRoots; r++ {
		i := rng.Intn(n)
		name := fmt.Sprintf("root%d", r)
		if err := h.SetRoot(name, refs[i]); err != nil {
			t.Fatal(err)
		}
		m.roots[name] = uint64(i + 1)
	}
	// Persist object payloads the way an application would before relying
	// on them across a crash.
	h.Device().Flush(h.Geo().DataOff, h.Top()-h.Geo().DataOff)
	h.Device().Fence()
	return m
}

// reachable computes the ids reachable from the model's roots.
func (m *model) reachable() map[uint64]bool {
	seen := map[uint64]bool{}
	var visit func(id uint64)
	visit = func(id uint64) {
		if id == 0 || seen[id] {
			return
		}
		seen[id] = true
		visit(m.next[id])
		visit(m.other[id])
	}
	for _, id := range m.roots {
		visit(id)
	}
	return seen
}

// verifyGraph checks that the heap's reachable graph matches the model
// exactly: same roots, same edges, same reachable node count, and that the
// whole heap below top parses.
func verifyGraph(t testing.TB, h *pheap.Heap, m *model) {
	t.Helper()
	idOf := func(ref layout.Ref) uint64 {
		if ref == layout.NullRef {
			return 0
		}
		return h.GetWord(ref, layout.FieldOff(fID))
	}
	seen := map[uint64]bool{}
	var stack []layout.Ref
	for name, wantID := range m.roots {
		ref, ok := h.GetRoot(name)
		if !ok {
			t.Fatalf("root %s missing", name)
		}
		if got := idOf(ref); got != wantID {
			t.Fatalf("root %s points at node %d, want %d", name, got, wantID)
		}
		stack = append(stack, ref)
	}
	for len(stack) > 0 {
		ref := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		id := idOf(ref)
		if seen[id] {
			continue
		}
		seen[id] = true
		k, err := h.KlassOf(ref)
		if err != nil || k.Name != "Node" {
			t.Fatalf("node %d: klass %v err %v", id, k, err)
		}
		next := layout.Ref(h.GetWord(ref, layout.FieldOff(fNext)))
		other := layout.Ref(h.GetWord(ref, layout.FieldOff(fOther)))
		if got := idOf(next); got != m.next[id] {
			t.Fatalf("node %d: next = %d, want %d", id, got, m.next[id])
		}
		if got := idOf(other); got != m.other[id] {
			t.Fatalf("node %d: other = %d, want %d", id, got, m.other[id])
		}
		if next != 0 && !seen[idOf(next)] {
			stack = append(stack, next)
		}
		if other != 0 && !seen[idOf(other)] {
			stack = append(stack, other)
		}
	}
	want := m.reachable()
	if len(seen) != len(want) {
		t.Fatalf("reachable %d nodes, want %d", len(seen), len(want))
	}
	if err := h.ForEachObject(func(int, *klass.Klass, int) bool { return true }); err != nil {
		t.Fatalf("post-GC heap does not parse: %v", err)
	}
}

func newHeap(t testing.TB, dataSize int) (*pheap.Heap, *klass.Registry) {
	t.Helper()
	reg := klass.NewRegistry()
	h, err := pheap.Create(reg, pheap.Config{DataSize: dataSize, Mode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	return h, reg
}

func TestCollectPreservesGraphAndReclaims(t *testing.T) {
	h, reg := newHeap(t, 4<<20)
	m := buildGraph(t, h, reg, 42, 500, 5)
	freeBefore := h.FreeBytes()
	res, err := Collect(h, NoRoots{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveObjects != len(m.reachable()) {
		t.Fatalf("live = %d, want %d", res.LiveObjects, len(m.reachable()))
	}
	if h.FreeBytes() < freeBefore {
		t.Fatalf("no space reclaimed: free %d → %d", freeBefore, h.FreeBytes())
	}
	if h.GCActive() {
		t.Fatal("gcActive left set")
	}
	verifyGraph(t, h, m)
}

func TestCollectEmptyHeap(t *testing.T) {
	h, _ := newHeap(t, 1<<20)
	res, err := Collect(h, NoRoots{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveObjects != 0 || h.Top() != h.Geo().DataOff {
		t.Fatalf("empty collect: %+v top=%d", res, h.Top())
	}
}

func TestCollectAllGarbage(t *testing.T) {
	h, reg := newHeap(t, 2<<20)
	node := nodeKlass(reg)
	for i := 0; i < 1000; i++ {
		if _, err := h.Alloc(node, 0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Collect(h, NoRoots{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveObjects != 0 {
		t.Fatalf("live = %d, want 0", res.LiveObjects)
	}
	if h.Top() != h.Geo().DataOff {
		t.Fatalf("top = %d, want reset to %d", h.Top(), h.Geo().DataOff)
	}
	// Space is reusable.
	if _, err := h.Alloc(node, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryIdempotent(t *testing.T) {
	h, reg := newHeap(t, 4<<20)
	buildGarbageBelt(t, h, reg, 150) // past the dead-wood budget: real moves
	buildGraph(t, h, reg, 7, 300, 4)
	if _, err := mark(h, NoRoots{}, 1); err != nil {
		t.Fatal(err)
	}
	h.MarkBitmap().Persist()
	s1, err := Summarize(h)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Summarize(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Moves) != len(s2.Moves) || s1.NewTop != s2.NewTop {
		t.Fatalf("summary not deterministic: %d/%d moves, top %d/%d",
			len(s1.Moves), len(s2.Moves), s1.NewTop, s2.NewTop)
	}
	for i := range s1.Moves {
		if s1.Moves[i] != s2.Moves[i] {
			t.Fatalf("move %d differs: %+v vs %+v", i, s1.Moves[i], s2.Moves[i])
		}
	}
}

func TestSummaryInvariants(t *testing.T) {
	h, reg := newHeap(t, 4<<20)
	buildGarbageBelt(t, h, reg, 200) // past the dead-wood budget: real moves
	buildGraph(t, h, reg, 11, 400, 3)
	if _, err := mark(h, NoRoots{}, 1); err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(h)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, mv := range s.Moves {
		if mv.Dst != mv.Src {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no evacuations; the invariants below are vacuous")
	}
	destOverlap := map[int]int{} // dst offset → size (check non-overlap)
	for i, mv := range s.Moves {
		if i > 0 && mv.Src <= s.Moves[i-1].Src {
			t.Fatal("moves not ascending by src")
		}
		srcRegion := (mv.Src - h.Geo().DataOff) / layout.RegionSize
		dstRegion := (mv.Dst - h.Geo().DataOff) / layout.RegionSize
		if mv.Dst != mv.Src && srcRegion == dstRegion {
			t.Fatalf("move %d: destination in its own source region", i)
		}
		destOverlap[mv.Dst] = mv.Size
	}
	// Destinations must not overlap.
	prevEnd := -1
	for _, mv := range sortedByDst(s.Moves) {
		if mv.Dst < prevEnd {
			t.Fatalf("overlapping destinations at %d", mv.Dst)
		}
		prevEnd = mv.Dst + mv.Size
	}
	_ = destOverlap
}

func sortedByDst(moves []Move) []Move {
	out := append([]Move(nil), moves...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Dst < out[j-1].Dst; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestRepeatedCollections(t *testing.T) {
	h, reg := newHeap(t, 4<<20)
	m := buildGraph(t, h, reg, 13, 400, 4)
	for i := 0; i < 4; i++ {
		if _, err := Collect(h, NoRoots{}); err != nil {
			t.Fatalf("collection %d: %v", i, err)
		}
		verifyGraph(t, h, m)
	}
}

func TestAllocateAfterCollect(t *testing.T) {
	h, reg := newHeap(t, 4<<20)
	m := buildGraph(t, h, reg, 17, 300, 3)
	if _, err := Collect(h, NoRoots{}); err != nil {
		t.Fatal(err)
	}
	node := reg.MustLookup("Node")
	for i := 0; i < 200; i++ {
		if _, err := h.Alloc(node, 0); err != nil {
			t.Fatal(err)
		}
	}
	verifyGraph(t, h, m)
	if _, err := Collect(h, NoRoots{}); err != nil {
		t.Fatal(err)
	}
	verifyGraph(t, h, m)
}

// sliceRooter exposes a DRAM slot slice as GC roots.
type sliceRooter struct{ slots []layout.Ref }

func (r *sliceRooter) Roots(visit func(layout.Ref)) {
	for _, s := range r.slots {
		visit(s)
	}
}

func (r *sliceRooter) UpdateRoots(fwd func(layout.Ref) layout.Ref) {
	for i, s := range r.slots {
		r.slots[i] = fwd(s)
	}
}

func TestExternalRootsKeepAliveAndGetUpdated(t *testing.T) {
	h, reg := newHeap(t, 2<<20)
	node := nodeKlass(reg)
	// Garbage in front so live objects must move.
	for i := 0; i < 100; i++ {
		if _, err := h.Alloc(node, 0); err != nil {
			t.Fatal(err)
		}
	}
	ref, _ := h.Alloc(node, 0)
	h.SetWord(ref, layout.FieldOff(fID), 777)
	h.FlushRange(ref, 0, node.SizeOf(0))
	ext := &sliceRooter{slots: []layout.Ref{ref}}
	res, err := Collect(h, ext)
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveObjects != 1 {
		t.Fatalf("live = %d, want 1 (external root)", res.LiveObjects)
	}
	if ext.slots[0] == ref {
		t.Fatal("external slot not forwarded (object should have moved)")
	}
	if got := h.GetWord(ext.slots[0], layout.FieldOff(fID)); got != 777 {
		t.Fatalf("payload after move = %d", got)
	}
}

func TestHumongousPinnedByGC(t *testing.T) {
	h, reg := newHeap(t, 8<<20)
	node := nodeKlass(reg)
	// garbage, then a humongous array, then more garbage
	for i := 0; i < 50; i++ {
		h.Alloc(node, 0)
	}
	huge, err := h.Alloc(reg.PrimArray(layout.FTLong), pheap.HugeThreshold/8+100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		h.Alloc(node, 0)
	}
	keep, _ := h.Alloc(node, 0)
	h.SetRoot("huge", huge)
	h.SetRoot("keep", keep)
	h.Device().FlushAll()
	if _, err := Collect(h, NoRoots{}); err != nil {
		t.Fatal(err)
	}
	got, _ := h.GetRoot("huge")
	if got != huge {
		t.Fatalf("humongous object moved: %#x → %#x", uint64(huge), uint64(got))
	}
	if err := h.ForEachObject(func(int, *klass.Klass, int) bool { return true }); err != nil {
		t.Fatalf("heap with pinned object does not parse: %v", err)
	}
}

func TestRecoverNoopOnCleanHeap(t *testing.T) {
	h, _ := newHeap(t, 1<<20)
	res, err := Recover(h)
	if err != nil || res.Recovered {
		t.Fatalf("recover on clean heap: %+v %v", res, err)
	}
}

// TestCrashDuringGCAtEveryFlush is the central crash-consistency test:
// build a graph, start a collection, crash it at the k-th device flush for
// every k, reload the image, run recovery, and verify the object graph is
// bit-for-bit intact. The crash image keeps a random subset of unflushed
// lines (CrashRandomEviction) to model arbitrary cache eviction.
func TestCrashDuringGCAtEveryFlush(t *testing.T) {
	const seed = 99
	// First, a clean run to count flushes. The garbage belt keeps the
	// workload past the dead-wood budget so the sweep crosses the full
	// evacuation protocol, not just fixes and fillers.
	h0, reg0 := newHeap(t, 2<<20)
	buildGarbageBelt(t, h0, reg0, 120)
	m := buildGraph(t, h0, reg0, seed, 120, 4)
	base := h0.Device().Stats().Flushes
	if res, err := Collect(h0, NoRoots{}); err != nil {
		t.Fatal(err)
	} else if res.MovedObjects == 0 {
		t.Fatal("workload compacted nothing; the sweep misses the move protocol")
	}
	totalFlushes := h0.Device().Stats().Flushes - base
	if totalFlushes < 20 {
		t.Fatalf("suspiciously few flushes in a full GC: %d", totalFlushes)
	}

	// Snapshot a pristine pre-GC image to restart from each iteration.
	hSnap, regSnap := newHeap(t, 2<<20)
	buildGarbageBelt(t, hSnap, regSnap, 120)
	buildGraph(t, hSnap, regSnap, seed, 120, 4)
	hSnap.Device().FlushAll()
	pristine := hSnap.Device().CrashImage(nvm.CrashFlushedOnly, 0)

	step := uint64(1)
	if totalFlushes > 400 {
		step = totalFlushes / 400
	}
	for k := uint64(1); k <= totalFlushes; k += step {
		img := make([]byte, len(pristine))
		copy(img, pristine)
		dev := nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})
		h, err := pheap.Load(dev, klass.NewRegistry())
		if err != nil {
			t.Fatalf("k=%d: load pristine: %v", k, err)
		}
		faultdev.CrashIn(dev, k)
		crashed, err := faultdev.Run(dev, func() error {
			_, err := Collect(h, NoRoots{})
			return err
		})
		if err != nil {
			t.Fatalf("k=%d: collect: %v", k, err)
		}

		// Power loss: arbitrary subset of dirty lines survives.
		after := nvm.FromImage(dev.CrashImage(nvm.CrashRandomEviction, int64(k)), nvm.Config{Mode: nvm.Tracked})
		h2, err := pheap.Load(after, klass.NewRegistry())
		if err != nil {
			t.Fatalf("k=%d: reload: %v", k, err)
		}
		if _, err := Recover(h2); err != nil {
			t.Fatalf("k=%d: recover: %v", k, err)
		}
		if h2.GCActive() {
			t.Fatalf("k=%d: gcActive after recovery", k)
		}
		verifyGraph(t, h2, m)
		if !crashed {
			break // k beyond the GC's flush count: clean finish
		}
	}
}

// TestCrashDuringRecoveryItself crashes recovery at several points and
// re-recovers; recovery must be idempotent.
func TestCrashDuringRecoveryItself(t *testing.T) {
	const seed = 123
	// Build and crash a GC mid-compact.
	h, reg := newHeap(t, 2<<20)
	m := buildGraph(t, h, reg, seed, 100, 3)
	faultdev.CrashIn(h.Device(), 40)
	if _, err := faultdev.Run(h.Device(), func() error {
		_, err := Collect(h, NoRoots{})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	crashImg := h.Device().CrashImage(nvm.CrashRandomEviction, 1)

	for k := uint64(1); k < 60; k += 3 {
		img := make([]byte, len(crashImg))
		copy(img, crashImg)
		dev := nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})
		h2, err := pheap.Load(dev, klass.NewRegistry())
		if err != nil {
			t.Fatalf("k=%d: load: %v", k, err)
		}
		faultdev.CrashIn(dev, k)
		if _, err := faultdev.Run(dev, func() error {
			_, err := Recover(h2)
			return err
		}); err != nil {
			t.Fatalf("k=%d: recover: %v", k, err)
		}

		dev2 := nvm.FromImage(dev.CrashImage(nvm.CrashRandomEviction, int64(k)), nvm.Config{Mode: nvm.Tracked})
		h3, err := pheap.Load(dev2, klass.NewRegistry())
		if err != nil {
			t.Fatalf("k=%d: second load: %v", k, err)
		}
		if _, err := Recover(h3); err != nil {
			t.Fatalf("k=%d: second recover: %v", k, err)
		}
		verifyGraph(t, h3, m)
	}
}

func TestGCFlushOverheadMeasurable(t *testing.T) {
	// The §6.4 experiment's mechanism: the same GC with flushes disabled
	// performs the same moves but writes back no lines.
	build := func() *pheap.Heap {
		h, reg := newHeap(t, 4<<20)
		buildGraph(t, h, reg, 5, 2000, 6)
		return h
	}
	h1 := build()
	r1, err := Collect(h1, NoRoots{})
	if err != nil {
		t.Fatal(err)
	}
	h2 := build()
	h2.Device().SetNoFlush(true)
	r2, err := Collect(h2, NoRoots{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.MovedObjects != r2.MovedObjects {
		t.Fatalf("flush mode changed the algorithm: %d vs %d moves", r1.MovedObjects, r2.MovedObjects)
	}
	if r1.DeviceStats.FlushedLines == 0 || r2.DeviceStats.FlushedLines != 0 {
		t.Fatalf("flushed lines: with=%d without=%d", r1.DeviceStats.FlushedLines, r2.DeviceStats.FlushedLines)
	}
}
