package pgc

import (
	"espresso/internal/layout"
	"espresso/internal/pheap"
)

// compact executes (or, after a crash, resumes) the compact phase
// described by the summary. It is safe to run the same summary twice: the
// region bitmap skips fully evacuated source regions, and the source-header
// timestamp skips individual objects that already reached their
// destination. cur is the collection's global timestamp.
func compact(h *pheap.Heap, s *Summary, cur uint64) {
	dev := h.Device()
	geo := h.Geo()
	regionBm := h.RegionBitmap()
	regionOf := func(off int) int { return (off - geo.DataOff) / layout.RegionSize }

	// Resolve klass records for reference iteration. During recovery,
	// source regions whose bit is set may hold garbage, but those objects
	// are skipped wholesale before any header read.
	skipRegion := -1
	for i, m := range s.Moves {
		r := regionOf(m.Src)
		if r == skipRegion || regionBm.Get(r) {
			skipRegion = r
			continue
		}
		srcMark := dev.ReadU64(m.Src + layout.MarkWordOff)
		if layout.MarkTimestamp(srcMark) != cur {
			if m.Dst == m.Src {
				// In-place object (dense prefix or pinned): fix its
				// references, persist, then stamp it processed. Its own
				// header is authentic, so the timestamp gate is sound.
				fixRefs(h, s, m.Dst, m.Size)
				dev.Flush(m.Dst, m.Size)
				dev.Fence()
				dev.WriteU64(m.Src+layout.MarkWordOff, layout.WithTimestamp(srcMark, cur))
				dev.Flush(m.Src+layout.MarkWordOff, 8)
				dev.Fence()
			} else {
				// Evacuation: copy, fix references in the copy (the source
				// stays pristine — it is the undo log), persist the copy,
				// then stamp destination first, source second (§4.2 step 3).
				dev.Move(m.Dst, m.Src, m.Size)
				fixRefs(h, s, m.Dst, m.Size)
				dev.Flush(m.Dst, m.Size)
				dev.Fence()
				dev.WriteU64(m.Dst+layout.MarkWordOff, layout.WithTimestamp(srcMark, cur))
				dev.Flush(m.Dst+layout.MarkWordOff, 8)
				dev.Fence()
				dev.WriteU64(m.Src+layout.MarkWordOff, layout.WithTimestamp(srcMark, cur))
				dev.Flush(m.Src+layout.MarkWordOff, 8)
				dev.Fence()
			}
		}
		if i == s.RegionLastMove(r) {
			// The region is fully evacuated (or fully processed in place);
			// from here on it may be overwritten as a destination, so the
			// fact must be durable first.
			regionBm.Set(r)
			dev.Flush(geo.RegionBmpOff, geo.RegionBmpSize)
			dev.Fence()
		}
	}

	writeGapFillers(h, s)
}

// fixRefs rewrites every reference slot of the object at device offset off
// through the summary's forwarding relation. References outside the heap
// (DRAM, other heaps) forward to themselves.
func fixRefs(h *pheap.Heap, s *Summary, off, size int) {
	dev := h.Device()
	kaddr := layout.Ref(dev.ReadU64(off + layout.KlassWordOff))
	k, ok := h.KlassByAddr(kaddr)
	if !ok {
		// Unreachable by protocol; leaving the object untouched is safer
		// than guessing a layout.
		return
	}
	pheap.RefSlots(dev, off, k, func(slotBoff int) {
		v := layout.Ref(dev.ReadU64(off + slotBoff))
		if v != layout.NullRef && h.Contains(v) {
			if f := s.Forward(v); f != v {
				dev.WriteU64(off+slotBoff, uint64(f))
			}
		}
	})
}

// writeGapFillers plugs every hole below the new top with filler objects
// so the compacted heap parses: dest-region tails, partially occupied
// in-place regions, and wholly emptied regions. Gaps big enough to
// recycle are split at cache-line boundaries — edge sliver, aligned
// middle, edge sliver — so the middle filler handed to allocators (see
// freeHolesOf) starts on a line no live object shares. Rerunning after a
// crash rewrites the same fillers.
func writeGapFillers(h *pheap.Heap, s *Summary) {
	geo := h.Geo()
	for r := 0; geo.DataOff+r*layout.RegionSize < s.NewTop; r++ {
		gapLo, gapHi := gapOf(h, s, r)
		if gapLo >= gapHi {
			continue
		}
		hole, ok := recyclableOf(gapLo, gapHi)
		if !ok {
			h.WriteFiller(gapLo, gapHi-gapLo) // persists internally
			continue
		}
		if hole.Lo > gapLo {
			h.WriteFiller(gapLo, hole.Lo-gapLo)
		}
		h.WriteFiller(hole.Lo, hole.Hi-hole.Lo)
		if gapHi > hole.Hi {
			h.WriteFiller(hole.Hi, gapHi-hole.Hi)
		}
	}
}
