package pgc

import (
	"time"

	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
)

// compactResult carries what the compact phase hands back to finish and
// to the collector's result: the per-region top entries for the redo
// batch, the recyclable holes, and the device-accounting split the
// gcpause experiment models the parallel critical path from.
type compactResult struct {
	// topEntries[r] is region r's republished-top redo entry — each fill
	// worker stamps the slots of the regions it owns, and finish
	// publishes the concatenation in one RedoCommit (see the
	// single-publish invariant below).
	topEntries []pheap.RedoEntry
	// holes is the merged, ascending list of recyclable gaps the fill
	// workers discovered (pheap.MergeHoleLists over the per-worker
	// lists).
	holes []pheap.Hole
	// fixWorkerStats[w] is worker w's device traffic in the parallel
	// reference-fix pass; serialStats is everything else the compact
	// phase issued (the serial move pass, region-bit publication, and
	// the fill pass) — together they reconstruct the phase's modeled
	// critical path: max over workers of fix + serial.
	fixWorkerStats []nvm.Stats
	serialStats    nvm.Stats
	// fixWorkerTimes[w] is worker w's wall time in the fix pass — the
	// host-clock companion to fixWorkerStats for spotting worker skew.
	fixWorkerTimes []time.Duration
}

// compact executes (or, after a crash, resumes) the compact phase
// described by the summary, fanned over workers where the persistence
// discipline allows. It is safe to run the same summary twice: the
// region bitmap skips fully evacuated source regions, and the
// source-header timestamp skips individual objects that already reached
// their destination. cur is the collection's global timestamp.
//
// The phase runs as three passes:
//
//  1. Fix (parallel): in-place objects (Dst == Src — the dense prefix
//     and pinned humongous objects) get their references rewritten
//     through the summary's forwarding table, sharded by source region.
//     The table is read-only and shared, so cross-region references
//     forward without any coordination; regions are cache-line-aligned,
//     so no two workers ever write or flush the same line. Each object
//     keeps the serial per-object protocol — fix, flush, fence, stamp,
//     flush, fence — so a crash anywhere inside the pass recovers
//     exactly as it did single-threaded.
//  2. Move (serial): evacuations in ascending source order, with the
//     region bitmap published as each source region empties. This pass
//     stays on one goroutine deliberately: destinations pack
//     contiguously, so consecutive copies share cache lines — and the
//     device discipline (a line is never written by one goroutine while
//     another flushes it) plus the source-as-undo-log ordering (a
//     region's space is reusable only after its evacuation is durable)
//     would serialize the workers anyway.
//  3. Fill (parallel): gap fillers, the recyclable-hole lists, and the
//     per-region top entries of the finish batch, sharded by region
//     like pass 1. Each worker accumulates its own hole list and stamps
//     its own topEntries slots; the coordinator merges the lists.
//
// Single-publish invariant: no matter how many workers accumulated
// pieces of the finish batch, nothing any of them produced becomes
// durable until finish publishes the whole batch — roots, every
// region top, gcActive — through ONE RedoCommit. The redo log's commit
// point (count+state flushed after the entries) is a single flush+fence
// boundary, so a crash anywhere up to it leaves the metadata all-old
// and a crash after it replays all-new; there is no window in which one
// worker's tops are visible without another's.
//
// cleanCard, when non-nil, reports cards (pheap.SATBCardBytes each)
// whose objects provably hold no reference to any moved object (the
// marker's outgoing-reference summary, vetoed by the write barrier's
// dirty cards — see buildCleanCards). In-place objects of a clean card
// need no fixing, no flush, and no stamp: redoing them is a no-op, so
// recovery — which always runs with cleanCard nil and rescans
// everything — remains sound; their headers simply keep a stale
// timestamp, which the next cycle's fresh timestamp treats like any
// other unprocessed object. Moved objects of a clean card still run the
// full copy protocol, just without the reference scan. This is what
// keeps the compaction pause proportional to the mutated and moved part
// of the heap rather than to everything live.
func compact(h *pheap.Heap, s *Summary, cur uint64, cleanCard []bool, workers int) compactResult {
	if workers < 1 {
		workers = 1
	}
	dev := h.Device()
	geo := h.Geo()
	statsBefore := dev.Stats()
	regionBm := h.RegionBitmap()
	regionOf := func(off int) int { return (off - geo.DataOff) / layout.RegionSize }
	cardOf := func(off int) int { return (off - geo.DataOff) / pheap.SATBCardBytes }
	clean := func(c int) bool { return cleanCard != nil && c < len(cleanCard) && cleanCard[c] }

	// Group the moves into per-source-region spans (moves ascend by
	// source), and snapshot the region bitmap: bit-set regions are
	// recovery resuming past completed work — their source bytes may be
	// garbage, so their objects are skipped wholesale before any header
	// read.
	type span struct{ r, lo, hi int }
	var spans []span
	bitSet := make([]bool, geo.Regions())
	for i := 0; i < len(s.Moves); {
		r := regionOf(s.Moves[i].Src)
		hi := i + 1
		for hi < len(s.Moves) && regionOf(s.Moves[hi].Src) == r {
			hi++
		}
		spans = append(spans, span{r: r, lo: i, hi: hi})
		bitSet[r] = regionBm.Get(r)
		i = hi
	}

	// Pass 1: parallel in-place reference fixing, regions round-robin
	// across the pool. Per-worker accounting: the busiest worker bounds
	// the pass. When nothing moved the forwarding relation is the
	// identity and the whole pass — including the dirty-card rescans the
	// clean-card veto would force — is provably a no-op, so it is skipped
	// outright.
	fixStats := make([]nvm.Stats, workers)
	fixTimes := make([]time.Duration, workers)
	fixShard := func(w int) {
		shardStart := time.Now()
		wd := nvm.NewWorkerDevice(dev)
		for si := w; si < len(spans); si += workers {
			sp := spans[si]
			if bitSet[sp.r] {
				continue
			}
			for i := sp.lo; i < sp.hi; i++ {
				m := s.Moves[i]
				if m.Dst != m.Src || clean(cardOf(m.Src)) {
					continue
				}
				srcMark := wd.ReadU64(m.Src + layout.MarkWordOff)
				if layout.MarkTimestamp(srcMark) == cur {
					continue // recovery resuming: already processed
				}
				// Fix the object's references, persist, then stamp it
				// processed. Its own header is authentic, so the
				// timestamp gate is sound. When the fix changes nothing,
				// flush and stamp are skipped: redoing a no-op fix is
				// free, so recovery (which sees the stale timestamp and
				// reprocesses) is unaffected — and the pause stops
				// paying two flushes and two fences per untouched live
				// object.
				if fixRefs(wd, h, s, m.Dst, m.Size) {
					wd.Flush(m.Dst, m.Size)
					wd.Fence()
					wd.WriteU64(m.Src+layout.MarkWordOff, layout.WithTimestamp(srcMark, cur))
					wd.Flush(m.Src+layout.MarkWordOff, 8)
					wd.Fence()
				}
			}
		}
		fixStats[w] = wd.Local
		fixTimes[w] = time.Since(shardStart)
		// Publish the locally-tallied traffic into the shared counters so
		// the serial-stats subtraction below sees the whole phase.
		wd.Fold()
	}
	if s.MovedObjects > 0 {
		runShards(workers, fixShard)
	}

	// Pass 2: serial evacuations in ascending source order. In-place
	// moves were handled above and are skipped structurally (no header
	// read), but still drive the region-bit publication points.
	bmRegion, bmSet := -1, false
	for i, m := range s.Moves {
		r := regionOf(m.Src)
		if r != bmRegion {
			bmRegion, bmSet = r, bitSet[r]
		}
		if !bmSet && m.Dst != m.Src {
			srcMark := dev.ReadU64(m.Src + layout.MarkWordOff)
			if layout.MarkTimestamp(srcMark) != cur {
				// Evacuation: copy, fix references in the copy (the source
				// stays pristine — it is the undo log), persist the copy,
				// then stamp destination first, source second (§4.2 step 3).
				dev.Move(m.Dst, m.Src, m.Size)
				if !clean(cardOf(m.Src)) {
					fixRefs(dev, h, s, m.Dst, m.Size)
				}
				dev.Flush(m.Dst, m.Size)
				dev.Fence()
				dev.WriteU64(m.Dst+layout.MarkWordOff, layout.WithTimestamp(srcMark, cur))
				dev.Flush(m.Dst+layout.MarkWordOff, 8)
				dev.Fence()
				dev.WriteU64(m.Src+layout.MarkWordOff, layout.WithTimestamp(srcMark, cur))
				dev.Flush(m.Src+layout.MarkWordOff, 8)
				dev.Fence()
			}
		}
		if i == s.RegionLastMove(r) && !bmSet {
			// The region is fully evacuated (or fully processed in place);
			// from here on it may be overwritten as a destination, so the
			// fact must be durable first. Regions whose bit was already set
			// (recovery resuming past completed work) skip the re-persist.
			regionBm.Set(r)
			bmSet = true
			bitSet[r] = true
			dev.Flush(geo.RegionBmpOff, geo.RegionBmpSize)
			dev.Fence()
		}
	}

	// Pass 3: parallel fillers, hole lists, and finish-batch top
	// entries, regions round-robin. Every write and flush stays inside
	// the owning worker's regions, so the pass is line-disjoint like
	// pass 1; the per-worker hole lists are each ascending and merge
	// into the global ascending list.
	topEntries := make([]pheap.RedoEntry, geo.DataRegions())
	holeLists := make([][]pheap.Hole, workers)
	runShards(workers, func(w int) {
		for r := w; r < geo.DataRegions(); r += workers {
			start := geo.DataOff + r*layout.RegionSize
			var top uint64
			if start < s.NewTop {
				top = uint64(min(start+layout.RegionSize, s.NewTop))
			}
			topEntries[r] = pheap.RedoEntry{Off: h.RegionTopMetaOff(r), Val: top}
			if start >= s.NewTop {
				continue
			}
			// Plug each gap so the compacted heap parses. Gaps big enough
			// to recycle are split at cache-line boundaries — edge
			// sliver, aligned middle, edge sliver — so the middle filler
			// handed to allocators starts on a line no live object
			// shares. Rerunning after a crash rewrites the same fillers.
			plug := func(gapLo, gapHi int) {
				hole, ok := recyclableOf(gapLo, gapHi)
				if !ok {
					h.WriteFiller(gapLo, gapHi-gapLo) // persists internally
					return
				}
				if hole.Lo > gapLo {
					h.WriteFiller(gapLo, hole.Lo-gapLo)
				}
				h.WriteFiller(hole.Lo, hole.Hi-hole.Lo)
				if gapHi > hole.Hi {
					h.WriteFiller(hole.Hi, gapHi-hole.Hi)
				}
				holeLists[w] = append(holeLists[w], hole)
			}
			// Interior dead wood first (it lies below the tail), keeping
			// this worker's hole list ascending for the merge.
			for _, g := range s.InteriorGaps(r) {
				plug(g.Lo, g.Hi)
			}
			if gapLo, gapHi := gapOf(h, s, r); gapLo < gapHi {
				plug(gapLo, gapHi)
			}
		}
	})

	serial := dev.Stats().Sub(statsBefore)
	for _, ws := range fixStats {
		serial = serial.Sub(ws)
	}
	return compactResult{
		topEntries:     topEntries,
		holes:          pheap.MergeHoleLists(holeLists),
		fixWorkerStats: fixStats,
		serialStats:    serial,
		fixWorkerTimes: fixTimes,
	}
}

// buildCleanCards combines the marker's per-card outgoing-reference
// maxima with the summary's moves (and, for a concurrent cycle, the
// write barrier's dirty cards) into the compactor's skip set: card c is
// clean when every reference any of its objects holds targets an offset
// below the lowest moved source — so no slot in c can point at an
// object that changes address — and no mutator stored into c after its
// objects were traced.
func buildCleanCards(s *Summary, maxOut []int, dirty []bool) []bool {
	minMovedSrc := int(^uint(0) >> 1)
	for _, m := range s.Moves {
		if m.Dst != m.Src {
			minMovedSrc = m.Src
			break // moves ascend by src
		}
	}
	clean := make([]bool, len(maxOut))
	for c := range clean {
		clean[c] = maxOut[c] < minMovedSrc && (dirty == nil || c >= len(dirty) || !dirty[c])
	}
	return clean
}

// fixDevice is the device surface fixRefs needs — the shared *nvm.Device
// on the serial paths, a per-worker *nvm.WorkerDevice in the parallel
// fix pass.
type fixDevice interface {
	ReadU64(off int) uint64
	WriteU64(off int, v uint64)
}

// fixRefs rewrites every reference slot of the object at device offset off
// through the summary's forwarding relation, reporting whether any slot
// changed. References outside the heap (DRAM, other heaps) forward to
// themselves.
func fixRefs(dev fixDevice, h *pheap.Heap, s *Summary, off, size int) bool {
	kaddr := layout.Ref(dev.ReadU64(off + layout.KlassWordOff))
	k, ok := h.KlassByAddr(kaddr)
	if !ok {
		// Unreachable by protocol; leaving the object untouched is safer
		// than guessing a layout.
		return false
	}
	changed := false
	pheap.RefSlots(dev, off, k, func(slotBoff int) {
		raw := layout.Ref(dev.ReadU64(off + slotBoff))
		v := layout.UntagRef(raw)
		if v != layout.NullRef && h.Contains(v) {
			if f := s.Forward(v); f != v {
				// Low tag bits (the persistent index's link-state marks)
				// are not part of the address; carry them over unchanged.
				dev.WriteU64(off+slotBoff, uint64(f|layout.RefTag(raw)))
				changed = true
			}
		}
	})
	return changed
}
