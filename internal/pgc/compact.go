package pgc

import (
	"espresso/internal/layout"
	"espresso/internal/pheap"
)

// compact executes (or, after a crash, resumes) the compact phase
// described by the summary. It is safe to run the same summary twice: the
// region bitmap skips fully evacuated source regions, and the source-header
// timestamp skips individual objects that already reached their
// destination. cur is the collection's global timestamp.
//
// cleanCard, when non-nil, reports cards (pheap.SATBCardBytes each)
// whose objects provably hold no reference to any moved object (the
// marker's outgoing-reference summary, vetoed by the write barrier's
// dirty cards — see buildCleanCards). In-place objects of a clean card
// need no fixing, no flush, and no stamp: redoing them is a no-op, so
// recovery — which always runs with cleanCard nil and rescans
// everything — remains sound; their headers simply keep a stale
// timestamp, which the next cycle's fresh timestamp treats like any
// other unprocessed object. Moved objects of a clean card still run the
// full copy protocol, just without the reference scan. This is what
// keeps the compaction pause proportional to the mutated and moved part
// of the heap rather than to everything live.
func compact(h *pheap.Heap, s *Summary, cur uint64, cleanCard []bool) {
	dev := h.Device()
	geo := h.Geo()
	regionBm := h.RegionBitmap()
	regionOf := func(off int) int { return (off - geo.DataOff) / layout.RegionSize }
	cardOf := func(off int) int { return (off - geo.DataOff) / pheap.SATBCardBytes }
	clean := func(c int) bool { return cleanCard != nil && c < len(cleanCard) && cleanCard[c] }

	// Resolve klass records for reference iteration. During recovery,
	// source regions whose bit is set may hold garbage, but those objects
	// are skipped wholesale before any header read. Moves ascend by src,
	// so the region bit is read once per region, not once per move.
	skipRegion := -1
	bmRegion, bmSet := -1, false
	for i, m := range s.Moves {
		r := regionOf(m.Src)
		if r != bmRegion {
			bmRegion, bmSet = r, regionBm.Get(r)
		}
		switch {
		case r == skipRegion || bmSet:
			skipRegion = r
		case m.Dst == m.Src && clean(cardOf(m.Src)):
			// Clean in-place object: nothing to fix, nothing to persist,
			// nothing to stamp — processing it is the empty operation.
		default:
			srcMark := dev.ReadU64(m.Src + layout.MarkWordOff)
			if layout.MarkTimestamp(srcMark) != cur {
				if m.Dst == m.Src {
					// In-place object (dense prefix or pinned): fix its
					// references, persist, then stamp it processed. Its own
					// header is authentic, so the timestamp gate is sound.
					// When the fix changes nothing, flush and stamp are
					// skipped: redoing a no-op fix is free, so recovery
					// (which sees the stale timestamp and reprocesses) is
					// unaffected — and the pause stops paying two flushes
					// and two fences per untouched live object.
					if fixRefs(h, s, m.Dst, m.Size) {
						dev.Flush(m.Dst, m.Size)
						dev.Fence()
						dev.WriteU64(m.Src+layout.MarkWordOff, layout.WithTimestamp(srcMark, cur))
						dev.Flush(m.Src+layout.MarkWordOff, 8)
						dev.Fence()
					}
				} else {
					// Evacuation: copy, fix references in the copy (the source
					// stays pristine — it is the undo log), persist the copy,
					// then stamp destination first, source second (§4.2 step 3).
					dev.Move(m.Dst, m.Src, m.Size)
					if !clean(cardOf(m.Src)) {
						fixRefs(h, s, m.Dst, m.Size)
					}
					dev.Flush(m.Dst, m.Size)
					dev.Fence()
					dev.WriteU64(m.Dst+layout.MarkWordOff, layout.WithTimestamp(srcMark, cur))
					dev.Flush(m.Dst+layout.MarkWordOff, 8)
					dev.Fence()
					dev.WriteU64(m.Src+layout.MarkWordOff, layout.WithTimestamp(srcMark, cur))
					dev.Flush(m.Src+layout.MarkWordOff, 8)
					dev.Fence()
				}
			}
		}
		if i == s.RegionLastMove(r) && !bmSet {
			// The region is fully evacuated (or fully processed in place);
			// from here on it may be overwritten as a destination, so the
			// fact must be durable first. Regions whose bit was already set
			// (recovery resuming past completed work) skip the re-persist.
			regionBm.Set(r)
			bmSet = true
			dev.Flush(geo.RegionBmpOff, geo.RegionBmpSize)
			dev.Fence()
		}
	}

	writeGapFillers(h, s)
}

// buildCleanCards combines the marker's per-card outgoing-reference
// maxima with the summary's moves (and, for a concurrent cycle, the
// write barrier's dirty cards) into the compactor's skip set: card c is
// clean when every reference any of its objects holds targets an offset
// below the lowest moved source — so no slot in c can point at an
// object that changes address — and no mutator stored into c after its
// objects were traced.
func buildCleanCards(s *Summary, maxOut []int, dirty []bool) []bool {
	minMovedSrc := int(^uint(0) >> 1)
	for _, m := range s.Moves {
		if m.Dst != m.Src {
			minMovedSrc = m.Src
			break // moves ascend by src
		}
	}
	clean := make([]bool, len(maxOut))
	for c := range clean {
		clean[c] = maxOut[c] < minMovedSrc && (dirty == nil || c >= len(dirty) || !dirty[c])
	}
	return clean
}

// fixRefs rewrites every reference slot of the object at device offset off
// through the summary's forwarding relation, reporting whether any slot
// changed. References outside the heap (DRAM, other heaps) forward to
// themselves.
func fixRefs(h *pheap.Heap, s *Summary, off, size int) bool {
	dev := h.Device()
	kaddr := layout.Ref(dev.ReadU64(off + layout.KlassWordOff))
	k, ok := h.KlassByAddr(kaddr)
	if !ok {
		// Unreachable by protocol; leaving the object untouched is safer
		// than guessing a layout.
		return false
	}
	changed := false
	pheap.RefSlots(dev, off, k, func(slotBoff int) {
		raw := layout.Ref(dev.ReadU64(off + slotBoff))
		v := layout.UntagRef(raw)
		if v != layout.NullRef && h.Contains(v) {
			if f := s.Forward(v); f != v {
				// Low tag bits (the persistent index's link-state marks)
				// are not part of the address; carry them over unchanged.
				dev.WriteU64(off+slotBoff, uint64(f|layout.RefTag(raw)))
				changed = true
			}
		}
	})
	return changed
}

// writeGapFillers plugs every hole below the new top with filler objects
// so the compacted heap parses: dest-region tails, partially occupied
// in-place regions, and wholly emptied regions. Gaps big enough to
// recycle are split at cache-line boundaries — edge sliver, aligned
// middle, edge sliver — so the middle filler handed to allocators (see
// freeHolesOf) starts on a line no live object shares. Rerunning after a
// crash rewrites the same fillers.
func writeGapFillers(h *pheap.Heap, s *Summary) {
	geo := h.Geo()
	for r := 0; geo.DataOff+r*layout.RegionSize < s.NewTop; r++ {
		gapLo, gapHi := gapOf(h, s, r)
		if gapLo >= gapHi {
			continue
		}
		hole, ok := recyclableOf(gapLo, gapHi)
		if !ok {
			h.WriteFiller(gapLo, gapHi-gapLo) // persists internally
			continue
		}
		if hole.Lo > gapLo {
			h.WriteFiller(gapLo, hole.Lo-gapLo)
		}
		h.WriteFiller(hole.Lo, hole.Hi-hole.Lo)
		if gapHi > hole.Hi {
			h.WriteFiller(hole.Hi, gapHi-hole.Hi)
		}
	}
}
