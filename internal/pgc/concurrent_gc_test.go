package pgc

import (
	"bytes"
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/nvm/faultdev"
	"espresso/internal/pheap"
)

// TestCollectConcurrentPreservesGraph is the concurrent collector's
// counterpart of the basic STW test: same reclamation, same reachable
// graph, clean final state (gcActive and the phase word both clear).
func TestCollectConcurrentPreservesGraph(t *testing.T) {
	h, reg := newHeap(t, 4<<20)
	m := buildGraph(t, h, reg, 42, 500, 5)
	res, err := CollectConcurrent(h, NoRoots{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveObjects != len(m.reachable()) {
		t.Fatalf("live = %d, want %d", res.LiveObjects, len(m.reachable()))
	}
	if h.GCActive() {
		t.Fatal("gcActive left set")
	}
	if h.GCPhase() != pheap.GCPhaseIdle {
		t.Fatalf("phase word left at %d", h.GCPhase())
	}
	verifyGraph(t, h, m)
}

func TestCollectConcurrentRepeatedAndAllocateBetween(t *testing.T) {
	h, reg := newHeap(t, 4<<20)
	m := buildGraph(t, h, reg, 13, 400, 4)
	node := reg.MustLookup("Node")
	for i := 0; i < 4; i++ {
		if _, err := CollectConcurrent(h, NoRoots{}, nil); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		verifyGraph(t, h, m)
		for j := 0; j < 100; j++ {
			if _, err := h.Alloc(node, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestCollectConcurrentMatchesSTWByteIdentical is the differential
// acceptance test: on the same quiescent workload the concurrent
// collector must compact the heap to byte-identical content — the
// tracer is shared and the summary is a pure function of the bitmap, so
// the data area, the region-top table, and the root entries all match
// the STW collector's output exactly.
func TestCollectConcurrentMatchesSTWByteIdentical(t *testing.T) {
	build := func() *pheap.Heap {
		h, reg := newHeap(t, 4<<20)
		buildGarbageBelt(t, h, reg, 250) // past the dead-wood budget: real moves
		buildGraph(t, h, reg, 77, 600, 6)
		return h
	}
	hSTW := build()
	hCon := build()

	rSTW, err := Collect(hSTW, NoRoots{})
	if err != nil {
		t.Fatal(err)
	}
	rCon, err := CollectConcurrent(hCon, NoRoots{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rSTW.LiveObjects != rCon.LiveObjects || rSTW.LiveBytes != rCon.LiveBytes ||
		rSTW.MovedObjects != rCon.MovedObjects || rSTW.NewTop != rCon.NewTop {
		t.Fatalf("results differ: stw %+v vs concurrent %+v", rSTW, rCon)
	}
	geo := hSTW.Geo()
	sections := []struct {
		name   string
		off, n int
	}{
		{"data area", geo.DataOff, geo.DataSize},
		{"region-top table", geo.RegionTopOff, geo.RegionTopSize},
		{"name table", geo.NameTabOff, geo.NameTabCap * 64},
		{"mark bitmap", geo.MarkBmpOff, geo.MarkBmpSize},
	}
	for _, s := range sections {
		a := hSTW.Device().View(s.off, s.n)
		b := hCon.Device().View(s.off, s.n)
		if !bytes.Equal(a, b) {
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s differs at byte %d (abs %d): %#x vs %#x", s.name, i, s.off+i, a[i], b[i])
				}
			}
		}
	}
}

// TestCollectConcurrentCrashAtEveryFlush crashes a concurrent collection
// at the k-th device flush for every k — covering the phase-word
// persist, the bitmap persists, the gcActive transition, compaction, and
// the redo finish — reloads the crash image, recovers, and verifies the
// graph bit-for-bit. Before gcActive is set the recovery path is the
// fresh-cycle fallback (the phase word alone is cleared); after it, the
// standard resumable compaction.
func TestCollectConcurrentCrashAtEveryFlush(t *testing.T) {
	const seed = 99
	h0, reg0 := newHeap(t, 2<<20)
	buildGarbageBelt(t, h0, reg0, 120) // past the dead-wood budget: real moves
	m := buildGraph(t, h0, reg0, seed, 120, 4)
	base := h0.Device().Stats().Flushes
	if res, err := CollectConcurrent(h0, NoRoots{}, nil); err != nil {
		t.Fatal(err)
	} else if res.MovedObjects == 0 {
		t.Fatal("workload compacted nothing; the sweep misses the move protocol")
	}
	totalFlushes := h0.Device().Stats().Flushes - base
	if totalFlushes < 20 {
		t.Fatalf("suspiciously few flushes in a concurrent GC: %d", totalFlushes)
	}

	hSnap, regSnap := newHeap(t, 2<<20)
	buildGarbageBelt(t, hSnap, regSnap, 120)
	buildGraph(t, hSnap, regSnap, seed, 120, 4)
	hSnap.Device().FlushAll()
	pristine := hSnap.Device().CrashImage(nvm.CrashFlushedOnly, 0)

	step := uint64(1)
	if totalFlushes > 400 {
		step = totalFlushes / 400
	}
	for k := uint64(1); k <= totalFlushes; k += step {
		img := make([]byte, len(pristine))
		copy(img, pristine)
		dev := nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})
		h, err := pheap.Load(dev, klass.NewRegistry())
		if err != nil {
			t.Fatalf("k=%d: load pristine: %v", k, err)
		}
		faultdev.CrashIn(dev, k)
		crashed, err := faultdev.Run(dev, func() error {
			_, err := CollectConcurrent(h, NoRoots{}, nil)
			return err
		})
		if err != nil {
			t.Fatalf("k=%d: collect: %v", k, err)
		}

		after := nvm.FromImage(dev.CrashImage(nvm.CrashRandomEviction, int64(k)), nvm.Config{Mode: nvm.Tracked})
		h2, err := pheap.Load(after, klass.NewRegistry())
		if err != nil {
			t.Fatalf("k=%d: reload: %v", k, err)
		}
		if _, err := Recover(h2); err != nil {
			t.Fatalf("k=%d: recover: %v", k, err)
		}
		if h2.GCActive() {
			t.Fatalf("k=%d: gcActive after recovery", k)
		}
		if h2.GCPhase() != pheap.GCPhaseIdle {
			t.Fatalf("k=%d: phase word %d after recovery", k, h2.GCPhase())
		}
		verifyGraph(t, h2, m)
		if !crashed {
			break // k beyond the GC's flush count: clean finish
		}
	}
}

// TestRecoverClearsAbortedConcurrentMark: a heap whose image announces a
// mid-concurrent-mark crash (phase word set, gcActive clear) recovers by
// clearing the phase word alone — nothing moved, the graph is untouched,
// and the next collection starts fresh.
func TestRecoverClearsAbortedConcurrentMark(t *testing.T) {
	h, reg := newHeap(t, 2<<20)
	m := buildGraph(t, h, reg, 55, 150, 3)
	h.SetGCPhase(pheap.GCPhaseConcurrentMark)
	h.Device().FlushAll()
	img := h.Device().CrashImage(nvm.CrashFlushedOnly, 0)

	h2, err := pheap.Load(nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked}), klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if h2.GCPhase() != pheap.GCPhaseConcurrentMark {
		t.Fatalf("loaded phase = %d, want mid-mark", h2.GCPhase())
	}
	res, err := Recover(h2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered {
		t.Fatal("aborted mark must not report a recovered compaction")
	}
	if h2.GCPhase() != pheap.GCPhaseIdle {
		t.Fatalf("phase = %d after recovery, want idle", h2.GCPhase())
	}
	verifyGraph(t, h2, m)
	// The fresh cycle the fallback promises: a full collection works.
	if _, err := Collect(h2, NoRoots{}); err != nil {
		t.Fatal(err)
	}
	verifyGraph(t, h2, m)
}

// TestCollectConcurrentAllocateBlackDuringMark exercises the
// allocate-black path at the pgc level: allocation between the snapshot
// and the final pause (simulated with a StoppedWorld handshake that
// allocates inside the marking window via the World hooks) survives the
// collection even though it was never traced.
func TestCollectConcurrentAllocateBlackDuringMark(t *testing.T) {
	h, reg := newHeap(t, 4<<20)
	m := buildGraph(t, h, reg, 21, 200, 3)
	node := reg.MustLookup("Node")

	w := &allocatingWorld{}
	w.onSecondStop = func() {
		// Runs right before the final pause is requested — i.e. after
		// concurrent marking, inside the marking window.
		a := h.NewAllocator()
		defer a.Release()
		var last layout.Ref
		for i := 0; i < 50; i++ {
			ref, err := a.Alloc(node, 0)
			if err != nil {
				t.Fatal(err)
			}
			h.SetWordAtomic(ref, layout.FieldOff(fID), uint64(100000+i))
			if last != 0 {
				h.SetWordAtomic(ref, layout.FieldOff(fNext), uint64(last))
			}
			last = ref
		}
		if err := h.SetRoot("fresh", last); err != nil {
			t.Fatal(err)
		}
		h.Device().Flush(h.Geo().DataOff, h.Top()-h.Geo().DataOff)
		h.Device().Fence()
	}
	res, err := CollectConcurrent(h, NoRoots{}, w)
	if err != nil {
		t.Fatal(err)
	}
	want := len(m.reachable()) + 50
	if res.LiveObjects != want {
		t.Fatalf("live = %d, want %d (allocate-black kept the fresh chain)", res.LiveObjects, want)
	}
	verifyGraph(t, h, m)
	// The fresh chain is intact and correctly linked after compaction.
	ref, ok := h.GetRoot("fresh")
	if !ok {
		t.Fatal("fresh root lost")
	}
	for i := 49; i >= 0; i-- {
		if got := h.GetWord(ref, layout.FieldOff(fID)); got != uint64(100000+i) {
			t.Fatalf("fresh node %d: id %d", i, got)
		}
		ref = layout.Ref(h.GetWord(ref, layout.FieldOff(fNext)))
		if i > 0 && ref == layout.NullRef {
			t.Fatalf("fresh chain broken at %d", i)
		}
	}
}

// allocatingWorld is a World whose second StopWorld (the final pause
// request) first runs a callback — a deterministic stand-in for mutators
// that allocated during the concurrent marking window.
type allocatingWorld struct {
	stops        int
	onSecondStop func()
}

func (w *allocatingWorld) StopWorld() {
	w.stops++
	if w.stops == 2 && w.onSecondStop != nil {
		w.onSecondStop()
	}
}

func (w *allocatingWorld) StartWorld() {}
