// Package pgc implements the crash-consistent garbage collector for the
// persistent Java heap (paper §4.2–§4.3): a region-based mark/summary/
// compact algorithm derived from ParallelScavenge's old GC, hardened so a
// crash at any point leaves the heap recoverable.
//
// The protocol, as in the paper:
//
//  1. Marking records live objects in the persistent mark bitmap; the
//     bitmap is persisted before anything moves.
//  2. The heap is stamped mid-collection: the global timestamp is bumped
//     and the gcActive flag set (in that store order), making every object
//     "stale".
//  3. The summary phase is a pure function of the mark bitmap — idempotent,
//     so recovery can simply rerun it.
//  4. The compact phase copies each live object to its destination, fixes
//     its references, persists it, and then writes the current timestamp
//     into both headers, destination first. Until a source region is fully
//     evacuated, its data is the undo log for its objects; a region bitmap
//     records full evacuation, after which (and only after which) a region
//     may be reused as a destination.
//  5. The finish step — forwarded root entries, the new top, clearing
//     gcActive — commits atomically through the metadata redo log.
//
// Recovery reruns summary from the persisted bitmap and resumes compaction:
// objects in bitmap-marked regions are done wholesale (their source bytes
// may be overwritten); elsewhere the source header's timestamp — a real
// header, intact by the undo-log invariant — tells exactly which objects
// were processed. The timestamp check deliberately reads the *source*
// header: destination bytes of an unfinished copy are arbitrary, and a
// payload word there could forge a timestamp.
package pgc

import (
	"errors"
	"sort"

	"espresso/internal/layout"
	"espresso/internal/pheap"
)

// ErrNoSpaceToCompact is returned when the heap is so full and fragmented
// that no empty region is available as an evacuation destination.
var ErrNoSpaceToCompact = errors.New("pgc: no empty region available for compaction")

// deadWoodDenominator bounds the garbage tolerated inside the dense
// prefix: the prefix extends while its cumulative dead wood stays within
// 1/deadWoodDenominator of its span. The budget can be generous because
// interior dead wood is not wasted space — the fill pass hands every
// line-aligned gap back to the allocators as a recyclable hole, so
// tolerated garbage becomes allocatable immediately (only the sub-line
// edge slivers are true waste until the next slide). 3 keeps a
// steadily-churning heap — including the floating garbage a concurrent
// cycle necessarily retains — in the cheap hole-recycling regime, while
// a heap more than a third dead still gets a real slide. Compare G1,
// which never evacuates regions above ~85% liveness at all.
const deadWoodDenominator = 3

// GapSpan is one interior dead-wood gap [Lo, Hi) of the dense prefix,
// contained in a single region. The fill pass plugs it like a region
// tail: fillers, with the line-aligned middle recycled as a hole.
type GapSpan struct{ Lo, Hi int }

// Move describes one live object: its source, destination, and size, all
// as device offsets. Dst == Src for objects that stay in place (dense
// prefix and pinned humongous objects).
type Move struct {
	Src, Dst, Size int
}

// Summary is the idempotent output of the summary phase: the full
// forwarding relation plus the per-region occupancy needed to place
// fillers and compute the new top. It is derived from the mark bitmap
// alone, never from heap data, so recovery recomputes it bit-identically.
type Summary struct {
	Moves []Move // ascending by Src

	// regionLastMove[r] is the index in Moves of the last object whose
	// source lies in region r, or -1. The compactor sets r's region-bitmap
	// bit after processing that move.
	regionLastMove []int
	// occ[r] is the final occupied prefix of region r in bytes.
	occ []int
	// interior[r] is region r's ascending interior dead-wood gaps.
	interior [][]GapSpan

	NewTop       int
	LiveObjects  int
	LiveBytes    int
	MovedObjects int
	MovedBytes   int

	dataOff int
	base    layout.Ref
}

// Summarize runs the summary phase over h's persisted mark bitmap.
func Summarize(h *pheap.Heap) (*Summary, error) {
	geo := h.Geo()
	regions := geo.Regions()
	s := &Summary{
		regionLastMove: make([]int, regions),
		occ:            make([]int, regions),
		dataOff:        geo.DataOff,
		base:           h.Base(),
	}
	for i := range s.regionLastMove {
		s.regionLastMove[i] = -1
	}

	// Decode (begin,end) mark-bit pairs into (src,size) runs with one
	// device read per bitmap word (ForEachSet), so the summary's cost is
	// proportional to the bitmap, not to the object count. The size of
	// every live object is recoverable from the bitmap alone, which is
	// what makes this phase rerunnable after a crash even when source
	// bytes have been overwritten.
	// Mark bits never lie at or above the allocation tops, so the scan is
	// bounded by the heap's used prefix — during recovery the tops come
	// from the persisted region-top table, which the crashed collection
	// had not yet republished.
	bm := h.MarkBitmap()
	usedBits := (h.Top() - geo.DataOff) / layout.WordSize
	type liveObj struct{ src, size int }
	var objs []liveObj
	begin := -1
	bm.ForEachSetBelow(usedBits, func(b int) {
		if begin < 0 {
			begin = b
			return
		}
		src := geo.DataOff + begin*layout.WordSize
		size := (b - begin + 1) * layout.WordSize
		objs = append(objs, liveObj{src, size})
		s.LiveObjects++
		s.LiveBytes += size
		begin = -1
	})
	if begin >= 0 {
		return nil, errors.New("pgc: mark bitmap has unpaired begin bit")
	}

	regionOf := func(off int) int { return (off - geo.DataOff) / layout.RegionSize }
	regionStart := func(r int) int { return geo.DataOff + r*layout.RegionSize }

	// Per-region live bytes (seeds the destination pool with empty
	// regions) and last-object index (drives the region bitmap and the
	// pool recycling).
	liveIn := make([]int, regions)
	lastObj := make([]int, regions)
	for i := range lastObj {
		lastObj[i] = -1
	}
	for i, o := range objs {
		for r := regionOf(o.src); r <= regionOf(o.src+o.size-1); r++ {
			lo := max(o.src, regionStart(r))
			hi := min(o.src+o.size, regionStart(r)+layout.RegionSize)
			liveIn[r] += hi - lo
		}
		lastObj[regionOf(o.src)] = i
	}
	// The destination pool holds *start offsets* of free space: whole empty
	// regions, the tail of a region behind an in-place (dense or pinned)
	// prefix, and — once fully evacuated — recycled source regions. Always
	// drawing the lowest offset packs the heap downward.
	var pool minIntHeap
	for r := 0; r < regions; r++ {
		if liveIn[r] == 0 {
			pool.push(regionStart(r))
		}
	}

	// Dead-wood dense prefix (as in ParallelScavenge, whose summary phase
	// this derives from): an object stays in place not only when the heap
	// below it is perfectly dense, but as long as the cumulative garbage
	// below it remains a small fraction of the span it buys. Requiring
	// exact density would let a single small death low in the heap force
	// every live object above it through the serial evacuation pass; the
	// budget caps the wasted space at 1/deadWoodDenominator of the prefix
	// while keeping evacuation proportional to real fragmentation. The
	// interior gaps are plugged by the fill pass (fillers, recyclable
	// holes), so the prefix still parses and the space is allocatable.
	// The cutoff is a pure function of the mark bitmap, so recovery
	// recomputes it bit-identically.
	densePrefixEnd := geo.DataOff
	{
		cursor, dead := geo.DataOff, 0
		for _, o := range objs {
			dead += o.src - cursor
			cursor = o.src + o.size
			if dead*deadWoodDenominator <= cursor-geo.DataOff {
				densePrefixEnd = cursor
			}
		}
	}

	// Assign destinations in address order. The invariants that make the
	// source-as-undo-log protocol sound:
	//
	//   - free space enters the pool only when nothing live remains to read
	//     from it: empty regions up front, evacuated regions and in-place
	//     tails only after the region's last source object is assigned;
	//   - compaction executes moves in the same ascending order, so by the
	//     time a destination is written, every object that lived there has
	//     already been copied out.
	inPlaceEnd := make([]int, regions) // prefix occupied by non-moving objects
	destRegion, destFill := -1, 0
	retireDest := func() {
		if destRegion >= 0 {
			s.occ[destRegion] = destFill - regionStart(destRegion)
			destRegion = -1
		}
	}
	for i, o := range objs {
		srcRegion := regionOf(o.src)
		var dst int
		switch {
		case o.src+o.size <= densePrefixEnd:
			dst = o.src
		case o.size > pheap.HugeThreshold:
			// Pinned humongous object: allocated on exclusive region-
			// aligned runs, stays put; its final region's tail becomes
			// destination space immediately (nothing else lives there).
			dst = o.src
			tail := o.src + o.size
			if tail%layout.RegionSize != 0 {
				pool.push(tail)
			}
		default:
			if destRegion < 0 || destFill+o.size > regionStart(destRegion)+layout.RegionSize {
				retireDest()
				if pool.empty() {
					return nil, ErrNoSpaceToCompact
				}
				destFill = pool.pop()
				destRegion = regionOf(destFill)
			}
			dst = destFill
			destFill += o.size
		}
		s.Moves = append(s.Moves, Move{Src: o.src, Dst: dst, Size: o.size})
		if dst != o.src {
			s.MovedObjects++
			s.MovedBytes += o.size
		} else {
			for r := srcRegion; r <= regionOf(o.src+o.size-1); r++ {
				end := min(o.src+o.size, regionStart(r)+layout.RegionSize)
				if pe := end - regionStart(r); pe > inPlaceEnd[r] {
					inPlaceEnd[r] = pe
				}
				if inPlaceEnd[r] > s.occ[r] {
					s.occ[r] = inPlaceEnd[r]
				}
			}
		}
		s.regionLastMove[srcRegion] = len(s.Moves) - 1
		if i == lastObj[srcRegion] && srcRegion != destRegion && o.size <= pheap.HugeThreshold {
			// The region's sources are all assigned: the space behind its
			// in-place prefix (the whole region if it has none) is free to
			// receive later objects.
			free := regionStart(srcRegion) + inPlaceEnd[srcRegion]
			if free < regionStart(srcRegion)+layout.RegionSize {
				pool.push(free)
			}
		}
	}
	retireDest()

	// Collect the interior dead-wood gaps: garbage between in-place
	// objects, clipped below each region's in-place prefix end. Space at
	// or above inPlaceEnd[r] is pool-managed (it may have been handed out
	// as destination space, or the region-tail fill covers it), so it is
	// excluded — everything emitted here is provably never a destination
	// and the fill pass may plug it. Gaps are split at region boundaries
	// to keep the fill pass's per-region sharding line-disjoint.
	s.interior = make([][]GapSpan, regions)
	cursor := geo.DataOff
	for _, m := range s.Moves {
		if m.Dst != m.Src {
			continue
		}
		for lo := cursor; lo < m.Src; {
			r := regionOf(lo)
			hi := min(m.Src, regionStart(r)+inPlaceEnd[r])
			if hi > lo {
				s.interior[r] = append(s.interior[r], GapSpan{Lo: lo, Hi: hi})
			}
			lo = regionStart(r) + layout.RegionSize
		}
		if e := m.Src + m.Size; e > cursor {
			cursor = e
		}
	}

	// New top: one past the highest finally-occupied byte.
	s.NewTop = geo.DataOff
	for r := 0; r < regions; r++ {
		if s.occ[r] > 0 {
			s.NewTop = regionStart(r) + s.occ[r]
		}
	}
	return s, nil
}

// Forward maps a pre-GC object address to its post-GC address. Addresses
// outside the heap (DRAM refs, other heaps, null) map to themselves, as do
// unmoved objects.
func (s *Summary) Forward(ref layout.Ref) layout.Ref {
	if ref == layout.NullRef {
		return ref
	}
	off := int(ref - s.base)
	i := sort.Search(len(s.Moves), func(i int) bool { return s.Moves[i].Src >= off })
	if i < len(s.Moves) && s.Moves[i].Src == off {
		return s.base + layout.Ref(s.Moves[i].Dst)
	}
	return ref
}

// RegionLastMove exposes the per-region last-move index (see the compact
// phase).
func (s *Summary) RegionLastMove(r int) int { return s.regionLastMove[r] }

// Occupancy reports the final occupied prefix of region r.
func (s *Summary) Occupancy(r int) int { return s.occ[r] }

// InteriorGaps reports region r's interior dead-wood gaps, ascending.
func (s *Summary) InteriorGaps(r int) []GapSpan { return s.interior[r] }

// minIntHeap is a small binary min-heap of region indexes.
type minIntHeap struct{ a []int }

func (h *minIntHeap) empty() bool { return len(h.a) == 0 }

func (h *minIntHeap) push(v int) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *minIntHeap) pop() int {
	v := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.a) && h.a[l] < h.a[small] {
			small = l
		}
		if r < len(h.a) && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return v
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
