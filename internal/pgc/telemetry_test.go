package pgc

import (
	"testing"
	"time"

	"espresso/internal/nvm"
	"espresso/internal/telemetry"
)

// TestParallelWorkerTimesAndSpans pins the per-worker observability of a
// parallel concurrent collection: Result carries one mark duration and
// one fix duration per worker, and the same cycle lands in the heap's
// span recorder as a full phase timeline plus per-worker spans.
func TestParallelWorkerTimesAndSpans(t *testing.T) {
	const workers = 4
	h, reg := newHeap(t, 4<<20)
	buildGarbageBelt(t, h, reg, 250)
	buildGraph(t, h, reg, 77, 600, 6)
	tel := telemetry.New()
	h.SetTelemetry(tel)

	r, err := CollectConcurrentWorkers(h, NoRoots{}, nil, workers)
	if err != nil {
		t.Fatal(err)
	}
	if r.MovedObjects == 0 {
		t.Fatal("workload compacted nothing; the fix pass is untested")
	}
	if len(r.MarkWorkerTimes) != workers {
		t.Fatalf("MarkWorkerTimes has %d entries, want %d", len(r.MarkWorkerTimes), workers)
	}
	if len(r.CompactFixWorkerTimes) != workers {
		t.Fatalf("CompactFixWorkerTimes has %d entries, want %d", len(r.CompactFixWorkerTimes), workers)
	}
	var markBusy, fixBusy time.Duration
	for w, d := range r.MarkWorkerTimes {
		if d < 0 {
			t.Fatalf("mark worker %d: negative productive time %v (parking over-subtracted)", w, d)
		}
		markBusy += d
	}
	for w, d := range r.CompactFixWorkerTimes {
		if d <= 0 {
			t.Fatalf("fix worker %d: duration %v, want > 0 (every worker walks its shards)", w, d)
		}
		fixBusy += d
	}
	if markBusy <= 0 {
		t.Fatal("no mark worker recorded productive time")
	}

	snap := tel.Snapshot()
	if got := snap.Counter(telemetry.CtrGCCycles.Name()); got != 1 {
		t.Fatalf("gc.cycles = %d, want 1", got)
	}
	perWorker := map[string]int{}
	for _, sp := range snap.Spans {
		if sp.Name == telemetry.SpanGCMarkWorker || sp.Name == telemetry.SpanGCFixWorker {
			perWorker[sp.Name]++
			if sp.Worker < 0 || sp.Worker >= workers {
				t.Fatalf("%s span tagged worker %d", sp.Name, sp.Worker)
			}
		}
	}
	if perWorker[telemetry.SpanGCMarkWorker] != workers || perWorker[telemetry.SpanGCFixWorker] != workers {
		t.Fatalf("per-worker spans: mark %d, fix %d, want %d each",
			perWorker[telemetry.SpanGCMarkWorker], perWorker[telemetry.SpanGCFixWorker], workers)
	}
	for _, name := range []string{
		telemetry.SpanGCHandshake, telemetry.SpanGCMark, telemetry.SpanGCRemark,
		telemetry.SpanGCSummarize, telemetry.SpanGCCompact, telemetry.SpanGCRedo,
		telemetry.SpanGCFinalPause,
	} {
		if snap.SpanTotal(name) <= 0 {
			t.Fatalf("phase span %s missing from the timeline", name)
		}
	}
	// The inner final-pause phases must nest inside the recorded pause.
	inner := snap.SpanTotal(telemetry.SpanGCRemark) + snap.SpanTotal(telemetry.SpanGCSummarize) +
		snap.SpanTotal(telemetry.SpanGCCompact) + snap.SpanTotal(telemetry.SpanGCRedo)
	if fp := snap.SpanTotal(telemetry.SpanGCFinalPause); inner > fp {
		t.Fatalf("inner phases sum to %v > final pause %v", inner, fp)
	}

	// Device attribution: on a quiescent heap every read and write of the
	// cycle belongs to the collector, so the gc + redo subsystems must
	// account for the whole-cycle delta exactly.
	gcReads := snap.Counter(telemetry.DevCounter(nvm.SubGC, 0).Name()) +
		snap.Counter(telemetry.DevCounter(nvm.SubRedo, 0).Name())
	gcWrites := snap.Counter(telemetry.DevCounter(nvm.SubGC, 1).Name()) +
		snap.Counter(telemetry.DevCounter(nvm.SubRedo, 1).Name())
	if gcReads != r.DeviceStats.Reads || gcWrites != r.DeviceStats.Writes {
		t.Fatalf("gc+redo attribution r/w %d/%d != cycle device stats %d/%d",
			gcReads, gcWrites, r.DeviceStats.Reads, r.DeviceStats.Writes)
	}
}

// TestCollectSTWSpans pins the stop-the-world collector's timeline: one
// gc.stw span covering the cycle, with the mark/summarize/compact/redo
// phases nested inside it.
func TestCollectSTWSpans(t *testing.T) {
	h, reg := newHeap(t, 4<<20)
	buildGraph(t, h, reg, 42, 500, 5)
	tel := telemetry.New()
	h.SetTelemetry(tel)
	if _, err := Collect(h, NoRoots{}); err != nil {
		t.Fatal(err)
	}
	snap := tel.Snapshot()
	stw := snap.SpanTotal(telemetry.SpanGCSTW)
	if stw <= 0 {
		t.Fatal("gc.stw span missing")
	}
	inner := snap.SpanTotal(telemetry.SpanGCMark) + snap.SpanTotal(telemetry.SpanGCSummarize) +
		snap.SpanTotal(telemetry.SpanGCCompact) + snap.SpanTotal(telemetry.SpanGCRedo)
	if inner <= 0 || inner > stw {
		t.Fatalf("inner phases %v must be positive and nest in gc.stw %v", inner, stw)
	}
	if got := snap.Counter(telemetry.CtrGCCycles.Name()); got != 1 {
		t.Fatalf("gc.cycles = %d, want 1", got)
	}
}
