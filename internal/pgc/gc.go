package pgc

import (
	"fmt"
	"time"

	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
	"espresso/internal/telemetry"
	"espresso/internal/telemetry/blackbox"
)

// snapCounters journals a folded-counter snapshot at the end of a cycle
// (rate context for post-mortems: how much work the process had done by
// this point in the timeline). No-op without both a recorder and a
// registry.
func snapCounters(h *pheap.Heap, fr *blackbox.Recorder) {
	tel := h.Telemetry()
	if fr == nil || tel == nil {
		return
	}
	snap := tel.Snapshot()
	fr.Append(blackbox.EvCounterSnap,
		snap.Counter(telemetry.CtrAllocObjects.Name()),
		snap.Counter(telemetry.CtrRefStores.Name()),
		snap.Counter(telemetry.CtrIndexPuts.Name()))
}

// Result reports what a collection (or recovery) did.
type Result struct {
	LiveObjects  int
	LiveBytes    int
	MovedObjects int
	MovedBytes   int
	NewTop       int
	// MarkTime is the wall time spent marking: inside the pause for the
	// stop-the-world collector, overlapped with mutators for the
	// concurrent one.
	MarkTime time.Duration
	// PauseTime is the stop-the-world portion. For Collect and Recover it
	// equals the whole collection; for CollectConcurrent it is the sum of
	// the initial handshake and the final remark+compaction pause.
	PauseTime time.Duration
	// DeviceStats is the device traffic of the whole collection;
	// PauseDeviceStats is the subset issued inside the stop-the-world
	// windows (they coincide for the STW collector). Under a concurrent
	// collection DeviceStats also absorbs whatever traffic mutators issue
	// while marking runs, since the device counters are shared.
	DeviceStats      nvm.Stats
	PauseDeviceStats nvm.Stats
	// Per-worker device accounting for the parallel phases — index w is
	// worker w's share. MarkWorkerStats covers tracing (the busiest
	// worker bounds the marking wall clock on a real device);
	// CompactFixWorkerStats covers the parallel reference-fix pass of
	// compaction; CompactSerialStats is the rest of the compact phase
	// (the serial move pass, region-bit publication, fillers). The
	// modeled device critical path of mark+compact is
	// max(MarkWorkerStats) + max(CompactFixWorkerStats) +
	// CompactSerialStats, which the gcpause experiment's workers axis
	// gates on.
	MarkWorkerStats       []nvm.Stats
	CompactFixWorkerStats []nvm.Stats
	CompactSerialStats    nvm.Stats
	// Per-worker wall times for the same parallel phases.
	// MarkWorkerTimes is each mark worker's productive tracing time
	// (loop wall time minus termination-barrier parking), accumulated
	// over every trace round of the cycle; CompactFixWorkerTimes is each
	// fix worker's shard wall time. Skew across a slice means uneven
	// work division — the signal the device-stat splits above cannot
	// show when the imbalance is in host work (deque contention,
	// scheduling) rather than device traffic. Both are also emitted as
	// gc.mark.worker / gc.fix.worker telemetry spans when the heap has a
	// registry attached.
	MarkWorkerTimes       []time.Duration
	CompactFixWorkerTimes []time.Duration
	Recovered             bool // true when produced by Recover
}

// Collect runs a full crash-consistent collection of h. ext supplies (and
// receives updates for) DRAM references into the heap; pass NoRoots{} if
// none exist. The world must be stopped: no allocation or mutation may run
// concurrently, as with the JVM's stop-the-world old GC.
func Collect(h *pheap.Heap, ext Rooter) (Result, error) {
	if !h.TryBeginCollection() {
		return Result{}, fmt.Errorf("pgc: another collection of this heap is already running")
	}
	defer h.EndCollection()
	if h.GCActive() {
		return Result{}, fmt.Errorf("pgc: heap is mid-collection; run Recover first")
	}
	if ext == nil {
		ext = NoRoots{}
	}
	start := time.Now()
	statsBefore := h.Device().Stats()
	tel := h.Telemetry() // nil when telemetry is disabled; every method no-ops

	// A persisted concurrent-mark phase from an aborted cycle is stale —
	// the bitmap it announced is about to be rebuilt from scratch.
	if h.GCPhase() != pheap.GCPhaseIdle {
		h.SetGCPhase(pheap.GCPhaseIdle)
	}

	// Safepoint: detach every mutator's PLAB and recycled hole. Their
	// region tops are already persisted (headers-before-top), so dropping
	// the volatile bump state loses nothing; the finish step republishes
	// all region tops from the summary.
	h.PrepareForCollection()
	fr := h.FlightRecorder()
	fr.Append(blackbox.EvGCBegin, 0, h.GlobalTS(), 0)

	// Phase 1: mark, then persist both bitmaps. The mark bitmap is the
	// pre-collection sketch of the heap; the cleared region bitmap must be
	// durable before the heap is stamped active, or recovery could trust
	// stale region bits from a previous collection.
	markStart := time.Now()
	mk, err := mark(h, ext, 1)
	if err != nil {
		return Result{}, err
	}
	liveObjects, liveBytes := mk.Counts()
	markTime := time.Since(markStart)
	h.PersistMarkBitmapUsed()
	h.RegionBitmap().Persist()
	fr.Append(blackbox.EvGCMarkDone, uint64(liveObjects), uint64(liveBytes), 0)

	// Phase 2: stamp the heap mid-collection (timestamp first, flag second;
	// see pheap.SetGCState for why the order matters).
	cur := h.GlobalTS() + 1
	h.SetGCState(cur, true)
	fr.Append(blackbox.EvGCStamp, cur, uint64(liveObjects), uint64(liveBytes))

	// Phase 3: summary — idempotent, derived from the bitmap alone.
	sumStart := time.Now()
	s, err := Summarize(h)
	if err != nil {
		// Nothing has moved; un-stamp the heap and report.
		h.SetGCState(cur, false)
		return Result{}, err
	}
	if s.LiveObjects != liveObjects || s.LiveBytes != liveBytes {
		h.SetGCState(cur, false)
		return Result{}, fmt.Errorf("pgc: summary disagrees with marking: %d/%d objects, %d/%d bytes",
			s.LiveObjects, liveObjects, s.LiveBytes, liveBytes)
	}

	// Phase 4: compact. Recycling state refers to the pre-GC layout and
	// must be dropped before anything moves. The marker's outgoing-
	// reference summary lets the compactor skip re-scanning regions that
	// cannot reference moved objects (no dirty cards here: the world is
	// stopped, so the trace saw every store).
	sumTime := time.Since(sumStart)
	h.ResetFreeHoles()
	compactStart := time.Now()
	cr := compact(h, s, cur, buildCleanCards(s, mk.MaxOutgoing(), nil), 1)
	compactTime := time.Since(compactStart)
	fr.Append(blackbox.EvGCCompactDone, uint64(s.MovedObjects), uint64(s.MovedBytes), 0)

	// Phase 5: finish atomically via the redo log, then patch DRAM roots
	// and hand the filler-covered gaps back to the allocator.
	redoBefore := h.Device().Stats()
	redoStart := time.Now()
	finish(h, s, cr.topEntries)
	redoStats := h.Device().Stats().Sub(redoBefore)
	redoTime := time.Since(redoStart)
	ext.UpdateRoots(s.Forward)
	h.SetFreeHoles(cr.holes)
	fr.Append(blackbox.EvGCEnd, uint64(s.LiveObjects), uint64(s.MovedObjects), uint64(s.NewTop))
	snapCounters(h, fr)

	stats := h.Device().Stats().Sub(statsBefore)
	// Phase timeline + device attribution. The world is stopped for the
	// whole cycle, so the full stats delta is GC traffic; the redo-log
	// finish window is split out under its own subsystem.
	tel.RecordSpan(telemetry.SpanGCMark, -1, -1, markStart, markTime)
	tel.RecordSpan(telemetry.SpanGCSummarize, -1, -1, sumStart, sumTime)
	tel.RecordSpan(telemetry.SpanGCCompact, -1, -1, compactStart, compactTime)
	tel.RecordSpan(telemetry.SpanGCRedo, -1, -1, redoStart, redoTime)
	tel.RecordSpan(telemetry.SpanGCSTW, -1, -1, start, time.Since(start))
	for i, d := range mk.MarkWorkerTimes() {
		tel.RecordSpan(telemetry.SpanGCMarkWorker, -1, i, markStart, d)
	}
	for i, d := range cr.fixWorkerTimes {
		tel.RecordSpan(telemetry.SpanGCFixWorker, -1, i, compactStart, d)
	}
	if sc := tel.Shared(); sc != nil {
		sc.AtomicInc(telemetry.CtrGCCycles)
		sc.AtomicDevStats(nvm.SubGC, stats.Sub(redoStats))
		sc.AtomicDevStats(nvm.SubRedo, redoStats)
	}
	return Result{
		LiveObjects:           s.LiveObjects,
		LiveBytes:             s.LiveBytes,
		MovedObjects:          s.MovedObjects,
		MovedBytes:            s.MovedBytes,
		NewTop:                s.NewTop,
		MarkTime:              markTime,
		PauseTime:             time.Since(start),
		DeviceStats:           stats,
		PauseDeviceStats:      stats,
		MarkWorkerStats:       mk.MarkWorkerStats(),
		CompactFixWorkerStats: cr.fixWorkerStats,
		CompactSerialStats:    cr.serialStats,
		MarkWorkerTimes:       mk.MarkWorkerTimes(),
		CompactFixWorkerTimes: cr.fixWorkerTimes,
	}, nil
}

// finish commits the collection's metadata transition — forwarded root
// entries, the republished per-region tops (topEntries, accumulated by
// the compactor's fill workers in region order), gcActive=0 — through
// the redo log so the whole batch is atomic and idempotently
// reapplicable: however many workers produced pieces of the batch, it
// becomes durable through ONE RedoCommit, whose count+state flush is the
// single commit point (the single-publish invariant — see compact).
// After compaction the heap is dense below NewTop (gap fillers included),
// so every region below it parses to its end (or to NewTop in the last,
// partial region — which the dispenser then resumes filling), and every
// region above it is reset to untouched.
func finish(h *pheap.Heap, s *Summary, topEntries []pheap.RedoEntry) {
	var entries []pheap.RedoEntry
	for _, root := range h.Roots() {
		entries = append(entries, pheap.RedoEntry{Off: root.ValueOff, Val: uint64(s.Forward(root.Ref))})
	}
	entries = append(entries, topEntries...)
	entries = append(entries, pheap.RedoEntry{Off: h.GCActiveMetaOff(), Val: 0})
	h.RedoCommit(entries)
	h.RedoApply()
	h.RefreshAfterRedo()
}

// gapOf reports the filler-covered gap of region r below the new top.
func gapOf(h *pheap.Heap, s *Summary, r int) (lo, hi int) {
	start := h.Geo().DataOff + r*layout.RegionSize
	lo = start + s.Occupancy(r)
	hi = start + layout.RegionSize
	if hi > s.NewTop {
		hi = s.NewTop
	}
	return lo, hi
}

// recyclableOf trims gap [lo, hi) to cache-line boundaries. Only the
// aligned middle is handed back to allocators: a hole that started
// mid-line would share its first flushed line with the live object the
// compactor left right before it, and a mutator refilling the hole must
// never write a line another mutator may concurrently flush. The edge
// slivers stay plugged with their own fillers until the next collection.
func recyclableOf(lo, hi int) (pheap.Hole, bool) {
	alignedLo := (lo + layout.LineSize - 1) &^ (layout.LineSize - 1)
	alignedHi := hi &^ (layout.LineSize - 1)
	if alignedHi-alignedLo < layout.LineSize {
		return pheap.Hole{}, false
	}
	return pheap.Hole{Lo: alignedLo, Hi: alignedHi}, true
}

// Recover finishes an interrupted collection on a freshly loaded heap
// (paper §4.3): refetch the mark bitmap, redo the summary, process the
// regions the region bitmap and source timestamps report unfinished, and
// rerun the atomic finish. It is a no-op on a heap that is not
// mid-collection — except that it clears a leftover concurrent-mark
// phase word: with gcActive clear, that word means the crash interrupted
// marking before anything moved, so the recovery is "discard the partial
// mark, start the next cycle fresh" (the STW fallback). Recovery itself
// may crash and be rerun: every step is idempotent.
// RecoverIfNeeded runs Recover only when the heap's persisted state says
// a collection (or a stale concurrent-mark announcement) was interrupted,
// reporting whether recovery ran. A clean image pays nothing: the check
// is two word reads, no collection slot is taken. core.LoadHeap and
// pshard's parallel recovery fan-out both gate on this.
func RecoverIfNeeded(h *pheap.Heap) (Result, bool, error) {
	if !h.GCActive() && h.GCPhase() == pheap.GCPhaseIdle {
		return Result{}, false, nil
	}
	r, err := Recover(h)
	return r, true, err
}

func Recover(h *pheap.Heap) (Result, error) {
	if !h.TryBeginCollection() {
		return Result{}, fmt.Errorf("pgc: another collection of this heap is already running")
	}
	defer h.EndCollection()
	if !h.GCActive() {
		if h.GCPhase() != pheap.GCPhaseIdle {
			h.SetGCPhase(pheap.GCPhaseIdle)
		}
		return Result{}, nil
	}
	start := time.Now()
	statsBefore := h.Device().Stats()
	h.PrepareForCollection()
	fr := h.FlightRecorder()
	fr.Append(blackbox.EvRecoveryGCBegin, h.GlobalTS(), 1, 0)
	s, err := Summarize(h)
	if err != nil {
		return Result{}, fmt.Errorf("pgc: recovery summary: %w", err)
	}
	// Recovery has no marker state (the outgoing-reference summary died
	// with the crashed process), so it conservatively rescans everything
	// — and runs single-threaded: recovery is rare, and one worker keeps
	// its flush ordering identical to the historical serial compactor.
	h.ResetFreeHoles()
	cr := compact(h, s, h.GlobalTS(), nil, 1)
	// The mark bitmap was fully persisted before gcActive was set, so a
	// phase word still announcing the concurrent mark is stale — clear it
	// before the finish batch retires gcActive. A crash in between leaves
	// gcActive set and reruns this recovery.
	if h.GCPhase() != pheap.GCPhaseIdle {
		h.SetGCPhase(pheap.GCPhaseIdle)
	}
	finish(h, s, cr.topEntries)
	h.SetFreeHoles(cr.holes)
	fr.Append(blackbox.EvRecoveryGCEnd, uint64(s.LiveObjects), uint64(s.MovedObjects), uint64(s.NewTop))
	stats := h.Device().Stats().Sub(statsBefore)
	// The whole replay is one recovery event: one span, all device
	// traffic attributed to the recovery subsystem.
	tel := h.Telemetry()
	tel.RecordSpan(telemetry.SpanRecoveryGC, -1, -1, start, time.Since(start))
	if sc := tel.Shared(); sc != nil {
		sc.AtomicInc(telemetry.CtrGCRecoveries)
		sc.AtomicDevStats(nvm.SubRecovery, stats)
	}
	return Result{
		LiveObjects:      s.LiveObjects,
		LiveBytes:        s.LiveBytes,
		MovedObjects:     s.MovedObjects,
		MovedBytes:       s.MovedBytes,
		NewTop:           s.NewTop,
		PauseTime:        time.Since(start),
		DeviceStats:      stats,
		PauseDeviceStats: stats,
		Recovered:        true,
	}, nil
}
