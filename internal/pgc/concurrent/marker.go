// Package concurrent implements the snapshot-at-the-beginning (SATB)
// marking engine of the concurrent persistent collector.
//
// The marker is handed a snapshot of the per-region top table taken at a
// brief initial handshake (with the world stopped) and traces the object
// graph strictly below those snapshot tops while mutators keep running:
// bump allocation only ever advances tops, so everything the mutators
// create after the snapshot lies above it and is implicitly live
// (allocate-black). Reachability can only be hidden from the marker by
// overwriting a reference slot; the pre-write barrier (core.storeRef via
// pheap's SATB buffers) records every overwritten referent, and the
// marker drains those buffers as extra gray roots — first concurrently,
// then once more at the final remark with the world stopped again.
//
// Race discipline: the marker reads reference slots with single atomic
// machine loads (nvm.ReadU64Atomic) and mutators store them with single
// atomic machine stores, so a concurrent load never tears; object
// headers below the snapshot are immutable while marking runs, so plain
// reads suffice there. The mark bitmap is written by the marker alone.
//
// The same engine runs the stop-the-world mark phase: with the snapshot
// taken at the current tops and no mutators running, tracing degenerates
// to the seed's mark loop, which is how pgc shares one tracer between
// both collectors.
package concurrent

import (
	"fmt"

	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
)

// Marker is one collection cycle's tracing state. It is not safe for
// concurrent use — one goroutine (the collector's) drives it; the
// concurrency is with mutators, not within the marker.
type Marker struct {
	h    *pheap.Heap
	snap []int // region-top snapshot (raw table encoding)

	dataOff int
	stack   []layout.Ref

	// maxOut[c] is the highest device offset any traced object starting
	// in card c (pheap.SATBCardBytes granularity) points at (NoOutgoing
	// if none, ScanAlways if unknown — allocate-black objects are never
	// scanned). The compactor uses it to skip pause-time reference fixing
	// for cards that provably cannot reference a moved object; the
	// write-barrier's dirty cards veto the skip for cards stored to after
	// their objects were traced.
	maxOut []int

	liveObjects, liveBytes int
}

// maxOut sentinels.
const (
	// NoOutgoing marks a card none of whose traced objects holds an
	// in-heap reference.
	NoOutgoing = -1
	// ScanAlways marks a card whose outgoing references are unknown (its
	// objects were marked wholesale by the allocate-black sweep).
	ScanAlways = int(^uint(0) >> 1)
)

// NewMarker prepares a marker over the given region-top snapshot. The
// caller has already cleared the mark and region bitmaps (with the world
// stopped, as part of the same handshake that took the snapshot).
func NewMarker(h *pheap.Heap, snapTops []int) *Marker {
	maxOut := make([]int, h.Geo().DataSize/pheap.SATBCardBytes)
	for i := range maxOut {
		maxOut[i] = NoOutgoing
	}
	return &Marker{h: h, snap: snapTops, dataOff: h.Geo().DataOff, maxOut: maxOut}
}

// Counts reports the live objects and bytes marked so far.
func (m *Marker) Counts() (objects, bytes int) { return m.liveObjects, m.liveBytes }

// MaxOutgoing exposes the per-card outgoing-reference summary (see the
// Marker field docs). Valid once marking is complete.
func (m *Marker) MaxOutgoing() []int { return m.maxOut }

// belowSnapshot reports whether the object starting at device offset off
// lies below its region's snapshot top. Humongous heads carry a top
// beyond their region end, so the comparison covers them; interior
// regions hold the sentinel and never start an object.
func (m *Marker) belowSnapshot(off int) bool {
	r := (off - m.dataOff) / layout.RegionSize
	if r < 0 || r >= len(m.snap) {
		return false
	}
	top := m.snap[r]
	return pheap.IsRealTop(top) && off < top
}

// push grays ref if it is a heap object below the snapshot. Slot values
// may carry low tag bits (the persistent index's link-state marks); the
// tag is stripped before the value is treated as an address.
func (m *Marker) push(ref layout.Ref) {
	ref = layout.UntagRef(ref)
	if ref != layout.NullRef && m.h.Contains(ref) && m.belowSnapshot(m.h.OffOf(ref)) {
		m.stack = append(m.stack, ref)
	}
}

// atomicU64 adapts the device's atomic word load to the ReadU64 interface
// pheap.RefSlots walks, so slot enumeration under concurrent mutation
// reuses the canonical iteration.
type atomicU64 struct{ dev *nvm.Device }

func (a atomicU64) ReadU64(off int) uint64 { return a.dev.ReadU64Atomic(off) }

// MarkRoots grays the root set and traces to a fixpoint. Roots are the
// snapshot-time root references, captured by the collector during the
// initial handshake.
func (m *Marker) MarkRoots(roots []layout.Ref) error {
	for _, r := range roots {
		m.push(r)
	}
	return m.trace()
}

// trace drains the gray stack, blackening each object: set its begin and
// end mark bits, count it, and gray its below-snapshot referents.
func (m *Marker) trace() error {
	bm := m.h.MarkBitmap()
	dev := m.h.Device()
	slots := atomicU64{dev}
	idx := func(off int) int { return (off - m.dataOff) / layout.WordSize }
	for len(m.stack) > 0 {
		ref := m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		off := m.h.OffOf(ref)
		if bm.Get(idx(off)) {
			continue // already marked (object starts are never interior words)
		}
		k, size, err := m.h.SizeOfObjectAt(off)
		if err != nil {
			return fmt.Errorf("concurrent: marking %#x: %w", uint64(ref), err)
		}
		bm.Set(idx(off))
		bm.Set(idx(off) + size/layout.WordSize - 1)
		m.liveObjects++
		m.liveBytes += size
		srcCard := (off - m.dataOff) / pheap.SATBCardBytes
		pheap.RefSlots(slots, off, k, func(slotBoff int) {
			v := layout.UntagRef(layout.Ref(dev.ReadU64Atomic(off + slotBoff)))
			if v != layout.NullRef && m.h.Contains(v) {
				if tgt := m.h.OffOf(v); tgt > m.maxOut[srcCard] {
					m.maxOut[srcCard] = tgt
				}
			}
			m.push(v)
		})
	}
	return nil
}

// DrainOnce empties every SATB buffer into the gray stack and traces,
// reporting how many barrier records it consumed.
func (m *Marker) DrainOnce() (int, error) {
	n := m.h.DrainSATB(func(ref layout.Ref) { m.push(ref) })
	return n, m.trace()
}

// maxDrainRounds bounds the concurrent drain: mutators that overwrite
// references faster than the marker drains would otherwise postpone the
// final pause forever. Whatever is still buffered after the cap is
// simply remark work — correctness never depended on reaching an empty
// drain, only the pause length does.
const maxDrainRounds = 8

// ConcurrentDrainLoop repeatedly drains the SATB buffers while mutators
// run, returning once a drain delivers nothing (the natural quiescence
// point to request the final pause at) or after maxDrainRounds.
// Mutators may still append records afterwards; the final remark
// collects those.
func (m *Marker) ConcurrentDrainLoop() error {
	for round := 0; round < maxDrainRounds; round++ {
		n, err := m.DrainOnce()
		if err != nil || n == 0 {
			return err
		}
	}
	return nil
}

// FinalRemark completes marking with the world stopped: one last SATB
// drain plus trace, then the allocate-black sweep — every non-filler
// object allocated since the snapshot (between each region's snapshot
// top and its current top, curTops) is marked live wholesale, so the
// summary phase sees exactly the SATB-live set. Fillers are skipped:
// marking a retired PLAB's tail filler would pin dead space (or, past
// HugeThreshold, whole regions) until the next cycle.
func (m *Marker) FinalRemark(curTops []int) error {
	if _, err := m.DrainOnce(); err != nil {
		return err
	}
	bm := m.h.MarkBitmap()
	geo := m.h.Geo()
	idx := func(off int) int { return (off - m.dataOff) / layout.WordSize }
	for r := 0; r < geo.DataRegions(); r++ {
		cur := curTops[r]
		if !pheap.IsRealTop(cur) {
			continue
		}
		lo := geo.DataOff + r*layout.RegionSize
		if r < len(m.snap) && pheap.IsRealTop(m.snap[r]) && m.snap[r] > lo {
			lo = m.snap[r]
		}
		for off := lo; off < cur; {
			k, size, err := m.h.SizeOfObjectAt(off)
			if err != nil {
				return fmt.Errorf("concurrent: allocate-black sweep at %d: %w", off, err)
			}
			if !pheap.IsFiller(k) {
				bm.Set(idx(off))
				bm.Set(idx(off) + size/layout.WordSize - 1)
				m.liveObjects++
				m.liveBytes += size
				// Swept objects are never scanned, so their outgoing
				// references are unknown: the compactor must rescan the
				// card at fix-up time.
				m.maxOut[(off-m.dataOff)/pheap.SATBCardBytes] = ScanAlways
			}
			off += size
		}
	}
	return nil
}
