// Package concurrent implements the snapshot-at-the-beginning (SATB)
// marking engine of the concurrent persistent collector.
//
// The marker is handed a snapshot of the per-region top table taken at a
// brief initial handshake (with the world stopped) and traces the object
// graph strictly below those snapshot tops while mutators keep running:
// bump allocation only ever advances tops, so everything the mutators
// create after the snapshot lies above it and is implicitly live
// (allocate-black). Reachability can only be hidden from the marker by
// overwriting a reference slot; the pre-write barrier (core.storeRef via
// pheap's SATB buffers) records every overwritten referent, and the
// marker drains those buffers as extra gray roots — first concurrently,
// then once more at the final remark with the world stopped again.
//
// Tracing is parallel: N workers each own a work-stealing deque, seeded
// from the root set by the region (under the snapshot top table) each
// root points into. A worker scans objects popped from its own tail,
// steals batches from other deques when it runs dry, and — before going
// idle — drains its shard of the SATB and remset-delta buffers so
// barrier traffic is consumed concurrently with tracing by the same
// pool. Termination is a steal-failure + buffer-quiescence barrier: a
// worker retires only after its own deque is empty, a steal sweep over
// every other deque failed, and its SATB shard drained nothing (or the
// drain budget ran out); the cycle is over when every worker has retired
// at once. That is sound because workers push only to their own deques —
// a deque can be non-empty only while its owner is active, so "all
// workers idle" implies "all deques empty" implies no marking work can
// ever appear again except via mutator barriers, which the final remark
// collects.
//
// Race discipline: the marker reads reference slots with single atomic
// machine loads (nvm.ReadU64Atomic) and mutators store them with single
// atomic machine stores, so a concurrent load never tears; object
// headers below the snapshot are immutable while marking runs, so plain
// reads suffice there. The mark bitmap is shared between workers and
// written with atomic fetch-OR word operations; a worker claims an
// object by flipping its begin bit from clear to set, so every object is
// scanned (and counted) by exactly one worker no matter how many deques
// it was pushed onto.
//
// The same engine runs the stop-the-world mark phase: with the snapshot
// taken at the current tops, no mutators running, and workers=1, tracing
// degenerates to the seed's mark loop, which is how pgc shares one
// tracer between both collectors.
package concurrent

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
)

// Marker is one collection cycle's tracing state. The exported methods
// are driven by one goroutine (the collector's); each call fans the work
// out over the configured worker pool internally and joins it before
// returning.
type Marker struct {
	h       *pheap.Heap
	snap    []int // region-top snapshot (raw table encoding)
	dataOff int
	workers int

	ws []*workerState

	// idle counts workers currently parked in the termination barrier;
	// a trace call completes when it reaches the pool size. Reset per
	// trace call.
	idle atomic.Int64

	// satbConsumed tallies SATB records delivered during the current
	// trace call (DrainOnce's return value). Reset per trace call.
	satbConsumed atomic.Int64

	// maxOut[c] is the highest device offset any traced object starting
	// in card c (pheap.SATBCardBytes granularity) points at (NoOutgoing
	// if none, ScanAlways if unknown — allocate-black objects are never
	// scanned). The compactor uses it to skip pause-time reference fixing
	// for cards that provably cannot reference a moved object; the
	// write-barrier's dirty cards veto the skip for cards stored to after
	// their objects were traced. Workers race on it with CAS-max, which
	// commutes: the final table is order-independent.
	maxOut []int64

	// Errors and panics from worker goroutines, forwarded to the
	// coordinator: the first error aborts the trace (failed makes every
	// worker bail out promptly), the first panic is re-raised on the
	// calling goroutine so device crash-injection hooks behave exactly
	// as they do single-threaded.
	failed   atomic.Bool
	errMu    sync.Mutex
	err      error
	panicVal any

	// Serial allocate-black sweep counters (FinalRemark, world stopped).
	sweptObjects, sweptBytes int
}

// workerState is one worker's private half: its deque, its accounting
// view of the device, its bitmap view through that device, and its
// share of the live counts. Only its owning goroutine touches the
// counts and budgets; the deque has its own lock.
type workerState struct {
	id          int
	dq          *deque
	wd          *nvm.WorkerDevice
	bm          *pheap.Bitmap
	liveObjects int
	liveBytes   int
	drainBudget int
	scanTick    int // scans since the last voluntary yield
	// busy is this worker's wall time inside workerLoop across every
	// trace call of the cycle; parked is the portion spent in the idle
	// barrier. busy − parked is the worker's productive time — the skew
	// signal Result.MarkWorkerTimes reports (every worker's total wall
	// time is roughly equal by construction: all retire together).
	busy, parked time.Duration
}

// yieldEvery is how many scans a worker performs between voluntary
// runtime.Gosched calls. Busy workers yielding at a granularity much
// finer than the scheduler's preemption quantum keeps the pool's work
// division fair even when GOMAXPROCS is smaller than the pool — without
// it, whichever workers hold the CPUs absorb the whole graph in coarse
// preemption slices and the per-worker accounting degenerates to the
// host's core count instead of the pool size.
const yieldEvery = 64

// maxOut sentinels.
const (
	// NoOutgoing marks a card none of whose traced objects holds an
	// in-heap reference.
	NoOutgoing = -1
	// ScanAlways marks a card whose outgoing references are unknown (its
	// objects were marked wholesale by the allocate-black sweep).
	ScanAlways = int(^uint(0) >> 1)
)

// NewMarker prepares a marker over the given region-top snapshot with a
// pool of workers tracing goroutines (values < 1 mean 1). The caller has
// already cleared the mark and region bitmaps (with the world stopped,
// as part of the same handshake that took the snapshot).
func NewMarker(h *pheap.Heap, snapTops []int, workers int) *Marker {
	if workers < 1 {
		workers = 1
	}
	maxOut := make([]int64, h.Geo().DataSize/pheap.SATBCardBytes)
	for i := range maxOut {
		maxOut[i] = NoOutgoing
	}
	m := &Marker{h: h, snap: snapTops, dataOff: h.Geo().DataOff, workers: workers, maxOut: maxOut}
	for i := 0; i < workers; i++ {
		wd := nvm.NewWorkerDevice(h.Device())
		m.ws = append(m.ws, &workerState{id: i, dq: &deque{}, wd: wd, bm: h.MarkBitmapOn(wd)})
	}
	return m
}

// Workers reports the pool size.
func (m *Marker) Workers() int { return m.workers }

// Counts reports the live objects and bytes marked so far, summed over
// the pool (exact: the bitmap claim gives every object one counter).
func (m *Marker) Counts() (objects, bytes int) {
	objects, bytes = m.sweptObjects, m.sweptBytes
	for _, w := range m.ws {
		objects += w.liveObjects
		bytes += w.liveBytes
	}
	return objects, bytes
}

// WorkerObjectCounts reports each worker's share of the traced objects —
// the marked-exactly-once cross-check the termination tests sum.
func (m *Marker) WorkerObjectCounts() []int {
	counts := make([]int, m.workers)
	for i, w := range m.ws {
		counts[i] = w.liveObjects
	}
	return counts
}

// MarkWorkerStats reports each worker's device traffic — the per-worker
// accounting the gcpause experiment turns into a modeled parallel
// critical path (the busiest worker bounds the phase).
func (m *Marker) MarkWorkerStats() []nvm.Stats {
	stats := make([]nvm.Stats, m.workers)
	for i, w := range m.ws {
		stats[i] = w.wd.Local
	}
	return stats
}

// MarkWorkerTimes reports each worker's productive tracing time — wall
// time inside the worker loop minus time parked in the termination
// barrier, accumulated over every trace call of the cycle (root mark,
// concurrent drains, final remark). Skew across workers means uneven
// work division; near-equal times with a long wall clock mean the graph
// itself serialized the pool.
func (m *Marker) MarkWorkerTimes() []time.Duration {
	times := make([]time.Duration, m.workers)
	for i, w := range m.ws {
		times[i] = w.busy - w.parked
	}
	return times
}

// MaxOutgoing exposes the per-card outgoing-reference summary (see the
// Marker field docs). Valid once marking is complete.
func (m *Marker) MaxOutgoing() []int {
	out := make([]int, len(m.maxOut))
	for i := range m.maxOut {
		out[i] = int(atomic.LoadInt64(&m.maxOut[i]))
	}
	return out
}

// belowSnapshot reports whether the object starting at device offset off
// lies below its region's snapshot top. Humongous heads carry a top
// beyond their region end, so the comparison covers them; interior
// regions hold the sentinel and never start an object.
func (m *Marker) belowSnapshot(off int) bool {
	r := (off - m.dataOff) / layout.RegionSize
	if r < 0 || r >= len(m.snap) {
		return false
	}
	top := m.snap[r]
	return pheap.IsRealTop(top) && off < top
}

// pushTo grays ref onto w's deque if it is a heap object below the
// snapshot. Slot values may carry low tag bits (the persistent index's
// link-state marks); the tag is stripped before the value is treated as
// an address.
func (m *Marker) pushTo(w *workerState, ref layout.Ref) {
	ref = layout.UntagRef(ref)
	if ref != layout.NullRef && m.h.Contains(ref) && m.belowSnapshot(m.h.OffOf(ref)) {
		w.dq.push(ref)
	}
}

// noteOutgoing raises card c's summary to at least tgt (CAS-max — racing
// workers commute).
func (m *Marker) noteOutgoing(c int, tgt int) {
	for {
		cur := atomic.LoadInt64(&m.maxOut[c])
		if int64(tgt) <= cur {
			return
		}
		if atomic.CompareAndSwapInt64(&m.maxOut[c], cur, int64(tgt)) {
			return
		}
	}
}

// atomicReader adapts a worker's accounting device to the ReadU64
// interface pheap.RefSlots walks, loading each slot with one atomic
// machine load (slots may be concurrently stored by mutators).
type atomicReader struct{ wd *nvm.WorkerDevice }

func (a atomicReader) ReadU64(off int) uint64 { return a.wd.ReadU64Atomic(off) }

// sizeOf decodes the klass and size of the object at off through w's
// accounting device. Headers below the snapshot are immutable while
// marking runs, so plain reads suffice.
func (m *Marker) sizeOf(w *workerState, off int) (*klass.Klass, int, error) {
	kaddr := layout.Ref(w.wd.ReadU64(off + layout.KlassWordOff))
	k, ok := m.h.KlassByAddr(kaddr)
	if !ok {
		return nil, 0, fmt.Errorf("offset %d: dangling klass word %#x", off, uint64(kaddr))
	}
	n := 0
	if k.IsArray() {
		n = int(w.wd.ReadU64(off + layout.ArrayLenOff))
	}
	return k, k.SizeOf(n), nil
}

// scan blackens the object at ref on worker w: claim its begin mark bit,
// set its end bit, count it, summarize and gray its referents. The claim
// is the dedup — of all workers holding ref on some deque, exactly one
// sees the bit flip and scans.
func (m *Marker) scan(w *workerState, ref layout.Ref) error {
	off := m.h.OffOf(ref)
	bit := (off - m.dataOff) / layout.WordSize
	if !w.bm.TrySetAtomic(bit) {
		return nil // already claimed (object starts are never interior words)
	}
	k, size, err := m.sizeOf(w, off)
	if err != nil {
		return fmt.Errorf("concurrent: marking %#x: %w", uint64(ref), err)
	}
	w.bm.SetAtomic(bit + size/layout.WordSize - 1)
	w.liveObjects++
	w.liveBytes += size
	srcCard := (off - m.dataOff) / pheap.SATBCardBytes
	pheap.RefSlots(atomicReader{w.wd}, off, k, func(slotBoff int) {
		v := layout.UntagRef(layout.Ref(w.wd.ReadU64Atomic(off + slotBoff)))
		if v != layout.NullRef && m.h.Contains(v) {
			tgt := m.h.OffOf(v)
			m.noteOutgoing(srcCard, tgt)
			if m.belowSnapshot(tgt) {
				w.dq.push(v)
			}
		}
	})
	return nil
}

// fail records the first worker error and tells the pool to bail out.
func (m *Marker) fail(err error) {
	m.errMu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.errMu.Unlock()
	m.failed.Store(true)
}

// notePanic forwards a worker panic: remember the first value, release
// the pool. The coordinator re-raises it once every worker has joined,
// so a crash-injection hook firing on a worker goroutine unwinds the
// collector exactly as it would single-threaded.
func (m *Marker) notePanic(p any) {
	m.errMu.Lock()
	if m.panicVal == nil {
		m.panicVal = p
	}
	m.errMu.Unlock()
	m.failed.Store(true)
}

// steal sweeps the other deques once, moving a batch from the first
// non-empty victim into w's deque and returning one entry to scan.
func (m *Marker) steal(w *workerState) (layout.Ref, bool) {
	for i := 1; i < m.workers; i++ {
		victim := m.ws[(w.id+i)%m.workers]
		if stolen := victim.dq.stealHalf(); len(stolen) > 0 {
			for _, r := range stolen[1:] {
				w.dq.push(r)
			}
			return stolen[0], true
		}
	}
	return layout.NullRef, false
}

// anyWork reports whether any deque holds stealable gray work. The
// threshold matches stealHalf's: a single-entry deque belongs to an
// active owner mid-chain (the owner-push invariant), so waking an idle
// worker for it would only fail a steal and burn a drain round. This
// does not weaken termination — the barrier exits on the idle count,
// and "all workers idle" still implies "all deques empty".
func (m *Marker) anyWork() bool {
	for _, w := range m.ws {
		if w.dq.size() >= 2 {
			return true
		}
	}
	return false
}

// workerLoop is one worker's trace-to-termination: scan own work, steal,
// drain the worker's SATB + remset shards before parking, and retire
// through the idle barrier.
func (m *Marker) workerLoop(w *workerState) {
	remsetPending := true
	for {
		if m.failed.Load() {
			return
		}
		if w.scanTick++; w.scanTick >= yieldEvery && m.workers > 1 {
			w.scanTick = 0
			runtime.Gosched()
		}
		if ref, ok := w.dq.popTail(); ok {
			if err := m.scan(w, ref); err != nil {
				m.fail(err)
				return
			}
			continue
		}
		if ref, ok := m.steal(w); ok {
			if err := m.scan(w, ref); err != nil {
				m.fail(err)
				return
			}
			continue
		}
		// Out of tracing work: consume barrier traffic before parking —
		// the buffer-quiescence half of the termination barrier. The
		// budget keeps a mutator that overwrites references faster than
		// we drain from postponing termination forever; whatever is
		// still buffered after the cap is simply remark work.
		if w.drainBudget > 0 {
			w.drainBudget--
			if remsetPending {
				remsetPending = false
				m.h.PublishRemsetDeltasShard(w.id, m.workers)
			}
			n := m.h.DrainSATBShard(w.id, m.workers, func(r layout.Ref) { m.pushTo(w, r) })
			if n > 0 {
				m.satbConsumed.Add(int64(n))
				continue
			}
		}
		// Idle barrier: park, but watch for work stolen-from-able deques
		// (a still-active worker may push) and for pool completion. The
		// first few re-checks just yield; after that the worker sleeps in
		// naps that back off exponentially, so a long wait (another
		// worker deep in a big chain) neither burns a CPU that mutators
		// could be using nor — the subtler failure — preempts the busy
		// workers tens of thousands of times a second with its wakeups.
		m.idle.Add(1)
		parkStart := time.Now()
		nap := 20 * time.Microsecond
		for spins := 0; ; spins++ {
			if m.idle.Load() == int64(m.workers) {
				w.parked += time.Since(parkStart)
				return
			}
			if m.failed.Load() {
				w.parked += time.Since(parkStart)
				return
			}
			if m.anyWork() {
				m.idle.Add(-1)
				w.parked += time.Since(parkStart)
				break
			}
			if spins < 32 {
				runtime.Gosched()
			} else {
				time.Sleep(nap)
				if nap *= 2; nap > time.Millisecond {
					nap = time.Millisecond
				}
			}
		}
	}
}

// runWorker is workerLoop plus wall-time accounting; the deferred
// accumulate keeps busy consistent even when the loop unwinds through a
// crash-injection panic.
func (m *Marker) runWorker(w *workerState) {
	start := time.Now()
	defer func() { w.busy += time.Since(start) }()
	m.workerLoop(w)
}

// trace runs the pool to termination over whatever the deques currently
// hold, giving each worker drainBudget SATB-shard drain attempts. Worker
// 0 runs on the calling goroutine; with workers=1 no goroutine is ever
// spawned and the engine is the seed's serial trace.
func (m *Marker) trace(drainBudget int) error {
	m.idle.Store(0)
	for _, w := range m.ws {
		w.drainBudget = drainBudget
	}
	if m.workers == 1 {
		m.runWorker(m.ws[0]) // panics propagate natively
	} else {
		var wg sync.WaitGroup
		wg.Add(m.workers - 1)
		for _, w := range m.ws[1:] {
			go func(w *workerState) {
				defer wg.Done()
				defer func() {
					if p := recover(); p != nil {
						m.notePanic(p)
					}
				}()
				m.runWorker(w)
			}(w)
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					m.notePanic(p)
				}
			}()
			m.runWorker(m.ws[0])
		}()
		wg.Wait()
		m.errMu.Lock()
		p := m.panicVal
		m.errMu.Unlock()
		if p != nil {
			panic(p)
		}
	}
	// Publish the workers' locally-accounted device traffic before the
	// collector's next stats snapshot.
	for _, w := range m.ws {
		w.wd.Fold()
	}
	m.errMu.Lock()
	defer m.errMu.Unlock()
	return m.err
}

// MarkRoots grays the root set and traces to the termination barrier.
// Roots are the snapshot-time root references, captured by the collector
// during the initial handshake; each is seeded onto the deque owning its
// region, so the snapshot partitions the initial work across the pool.
func (m *Marker) MarkRoots(roots []layout.Ref) error {
	for _, r := range roots {
		ref := layout.UntagRef(r)
		if ref == layout.NullRef || !m.h.Contains(ref) {
			continue
		}
		off := m.h.OffOf(ref)
		if !m.belowSnapshot(off) {
			continue
		}
		w := m.ws[((off-m.dataOff)/layout.RegionSize)%m.workers]
		w.dq.push(ref)
	}
	return m.trace(maxDrainRounds)
}

// DrainOnce runs the pool over the SATB buffers — every worker drains
// its shard concurrently with tracing the results — and reports how many
// barrier records were consumed.
func (m *Marker) DrainOnce() (int, error) {
	m.satbConsumed.Store(0)
	err := m.trace(maxDrainRounds)
	return int(m.satbConsumed.Load()), err
}

// maxDrainRounds bounds each worker's SATB drain attempts within one
// trace call: mutators that overwrite references faster than the pool
// drains would otherwise postpone the termination barrier forever.
// Whatever is still buffered after the cap is simply remark work —
// correctness never depended on reaching an empty drain, only the pause
// length does.
const maxDrainRounds = 8

// ConcurrentDrainLoop drains the SATB buffers while mutators run — the
// pool keeps tracing until every worker hit buffer quiescence or its
// drain budget. Mutators may still append records afterwards; the final
// remark collects those.
func (m *Marker) ConcurrentDrainLoop() error {
	_, err := m.DrainOnce()
	return err
}

// FinalRemark completes marking with the world stopped: one last SATB
// drain plus trace (the world is stopped, so buffer quiescence is
// reached exactly), then the allocate-black sweep — every non-filler
// object allocated since the snapshot (between each region's snapshot
// top and its current top, curTops) is marked live wholesale, so the
// summary phase sees exactly the SATB-live set. The sweep is serial: it
// is a single pass over the post-snapshot allocation suffix, already a
// small fraction of a region walk, and runs on the coordinator after
// the pool has joined. Fillers are skipped: marking a retired PLAB's
// tail filler would pin dead space (or, past HugeThreshold, whole
// regions) until the next cycle.
func (m *Marker) FinalRemark(curTops []int) error {
	if _, err := m.DrainOnce(); err != nil {
		return err
	}
	bm := m.h.MarkBitmap()
	geo := m.h.Geo()
	idx := func(off int) int { return (off - m.dataOff) / layout.WordSize }
	for r := 0; r < geo.DataRegions(); r++ {
		cur := curTops[r]
		if !pheap.IsRealTop(cur) {
			continue
		}
		lo := geo.DataOff + r*layout.RegionSize
		if r < len(m.snap) && pheap.IsRealTop(m.snap[r]) && m.snap[r] > lo {
			lo = m.snap[r]
		}
		for off := lo; off < cur; {
			k, size, err := m.h.SizeOfObjectAt(off)
			if err != nil {
				return fmt.Errorf("concurrent: allocate-black sweep at %d: %w", off, err)
			}
			if !pheap.IsFiller(k) {
				bm.Set(idx(off))
				bm.Set(idx(off) + size/layout.WordSize - 1)
				m.sweptObjects++
				m.sweptBytes += size
				// Swept objects are never scanned, so their outgoing
				// references are unknown: the compactor must rescan the
				// card at fix-up time.
				atomic.StoreInt64(&m.maxOut[(off-m.dataOff)/pheap.SATBCardBytes], int64(ScanAlways))
			}
			off += size
		}
	}
	return nil
}
