package concurrent

import (
	"sync"
	"sync/atomic"

	"espresso/internal/layout"
)

// deque is one worker's gray-object queue. The owner pushes and pops at
// the tail (LIFO, for the locality a depth-first trace wants); thieves
// take a batch from the head (FIFO), which hands them the oldest —
// typically widest — subgraphs and leaves the owner its hot tail. A
// plain mutex serializes both ends: marking work units are whole-object
// scans, several device reads each, so the lock is never the bottleneck
// and keeps the termination reasoning simple. The length is mirrored in
// an atomic so probes (steal candidate checks, the idle barrier's
// anyWork sweep) never touch the lock — with more thieves than work,
// probe traffic would otherwise serialize the owner's own pops behind
// the thieves' polling.
type deque struct {
	mu  sync.Mutex
	buf []layout.Ref
	n   atomic.Int64
}

// push appends ref at the tail. Only the owning worker pushes — the
// invariant the termination barrier leans on: a deque can only grow
// while its owner is active.
func (d *deque) push(ref layout.Ref) {
	d.mu.Lock()
	d.buf = append(d.buf, ref)
	d.n.Store(int64(len(d.buf)))
	d.mu.Unlock()
}

// popTail removes the newest entry (owner side).
func (d *deque) popTail() (layout.Ref, bool) {
	d.mu.Lock()
	n := len(d.buf)
	if n == 0 {
		d.mu.Unlock()
		return layout.NullRef, false
	}
	ref := d.buf[n-1]
	d.buf = d.buf[:n-1]
	d.n.Store(int64(n - 1))
	d.mu.Unlock()
	return ref, true
}

// stealHalf removes up to half of the entries (at least one) from the
// head and returns them — batch stealing, so one successful steal keeps
// a thief busy instead of sending it back per object. Deques holding a
// single entry are left alone: a linked-chain walk keeps exactly one
// pending node, and stealing it would only migrate the chain between
// workers (mutex ping-pong, cache transfer) without creating any
// parallelism — the owner is about to pop it anyway.
func (d *deque) stealHalf() []layout.Ref {
	if d.n.Load() < 2 {
		return nil
	}
	d.mu.Lock()
	n := len(d.buf)
	if n < 2 {
		d.mu.Unlock()
		return nil
	}
	k := (n + 1) / 2
	stolen := append([]layout.Ref(nil), d.buf[:k]...)
	d.buf = append(d.buf[:0], d.buf[k:]...)
	d.n.Store(int64(len(d.buf)))
	d.mu.Unlock()
	return stolen
}

// size reports the current length without taking the lock (exact, since
// every mutation updates the mirror before unlocking).
func (d *deque) size() int {
	return int(d.n.Load())
}
