package pgc

import (
	"fmt"

	"espresso/internal/layout"
	"espresso/internal/pheap"
)

// Rooter supplies the collector with roots that live outside the heap
// image: DRAM slots (volatile-heap fields, runtime handles) holding
// references into the persistent heap. The name-table roots are handled
// by the collector itself.
type Rooter interface {
	// Roots calls visit with every candidate external root reference.
	// Non-heap values are ignored by the collector.
	Roots(visit func(layout.Ref))
	// UpdateRoots applies the forwarding function to every external slot
	// and stores the result back, after compaction has moved objects.
	UpdateRoots(fwd func(layout.Ref) layout.Ref)
}

// NoRoots is the Rooter for a heap with no live DRAM references — the
// situation during recovery, when the previous process's DRAM is gone.
type NoRoots struct{}

// Roots is a no-op: there are no external roots.
func (NoRoots) Roots(func(layout.Ref)) {}

// UpdateRoots is a no-op: there are no external slots to patch.
func (NoRoots) UpdateRoots(func(layout.Ref) layout.Ref) {}

// mark traces the heap from the name-table roots plus ext's roots,
// setting begin and end bits in the mark bitmap for every live object.
// It returns the live object count and byte volume.
func mark(h *pheap.Heap, ext Rooter) (int, int, error) {
	bm := h.MarkBitmap()
	bm.ClearAll()
	h.RegionBitmap().ClearAll()

	geo := h.Geo()
	idx := func(off int) int { return (off - geo.DataOff) / layout.WordSize }

	var stack []layout.Ref
	pushRoot := func(ref layout.Ref) {
		if ref != layout.NullRef && h.Contains(ref) {
			stack = append(stack, ref)
		}
	}
	for _, r := range h.Roots() {
		pushRoot(r.Ref)
	}
	if ext != nil {
		ext.Roots(pushRoot)
	}

	liveObjects, liveBytes := 0, 0
	dev := h.Device()
	for len(stack) > 0 {
		ref := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		off := h.OffOf(ref)
		if bm.Get(idx(off)) {
			continue // already marked (object starts are never interior words)
		}
		k, size, err := h.SizeOfObjectAt(off)
		if err != nil {
			return 0, 0, fmt.Errorf("pgc: marking %#x: %w", uint64(ref), err)
		}
		bm.Set(idx(off))
		bm.Set(idx(off) + size/layout.WordSize - 1)
		liveObjects++
		liveBytes += size
		pheap.RefSlots(dev, off, k, func(slotBoff int) {
			v := layout.Ref(dev.ReadU64(off + slotBoff))
			if v != layout.NullRef && h.Contains(v) {
				stack = append(stack, v)
			}
		})
	}
	return liveObjects, liveBytes, nil
}
