package pgc

import (
	"espresso/internal/layout"
	"espresso/internal/pgc/concurrent"
	"espresso/internal/pheap"
)

// Rooter supplies the collector with roots that live outside the heap
// image: DRAM slots (volatile-heap fields, runtime handles) holding
// references into the persistent heap. The name-table roots are handled
// by the collector itself.
type Rooter interface {
	// Roots calls visit with every candidate external root reference.
	// Non-heap values are ignored by the collector.
	Roots(visit func(layout.Ref))
	// UpdateRoots applies the forwarding function to every external slot
	// and stores the result back, after compaction has moved objects.
	UpdateRoots(fwd func(layout.Ref) layout.Ref)
}

// NoRoots is the Rooter for a heap with no live DRAM references — the
// situation during recovery, when the previous process's DRAM is gone.
type NoRoots struct{}

// Roots is a no-op: there are no external roots.
func (NoRoots) Roots(func(layout.Ref)) {}

// UpdateRoots is a no-op: there are no external slots to patch.
func (NoRoots) UpdateRoots(func(layout.Ref) layout.Ref) {}

// heapRoots collects the snapshot root set: name-table roots plus ext's
// roots, filtered to references into h. Both collectors capture roots
// through it with the world stopped.
func heapRoots(h *pheap.Heap, ext Rooter) []layout.Ref {
	var roots []layout.Ref
	add := func(ref layout.Ref) {
		if ref != layout.NullRef && h.Contains(ref) {
			roots = append(roots, ref)
		}
	}
	for _, r := range h.Roots() {
		add(r.Ref)
	}
	if ext != nil {
		ext.Roots(add)
	}
	return roots
}

// mark traces the heap from the name-table roots plus ext's roots,
// setting begin and end bits in the mark bitmap for every live object,
// and returns the marker (counts, outgoing-reference summary). The
// tracer is the shared SATB engine run with the snapshot at the current
// tops — with the world stopped that covers every object, so with one
// worker it degenerates to the seed's stop-the-world mark.
func mark(h *pheap.Heap, ext Rooter, workers int) (*concurrent.Marker, error) {
	h.MarkBitmap().ClearAll()
	h.RegionBitmap().ClearAll()
	mk := concurrent.NewMarker(h, h.SnapshotRegionTops(), workers)
	if err := mk.MarkRoots(heapRoots(h, ext)); err != nil {
		return nil, err
	}
	return mk, nil
}
