package pgc

import (
	"sync"
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
)

// TestHoleRefillConcurrentWithAdjacentFlush regression-tests the
// line-aligned hole protocol: a collection leaves recycled holes
// flush-adjacent to live objects, and mutators refilling those holes
// must never touch a cache line that another thread concurrently
// flushes (FlushRange on the survivors). Run under -race — the race
// detector is the oracle for the disjoint-line contract.
func TestHoleRefillConcurrentWithAdjacentFlush(t *testing.T) {
	reg := klass.NewRegistry()
	h, err := pheap.Create(reg, pheap.Config{DataSize: 8 << 20, Mode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	node, err := reg.Define(klass.MustInstance("hole/Node", nil,
		klass.Field{Name: "next", Type: layout.FTRef},
		klass.Field{Name: "pad", Type: layout.FTLong},
	))
	if err != nil {
		t.Fatal(err)
	}
	// Interleave keepers and garbage so compaction leaves live objects
	// directly before recycled gaps.
	var prev layout.Ref
	for i := 0; i < 2000; i++ {
		if _, err := h.Alloc(node, 0); err != nil { // garbage
			t.Fatal(err)
		}
		ref, err := h.Alloc(node, 0)
		if err != nil {
			t.Fatal(err)
		}
		h.SetWord(ref, layout.FieldOff(0), uint64(prev))
		prev = ref
	}
	if err := h.SetRoot("chain", prev); err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(h, NoRoots{}); err != nil {
		t.Fatal(err)
	}

	// Collect the post-GC survivor addresses for the flusher lanes.
	var live []layout.Ref
	if err := h.ForEachObject(func(off int, k *klass.Klass, size int) bool {
		if !pheap.IsFiller(k) {
			live = append(live, h.AddrOf(off))
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(live) == 0 {
		t.Fatal("no survivors")
	}

	size := node.SizeOf(0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				// Refill lane: consumes the collector's recycled holes.
				a := h.NewAllocator()
				defer a.Release()
				for i := 0; i < 800; i++ {
					if _, err := a.Alloc(node, 0); err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
				}
				return
			}
			// Flush lane: persists live objects adjacent to the holes.
			for i := 0; i < 800; i++ {
				h.FlushRange(live[(i*7+g)%len(live)], 0, size)
			}
		}(g)
	}
	wg.Wait()
	if err := h.ForEachObject(func(int, *klass.Klass, int) bool { return true }); err != nil {
		t.Fatalf("heap does not parse after concurrent hole refill: %v", err)
	}
}
