package pgc

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
)

// runShards runs fn(worker) once per worker, worker 0 on the calling
// goroutine and the rest on their own. It returns after every worker
// finished; the first panic any worker raised is re-raised on the caller
// once all have joined, so a device crash-injection hook firing on a
// worker goroutine unwinds the collector exactly as it would
// single-threaded. With workers=1 no goroutine is spawned (and no pprof
// label is applied — the serial path stays allocation-free). Pool
// workers run under a gc-worker pprof label so CPU profiles attribute
// mark/fix time to the right worker.
func runShards(workers int, fn func(worker int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var (
		wg sync.WaitGroup
		mu sync.Mutex
		pv any
	)
	catch := func(w int) {
		defer func() {
			if p := recover(); p != nil {
				mu.Lock()
				if pv == nil {
					pv = p
				}
				mu.Unlock()
			}
		}()
		pprof.Do(context.Background(), pprof.Labels("gc-worker", strconv.Itoa(w)), func(context.Context) {
			fn(w)
		})
	}
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			catch(w)
		}(w)
	}
	catch(0)
	wg.Wait()
	if pv != nil {
		panic(pv)
	}
}
