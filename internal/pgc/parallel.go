package pgc

import "sync"

// runShards runs fn(worker) once per worker, worker 0 on the calling
// goroutine and the rest on their own. It returns after every worker
// finished; the first panic any worker raised is re-raised on the caller
// once all have joined, so a device crash-injection hook firing on a
// worker goroutine unwinds the collector exactly as it would
// single-threaded. With workers=1 no goroutine is spawned.
func runShards(workers int, fn func(worker int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var (
		wg sync.WaitGroup
		mu sync.Mutex
		pv any
	)
	catch := func(w int) {
		defer func() {
			if p := recover(); p != nil {
				mu.Lock()
				if pv == nil {
					pv = p
				}
				mu.Unlock()
			}
		}()
		fn(w)
	}
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			catch(w)
		}(w)
	}
	catch(0)
	wg.Wait()
	if pv != nil {
		panic(pv)
	}
}
