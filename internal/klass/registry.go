package klass

import (
	"fmt"
	"sync"

	"espresso/internal/layout"
)

// Registry is the volatile Meta Space: the set of Klass descriptors known
// to one runtime, addressable by name and by metaspace address.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*Klass
	byID   []*Klass
}

// NewRegistry creates an empty registry pre-populated with the filler
// classes and the primitive array classes.
func NewRegistry() *Registry {
	r := &Registry{byName: make(map[string]*Klass)}
	filler := MustInstance(FillerName, nil)
	r.mustDefine(filler)
	fillerArr := &Klass{Name: FillerArrayName, Kind: KindPrimArray, Elem: layout.FTByte, id: -1}
	r.mustDefine(fillerArr)
	for t := layout.FTRef; t <= layout.FTBool; t++ {
		if t == layout.FTRef {
			continue
		}
		r.mustDefine(NewPrimArray(t))
	}
	return r
}

func (r *Registry) mustDefine(k *Klass) {
	if _, err := r.Define(k); err != nil {
		panic(err)
	}
}

// Define registers k and returns the canonical descriptor for its name.
// Defining the same name twice returns the existing descriptor if the
// layouts agree and an error otherwise (the JVM's LinkageError analog).
func (r *Registry) Define(k *Klass) (*Klass, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byName[k.Name]; ok {
		if err := sameLayout(existing, k); err != nil {
			return nil, fmt.Errorf("klass: redefinition of %s: %w", k.Name, err)
		}
		return existing, nil
	}
	if k.Super != nil {
		canon, ok := r.byName[k.Super.Name]
		if !ok {
			return nil, fmt.Errorf("klass: %s: superclass %s not defined", k.Name, k.Super.Name)
		}
		k.Super = canon
	}
	k.id = len(r.byID)
	r.byID = append(r.byID, k)
	r.byName[k.Name] = k
	return k, nil
}

func sameLayout(a, b *Klass) error {
	if a.Kind != b.Kind {
		return fmt.Errorf("kind %s vs %s", a.Kind, b.Kind)
	}
	if a.Kind == KindPrimArray && a.Elem != b.Elem {
		return fmt.Errorf("element type %s vs %s", a.Elem, b.Elem)
	}
	if a.Kind == KindObjArray && a.ElemKlass != b.ElemKlass {
		return fmt.Errorf("element class %s vs %s", a.ElemKlass, b.ElemKlass)
	}
	if len(a.all) != len(b.all) {
		return fmt.Errorf("field count %d vs %d", len(a.all), len(b.all))
	}
	for i := range a.all {
		if a.all[i].Name != b.all[i].Name || a.all[i].Type != b.all[i].Type {
			return fmt.Errorf("field %d: %s %s vs %s %s",
				i, a.all[i].Name, a.all[i].Type, b.all[i].Name, b.all[i].Type)
		}
	}
	return nil
}

// Lookup resolves a class name.
func (r *Registry) Lookup(name string) (*Klass, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	k, ok := r.byName[name]
	return k, ok
}

// MustLookup resolves a class name or panics; for well-known classes.
func (r *Registry) MustLookup(name string) *Klass {
	k, ok := r.Lookup(name)
	if !ok {
		panic("klass: not defined: " + name)
	}
	return k
}

// PrimArray returns the canonical primitive array klass for t.
func (r *Registry) PrimArray(t layout.FieldType) *Klass {
	return r.MustLookup("[" + t.String())
}

// ObjArray returns (defining on demand) the object-array klass for the
// element class name.
func (r *Registry) ObjArray(elem string) *Klass {
	name := "[L" + elem + ";"
	if k, ok := r.Lookup(name); ok {
		return k
	}
	k, err := r.Define(NewObjArray(elem))
	if err != nil {
		panic(err)
	}
	return k
}

// Filler returns the 2-word filler klass.
func (r *Registry) Filler() *Klass { return r.MustLookup(FillerName) }

// FillerArray returns the variable-size filler klass.
func (r *Registry) FillerArray() *Klass { return r.MustLookup(FillerArrayName) }

// MetaAddr is the metaspace virtual address of a defined klass: the klass
// word value of DRAM objects of this class.
func (r *Registry) MetaAddr(k *Klass) layout.Ref {
	if k.id < 0 {
		panic("klass: MetaAddr of undefined klass " + k.Name)
	}
	return layout.MetaspaceBase + layout.Ref(k.id)*layout.MetaKlassStride
}

// ByMetaAddr resolves a metaspace address back to its klass.
func (r *Registry) ByMetaAddr(addr layout.Ref) (*Klass, bool) {
	if addr < layout.MetaspaceBase {
		return nil, false
	}
	off := uint64(addr - layout.MetaspaceBase)
	if off%layout.MetaKlassStride != 0 {
		return nil, false
	}
	id := int(off / layout.MetaKlassStride)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if id >= len(r.byID) {
		return nil, false
	}
	return r.byID[id], true
}

// IsMetaAddr reports whether addr falls in the metaspace range.
func IsMetaAddr(addr layout.Ref) bool { return addr >= layout.MetaspaceBase }

// Names returns all defined class names (unsorted).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	return names
}
