package klass

import "espresso/internal/layout"

// ConstantPool models the per-class symbol table of the JVM class file
// format, reduced to the part Espresso touches: class symbols that resolve
// to a Klass *address*.
//
// The stock JVM keeps one slot per class symbol. When the same logical
// class acquires a second Klass in the persistent heap, resolving the
// symbol for a `pnew` overwrites the slot with the NVM Klass address,
// after which a checkcast against a DRAM instance compares two different
// addresses and throws — the bug of paper Figure 10. The alias-aware type
// check (core.CheckCast) repairs this by comparing logical classes.
type ConstantPool struct {
	slots map[string]layout.Ref
}

// NewConstantPool creates an empty pool.
func NewConstantPool() *ConstantPool {
	return &ConstantPool{slots: make(map[string]layout.Ref)}
}

// Resolve records the resolved Klass address for a class symbol,
// overwriting any previous resolution — exactly the single-slot behaviour
// that makes the strict check fail.
func (cp *ConstantPool) Resolve(symbol string, addr layout.Ref) {
	cp.slots[symbol] = addr
}

// Get returns the currently resolved address of a class symbol.
func (cp *ConstantPool) Get(symbol string) (layout.Ref, bool) {
	addr, ok := cp.slots[symbol]
	return addr, ok
}
