package klass

import (
	"math/rand"
	"testing"
	"testing/quick"

	"espresso/internal/layout"
)

func person(t *testing.T) *Klass {
	t.Helper()
	k, err := NewInstance("Person", nil,
		Field{Name: "id", Type: layout.FTRef, RefKlass: "java/lang/Integer"},
		Field{Name: "name", Type: layout.FTRef, RefKlass: "java/lang/String"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestInstanceLayout(t *testing.T) {
	p := person(t)
	if p.NumFields() != 2 {
		t.Fatalf("NumFields = %d", p.NumFields())
	}
	if got := p.SizeOf(0); got != 32 { // 16 hdr + 16 fields
		t.Fatalf("SizeOf = %d, want 32", got)
	}
	if i, ok := p.FieldIndex("name"); !ok || i != 1 {
		t.Fatalf("FieldIndex(name) = %d %v", i, ok)
	}
	if _, ok := p.FieldIndex("missing"); ok {
		t.Fatal("FieldIndex found missing field")
	}
}

func TestInheritedFieldsFlattenSuperFirst(t *testing.T) {
	p := person(t)
	e, err := NewInstance("Employee", p, Field{Name: "salary", Type: layout.FTLong})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumFields() != 3 {
		t.Fatalf("NumFields = %d", e.NumFields())
	}
	if i, _ := e.FieldIndex("id"); i != 0 {
		t.Fatalf("inherited id at %d", i)
	}
	if i, _ := e.FieldIndex("salary"); i != 2 {
		t.Fatalf("salary at %d", i)
	}
	if !e.IsSubclassOf(p) || p.IsSubclassOf(e) {
		t.Fatal("subclass relation wrong")
	}
}

func TestDuplicateFieldRejected(t *testing.T) {
	p := person(t)
	if _, err := NewInstance("Bad", p, Field{Name: "id", Type: layout.FTInt}); err == nil {
		t.Fatal("expected duplicate-field error")
	}
}

func TestArraySizes(t *testing.T) {
	ba := NewPrimArray(layout.FTByte)
	if got := ba.SizeOf(5); got != 32 { // 24 + 5 → 32
		t.Fatalf("byte[5] = %d", got)
	}
	la := NewPrimArray(layout.FTLong)
	if got := la.SizeOf(4); got != 56+8 { // 24 + 32 = 56 → 64
		t.Fatalf("long[4] = %d", got)
	}
	oa := NewObjArray("Person")
	if oa.Name != "[LPerson;" || oa.ElemType() != layout.FTRef {
		t.Fatalf("obj array = %s %s", oa.Name, oa.ElemType())
	}
}

func TestRegistryDefineIdempotent(t *testing.T) {
	r := NewRegistry()
	p1, err := r.Define(person(t))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Define(person(t))
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("re-define returned a different canonical klass")
	}
	// A conflicting layout must be rejected.
	bad, _ := NewInstance("Person", nil, Field{Name: "other", Type: layout.FTInt})
	if _, err := r.Define(bad); err == nil {
		t.Fatal("expected layout-conflict error")
	}
}

func TestRegistryMetaAddrRoundTrip(t *testing.T) {
	r := NewRegistry()
	p, _ := r.Define(person(t))
	addr := r.MetaAddr(p)
	if !IsMetaAddr(addr) {
		t.Fatalf("MetaAddr %#x not in metaspace", addr)
	}
	got, ok := r.ByMetaAddr(addr)
	if !ok || got != p {
		t.Fatalf("ByMetaAddr = %v %v", got, ok)
	}
	if _, ok := r.ByMetaAddr(addr + 1); ok {
		t.Fatal("misaligned metaspace address resolved")
	}
}

func TestRegistryWellKnown(t *testing.T) {
	r := NewRegistry()
	if r.Filler().SizeOf(0) != 16 {
		t.Fatalf("filler size = %d", r.Filler().SizeOf(0))
	}
	if r.FillerArray().Elem != layout.FTByte {
		t.Fatal("filler array should be byte-typed")
	}
	if r.PrimArray(layout.FTLong).Name != "[long" {
		t.Fatalf("prim array name = %s", r.PrimArray(layout.FTLong).Name)
	}
	a1 := r.ObjArray("Person")
	a2 := r.ObjArray("Person")
	if a1 != a2 {
		t.Fatal("ObjArray not canonicalized")
	}
}

func TestSameLogicalAlias(t *testing.T) {
	a := person(t)
	b := person(t) // different descriptor, same logical class
	if !SameLogical(a, b) {
		t.Fatal("aliases should compare equal")
	}
	c, _ := NewInstance("Other", nil)
	if SameLogical(a, c) {
		t.Fatal("distinct classes compared equal")
	}
	if SameLogical(a, nil) || SameLogical(nil, a) {
		t.Fatal("nil comparison")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	p := person(t)
	e, _ := NewInstance("Employee", p, Field{Name: "salary", Type: layout.FTLong})
	e.Persistent = true
	enc := EncodeRecord(e)
	if len(enc)%8 != 0 {
		t.Fatalf("record size %d not 8-aligned", len(enc))
	}
	ri, size, err := DecodeRecord(enc)
	if err != nil || size != len(enc) {
		t.Fatalf("decode: %v size=%d", err, size)
	}
	if ri.Name != "Employee" || ri.SuperName != "Person" || !ri.Persistent {
		t.Fatalf("decoded %+v", ri)
	}
	if len(ri.OwnFields) != 1 || ri.OwnFields[0].Name != "salary" {
		t.Fatalf("own fields %+v", ri.OwnFields)
	}
	back, err := ri.ToKlass(func(name string) (*Klass, error) { return p, nil })
	if err != nil {
		t.Fatal(err)
	}
	if back.NumFields() != 3 || !back.Persistent {
		t.Fatalf("materialized %+v", back)
	}
}

func TestRecordZeroMagicMeansEnd(t *testing.T) {
	_, size, err := DecodeRecord(make([]byte, 64))
	if err != nil || size != 0 {
		t.Fatalf("zero record: size=%d err=%v", size, err)
	}
}

func TestRecordRejectsCorruption(t *testing.T) {
	enc := EncodeRecord(person(t))
	enc[0] ^= 0xff // break magic
	if _, _, err := DecodeRecord(enc); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

// Property: encode/decode round-trips arbitrary field tables.
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(seed int64, nFields uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nFields) % 12
		fields := make([]Field, n)
		for i := range fields {
			fields[i] = Field{
				Name:     randName(rng, i),
				Type:     layout.FieldType(rng.Intn(int(layout.FTBool) + 1)),
				RefKlass: randName(rng, i+100),
			}
		}
		k, err := NewInstance("Q"+randName(rng, 0), nil, fields...)
		if err != nil {
			return true // duplicate random names: not this property's concern
		}
		ri, size, err := DecodeRecord(EncodeRecord(k))
		if err != nil || size == 0 {
			return false
		}
		if ri.Name != k.Name || len(ri.OwnFields) != n {
			return false
		}
		for i, f := range ri.OwnFields {
			if f != fields[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randName(rng *rand.Rand, i int) string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	n := 1 + rng.Intn(10)
	b := make([]byte, n)
	for j := range b {
		b[j] = letters[rng.Intn(len(letters))]
	}
	return string(b) + string(rune('A'+i%26))
}

func TestConstantPoolOverwrite(t *testing.T) {
	cp := NewConstantPool()
	cp.Resolve("Person", 0x1000)
	cp.Resolve("Person", 0x2000)
	addr, ok := cp.Get("Person")
	if !ok || addr != 0x2000 {
		t.Fatalf("Get = %#x %v", addr, ok)
	}
	if _, ok := cp.Get("Missing"); ok {
		t.Fatal("unresolved symbol returned")
	}
}
