// Package klass implements the class-metadata side of the simulated JVM:
// Klass descriptors with field tables and layouts, the volatile registry
// (the Meta Space), constant-pool slots, and the serialized Klass records
// stored in a persistent heap's Klass segment.
//
// A Klass is what makes raw object bytes interpretable: the klass word in
// every object header points at one. The same logical class may have two
// Klass incarnations — one in DRAM metaspace for `new` objects and one in
// a persistent heap's Klass segment for `pnew` objects. Those incarnations
// are *aliases* of each other; type checks must treat them as equal, which
// is the paper's alias-Klass extension (§3.2).
package klass

import (
	"fmt"

	"espresso/internal/layout"
)

// Kind distinguishes the three object shapes.
type Kind uint8

const (
	KindInstance Kind = iota
	KindObjArray
	KindPrimArray
)

func (k Kind) String() string {
	switch k {
	case KindInstance:
		return "instance"
	case KindObjArray:
		return "objarray"
	case KindPrimArray:
		return "primarray"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Field describes one declared instance field.
type Field struct {
	Name string
	Type layout.FieldType
	// RefKlass names the declared class of an FTRef field. It may be empty
	// ("java/lang/Object"-like), and is consulted by type-based safety.
	RefKlass string
}

// Klass is the runtime class descriptor. Instances are immutable after
// construction; the registry hands out canonical pointers.
type Klass struct {
	Name string
	Kind Kind
	// Elem is the element type of a primitive array klass.
	Elem layout.FieldType
	// ElemKlass names the element class of an object array klass.
	ElemKlass string
	// Super is the superclass, or nil. Arrays and roots have none.
	Super *Klass
	// Persistent marks the class as annotated for type-based safety: its
	// instances may live in PJH and its ref fields must themselves be
	// Persistent classes.
	Persistent bool

	own      []Field // declared fields, in declaration order
	all      []Field // flattened super-first field table
	fieldIdx map[string]int
	id       int // registry slot; -1 until defined
}

// NewInstance builds an instance Klass with the given superclass and
// declared fields. Field names must be unique within the flattened table.
func NewInstance(name string, super *Klass, fields ...Field) (*Klass, error) {
	if name == "" {
		return nil, fmt.Errorf("klass: empty class name")
	}
	k := &Klass{Name: name, Kind: KindInstance, Super: super, own: fields, id: -1}
	if super != nil {
		if super.Kind != KindInstance {
			return nil, fmt.Errorf("klass: %s: superclass %s is not an instance class", name, super.Name)
		}
		k.all = append(k.all, super.all...)
	}
	k.all = append(k.all, fields...)
	k.fieldIdx = make(map[string]int, len(k.all))
	for i, f := range k.all {
		if !f.Type.Valid() {
			return nil, fmt.Errorf("klass: %s.%s: invalid field type", name, f.Name)
		}
		if _, dup := k.fieldIdx[f.Name]; dup {
			return nil, fmt.Errorf("klass: %s: duplicate field %q", name, f.Name)
		}
		k.fieldIdx[f.Name] = i
	}
	return k, nil
}

// MustInstance is NewInstance for static class tables; it panics on error.
func MustInstance(name string, super *Klass, fields ...Field) *Klass {
	k, err := NewInstance(name, super, fields...)
	if err != nil {
		panic(err)
	}
	return k
}

// NewObjArray builds the object-array klass for elements named elem
// (JVM-style name "[L<elem>;").
func NewObjArray(elem string) *Klass {
	return &Klass{Name: "[L" + elem + ";", Kind: KindObjArray, ElemKlass: elem, id: -1}
}

// NewPrimArray builds the primitive-array klass for element type t.
func NewPrimArray(t layout.FieldType) *Klass {
	return &Klass{Name: "[" + t.String(), Kind: KindPrimArray, Elem: t, id: -1}
}

// Well-known filler classes. The persistent allocator plugs them into
// allocation gaps so the heap below `top` always parses (a 2-word filler
// covers 16-byte gaps, a byte-array filler covers larger ones). Every
// klass segment contains both from creation.
const (
	FillerName      = "espresso/Filler"
	FillerArrayName = "espresso/FillerArray"
)

// NumFields reports the flattened field count (inherited first).
func (k *Klass) NumFields() int { return len(k.all) }

// FieldAt returns the i-th flattened field.
func (k *Klass) FieldAt(i int) Field { return k.all[i] }

// Fields returns the flattened field table. Callers must not mutate it.
func (k *Klass) Fields() []Field { return k.all }

// OwnFields returns the declared (non-inherited) fields.
func (k *Klass) OwnFields() []Field { return k.own }

// FieldIndex resolves a field name to its flattened slot.
func (k *Klass) FieldIndex(name string) (int, bool) {
	i, ok := k.fieldIdx[name]
	return i, ok
}

// ResolvedField is a field descriptor resolved once from the name map:
// the registry slot of the declaring klass, the field's flattened index
// and byte offset, and its type. It is the klass-level half of the
// runtime's FieldRef fast path — the analog of a resolved constant-pool
// field entry, which lets compiled bytecode address a field by offset
// instead of by name on every access.
type ResolvedField struct {
	KlassID int
	Index   int
	Off     int // byte offset within the object
	Type    layout.FieldType
}

// Resolve looks a field name up once and returns its resolved descriptor.
// Accesses through the result skip the name map entirely.
func (k *Klass) Resolve(name string) (ResolvedField, bool) {
	i, ok := k.fieldIdx[name]
	if !ok {
		return ResolvedField{}, false
	}
	return ResolvedField{KlassID: k.id, Index: i, Off: layout.FieldOff(i), Type: k.all[i].Type}, true
}

// IsArray reports whether k describes an array shape.
func (k *Klass) IsArray() bool { return k.Kind != KindInstance }

// ElemType reports the packed element type of an array klass (FTRef for
// object arrays).
func (k *Klass) ElemType() layout.FieldType {
	if k.Kind == KindObjArray {
		return layout.FTRef
	}
	return k.Elem
}

// SizeOf computes the aligned object size in bytes. arrayLen is ignored
// for instance klasses.
func (k *Klass) SizeOf(arrayLen int) int {
	if k.Kind == KindInstance {
		return layout.InstanceBytes(len(k.all))
	}
	return layout.ArrayBytes(k.ElemType(), arrayLen)
}

// ID reports the registry slot, or -1 if the klass is not defined yet.
func (k *Klass) ID() int { return k.id }

// SameLogical reports whether two Klass incarnations denote the same
// logical class — the alias-Klass equality of the paper. DRAM and NVM
// incarnations of a class compare equal here even though their addresses
// (and descriptor pointers) differ.
func SameLogical(a, b *Klass) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	return a.Name == b.Name && a.Kind == b.Kind
}

// IsSubclassOf reports whether k is other or a subclass of it, comparing
// logically so aliases on either side still match.
func (k *Klass) IsSubclassOf(other *Klass) bool {
	for c := k; c != nil; c = c.Super {
		if SameLogical(c, other) {
			return true
		}
	}
	return false
}

func (k *Klass) String() string { return k.Name }
