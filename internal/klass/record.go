package klass

import (
	"encoding/binary"
	"fmt"

	"espresso/internal/layout"
)

// A Klass record is the serialized, NVM-resident incarnation of a Klass,
// stored in a persistent heap's Klass segment. Records are self-describing
// so that loadHeap can *re-initialize them in place*: the record keeps its
// address across reboots (class pointers in objects stay valid) and is
// re-bound to a runtime Klass descriptor by name, defining the descriptor
// from the record if the application has not done so yet.
//
// Record wire format (little-endian, 8-byte aligned total size):
//
//	u32 magic  u32 size
//	u8 kind    u8 elem   u8 flags  u8 pad
//	u16 nameLen  u16 superLen
//	u16 elemKlassLen  u16 fieldCount
//	name bytes, super bytes, elemKlass bytes
//	fieldCount × { u8 type, u8 pad, u16 nameLen, u16 refKlassLen,
//	               name bytes, refKlass bytes }
//	zero padding to 8 bytes
const recordMagic = 0x4b4c5331 // "KLS1"

const flagPersistent = 1

// RecordInfo is the decoded form of a Klass record.
type RecordInfo struct {
	Name       string
	Kind       Kind
	Elem       layout.FieldType
	ElemKlass  string
	SuperName  string
	OwnFields  []Field
	Persistent bool
}

// EncodeRecord serializes k as a Klass record.
func EncodeRecord(k *Klass) []byte {
	var super string
	if k.Super != nil {
		super = k.Super.Name
	}
	n := 20 + len(k.Name) + len(super) + len(k.ElemKlass)
	for _, f := range k.own {
		n += 6 + len(f.Name) + len(f.RefKlass)
	}
	n = (n + 7) &^ 7
	buf := make([]byte, n)
	binary.LittleEndian.PutUint32(buf[0:], recordMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(n))
	buf[8] = byte(k.Kind)
	buf[9] = byte(k.Elem)
	if k.Persistent {
		buf[10] = flagPersistent
	}
	binary.LittleEndian.PutUint16(buf[12:], uint16(len(k.Name)))
	binary.LittleEndian.PutUint16(buf[14:], uint16(len(super)))
	binary.LittleEndian.PutUint16(buf[16:], uint16(len(k.ElemKlass)))
	binary.LittleEndian.PutUint16(buf[18:], uint16(len(k.own)))
	p := 20
	p += copy(buf[p:], k.Name)
	p += copy(buf[p:], super)
	p += copy(buf[p:], k.ElemKlass)
	for _, f := range k.own {
		buf[p] = byte(f.Type)
		binary.LittleEndian.PutUint16(buf[p+2:], uint16(len(f.Name)))
		binary.LittleEndian.PutUint16(buf[p+4:], uint16(len(f.RefKlass)))
		p += 6
		p += copy(buf[p:], f.Name)
		p += copy(buf[p:], f.RefKlass)
	}
	return buf
}

// DecodeRecord parses the record at the start of b, returning its info and
// total encoded size. A zero magic means "no record here" (end of the
// segment's used area) and is reported as size 0 with no error.
func DecodeRecord(b []byte) (RecordInfo, int, error) {
	var ri RecordInfo
	if len(b) < 20 {
		return ri, 0, fmt.Errorf("klass: record truncated (%d bytes)", len(b))
	}
	magic := binary.LittleEndian.Uint32(b[0:])
	if magic == 0 {
		return ri, 0, nil
	}
	if magic != recordMagic {
		return ri, 0, fmt.Errorf("klass: bad record magic %#x", magic)
	}
	size := int(binary.LittleEndian.Uint32(b[4:]))
	if size < 20 || size > len(b) || size%8 != 0 {
		return ri, 0, fmt.Errorf("klass: bad record size %d", size)
	}
	ri.Kind = Kind(b[8])
	ri.Elem = layout.FieldType(b[9])
	ri.Persistent = b[10]&flagPersistent != 0
	nameLen := int(binary.LittleEndian.Uint16(b[12:]))
	superLen := int(binary.LittleEndian.Uint16(b[14:]))
	elemLen := int(binary.LittleEndian.Uint16(b[16:]))
	fieldCount := int(binary.LittleEndian.Uint16(b[18:]))
	p := 20
	take := func(n int) (string, error) {
		if p+n > size {
			return "", fmt.Errorf("klass: record overruns its size")
		}
		s := string(b[p : p+n])
		p += n
		return s, nil
	}
	var err error
	if ri.Name, err = take(nameLen); err != nil {
		return ri, 0, err
	}
	if ri.SuperName, err = take(superLen); err != nil {
		return ri, 0, err
	}
	if ri.ElemKlass, err = take(elemLen); err != nil {
		return ri, 0, err
	}
	ri.OwnFields = make([]Field, 0, fieldCount)
	for i := 0; i < fieldCount; i++ {
		if p+6 > size {
			return ri, 0, fmt.Errorf("klass: field %d overruns record", i)
		}
		var f Field
		f.Type = layout.FieldType(b[p])
		fn := int(binary.LittleEndian.Uint16(b[p+2:]))
		rn := int(binary.LittleEndian.Uint16(b[p+4:]))
		p += 6
		if f.Name, err = take(fn); err != nil {
			return ri, 0, err
		}
		if f.RefKlass, err = take(rn); err != nil {
			return ri, 0, err
		}
		ri.OwnFields = append(ri.OwnFields, f)
	}
	return ri, size, nil
}

// ToKlass materializes a runtime Klass from a decoded record. resolveSuper
// maps a superclass name to its (already materialized) descriptor.
func (ri RecordInfo) ToKlass(resolveSuper func(name string) (*Klass, error)) (*Klass, error) {
	switch ri.Kind {
	case KindPrimArray:
		k := NewPrimArray(ri.Elem)
		k.Name = ri.Name // filler array keeps its special name
		k.Persistent = ri.Persistent
		return k, nil
	case KindObjArray:
		k := NewObjArray(ri.ElemKlass)
		k.Persistent = ri.Persistent
		return k, nil
	case KindInstance:
		var super *Klass
		if ri.SuperName != "" {
			var err error
			if super, err = resolveSuper(ri.SuperName); err != nil {
				return nil, err
			}
		}
		k, err := NewInstance(ri.Name, super, ri.OwnFields...)
		if err != nil {
			return nil, err
		}
		k.Persistent = ri.Persistent
		return k, nil
	default:
		return nil, fmt.Errorf("klass: record %q has unknown kind %d", ri.Name, ri.Kind)
	}
}
