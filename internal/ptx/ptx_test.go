package ptx

import (
	"errors"
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
)

func setup(t *testing.T) (*pheap.Heap, *Manager, layout.Ref) {
	t.Helper()
	reg := klass.NewRegistry()
	h, err := pheap.Create(reg, pheap.Config{DataSize: 1 << 20, Mode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(h)
	if err != nil {
		t.Fatal(err)
	}
	box, _ := reg.Define(klass.MustInstance("Box", nil,
		klass.Field{Name: "a", Type: layout.FTLong},
		klass.Field{Name: "b", Type: layout.FTLong}))
	ref, err := h.Alloc(box, 0)
	if err != nil {
		t.Fatal(err)
	}
	return h, m, ref
}

func TestCommitPersists(t *testing.T) {
	h, m, ref := setup(t)
	err := m.Run(func(tx *Tx) error {
		if err := tx.WriteWord(ref, layout.FieldOff(0), 11); err != nil {
			return err
		}
		return tx.WriteWord(ref, layout.FieldOff(1), 22)
	})
	if err != nil {
		t.Fatal(err)
	}
	img := h.Device().CrashImage(nvm.CrashFlushedOnly, 0)
	re, err := pheap.Load(nvm.FromImage(img, nvm.Config{}), klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if re.GetWord(ref, layout.FieldOff(0)) != 11 || re.GetWord(ref, layout.FieldOff(1)) != 22 {
		t.Fatal("committed values lost after crash")
	}
}

func TestAbortRollsBack(t *testing.T) {
	_, m, ref := setup(t)
	m.Run(func(tx *Tx) error { return tx.WriteWord(ref, layout.FieldOff(0), 1) })
	err := m.Run(func(tx *Tx) error {
		tx.WriteWord(ref, layout.FieldOff(0), 999)
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := m.h.GetWord(ref, layout.FieldOff(0)); got != 1 {
		t.Fatalf("abort left %d, want 1", got)
	}
}

func TestCrashMidTransactionRollsBackOnRecovery(t *testing.T) {
	h, m, ref := setup(t)
	m.Run(func(tx *Tx) error { return tx.WriteWord(ref, layout.FieldOff(0), 5) })

	// Open a transaction, write, and crash before commit at several flush
	// boundaries.
	for crashAt := uint64(1); crashAt <= 8; crashAt++ {
		base := h.Device().Stats().Flushes
		h.Device().SetFlushHook(func(n uint64) {
			if n == base+crashAt {
				panic("crash")
			}
		})
		crashed := false
		func() {
			defer func() {
				if recover() != nil {
					crashed = true
				}
			}()
			tx := m.Begin()
			tx.WriteWord(ref, layout.FieldOff(0), 777)
			tx.WriteWord(ref, layout.FieldOff(1), 888)
			tx.Commit()
		}()
		h.Device().SetFlushHook(nil)
		img := h.Device().CrashImage(nvm.CrashRandomEviction, int64(crashAt))
		re, err := pheap.Load(nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked}), klass.NewRegistry())
		if err != nil {
			t.Fatalf("crashAt=%d: %v", crashAt, err)
		}
		m2, err := NewManager(re)
		if err != nil {
			t.Fatalf("crashAt=%d: recover: %v", crashAt, err)
		}
		a := re.GetWord(ref, layout.FieldOff(0))
		b := re.GetWord(ref, layout.FieldOff(1))
		committed := a == 777 && b == 888
		rolledBack := a == 5 && b == 0
		if !committed && !rolledBack {
			t.Fatalf("crashAt=%d: torn state a=%d b=%d", crashAt, a, b)
		}
		_ = m2
		// Reset for the next iteration: if the crash interrupted the live
		// transaction, roll it back and release its lock.
		if crashed {
			if err := m.recover(); err != nil {
				t.Fatal(err)
			}
			m.mu.Unlock()
		}
		m.Run(func(tx *Tx) error { return tx.WriteWord(ref, layout.FieldOff(0), 5) })
		m.Run(func(tx *Tx) error { return tx.WriteWord(ref, layout.FieldOff(1), 0) })
	}
}

func TestLogFullRejected(t *testing.T) {
	_, m, ref := setup(t)
	tx := m.Begin()
	defer tx.Abort()
	var err error
	for i := 0; i <= DefaultLogEntries; i++ {
		if err = tx.WriteWord(ref, layout.FieldOff(0), uint64(i)); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("expected log-full error")
	}
}

func TestManagerReattachesToExistingLog(t *testing.T) {
	h, _, _ := setup(t)
	// A second manager on the same heap must find the same log root.
	m2, err := NewManager(h)
	if err != nil {
		t.Fatal(err)
	}
	if ref, ok := h.GetRoot(LogRootName); !ok || ref != m2.log {
		t.Fatal("manager did not reattach to the existing log")
	}
}
