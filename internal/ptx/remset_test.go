package ptx_test

import (
	"sort"
	"testing"

	"espresso/internal/core"
	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/ptx"
)

// remsetWorld builds a runtime-attached heap (so the remset sink is
// installed), a holder object with two reference fields, and a ptx
// manager on the same heap.
func remsetWorld(t *testing.T) (*core.Runtime, *ptx.Manager, layout.Ref, [2]int) {
	t.Helper()
	rt, err := core.NewRuntime(core.Config{PJHDataSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	h, err := rt.CreateHeap("txremset", 0)
	if err != nil {
		t.Fatal(err)
	}
	holder := klass.MustInstance("tx/Holder", nil,
		klass.Field{Name: "a", Type: layout.FTRef},
		klass.Field{Name: "b", Type: layout.FTRef},
	)
	obj, err := rt.PNew(holder, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ptx.NewManager(h)
	if err != nil {
		t.Fatal(err)
	}
	aOff, _ := holder.FieldIndex("a")
	bOff, _ := holder.FieldIndex("b")
	return rt, m, obj, [2]int{layout.FieldOff(aOff), layout.FieldOff(bOff)}
}

func sortedSlots(rt *core.Runtime) []layout.Ref {
	slots := rt.NVMToVolSlots()
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	return slots
}

// TestCommitPublishesRemsetDeltas: NVM→volatile reference stores inside
// a transaction reach the shared remembered set at the commit point —
// and, because the manager's delta buffer is registered on the heap, a
// safepoint drain mid-transaction already sees the edge (it is on the
// device, so a GC running before commit must treat it as a root).
func TestCommitPublishesRemsetDeltas(t *testing.T) {
	rt, m, obj, offs := remsetWorld(t)
	vol, err := rt.NewString("volatile", false)
	if err != nil {
		t.Fatal(err)
	}

	tx := m.Begin()
	if err := tx.WriteRefWord(obj, offs[0], vol); err != nil {
		t.Fatal(err)
	}
	// Mid-transaction, a publication point (here the snapshot's drain —
	// the same drain a GC safepoint runs) must already observe the edge:
	// the volatile ref is on the device and a collector cannot miss it.
	if n := len(rt.NVMToVolSlots()); n != 1 {
		t.Fatalf("remset has %d slots mid-transaction, want 1 (the in-flight store is a live edge)", n)
	}
	tx.Commit()

	want := []layout.Ref{obj + layout.Ref(offs[0])}
	if got := sortedSlots(rt); len(got) != 1 || got[0] != want[0] {
		t.Fatalf("remset after commit = %v, want %v", got, want)
	}

	// Overwriting with a persistent ref publishes the removal at the next
	// commit.
	pers, err := rt.NewString("persistent", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(func(tx *ptx.Tx) error {
		return tx.WriteRefWord(obj, offs[0], pers)
	}); err != nil {
		t.Fatal(err)
	}
	if got := rt.NVMToVolSlots(); len(got) != 0 {
		t.Fatalf("remset after overwrite commit = %v, want empty", got)
	}
}

// TestAbortDiscardsRemsetDeltas: an aborted transaction's NVM→volatile
// stores leave the remembered set exactly as it was before the
// transaction — adds are discarded, and removals of pre-existing entries
// are discarded too (the rollback restores the volatile value).
func TestAbortDiscardsRemsetDeltas(t *testing.T) {
	rt, m, obj, offs := remsetWorld(t)
	volA, err := rt.NewString("volA", false)
	if err != nil {
		t.Fatal(err)
	}
	volB, err := rt.NewString("volB", false)
	if err != nil {
		t.Fatal(err)
	}
	pers, err := rt.NewString("persistent", true)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-state: slot a holds a volatile ref (committed), slot b is null.
	if err := m.Run(func(tx *ptx.Tx) error {
		return tx.WriteRefWord(obj, offs[0], volA)
	}); err != nil {
		t.Fatal(err)
	}
	before := sortedSlots(rt)
	if len(before) != 1 {
		t.Fatalf("pre-state remset = %v, want 1 slot", before)
	}

	// The doomed transaction flips both slots: a volatile→persistent
	// (a remove delta), b null→volatile (an add delta). A mid-transaction
	// publication (the safepoint-drain case: a GC while the tx is open)
	// sees the in-flight state — and Abort must still restore the
	// pre-transaction set afterwards, even though its own deltas were
	// already consumed.
	tx := m.Begin()
	if err := tx.WriteRefWord(obj, offs[0], pers); err != nil {
		t.Fatal(err)
	}
	if err := tx.WriteRefWord(obj, offs[1], volB); err != nil {
		t.Fatal(err)
	}
	if mid := sortedSlots(rt); len(mid) != 1 || mid[0] != obj+layout.Ref(offs[1]) {
		t.Fatalf("mid-transaction remset = %v, want exactly the in-flight volatile slot b", mid)
	}
	tx.Abort()

	after := sortedSlots(rt)
	if len(after) != len(before) || after[0] != before[0] {
		t.Fatalf("remset after abort = %v, want pre-transaction %v", after, before)
	}
	// And the rolled-back slot values agree with the membership.
	h := rt.Heaps()[0]
	if got := layout.Ref(h.GetWord(obj, offs[0])); got != volA {
		t.Fatalf("slot a rolled back to %#x, want volA %#x", uint64(got), uint64(volA))
	}
	if got := layout.Ref(h.GetWord(obj, offs[1])); got != layout.NullRef {
		t.Fatalf("slot b rolled back to %#x, want null", uint64(got))
	}
}
