// Package ptx provides undo-log ACID transactions over persistent-heap
// objects — the "simple undo log" the paper adds to its PJH collections
// for a fair comparison with PCJ's always-transactional operations (§6.2),
// and the building block PJO's providers can use for their own protocols.
//
// The log lives in the heap itself (a persistent long array reachable from
// a reserved root), so an interrupted transaction is rolled back by
// recovery on the next load:
//
//	log layout: [0]=committedFlag (0 active, 1 idle), [1]=entryCount,
//	            then entryCount × (slotAddress, oldValue)
//
// Write protocol per mutated word: append (addr, old) to the log, flush
// the entry, fence, bump and flush the count, then perform the store.
// Commit flushes the mutated words, fences, and resets the count.
//
// Primitive stores (WriteWord) write heap words directly; reference
// stores go through WriteRefWord, which runs the SATB pre-write barrier
// and a single atomic machine store, so ptx transactions — and the
// legacy pcollections built on them — stay correct while
// pgc.CollectConcurrent marks. Aborts and rollbacks re-run the barrier
// for the reference entries they restore.
//
// Reference stores also feed the runtime's NVM→DRAM remembered set when
// the heap is attached to one (pheap.RemsetSink): each WriteRefWord
// records a delta in the manager's registered remset-delta buffer —
// registered so a GC safepoint mid-transaction still drains it and sees
// every edge already on the device — and Commit, the transaction's
// durable publication point, publishes whatever the safepoints have not
// already taken. Abort replays corrective records for the rolled-back
// reference slots (exactly as it replays SATB barrier records) and
// publishes those, so the transaction's own deltas are never trusted
// after a rollback and the shared set returns to its pre-transaction
// contents; publication re-derives membership from the restored slot
// values, which is what makes the replay exact.
package ptx

import (
	"fmt"
	"sync"

	"espresso/internal/layout"
	"espresso/internal/pheap"
)

// LogRootName is the reserved root under which each heap's transaction
// log array is registered.
const LogRootName = "espresso/ptx-log"

// DefaultLogEntries bounds the number of word-writes per transaction.
const DefaultLogEntries = 4096

// Manager owns the transaction log of one heap. Transactions are globally
// serialized (PCJ behaves the same way: one fat lock).
type Manager struct {
	mu  sync.Mutex
	h   *pheap.Heap
	log layout.Ref // persistent long array
	cap int

	// rdelta is the manager's registered remset-delta buffer: WriteRefWord
	// records into it, so a safepoint drain mid-transaction observes the
	// transaction's NVM→DRAM edges (they are already on the device), and
	// Commit/Abort publish it at their ends.
	rdelta *pheap.RemsetDeltaBuffer
}

// NewManager creates (or re-attaches to) the heap's transaction log and
// rolls back any transaction that was active when the heap last persisted.
func NewManager(h *pheap.Heap) (*Manager, error) {
	m := &Manager{h: h, cap: DefaultLogEntries, rdelta: h.NewRemsetDeltaBuffer()}
	if ref, ok := h.GetRoot(LogRootName); ok {
		m.log = ref
		if err := m.recover(); err != nil {
			return nil, err
		}
		return m, nil
	}
	arr, err := h.Alloc(h.Registry().PrimArray(layout.FTLong), 2+2*m.cap)
	if err != nil {
		return nil, fmt.Errorf("ptx: allocating log: %w", err)
	}
	m.log = arr
	m.logStore(0, 1) // idle
	m.logStore(1, 0)
	h.FlushRange(arr, 0, 2*layout.WordSize+layout.ArrayHdrBytes)
	if err := h.SetRoot(LogRootName, arr); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Manager) logStore(i int, v uint64) {
	m.h.SetWord(m.log, layout.ElemOff(layout.FTLong, i), v)
}

func (m *Manager) logLoad(i int) uint64 {
	return m.h.GetWord(m.log, layout.ElemOff(layout.FTLong, i))
}

func (m *Manager) flushLogWords(i, n int) {
	m.h.FlushRange(m.log, layout.ElemOff(layout.FTLong, i), n*layout.WordSize)
}

// recover rolls back a transaction that did not commit before the crash.
func (m *Manager) recover() error {
	if m.logLoad(0) == 1 {
		return nil // idle: nothing to do
	}
	count := int(m.logLoad(1))
	for i := count - 1; i >= 0; i-- {
		addr := layout.Ref(m.logLoad(2 + 2*i))
		old := m.logLoad(2 + 2*i + 1)
		off := m.h.OffOf(addr)
		m.h.Device().WriteU64(off, old)
		m.h.Device().Flush(off, 8)
	}
	m.h.Device().Fence()
	m.logStore(1, 0)
	m.logStore(0, 1)
	m.flushLogWords(0, 2)
	return nil
}

// Tx is one open transaction.
type Tx struct {
	m       *Manager
	touched []layout.Ref // slot addresses to flush on commit
	isRef   []bool       // parallel to the log: entry restores a reference slot
	objs    []layout.Ref // parallel: owning object (the barrier's card target)
	closed  bool
}

// Begin opens a transaction, taking the global lock.
func (m *Manager) Begin() *Tx {
	m.mu.Lock()
	m.logStore(1, 0)
	m.logStore(0, 0) // active
	m.flushLogWords(0, 2)
	return &Tx{m: m}
}

// WriteWord performs a logged store of the 8-byte slot at byte offset
// boff of the persistent object at obj. For reference slots use
// WriteRefWord, which adds the concurrent collector's write barrier.
func (tx *Tx) WriteWord(obj layout.Ref, boff int, val uint64) error {
	return tx.write(obj, boff, val, false)
}

// WriteRefWord is WriteWord for reference slots: the store runs through
// the SATB pre-write barrier (the overwritten referent is recorded in
// the heap's shared buffer and the object's card dirtied) and lands with
// a single atomic machine store, so the concurrent marker never loses a
// snapshot-reachable object to a transactional overwrite and never reads
// a torn slot.
func (tx *Tx) WriteRefWord(obj layout.Ref, boff int, val layout.Ref) error {
	return tx.write(obj, boff, uint64(val), true)
}

func (tx *Tx) write(obj layout.Ref, boff int, val uint64, isRef bool) error {
	m := tx.m
	count := int(m.logLoad(1))
	if count >= m.cap {
		return fmt.Errorf("ptx: transaction log full (%d entries)", m.cap)
	}
	slot := obj + layout.Ref(boff)
	old := m.h.GetWord(obj, boff)
	m.logStore(2+2*count, uint64(slot))
	m.logStore(2+2*count+1, old)
	m.logStore(1, uint64(count+1))
	// The count word and the entry often share a cache line; one flush
	// covering both halves the log's persist cost (the kind of Java-side
	// transaction-library optimization §2.2 anticipates). Ordering within
	// a line is preserved by the line-granular persistence model.
	m.flushLogWordSpan(1, 2+2*count+1)
	if isRef {
		if m.h.ConcurrentMarkActive() {
			m.h.SATBRecordBarrier(obj, old, nil)
		}
		// Remembered-set delta into the manager's registered buffer: a GC
		// safepoint mid-transaction drains it, Commit publishes the rest.
		// The sink classifies the new value (the heap itself cannot tell
		// volatile from persistent); a heap outside any runtime has no
		// sink and no remembered set. Store and delta land drain-atomically
		// (RecordStore), as in core.storeRef.
		if sink := m.h.RemsetSink(); sink != nil {
			add := val != uint64(layout.NullRef) && sink.RefIsVolatile(layout.Ref(val))
			m.rdelta.RecordStore(slot, add, func() {
				m.h.SetWordAtomic(obj, boff, val)
			})
		} else {
			m.h.SetWordAtomic(obj, boff, val)
		}
	} else {
		m.h.SetWord(obj, boff, val)
	}
	tx.touched = append(tx.touched, slot)
	tx.isRef = append(tx.isRef, isRef)
	tx.objs = append(tx.objs, obj)
	return nil
}

// flushLogWordSpan persists log words [lo, hi] with one flush call.
func (m *Manager) flushLogWordSpan(lo, hi int) {
	m.h.FlushRange(m.log, layout.ElemOff(layout.FTLong, lo), (hi-lo+1)*layout.WordSize)
}

// Commit flushes the transaction's stores, retires the log, and
// publishes the transaction's remembered-set deltas — the durable commit
// is the write-combining barrier's transaction-level publication point.
// (A GC safepoint mid-transaction may already have drained some; the
// re-derivation at publication makes the double coverage harmless.)
func (tx *Tx) Commit() {
	m := tx.m
	for _, slot := range tx.touched {
		off := m.h.OffOf(slot)
		m.h.Device().Flush(off, 8)
	}
	m.h.Device().Fence()
	m.logStore(1, 0)
	m.logStore(0, 1)
	m.flushLogWords(0, 2)
	m.rdelta.Publish()
	tx.closed = true
	m.mu.Unlock()
}

// Abort rolls the transaction back. Restored reference slots re-run the
// SATB barrier (the value being rolled back over is the one the marker
// could otherwise lose) and land atomically, like the forward stores.
// The transaction's own remembered-set deltas are never published as
// truth: every restored reference slot gets a corrective record — the
// same replay discipline as the SATB barrier records — and the final
// publication re-derives membership from the restored values, so the
// shared set leaves Abort exactly as it was before the transaction.
func (tx *Tx) Abort() {
	m := tx.m
	sink := m.h.RemsetSink()
	count := int(m.logLoad(1))
	for i := count - 1; i >= 0; i-- {
		addr := layout.Ref(m.logLoad(2 + 2*i))
		old := m.logLoad(2 + 2*i + 1)
		off := m.h.OffOf(addr)
		if i < len(tx.isRef) && tx.isRef[i] {
			if m.h.ConcurrentMarkActive() {
				m.h.SATBRecordBarrier(tx.objs[i], m.h.Device().ReadU64Atomic(off), nil)
			}
			if sink != nil {
				add := layout.Ref(old) != layout.NullRef && sink.RefIsVolatile(layout.Ref(old))
				m.rdelta.RecordStore(addr, add, func() {
					m.h.Device().WriteU64Atomic(off, old)
				})
			} else {
				m.h.Device().WriteU64Atomic(off, old)
			}
		} else {
			m.h.Device().WriteU64(off, old)
		}
		m.h.Device().Flush(off, 8)
	}
	m.h.Device().Fence()
	m.logStore(1, 0)
	m.logStore(0, 1)
	m.flushLogWords(0, 2)
	m.rdelta.Publish()
	tx.closed = true
	m.mu.Unlock()
}

// Run executes fn inside a transaction, committing on nil and aborting on
// error.
func (m *Manager) Run(fn func(tx *Tx) error) error {
	tx := m.Begin()
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	tx.Commit()
	return nil
}
