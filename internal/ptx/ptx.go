// Package ptx provides undo-log ACID transactions over persistent-heap
// objects — the "simple undo log" the paper adds to its PJH collections
// for a fair comparison with PCJ's always-transactional operations (§6.2),
// and the building block PJO's providers can use for their own protocols.
//
// The log lives in the heap itself (a persistent long array reachable from
// a reserved root), so an interrupted transaction is rolled back by
// recovery on the next load:
//
//	log layout: [0]=committedFlag (0 active, 1 idle), [1]=entryCount,
//	            then entryCount × (slotAddress, oldValue)
//
// Write protocol per mutated word: append (addr, old) to the log, flush
// the entry, fence, bump and flush the count, then perform the store.
// Commit flushes the mutated words, fences, and resets the count.
//
// ptx writes heap words directly (plain stores, no core write barrier),
// so its transactions are compatible with the stop-the-world collector
// only: a heap being mutated through ptx must not run
// pgc.CollectConcurrent, whose SATB marker requires every reference
// overwrite to pass core's pre-write barrier. Routing ptx stores through
// a mutator-aware barrier is the ROADMAP's write-combining item.
package ptx

import (
	"fmt"
	"sync"

	"espresso/internal/layout"
	"espresso/internal/pheap"
)

// LogRootName is the reserved root under which each heap's transaction
// log array is registered.
const LogRootName = "espresso/ptx-log"

// DefaultLogEntries bounds the number of word-writes per transaction.
const DefaultLogEntries = 4096

// Manager owns the transaction log of one heap. Transactions are globally
// serialized (PCJ behaves the same way: one fat lock).
type Manager struct {
	mu  sync.Mutex
	h   *pheap.Heap
	log layout.Ref // persistent long array
	cap int
}

// NewManager creates (or re-attaches to) the heap's transaction log and
// rolls back any transaction that was active when the heap last persisted.
func NewManager(h *pheap.Heap) (*Manager, error) {
	m := &Manager{h: h, cap: DefaultLogEntries}
	if ref, ok := h.GetRoot(LogRootName); ok {
		m.log = ref
		if err := m.recover(); err != nil {
			return nil, err
		}
		return m, nil
	}
	arr, err := h.Alloc(h.Registry().PrimArray(layout.FTLong), 2+2*m.cap)
	if err != nil {
		return nil, fmt.Errorf("ptx: allocating log: %w", err)
	}
	m.log = arr
	m.logStore(0, 1) // idle
	m.logStore(1, 0)
	h.FlushRange(arr, 0, 2*layout.WordSize+layout.ArrayHdrBytes)
	if err := h.SetRoot(LogRootName, arr); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Manager) logStore(i int, v uint64) {
	m.h.SetWord(m.log, layout.ElemOff(layout.FTLong, i), v)
}

func (m *Manager) logLoad(i int) uint64 {
	return m.h.GetWord(m.log, layout.ElemOff(layout.FTLong, i))
}

func (m *Manager) flushLogWords(i, n int) {
	m.h.FlushRange(m.log, layout.ElemOff(layout.FTLong, i), n*layout.WordSize)
}

// recover rolls back a transaction that did not commit before the crash.
func (m *Manager) recover() error {
	if m.logLoad(0) == 1 {
		return nil // idle: nothing to do
	}
	count := int(m.logLoad(1))
	for i := count - 1; i >= 0; i-- {
		addr := layout.Ref(m.logLoad(2 + 2*i))
		old := m.logLoad(2 + 2*i + 1)
		off := m.h.OffOf(addr)
		m.h.Device().WriteU64(off, old)
		m.h.Device().Flush(off, 8)
	}
	m.h.Device().Fence()
	m.logStore(1, 0)
	m.logStore(0, 1)
	m.flushLogWords(0, 2)
	return nil
}

// Tx is one open transaction.
type Tx struct {
	m       *Manager
	touched []layout.Ref // slot addresses to flush on commit
	closed  bool
}

// Begin opens a transaction, taking the global lock.
func (m *Manager) Begin() *Tx {
	m.mu.Lock()
	m.logStore(1, 0)
	m.logStore(0, 0) // active
	m.flushLogWords(0, 2)
	return &Tx{m: m}
}

// WriteWord performs a logged store of the 8-byte slot at byte offset
// boff of the persistent object at obj.
func (tx *Tx) WriteWord(obj layout.Ref, boff int, val uint64) error {
	m := tx.m
	count := int(m.logLoad(1))
	if count >= m.cap {
		return fmt.Errorf("ptx: transaction log full (%d entries)", m.cap)
	}
	slot := obj + layout.Ref(boff)
	old := m.h.GetWord(obj, boff)
	m.logStore(2+2*count, uint64(slot))
	m.logStore(2+2*count+1, old)
	m.logStore(1, uint64(count+1))
	// The count word and the entry often share a cache line; one flush
	// covering both halves the log's persist cost (the kind of Java-side
	// transaction-library optimization §2.2 anticipates). Ordering within
	// a line is preserved by the line-granular persistence model.
	m.flushLogWordSpan(1, 2+2*count+1)
	m.h.SetWord(obj, boff, val)
	tx.touched = append(tx.touched, slot)
	return nil
}

// flushLogWordSpan persists log words [lo, hi] with one flush call.
func (m *Manager) flushLogWordSpan(lo, hi int) {
	m.h.FlushRange(m.log, layout.ElemOff(layout.FTLong, lo), (hi-lo+1)*layout.WordSize)
}

// Commit flushes the transaction's stores and retires the log.
func (tx *Tx) Commit() {
	m := tx.m
	for _, slot := range tx.touched {
		off := m.h.OffOf(slot)
		m.h.Device().Flush(off, 8)
	}
	m.h.Device().Fence()
	m.logStore(1, 0)
	m.logStore(0, 1)
	m.flushLogWords(0, 2)
	tx.closed = true
	m.mu.Unlock()
}

// Abort rolls the transaction back.
func (tx *Tx) Abort() {
	m := tx.m
	count := int(m.logLoad(1))
	for i := count - 1; i >= 0; i-- {
		addr := layout.Ref(m.logLoad(2 + 2*i))
		old := m.logLoad(2 + 2*i + 1)
		m.h.Device().WriteU64(m.h.OffOf(addr), old)
		m.h.Device().Flush(m.h.OffOf(addr), 8)
	}
	m.h.Device().Fence()
	m.logStore(1, 0)
	m.logStore(0, 1)
	m.flushLogWords(0, 2)
	tx.closed = true
	m.mu.Unlock()
}

// Run executes fn inside a transaction, committing on nil and aborting on
// error.
func (m *Manager) Run(fn func(tx *Tx) error) error {
	tx := m.Begin()
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	tx.Commit()
	return nil
}
