package ptx

import (
	"testing"

	"espresso/internal/core"
	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
)

// TestCrashAtEveryPublishCommitBoundary drives a transaction whose
// commit publishes remembered-set deltas (an NVM→volatile store, an
// NVM→NVM store, and a primitive) through a crash at every flush
// boundary of the whole begin→write→commit sequence. After each crash
// the reloaded image must parse, ptx recovery must leave the three slots
// exactly all-old or all-new (undo-log atomicity), and the zeroing scan
// must null exactly the slots that persisted holding a (now-dead)
// volatile reference — the reload-side face of the remset discipline.
func TestCrashAtEveryPublishCommitBoundary(t *testing.T) {
	type world struct {
		rt       *core.Runtime
		h        *pheap.Heap
		m        *Manager
		obj      layout.Ref
		offs     [3]int
		vol, per layout.Ref
	}
	build := func() *world {
		rt, err := core.NewRuntime(core.Config{PJHDataSize: 8 << 20, NVMMode: nvm.Tracked})
		if err != nil {
			t.Fatal(err)
		}
		h, err := rt.CreateHeap("crashpub", 0)
		if err != nil {
			t.Fatal(err)
		}
		holder := klass.MustInstance("crash/Holder", nil,
			klass.Field{Name: "a", Type: layout.FTRef},
			klass.Field{Name: "b", Type: layout.FTRef},
			klass.Field{Name: "c", Type: layout.FTLong},
		)
		obj, err := rt.PNew(holder, 0)
		if err != nil {
			t.Fatal(err)
		}
		h.FlushRange(obj, 0, holder.SizeOf(0))
		if err := h.SetRoot("crash/obj", obj); err != nil {
			t.Fatal(err)
		}
		vol, err := rt.NewString("volatile-target", false)
		if err != nil {
			t.Fatal(err)
		}
		per, err := rt.NewString("persistent-target", true)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewManager(h)
		if err != nil {
			t.Fatal(err)
		}
		return &world{rt: rt, h: h, m: m, obj: obj,
			offs: [3]int{layout.FieldOff(0), layout.FieldOff(1), layout.FieldOff(2)},
			vol:  vol, per: per}
	}

	for crashAt := uint64(1); ; crashAt++ {
		w := build()
		base := w.h.Device().Stats().Flushes
		w.h.Device().SetFlushHook(func(n uint64) {
			if n == base+crashAt {
				panic("crash")
			}
		})
		crashed := false
		func() {
			defer func() {
				if recover() != nil {
					crashed = true
				}
			}()
			tx := w.m.Begin()
			if err := tx.WriteRefWord(w.obj, w.offs[0], w.vol); err != nil {
				t.Fatal(err)
			}
			if err := tx.WriteRefWord(w.obj, w.offs[1], w.per); err != nil {
				t.Fatal(err)
			}
			if err := tx.WriteWord(w.obj, w.offs[2], 42); err != nil {
				t.Fatal(err)
			}
			tx.Commit()
		}()
		w.h.Device().SetFlushHook(nil)

		img := w.h.Device().CrashImage(nvm.CrashRandomEviction, int64(crashAt))
		re, err := pheap.Load(nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked}), klass.NewRegistry())
		if err != nil {
			t.Fatalf("crashAt=%d: reload: %v", crashAt, err)
		}
		if _, err := NewManager(re); err != nil {
			t.Fatalf("crashAt=%d: recovery: %v", crashAt, err)
		}
		obj, ok := re.GetRoot("crash/obj")
		if !ok {
			t.Fatalf("crashAt=%d: holder root lost", crashAt)
		}
		a := layout.Ref(re.GetWord(obj, w.offs[0]))
		b := layout.Ref(re.GetWord(obj, w.offs[1]))
		c := re.GetWord(obj, w.offs[2])
		committed := a == w.vol && b == w.per && c == 42
		rolledBack := a == layout.NullRef && b == layout.NullRef && c == 0
		if !committed && !rolledBack {
			t.Fatalf("crashAt=%d: torn transaction: a=%#x b=%#x c=%d",
				crashAt, uint64(a), uint64(b), c)
		}

		// The zeroing scan — the reload path that consumes what the remset
		// discipline promises — must null exactly the slot holding the
		// dead volatile reference, and keep the intra-heap one.
		if _, err := re.ZeroingScan(re.Contains); err != nil {
			t.Fatalf("crashAt=%d: zeroing scan: %v", crashAt, err)
		}
		if committed {
			if got := layout.Ref(re.GetWord(obj, w.offs[0])); got != layout.NullRef {
				t.Fatalf("crashAt=%d: dead volatile ref survived zeroing: %#x", crashAt, uint64(got))
			}
			if got := layout.Ref(re.GetWord(obj, w.offs[1])); got != w.per {
				t.Fatalf("crashAt=%d: persistent ref zeroed: %#x", crashAt, uint64(got))
			}
		}

		if !crashed {
			// The hook never fired: the whole sequence completed, every
			// boundary has been swept.
			if !committed {
				t.Fatalf("clean run (crashAt=%d) did not commit", crashAt)
			}
			break
		}
	}
}
