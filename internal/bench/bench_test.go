package bench

import (
	"strings"
	"testing"
	"time"
)

func TestBreakdownPhases(t *testing.T) {
	b := NewBreakdown()
	stop := b.Phase("A")
	time.Sleep(2 * time.Millisecond)
	stop()
	stop = b.Phase("B")
	time.Sleep(time.Millisecond)
	stop()
	if b.Get("A") < b.Get("B") {
		t.Fatalf("A=%v should exceed B=%v", b.Get("A"), b.Get("B"))
	}
	if got := b.Phases(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("Phases = %v", got)
	}
	fr := b.Fractions()
	sum := fr["A"] + fr["B"] + fr["Other"]
	if sum < 0.95 || sum > 1.05 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestBreakdownAddExtendsTotal(t *testing.T) {
	b := NewBreakdown()
	b.Add("NVM", 100*time.Millisecond)
	if b.Total() < 100*time.Millisecond {
		t.Fatalf("Total = %v, want ≥ 100ms", b.Total())
	}
	if fr := b.Fractions()["NVM"]; fr < 0.9 {
		t.Fatalf("NVM fraction = %v", fr)
	}
}

func TestNilBreakdownIsSafe(t *testing.T) {
	var b *Breakdown
	b.Phase("x")() // must not panic
	b.Add("x", time.Second)
}

func TestTablePrint(t *testing.T) {
	tb := &Table{Header: []string{"Col", "LongerColumn"}}
	tb.AddRow("a", "b")
	tb.AddRow("longvalue", "c")
	var sb strings.Builder
	tb.Print(&sb)
	out := sb.String()
	if !strings.Contains(out, "Col") || !strings.Contains(out, "longvalue") {
		t.Fatalf("table output:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 { // header, sep, 2 rows
		t.Fatalf("table lines:\n%s", out)
	}
}

func TestPrintSeries(t *testing.T) {
	var sb strings.Builder
	PrintSeries(&sb, "x", "y", []*Series{
		{Name: "a", Points: []Point{{1, 10}, {2, 20}}},
		{Name: "b", Points: []Point{{1, 11}, {2, 21}}},
	})
	out := sb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "21") {
		t.Fatalf("series output:\n%s", out)
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}
