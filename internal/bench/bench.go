// Package bench provides the measurement plumbing shared by the
// evaluation harness: phase-time breakdowns (Figures 4, 6, 17), series
// and table printers, and simple workload helpers.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Breakdown accumulates wall time per named phase. It is how the harness
// reproduces the paper's stacked-bar charts: instrument the real code
// paths, run the real workload, report the split.
type Breakdown struct {
	phases map[string]time.Duration
	order  []string
	start  time.Time
	// extra accumulates modelled (non-wall-clock) time charged via Add,
	// e.g. NVM media latency for flushed lines; it extends the total so
	// fractions stay coherent.
	extra time.Duration
}

// NewBreakdown creates an empty breakdown and starts its total clock.
func NewBreakdown() *Breakdown {
	return &Breakdown{phases: make(map[string]time.Duration), start: time.Now()}
}

// Phase starts timing a phase; the returned func stops it. Usage:
//
//	stop := b.Phase("Transformation")
//	... work ...
//	stop()
func (b *Breakdown) Phase(name string) func() {
	if b == nil {
		return func() {}
	}
	if _, ok := b.phases[name]; !ok {
		b.order = append(b.order, name)
	}
	t0 := time.Now()
	return func() { b.phases[name] += time.Since(t0) }
}

// Add charges modelled (non-wall-clock) time to a phase; it extends the
// breakdown's total as well.
func (b *Breakdown) Add(name string, d time.Duration) {
	if b == nil {
		return
	}
	if _, ok := b.phases[name]; !ok {
		b.order = append(b.order, name)
	}
	b.phases[name] += d
	b.extra += d
}

// Get reports a phase's accumulated time.
func (b *Breakdown) Get(name string) time.Duration { return b.phases[name] }

// Total reports wall time since the breakdown started plus any modelled
// time charged through Add.
func (b *Breakdown) Total() time.Duration { return time.Since(b.start) + b.extra }

// Phases returns phase names in first-use order.
func (b *Breakdown) Phases() []string { return b.order }

// Other returns total minus the sum of recorded phases (the "Other" bar
// segment of the paper's figures).
func (b *Breakdown) Other() time.Duration {
	sum := time.Duration(0)
	for _, d := range b.phases {
		sum += d
	}
	if t := b.Total(); t > sum {
		return t - sum
	}
	return 0
}

// Fractions reports each phase (plus "Other") as a fraction of total.
func (b *Breakdown) Fractions() map[string]float64 {
	total := b.Total()
	out := make(map[string]float64, len(b.phases)+1)
	if total == 0 {
		return out
	}
	for name, d := range b.phases {
		out[name] = float64(d) / float64(total)
	}
	out["Other"] = float64(b.Other()) / float64(total)
	return out
}

// PrintFractions writes a one-bar breakdown like the paper's Figure 4/6.
func (b *Breakdown) PrintFractions(w io.Writer, title string) {
	fmt.Fprintf(w, "%s (total %v)\n", title, b.Total().Round(time.Microsecond))
	names := append([]string(nil), b.order...)
	names = append(names, "Other")
	fr := b.Fractions()
	for _, n := range names {
		fmt.Fprintf(w, "  %-16s %6.1f%%\n", n, fr[n]*100)
	}
}

// Table prints aligned rows (the harness's generic figure/table printer).
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Print writes the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// Series is a named sequence of (x, y) points — a figure line.
type Series struct {
	Name   string
	Points []Point
}

// Point is one measurement.
type Point struct {
	X float64
	Y float64
}

// PrintSeries writes aligned multi-series data (Figure 18 style).
func PrintSeries(w io.Writer, xLabel, yLabel string, series []*Series) {
	fmt.Fprintf(w, "%-14s", xLabel)
	for _, s := range series {
		fmt.Fprintf(w, "  %14s", s.Name)
	}
	fmt.Fprintln(w, "    ("+yLabel+")")
	if len(series) == 0 {
		return
	}
	for i := range series[0].Points {
		fmt.Fprintf(w, "%-14.3g", series[0].Points[i].X)
		for _, s := range series {
			fmt.Fprintf(w, "  %14.4g", s.Points[i].Y)
		}
		fmt.Fprintln(w)
	}
}

// Fmt rounds a ratio for table cells.
func Fmt(v float64) string { return fmt.Sprintf("%.2f", v) }

// SortedKeys returns map keys in sorted order (deterministic output).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
