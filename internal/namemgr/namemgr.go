// Package namemgr implements the external name manager of paper §3.3:
// the mapping between persistent-heap names and the device images backing
// them. createHeap registers a name; loadHeap asks the manager for the
// image; existsHeap queries it.
//
// Two tiers exist. The in-memory tier tracks heaps created during this
// process (the common benchmark case). The directory tier persists images
// as files so heaps survive process restarts — the "system reboot" of the
// paper's programming model.
package namemgr

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"

	"espresso/internal/nvm"
)

var nameRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,128}$`)

// Manager maps heap names to images.
type Manager struct {
	mu   sync.Mutex
	dir  string // "" = memory-only
	mem  map[string]*nvm.Device
	mode nvm.Mode
}

// New creates a manager. dir may be empty for a memory-only manager; when
// set, heap images are stored as <dir>/<name>.pjh.
func New(dir string, mode nvm.Mode) *Manager {
	return &Manager{dir: dir, mem: make(map[string]*nvm.Device), mode: mode}
}

// Mode reports the NVM mode the manager creates and loads devices with.
func (m *Manager) Mode() nvm.Mode { return m.mode }

// CheckName validates a heap name.
func CheckName(name string) error {
	if !nameRe.MatchString(name) {
		return fmt.Errorf("namemgr: invalid heap name %q", name)
	}
	return nil
}

func (m *Manager) path(name string) string {
	return filepath.Join(m.dir, name+".pjh")
}

// Register records a freshly created heap's device under name.
func (m *Manager) Register(name string, dev *nvm.Device) error {
	if err := CheckName(name); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.mem[name]; dup {
		return fmt.Errorf("namemgr: heap %q already exists", name)
	}
	if m.dir != "" {
		if _, err := os.Stat(m.path(name)); err == nil {
			return fmt.Errorf("namemgr: heap %q already exists on disk", name)
		}
	}
	m.mem[name] = dev
	return nil
}

// Exists reports whether a heap is known (in memory or on disk).
func (m *Manager) Exists(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.mem[name]; ok {
		return true
	}
	if m.dir == "" {
		return false
	}
	_, err := os.Stat(m.path(name))
	return err == nil
}

// Device returns the device backing name, loading it from disk if needed.
func (m *Manager) Device(name string) (*nvm.Device, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if dev, ok := m.mem[name]; ok {
		return dev, nil
	}
	if m.dir == "" {
		return nil, fmt.Errorf("namemgr: heap %q does not exist", name)
	}
	dev, err := nvm.LoadFile(m.path(name), nvm.Config{Mode: m.mode})
	if err != nil {
		return nil, err
	}
	m.mem[name] = dev
	return dev, nil
}

// Sync writes the named heap's persisted image to disk (no-op for a
// memory-only manager).
func (m *Manager) Sync(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dev, ok := m.mem[name]
	if !ok {
		return fmt.Errorf("namemgr: heap %q not loaded", name)
	}
	if m.dir == "" {
		return nil
	}
	return dev.Save(m.path(name))
}

// Remove forgets a heap and deletes its image.
func (m *Manager) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.mem, name)
	if m.dir == "" {
		return nil
	}
	err := os.Remove(m.path(name))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Names lists known in-memory heaps plus on-disk images.
func (m *Manager) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := map[string]bool{}
	var names []string
	for n := range m.mem {
		seen[n] = true
		names = append(names, n)
	}
	if m.dir != "" {
		matches, _ := filepath.Glob(filepath.Join(m.dir, "*.pjh"))
		for _, p := range matches {
			n := filepath.Base(p)
			n = n[:len(n)-len(".pjh")]
			if !seen[n] {
				names = append(names, n)
			}
		}
	}
	return names
}
