package namemgr

import (
	"testing"

	"espresso/internal/nvm"
)

func TestMemoryOnlyManager(t *testing.T) {
	m := New("", nvm.Direct)
	if m.Exists("h") {
		t.Fatal("phantom heap")
	}
	dev := nvm.New(nvm.Config{Size: 4096})
	if err := m.Register("h", dev); err != nil {
		t.Fatal(err)
	}
	if !m.Exists("h") {
		t.Fatal("registered heap missing")
	}
	if err := m.Register("h", dev); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	got, err := m.Device("h")
	if err != nil || got != dev {
		t.Fatalf("Device = %v %v", got, err)
	}
	if err := m.Sync("h"); err != nil { // no-op without a dir
		t.Fatal(err)
	}
	if err := m.Remove("h"); err != nil {
		t.Fatal(err)
	}
	if m.Exists("h") {
		t.Fatal("removed heap still exists")
	}
}

func TestDirectoryManagerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := New(dir, nvm.Tracked)
	dev := nvm.New(nvm.Config{Size: 4096, Mode: nvm.Tracked})
	dev.WriteU64(0, 777)
	dev.Flush(0, 8)
	if err := m.Register("store", dev); err != nil {
		t.Fatal(err)
	}
	if err := m.Sync("store"); err != nil {
		t.Fatal(err)
	}
	// A second manager (new process) sees the file.
	m2 := New(dir, nvm.Tracked)
	if !m2.Exists("store") {
		t.Fatal("file-backed heap invisible to new manager")
	}
	dev2, err := m2.Device("store")
	if err != nil {
		t.Fatal(err)
	}
	if dev2.ReadU64(0) != 777 {
		t.Fatal("contents lost")
	}
	names := m2.Names()
	if len(names) != 1 || names[0] != "store" {
		t.Fatalf("Names = %v", names)
	}
}

func TestNameValidation(t *testing.T) {
	m := New("", nvm.Direct)
	for _, bad := range []string{"", "a/b", "../evil", "x y", "名"} {
		if err := m.Register(bad, nvm.New(nvm.Config{Size: 64})); err == nil {
			t.Errorf("accepted bad name %q", bad)
		}
	}
}

func TestMissingHeapErrors(t *testing.T) {
	m := New("", nvm.Direct)
	if _, err := m.Device("nope"); err == nil {
		t.Fatal("missing heap returned a device")
	}
	if err := m.Sync("nope"); err == nil {
		t.Fatal("sync of missing heap accepted")
	}
	if err := m.Remove("nope"); err != nil {
		t.Fatal("remove of missing heap should be a no-op")
	}
}
