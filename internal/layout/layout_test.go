package layout

import (
	"testing"
	"testing/quick"
)

func TestMarkWordRoundTrip(t *testing.T) {
	f := func(ts uint64, flags uint8) bool {
		ts &= (1 << 56) - 1 // timestamp field width
		m := MarkWord(ts, flags)
		return MarkTimestamp(m) == ts && MarkFlags(m) == flags
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWithTimestampPreservesFlags(t *testing.T) {
	m := MarkWord(7, 0xab)
	m2 := WithTimestamp(m, 99)
	if MarkTimestamp(m2) != 99 || MarkFlags(m2) != 0xab {
		t.Fatalf("WithTimestamp = ts %d flags %#x", MarkTimestamp(m2), MarkFlags(m2))
	}
}

func TestElemSizes(t *testing.T) {
	cases := map[FieldType]int{
		FTRef: 8, FTLong: 8, FTDouble: 8,
		FTInt: 4, FTFloat: 4,
		FTChar: 2, FTShort: 2,
		FTByte: 1, FTBool: 1,
	}
	for ft, want := range cases {
		if got := ft.ElemSize(); got != want {
			t.Errorf("%s.ElemSize = %d, want %d", ft, got, want)
		}
	}
}

func TestSizesAreAligned(t *testing.T) {
	f := func(nFields uint8, arrLen uint16) bool {
		if InstanceBytes(int(nFields))%ObjAlign != 0 {
			return false
		}
		for ft := FTRef; ft <= FTBool; ft++ {
			if ArrayBytes(ft, int(arrLen))%ObjAlign != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinimumSizes(t *testing.T) {
	if InstanceBytes(0) != 16 {
		t.Fatalf("empty instance = %d", InstanceBytes(0))
	}
	if ArrayBytes(FTByte, 0) != 32 { // 24 header → aligned 32
		t.Fatalf("empty byte array = %d", ArrayBytes(FTByte, 0))
	}
}

func TestOffsets(t *testing.T) {
	if FieldOff(0) != 16 || FieldOff(3) != 40 {
		t.Fatalf("field offsets %d %d", FieldOff(0), FieldOff(3))
	}
	if ElemOff(FTLong, 2) != 40 || ElemOff(FTByte, 5) != 29 {
		t.Fatalf("elem offsets %d %d", ElemOff(FTLong, 2), ElemOff(FTByte, 5))
	}
}

func TestAddressSpacesDisjoint(t *testing.T) {
	if !(DefaultPJHBase < YoungBase && YoungBase < OldBase && OldBase < MetaspaceBase) {
		t.Fatal("address map out of order")
	}
}
