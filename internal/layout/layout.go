// Package layout defines the shared memory layout of the simulated JVM:
// word and region geometry, the two-word object header, field types, and
// the virtual address map that places the volatile spaces, the klass
// metaspace, and persistent heaps in one 64-bit address space.
//
// The layout mirrors HotSpot's: every object starts with a mark word and a
// klass word; arrays add a length word; instance fields occupy one word
// each; primitive array elements are packed by element size. The mark word
// reserves a timestamp field in the bits ParallelScavenge keeps for GC
// state — the bits Espresso reuses for its crash-consistent compaction.
package layout

import "fmt"

// Fundamental geometry.
const (
	WordSize = 8
	LineSize = 64
	// RegionSize is the persistent-space GC region size. The paper reuses
	// ParallelScavenge old-GC regions; 256 KB keeps region tables small
	// while giving the compactor enough parallel grain.
	RegionSize = 256 * 1024
	// ObjAlign is the object start/size alignment. 16 bytes guarantees any
	// allocation gap can hold a filler object (2-word minimum object).
	ObjAlign = 16
	// RegionTopStride is the byte stride of the per-region persisted-top
	// table (pheap's PLAB table): one full cache line per region, so a
	// mutator persisting its own region's top never shares a flushed line
	// with another region's top word.
	RegionTopStride = LineSize
)

// Object header geometry, in bytes from the object start.
const (
	MarkWordOff    = 0
	KlassWordOff   = 8
	HeaderBytes    = 16
	ArrayLenOff    = 16
	ArrayHdrBytes  = 24
	MinObjectBytes = HeaderBytes
)

// Ref is a virtual address of an object (or 0 for null). All spaces share
// one 64-bit address map, so a Ref alone identifies both the space and the
// object — exactly the property that lets persistent objects hold pointers
// into DRAM and vice versa.
type Ref uint64

// Virtual address map. Each region is far larger than any space will grow,
// so a Ref's space is recovered by range check.
const (
	NullRef Ref = 0
	// DefaultPJHBase is where createHeap places a new persistent heap's
	// address hint. Multiple heaps stack upward from here, region-aligned.
	DefaultPJHBase Ref = 0x0000_1000_0000_0000
	// YoungBase/OldBase anchor the volatile ParallelScavenge spaces.
	YoungBase Ref = 0x0000_4000_0000_0000
	OldBase   Ref = 0x0000_5000_0000_0000
	// MetaspaceBase anchors volatile Klass identities: the klass word of a
	// DRAM object is MetaspaceBase + id*MetaKlassStride.
	MetaspaceBase   Ref = 0x0000_7000_0000_0000
	MetaKlassStride     = 64
)

// Reference tagging. ObjAlign leaves the low four bits of every real
// object address zero; lock-free persistent structures (internal/pindex)
// store their link-state marks there, HotSpot-tagged-pointer style. Any
// code that interprets a reference slot's value as an object address —
// the concurrent marker, the compactor's reference fixing, the SATB
// barrier — must strip the tag first and, when rewriting the slot,
// carry the tag over unchanged.
const RefTagMask = Ref(ObjAlign - 1)

// UntagRef strips the low tag bits, yielding the object address.
func UntagRef(r Ref) Ref { return r &^ RefTagMask }

// RefTag extracts the low tag bits of a reference slot value.
func RefTag(r Ref) Ref { return r & RefTagMask }

// MixHash64 is the shared 64-bit hash finalizer for persisted hash
// structures: pcollections.PHashMap derives bucket placement from it
// and pindex derives its split-order keys from it. Persisted layouts
// depend on its output, so its definition must never change.
func MixHash64(k int64) uint64 {
	x := uint64(k)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// Mark word encoding:
//
//	bits 0..7   flags (low bits kept free the way HotSpot reserves them)
//	bits 8..63  GC timestamp (the "reserved PSGC bits" of the paper)
const (
	markFlagBits = 8
	markFlagMask = (1 << markFlagBits) - 1
)

// MarkWord assembles a mark word from a timestamp and flag bits.
func MarkWord(timestamp uint64, flags uint8) uint64 {
	return timestamp<<markFlagBits | uint64(flags)
}

// MarkTimestamp extracts the GC timestamp from a mark word.
func MarkTimestamp(mark uint64) uint64 { return mark >> markFlagBits }

// MarkFlags extracts the flag bits from a mark word.
func MarkFlags(mark uint64) uint8 { return uint8(mark & markFlagMask) }

// WithTimestamp returns mark with its timestamp field replaced.
func WithTimestamp(mark, timestamp uint64) uint64 {
	return timestamp<<markFlagBits | mark&markFlagMask
}

// FieldType enumerates the Java field/element types the object model
// supports. Instance fields always occupy a full word; primitive array
// elements pack at ElemSize.
type FieldType uint8

const (
	FTRef FieldType = iota
	FTLong
	FTDouble
	FTInt
	FTFloat
	FTChar
	FTShort
	FTByte
	FTBool
)

var ftNames = [...]string{"ref", "long", "double", "int", "float", "char", "short", "byte", "bool"}

func (t FieldType) String() string {
	if int(t) < len(ftNames) {
		return ftNames[t]
	}
	return fmt.Sprintf("FieldType(%d)", uint8(t))
}

// ElemSize reports the packed size of an array element of this type.
func (t FieldType) ElemSize() int {
	switch t {
	case FTRef, FTLong, FTDouble:
		return 8
	case FTInt, FTFloat:
		return 4
	case FTChar, FTShort:
		return 2
	case FTByte, FTBool:
		return 1
	default:
		panic("layout: unknown field type")
	}
}

// Valid reports whether t is a defined field type.
func (t FieldType) Valid() bool { return t <= FTBool }

// Align16 rounds n up to the object alignment.
func Align16(n int) int { return (n + ObjAlign - 1) &^ (ObjAlign - 1) }

// InstanceBytes is the aligned size of an instance with nFields one-word
// fields.
func InstanceBytes(nFields int) int { return Align16(HeaderBytes + nFields*WordSize) }

// ArrayBytes is the aligned size of an array of n elements of type t.
func ArrayBytes(t FieldType, n int) int { return Align16(ArrayHdrBytes + n*t.ElemSize()) }

// FieldOff is the byte offset of the i-th one-word instance field.
func FieldOff(i int) int { return HeaderBytes + i*WordSize }

// ElemOff is the byte offset of the i-th element of a t-typed array.
func ElemOff(t FieldType, i int) int { return ArrayHdrBytes + i*t.ElemSize() }
