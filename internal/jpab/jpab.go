// Package jpab reproduces the JPA Performance Benchmark (JPAB) workloads
// of the paper's Table 2, driven against any jpa.EntityManager so the
// same code paths measure H2-JPA and H2-PJO:
//
//	BasicTest       basic user-defined classes
//	ExtTest         classes with inheritance relationships
//	CollectionTest  classes containing collection members
//	NodeTest        classes with foreign-key-like references
//
// Each test runs the four CRUD operations (retrieve, update, delete,
// create) over a population of entities, reporting throughput.
package jpab

import (
	"fmt"
	"time"

	"espresso/internal/h2"
	"espresso/internal/jpa"
)

// Entity definitions shared by the tests.
var (
	// Person is the paper's running example, extended with enough fields
	// to make row serialization meaningful.
	Person = jpa.MustEntityDef("Person", nil,
		jpa.FieldDef{Name: "firstName", Kind: jpa.FStr},
		jpa.FieldDef{Name: "lastName", Kind: jpa.FStr},
		jpa.FieldDef{Name: "email", Kind: jpa.FStr},
		jpa.FieldDef{Name: "score", Kind: jpa.FFloat},
	)
	// Employee extends Person (ExtTest).
	Employee = jpa.MustEntityDef("Employee", Person,
		jpa.FieldDef{Name: "salary", Kind: jpa.FInt},
		jpa.FieldDef{Name: "department", Kind: jpa.FStr},
	)
	// Album and Track model a collection member: an Album logically owns
	// Tracks, each Track row carrying the foreign key (CollectionTest).
	Album = jpa.MustEntityDef("Album", nil,
		jpa.FieldDef{Name: "title", Kind: jpa.FStr},
		jpa.FieldDef{Name: "trackCount", Kind: jpa.FInt},
	)
	Track = jpa.MustEntityDef("Track", nil,
		jpa.FieldDef{Name: "albumId", Kind: jpa.FInt},
		jpa.FieldDef{Name: "name", Kind: jpa.FStr},
	)
	// Node references another Node by id (NodeTest).
	Node = jpa.MustEntityDef("GraphNode", nil,
		jpa.FieldDef{Name: "nextId", Kind: jpa.FInt},
		jpa.FieldDef{Name: "label", Kind: jpa.FStr},
	)
)

// Field indices resolved once at load — the workload loops address
// fields by slot, like enhanced bytecode, instead of re-walking the
// name map on every access.
func fi(d *jpa.EntityDef, name string) int {
	i, ok := d.FieldIndex(name)
	if !ok {
		panic("jpab: " + d.Name + " has no field " + name)
	}
	return i
}

var (
	personFirstName = fi(Person, "firstName")
	personLastName  = fi(Person, "lastName")
	personEmail     = fi(Person, "email")
	personScore     = fi(Person, "score")
	employeeSalary  = fi(Employee, "salary")
	employeeDept    = fi(Employee, "department")
	albumTitle      = fi(Album, "title")
	albumTrackCount = fi(Album, "trackCount")
	trackAlbumID    = fi(Track, "albumId")
	trackName       = fi(Track, "name")
	nodeNextID      = fi(Node, "nextId")
	nodeLabel       = fi(Node, "label")
)

// Result is one test's throughput per CRUD operation, in operations per
// second (the y-axis of Figure 16).
type Result struct {
	Test     string
	Entities int
	Retrieve float64
	Update   float64
	Delete   float64
	Create   float64
}

// Ops returns the four throughputs keyed like the figure.
func (r Result) Ops() map[string]float64 {
	return map[string]float64{
		"Retrieve": r.Retrieve, "Update": r.Update, "Delete": r.Delete, "Create": r.Create,
	}
}

// Test is one JPAB test case.
type Test struct {
	Name string
	// Defs lists the entity classes involved (schema setup).
	Defs []*jpa.EntityDef
	// MakeBatch persists one batch of entities with base id.
	MakeBatch func(em jpa.EntityManager, base int64, n int) error
	// Touch mutates one entity (the update operation).
	Touch func(em jpa.EntityManager, id int64) error
	// Fetch retrieves and reads one entity.
	Fetch func(em jpa.EntityManager, id int64) error
	// Drop removes one entity.
	Drop func(em jpa.EntityManager, id int64) error
}

func persistBatch(em jpa.EntityManager, mk func(id int64) *jpa.Entity, base int64, n int) error {
	em.Begin()
	for i := 0; i < n; i++ {
		if err := em.Persist(mk(base + int64(i))); err != nil {
			return err
		}
	}
	return em.Commit()
}

func fetchOne(em jpa.EntityManager, def *jpa.EntityDef, id int64, read func(e *jpa.Entity)) error {
	e, err := em.Find(def, id)
	if err != nil {
		return err
	}
	if e == nil {
		return fmt.Errorf("jpab: %s %d not found", def.Name, id)
	}
	read(e)
	return nil
}

func touchOne(em jpa.EntityManager, def *jpa.EntityDef, id int64, mutate func(e *jpa.Entity)) error {
	e, err := em.Find(def, id)
	if err != nil {
		return err
	}
	if e == nil {
		return fmt.Errorf("jpab: %s %d not found", def.Name, id)
	}
	em.Begin()
	mutate(e)
	if err := em.Persist(e); err != nil {
		return err
	}
	return em.Commit()
}

func dropOne(em jpa.EntityManager, def *jpa.EntityDef, id int64) error {
	e, err := em.Find(def, id)
	if err != nil {
		return err
	}
	if e == nil {
		return fmt.Errorf("jpab: %s %d not found", def.Name, id)
	}
	em.Begin()
	if err := em.Remove(e); err != nil {
		return err
	}
	return em.Commit()
}

// BasicTest exercises plain entities.
func BasicTest() *Test {
	return &Test{
		Name: "BasicTest",
		Defs: []*jpa.EntityDef{Person},
		MakeBatch: func(em jpa.EntityManager, base int64, n int) error {
			return persistBatch(em, func(id int64) *jpa.Entity {
				e := Person.NewEntity(id)
				e.SetValueAt(personFirstName, h2.StrV(fmt.Sprintf("First%d", id)))
				e.SetValueAt(personLastName, h2.StrV(fmt.Sprintf("Last%d", id)))
				e.SetValueAt(personEmail, h2.StrV(fmt.Sprintf("p%d@example.com", id)))
				e.SetValueAt(personScore, h2.FloatV(float64(id)*0.5))
				return e
			}, base, n)
		},
		Fetch: func(em jpa.EntityManager, id int64) error {
			return fetchOne(em, Person, id, func(e *jpa.Entity) {
				_ = e.Value(personFirstName)
				_ = e.Value(personScore)
			})
		},
		Touch: func(em jpa.EntityManager, id int64) error {
			return touchOne(em, Person, id, func(e *jpa.Entity) {
				e.SetValueAt(personScore, h2.FloatV(float64(id)+1.25))
			})
		},
		Drop: func(em jpa.EntityManager, id int64) error { return dropOne(em, Person, id) },
	}
}

// ExtTest exercises inheritance.
func ExtTest() *Test {
	return &Test{
		Name: "ExtTest",
		Defs: []*jpa.EntityDef{Employee},
		MakeBatch: func(em jpa.EntityManager, base int64, n int) error {
			return persistBatch(em, func(id int64) *jpa.Entity {
				e := Employee.NewEntity(id)
				e.SetValueAt(personFirstName, h2.StrV(fmt.Sprintf("First%d", id)))
				e.SetValueAt(personLastName, h2.StrV(fmt.Sprintf("Last%d", id)))
				e.SetValueAt(personEmail, h2.StrV(fmt.Sprintf("e%d@example.com", id)))
				e.SetValueAt(personScore, h2.FloatV(float64(id)))
				e.SetValueAt(employeeSalary, h2.IntV(40000+id))
				e.SetValueAt(employeeDept, h2.StrV("Systems"))
				return e
			}, base, n)
		},
		Fetch: func(em jpa.EntityManager, id int64) error {
			return fetchOne(em, Employee, id, func(e *jpa.Entity) {
				_ = e.Value(personFirstName) // inherited
				_ = e.Value(employeeSalary)  // own
			})
		},
		Touch: func(em jpa.EntityManager, id int64) error {
			return touchOne(em, Employee, id, func(e *jpa.Entity) {
				e.SetValueAt(employeeSalary, h2.IntV(50000+id))
			})
		},
		Drop: func(em jpa.EntityManager, id int64) error { return dropOne(em, Employee, id) },
	}
}

// tracksPerAlbum is the collection fan-out of CollectionTest.
const tracksPerAlbum = 4

// CollectionTest exercises collection members: each Album entity owns
// tracksPerAlbum Track entities.
func CollectionTest() *Test {
	trackID := func(album int64, i int) int64 { return album*tracksPerAlbum + int64(i) }
	return &Test{
		Name: "CollectionTest",
		Defs: []*jpa.EntityDef{Album, Track},
		MakeBatch: func(em jpa.EntityManager, base int64, n int) error {
			em.Begin()
			for i := 0; i < n; i++ {
				id := base + int64(i)
				a := Album.NewEntity(id)
				a.SetValueAt(albumTitle, h2.StrV(fmt.Sprintf("Album %d", id)))
				a.SetValueAt(albumTrackCount, h2.IntV(tracksPerAlbum))
				if err := em.Persist(a); err != nil {
					return err
				}
				for tk := 0; tk < tracksPerAlbum; tk++ {
					t := Track.NewEntity(trackID(id, tk))
					t.SetValueAt(trackAlbumID, h2.IntV(id))
					t.SetValueAt(trackName, h2.StrV(fmt.Sprintf("Track %d-%d", id, tk)))
					if err := em.Persist(t); err != nil {
						return err
					}
				}
			}
			return em.Commit()
		},
		Fetch: func(em jpa.EntityManager, id int64) error {
			if err := fetchOne(em, Album, id, func(e *jpa.Entity) { _ = e.Value(albumTitle) }); err != nil {
				return err
			}
			for tk := 0; tk < tracksPerAlbum; tk++ {
				if err := fetchOne(em, Track, trackID(id, tk), func(e *jpa.Entity) { _ = e.Value(trackName) }); err != nil {
					return err
				}
			}
			return nil
		},
		Touch: func(em jpa.EntityManager, id int64) error {
			return touchOne(em, Track, trackID(id, 0), func(e *jpa.Entity) {
				e.SetValueAt(trackName, h2.StrV(fmt.Sprintf("Track %d-0 (remastered)", id)))
			})
		},
		Drop: func(em jpa.EntityManager, id int64) error {
			for tk := 0; tk < tracksPerAlbum; tk++ {
				if err := dropOne(em, Track, trackID(id, tk)); err != nil {
					return err
				}
			}
			return dropOne(em, Album, id)
		},
	}
}

// NodeTest exercises foreign-key-like references: each node points at the
// next, and retrieval follows the reference.
func NodeTest() *Test {
	return &Test{
		Name: "NodeTest",
		Defs: []*jpa.EntityDef{Node},
		MakeBatch: func(em jpa.EntityManager, base int64, n int) error {
			return persistBatch(em, func(id int64) *jpa.Entity {
				e := Node.NewEntity(id)
				e.SetValueAt(nodeNextID, h2.IntV(id+1)) // chain
				e.SetValueAt(nodeLabel, h2.StrV(fmt.Sprintf("node-%d", id)))
				return e
			}, base, n)
		},
		Fetch: func(em jpa.EntityManager, id int64) error {
			return fetchOne(em, Node, id, func(e *jpa.Entity) {
				next := e.Value(nodeNextID).I
				// Follow the reference if the target exists (chain tail
				// points past the population).
				if tgt, err := em.Find(Node, next); err == nil && tgt != nil {
					_ = tgt.Value(nodeLabel)
				}
			})
		},
		Touch: func(em jpa.EntityManager, id int64) error {
			return touchOne(em, Node, id, func(e *jpa.Entity) {
				e.SetValueAt(nodeLabel, h2.StrV(fmt.Sprintf("node-%d'", id)))
			})
		},
		Drop: func(em jpa.EntityManager, id int64) error { return dropOne(em, Node, id) },
	}
}

// AllTests returns the Table 2 test matrix.
func AllTests() []*Test {
	return []*Test{BasicTest(), ExtTest(), CollectionTest(), NodeTest()}
}

// Run executes a test against an EntityManager: create n entities in
// batches, retrieve each, update each, then delete each, reporting
// operation throughputs.
func Run(t *Test, em jpa.EntityManager, n, batch int) (Result, error) {
	for _, def := range t.Defs {
		if err := em.EnsureSchema(def); err != nil {
			return Result{}, err
		}
	}
	res := Result{Test: t.Name, Entities: n}

	start := time.Now()
	for base := 0; base < n; base += batch {
		sz := batch
		if base+sz > n {
			sz = n - base
		}
		if err := t.MakeBatch(em, int64(base), sz); err != nil {
			return res, fmt.Errorf("%s create: %w", t.Name, err)
		}
	}
	res.Create = rate(n, time.Since(start))

	start = time.Now()
	for id := 0; id < n; id++ {
		if err := t.Fetch(em, int64(id)); err != nil {
			return res, fmt.Errorf("%s retrieve: %w", t.Name, err)
		}
	}
	res.Retrieve = rate(n, time.Since(start))

	start = time.Now()
	for id := 0; id < n; id++ {
		if err := t.Touch(em, int64(id)); err != nil {
			return res, fmt.Errorf("%s update: %w", t.Name, err)
		}
	}
	res.Update = rate(n, time.Since(start))

	start = time.Now()
	for id := 0; id < n; id++ {
		if err := t.Drop(em, int64(id)); err != nil {
			return res, fmt.Errorf("%s delete: %w", t.Name, err)
		}
	}
	res.Delete = rate(n, time.Since(start))
	return res, nil
}

func rate(ops int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds()
}
