package jpa

import (
	"fmt"
	"strings"

	"espresso/internal/bench"
	"espresso/internal/h2"
	"espresso/internal/sql"
)

// Provider is the DataNucleus-style JPA implementation: managed entities
// are transformed into SQL statement *text* at commit, lexed/parsed/
// planned by the database, and executed against rows serialized into the
// database's own pages. The transformation work is the 41.9% bar of
// paper Figure 4; the Breakdown hook measures it on the real code path.
type Provider struct {
	db   *h2.DB
	prof *bench.Breakdown
	ctx  []*Entity // persistence context, in persist order
	inTx bool
}

// NewProvider wires a JPA provider to a database.
func NewProvider(db *h2.DB) *Provider { return &Provider{db: db} }

// SetProfile installs a phase recorder ("Transformation" vs "Database").
func (p *Provider) SetProfile(b *bench.Breakdown) { p.prof = b }

func (p *Provider) phase(name string) func() {
	if p.prof == nil {
		return func() {}
	}
	return p.prof.Phase(name)
}

// EnsureSchema creates the entity's table if missing.
func (p *Provider) EnsureSchema(def *EntityDef) error {
	if _, ok := p.db.TableByName(def.Table); ok {
		return nil
	}
	_, err := p.db.Exec(def.CreateTableSQL())
	return err
}

// Begin opens a transaction.
func (p *Provider) Begin() {
	p.ctx = p.ctx[:0]
	p.inTx = true
}

// Persist adds an entity to the persistence context. The real write
// happens at commit, as in Figure 3.
func (p *Provider) Persist(e *Entity) error {
	if !p.inTx {
		return fmt.Errorf("jpa: persist outside a transaction")
	}
	e.SM.State = StateManaged
	p.ctx = append(p.ctx, e)
	return nil
}

// Remove marks an entity for deletion at commit.
func (p *Provider) Remove(e *Entity) error {
	if !p.inTx {
		return fmt.Errorf("jpa: remove outside a transaction")
	}
	e.SM.State = StateRemoved
	p.ctx = append(p.ctx, e)
	return nil
}

// Find loads an entity by primary key: generate SELECT text, parse it,
// run it, and transform the row back into an entity.
func (p *Provider) Find(def *EntityDef, id int64) (*Entity, error) {
	stopT := p.phase("Transformation")
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, f := range def.AllFields() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(f.Name)
	}
	fmt.Fprintf(&sb, " FROM %s WHERE id = %d", def.Table, id)
	st, err := sql.Parse(sb.String())
	stopT()
	if err != nil {
		return nil, err
	}
	stopD := p.phase("Database")
	rows, err := p.db.QueryStmt(st)
	stopD()
	if err != nil {
		return nil, err
	}
	if !rows.Next() {
		return nil, nil
	}
	stopT2 := p.phase("Transformation")
	e := rowToEntity(def, rows.Row())
	stopT2()
	return e, nil
}

func rowToEntity(def *EntityDef, row []h2.Value) *Entity {
	e := def.NewEntity(row[0].I)
	copy(e.vals, row)
	e.SM = StateManager{State: StateManaged}
	return e
}

// Commit transforms every dirty context entity into SQL and executes the
// batch atomically (paper Figure 1: Person p → INSERT INTO TABLE WHERE…).
func (p *Provider) Commit() error {
	if !p.inTx {
		return fmt.Errorf("jpa: commit outside a transaction")
	}
	type planned struct {
		st     sql.Statement
		params []h2.Value
	}
	var stmts []planned
	// Transformation: object state → SQL text → parsed statement.
	stopT := p.phase("Transformation")
	for _, e := range p.ctx {
		text, params := p.transform(e)
		if text == "" {
			continue
		}
		st, err := sql.Parse(text)
		if err != nil {
			stopT()
			return fmt.Errorf("jpa: generated SQL rejected: %w", err)
		}
		stmts = append(stmts, planned{st, params})
	}
	stopT()

	// Database: one backend transaction for the whole commit.
	stopD := p.phase("Database")
	tx := p.db.Begin()
	for _, pl := range stmts {
		if _, err := tx.ExecStmt(pl.st, pl.params...); err != nil {
			tx.Rollback()
			stopD()
			return err
		}
	}
	tx.Commit()
	stopD()

	for _, e := range p.ctx {
		if e.SM.State == StateManaged {
			e.SM.Dirty = 0
			e.SM.New = false
		}
	}
	p.ctx = p.ctx[:0]
	p.inTx = false
	return nil
}

// transform builds the SQL text for one entity — real string building, as
// a JPA provider does. Parameters are inlined as literals for strings to
// exercise quoting, and passed positionally for numerics.
func (p *Provider) transform(e *Entity) (string, []h2.Value) {
	def := e.Def
	switch {
	case e.SM.State == StateRemoved:
		return fmt.Sprintf("DELETE FROM %s WHERE id = %d", def.Table, e.ID()), nil
	case e.SM.New:
		var cols, vals strings.Builder
		var params []h2.Value
		for i, f := range def.AllFields() {
			if i > 0 {
				cols.WriteString(", ")
				vals.WriteString(", ")
			}
			cols.WriteString(f.Name)
			v := e.Value(i)
			if v.Kind == h2.KStr {
				vals.WriteString(sql.Quote(v.S))
			} else {
				vals.WriteString("?")
				params = append(params, v)
			}
		}
		return fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)", def.Table, cols.String(), vals.String()), params
	case e.SM.Dirty != 0:
		var set strings.Builder
		var params []h2.Value
		first := true
		for i, f := range def.AllFields() {
			if i == 0 || e.SM.Dirty&(1<<uint(i)) == 0 {
				continue
			}
			if !first {
				set.WriteString(", ")
			}
			first = false
			v := e.Value(i)
			if v.Kind == h2.KStr {
				fmt.Fprintf(&set, "%s = %s", f.Name, sql.Quote(v.S))
			} else {
				fmt.Fprintf(&set, "%s = ?", f.Name)
				params = append(params, v)
			}
		}
		if first {
			return "", nil
		}
		return fmt.Sprintf("UPDATE %s SET %s WHERE id = %d", def.Table, set.String(), e.ID()), params
	default:
		return "", nil
	}
}
