// Package jpa models the Java Persistence API layer of the paper's §2.1:
// entity classes declared with @persistable annotations, the enhancer
// that injects control fields and a StateManager into each instance, the
// EntityManager with ACID transaction demarcation, and the DataNucleus-
// style provider that transforms managed objects into SQL statements for
// the backend database over a JDBC-shaped interface.
//
// The package defines the EntityManager contract both providers satisfy;
// package pjo supplies the NVM-aware provider that replaces the SQL
// transformation with DBPersistable shipping.
package jpa

import (
	"fmt"
	"math"
	"strings"

	"espresso/internal/h2"
	"espresso/internal/sql"
)

// FieldKind enumerates entity field types.
type FieldKind int

const (
	FInt FieldKind = iota
	FStr
	FFloat
)

// FieldDef is one declared entity field.
type FieldDef struct {
	Name string
	Kind FieldKind
}

// EntityDef describes an @persistable class. The first flattened field is
// always the implicit "id" BIGINT primary key.
type EntityDef struct {
	Name  string
	Table string
	Super *EntityDef
	own   []FieldDef
	all   []FieldDef
	index map[string]int
}

// NewEntityDef declares an entity class. Subclasses (ExtTest) inherit the
// superclass's fields, flattened super-first like the JVM field layout.
func NewEntityDef(name string, super *EntityDef, fields ...FieldDef) (*EntityDef, error) {
	d := &EntityDef{Name: name, Table: strings.ToLower(name), Super: super, own: fields}
	if super != nil {
		d.all = append(d.all, super.all...)
	} else {
		d.all = append(d.all, FieldDef{Name: "id", Kind: FInt})
	}
	d.all = append(d.all, fields...)
	d.index = make(map[string]int, len(d.all))
	for i, f := range d.all {
		if _, dup := d.index[f.Name]; dup {
			return nil, fmt.Errorf("jpa: %s: duplicate field %q", name, f.Name)
		}
		d.index[f.Name] = i
	}
	return d, nil
}

// MustEntityDef is NewEntityDef for static tables; panics on error.
func MustEntityDef(name string, super *EntityDef, fields ...FieldDef) *EntityDef {
	d, err := NewEntityDef(name, super, fields...)
	if err != nil {
		panic(err)
	}
	return d
}

// AllFields returns the flattened field list (id first).
func (d *EntityDef) AllFields() []FieldDef { return d.all }

// FieldIndex resolves a field name.
func (d *EntityDef) FieldIndex(name string) (int, bool) {
	i, ok := d.index[name]
	return i, ok
}

// CreateTableSQL emits the DDL for this entity's table.
func (d *EntityDef) CreateTableSQL() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CREATE TABLE %s (", d.Table)
	for i, f := range d.all {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(f.Name)
		switch f.Kind {
		case FInt:
			sb.WriteString(" BIGINT")
		case FStr:
			sb.WriteString(" VARCHAR")
		case FFloat:
			sb.WriteString(" DOUBLE")
		}
		if i == 0 {
			sb.WriteString(" PRIMARY KEY")
		}
	}
	sb.WriteString(")")
	return sb.String()
}

// EntityState tracks an instance's lifecycle in the persistence context.
type EntityState int

const (
	StateTransient EntityState = iota
	StateManaged
	StateRemoved
)

// StateManager is the control structure the enhancer injects into every
// Persistable object (paper §2.1/Figure 14): lifecycle state, the
// field-level dirty bitmap, and — for the PJO provider — the reference to
// the persisted copy after data deduplication.
type StateManager struct {
	State  EntityState
	Dirty  uint64 // bit per flattened field
	New    bool   // created this transaction (insert, not update)
	PJORef uint64 // DBPersistable copy in PJH (0 = none)
	Shadow map[int]h2.Value
	// ReadThrough, when set, resolves non-shadowed field reads from the
	// persisted copy (data deduplication redirected the fields there).
	ReadThrough func(fieldIdx int) h2.Value
}

// Entity is one instance of an entity class. The enhancer attaches the
// StateManager; application code uses the typed accessors, which maintain
// the dirty bitmap exactly like enhanced bytecode would.
type Entity struct {
	Def  *EntityDef
	vals []h2.Value
	SM   StateManager
}

// NewEntity instantiates an entity with its primary key (the enhancer's
// constructor path).
func (d *EntityDef) NewEntity(id int64) *Entity {
	e := &Entity{Def: d, vals: make([]h2.Value, len(d.all))}
	for i := range e.vals {
		e.vals[i] = h2.Null
	}
	e.vals[0] = h2.IntV(id)
	e.SM.New = true
	e.SM.Dirty = 1
	return e
}

// ID returns the primary key.
func (e *Entity) ID() int64 { return e.vals[0].I }

func (e *Entity) fieldIdx(name string) int {
	i, ok := e.Def.FieldIndex(name)
	if !ok {
		panic(fmt.Sprintf("jpa: %s has no field %q", e.Def.Name, name))
	}
	return i
}

// get reads a field value through the dedup indirection if active.
func (e *Entity) get(i int) h2.Value {
	if e.SM.Shadow != nil {
		if v, ok := e.SM.Shadow[i]; ok {
			return v
		}
	}
	if e.SM.ReadThrough != nil {
		return e.SM.ReadThrough(i)
	}
	return e.vals[i]
}

// set writes a field value, maintaining the dirty bitmap. After data
// deduplication the write is copy-on-write: it lands in a shadow slot so
// the persisted copy stays intact until commit (paper §5).
func (e *Entity) set(i int, v h2.Value) {
	if e.SM.ReadThrough != nil {
		if e.SM.Shadow == nil {
			e.SM.Shadow = make(map[int]h2.Value)
		}
		e.SM.Shadow[i] = v
	} else {
		e.vals[i] = v
	}
	e.SM.Dirty |= 1 << uint(i)
}

// SetInt stores an integer field.
func (e *Entity) SetInt(name string, v int64) { e.set(e.fieldIdx(name), h2.IntV(v)) }

// SetStr stores a string field.
func (e *Entity) SetStr(name string, v string) { e.set(e.fieldIdx(name), h2.StrV(v)) }

// SetFloat stores a float field.
func (e *Entity) SetFloat(name string, v float64) { e.set(e.fieldIdx(name), h2.FloatV(v)) }

// GetInt reads an integer field.
func (e *Entity) GetInt(name string) int64 {
	v := e.get(e.fieldIdx(name))
	if v.Kind == h2.KFloat {
		return int64(v.F)
	}
	return v.I
}

// GetStr reads a string field.
func (e *Entity) GetStr(name string) string { return e.get(e.fieldIdx(name)).S }

// GetFloat reads a float field.
func (e *Entity) GetFloat(name string) float64 {
	v := e.get(e.fieldIdx(name))
	if v.Kind == h2.KInt {
		return math.Float64frombits(uint64(v.I))
	}
	return v.F
}

// Value reads flattened field i as a database value.
func (e *Entity) Value(i int) h2.Value { return e.get(i) }

// SetValueAt is the resolved-index write: callers that looked an index
// up once with EntityDef.FieldIndex skip the per-access name map, the
// way enhanced bytecode addresses fields by slot. It maintains the
// dirty bitmap and copy-on-write shadowing exactly like the named
// accessors; Value is its read counterpart.
func (e *Entity) SetValueAt(i int, v h2.Value) { e.set(i, v) }

// EntityManager is the persistence contract of the paper's Figure 3:
// transaction demarcation plus persist/find/remove. Both the JPA provider
// (SQL transformation) and the PJO provider (DBPersistable shipping)
// implement it, which is what lets JPAB drive either.
type EntityManager interface {
	// Begin starts a transaction (em.getTransaction().begin()).
	Begin()
	// Persist adds an entity to the persistence context (em.persist(p)).
	Persist(e *Entity) error
	// Find loads an entity by primary key.
	Find(def *EntityDef, id int64) (*Entity, error)
	// Remove deletes a managed entity.
	Remove(e *Entity) error
	// Commit flushes every dirty managed entity to the backend and ends
	// the transaction (em.getTransaction().commit()).
	Commit() error
	// EnsureSchema prepares backing storage for an entity class.
	EnsureSchema(def *EntityDef) error
}

var _ sql.Statement = (*sql.Insert)(nil) // package sql is part of this layer's contract
