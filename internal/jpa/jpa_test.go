package jpa

import (
	"strings"
	"testing"

	"espresso/internal/h2"
	"espresso/internal/nvm"
)

func provider(t *testing.T) *Provider {
	t.Helper()
	db, err := h2.New(16<<20, nvm.Direct)
	if err != nil {
		t.Fatal(err)
	}
	return NewProvider(db)
}

func personDef(t *testing.T) *EntityDef {
	t.Helper()
	d, err := NewEntityDef("TPerson", nil,
		FieldDef{Name: "name", Kind: FStr},
		FieldDef{Name: "score", Kind: FFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEntityDefLayout(t *testing.T) {
	p := personDef(t)
	if i, ok := p.FieldIndex("id"); !ok || i != 0 {
		t.Fatalf("implicit id at %d %v", i, ok)
	}
	e, err := NewEntityDef("TEmployee", p, FieldDef{Name: "salary", Kind: FInt})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.AllFields()) != 4 {
		t.Fatalf("flattened fields = %d", len(e.AllFields()))
	}
	if i, _ := e.FieldIndex("name"); i != 1 {
		t.Fatalf("inherited field index %d", i)
	}
	if _, err := NewEntityDef("Bad", p, FieldDef{Name: "name", Kind: FInt}); err == nil {
		t.Fatal("duplicate field accepted")
	}
	ddl := e.CreateTableSQL()
	if !strings.Contains(ddl, "id BIGINT PRIMARY KEY") || !strings.Contains(ddl, "salary BIGINT") {
		t.Fatalf("DDL = %s", ddl)
	}
}

func TestDirtyBitmapTracking(t *testing.T) {
	p := personDef(t)
	e := p.NewEntity(1)
	if e.SM.Dirty != 1 { // id
		t.Fatalf("fresh dirty = %b", e.SM.Dirty)
	}
	e.SetStr("name", "x")
	if e.SM.Dirty&(1<<1) == 0 {
		t.Fatal("name store did not mark dirty")
	}
	e.SetFloat("score", 5)
	if e.SM.Dirty != 0b111 {
		t.Fatalf("dirty = %b", e.SM.Dirty)
	}
}

func TestProviderCRUDAndSQLGeneration(t *testing.T) {
	pr := provider(t)
	def := personDef(t)
	if err := pr.EnsureSchema(def); err != nil {
		t.Fatal(err)
	}
	pr.Begin()
	e := def.NewEntity(5)
	e.SetStr("name", "O'Brien") // exercises quoting
	e.SetFloat("score", 1.5)
	if err := pr.Persist(e); err != nil {
		t.Fatal(err)
	}
	if err := pr.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := pr.Find(def, 5)
	if err != nil || got == nil {
		t.Fatalf("find: %v %v", got, err)
	}
	if got.GetStr("name") != "O'Brien" || got.GetFloat("score") != 1.5 {
		t.Fatalf("row: %q %v", got.GetStr("name"), got.GetFloat("score"))
	}
	// Update only dirty fields.
	pr.Begin()
	got.SetFloat("score", 2.5)
	pr.Persist(got)
	if err := pr.Commit(); err != nil {
		t.Fatal(err)
	}
	again, _ := pr.Find(def, 5)
	if again.GetFloat("score") != 2.5 || again.GetStr("name") != "O'Brien" {
		t.Fatalf("update: %v %q", again.GetFloat("score"), again.GetStr("name"))
	}
	// Remove.
	pr.Begin()
	pr.Remove(again)
	if err := pr.Commit(); err != nil {
		t.Fatal(err)
	}
	if gone, _ := pr.Find(def, 5); gone != nil {
		t.Fatal("remove failed")
	}
	// Missing entity resolves to nil, no error.
	if none, err := pr.Find(def, 404); err != nil || none != nil {
		t.Fatalf("missing: %v %v", none, err)
	}
}

func TestPersistOutsideTransactionRejected(t *testing.T) {
	pr := provider(t)
	def := personDef(t)
	pr.EnsureSchema(def)
	if err := pr.Persist(def.NewEntity(1)); err == nil {
		t.Fatal("persist outside tx accepted")
	}
	if err := pr.Commit(); err == nil {
		t.Fatal("commit outside tx accepted")
	}
}
