package faultdev

import (
	"errors"
	"fmt"
	"testing"

	"espresso/internal/nvm"
)

func trackedDev(t *testing.T, size int) *nvm.Device {
	t.Helper()
	return nvm.New(nvm.Config{Size: size, Mode: nvm.Tracked})
}

func TestBitFlipCorruptsBothViews(t *testing.T) {
	dev := trackedDev(t, 4096)
	dev.WriteU64(128, 0xAAAA)
	dev.Flush(128, 8)
	dev.Fence()
	in := Install(dev, Plan{Kind: BitFlip, Off: 128, Bit: 0})
	if got := dev.ReadU64(128); got != 0xAAAB {
		t.Fatalf("memory view after flip: %#x, want %#x", got, 0xAAAB)
	}
	img := dev.CrashImage(nvm.CrashFlushedOnly, 0)
	dev2 := nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})
	if got := dev2.ReadU64(128); got != 0xAAAB {
		t.Fatalf("persisted view after flip: %#x, want %#x (rot must not be masked by a crash)", got, 0xAAAB)
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", in.Fired())
	}
}

func TestReadErrorBudgetHeals(t *testing.T) {
	dev := trackedDev(t, 4096)
	dev.WriteU64(256, 42)
	in := Install(dev, Plan{Kind: ReadError, Off: 256, N: 8, Budget: 2})
	defer in.Remove()
	for i := 0; i < 2; i++ {
		err := nvm.CatchMedia(func() error {
			dev.ReadU64(256)
			return nil
		})
		var me *nvm.MediaError
		if !errors.As(err, &me) {
			t.Fatalf("read %d: err = %v, want *nvm.MediaError", i, err)
		}
	}
	if err := nvm.CatchMedia(func() error {
		if got := dev.ReadU64(256); got != 42 {
			return fmt.Errorf("healed read = %d, want 42", got)
		}
		return nil
	}); err != nil {
		t.Fatalf("after budget drained: %v", err)
	}
	if in.Fired() != 2 {
		t.Fatalf("Fired() = %d, want 2", in.Fired())
	}
	// Reads outside the planned range never fault.
	if got := dev.ReadU64(512); got != 0 {
		t.Fatalf("unrelated read = %d", got)
	}
}

func TestReadErrorZeroBudgetNeverHeals(t *testing.T) {
	dev := trackedDev(t, 4096)
	in := Install(dev, Plan{Kind: ReadError, Off: 0, N: 8})
	defer in.Remove()
	for i := 0; i < 5; i++ {
		if err := nvm.CatchMedia(func() error { dev.ReadU64(0); return nil }); err == nil {
			t.Fatalf("read %d succeeded; budget 0 must be hard rot", i)
		}
	}
}

func TestDroppedFlushByRange(t *testing.T) {
	dev := trackedDev(t, 4096)
	dev.WriteU64(0, 1)
	dev.Flush(0, 8)
	dev.Fence()
	before := dev.Stats()
	in := Install(dev, Plan{Kind: DroppedFlush, Off: 0, N: 8})
	dev.WriteU64(0, 2)
	dev.WriteU64(nvm.LineSize, 3)
	dev.Flush(0, 8)            // dropped: overlaps the plan range
	dev.Flush(nvm.LineSize, 8) // honest: outside it
	dev.Fence()
	in.Remove()
	delta := dev.Stats().Sub(before)
	if delta.Flushes != 2 || delta.FlushedLines != 2 {
		t.Fatalf("dropped flush altered accounting: %+v (must be invisible until crash)", delta)
	}
	img := nvm.FromImage(dev.CrashImage(nvm.CrashFlushedOnly, 0), nvm.Config{Mode: nvm.Tracked})
	if got := img.ReadU64(0); got != 1 {
		t.Fatalf("dropped line persisted %d, want old value 1", got)
	}
	if got := img.ReadU64(nvm.LineSize); got != 3 {
		t.Fatalf("honest line persisted %d, want 3", got)
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", in.Fired())
	}
}

func TestDroppedFlushByIndex(t *testing.T) {
	dev := trackedDev(t, 4096)
	in := Install(dev, Plan{Kind: DroppedFlush, FlushIndex: 2})
	dev.WriteU64(0, 1)
	dev.Flush(0, 8) // 1st after install: honest
	dev.WriteU64(nvm.LineSize, 2)
	dev.Flush(nvm.LineSize, 8) // 2nd: dropped
	dev.Fence()
	in.Remove()
	img := nvm.FromImage(dev.CrashImage(nvm.CrashFlushedOnly, 0), nvm.Config{Mode: nvm.Tracked})
	if got := img.ReadU64(0); got != 1 {
		t.Fatalf("first flush persisted %d, want 1", got)
	}
	if got := img.ReadU64(nvm.LineSize); got != 0 {
		t.Fatalf("second (dropped) flush persisted %d, want 0", got)
	}
}

func TestTornLineCrashImage(t *testing.T) {
	dev := trackedDev(t, 4096)
	// Persist an old line, then overwrite it without flushing: the torn
	// image must splice Keep new bytes onto the old persisted remainder.
	for i := 0; i < nvm.LineSize; i += 8 {
		dev.WriteU64(i, 0x0101010101010101)
	}
	dev.FlushAll()
	for i := 0; i < nvm.LineSize; i += 8 {
		dev.WriteU64(i, 0x0202020202020202)
	}
	in := Install(dev, Plan{Kind: TornLine, Off: 0, Keep: 8})
	img := nvm.FromImage(in.CrashImage(nvm.CrashFlushedOnly, 0), nvm.Config{Mode: nvm.Tracked})
	if got := img.ReadU64(0); got != 0x0202020202020202 {
		t.Fatalf("kept prefix = %#x, want new bytes", got)
	}
	if got := img.ReadU64(8); got != 0x0101010101010101 {
		t.Fatalf("torn remainder = %#x, want old bytes", got)
	}
	if in.Fired() != 1 {
		t.Fatalf("Fired() = %d, want 1", in.Fired())
	}
}

func TestPassthroughLeavesCountersIdentical(t *testing.T) {
	workload := func(hook bool) nvm.Stats {
		dev := trackedDev(t, 1<<16)
		if hook {
			defer Passthrough(dev).Remove()
		}
		for i := 0; i < 100; i++ {
			off := (i * 72) % (1<<16 - 8)
			dev.WriteU64(off, uint64(i))
			dev.Flush(off, 8)
			dev.ReadU64(off)
		}
		dev.Fence()
		return dev.Stats()
	}
	bare, hooked := workload(false), workload(true)
	if bare != hooked {
		t.Fatalf("passthrough hooks changed counters:\nbare   %+v\nhooked %+v", bare, hooked)
	}
}

func TestImageCorruptors(t *testing.T) {
	img := make([]byte, 4*nvm.LineSize)
	FlipBitInImage(img, 10, 3)
	if img[10] != 1<<3 {
		t.Fatalf("FlipBitInImage: byte = %#x", img[10])
	}
	a := make([]byte, 4*nvm.LineSize)
	b := make([]byte, 4*nvm.LineSize)
	CorruptLineInImage(a, nvm.LineSize+5, 7)
	CorruptLineInImage(b, nvm.LineSize+40, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("CorruptLineInImage is not deterministic per (line, seed)")
		}
	}
	for i := 0; i < nvm.LineSize; i++ {
		if a[i] != 0 || a[2*nvm.LineSize+i] != 0 {
			t.Fatal("CorruptLineInImage leaked outside its line")
		}
	}
}

func TestKitRunRecoversInjectedCrash(t *testing.T) {
	dev := trackedDev(t, 4096)
	CrashIn(dev, 2)
	crashed, err := Run(dev, func() error {
		for i := 0; i < 10; i++ {
			dev.WriteU64(0, uint64(i))
			dev.Flush(0, 8)
		}
		return nil
	})
	if err != nil || !crashed {
		t.Fatalf("crashed=%v err=%v, want crashed with nil error", crashed, err)
	}
	// The hook is disarmed: further flushes run clean.
	dev.Flush(0, 8)
}

func TestKitRunPassesThroughRealFailures(t *testing.T) {
	dev := trackedDev(t, 4096)
	CrashAtFlush(dev, 1000)
	crashed, err := Run(dev, func() error { return errors.New("real failure") })
	if crashed || err == nil {
		t.Fatalf("crashed=%v err=%v, want a real error with no crash", crashed, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("genuine panic was swallowed")
		}
	}()
	Run(dev, func() error { panic("genuine") })
}

func TestKitIsCrashError(t *testing.T) {
	if !IsCrashError(fmt.Errorf("shard 2: %v", Crash{Flush: 7})) {
		t.Fatal("converted crash not recognized")
	}
	if IsCrashError(errors.New("disk full")) {
		t.Fatal("ordinary error misread as injected crash")
	}
	if IsCrashError(nil) {
		t.Fatal("nil error misread as injected crash")
	}
}

func TestKitCrashWhen(t *testing.T) {
	dev := trackedDev(t, 4096)
	armed := false
	CrashWhen(dev, 2, func() bool { return armed })
	crashed, err := Run(dev, func() error {
		for i := 0; i < 5; i++ { // before the condition: no crash
			dev.Flush(0, 8)
		}
		armed = true
		for i := 0; i < 5; i++ {
			dev.Flush(0, 8)
		}
		return errors.New("ran past the armed crash")
	})
	if err != nil || !crashed {
		t.Fatalf("crashed=%v err=%v, want crash two flushes after arming", crashed, err)
	}
}

func TestKitSweepDoubling(t *testing.T) {
	var boundaries []uint64
	err := SweepDoubling(func(k uint64) (bool, error) {
		boundaries = append(boundaries, k)
		return k < 8, nil // crashes until the workload fits under k=8
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 4, 8}
	if len(boundaries) != len(want) {
		t.Fatalf("visited %v, want %v", boundaries, want)
	}
	for i := range want {
		if boundaries[i] != want[i] {
			t.Fatalf("visited %v, want %v", boundaries, want)
		}
	}
	wantErr := errors.New("verify failed")
	if err := SweepDoubling(func(k uint64) (bool, error) { return false, wantErr }); err != wantErr {
		t.Fatalf("sweep error = %v, want passthrough", err)
	}
}
