// Package faultdev injects deterministic media faults into an
// nvm.Device and provides the shared crash-sweep kit the crash suites
// are built on.
//
// The fault model extends the simulator's crash-stop semantics with the
// failure classes real NVM adds on top of "a line either persisted or
// didn't":
//
//   - TornLine: power loss cuts a line's writeback mid-transfer, so a
//     crash image holds a half-new, half-old line (8-byte atomicity
//     only, as on real NVDIMMs);
//   - BitFlip: in-place media rot — a bit differs in both the memory
//     and persisted views, with no volatile state masking it;
//   - ReadError: an uncorrectable (but possibly transient) read error
//     over a byte range, surfaced as an *nvm.MediaError panic, with an
//     error budget after which the range reads clean again;
//   - DroppedFlush: a flush acknowledged by the CPU but lost in the
//     memory controller's queue — counters advance normally, the lines
//     silently never persist.
//
// Every plan is deterministic: the same plan against the same workload
// produces the same fault, so failures reproduce from their seed.
package faultdev

import (
	"math/rand"
	"sync/atomic"

	"espresso/internal/nvm"
)

// Kind selects a fault class.
type Kind int

const (
	// BitFlip flips bit Bit of the byte at Off immediately on Install.
	BitFlip Kind = iota
	// ReadError fails reads overlapping [Off, Off+N) with a media error
	// until Budget failures have been delivered; the range then reads
	// clean (a transient error), or forever if Budget is 0 (hard rot).
	ReadError
	// DroppedFlush silently drops the writeback of the FlushIndex-th
	// flush issued after Install (1-based). FlushIndex 0 drops every
	// flush that covers [Off, Off+N).
	DroppedFlush
	// TornLine does nothing while running; at CrashImage time the line
	// containing Off is torn, persisting only its first Keep bytes of
	// the newest stores.
	TornLine
)

// String names the fault class the way the experiment tables do.
func (k Kind) String() string {
	switch k {
	case BitFlip:
		return "bit-flip"
	case ReadError:
		return "read-error"
	case DroppedFlush:
		return "dropped-flush"
	case TornLine:
		return "torn-line"
	}
	return "unknown"
}

// Plan describes one deterministic fault.
type Plan struct {
	Kind Kind
	Off  int // target byte offset (all kinds)
	N    int // range length (ReadError, DroppedFlush with FlushIndex 0)

	Bit        uint   // BitFlip: which bit of the byte at Off
	Budget     int    // ReadError: failures delivered before healing; 0 = never heals
	FlushIndex uint64 // DroppedFlush: which flush after Install (1-based); 0 = match by range
	Keep       int    // TornLine: new bytes persisted from the line's start
}

// Injector is an installed Plan. Remove it before installing another on
// the same device; hooks are not stacked.
type Injector struct {
	dev   *nvm.Device
	plan  Plan
	base  uint64       // flush count at install (DroppedFlush)
	fired atomic.Int64 // times the fault has been delivered
}

// Install arms plan on dev and returns the injector. BitFlip corrupts
// immediately; the other kinds arm hooks (or, for TornLine, only affect
// a later Injector.CrashImage call).
func Install(dev *nvm.Device, plan Plan) *Injector {
	in := &Injector{dev: dev, plan: plan, base: dev.Stats().Flushes}
	switch plan.Kind {
	case BitFlip:
		dev.CorruptBit(plan.Off, plan.Bit)
		in.fired.Add(1)
	case ReadError:
		dev.SetReadFault(func(off, n int) bool {
			if off >= plan.Off+plan.N || off+n <= plan.Off {
				return false
			}
			if plan.Budget > 0 && in.fired.Load() >= int64(plan.Budget) {
				return false
			}
			in.fired.Add(1)
			return true
		})
	case DroppedFlush:
		dev.SetFlushFault(func(off, n int, count uint64) bool {
			if plan.FlushIndex != 0 {
				if count != in.base+plan.FlushIndex {
					return false
				}
			} else if off >= plan.Off+plan.N || off+n <= plan.Off {
				return false
			}
			in.fired.Add(1)
			return true
		})
	case TornLine:
		// Delivered by CrashImage below.
	default:
		panic("faultdev: unknown fault kind")
	}
	return in
}

// Passthrough installs read and flush hooks that always decline — the
// zero-fault injector the overhead contract measures against: with it
// attached, every device counter must stay bit-identical to an
// unhooked run.
func Passthrough(dev *nvm.Device) *Injector {
	in := &Injector{dev: dev}
	dev.SetReadFault(func(off, n int) bool { return false })
	dev.SetFlushFault(func(off, n int, count uint64) bool { return false })
	return in
}

// Fired reports how many times the fault has been delivered.
func (in *Injector) Fired() int { return int(in.fired.Load()) }

// Remove disarms the injector's hooks. BitFlip damage stays — rot does
// not heal on its own.
func (in *Injector) Remove() {
	in.dev.SetReadFault(nil)
	in.dev.SetFlushFault(nil)
}

// CrashImage takes a crash image through the plan's crash-time
// transform: for TornLine the target line is torn at Keep bytes; other
// kinds delegate to the device unchanged.
func (in *Injector) CrashImage(policy nvm.CrashPolicy, seed int64) []byte {
	if in.plan.Kind == TornLine {
		in.fired.Add(1)
		return in.dev.CrashImageTorn(policy, seed, in.plan.Off, in.plan.Keep)
	}
	return in.dev.CrashImage(policy, seed)
}

// FlipBitInImage flips one bit of a raw crash image in place — the
// offline (image-at-rest) form of BitFlip, for corrupting golden images
// without a device.
func FlipBitInImage(img []byte, off int, bit uint) {
	img[off] ^= 1 << (bit % 8)
}

// CorruptLineInImage overwrites the cache line containing off with
// seed-deterministic garbage — a whole line gone bad at rest.
func CorruptLineInImage(img []byte, off int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	lo := off / nvm.LineSize * nvm.LineSize
	hi := lo + nvm.LineSize
	if hi > len(img) {
		hi = len(img)
	}
	for i := lo; i < hi; i++ {
		img[i] = byte(rng.Intn(256))
	}
}
