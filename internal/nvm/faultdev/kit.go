package faultdev

import (
	"strings"

	"espresso/internal/nvm"
)

// This file is the shared crash-sweep kit. Before it existed, every
// crash suite (pheap, pgc, pindex, pshard) re-implemented the same
// dance: install a flush hook that panics at a chosen boundary, run the
// workload under an inline defer/recover that distinguishes the
// injected panic from a real one, clear the hook, take a crash image,
// reboot, verify. The kit owns the dance; suites own only the workload,
// the boundary schedule, and the verification.

// crashMarker is the distinguished prefix of an injected crash. It also
// survives conversion to an error by panic-containment layers (pshard
// wraps worker panics into per-shard errors), so IsCrashError can
// recognize an injected crash that crossed such a boundary.
const crashMarker = "faultdev: injected crash"

// Crash is the panic payload of an injected crash.
type Crash struct {
	Flush uint64 // the flush count at which the crash fired
}

func (c Crash) String() string {
	return crashMarker
}

// CrashAtFlush arms dev to crash (panic with Crash) when its running
// flush count reaches n. Replaces any previously armed crash.
func CrashAtFlush(dev *nvm.Device, n uint64) {
	dev.SetFlushHook(func(count uint64) {
		if count == n {
			panic(Crash{Flush: count})
		}
	})
}

// CrashIn arms dev to crash k flushes from now (k >= 1).
func CrashIn(dev *nvm.Device, k uint64) {
	CrashAtFlush(dev, dev.Stats().Flushes+k)
}

// CrashWhen arms dev to crash k flushes after cond first reports true.
// cond is evaluated once per flush until it fires; the crash then lands
// k flushes later (k = 0 crashes on the triggering flush itself). Use
// it to target a window that only opens mid-run, e.g. "8 flushes after
// the GC phase word goes active".
func CrashWhen(dev *nvm.Device, k uint64, cond func() bool) {
	var armedAt uint64
	dev.SetFlushHook(func(count uint64) {
		if armedAt == 0 {
			if !cond() {
				return
			}
			armedAt = count
		}
		if count >= armedAt+k {
			panic(Crash{Flush: count})
		}
	})
}

// Run executes fn with a crash armed on dev, recovers an injected
// Crash, and disarms the hook before returning. crashed reports whether
// the injected crash fired — either as a recovered Crash panic or as an
// error fn returned after a containment layer converted the panic (see
// IsCrashError). Genuine panics propagate; genuine errors return as
// err with crashed == false.
func Run(dev *nvm.Device, fn func() error) (crashed bool, err error) {
	defer dev.SetFlushHook(nil)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(Crash); ok {
				crashed = true
				err = nil
				return
			}
			panic(r)
		}
	}()
	err = fn()
	if IsCrashError(err) {
		return true, nil
	}
	return false, err
}

// IsCrashError reports whether err carries an injected crash that was
// converted to an error by a panic-containment layer.
func IsCrashError(err error) bool {
	return err != nil && strings.Contains(err.Error(), crashMarker)
}

// SweepDoubling drives run at geometrically spaced crash boundaries
// k = 1, 2, 4, ... until a run completes without crashing, and returns
// the first error. run receives the boundary and reports whether the
// injected crash fired; its own arming (CrashIn/CrashAtFlush) decides
// what the boundary counts from. Geometric spacing keeps long workloads
// sweepable: every protocol window is crossed without visiting every
// flush.
func SweepDoubling(run func(k uint64) (crashed bool, err error)) error {
	for k := uint64(1); ; k *= 2 {
		crashed, err := run(k)
		if err != nil {
			return err
		}
		if !crashed {
			return nil
		}
	}
}
