package nvm

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTripAccessors(t *testing.T) {
	d := New(Config{Size: 4096, Mode: Tracked})
	d.WriteU64(0, 0xdeadbeefcafebabe)
	if got := d.ReadU64(0); got != 0xdeadbeefcafebabe {
		t.Fatalf("ReadU64 = %#x", got)
	}
	d.WriteU32(16, 0x12345678)
	if got := d.ReadU32(16); got != 0x12345678 {
		t.Fatalf("ReadU32 = %#x", got)
	}
	d.WriteU16(24, 0xbeef)
	if got := d.ReadU16(24); got != 0xbeef {
		t.Fatalf("ReadU16 = %#x", got)
	}
	d.WriteByteAt(30, 0x7f)
	if got := d.ReadByteAt(30); got != 0x7f {
		t.Fatalf("ReadByteAt = %#x", got)
	}
	p := []byte("persistent java heap")
	d.WriteBytes(100, p)
	q := make([]byte, len(p))
	d.ReadBytes(100, q)
	if !bytes.Equal(p, q) {
		t.Fatalf("ReadBytes = %q", q)
	}
}

func TestSizeRoundedToLine(t *testing.T) {
	d := New(Config{Size: 100})
	if d.Size() != 128 {
		t.Fatalf("size = %d, want 128", d.Size())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := New(Config{Size: 128})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	d.WriteU64(128-4, 1)
}

func TestUnflushedDataDoesNotSurviveCrash(t *testing.T) {
	d := New(Config{Size: 1024, Mode: Tracked})
	d.WriteU64(0, 111)
	d.Flush(0, 8)
	d.Fence()
	d.WriteU64(64, 222) // never flushed

	img := d.CrashImage(CrashFlushedOnly, 0)
	re := FromImage(img, Config{Size: 1024, Mode: Tracked})
	if got := re.ReadU64(0); got != 111 {
		t.Fatalf("flushed word lost: %d", got)
	}
	if got := re.ReadU64(64); got != 0 {
		t.Fatalf("unflushed word survived CrashFlushedOnly: %d", got)
	}
}

func TestCrashAllDirtyKeepsEverything(t *testing.T) {
	d := New(Config{Size: 1024, Mode: Tracked})
	d.WriteU64(0, 111)
	d.WriteU64(512, 222)
	img := d.CrashImage(CrashAllDirty, 0)
	re := FromImage(img, Config{Size: 1024})
	if re.ReadU64(0) != 111 || re.ReadU64(512) != 222 {
		t.Fatal("dirty lines should all survive CrashAllDirty")
	}
}

func TestCrashRandomEvictionIsLineGranular(t *testing.T) {
	// Two words on the same line either both survive or both vanish;
	// words on distinct lines may differ.
	for seed := int64(0); seed < 32; seed++ {
		d := New(Config{Size: 1024, Mode: Tracked})
		d.WriteU64(0, 1)
		d.WriteU64(8, 2) // same line as offset 0
		img := d.CrashImage(CrashRandomEviction, seed)
		a, b := le64(img, 0), le64(img, 8)
		if (a == 0) != (b == 0) {
			t.Fatalf("seed %d: same-line words diverged: %d %d", seed, a, b)
		}
	}
}

func le64(b []byte, off int) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[off+i])
	}
	return v
}

func TestFlushClearsDirtyBits(t *testing.T) {
	d := New(Config{Size: 1024, Mode: Tracked})
	d.WriteU64(0, 1)
	d.WriteU64(128, 2)
	if got := d.DirtyLines(); got != 2 {
		t.Fatalf("dirty lines = %d, want 2", got)
	}
	d.Flush(0, 8)
	if got := d.DirtyLines(); got != 1 {
		t.Fatalf("dirty lines after flush = %d, want 1", got)
	}
	d.FlushAll()
	if got := d.DirtyLines(); got != 0 {
		t.Fatalf("dirty lines after FlushAll = %d, want 0", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	d := New(Config{Size: 1024, WriteLatency: 100 * time.Nanosecond})
	d.WriteU64(0, 1)
	d.WriteBytes(64, make([]byte, 128))
	d.Flush(0, 8) // 1 line
	d.Flush(64, 128)
	d.Fence()
	s := d.Stats()
	if s.Writes != 2 || s.BytesWritten != 8+128 {
		t.Fatalf("writes = %d bytes = %d", s.Writes, s.BytesWritten)
	}
	if s.Flushes != 2 || s.FlushedLines != 3 {
		t.Fatalf("flushes = %d lines = %d, want 2/3", s.Flushes, s.FlushedLines)
	}
	if s.Fences != 1 {
		t.Fatalf("fences = %d", s.Fences)
	}
	if s.ModeledFlushTime() != 300*time.Nanosecond {
		t.Fatalf("modeled flush time = %v", s.ModeledFlushTime())
	}
	prev := s
	d.WriteU64(0, 2)
	if diff := d.Stats().Sub(prev); diff.Writes != 1 || diff.Flushes != 0 {
		t.Fatalf("Sub = %+v", diff)
	}
}

func TestNoFlushModeSkipsWriteback(t *testing.T) {
	d := New(Config{Size: 1024, Mode: Tracked})
	d.SetNoFlush(true)
	d.WriteU64(0, 42)
	d.Flush(0, 8)
	s := d.Stats()
	if s.Flushes != 1 || s.FlushedLines != 0 {
		t.Fatalf("noflush stats = %+v", s)
	}
	img := d.CrashImage(CrashFlushedOnly, 0)
	if le64(img, 0) != 0 {
		t.Fatal("noflush mode must not persist data")
	}
}

func TestMoveOverlap(t *testing.T) {
	d := New(Config{Size: 1024})
	for i := 0; i < 16; i++ {
		d.WriteByteAt(100+i, byte(i))
	}
	d.Move(96, 100, 16) // overlapping, dst < src
	for i := 0; i < 16; i++ {
		if got := d.ReadByteAt(96 + i); got != byte(i) {
			t.Fatalf("overlap move byte %d = %d", i, got)
		}
	}
}

func TestFlushHook(t *testing.T) {
	d := New(Config{Size: 1024, Mode: Tracked})
	var seen []uint64
	d.SetFlushHook(func(n uint64) { seen = append(seen, n) })
	d.Flush(0, 8)
	d.Flush(0, 8)
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("hook counts = %v", seen)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "heap.img")
	d := New(Config{Size: 2048, Mode: Tracked})
	d.WriteU64(0, 77)
	d.Flush(0, 8)
	d.WriteU64(8, 88) // unflushed: must not reach the file
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	re, err := LoadFile(path, Config{Mode: Tracked})
	if err != nil {
		t.Fatal(err)
	}
	if re.Size() != 2048 {
		t.Fatalf("reloaded size = %d", re.Size())
	}
	if re.ReadU64(0) != 77 || re.ReadU64(8) != 0 {
		t.Fatalf("reloaded contents = %d %d", re.ReadU64(0), re.ReadU64(8))
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bogus.img")
	if err := os.WriteFile(path, []byte("not an image at all........"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, Config{}); err == nil {
		t.Fatal("expected error loading garbage file")
	}
}

// Property: after any sequence of writes and flushes, the persisted view of
// a flushed region equals the memory view, and a CrashFlushedOnly image of
// a never-written region is zero.
func TestQuickPersistedMatchesFlushed(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		d := New(Config{Size: 4096, Mode: Tracked})
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			off := int(op) % (4096 - 8)
			switch rng.Intn(3) {
			case 0:
				d.WriteU64(off, rng.Uint64())
			case 1:
				d.Flush(off, 8)
			case 2:
				d.Fence()
			}
		}
		d.FlushAll()
		img := d.CrashImage(CrashFlushedOnly, 0)
		for off := 0; off+8 <= 4096; off += 8 {
			if le64(img, off) != d.ReadU64(off) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentDisjointLineTraffic pins the device's concurrency
// contract: writers and flushers on disjoint cache lines (the PLAB
// discipline) are race-free, counters account every operation, and the
// dirty bitmap converges. Run it under -race.
func TestConcurrentDisjointLineTraffic(t *testing.T) {
	const goroutines = 8
	const perG = 200
	d := New(Config{Size: goroutines * perG * LineSize, Mode: Tracked})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := g * perG * LineSize
			for i := 0; i < perG; i++ {
				off := base + i*LineSize
				d.WriteU64(off, uint64(g)<<32|uint64(i))
				d.Flush(off, 8)
				d.Fence()
				_ = d.Stats() // concurrent snapshots must be safe
			}
		}(g)
	}
	wg.Wait()
	s := d.Stats()
	if want := uint64(goroutines * perG); s.Writes != want || s.Flushes != want || s.Fences != want {
		t.Fatalf("stats = %+v, want %d writes/flushes/fences", s, want)
	}
	if s.FlushedLines != uint64(goroutines*perG) {
		t.Fatalf("flushed lines = %d", s.FlushedLines)
	}
	if d.DirtyLines() != 0 {
		t.Fatalf("dirty lines = %d after flushing everything", d.DirtyLines())
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			if got := d.ReadU64((g*perG + i) * LineSize); got != uint64(g)<<32|uint64(i) {
				t.Fatalf("word %d/%d = %#x", g, i, got)
			}
		}
	}
}
