package nvm

import (
	"math/rand"
	"sync/atomic"
)

// CrashPolicy chooses what happens to dirty (written but unflushed) cache
// lines when the machine loses power.
type CrashPolicy int

const (
	// CrashFlushedOnly keeps only explicitly flushed data: no dirty line
	// survives. This is the adversarial case protocols are designed for.
	CrashFlushedOnly CrashPolicy = iota
	// CrashAllDirty pretends every dirty line happened to be evicted before
	// the crash. Protocols must also tolerate this (writes may persist
	// *early*), so tests sweep both extremes.
	CrashAllDirty
	// CrashRandomEviction persists an arbitrary subset of dirty lines,
	// chosen by the seed. This models real caches, where eviction order is
	// unconstrained; a correct protocol must survive every subset.
	CrashRandomEviction
)

// CrashImage returns the device contents as they would read after power
// loss under the given policy. The device must be in Tracked mode. The
// returned slice is a copy; build a new Device with FromImage to "reboot".
func (d *Device) CrashImage(policy CrashPolicy, seed int64) []byte {
	if d.mode != Tracked {
		panic("nvm: CrashImage requires Tracked mode")
	}
	img := make([]byte, d.size)
	copy(img, d.persisted)
	switch policy {
	case CrashFlushedOnly:
		// Nothing else survives.
	case CrashAllDirty:
		d.forEachDirtyLine(func(l int) {
			lo := l * LineSize
			copy(img[lo:lo+LineSize], d.mem[lo:lo+LineSize])
		})
	case CrashRandomEviction:
		rng := rand.New(rand.NewSource(seed))
		d.forEachDirtyLine(func(l int) {
			if rng.Intn(2) == 0 {
				lo := l * LineSize
				copy(img[lo:lo+LineSize], d.mem[lo:lo+LineSize])
			}
		})
	default:
		panic("nvm: unknown crash policy")
	}
	return img
}

// CrashImageTorn is CrashImage with one additional torn line: within the
// cache line containing off, the first keep bytes of the line read as
// the newest stores (the memory view) while the remainder reads as
// whatever the policy produced — modelling a line whose writeback was
// cut mid-transfer by power loss. Real NVDIMM failure-atomicity is only
// 8 bytes, not a line, so protocols that persist a {value, checksum}
// pair in one line must detect the half-written state; this is the
// primitive that manufactures it deterministically. keep is clamped to
// [0, LineSize].
func (d *Device) CrashImageTorn(policy CrashPolicy, seed int64, off, keep int) []byte {
	img := d.CrashImage(policy, seed)
	d.check(off, 1)
	if keep < 0 {
		keep = 0
	}
	if keep > LineSize {
		keep = LineSize
	}
	lo := off / LineSize * LineSize
	copy(img[lo:lo+keep], d.mem[lo:lo+keep])
	return img
}

func (d *Device) forEachDirtyLine(fn func(line int)) {
	for wi := range d.dirty {
		for w := atomic.LoadUint64(&d.dirty[wi]); w != 0; w &= w - 1 {
			bit := trailingZeros(w)
			fn(wi*64 + bit)
		}
	}
}

func trailingZeros(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}
