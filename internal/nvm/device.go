// Package nvm simulates a byte-addressable non-volatile memory device
// fronted by a volatile CPU cache, in the style of an NVDIMM reached
// through clflush/sfence.
//
// The device exposes two views of its contents:
//
//   - the memory view (what loads see): every store is immediately visible,
//     exactly like DRAM-backed caches in front of an NVDIMM;
//   - the persisted view (what survives power loss): a store reaches it only
//     after the covering cache line is flushed, or if the simulator decides
//     the line was evicted on its own.
//
// Crash-consistency protocols (flush-before-publish, undo logs, redo logs)
// are *ordering* disciplines, so a faithful reproduction only needs the
// line-granular distinction between the two views, not real hardware. The
// device also accounts flush/fence/byte traffic and can model the write
// latency of NVM media so benchmarks can report device-level cost next to
// wall-clock time.
package nvm

import (
	"encoding/binary"
	"fmt"
	"time"
)

// LineSize is the cache line size in bytes. Flush granularity, like
// clflush, is one line.
const LineSize = 64

// Mode selects how much bookkeeping the device performs.
type Mode int

const (
	// Direct keeps a single copy of the contents. Flushes and fences are
	// counted but there is no separate persisted view, so crash images are
	// unavailable. Use it for benchmarks.
	Direct Mode = iota
	// Tracked maintains the persisted shadow view and per-line dirty bits,
	// enabling CrashImage and crash-injection tests.
	Tracked
)

// Config describes a device.
type Config struct {
	// Size is the device capacity in bytes. It is rounded up to a multiple
	// of LineSize.
	Size int
	// Mode selects Direct (fast) or Tracked (crash-simulation) operation.
	Mode Mode
	// WriteLatency, if nonzero, is the modelled media latency charged per
	// flushed line. It accumulates in Stats.ModeledFlushTime; the device
	// never sleeps.
	WriteLatency time.Duration
}

// Stats is the device traffic accounting. Counters are maintained by the
// device on every access; callers snapshot them with Device.Stats.
type Stats struct {
	Writes         uint64 // store operations
	BytesWritten   uint64 // bytes stored
	Reads          uint64 // load operations
	BytesRead      uint64 // bytes loaded
	Flushes        uint64 // Flush calls
	FlushedLines   uint64 // distinct lines written back by Flush calls
	Fences         uint64 // Fence calls
	ModeledFlushNS uint64 // Config.WriteLatency × FlushedLines, in nanoseconds
}

// ModeledFlushTime converts the accumulated modelled latency to a Duration.
func (s Stats) ModeledFlushTime() time.Duration { return time.Duration(s.ModeledFlushNS) }

// Sub returns the difference s - prev, counter by counter. It is the usual
// way to account a measured interval.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Writes:         s.Writes - prev.Writes,
		BytesWritten:   s.BytesWritten - prev.BytesWritten,
		Reads:          s.Reads - prev.Reads,
		BytesRead:      s.BytesRead - prev.BytesRead,
		Flushes:        s.Flushes - prev.Flushes,
		FlushedLines:   s.FlushedLines - prev.FlushedLines,
		Fences:         s.Fences - prev.Fences,
		ModeledFlushNS: s.ModeledFlushNS - prev.ModeledFlushNS,
	}
}

// Device is a simulated NVM device. It is not safe for concurrent use;
// callers (the heap allocator, the garbage collector) serialize access,
// mirroring how the JVM serializes heap mutation under allocation locks
// and stop-the-world pauses.
type Device struct {
	size      int
	mode      Mode
	mem       []byte
	persisted []byte   // Tracked only: the power-loss view
	dirty     []uint64 // Tracked only: bitmap, one bit per line
	stats     Stats
	latNS     uint64

	// flushHook, if set, runs after every Flush with the running flush
	// count. Crash-injection tests use it to panic at a chosen boundary.
	flushHook func(flushCount uint64)
	noFlush   bool
}

// New creates a device of cfg.Size bytes, zero-filled (fresh NVM DIMMs and
// freshly created heap files read as zero).
func New(cfg Config) *Device {
	if cfg.Size <= 0 {
		panic("nvm: non-positive device size")
	}
	size := (cfg.Size + LineSize - 1) / LineSize * LineSize
	d := &Device{
		size:  size,
		mode:  cfg.Mode,
		mem:   make([]byte, size),
		latNS: uint64(cfg.WriteLatency.Nanoseconds()),
	}
	if cfg.Mode == Tracked {
		d.persisted = make([]byte, size)
		d.dirty = make([]uint64, (size/LineSize+63)/64)
	}
	return d
}

// FromImage creates a device whose memory and persisted views both equal
// img, as after a reboot from a crash image or a file load.
func FromImage(img []byte, cfg Config) *Device {
	cfg.Size = len(img)
	d := New(cfg)
	copy(d.mem, img)
	if d.mode == Tracked {
		copy(d.persisted, img)
	}
	return d
}

// Size reports the device capacity in bytes.
func (d *Device) Size() int { return d.size }

// Mode reports the device bookkeeping mode.
func (d *Device) Mode() Mode { return d.mode }

// SetFlushHook installs fn to run after every Flush call with the running
// flush count. Pass nil to remove the hook.
func (d *Device) SetFlushHook(fn func(flushCount uint64)) { d.flushHook = fn }

// SetNoFlush disables the effect of Flush and Fence (they are still
// counted). It models running the recoverable GC without clflush, the
// baseline of the paper's §6.4 pause-time experiment.
func (d *Device) SetNoFlush(v bool) { d.noFlush = v }

func (d *Device) check(off, n int) {
	if off < 0 || n < 0 || off+n > d.size {
		panic(fmt.Sprintf("nvm: access [%d,%d) outside device of %d bytes", off, off+n, d.size))
	}
}

func (d *Device) markDirty(off, n int) {
	if d.mode != Tracked || n == 0 {
		return
	}
	first := off / LineSize
	last := (off + n - 1) / LineSize
	for l := first; l <= last; l++ {
		d.dirty[l/64] |= 1 << (uint(l) % 64)
	}
}

// WriteU64 stores v at byte offset off, little-endian.
func (d *Device) WriteU64(off int, v uint64) {
	d.check(off, 8)
	binary.LittleEndian.PutUint64(d.mem[off:], v)
	d.stats.Writes++
	d.stats.BytesWritten += 8
	d.markDirty(off, 8)
}

// ReadU64 loads the little-endian uint64 at byte offset off.
func (d *Device) ReadU64(off int) uint64 {
	d.check(off, 8)
	d.stats.Reads++
	d.stats.BytesRead += 8
	return binary.LittleEndian.Uint64(d.mem[off:])
}

// WriteU32 stores v at byte offset off, little-endian.
func (d *Device) WriteU32(off int, v uint32) {
	d.check(off, 4)
	binary.LittleEndian.PutUint32(d.mem[off:], v)
	d.stats.Writes++
	d.stats.BytesWritten += 4
	d.markDirty(off, 4)
}

// ReadU32 loads the little-endian uint32 at byte offset off.
func (d *Device) ReadU32(off int) uint32 {
	d.check(off, 4)
	d.stats.Reads++
	d.stats.BytesRead += 4
	return binary.LittleEndian.Uint32(d.mem[off:])
}

// WriteU16 stores v at byte offset off, little-endian.
func (d *Device) WriteU16(off int, v uint16) {
	d.check(off, 2)
	binary.LittleEndian.PutUint16(d.mem[off:], v)
	d.stats.Writes++
	d.stats.BytesWritten += 2
	d.markDirty(off, 2)
}

// ReadU16 loads the little-endian uint16 at byte offset off.
func (d *Device) ReadU16(off int) uint16 {
	d.check(off, 2)
	d.stats.Reads++
	d.stats.BytesRead += 2
	return binary.LittleEndian.Uint16(d.mem[off:])
}

// WriteByte stores one byte at off.
func (d *Device) WriteByteAt(off int, v byte) {
	d.check(off, 1)
	d.mem[off] = v
	d.stats.Writes++
	d.stats.BytesWritten++
	d.markDirty(off, 1)
}

// ReadByteAt loads one byte at off.
func (d *Device) ReadByteAt(off int) byte {
	d.check(off, 1)
	d.stats.Reads++
	d.stats.BytesRead++
	return d.mem[off]
}

// WriteBytes stores p at off.
func (d *Device) WriteBytes(off int, p []byte) {
	d.check(off, len(p))
	copy(d.mem[off:], p)
	d.stats.Writes++
	d.stats.BytesWritten += uint64(len(p))
	d.markDirty(off, len(p))
}

// ReadBytes fills p from the memory view starting at off.
func (d *Device) ReadBytes(off int, p []byte) {
	d.check(off, len(p))
	copy(p, d.mem[off:])
	d.stats.Reads++
	d.stats.BytesRead += uint64(len(p))
}

// View returns a read-only window into the memory view. Mutating the
// returned slice bypasses accounting and dirty tracking; use the Write
// methods for stores. It exists for hot read paths (heap parsing, marking).
func (d *Device) View(off, n int) []byte {
	d.check(off, n)
	return d.mem[off : off+n : off+n]
}

// Move copies n bytes from src to dst within the device, with memmove
// overlap semantics. It is the GC's object-copy primitive.
func (d *Device) Move(dst, src, n int) {
	d.check(src, n)
	d.check(dst, n)
	copy(d.mem[dst:dst+n], d.mem[src:src+n])
	d.stats.Writes++
	d.stats.BytesWritten += uint64(n)
	d.stats.Reads++
	d.stats.BytesRead += uint64(n)
	d.markDirty(dst, n)
}

// Zero clears n bytes starting at off.
func (d *Device) Zero(off, n int) {
	d.check(off, n)
	clear(d.mem[off : off+n])
	d.stats.Writes++
	d.stats.BytesWritten += uint64(n)
	d.markDirty(off, n)
}

// Flush writes back the cache lines covering [off, off+n), like a run of
// clflush instructions. In Tracked mode the covered lines become part of
// the persisted view and their dirty bits clear.
func (d *Device) Flush(off, n int) {
	if n <= 0 {
		return
	}
	d.check(off, n)
	first := off / LineSize
	last := (off + n - 1) / LineSize
	lines := uint64(last - first + 1)
	d.stats.Flushes++
	if !d.noFlush {
		d.stats.FlushedLines += lines
		d.stats.ModeledFlushNS += lines * d.latNS
		if d.mode == Tracked {
			lo, hi := first*LineSize, (last+1)*LineSize
			copy(d.persisted[lo:hi], d.mem[lo:hi])
			for l := first; l <= last; l++ {
				d.dirty[l/64] &^= 1 << (uint(l) % 64)
			}
		}
	}
	if d.flushHook != nil {
		d.flushHook(d.stats.Flushes)
	}
}

// Range is a byte range [Off, Off+N) used by FlushBatch.
type Range struct{ Off, N int }

// FlushBatch writes back every range and issues a single trailing Fence —
// the coalesced-persist idiom: clflush each line once, sfence once.
// Callers are expected to pre-merge overlapping ranges (core's flush
// coalescer does); the device flushes exactly what it is handed.
func (d *Device) FlushBatch(ranges []Range) {
	for _, r := range ranges {
		d.Flush(r.Off, r.N)
	}
	d.Fence()
}

// Fence orders earlier flushes before later stores, like sfence. Flush is
// synchronous in this simulator, so Fence only accounts the instruction;
// protocols still call it wherever real hardware would need it so the
// counted cost is honest.
func (d *Device) Fence() { d.stats.Fences++ }

// FlushAll persists the entire device, like a shutdown msync.
func (d *Device) FlushAll() {
	if d.noFlush {
		d.stats.Flushes++
		return
	}
	d.Flush(0, d.size)
}

// Stats returns a snapshot of the traffic counters.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats zeroes the traffic counters.
func (d *Device) ResetStats() { d.stats = Stats{} }

// DirtyLines reports how many lines are modified but not yet persisted.
// It is zero in Direct mode.
func (d *Device) DirtyLines() int {
	n := 0
	for _, w := range d.dirty {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
