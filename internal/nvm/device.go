// Package nvm simulates a byte-addressable non-volatile memory device
// fronted by a volatile CPU cache, in the style of an NVDIMM reached
// through clflush/sfence.
//
// The device exposes two views of its contents:
//
//   - the memory view (what loads see): every store is immediately visible,
//     exactly like DRAM-backed caches in front of an NVDIMM;
//   - the persisted view (what survives power loss): a store reaches it only
//     after the covering cache line is flushed, or if the simulator decides
//     the line was evicted on its own.
//
// Crash-consistency protocols (flush-before-publish, undo logs, redo logs)
// are *ordering* disciplines, so a faithful reproduction only needs the
// line-granular distinction between the two views, not real hardware. The
// device also accounts flush/fence/byte traffic and can model the write
// latency of NVM media so benchmarks can report device-level cost next to
// wall-clock time.
package nvm

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

// LineSize is the cache line size in bytes. Flush granularity, like
// clflush, is one line.
const LineSize = 64

// Mode selects how much bookkeeping the device performs.
type Mode int

const (
	// Direct keeps a single copy of the contents. Flushes and fences are
	// counted but there is no separate persisted view, so crash images are
	// unavailable. Use it for benchmarks.
	Direct Mode = iota
	// Tracked maintains the persisted shadow view and per-line dirty bits,
	// enabling CrashImage and crash-injection tests.
	Tracked
)

// Config describes a device.
type Config struct {
	// Size is the device capacity in bytes. It is rounded up to a multiple
	// of LineSize.
	Size int
	// Mode selects Direct (fast) or Tracked (crash-simulation) operation.
	Mode Mode
	// WriteLatency, if nonzero, is the modelled media latency charged per
	// flushed line. It accumulates in Stats.ModeledFlushTime; the device
	// never sleeps.
	WriteLatency time.Duration
}

// Stats is the device traffic accounting. Counters are maintained by the
// device on every access; callers snapshot them with Device.Stats.
type Stats struct {
	Writes         uint64 // store operations
	BytesWritten   uint64 // bytes stored
	Reads          uint64 // load operations
	BytesRead      uint64 // bytes loaded
	Flushes        uint64 // Flush calls
	FlushedLines   uint64 // distinct lines written back by Flush calls
	Fences         uint64 // Fence calls
	ModeledFlushNS uint64 // Config.WriteLatency × FlushedLines, in nanoseconds
}

// ModeledFlushTime converts the accumulated modelled latency to a Duration.
func (s Stats) ModeledFlushTime() time.Duration { return time.Duration(s.ModeledFlushNS) }

// Add returns the sum s + other, counter by counter — used to combine
// the traffic of disjoint measured intervals (e.g. the two pauses of a
// concurrent collection).
func (s Stats) Add(other Stats) Stats {
	return Stats{
		Writes:         s.Writes + other.Writes,
		BytesWritten:   s.BytesWritten + other.BytesWritten,
		Reads:          s.Reads + other.Reads,
		BytesRead:      s.BytesRead + other.BytesRead,
		Flushes:        s.Flushes + other.Flushes,
		FlushedLines:   s.FlushedLines + other.FlushedLines,
		Fences:         s.Fences + other.Fences,
		ModeledFlushNS: s.ModeledFlushNS + other.ModeledFlushNS,
	}
}

// Sub returns the difference s - prev, counter by counter. It is the usual
// way to account a measured interval.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Writes:         s.Writes - prev.Writes,
		BytesWritten:   s.BytesWritten - prev.BytesWritten,
		Reads:          s.Reads - prev.Reads,
		BytesRead:      s.BytesRead - prev.BytesRead,
		Flushes:        s.Flushes - prev.Flushes,
		FlushedLines:   s.FlushedLines - prev.FlushedLines,
		Fences:         s.Fences - prev.Fences,
		ModeledFlushNS: s.ModeledFlushNS - prev.ModeledFlushNS,
	}
}

// counters is the device's internal atomic form of Stats.
type counters struct {
	writes, bytesWritten, reads, bytesRead   atomic.Uint64
	flushes, flushedLines, fences, modeledNS atomic.Uint64
}

// Device is a simulated NVM device. Traffic counters and the Tracked-mode
// dirty bitmap are atomic, so concurrent use is race-free provided the
// callers' protocol keeps concurrent writers and flushers on *disjoint
// cache lines* — exactly the discipline real hardware demands, and the
// one the PLAB allocator enforces (each mutator owns its region and its
// region's line in the top table). Accesses that may share lines (heap
// metadata, the klass segment, the name table, GC) remain serialized by
// their callers, mirroring the JVM's allocation locks and stop-the-world
// pauses.
type Device struct {
	size      int
	mode      Mode
	mem       []byte
	persisted []byte   // Tracked only: the power-loss view
	dirty     []uint64 // Tracked only: bitmap, one bit per line (atomic)
	stats     counters
	latNS     uint64

	// flushHook, if set, runs after every Flush with the running flush
	// count. Crash-injection tests use it to panic at a chosen boundary.
	flushHook func(flushCount uint64)
	noFlush   bool

	// readFault / flushFault are the media-fault hooks (see fault.go):
	// readFault returning true fails a read with a *MediaError panic;
	// flushFault returning true silently drops a flush's writeback.
	readFault  func(off, n int) bool
	flushFault func(off, n int, flushCount uint64) bool
}

// New creates a device of cfg.Size bytes, zero-filled (fresh NVM DIMMs and
// freshly created heap files read as zero).
func New(cfg Config) *Device {
	if cfg.Size <= 0 {
		panic("nvm: non-positive device size")
	}
	size := (cfg.Size + LineSize - 1) / LineSize * LineSize
	d := &Device{
		size:  size,
		mode:  cfg.Mode,
		mem:   alignedBytes(size),
		latNS: uint64(cfg.WriteLatency.Nanoseconds()),
	}
	if cfg.Mode == Tracked {
		d.persisted = make([]byte, size)
		d.dirty = make([]uint64, (size/LineSize+63)/64)
	}
	return d
}

// FromImage creates a device whose memory and persisted views both equal
// img, as after a reboot from a crash image or a file load.
func FromImage(img []byte, cfg Config) *Device {
	cfg.Size = len(img)
	d := New(cfg)
	copy(d.mem, img)
	if d.mode == Tracked {
		copy(d.persisted, img)
	}
	return d
}

// Size reports the device capacity in bytes.
func (d *Device) Size() int { return d.size }

// Mode reports the device bookkeeping mode.
func (d *Device) Mode() Mode { return d.mode }

// SetFlushHook installs fn to run after every Flush call with the running
// flush count. Pass nil to remove the hook. Install hooks only while the
// device is quiescent.
func (d *Device) SetFlushHook(fn func(flushCount uint64)) { d.flushHook = fn }

// SetNoFlush disables the effect of Flush and Fence (they are still
// counted). It models running the recoverable GC without clflush, the
// baseline of the paper's §6.4 pause-time experiment.
func (d *Device) SetNoFlush(v bool) { d.noFlush = v }

func (d *Device) check(off, n int) {
	if off < 0 || n < 0 || off+n > d.size {
		panic(fmt.Sprintf("nvm: access [%d,%d) outside device of %d bytes", off, off+n, d.size))
	}
}

func (d *Device) markDirty(off, n int) {
	if d.mode != Tracked || n == 0 {
		return
	}
	first := off / LineSize
	last := (off + n - 1) / LineSize
	for l := first; l <= last; l++ {
		w := &d.dirty[l/64]
		bit := uint64(1) << (uint(l) % 64)
		for {
			old := atomic.LoadUint64(w)
			if old&bit != 0 || atomic.CompareAndSwapUint64(w, old, old|bit) {
				break
			}
		}
	}
}

func (d *Device) countWrite(n int) {
	d.stats.writes.Add(1)
	d.stats.bytesWritten.Add(uint64(n))
}

func (d *Device) countRead(n int) {
	d.stats.reads.Add(1)
	d.stats.bytesRead.Add(uint64(n))
}

// The uncounted internals below perform the access (and dirty tracking)
// without touching the shared traffic counters. They exist for
// WorkerDevice: the counters live on one cache line, so per-access
// atomic adds from a pool of GC workers would ping-pong that line on
// every single device operation. Workers account locally through these
// and fold the totals into the shared counters when their phase joins.

func (d *Device) writeU64Uncounted(off int, v uint64) {
	d.check(off, 8)
	binary.LittleEndian.PutUint64(d.mem[off:], v)
	d.markDirty(off, 8)
}

func (d *Device) readU64Uncounted(off int) uint64 {
	d.check(off, 8)
	return binary.LittleEndian.Uint64(d.mem[off:])
}

func (d *Device) moveUncounted(dst, src, n int) {
	d.check(src, n)
	d.check(dst, n)
	copy(d.mem[dst:dst+n], d.mem[src:src+n])
	d.markDirty(dst, n)
}

// WriteU64 stores v at byte offset off, little-endian.
func (d *Device) WriteU64(off int, v uint64) {
	d.writeU64Uncounted(off, v)
	d.countWrite(8)
}

// ReadU64 loads the little-endian uint64 at byte offset off.
func (d *Device) ReadU64(off int) uint64 {
	d.failRead(off, 8)
	d.countRead(8)
	return d.readU64Uncounted(off)
}

// alignedBytes allocates a zero-filled byte slice whose backing array is
// 8-byte aligned, so the word-atomic accessors below may point straight
// into it. n is always a multiple of LineSize here.
func alignedBytes(n int) []byte {
	words := make([]uint64, n/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}

// hostLittleEndian reports the byte order of native integer stores, so the
// atomic accessors can keep the device image little-endian on any host.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// WriteU64Atomic stores v at the 8-aligned byte offset off with a single
// atomic machine store. It is the word-store variant for slots that a
// concurrent reader (the SATB marker) may load while the owning mutator
// stores — the same pair of accesses an x86 CPU makes atomic for aligned
// words. Accounting and dirty tracking match WriteU64.
func (d *Device) WriteU64Atomic(off int, v uint64) {
	d.check(off, 8)
	if off%8 != 0 {
		panic(fmt.Sprintf("nvm: unaligned atomic store at %d", off))
	}
	if !hostLittleEndian {
		v = bits.ReverseBytes64(v)
	}
	atomic.StoreUint64((*uint64)(unsafe.Pointer(&d.mem[off])), v)
	d.countWrite(8)
	d.markDirty(off, 8)
}

// CompareAndSwapU64 atomically replaces the word at the 8-aligned byte
// offset off with new if it currently equals old, reporting whether the
// swap happened — the lock-free publication primitive (cmpxchg) under
// the persistent index's link-and-persist protocol. The comparison and
// store are one atomic machine operation against concurrent
// ReadU64Atomic/WriteU64Atomic/CompareAndSwapU64 on the same word.
// Accounting: every attempt counts one read; a successful swap
// additionally counts one write and dirties the line.
func (d *Device) CompareAndSwapU64(off int, old, new uint64) bool {
	d.check(off, 8)
	if off%8 != 0 {
		panic(fmt.Sprintf("nvm: unaligned atomic cas at %d", off))
	}
	if !hostLittleEndian {
		old = bits.ReverseBytes64(old)
		new = bits.ReverseBytes64(new)
	}
	d.countRead(8)
	if !atomic.CompareAndSwapUint64((*uint64)(unsafe.Pointer(&d.mem[off])), old, new) {
		return false
	}
	d.countWrite(8)
	d.markDirty(off, 8)
	return true
}

// OrU64Atomic atomically ORs mask into the word at the 8-aligned byte
// offset off and returns the word's previous value — the bitmap
// publication primitive under parallel GC marking, where N workers set
// begin/end mark bits in shared bitmap words and a worker claims an
// object by observing its begin bit clear in the returned value.
// Accounting: one read per call; one write (and a dirtied line) only
// when the stored value actually changed, so re-marking an already-set
// bit costs exactly what the racing Get would have.
func (d *Device) OrU64Atomic(off int, mask uint64) uint64 {
	old, wrote := d.orU64AtomicUncounted(off, mask)
	d.countRead(8)
	if wrote {
		d.countWrite(8)
	}
	return old
}

// orU64AtomicUncounted is OrU64Atomic minus the traffic counters; it
// additionally reports whether the word changed, so a locally-accounting
// caller can count the write itself.
func (d *Device) orU64AtomicUncounted(off int, mask uint64) (old uint64, wrote bool) {
	d.check(off, 8)
	if off%8 != 0 {
		panic(fmt.Sprintf("nvm: unaligned atomic or at %d", off))
	}
	if !hostLittleEndian {
		mask = bits.ReverseBytes64(mask)
	}
	addr := (*uint64)(unsafe.Pointer(&d.mem[off]))
	for {
		old := atomic.LoadUint64(addr)
		if old|mask == old {
			if !hostLittleEndian {
				old = bits.ReverseBytes64(old)
			}
			return old, false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			d.markDirty(off, 8)
			if !hostLittleEndian {
				old = bits.ReverseBytes64(old)
			}
			return old, true
		}
	}
}

// ReadU64Atomic loads the word at the 8-aligned byte offset off with a
// single atomic machine load — never torn, even against a concurrent
// WriteU64Atomic to the same word.
func (d *Device) ReadU64Atomic(off int) uint64 {
	d.failRead(off, 8)
	d.countRead(8)
	return d.readU64AtomicUncounted(off)
}

func (d *Device) readU64AtomicUncounted(off int) uint64 {
	d.check(off, 8)
	if off%8 != 0 {
		panic(fmt.Sprintf("nvm: unaligned atomic load at %d", off))
	}
	v := atomic.LoadUint64((*uint64)(unsafe.Pointer(&d.mem[off])))
	if !hostLittleEndian {
		v = bits.ReverseBytes64(v)
	}
	return v
}

// WriteU32 stores v at byte offset off, little-endian.
func (d *Device) WriteU32(off int, v uint32) {
	d.check(off, 4)
	binary.LittleEndian.PutUint32(d.mem[off:], v)
	d.countWrite(4)
	d.markDirty(off, 4)
}

// ReadU32 loads the little-endian uint32 at byte offset off.
func (d *Device) ReadU32(off int) uint32 {
	d.check(off, 4)
	d.failRead(off, 4)
	d.countRead(4)
	return binary.LittleEndian.Uint32(d.mem[off:])
}

// WriteU16 stores v at byte offset off, little-endian.
func (d *Device) WriteU16(off int, v uint16) {
	d.check(off, 2)
	binary.LittleEndian.PutUint16(d.mem[off:], v)
	d.countWrite(2)
	d.markDirty(off, 2)
}

// ReadU16 loads the little-endian uint16 at byte offset off.
func (d *Device) ReadU16(off int) uint16 {
	d.check(off, 2)
	d.failRead(off, 2)
	d.countRead(2)
	return binary.LittleEndian.Uint16(d.mem[off:])
}

// WriteByteAt stores one byte at off.
func (d *Device) WriteByteAt(off int, v byte) {
	d.check(off, 1)
	d.mem[off] = v
	d.countWrite(1)
	d.markDirty(off, 1)
}

// ReadByteAt loads one byte at off.
func (d *Device) ReadByteAt(off int) byte {
	d.check(off, 1)
	d.failRead(off, 1)
	d.countRead(1)
	return d.mem[off]
}

// WriteBytes stores p at off.
func (d *Device) WriteBytes(off int, p []byte) {
	d.check(off, len(p))
	copy(d.mem[off:], p)
	d.countWrite(len(p))
	d.markDirty(off, len(p))
}

// ReadBytes fills p from the memory view starting at off.
func (d *Device) ReadBytes(off int, p []byte) {
	d.check(off, len(p))
	d.failRead(off, len(p))
	copy(p, d.mem[off:])
	d.countRead(len(p))
}

// View returns a read-only window into the memory view. Mutating the
// returned slice bypasses accounting and dirty tracking; use the Write
// methods for stores. It exists for hot read paths (heap parsing, marking).
func (d *Device) View(off, n int) []byte {
	d.check(off, n)
	d.failRead(off, n)
	return d.mem[off : off+n : off+n]
}

// Move copies n bytes from src to dst within the device, with memmove
// overlap semantics. It is the GC's object-copy primitive.
func (d *Device) Move(dst, src, n int) {
	d.check(src, n)
	d.check(dst, n)
	copy(d.mem[dst:dst+n], d.mem[src:src+n])
	d.countWrite(n)
	d.countRead(n)
	d.markDirty(dst, n)
}

// Zero clears n bytes starting at off.
func (d *Device) Zero(off, n int) {
	d.check(off, n)
	clear(d.mem[off : off+n])
	d.countWrite(n)
	d.markDirty(off, n)
}

// Flush writes back the cache lines covering [off, off+n), like a run of
// clflush instructions. In Tracked mode the covered lines become part of
// the persisted view and their dirty bits clear.
func (d *Device) Flush(off, n int) {
	if n <= 0 {
		return
	}
	d.check(off, n)
	first := off / LineSize
	last := (off + n - 1) / LineSize
	lines := uint64(last - first + 1)
	count := d.stats.flushes.Add(1)
	// A dropped flush still accounts like an honest one: the CPU issued
	// the clflush instructions, the loss happens downstream. Only the
	// persisted-view copy (and dirty-bit clearing) is skipped, so the
	// fault is observable solely through a later crash image.
	dropped := d.flushFault != nil && d.flushFault(off, n, count)
	if !d.noFlush {
		d.stats.flushedLines.Add(lines)
		d.stats.modeledNS.Add(lines * d.latNS)
		if d.mode == Tracked && !dropped {
			lo, hi := first*LineSize, (last+1)*LineSize
			copy(d.persisted[lo:hi], d.mem[lo:hi])
			for l := first; l <= last; l++ {
				w := &d.dirty[l/64]
				bit := uint64(1) << (uint(l) % 64)
				for {
					old := atomic.LoadUint64(w)
					if old&bit == 0 || atomic.CompareAndSwapUint64(w, old, old&^bit) {
						break
					}
				}
			}
		}
	}
	if d.flushHook != nil {
		d.flushHook(count)
	}
}

// Range is a byte range [Off, Off+N) used by FlushBatch.
type Range struct{ Off, N int }

// FlushBatch writes back every range and issues a single trailing Fence —
// the coalesced-persist idiom: clflush each line once, sfence once.
// Callers are expected to pre-merge overlapping ranges (core's flush
// coalescer does); the device flushes exactly what it is handed.
func (d *Device) FlushBatch(ranges []Range) {
	for _, r := range ranges {
		d.Flush(r.Off, r.N)
	}
	d.Fence()
}

// Fence orders earlier flushes before later stores, like sfence. Flush is
// synchronous in this simulator, so Fence only accounts the instruction;
// protocols still call it wherever real hardware would need it so the
// counted cost is honest.
func (d *Device) Fence() { d.stats.fences.Add(1) }

// FlushAll persists the entire device, like a shutdown msync.
func (d *Device) FlushAll() {
	if d.noFlush {
		d.stats.flushes.Add(1)
		return
	}
	d.Flush(0, d.size)
}

// Stats returns a snapshot of the traffic counters. Under concurrent
// traffic the snapshot is per-counter atomic, not globally consistent.
func (d *Device) Stats() Stats {
	return Stats{
		Writes:         d.stats.writes.Load(),
		BytesWritten:   d.stats.bytesWritten.Load(),
		Reads:          d.stats.reads.Load(),
		BytesRead:      d.stats.bytesRead.Load(),
		Flushes:        d.stats.flushes.Load(),
		FlushedLines:   d.stats.flushedLines.Load(),
		Fences:         d.stats.fences.Load(),
		ModeledFlushNS: d.stats.modeledNS.Load(),
	}
}

// ResetStats zeroes the traffic counters.
func (d *Device) ResetStats() {
	d.stats.writes.Store(0)
	d.stats.bytesWritten.Store(0)
	d.stats.reads.Store(0)
	d.stats.bytesRead.Store(0)
	d.stats.flushes.Store(0)
	d.stats.flushedLines.Store(0)
	d.stats.fences.Store(0)
	d.stats.modeledNS.Store(0)
}

// DirtyLines reports how many lines are modified but not yet persisted.
// It is zero in Direct mode.
func (d *Device) DirtyLines() int {
	n := 0
	for i := range d.dirty {
		for w := atomic.LoadUint64(&d.dirty[i]); w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
