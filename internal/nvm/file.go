package nvm

import (
	"encoding/binary"
	"fmt"
	"os"
)

// Heap images on disk carry a small header so stale or foreign files are
// rejected instead of being interpreted as a heap.
const (
	fileMagic   = 0x4553_5052_4E56_4D31 // "ESPRNVM1"
	fileVersion = 1
	fileHdrSize = 24
)

// Save writes the persisted view to path (the memory view in Direct mode,
// where the two coincide). It models unmounting an NVM DIMM region into a
// file the external name manager tracks.
func (d *Device) Save(path string) error {
	hdr := make([]byte, fileHdrSize)
	binary.LittleEndian.PutUint64(hdr[0:], fileMagic)
	binary.LittleEndian.PutUint64(hdr[8:], fileVersion)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(d.size))
	f, err := os.CreateTemp(dirOf(path), ".nvm-*")
	if err != nil {
		return fmt.Errorf("nvm: save %s: %w", path, err)
	}
	tmp := f.Name()
	view := d.mem
	if d.mode == Tracked {
		view = d.persisted
	}
	if _, err = f.Write(hdr); err == nil {
		_, err = f.Write(view)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("nvm: save %s: %w", path, err)
	}
	return nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return path[:i]
		}
	}
	return "."
}

// LoadFile reads a device image previously written by Save.
func LoadFile(path string, cfg Config) (*Device, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("nvm: load %s: %w", path, err)
	}
	if len(raw) < fileHdrSize {
		return nil, fmt.Errorf("nvm: load %s: truncated header", path)
	}
	if binary.LittleEndian.Uint64(raw[0:]) != fileMagic {
		return nil, fmt.Errorf("nvm: load %s: not an nvm image", path)
	}
	if v := binary.LittleEndian.Uint64(raw[8:]); v != fileVersion {
		return nil, fmt.Errorf("nvm: load %s: unsupported image version %d", path, v)
	}
	size := int(binary.LittleEndian.Uint64(raw[16:]))
	if len(raw)-fileHdrSize != size {
		return nil, fmt.Errorf("nvm: load %s: image size %d does not match header %d",
			path, len(raw)-fileHdrSize, size)
	}
	return FromImage(raw[fileHdrSize:], cfg), nil
}
