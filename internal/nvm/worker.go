package nvm

// Per-worker device-stat accounting for parallel GC phases. The device's
// own counters are shared atomics — correct under concurrency but unable
// to say *which* worker issued the traffic, and the parallel-GC speedup
// claim is exactly a statement about the busiest worker (the device-level
// critical path). They are also all on one cache line, so a pool of
// workers bumping them on every load would spend more time ping-ponging
// that line between cores than reading the heap. A WorkerDevice wraps
// the shared device for one worker: reads, writes, and moves perform the
// access (including dirty tracking and the persisted view) through
// uncounted internals and tally into a worker-local Stats — no shared
// state touched — and Fold publishes the accumulated counts into the
// shared counters when the phase joins. Flush and Fence still forward to
// the counted device path: they are orders of magnitude rarer, and the
// global flush ordinal must stay exact for crash-injection hooks.
//
// Consequence: while a parallel phase is in flight, Device.Stats()
// lags the workers' read/write traffic until the coordinator calls
// Fold on each worker. Every collector phase folds before the
// enclosing measurement boundary, so interval accounting (pause
// windows, whole-collection deltas) is exact.
//
// Only the operations the GC workers issue are wrapped; anything else
// reaches the embedded Device and is accounted globally as usual.

// WorkerDevice is a per-worker accounting view of a shared Device.
// Not safe for concurrent use — each worker owns one.
type WorkerDevice struct {
	*Device
	// Local is this worker's share of the traffic. FlushedLines and
	// ModeledFlushNS mirror the device's noFlush gating so modeled
	// critical paths stay comparable to the global counters.
	Local Stats

	// folded is the prefix of Local already published by Fold.
	folded Stats
}

// NewWorkerDevice returns a worker-local accounting wrapper over d.
func NewWorkerDevice(d *Device) *WorkerDevice { return &WorkerDevice{Device: d} }

func (w *WorkerDevice) countLocalRead(n int) {
	w.Local.Reads++
	w.Local.BytesRead += uint64(n)
}

func (w *WorkerDevice) countLocalWrite(n int) {
	w.Local.Writes++
	w.Local.BytesWritten += uint64(n)
}

// ReadU64 performs a plain word load, tallying it locally only.
func (w *WorkerDevice) ReadU64(off int) uint64 {
	w.countLocalRead(8)
	return w.Device.readU64Uncounted(off)
}

// ReadU64Atomic performs an atomic word load, tallying it locally only.
func (w *WorkerDevice) ReadU64Atomic(off int) uint64 {
	w.countLocalRead(8)
	return w.Device.readU64AtomicUncounted(off)
}

// WriteU64 performs a plain word store, tallying it locally only.
func (w *WorkerDevice) WriteU64(off int, v uint64) {
	w.countLocalWrite(8)
	w.Device.writeU64Uncounted(off, v)
}

// OrU64Atomic performs an atomic fetch-OR, accounted locally like the
// device does globally: one read always, one write when the word
// changed.
func (w *WorkerDevice) OrU64Atomic(off int, mask uint64) uint64 {
	w.countLocalRead(8)
	old, wrote := w.Device.orU64AtomicUncounted(off, mask)
	if wrote {
		w.countLocalWrite(8)
	}
	return old
}

// Move performs a bulk copy, tallying one read and one write of n bytes
// locally only.
func (w *WorkerDevice) Move(dst, src, n int) {
	w.countLocalRead(n)
	w.countLocalWrite(n)
	w.Device.moveUncounted(dst, src, n)
}

// Flush forwards a line write-back to the counted device path (the
// global flush ordinal feeds crash-injection hooks and must stay
// exact), additionally tallying the covered lines and modeled latency
// locally, mirroring the device's no-flush gating.
func (w *WorkerDevice) Flush(off, n int) {
	if n > 0 {
		first := off / LineSize
		last := (off + n - 1) / LineSize
		w.Local.Flushes++
		if !w.Device.noFlush {
			lines := uint64(last - first + 1)
			w.Local.FlushedLines += lines
			w.Local.ModeledFlushNS += lines * w.Device.latNS
		}
	}
	w.Device.Flush(off, n)
}

// Fence forwards the ordering instruction, tallying it locally too.
func (w *WorkerDevice) Fence() {
	w.Local.Fences++
	w.Device.Fence()
}

// Fold publishes the read/write traffic accumulated in Local since the
// last Fold into the shared device counters. Flush and fence traffic is
// excluded — it was counted globally as it happened. The coordinator
// calls Fold after a parallel phase joins, making the shared counters
// whole before the next measurement boundary; Local keeps the worker's
// full running tally either way.
func (w *WorkerDevice) Fold() {
	delta := w.Local.Sub(w.folded)
	w.Device.stats.writes.Add(delta.Writes)
	w.Device.stats.bytesWritten.Add(delta.BytesWritten)
	w.Device.stats.reads.Add(delta.Reads)
	w.Device.stats.bytesRead.Add(delta.BytesRead)
	w.folded = w.Local
}
