package nvm

import "fmt"

// MediaError is the panic value raised by a read accessor when an
// installed read fault fires. Reads return values, not errors, so a
// failing load surfaces the way an uncorrectable media error does on
// real hardware: as a machine check the caller either contains or dies
// from. Salvage paths recover it explicitly (see CatchMedia); pshard's
// per-shard panic containment converts it into a shard error.
type MediaError struct {
	Off int // byte offset of the failed access
	N   int // length of the failed access
}

func (e *MediaError) Error() string {
	return fmt.Sprintf("nvm: media error reading [%d,%d)", e.Off, e.Off+e.N)
}

// SetReadFault installs fn to be consulted on every read access with the
// accessed byte range; returning true fails that access by panicking
// with *MediaError. Pass nil to remove. Like SetFlushHook, install only
// while the device is quiescent. A nil hook costs one predictable branch
// per read, so attaching a hook that always returns false leaves the
// device's traffic counters bit-identical to an unhooked run.
func (d *Device) SetReadFault(fn func(off, n int) bool) { d.readFault = fn }

// SetFlushFault installs fn to be consulted on every Flush with the
// flushed range and the running flush count; returning true drops the
// writeback (the covered lines do NOT reach the persisted view and stay
// dirty), modelling a flush lost in the memory controller's queue. All
// traffic counters still advance exactly as for an honest flush — the
// fault is invisible until a crash image is taken. Only meaningful in
// Tracked mode. Pass nil to remove.
func (d *Device) SetFlushFault(fn func(off, n int, flushCount uint64) bool) { d.flushFault = fn }

// CorruptBit flips one bit of the byte at off in the memory view and, in
// Tracked mode, the persisted view — simulating in-place media rot that
// no volatile state masks. Accounting is untouched: rot is not traffic.
func (d *Device) CorruptBit(off int, bit uint) {
	d.check(off, 1)
	if bit > 7 {
		panic(fmt.Sprintf("nvm: CorruptBit bit %d out of range", bit))
	}
	d.mem[off] ^= 1 << bit
	if d.mode == Tracked {
		d.persisted[off] ^= 1 << bit
	}
}

// failRead consults the read-fault hook for an n-byte access at off.
func (d *Device) failRead(off, n int) {
	if d.readFault != nil && d.readFault(off, n) {
		panic(&MediaError{Off: off, N: n})
	}
}

// CatchMedia runs fn, converting a *MediaError panic into a returned
// error. Any other panic propagates. It is the containment primitive for
// salvage code that must walk possibly-rotten media without dying.
func CatchMedia(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if me, ok := r.(*MediaError); ok {
				err = me
				return
			}
			panic(r)
		}
	}()
	return fn()
}
