package nvm

// Subsystem labels one attribution class for device traffic. The device
// keeps one shared counter set (Stats); attribution by subsystem is
// owner-counted above it — each mutator-owned path (allocator, ref-store
// barrier, index context) tallies the traffic it issues into its own
// telemetry cell at the call sites where the ops are deterministic, and
// exclusive phases (GC, redo commit, recovery replay) attribute measured
// Stats windows. The enum lives here, next to Stats, so every layer
// names the classes consistently.
type Subsystem int

const (
	// SubOther is unattributed traffic (metadata, klass segment, tooling).
	SubOther Subsystem = iota
	// SubAlloc is the allocation path: object zero+header persists, region
	// top publications, PLAB retire fills.
	SubAlloc
	// SubRefstore is the reference-store barrier: the field store itself
	// (flushes ride the owning transaction or FlushObject, attributed
	// where they are issued).
	SubRefstore
	// SubIndex is the durable index: link-and-persist publications, help
	// flushes, delete marks.
	SubIndex
	// SubGC is collector traffic: marking, summary, compaction moves and
	// reference fixes.
	SubGC
	// SubRedo is the redo log: finish-batch appends and commits.
	SubRedo
	// SubRecovery is crash recovery: redo replay, index recovery pruning,
	// shard reopen scans.
	SubRecovery
	// SubBlackbox is the NVM flight recorder: event-journal appends into
	// the per-heap ring region (one line write + flush per event, no
	// fence — appends ride the publication fence of the emitting site).
	SubBlackbox

	NumSubsystems int = iota
)

var subsystemNames = [...]string{"other", "alloc", "refstore", "index", "gc", "redo", "recovery", "blackbox"}

func (s Subsystem) String() string {
	if s >= 0 && int(s) < len(subsystemNames) {
		return subsystemNames[s]
	}
	return "invalid"
}

// LineSpan counts the cache lines covering [off, off+n) — the device's
// flush granularity, exported so owner-counted attribution matches what
// Flush will charge.
func LineSpan(off, n int) int {
	if n <= 0 {
		return 0
	}
	return (off+n-1)/LineSize - off/LineSize + 1
}

// Each visits every counter of s with its stable snake_case name, in
// declaration order — the iteration hook for exporters that render Stats
// without reflection.
func (s Stats) Each(fn func(name string, v uint64)) {
	fn("reads", s.Reads)
	fn("bytes_read", s.BytesRead)
	fn("writes", s.Writes)
	fn("bytes_written", s.BytesWritten)
	fn("flushes", s.Flushes)
	fn("flushed_lines", s.FlushedLines)
	fn("fences", s.Fences)
	fn("modeled_flush_ns", s.ModeledFlushNS)
}
