package pindex

import (
	"fmt"
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/nvm/faultdev"
	"espresso/internal/pgc"
	"espresso/internal/pheap"
)

// Crash-injection suites: drive the index through a crash at every flush
// boundary (plus adversarial random eviction of unflushed lines) and
// require the reloaded index to contain exactly the committed mappings —
// every returned Put present with its value, every returned Delete
// honored, and the single in-flight operation either fully applied or
// fully absent, never torn.

// kvOp is one scripted mutation.
type kvOp struct {
	del bool
	key int64
	val int64 // boxed value for puts
}

// script mixes fresh inserts, overwrites of seeded keys, and deletes of
// both. Keys below 100 are the seeded population.
func crashScript() []kvOp {
	var ops []kvOp
	for i := int64(0); i < 8; i++ {
		ops = append(ops, kvOp{key: 200 + i, val: 2000 + i}) // fresh inserts
	}
	for i := int64(0); i < 6; i++ {
		ops = append(ops, kvOp{key: i, val: 9000 + i}) // overwrites
	}
	for i := int64(10); i < 16; i++ {
		ops = append(ops, kvOp{del: true, key: i}) // delete seeded
	}
	ops = append(ops,
		kvOp{del: true, key: 203},     // delete a fresh insert
		kvOp{key: 203, val: 3333},     // re-insert it
		kvOp{key: 300, val: 4444},     // one more fresh
		kvOp{del: true, key: 5},       // delete an overwritten key
		kvOp{del: true, key: 999},     // delete a key never present
		kvOp{key: 0, val: 9999},       // second overwrite of key 0
	)
	return ops
}

const absent = int64(-1)

// apply plays op onto the model (value absent == deleted).
func apply(model map[int64]int64, op kvOp) {
	if op.del {
		model[op.key] = absent
	} else {
		model[op.key] = op.val
	}
}

func boxKlass(t *testing.T, h *pheap.Heap) *klass.Klass {
	t.Helper()
	k, err := h.Registry().Define(klass.MustInstance("pindex/crashBox", nil,
		klass.Field{Name: "v", Type: layout.FTLong}))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// putBoxed allocates a fresh box holding v and puts it under key.
func putBoxed(t *testing.T, h *pheap.Heap, c *Ctx, bk *klass.Klass, key, v int64) error {
	box, err := h.Alloc(bk, 0)
	if err != nil {
		return err
	}
	h.SetWord(box, layout.FieldOff(0), uint64(v))
	h.FlushRange(box, 0, bk.SizeOf(0))
	return c.Put(key, box)
}

// buildCrashBase seeds a Tracked heap with keys 0..99 (value 10*key) and
// returns its fully persisted image plus the model.
func buildCrashBase(t *testing.T) ([]byte, map[int64]int64) {
	t.Helper()
	h, err := pheap.Create(klass.NewRegistry(), pheap.Config{DataSize: 4 << 20, Mode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(h, NoPin{}, "kv", Options{InitialBuckets: 8, MaxLoadFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	bk := boxKlass(t, h)
	c := ix.NewCtx()
	model := map[int64]int64{}
	for i := int64(0); i < 100; i++ {
		if err := putBoxed(t, h, c, bk, i, i*10); err != nil {
			t.Fatal(err)
		}
		model[i] = i * 10
	}
	c.Release()
	h.Device().FlushAll()
	return h.Device().CrashImage(nvm.CrashFlushedOnly, 0), model
}

// verifyExact checks the reloaded index against the model, with the
// in-flight op (if any) allowed either its before or after state.
func verifyExact(t *testing.T, tag string, h *pheap.Heap, model map[int64]int64, inflight *kvOp, before int64) {
	t.Helper()
	ix, err := Open(h, NoPin{}, "kv", Options{})
	if err != nil {
		t.Fatalf("%s: reopen: %v", tag, err)
	}
	c := ix.NewCtx()
	defer c.Release()
	read := func(key int64) int64 {
		box, ok := c.Get(key)
		if !ok {
			return absent
		}
		if box == layout.NullRef {
			t.Fatalf("%s: key %d has null box", tag, key)
		}
		return int64(h.GetWord(box, layout.FieldOff(0)))
	}
	live := 0
	for key, want := range model {
		if inflight != nil && key == inflight.key {
			continue // checked below; may legitimately be either state
		}
		got := read(key)
		if got != want {
			t.Fatalf("%s: key %d = %d, want %d", tag, key, got, want)
		}
		if want != absent {
			live++
		}
	}
	if inflight != nil {
		after := absent
		if !inflight.del {
			after = inflight.val
		}
		got := read(inflight.key)
		if got != before && got != after {
			t.Fatalf("%s: in-flight key %d = %d, want %d (before) or %d (after)",
				tag, inflight.key, got, before, after)
		}
		if got != absent {
			live++
		}
	}
	if ix.Len() != live {
		t.Fatalf("%s: Len = %d, want %d", tag, ix.Len(), live)
	}
}

// TestCrashAtEveryFlushBoundary replays the mutation script against the
// seeded image, crashing at flush boundary k for every k the script
// reaches, rebooting from a random-eviction crash image, and requiring
// exactly the committed mappings back.
func TestCrashAtEveryFlushBoundary(t *testing.T) {
	pristine, baseModel := buildCrashBase(t)
	script := crashScript()

	for k := uint64(1); ; k++ {
		tag := fmt.Sprintf("k=%d", k)
		img := make([]byte, len(pristine))
		copy(img, pristine)
		dev := nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})
		h, err := pheap.Load(dev, klass.NewRegistry())
		if err != nil {
			t.Fatalf("%s: load: %v", tag, err)
		}
		ix, err := Open(h, NoPin{}, "kv", Options{})
		if err != nil {
			t.Fatalf("%s: open: %v", tag, err)
		}
		bk := boxKlass(t, h)
		c := ix.NewCtx()

		model := map[int64]int64{}
		for key, v := range baseModel {
			model[key] = v
		}
		faultdev.CrashIn(dev, k)
		var inflight *kvOp
		var beforeVal int64
		crashed, err := faultdev.Run(dev, func() error {
			for i := range script {
				op := script[i]
				inflight = &op
				beforeVal = absent
				if v, ok := model[op.key]; ok {
					beforeVal = v
				}
				if op.del {
					c.Delete(op.key)
				} else if err := putBoxed(t, h, c, bk, op.key, op.val); err != nil {
					return fmt.Errorf("put %d: %v", op.key, err)
				}
				apply(model, op)
				inflight = nil
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		if !crashed {
			// The whole script fit below boundary k: coverage is complete.
			if k == 1 {
				t.Fatal("script issued no flushes")
			}
			t.Logf("covered %d flush boundaries over %d ops", k-1, len(script))
			return
		}

		after := nvm.FromImage(dev.CrashImage(nvm.CrashRandomEviction, int64(k)), nvm.Config{Mode: nvm.Tracked})
		h2, err := pheap.Load(after, klass.NewRegistry())
		if err != nil {
			t.Fatalf("%s: reload: %v", tag, err)
		}
		verifyExact(t, tag, h2, model, inflight, beforeVal)
	}
}

// phasedWorld lets the test run index mutations inside the concurrent
// collection cycle: CollectConcurrent calls StartWorld right after the
// initial handshake (snapshot taken, SATB barrier armed) and the queued
// callback runs there — so its operations hit the armed barrier and the
// allocate-black window, and the flush-hook crash can land anywhere in
// op or collector work.
type phasedWorld struct{ onStart []func() }

func (w *phasedWorld) StopWorld() {}
func (w *phasedWorld) StartWorld() {
	if len(w.onStart) > 0 {
		fn := w.onStart[0]
		w.onStart = w.onStart[1:]
		fn()
	}
}

// TestCrashDuringConcurrentGCWithIndexTraffic crashes CollectConcurrent
// at every flush boundary while index mutations run inside the cycle;
// after pgc crash recovery plus the index recovery pass, the reloaded
// index must hold exactly the committed mappings.
func TestCrashDuringConcurrentGCWithIndexTraffic(t *testing.T) {
	pristine, baseModel := buildCrashBase(t)
	script := crashScript()

	// Crash boundaries step by 3 to bound runtime; the alloc/link
	// protocol repeats every few flushes, so stepped coverage still
	// crosses every distinct protocol edge.
	for k := uint64(1); ; k += 3 {
		tag := fmt.Sprintf("k=%d", k)
		img := make([]byte, len(pristine))
		copy(img, pristine)
		dev := nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})
		h, err := pheap.Load(dev, klass.NewRegistry())
		if err != nil {
			t.Fatalf("%s: load: %v", tag, err)
		}
		ix, err := Open(h, NoPin{}, "kv", Options{})
		if err != nil {
			t.Fatalf("%s: open: %v", tag, err)
		}
		bk := boxKlass(t, h)
		c := ix.NewCtx()

		model := map[int64]int64{}
		for key, v := range baseModel {
			model[key] = v
		}
		var inflight *kvOp
		var beforeVal int64
		world := &phasedWorld{onStart: []func(){func() {
			for i := range script {
				op := script[i]
				inflight = &op
				beforeVal = absent
				if v, ok := model[op.key]; ok {
					beforeVal = v
				}
				if op.del {
					c.Delete(op.key)
				} else if err := putBoxed(t, h, c, bk, op.key, op.val); err != nil {
					panic(fmt.Sprintf("put %d: %v", op.key, err))
				}
				apply(model, op)
				inflight = nil
			}
		}}}

		faultdev.CrashIn(dev, k)
		crashed, err := faultdev.Run(dev, func() error {
			_, err := pgc.CollectConcurrent(h, pgc.NoRoots{}, world)
			return err
		})
		if err != nil {
			t.Fatalf("%s: collect: %v", tag, err)
		}
		if !crashed {
			t.Logf("covered flush boundaries up to %d (cycle complete)", k)
			return
		}

		after := nvm.FromImage(dev.CrashImage(nvm.CrashRandomEviction, int64(k)), nvm.Config{Mode: nvm.Tracked})
		h2, err := pheap.Load(after, klass.NewRegistry())
		if err != nil {
			t.Fatalf("%s: reload: %v", tag, err)
		}
		if h2.GCActive() || h2.GCPhase() != pheap.GCPhaseIdle {
			if _, err := pgc.Recover(h2); err != nil {
				t.Fatalf("%s: pgc recover: %v", tag, err)
			}
		}
		verifyExact(t, tag, h2, model, inflight, beforeVal)
	}
}
