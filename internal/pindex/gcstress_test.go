package pindex

import (
	"fmt"
	"sync"
	"testing"

	"espresso/internal/core"
	"espresso/internal/layout"
)

// TestPIndexGCStress runs mixed get/put/delete traffic from several
// goroutines — each a safepoint-pinned lock-free context — while
// concurrent collections cycle underneath, then verifies the map's
// exact contents. Run under -race in CI: it exercises the CAS
// publication paths against the SATB marker's atomic slot loads and the
// compactor's tag-preserving reference fixing.
func TestPIndexGCStress(t *testing.T) {
	rt, err := core.NewRuntime(core.Config{PJHDataSize: 24 << 20})
	if err != nil {
		t.Fatal(err)
	}
	h, err := rt.CreateHeap("kv", 0)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(h, rt.SafepointPinner(), "idx", Options{InitialBuckets: 8, MaxLoadFactor: 2})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 6
	const perG = 250
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := ix.NewCtx()
			defer c.Release()
			base := int64(g) << 32
			for i := int64(0); i < perG; i++ {
				k := base + i
				if err := c.Put(k, layout.NullRef); err != nil {
					errs[g] = fmt.Errorf("put %d: %w", k, err)
					return
				}
				if _, ok := c.Get(k); !ok {
					errs[g] = fmt.Errorf("get-after-put %d missed", k)
					return
				}
				if i%5 == 4 {
					if !c.Delete(k) {
						errs[g] = fmt.Errorf("delete %d missed", k)
						return
					}
				}
			}
		}(g)
	}
	gcErr := make(chan error, 1)
	go func() {
		for cycle := 0; cycle < 3; cycle++ {
			if _, err := rt.PersistentGCConcurrent("kv"); err != nil {
				gcErr <- err
				return
			}
		}
		gcErr <- nil
	}()
	wg.Wait()
	if err := <-gcErr; err != nil {
		t.Fatalf("concurrent GC: %v", err)
	}
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// One quiescent cycle (compaction moves the whole structure), then
	// verify contents exactly.
	if _, err := rt.PersistentGCConcurrent("kv"); err != nil {
		t.Fatal(err)
	}
	c := ix.NewCtx()
	defer c.Release()
	want := 0
	for g := 0; g < goroutines; g++ {
		base := int64(g) << 32
		for i := int64(0); i < perG; i++ {
			_, ok := c.Get(base + i)
			if deleted := i%5 == 4; ok == deleted {
				t.Fatalf("g=%d i=%d present=%v deleted=%v", g, i, ok, deleted)
			}
			if i%5 != 4 {
				want++
			}
		}
	}
	if ix.Len() != want {
		t.Fatalf("Len = %d, want %d", ix.Len(), want)
	}
	scanned := 0
	c.Scan(func(int64, layout.Ref) bool { scanned++; return true })
	if scanned != want {
		t.Fatalf("scan saw %d, want %d", scanned, want)
	}
}
