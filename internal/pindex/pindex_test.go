package pindex

import (
	"fmt"
	"sync"
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
)

func newHeap(t *testing.T, mode nvm.Mode, dataMB int) *pheap.Heap {
	t.Helper()
	h, err := pheap.Create(klass.NewRegistry(), pheap.Config{DataSize: dataMB << 20, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// val allocates a distinguishable persistent value object (a boxed long).
func val(t *testing.T, h *pheap.Heap, v int64) layout.Ref {
	t.Helper()
	k, err := h.Registry().Define(klass.MustInstance("pindex/testVal", nil,
		klass.Field{Name: "v", Type: layout.FTLong}))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := h.Alloc(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.SetWord(ref, layout.FieldOff(0), uint64(v))
	h.FlushRange(ref, 0, k.SizeOf(0))
	return ref
}

func valOf(h *pheap.Heap, ref layout.Ref) int64 {
	return int64(h.GetWord(ref, layout.FieldOff(0)))
}

func TestPutGetDeleteScan(t *testing.T) {
	h := newHeap(t, nvm.Direct, 8)
	ix, err := Open(h, NoPin{}, "kv", Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := ix.NewCtx()
	defer c.Release()

	const n = 500
	for i := int64(0); i < n; i++ {
		if err := c.Put(i, val(t, h, i*10)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if got := ix.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for i := int64(0); i < n; i++ {
		v, ok := c.Get(i)
		if !ok || valOf(h, v) != i*10 {
			t.Fatalf("get %d: ok=%v val=%d", i, ok, valOf(h, v))
		}
	}
	if _, ok := c.Get(n + 5); ok {
		t.Fatal("found a key never inserted")
	}

	// Overwrite half, delete a third.
	for i := int64(0); i < n; i += 2 {
		if err := c.Put(i, val(t, h, i*100)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < n; i += 3 {
		if !c.Delete(i) {
			t.Fatalf("delete %d missed", i)
		}
	}
	if c.Delete(3) {
		t.Fatal("double delete reported present")
	}
	want := map[int64]int64{}
	for i := int64(0); i < n; i++ {
		if i%3 == 0 {
			continue
		}
		if i%2 == 0 {
			want[i] = i * 100
		} else {
			want[i] = i * 10
		}
	}
	got := map[int64]int64{}
	c.Scan(func(k int64, v layout.Ref) bool {
		got[k] = valOf(h, v)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan found %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("scan key %d = %d, want %d", k, got[k], v)
		}
	}
	if ix.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(want))
	}
}

func TestResizeGrowsBucketTable(t *testing.T) {
	h := newHeap(t, nvm.Direct, 8)
	ix, err := Open(h, NoPin{}, "kv", Options{InitialBuckets: 8, MaxLoadFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := ix.NewCtx()
	defer c.Release()
	for i := int64(0); i < 1000; i++ {
		if err := c.Put(i, layout.NullRef); err != nil {
			t.Fatal(err)
		}
	}
	_, n := c.buckets(c.header())
	if n <= 8 {
		t.Fatalf("bucket table never grew: %d buckets for 1000 entries", n)
	}
	for i := int64(0); i < 1000; i++ {
		if _, ok := c.Get(i); !ok {
			t.Fatalf("key %d lost across resizes", i)
		}
	}
}

// TestDurableWithoutFlushAll is the durable-linearizability contract: a
// CrashFlushedOnly image taken right after operations return — with NO
// FlushAll — must contain every committed mapping.
func TestDurableWithoutFlushAll(t *testing.T) {
	h := newHeap(t, nvm.Tracked, 8)
	ix, err := Open(h, NoPin{}, "kv", Options{InitialBuckets: 8, MaxLoadFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := ix.NewCtx()
	const n = 300
	for i := int64(0); i < n; i++ {
		if err := c.Put(i, val(t, h, i+7)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < n; i += 4 {
		c.Delete(i)
	}
	c.Release()

	img := h.Device().CrashImage(nvm.CrashFlushedOnly, 0)
	h2, err := pheap.Load(nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked}), klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(h2, NoPin{}, "kv", Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := ix2.NewCtx()
	defer c2.Release()
	live := 0
	for i := int64(0); i < n; i++ {
		v, ok := c2.Get(i)
		if i%4 == 0 {
			if ok {
				t.Fatalf("deleted key %d resurrected", i)
			}
			continue
		}
		if !ok || valOf(h2, v) != i+7 {
			t.Fatalf("committed key %d lost (ok=%v)", i, ok)
		}
		live++
	}
	if ix2.Len() != live {
		t.Fatalf("recovered Len = %d, want %d", ix2.Len(), live)
	}
}

func TestRecoverPrunesAndClears(t *testing.T) {
	h := newHeap(t, nvm.Tracked, 8)
	ix, err := Open(h, NoPin{}, "kv", Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := ix.NewCtx()
	for i := int64(0); i < 50; i++ {
		if err := c.Put(i, layout.NullRef); err != nil {
			t.Fatal(err)
		}
	}
	// Forge crash wreckage: a persisted-but-dirty link and a committed
	// delete whose unlink never happened.
	_, _, node, found := c.find(mustHead(t, c), dataSort(mixHash(7)), 7)
	if !found {
		t.Fatal("key 7 missing")
	}
	w := c.loadClean(node, ix.fNext)
	h.SetWordAtomic(node, ix.fNext, w|tagDel|tagDirty)
	h.FlushRange(node, ix.fNext, 8)
	c.Release()
	h.Device().FlushAll()

	st, err := Recover(h, "kv")
	if err != nil {
		t.Fatal(err)
	}
	if st.Pruned != 1 {
		t.Fatalf("Pruned = %d, want 1", st.Pruned)
	}
	if st.DirtyCleared == 0 {
		t.Fatal("dirty mark not cleared")
	}
	if st.Entries != 49 {
		t.Fatalf("Entries = %d, want 49", st.Entries)
	}
	c2 := ix.NewCtx()
	defer c2.Release()
	if _, ok := c2.Get(7); ok {
		t.Fatal("pruned key still visible")
	}
}

func mustHead(t *testing.T, c *Ctx) layout.Ref {
	t.Helper()
	arr, _ := c.buckets(c.header())
	head := layout.Ref(c.ix.h.GetWord(arr, layout.ElemOff(layout.FTRef, 0)))
	if head == layout.NullRef {
		t.Fatal("no head sentinel")
	}
	return head
}

// TestParallelMixedOps hammers the index from several goroutines with
// disjoint key ranges and checks the final contents exactly.
func TestParallelMixedOps(t *testing.T) {
	h := newHeap(t, nvm.Direct, 16)
	ix, err := Open(h, NoPin{}, "kv", Options{InitialBuckets: 8, MaxLoadFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 400
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := ix.NewCtx()
			defer c.Release()
			base := int64(g) << 32
			for i := int64(0); i < perG; i++ {
				k := base + i
				if err := c.Put(k, layout.NullRef); err != nil {
					errs[g] = fmt.Errorf("put %d: %w", k, err)
					return
				}
				if _, ok := c.Get(k); !ok {
					errs[g] = fmt.Errorf("get-after-put %d missed", k)
					return
				}
				if i%3 == 2 {
					if !c.Delete(k) {
						errs[g] = fmt.Errorf("delete %d missed", k)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	c := ix.NewCtx()
	defer c.Release()
	want := 0
	for g := 0; g < goroutines; g++ {
		base := int64(g) << 32
		for i := int64(0); i < perG; i++ {
			_, ok := c.Get(base + i)
			if deleted := i%3 == 2; ok == deleted {
				t.Fatalf("g=%d i=%d: present=%v, deleted=%v", g, i, ok, deleted)
			}
			if i%3 != 2 {
				want++
			}
		}
	}
	if ix.Len() != want {
		t.Fatalf("Len = %d, want %d", ix.Len(), want)
	}
}
