// Package pindex implements a durable, lock-free, resizable persistent
// hash map over PJH — the concurrent crash-consistent index a server
// built on the persistent heap needs, combining the split-ordered hash
// map of Shalev & Shavit with the link-and-persist publication protocol
// of Zuriel et al.'s durable lock-free sets.
//
// # Structure
//
// All entries live in one persistent linked list sorted by split-order
// key (the bit-reversed hash); the bucket table holds shortcuts —
// sentinel nodes spliced into the list — so a lookup walks only its own
// bucket's segment. Doubling the bucket table never rehashes a node:
// new buckets lazily splice their sentinel between existing nodes, which
// is what makes the map resizable without locks.
//
// # Durability protocol (link-and-persist)
//
// Every mutation publishes with a single CAS on a reference slot. The
// slot's low tag bits (free under the heap's 16-byte object alignment)
// carry the link state:
//
//	bit 0 (deleted): Harris mark — the node owning this slot is
//	  logically deleted; set by the same CAS that commits the delete.
//	bit 1 (dirty):   the slot's current value has not been flushed yet.
//
// A CAS always installs the new value with the dirty bit set; the
// publishing thread then flushes the slot's cache line, clears the bit
// with a second CAS, and fences before returning. Any thread that
// *observes* a dirty slot helps: it flushes the line and clears the bit
// before acting on the value. Because no operation returns — and no
// reader acts on a link — before that link is persisted, the map is
// durable-linearizable with zero fences on the read path in steady
// state and one flush+fence per update, instead of a fence per store.
//
// Node bodies (sort key, key, value, initial next) are written and
// persisted, with one flush + fence, before the publishing CAS, so a
// persisted link can never target a half-written node: crash recovery
// (Recover) finds every durably linked node intact, prunes nodes whose
// delete mark persisted, clears leftover dirty bits, and discards
// half-linked nodes implicitly — an unpersisted link simply is not in
// the reloaded image, and the orphan node body is unreachable garbage
// for the next collection.
//
// # GC integration
//
// The index header is a named heap root, so both collectors trace the
// whole structure; the concurrent marker and the compactor understand
// the tag bits (layout.RefTagMask) and preserve them across moves.
// Mutating operations run the SATB pre-write barrier on every link
// overwrite (through the Ctx's own buffer), so lookups stay correct
// while pgc.CollectConcurrent marks. Each operation runs as one
// safepoint interval through the Pinner, so compaction never moves a
// node out from under an operation's local references.
package pindex

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
	"espresso/internal/telemetry"
)

// Link-state tag bits, stored in the low bits of reference slots (see
// layout.RefTagMask; bits 2–3 stay free).
const (
	tagDel   = 1 // Harris deletion mark: the owning node is logically deleted
	tagDirty = 2 // link-and-persist mark: slot value not yet known durable
	tagMask  = tagDel | tagDirty
)

// Klass names of the index's persistent objects.
const (
	NodeKlassName   = "pindex/Node"
	HeaderKlassName = "pindex/Index"
)

// Options sizes an index. Zero values select defaults.
type Options struct {
	// InitialBuckets is the starting bucket count (power of two,
	// default 8).
	InitialBuckets int
	// MaxLoadFactor is the entries-per-bucket threshold past which the
	// bucket table doubles (default 4).
	MaxLoadFactor float64
	// MaxBuckets caps the table (power of two, default 1<<16). The cap
	// bounds the longest safepoint interval a table doubling can pin
	// (the copy of the new table must complete inside one pin); larger
	// key populations should shard across indexes — internal/pshard
	// routes one pindex per independent heap by hash range — rather
	// than raise it far.
	MaxBuckets int
	// Salvage switches Open's recovery pass from detect-and-fail to
	// detect-and-amputate: a walk that hits corruption (an out-of-heap
	// link, a link or value into a heap region quarantined by
	// pheap.LoadSalvage, a split-order violation, a media error)
	// truncates the list at the last good node and resets bucket
	// shortcuts that no longer lead into the surviving chain. Entries
	// are lost, never fabricated: nothing the walk cannot positively
	// verify stays reachable.
	Salvage bool
}

func (o *Options) fillDefaults() error {
	if o.InitialBuckets == 0 {
		o.InitialBuckets = 8
	}
	if o.MaxLoadFactor == 0 {
		o.MaxLoadFactor = 4
	}
	if o.MaxBuckets == 0 {
		o.MaxBuckets = 1 << 16
	}
	if o.InitialBuckets&(o.InitialBuckets-1) != 0 || o.MaxBuckets&(o.MaxBuckets-1) != 0 {
		return fmt.Errorf("pindex: bucket counts must be powers of two (got %d, max %d)",
			o.InitialBuckets, o.MaxBuckets)
	}
	if o.MaxBuckets < o.InitialBuckets {
		o.MaxBuckets = o.InitialBuckets
	}
	return nil
}

// Pinner makes each index operation a safepoint interval: Pin is held
// for the operation's duration, so a concurrent collector's pause (which
// moves objects and patches only the slots it can see, never Go locals)
// waits for the operation to finish. core.Runtime's SafepointPinner
// adapts the runtime's safepoint lock; callers whose heap never collects
// concurrently with index traffic pass NoPin. Operations must not nest
// on one goroutine (e.g. calling Get from inside a Scan callback): the
// second Pin can deadlock behind a collector pause waiting on the
// first.
type Pinner interface {
	Pin()
	Unpin()
}

// NoPin is the Pinner for single-collector-free use (tests, tools, and
// workloads that stop index traffic around collections themselves).
type NoPin struct{}

// Pin is a no-op.
func (NoPin) Pin() {}

// Unpin is a no-op.
func (NoPin) Unpin() {}

// Index is one opened persistent hash map. The persistent state lives
// entirely in the heap (reachable from the named root); the Index value
// holds only volatile bookkeeping and is safe for concurrent use —
// operations go through per-goroutine Ctx handles.
type Index struct {
	h    *pheap.Heap
	pin  Pinner
	name string
	opts Options

	size    atomic.Int64 // approximate entry count (exact when quiescent)
	growing atomic.Bool  // single-flight resize
	rec     RecoverStats // what Open's recovery pass repaired

	// root caches the header ref together with the heap layout epoch it
	// was fetched under, so the per-operation root re-fetch is one atomic
	// load instead of a locked name-table probe. Compaction and rebase
	// bump the epoch, which invalidates the pair.
	root atomic.Pointer[rootCache]

	nodeK, hdrK, arrK *klass.Klass
	nodeSize          int
	fSort, fKey       int // immutable node fields
	fVal, fNext       int // CAS-published node fields
	fBuckets          int // header field
}

// CtxStats counts the device work one Ctx performed on its own paths
// (the allocator's counters are separate; see Ctx.AllocStats). The kv
// scaling experiment uses FlushedLines for per-mutator critical paths.
type CtxStats struct {
	Puts, Gets, Deletes int
	FlushedLines        int // cache lines this ctx flushed
	Fences              int // fences this ctx issued
	HelpFlushes         int // dirty links persisted on behalf of other threads
	Retries             int // CAS publications that lost a race
}

// Ctx is a per-goroutine operation context: a PLAB allocator for node
// bodies and a SATB buffer for the pre-write barrier, mirroring
// core.Mutator. Not safe for concurrent use; give each goroutine its
// own and Release it when done.
type Ctx struct {
	ix    *Index
	alloc *pheap.Allocator
	satb  *pheap.SATBBuffer
	stats CtxStats
	// cell is the allocator's telemetry counter cell (nil when the heap
	// has no registry), shared across this ctx's paths like core.Mutator
	// shares its allocator's cell. Owner-only ops — the ctx is
	// single-goroutine by contract.
	cell *telemetry.Cell
}

// Open attaches to (or creates) the persistent index registered under
// name on h. Attaching runs the recovery pass — pruning committed
// deletes, clearing leftover dirty marks, and recounting entries — so
// an image that crashed mid-operation is consistent before the first
// lookup. The heap must not be mid-collection (run pgc recovery first;
// core.LoadHeap does).
func Open(h *pheap.Heap, pin Pinner, name string, opts Options) (*Index, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	if pin == nil {
		pin = NoPin{}
	}
	if h.GCActive() {
		return nil, fmt.Errorf("pindex: heap is mid-collection; recover it first")
	}
	ix := &Index{h: h, pin: pin, name: name, opts: opts}
	if err := ix.resolveKlasses(); err != nil {
		return nil, err
	}
	pin.Pin()
	defer pin.Unpin()
	if _, ok := h.GetRoot(name); ok {
		st, err := recoverLocked(h, name, ix)
		if err != nil {
			return nil, err
		}
		ix.size.Store(int64(st.Entries))
		ix.rec = st
		return ix, nil
	}
	if err := ix.create(); err != nil {
		return nil, err
	}
	return ix, nil
}

// LastRecovery reports what the recovery pass Open ran repaired (the
// zero value for a freshly created index). pshard aggregates these
// per-shard during its parallel recovery fan-out.
func (ix *Index) LastRecovery() RecoverStats { return ix.rec }

func (ix *Index) resolveKlasses() error {
	reg := ix.h.Registry()
	var err error
	if ix.nodeK, err = reg.Define(klass.MustInstance(NodeKlassName, nil,
		klass.Field{Name: "sort", Type: layout.FTLong},
		klass.Field{Name: "key", Type: layout.FTLong},
		klass.Field{Name: "value", Type: layout.FTRef},
		klass.Field{Name: "next", Type: layout.FTRef, RefKlass: NodeKlassName},
	)); err != nil {
		return err
	}
	if ix.hdrK, err = reg.Define(klass.MustInstance(HeaderKlassName, nil,
		klass.Field{Name: "buckets", Type: layout.FTRef},
	)); err != nil {
		return err
	}
	ix.arrK = reg.ObjArray(NodeKlassName)
	ix.nodeSize = ix.nodeK.SizeOf(0)
	ix.fSort, ix.fKey, ix.fVal, ix.fNext =
		layout.FieldOff(0), layout.FieldOff(1), layout.FieldOff(2), layout.FieldOff(3)
	ix.fBuckets = layout.FieldOff(0)
	return nil
}

// create builds the empty structure: bucket-0 sentinel, bucket table,
// header — each fully persisted before the next references it — and
// commits the whole thing by registering the named root (the name-table
// entry is the atomic publication point; a crash before it leaves only
// unreachable garbage, and the next Open re-creates from scratch).
func (ix *Index) create() error {
	h := ix.h
	sent, err := h.Alloc(ix.nodeK, 0)
	if err != nil {
		return fmt.Errorf("pindex: creating %q: %w", ix.name, err)
	}
	// Bucket 0's sentinel has split-order key 0: the list head.
	h.FlushRange(sent, 0, ix.nodeSize)
	arr, err := h.Alloc(ix.arrK, ix.opts.InitialBuckets)
	if err != nil {
		return fmt.Errorf("pindex: creating %q: %w", ix.name, err)
	}
	h.SetWord(arr, layout.ElemOff(layout.FTRef, 0), uint64(sent))
	h.FlushRange(arr, 0, ix.arrK.SizeOf(ix.opts.InitialBuckets))
	hdr, err := h.Alloc(ix.hdrK, 0)
	if err != nil {
		return fmt.Errorf("pindex: creating %q: %w", ix.name, err)
	}
	h.SetWord(hdr, ix.fBuckets, uint64(arr))
	h.FlushRange(hdr, 0, ix.hdrK.SizeOf(0))
	if err := h.SetRoot(ix.name, hdr); err != nil {
		return fmt.Errorf("pindex: creating %q: %w", ix.name, err)
	}
	return nil
}

// Heap reports the persistent heap the index lives in.
func (ix *Index) Heap() *pheap.Heap { return ix.h }

// Name reports the index's root name.
func (ix *Index) Name() string { return ix.name }

// Len reports the entry count. It is maintained with volatile atomics
// (exact when no operation is in flight; recounted by recovery).
func (ix *Index) Len() int { return int(ix.size.Load()) }

// NewCtx attaches a per-goroutine operation context.
func (ix *Index) NewCtx() *Ctx {
	alloc := ix.h.NewAllocator()
	return &Ctx{ix: ix, alloc: alloc, satb: ix.h.NewSATBBuffer(), cell: alloc.TelemetryCell()}
}

// Release retires the ctx: PLAB headroom returns to the dispenser and
// pending barrier records are handed to the heap's shared buffer.
func (c *Ctx) Release() {
	c.ix.pin.Pin()
	defer c.ix.pin.Unpin()
	c.alloc.Release()
	c.cell = nil // released with the allocator; counts folded into the registry
	c.ix.h.ReleaseSATBBuffer(c.satb)
	c.satb = nil
}

// Stats snapshots the ctx's own-path counters.
func (c *Ctx) Stats() CtxStats { return c.stats }

// AllocStats snapshots the ctx's allocator counters.
func (c *Ctx) AllocStats() pheap.AllocatorStats { return c.alloc.Stats() }

// Allocator exposes the ctx's PLAB allocator so callers can allocate
// value objects on the same mutator-local path the index's nodes use.
func (c *Ctx) Allocator() *pheap.Allocator { return c.alloc }

// --- hashing and split ordering ---

// mixHash is the shared persisted-layout hash finalizer.
func mixHash(k int64) uint64 { return layout.MixHash64(k) }

// dataSort is a data node's split-order key: the bit-reversed hash with
// the top bit forced on, so every data key has bit 0 set — strictly
// greater than its bucket's sentinel, strictly less than the next.
func dataSort(hash uint64) uint64 { return bits.Reverse64(hash | 1<<63) }

// sentSort is bucket b's sentinel split-order key (bit 0 always clear).
func sentSort(b uint64) uint64 { return bits.Reverse64(b) }

// parentBucket is the bucket whose segment bucket b splits off: b with
// its highest set bit cleared.
func parentBucket(b uint64) uint64 {
	return b &^ (1 << (63 - uint(bits.LeadingZeros64(b))))
}

// soLess orders (sort, key) pairs — the list's total order.
func soLess(aSort, aKey, bSort, bKey uint64) bool {
	return aSort < bSort || (aSort == bSort && aKey < bKey)
}

// --- device helpers (stat-counted) ---

// flushWord persists the slot's cache line and fences — the
// link-and-persist flush, also used for helping.
func (c *Ctx) flushWord(obj layout.Ref, boff int) {
	c.ix.h.FlushRange(obj, boff, 8)
	c.stats.FlushedLines++
	c.stats.Fences++
	c.cell.Dev(nvm.SubIndex, 0, 0, 1, 1)
}

// flushRange persists [boff, boff+n) of obj with one flush+fence.
func (c *Ctx) flushRange(obj layout.Ref, boff, n int) {
	h := c.ix.h
	off := h.OffOf(obj) + boff
	lines := (off+n-1)/layout.LineSize - off/layout.LineSize + 1
	c.stats.FlushedLines += lines
	c.stats.Fences++
	c.cell.Dev(nvm.SubIndex, 0, 0, uint64(lines), 1)
	h.FlushRange(obj, boff, n)
}

// cas is h.CasWord with index-subsystem device attribution, matching the
// device's own accounting: one read per attempt, one write when the swap
// lands.
func (c *Ctx) cas(obj layout.Ref, boff int, old, new uint64) bool {
	if c.ix.h.CasWord(obj, boff, old, new) {
		c.cell.Dev(nvm.SubIndex, 1, 1, 0, 0)
		return true
	}
	c.cell.Dev(nvm.SubIndex, 1, 0, 0, 0)
	return false
}

// loadClean returns the slot's current value with the dirty bit clear,
// helping persist it first if some in-flight publication left it dirty —
// the reader half of link-and-persist: no caller ever acts on a link
// that is not durable.
func (c *Ctx) loadClean(obj layout.Ref, boff int) uint64 {
	h := c.ix.h
	for {
		w := h.GetWordAtomic(obj, boff)
		c.cell.Dev(nvm.SubIndex, 1, 0, 0, 0)
		if w&tagDirty == 0 {
			return w
		}
		c.flushWord(obj, boff)
		c.cas(obj, boff, w, w&^tagDirty)
		c.stats.HelpFlushes++
		c.cell.Inc(telemetry.CtrIndexHelpFlushes)
	}
}

// publish installs val into the slot with one CAS (dirty bit set), runs
// the SATB pre-write barrier over the displaced value, persists the
// link, and clears the dirty bit. False means the CAS lost a race and
// nothing happened. val may carry the deleted tag (a logical-delete
// publication); expect must be a clean word previously returned by
// loadClean or find.
func (c *Ctx) publish(obj layout.Ref, boff int, expect, val uint64) bool {
	h := c.ix.h
	if !c.cas(obj, boff, expect, val|tagDirty) {
		c.stats.Retries++
		return false
	}
	if h.ConcurrentMarkActive() {
		h.SATBRecordBarrier(obj, expect, c.satb)
	}
	c.flushWord(obj, boff)
	c.cas(obj, boff, val|tagDirty, val) // best effort: a helper may already have
	return true
}

// --- traversal ---

// find locates the insertion point for (sort, key) in the segment
// starting at the sentinel head: pred is the last node strictly before
// it, predW pred's clean next word (the CAS expectation), curr the first
// node at or after it (NullRef at segment end), found whether curr
// matches exactly. Logically deleted nodes encountered on the way are
// helped out of the list (their delete mark is durable by then — a
// loadClean preceded the unlink — so unlinking can never lose an
// uncommitted delete).
func (c *Ctx) find(head layout.Ref, sort, key uint64) (pred layout.Ref, predW uint64, curr layout.Ref, found bool) {
	h := c.ix.h
restart:
	for {
		pred = head
		predW = c.loadClean(pred, c.ix.fNext)
		if predW&tagDel != 0 {
			// Sentinels are never deleted; a marked head means pred's next
			// carried a mark we must not CAS over. Unreachable by protocol,
			// but restarting is always safe.
			continue restart
		}
		curr = layout.Ref(predW)
		for curr != layout.NullRef {
			cw := c.loadClean(curr, c.ix.fNext)
			succ := uint64(layout.UntagRef(layout.Ref(cw)))
			if cw&tagDel != 0 {
				// curr is committed-deleted: unlink it. The displaced node
				// stays reachable to the marker via the SATB record inside
				// publish.
				if !c.publish(pred, c.ix.fNext, predW, succ) {
					continue restart
				}
				predW = c.loadClean(pred, c.ix.fNext)
				if predW&tagDel != 0 {
					continue restart
				}
				curr = layout.Ref(predW)
				continue
			}
			cs := h.GetWord(curr, c.ix.fSort)
			ck := h.GetWord(curr, c.ix.fKey)
			if !soLess(cs, ck, sort, key) {
				return pred, predW, curr, cs == sort && ck == key
			}
			pred, predW = curr, cw
			curr = layout.Ref(succ)
		}
		return pred, predW, layout.NullRef, false
	}
}

// insert splices a node with (sort, key, val) into the segment at head,
// returning the resident node and whether it already existed. The node
// body is fully persisted (one flush + fence) before the publishing CAS,
// so a durable link always targets a durable node.
func (c *Ctx) insert(head layout.Ref, sort, key uint64, val layout.Ref) (node layout.Ref, existed bool, err error) {
	h := c.ix.h
	node = layout.NullRef
	for {
		pred, predW, curr, found := c.find(head, sort, key)
		if found {
			return curr, true, nil
		}
		if node == layout.NullRef {
			if node, err = c.alloc.Alloc(c.ix.nodeK, 0); err != nil {
				return 0, false, fmt.Errorf("pindex: insert: %w", err)
			}
			h.SetWord(node, c.ix.fSort, sort)
			h.SetWord(node, c.ix.fKey, key)
			h.SetWord(node, c.ix.fVal, uint64(val))
			h.SetWordAtomic(node, c.ix.fNext, uint64(curr))
			c.cell.Dev(nvm.SubIndex, 0, 4, 0, 0)
			c.flushRange(node, 0, c.ix.nodeSize)
		} else {
			// Retrying with a different successor: repoint and re-persist
			// just the next word before republishing.
			h.SetWordAtomic(node, c.ix.fNext, uint64(curr))
			c.cell.Dev(nvm.SubIndex, 0, 1, 0, 0)
			c.flushWord(node, c.ix.fNext)
		}
		if c.publish(pred, c.ix.fNext, predW, uint64(node)) {
			return node, false, nil
		}
	}
}

// --- bucket table ---

// rootCache pairs the header ref with the layout epoch it is valid for.
type rootCache struct {
	hdr   layout.Ref
	epoch uint64
}

// header resolves the index header inside the caller's pin. The cached
// (hdr, epoch) pair short-circuits the common case to one atomic load;
// only after a collection or rebase (epoch bump) does the locked
// name-table probe rerun — the root is the one slot the collector
// always patches, and the epoch cannot advance inside a safepoint
// interval, so a matching pair is always current. A missing root is a
// structural invariant violation (Open validated it), so it panics
// rather than masquerading as an empty map.
func (c *Ctx) header() layout.Ref {
	ix := c.ix
	epoch := ix.h.LayoutEpoch()
	if rc := ix.root.Load(); rc != nil && rc.epoch == epoch {
		return rc.hdr
	}
	hdr, ok := ix.h.GetRoot(ix.name)
	if !ok {
		panic(fmt.Sprintf("pindex: root %q lost", ix.name))
	}
	ix.root.Store(&rootCache{hdr: hdr, epoch: epoch})
	return hdr
}

// buckets returns the current bucket table and its size, helping persist
// a mid-flight table publication.
func (c *Ctx) buckets(hdr layout.Ref) (layout.Ref, int) {
	w := c.loadClean(hdr, c.ix.fBuckets)
	arr := layout.Ref(layout.UntagRef(layout.Ref(w)))
	return arr, c.ix.h.ArrayLen(arr)
}

// bucketHead resolves bucket b's sentinel, lazily splicing it (and,
// recursively, its parents') into the list on first use. The bucket-slot
// store is idempotent — racing initializers insert the same sentinel
// (the list dedupes by split-order key) and store the same ref — so it
// needs no CAS protocol, and losing the store to a crash just means the
// next process re-resolves it.
func (c *Ctx) bucketHead(arr layout.Ref, b uint64) (layout.Ref, error) {
	h := c.ix.h
	boff := layout.ElemOff(layout.FTRef, int(b))
	if w := h.GetWordAtomic(arr, boff); w != 0 {
		return layout.Ref(layout.UntagRef(layout.Ref(w))), nil
	}
	parent, err := c.bucketHead(arr, parentBucket(b))
	if err != nil {
		return 0, err
	}
	sent, _, err := c.insert(parent, sentSort(b), b, layout.NullRef)
	if err != nil {
		return 0, err
	}
	h.SetWordAtomic(arr, boff, uint64(sent))
	if h.ConcurrentMarkActive() {
		h.SATBMarkDirtyCard(arr) // overwrites null: nothing to record
	}
	c.flushWord(arr, boff)
	return sent, nil
}

// bucketHeadRead resolves the deepest already-spliced ancestor sentinel
// of bucket b without allocating: a lookup or delete never needs to
// create a sentinel, because searching from an ancestor just scans a
// superset segment of the same sorted list. This keeps the read and
// delete paths free of allocation failure on an exhausted heap. Bucket
// 0's sentinel is persisted before the index root publishes, so the
// walk always terminates.
func (c *Ctx) bucketHeadRead(arr layout.Ref, b uint64) layout.Ref {
	h := c.ix.h
	for {
		if w := h.GetWordAtomic(arr, layout.ElemOff(layout.FTRef, int(b))); w != 0 {
			return layout.Ref(layout.UntagRef(layout.Ref(w)))
		}
		if b == 0 {
			panic(fmt.Sprintf("pindex: %q head sentinel missing", c.ix.name))
		}
		b = parentBucket(b)
	}
}

// grow doubles the bucket table once the load factor is exceeded. It
// runs in its own safepoint interval — after the Put that tripped the
// threshold has returned its pin — so the pinned window is only the
// copy itself, and MaxBuckets bounds that window (the whole unpublished
// table must be built inside one pin: it is unreachable from any root,
// so a collection between chunks would reclaim it). The new table is
// fully persisted before one CAS on the header's buckets field
// publishes it; sentinels missing from the copied prefix (or lost to
// the copy race) re-resolve lazily. Single-flight: growers that lose
// the volatile flag skip — the next overloaded operation tries again.
// Growth is purely advisory (a denser table is slower, never wrong), so
// allocation failure is swallowed: the Put that triggered it has
// already committed and must not report an error for a mapping that is
// durably present.
func (c *Ctx) grow() {
	ix := c.ix
	h := ix.h
	if !ix.growing.CompareAndSwap(false, true) {
		return
	}
	defer ix.growing.Store(false)
	ix.pin.Pin()
	defer ix.pin.Unpin()
	hdr := c.header()
	w := c.loadClean(hdr, ix.fBuckets)
	arr := layout.Ref(layout.UntagRef(layout.Ref(w)))
	n := h.ArrayLen(arr)
	if float64(ix.size.Load()) <= ix.opts.MaxLoadFactor*float64(n) || 2*n > ix.opts.MaxBuckets {
		return
	}
	bigger, err := c.alloc.Alloc(ix.arrK, 2*n)
	if err != nil {
		return // out of space: stay at the current table size
	}
	for i := 0; i < n; i++ {
		boff := layout.ElemOff(layout.FTRef, i)
		h.SetWord(bigger, boff, h.GetWordAtomic(arr, boff))
	}
	c.flushRange(bigger, 0, ix.arrK.SizeOf(2*n))
	if c.publish(hdr, ix.fBuckets, w, uint64(bigger)) {
		c.cell.Inc(telemetry.CtrIndexGrows)
	}
}

// --- operations ---

// Put inserts or updates key → val. val must be NullRef or reference an
// object inside this index's persistent heap: index slots never pass
// core's write barrier, so a volatile (DRAM) value would bypass the
// NVM→DRAM remembered set and dangle after the next volatile collection
// — it is rejected up front instead. On return the mapping is durable:
// a crash at any later point preserves it. An error (heap exhaustion,
// foreign value) means the mapping was not installed.
func (c *Ctx) Put(key int64, val layout.Ref) error {
	if val != layout.NullRef && !c.ix.h.Contains(val) {
		return fmt.Errorf("pindex: value %#x is not an object in this persistent heap", uint64(val))
	}
	overloaded, err := c.putPinned(key, val)
	if overloaded {
		// Table doubling runs in its own safepoint interval so the Put's
		// pin — which a waiting collector pause must drain — stays short.
		c.grow()
	}
	return err
}

func (c *Ctx) putPinned(key int64, val layout.Ref) (overloaded bool, err error) {
	ix := c.ix
	ix.pin.Pin()
	defer ix.pin.Unpin()
	c.stats.Puts++
	c.cell.Inc(telemetry.CtrIndexPuts)
	sort := dataSort(mixHash(key))
	for {
		hdr := c.header()
		arr, n := c.buckets(hdr)
		head, err := c.bucketHead(arr, mixHash(key)&uint64(n-1))
		if err != nil {
			return false, err
		}
		node, existed, err := c.insert(head, sort, uint64(key), val)
		if err != nil {
			return false, err
		}
		if !existed {
			ix.size.Add(1)
			return float64(ix.size.Load()) > ix.opts.MaxLoadFactor*float64(n), nil
		}
		// Existing key: publish the new value on its slot, then re-check
		// the node was not deleted underneath — if it was, the delete
		// linearized first and the put must re-insert.
		for {
			vw := c.loadClean(node, ix.fVal)
			if layout.UntagRef(layout.Ref(vw)) == val {
				break // already this value, and durable (loadClean persisted it)
			}
			if c.publish(node, ix.fVal, vw, uint64(val)) {
				break
			}
		}
		if c.loadClean(node, ix.fNext)&tagDel == 0 {
			return false, nil
		}
	}
}

// Get looks key up. The answer is durable before it is returned: every
// link and value it depends on has been persisted (helping if needed).
// The read path never allocates (unspliced buckets are searched through
// their deepest spliced ancestor), so a miss always means the key is
// absent — never a masked failure.
func (c *Ctx) Get(key int64) (layout.Ref, bool) {
	ix := c.ix
	ix.pin.Pin()
	defer ix.pin.Unpin()
	c.stats.Gets++
	c.cell.Inc(telemetry.CtrIndexGets)
	arr, n := c.buckets(c.header())
	head := c.bucketHeadRead(arr, mixHash(key)&uint64(n-1))
	_, _, curr, found := c.find(head, dataSort(mixHash(key)), uint64(key))
	if !found {
		return 0, false
	}
	vw := c.loadClean(curr, ix.fVal)
	return layout.UntagRef(layout.Ref(vw)), true
}

// Delete removes key, reporting whether it was present. The delete is
// committed — durable — by the flush of the logical delete mark; the
// physical unlink is best-effort and finished by later traversals or by
// recovery. Like Get, the path never allocates and so cannot fail.
func (c *Ctx) Delete(key int64) bool {
	ix := c.ix
	ix.pin.Pin()
	defer ix.pin.Unpin()
	c.stats.Deletes++
	c.cell.Inc(telemetry.CtrIndexDeletes)
	sort := dataSort(mixHash(key))
	for {
		arr, n := c.buckets(c.header())
		head := c.bucketHeadRead(arr, mixHash(key)&uint64(n-1))
		pred, predW, curr, found := c.find(head, sort, uint64(key))
		if !found {
			return false
		}
		cw := c.loadClean(curr, ix.fNext)
		if cw&tagDel != 0 {
			return false // concurrently deleted: linearize after it
		}
		// Logical delete: one CAS sets the mark; its flush inside publish
		// is the durable commit point.
		if !c.publish(curr, ix.fNext, cw, cw|tagDel) {
			continue // interference on curr: re-find
		}
		ix.size.Add(-1)
		// Best-effort physical unlink (find/recovery mop up failures).
		c.publish(pred, ix.fNext, predW, uint64(layout.UntagRef(layout.Ref(cw))))
		return true
	}
}

// Scan walks every entry in split-order, calling fn(key, value) until it
// returns false. The walk is one safepoint interval (it pins the world;
// prefer short scans while a concurrent collection runs) and observes a
// consistent durable-helped view of each link it crosses, though
// concurrent mutations before or behind the cursor may or may not be
// seen — the usual weakly consistent lock-free iteration.
func (c *Ctx) Scan(fn func(key int64, val layout.Ref) bool) {
	ix := c.ix
	ix.pin.Pin()
	defer ix.pin.Unpin()
	c.cell.Inc(telemetry.CtrIndexScans)
	h := ix.h
	arr, _ := c.buckets(c.header())
	node := c.bucketHeadRead(arr, 0)
	for node != layout.NullRef {
		w := c.loadClean(node, ix.fNext)
		isData := h.GetWord(node, ix.fSort)&1 == 1
		if isData && w&tagDel == 0 {
			vw := c.loadClean(node, ix.fVal)
			if !fn(int64(h.GetWord(node, ix.fKey)), layout.UntagRef(layout.Ref(vw))) {
				return
			}
		}
		node = layout.Ref(layout.UntagRef(layout.Ref(w)))
	}
}
