package pindex

import (
	"fmt"
	"time"

	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
	"espresso/internal/telemetry"
	"espresso/internal/telemetry/blackbox"
)

// RecoverStats reports what a recovery pass repaired.
type RecoverStats struct {
	Entries      int // live data nodes after the pass
	Sentinels    int // bucket sentinels encountered
	Pruned       int // committed-deleted nodes physically unlinked
	DirtyCleared int // leftover dirty marks retired

	// Salvage-mode amputations (always zero on a strict pass):
	Truncated    bool // the chain was cut at the last verifiable node
	LostValues   int  // entries dropped because their value storage was quarantined
	BucketsReset int  // bucket shortcuts cleared (no longer on the surviving chain)
}

// Salvaged reports whether the pass amputated anything.
func (st RecoverStats) Salvaged() bool {
	return st.Truncated || st.LostValues > 0 || st.BucketsReset > 0
}

// Recover repairs the index registered under name after a reload: it
// walks the split-ordered list once, clearing dirty marks that an
// in-flight publication left persisted (the link itself is durable —
// only the "known durable" bit is missing), physically unlinking every
// node whose delete mark persisted (the delete committed; the unlink
// just had not happened yet), and recounting live entries. Nodes whose
// link never persisted are not reachable from the reloaded image at all
// — they are unreachable allocation garbage the next collection
// reclaims — which is exactly the no-half-linked-nodes guarantee.
//
// The pass is idempotent and single-threaded: run it before index
// traffic starts (Open does, on attach). It must run after pgc crash
// recovery if the heap was mid-collection.
func Recover(h *pheap.Heap, name string) (RecoverStats, error) {
	if h.GCActive() {
		return RecoverStats{}, fmt.Errorf("pindex: heap is mid-collection; recover it first")
	}
	ix := &Index{h: h, name: name, pin: NoPin{}}
	if err := ix.resolveKlasses(); err != nil {
		return RecoverStats{}, err
	}
	if _, ok := h.GetRoot(name); !ok {
		return RecoverStats{}, fmt.Errorf("pindex: no index %q in this heap", name)
	}
	return recoverLocked(h, name, ix)
}

// cleanSlot strips a persisted dirty mark from the slot, persisting the
// repair. Returns the slot's (clean) value.
func cleanSlot(h *pheap.Heap, st *RecoverStats, obj layout.Ref, boff int) uint64 {
	w := h.GetWord(obj, boff)
	if w&tagDirty != 0 {
		w &^= tagDirty
		h.SetWord(obj, boff, w)
		h.FlushRange(obj, boff, 8)
		st.DirtyCleared++
	}
	return w
}

// recoverLocked is the shared walk behind Recover and Open-attach; ix
// supplies resolved klasses and field offsets (and, via its options,
// whether the walk salvages). The caller guarantees quiescence (load
// time, or Open's pin).
//
// The salvage variant enforces never-fabricate in two moves. First, any
// link the walk cannot positively verify — it leaves the heap, enters a
// quarantined region, breaks split order, or the node behind it cannot
// be read — cuts the chain right there: the persisted truncation makes
// everything past the damage unreachable, losing entries but inventing
// none. Second, the bucket table is swept afterwards: shortcuts are
// direct sentinel references, so a sentinel that sits beyond a cut
// would resurrect its whole segment through the shortcut even though
// the chain no longer reaches it. Every bucket slot whose sentinel was
// not visited on the surviving chain is reset to null (the lazy
// split-ordered initialization re-splices it on demand).
func recoverLocked(h *pheap.Heap, name string, ix *Index) (RecoverStats, error) {
	if tel := h.Telemetry(); tel != nil {
		start := time.Now()
		before := h.Device().Stats()
		defer func() {
			tel.RecordSpan(telemetry.SpanRecoveryIdx, -1, -1, start, time.Since(start))
			tel.Shared().AtomicDevStats(nvm.SubRecovery, h.Device().Stats().Sub(before))
		}()
	}
	var st RecoverStats
	salvage := ix.opts.Salvage
	hdr, ok := h.GetRoot(name)
	if !ok {
		return st, fmt.Errorf("pindex: no index %q in this heap", name)
	}
	// The header, bucket table, and head sentinel are the structure's
	// spine: without them there is nothing to salvage *onto*, so they
	// stay fatal in both modes (the sharding layer quarantines the whole
	// shard instead).
	bw := cleanSlot(h, &st, hdr, ix.fBuckets)
	arr := layout.Ref(layout.UntagRef(layout.Ref(bw)))
	if arr == layout.NullRef || !h.Contains(arr) || h.RefQuarantined(arr) {
		return st, fmt.Errorf("pindex: %q: header has no bucket table", name)
	}
	head := layout.Ref(layout.UntagRef(layout.Ref(h.GetWord(arr, layout.ElemOff(layout.FTRef, 0)))))
	if head == layout.NullRef || (salvage && (!h.Contains(head) || h.RefQuarantined(head))) {
		return st, fmt.Errorf("pindex: %q: head sentinel missing", name)
	}
	st.Sentinels++

	var surviving map[layout.Ref]bool
	if salvage {
		surviving = map[layout.Ref]bool{head: true}
	}
	truncate := func(prev layout.Ref) {
		h.SetWord(prev, ix.fNext, uint64(layout.NullRef))
		h.FlushRange(prev, ix.fNext, 8)
		st.Truncated = true
	}

	prev := head
	walk := func() error {
		lastSort, lastKey := h.GetWord(prev, ix.fSort), h.GetWord(prev, ix.fKey)
		for {
			w := cleanSlot(h, &st, prev, ix.fNext)
			curr := layout.Ref(layout.UntagRef(layout.Ref(w)))
			if curr == layout.NullRef {
				return nil
			}
			if !h.Contains(curr) || h.RefQuarantined(curr) {
				if salvage {
					truncate(prev)
					return nil
				}
				return fmt.Errorf("pindex: %q: link to %#x outside the heap", name, uint64(curr))
			}
			cw := cleanSlot(h, &st, curr, ix.fNext)
			if cw&tagDel != 0 {
				// The delete mark persisted: the delete committed before the
				// crash. Finish its unlink so the key cannot resurrect.
				h.SetWord(prev, ix.fNext, uint64(layout.UntagRef(layout.Ref(cw))))
				h.FlushRange(prev, ix.fNext, 8)
				st.Pruned++
				continue
			}
			cs, ck := h.GetWord(curr, ix.fSort), h.GetWord(curr, ix.fKey)
			if !soLess(lastSort, lastKey, cs, ck) {
				if salvage {
					truncate(prev)
					return nil
				}
				return fmt.Errorf("pindex: %q: split order violated at %#x", name, uint64(curr))
			}
			if cs&1 == 1 {
				vw := cleanSlot(h, &st, curr, ix.fVal)
				val := layout.Ref(layout.UntagRef(layout.Ref(vw)))
				if salvage && val != layout.NullRef && h.RefQuarantined(val) {
					// The entry survived but its value storage is gone.
					// Drop the entry like a committed delete — reporting a
					// key with fabricated contents is the one forbidden
					// outcome.
					h.SetWord(prev, ix.fNext, uint64(layout.UntagRef(layout.Ref(cw))))
					h.FlushRange(prev, ix.fNext, 8)
					st.LostValues++
					continue
				}
				st.Entries++
			} else {
				st.Sentinels++
				if surviving != nil {
					surviving[curr] = true
				}
			}
			lastSort, lastKey = cs, ck
			prev = curr
		}
	}
	var err error
	if salvage {
		err = nvm.CatchMedia(walk)
		if _, media := err.(*nvm.MediaError); media {
			// The node behind prev.next could not be read; cut there.
			truncate(prev)
			err = nil
		}
	} else {
		err = walk()
	}
	if err != nil {
		return st, err
	}

	if salvage {
		n := h.ArrayLen(arr)
		for i := 1; i < n; i++ {
			boff := layout.ElemOff(layout.FTRef, i)
			ref := layout.Ref(layout.UntagRef(layout.Ref(h.GetWord(arr, boff))))
			if ref == layout.NullRef || surviving[ref] {
				continue
			}
			h.SetWord(arr, boff, uint64(layout.NullRef))
			h.FlushRange(arr, boff, 8)
			st.BucketsReset++
		}
	}

	// Journal the walk's verdict. Every repair above ended in its own
	// flush; the append needs no fence of its own.
	h.FlightRecorder().Append(blackbox.EvRecoveryIndex,
		uint64(st.Entries), uint64(st.Pruned), uint64(st.DirtyCleared))
	return st, nil
}
