package h2

// An in-memory B+tree mapping int64 primary keys to uint64 row locators.
// H2 proper persists its indexes in the MVStore; here the index is
// volatile and rebuilt by scanning the row pages at open — a legitimate
// recovery design (the pages are the durable truth) that keeps index
// maintenance off the crash-consistency critical path. See DESIGN.md.

const btreeOrder = 64 // max keys per node

type btreeNode struct {
	leaf     bool
	keys     []int64
	vals     []uint64     // leaves only
	children []*btreeNode // interior only
	next     *btreeNode   // leaf chain for range scans
}

// BTree is the index structure.
type BTree struct {
	root *btreeNode
	size int
}

// NewBTree creates an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &btreeNode{leaf: true}}
}

// Len reports the number of keys.
func (t *BTree) Len() int { return t.size }

func (n *btreeNode) search(key int64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get looks up a key.
func (t *BTree) Get(key int64) (uint64, bool) {
	n := t.root
	for !n.leaf {
		i := n.search(key)
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		n = n.children[i]
	}
	i := n.search(key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	return 0, false
}

// Put inserts or updates a key.
func (t *BTree) Put(key int64, val uint64) {
	midKey, right := t.root.insert(key, val, t)
	if right != nil {
		t.root = &btreeNode{
			keys:     []int64{midKey},
			children: []*btreeNode{t.root, right},
		}
	}
}

// insert returns a (separator, newRight) pair when the node split.
func (n *btreeNode) insert(key int64, val uint64, t *BTree) (int64, *btreeNode) {
	if n.leaf {
		i := n.search(key)
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = val
			return 0, nil
		}
		n.keys = append(n.keys, 0)
		n.vals = append(n.vals, 0)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.vals[i+1:], n.vals[i:])
		n.keys[i] = key
		n.vals[i] = val
		t.size++
		if len(n.keys) <= btreeOrder {
			return 0, nil
		}
		mid := len(n.keys) / 2
		right := &btreeNode{
			leaf: true,
			keys: append([]int64(nil), n.keys[mid:]...),
			vals: append([]uint64(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = right
		return right.keys[0], right
	}
	i := n.search(key)
	if i < len(n.keys) && n.keys[i] == key {
		i++
	}
	sep, right := n.children[i].insert(key, val, t)
	if right == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.keys) <= btreeOrder {
		return 0, nil
	}
	mid := len(n.keys) / 2
	sepUp := n.keys[mid]
	r := &btreeNode{
		keys:     append([]int64(nil), n.keys[mid+1:]...),
		children: append([]*btreeNode(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return sepUp, r
}

// Delete removes a key, reporting whether it was present. Leaves may
// underflow (no rebalancing); lookups and scans stay correct, and the
// tree is rebuilt compact at every database open.
func (t *BTree) Delete(key int64) bool {
	n := t.root
	for !n.leaf {
		i := n.search(key)
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		n = n.children[i]
	}
	i := n.search(key)
	if i < len(n.keys) && n.keys[i] == key {
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		t.size--
		return true
	}
	return false
}

// Scan visits keys in [from, to] in order; fn returns false to stop.
func (t *BTree) Scan(from, to int64, fn func(key int64, val uint64) bool) {
	n := t.root
	for !n.leaf {
		i := n.search(from)
		if i < len(n.keys) && n.keys[i] == from {
			i++
		}
		n = n.children[i]
	}
	for n != nil {
		for i, k := range n.keys {
			if k < from {
				continue
			}
			if k > to {
				return
			}
			if !fn(k, n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}
