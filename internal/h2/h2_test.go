package h2

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"espresso/internal/nvm"
)

func testDB(t testing.TB) *DB {
	t.Helper()
	db, err := New(16<<20, nvm.Tracked)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("CREATE TABLE person (id BIGINT PRIMARY KEY, name VARCHAR, score DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO person (id, name, score) VALUES (1, 'Jimmy', 9.5)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO person (id, name, score) VALUES (?, ?, ?)",
		IntV(2), StrV("Alice"), FloatV(7.25)); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query("SELECT name, score FROM person WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || !rows.Next() {
		t.Fatalf("rows = %d", rows.Len())
	}
	r := rows.Row()
	if r[0].S != "Alice" || r[1].F != 7.25 {
		t.Fatalf("row = %v", r)
	}
	all, err := db.Query("SELECT * FROM person")
	if err != nil || all.Len() != 2 {
		t.Fatalf("select * → %d rows, err %v", all.Len(), err)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := testDB(t)
	db.Exec("CREATE TABLE t (id BIGINT PRIMARY KEY, v VARCHAR)")
	for i := 0; i < 10; i++ {
		if _, err := db.Exec("INSERT INTO t (id, v) VALUES (?, ?)", IntV(int64(i)), StrV(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	n, err := db.Exec("UPDATE t SET v = 'changed' WHERE id = 5")
	if err != nil || n != 1 {
		t.Fatalf("update n=%d err=%v", n, err)
	}
	rows, _ := db.Query("SELECT v FROM t WHERE id = 5")
	rows.Next()
	if rows.Row()[0].S != "changed" {
		t.Fatalf("update lost: %v", rows.Row())
	}
	n, err = db.Exec("DELETE FROM t WHERE id = 3")
	if err != nil || n != 1 {
		t.Fatalf("delete n=%d err=%v", n, err)
	}
	rows, _ = db.Query("SELECT * FROM t")
	if rows.Len() != 9 {
		t.Fatalf("rows after delete = %d", rows.Len())
	}
	// Secondary-column predicate (filtered scan).
	rows, err = db.Query("SELECT id FROM t WHERE v = 'changed'")
	if err != nil || rows.Len() != 1 {
		t.Fatalf("scan query: %d %v", rows.Len(), err)
	}
	rows.Next()
	if rows.Row()[0].I != 5 {
		t.Fatalf("scan found id %d", rows.Row()[0].I)
	}
}

func TestDuplicatePKRejected(t *testing.T) {
	db := testDB(t)
	db.Exec("CREATE TABLE t (id BIGINT PRIMARY KEY, v VARCHAR)")
	db.Exec("INSERT INTO t (id, v) VALUES (1, 'a')")
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (1, 'b')"); err == nil {
		t.Fatal("duplicate primary key accepted")
	}
}

func TestTransactionRollback(t *testing.T) {
	db := testDB(t)
	db.Exec("CREATE TABLE t (id BIGINT PRIMARY KEY, v VARCHAR)")
	db.Exec("INSERT INTO t (id, v) VALUES (1, 'keep')")
	tx := db.Begin()
	tx.Exec("INSERT INTO t (id, v) VALUES (2, 'discard')")
	tx.Exec("UPDATE t SET v = 'mutated' WHERE id = 1")
	tx.Rollback()
	rows, _ := db.Query("SELECT * FROM t")
	if rows.Len() != 1 {
		t.Fatalf("rollback left %d rows", rows.Len())
	}
	rows, _ = db.Query("SELECT v FROM t WHERE id = 1")
	rows.Next()
	if rows.Row()[0].S != "keep" {
		t.Fatalf("rollback did not restore: %v", rows.Row())
	}
}

func TestRecoveryAfterCrashMidTransaction(t *testing.T) {
	db := testDB(t)
	db.Exec("CREATE TABLE t (id BIGINT PRIMARY KEY, v VARCHAR)")
	db.Exec("INSERT INTO t (id, v) VALUES (1, 'committed')")
	// Open a transaction and crash before commit.
	tx := db.Begin()
	tx.Exec("INSERT INTO t (id, v) VALUES (2, 'uncommitted')")
	tx.Exec("UPDATE t SET v = 'dirty' WHERE id = 1")
	img := db.Device().CrashImage(nvm.CrashAllDirty, 0)
	// Abandon the transaction (simulated power loss) and reopen.
	db2, err := Open(nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked}))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db2.Query("SELECT v FROM t WHERE id = 1")
	if err != nil || rows.Len() != 1 {
		t.Fatalf("recovered rows: %d err=%v", rows.Len(), err)
	}
	rows.Next()
	if rows.Row()[0].S != "committed" {
		t.Fatalf("uncommitted update survived crash: %v", rows.Row())
	}
	if r, _ := db2.Query("SELECT * FROM t WHERE id = 2"); r.Len() != 0 {
		t.Fatal("uncommitted insert survived crash")
	}
	tx.Rollback() // release the abandoned lock for cleanliness
}

func TestCommittedDataSurvivesCrash(t *testing.T) {
	db := testDB(t)
	db.Exec("CREATE TABLE t (id BIGINT PRIMARY KEY, v VARCHAR)")
	for i := 0; i < 50; i++ {
		db.Exec("INSERT INTO t (id, v) VALUES (?, ?)", IntV(int64(i)), StrV(fmt.Sprintf("row%d", i)))
	}
	img := db.Device().CrashImage(nvm.CrashFlushedOnly, 7)
	db2, err := Open(nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked}))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db2.Query("SELECT * FROM t")
	if err != nil || rows.Len() != 50 {
		t.Fatalf("recovered %d rows, err=%v", rows.Len(), err)
	}
	rows, _ = db2.Query("SELECT v FROM t WHERE id = 33")
	rows.Next()
	if rows.Row()[0].S != "row33" {
		t.Fatalf("row 33 = %v", rows.Row())
	}
}

func TestRefTableFastPath(t *testing.T) {
	db := testDB(t)
	if _, err := db.CreateRefTable("objstore"); err != nil {
		t.Fatal(err)
	}
	if err := db.PersistRef("objstore", 10, 0xdeadbeef, 0b101); err != nil {
		t.Fatal(err)
	}
	ref, ok, err := db.GetRef("objstore", 10)
	if err != nil || !ok || ref != 0xdeadbeef {
		t.Fatalf("GetRef = %#x %v %v", ref, ok, err)
	}
	// Update through the same call.
	if err := db.PersistRef("objstore", 10, 0xcafe, 0b1); err != nil {
		t.Fatal(err)
	}
	ref, _, _ = db.GetRef("objstore", 10)
	if ref != 0xcafe {
		t.Fatalf("updated ref = %#x", ref)
	}
	// Batch under one transaction.
	tx := db.Begin()
	for i := int64(0); i < 5; i++ {
		if err := tx.PersistRef("objstore", 100+i, uint64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	count := 0
	db.ScanRefs("objstore", func(pk int64, ref uint64) bool { count++; return true })
	if count != 6 {
		t.Fatalf("scan count = %d", count)
	}
	ok, err = db.DeleteRef("objstore", 10)
	if err != nil || !ok {
		t.Fatalf("DeleteRef = %v %v", ok, err)
	}
}

func TestCatalogSurvivesReopen(t *testing.T) {
	db := testDB(t)
	db.Exec("CREATE TABLE a (id BIGINT PRIMARY KEY, x VARCHAR)")
	db.CreateRefTable("b")
	db.Device().FlushAll()
	img := db.Device().CrashImage(nvm.CrashFlushedOnly, 0)
	db2, err := Open(nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked}))
	if err != nil {
		t.Fatal(err)
	}
	ta, ok := db2.TableByName("a")
	if !ok || ta.Mode != ModeRows || len(ta.Columns) != 2 {
		t.Fatalf("table a lost: %+v %v", ta, ok)
	}
	tb, ok := db2.TableByName("b")
	if !ok || tb.Mode != ModeRefs {
		t.Fatalf("table b lost: %+v %v", tb, ok)
	}
	// Inserting after reopen must not clash with catalog rows.
	if _, err := db2.Exec("INSERT INTO a (id, x) VALUES (1, 'post-reopen')"); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBTreeMatchesModel(t *testing.T) {
	f := func(ops []int16, seed int64) bool {
		bt := NewBTree()
		model := map[int64]uint64{}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			k := int64(op % 512)
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Uint64()
				bt.Put(k, v)
				model[k] = v
			case 2:
				got := bt.Delete(k)
				_, want := model[k]
				if got != want {
					return false
				}
				delete(model, k)
			}
		}
		if bt.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := bt.Get(k)
			if !ok || got != v {
				return false
			}
		}
		// Scans see keys in order.
		prev := int64(-1 << 62)
		okScan := true
		n := 0
		bt.Scan(-1<<62, 1<<62, func(k int64, v uint64) bool {
			if k <= prev || model[k] != v {
				okScan = false
				return false
			}
			prev = k
			n++
			return true
		})
		return okScan && n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeLargeSequential(t *testing.T) {
	bt := NewBTree()
	const n = 50000
	for i := 0; i < n; i++ {
		bt.Put(int64(i), uint64(i*3))
	}
	if bt.Len() != n {
		t.Fatalf("len = %d", bt.Len())
	}
	for i := 0; i < n; i += 997 {
		v, ok := bt.Get(int64(i))
		if !ok || v != uint64(i*3) {
			t.Fatalf("key %d = %d %v", i, v, ok)
		}
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	f := func(i int64, s string, fl float64) bool {
		vals := []Value{IntV(i), StrV(s), FloatV(fl), Null, RefV(uint64(i))}
		got, err := decodeRow(encodeRow(vals))
		if err != nil || len(got) != len(vals) {
			return false
		}
		for j := range vals {
			if !got[j].Equal(vals[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSQLErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec("SELECT syntax oops"); err == nil {
		t.Fatal("garbage SQL accepted")
	}
	if _, err := db.Exec("INSERT INTO missing (id) VALUES (1)"); err == nil {
		t.Fatal("insert into missing table accepted")
	}
	db.Exec("CREATE TABLE t (id BIGINT PRIMARY KEY, v VARCHAR)")
	if _, err := db.Exec("INSERT INTO t (id, bogus) VALUES (1, 'x')"); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := db.Exec("CREATE TABLE nopk (v VARCHAR)"); err == nil {
		t.Fatal("table without primary key accepted")
	}
}
