package h2

import (
	"fmt"

	"espresso/internal/nvm"
)

// Device layout:
//
//	[0, 4K)       store header: magic, page count, undo-log geometry
//	[4K, 4K+U)    undo log
//	[4K+U, ...)   8 KB row pages
//
// Row data is written through (stored and flushed immediately); the undo
// log makes multi-row transactions atomic: before-images are persisted
// before the data store they cover, commit truncates the log, and open
// rolls back any survivor — the standard write-ahead undo rule.
const (
	storeMagic  = 0x4832_4442 // "H2DB"
	pageSize    = 8 << 10
	hdrBytes    = 4 << 10
	undoBytes   = 1 << 20
	pagesOff    = hdrBytes + undoBytes
	slotDirSize = 4 // u16 offset + u16 length per slot
)

// Page header: u16 slotCount, u16 freeOff (start of free space).
const pageHdrBytes = 4

type store struct {
	dev       *nvm.Device
	pageCount int
	fillPage  int // page currently receiving inserts
}

// rowID locates a record: page<<16 | slot.
type rowID uint64

func (r rowID) page() int { return int(r >> 16) }
func (r rowID) slot() int { return int(r & 0xffff) }

func makeRowID(page, slot int) rowID { return rowID(page)<<16 | rowID(slot) }

func newStore(dev *nvm.Device) *store {
	s := &store{dev: dev}
	s.pageCount = (dev.Size() - pagesOff) / pageSize
	if dev.ReadU64(0) != storeMagic {
		dev.WriteU64(0, storeMagic)
		dev.Flush(0, 8)
		dev.Fence()
	}
	return s
}

func (s *store) pageOff(p int) int { return pagesOff + p*pageSize }

func (s *store) slotCount(p int) int {
	return int(s.dev.ReadU16(s.pageOff(p)))
}

func (s *store) freeOff(p int) int {
	off := int(s.dev.ReadU16(s.pageOff(p) + 2))
	if off == 0 {
		off = pageHdrBytes
	}
	return off
}

// slotEntry reads a slot directory entry (offset, length). Length 0 means
// the slot is dead.
func (s *store) slotEntry(p, slot int) (int, int) {
	base := s.pageOff(p) + pageSize - (slot+1)*slotDirSize
	return int(s.dev.ReadU16(base)), int(s.dev.ReadU16(base + 2))
}

func (s *store) setSlotEntry(p, slot, off, length int) {
	base := s.pageOff(p) + pageSize - (slot+1)*slotDirSize
	s.dev.WriteU16(base, uint16(off))
	s.dev.WriteU16(base+2, uint16(length))
	s.dev.Flush(base, slotDirSize)
}

// insert stores a record, returning its rowID. The record bytes and the
// page header are flushed (write-through).
func (s *store) insert(rec []byte) (rowID, error) {
	if len(rec) > pageSize-pageHdrBytes-slotDirSize {
		return 0, fmt.Errorf("h2: record of %d bytes exceeds page capacity", len(rec))
	}
	for p := s.fillPage; p < s.pageCount; p++ {
		nslots := s.slotCount(p)
		free := s.freeOff(p)
		dirTop := pageSize - (nslots+1)*slotDirSize
		if free+len(rec) <= dirTop {
			off := s.pageOff(p)
			s.dev.WriteBytes(off+free, rec)
			s.dev.Flush(off+free, len(rec))
			s.setSlotEntry(p, nslots, free, len(rec))
			s.dev.WriteU16(off, uint16(nslots+1))
			s.dev.WriteU16(off+2, uint16(free+len(rec)))
			s.dev.Flush(off, pageHdrBytes)
			s.dev.Fence()
			s.fillPage = p
			return makeRowID(p, nslots), nil
		}
		// Page full; move on (no reuse of dead space until compaction).
	}
	return 0, fmt.Errorf("h2: out of database pages")
}

// read fetches a record's bytes.
func (s *store) read(id rowID) ([]byte, error) {
	p, slot := id.page(), id.slot()
	if p >= s.pageCount || slot >= s.slotCount(p) {
		return nil, fmt.Errorf("h2: dangling row id %#x", uint64(id))
	}
	off, length := s.slotEntry(p, slot)
	if length == 0 {
		return nil, fmt.Errorf("h2: deleted row id %#x", uint64(id))
	}
	out := make([]byte, length)
	s.dev.ReadBytes(s.pageOff(p)+off, out)
	return out, nil
}

// delete kills a record's slot.
func (s *store) delete(id rowID) {
	p, slot := id.page(), id.slot()
	off, _ := s.slotEntry(p, slot)
	s.setSlotEntry(p, slot, off, 0)
	s.dev.Fence()
}

// forEach visits every live record.
func (s *store) forEach(fn func(id rowID, rec []byte) error) error {
	for p := 0; p < s.pageCount; p++ {
		n := s.slotCount(p)
		for slot := 0; slot < n; slot++ {
			off, length := s.slotEntry(p, slot)
			if length == 0 {
				continue
			}
			rec := make([]byte, length)
			s.dev.ReadBytes(s.pageOff(p)+off, rec)
			if err := fn(makeRowID(p, slot), rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- Undo log ---
//
// Record: u32 deviceOff, u32 length, bytes. Header word: active flag;
// second word: used bytes.

const (
	undoStateOff = hdrBytes
	undoCountOff = hdrBytes + 8
	undoDataOff  = hdrBytes + 16
)

type undoLog struct{ dev *nvm.Device }

func (u undoLog) begin() {
	u.dev.WriteU64(undoCountOff, 0)
	u.dev.WriteU64(undoStateOff, 1)
	u.dev.Flush(undoStateOff, 16)
	u.dev.Fence()
}

// record saves the before-image of [off, off+n) and persists it before
// the caller overwrites the range.
func (u undoLog) record(off, n int) error {
	used := int(u.dev.ReadU64(undoCountOff))
	if undoDataOff+used+8+n > hdrBytes+undoBytes {
		return fmt.Errorf("h2: transaction too large for undo log")
	}
	at := undoDataOff + used
	u.dev.WriteU32(at, uint32(off))
	u.dev.WriteU32(at+4, uint32(n))
	buf := make([]byte, n)
	u.dev.ReadBytes(off, buf)
	u.dev.WriteBytes(at+8, buf)
	u.dev.Flush(at, 8+n)
	u.dev.WriteU64(undoCountOff, uint64(used+8+n))
	u.dev.Flush(undoCountOff, 8)
	u.dev.Fence()
	return nil
}

func (u undoLog) commit() {
	u.dev.WriteU64(undoStateOff, 0)
	u.dev.Flush(undoStateOff, 8)
	u.dev.Fence()
}

// rollback re-applies before-images in reverse order.
func (u undoLog) rollback() {
	used := int(u.dev.ReadU64(undoCountOff))
	// Collect record offsets first (they are variable length).
	var recs []int
	for at := undoDataOff; at < undoDataOff+used; {
		n := int(u.dev.ReadU32(at + 4))
		recs = append(recs, at)
		at += 8 + n
	}
	for i := len(recs) - 1; i >= 0; i-- {
		at := recs[i]
		off := int(u.dev.ReadU32(at))
		n := int(u.dev.ReadU32(at + 4))
		buf := make([]byte, n)
		u.dev.ReadBytes(at+8, buf)
		u.dev.WriteBytes(off, buf)
		u.dev.Flush(off, n)
	}
	u.dev.Fence()
	u.commit()
}

// pending reports whether an uncommitted transaction's log survives.
func (u undoLog) pending() bool { return u.dev.ReadU64(undoStateOff) == 1 }
