// Package h2 is an embedded relational database in the role of the
// paper's H2 backend: slotted row pages stored on an NVM device with
// write-through persistence, physical undo logging for transaction
// atomicity, a B+tree primary-key index per table (rebuilt at open, the
// way H2 recovers its indexes), a SQL execution engine fed by package
// sql, and a JDBC-like Conn/Stmt API.
//
// Two row-storage modes exist, matching the paper's two configurations:
//
//   - ModeRows ("H2-JPA"): the row's values are serialized into the
//     database's own pages — data arrives via SQL as statements, never as
//     objects (§2.1: "only SQL statements are conveyed to DBMSes").
//   - ModeRefs ("H2-PJO"): the row is a DBPersistable whose data fields
//     already live in the persistent Java heap; the database stores only
//     the object reference and its own transaction-control records
//     (§5: the ~600-LoC H2 modification).
package h2

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Kind tags a Value.
type Kind uint8

const (
	KNull Kind = iota
	KInt
	KStr
	KFloat
	KRef // persistent-object reference (ModeRefs payload)
)

// Value is one column value.
type Value struct {
	Kind Kind
	I    int64
	S    string
	F    float64
}

// IntV builds an integer value.
func IntV(v int64) Value { return Value{Kind: KInt, I: v} }

// StrV builds a string value.
func StrV(s string) Value { return Value{Kind: KStr, S: s} }

// FloatV builds a float value.
func FloatV(f float64) Value { return Value{Kind: KFloat, F: f} }

// RefV builds an object-reference value.
func RefV(r uint64) Value { return Value{Kind: KRef, I: int64(r)} }

// Null is the SQL NULL.
var Null = Value{Kind: KNull}

func (v Value) String() string {
	switch v.Kind {
	case KNull:
		return "NULL"
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KStr:
		return v.S
	case KFloat:
		return fmt.Sprintf("%g", v.F)
	case KRef:
		return fmt.Sprintf("ref:%#x", uint64(v.I))
	}
	return "?"
}

// Equal compares two values.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KNull:
		return true
	case KStr:
		return v.S == o.S
	case KFloat:
		return v.F == o.F
	default:
		return v.I == o.I
	}
}

// encodeRow serializes a row.
func encodeRow(vals []Value) []byte {
	n := 2
	for _, v := range vals {
		n += 1
		switch v.Kind {
		case KInt, KFloat, KRef:
			n += 8
		case KStr:
			n += 4 + len(v.S)
		}
	}
	buf := make([]byte, n)
	binary.LittleEndian.PutUint16(buf, uint16(len(vals)))
	p := 2
	for _, v := range vals {
		buf[p] = byte(v.Kind)
		p++
		switch v.Kind {
		case KInt, KRef:
			binary.LittleEndian.PutUint64(buf[p:], uint64(v.I))
			p += 8
		case KFloat:
			binary.LittleEndian.PutUint64(buf[p:], math.Float64bits(v.F))
			p += 8
		case KStr:
			binary.LittleEndian.PutUint32(buf[p:], uint32(len(v.S)))
			p += 4
			p += copy(buf[p:], v.S)
		}
	}
	return buf
}

// decodeRow parses a serialized row.
func decodeRow(b []byte) ([]Value, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("h2: truncated row")
	}
	n := int(binary.LittleEndian.Uint16(b))
	vals := make([]Value, 0, n)
	p := 2
	for i := 0; i < n; i++ {
		if p >= len(b) {
			return nil, fmt.Errorf("h2: truncated row value %d", i)
		}
		k := Kind(b[p])
		p++
		var v Value
		v.Kind = k
		switch k {
		case KNull:
		case KInt, KRef:
			if p+8 > len(b) {
				return nil, fmt.Errorf("h2: truncated int value")
			}
			v.I = int64(binary.LittleEndian.Uint64(b[p:]))
			p += 8
		case KFloat:
			if p+8 > len(b) {
				return nil, fmt.Errorf("h2: truncated float value")
			}
			v.F = math.Float64frombits(binary.LittleEndian.Uint64(b[p:]))
			p += 8
		case KStr:
			if p+4 > len(b) {
				return nil, fmt.Errorf("h2: truncated string header")
			}
			sl := int(binary.LittleEndian.Uint32(b[p:]))
			p += 4
			if p+sl > len(b) {
				return nil, fmt.Errorf("h2: truncated string value")
			}
			v.S = string(b[p : p+sl])
			p += sl
		default:
			return nil, fmt.Errorf("h2: unknown value kind %d", k)
		}
		vals = append(vals, v)
	}
	return vals, nil
}
