package h2

import (
	"fmt"

	"espresso/internal/sql"
)

// SQL execution: bind parameters, plan (primary-key point access when the
// predicate allows, full scan otherwise), run against the store.

// Rows is a materialized result set with a JDBC-flavored cursor.
type Rows struct {
	Columns []string
	rows    [][]Value
	i       int
}

// Next advances the cursor, reporting whether a row is available.
func (r *Rows) Next() bool {
	if r.i >= len(r.rows) {
		return false
	}
	r.i++
	return true
}

// Row returns the current row's values.
func (r *Rows) Row() []Value { return r.rows[r.i-1] }

// Len reports the number of rows.
func (r *Rows) Len() int { return len(r.rows) }

func bindExpr(e sql.Expr, params []Value, nextParam *int) (Value, error) {
	switch {
	case e.Param:
		if *nextParam >= len(params) {
			return Null, fmt.Errorf("h2: not enough parameters")
		}
		v := params[*nextParam]
		*nextParam++
		return v, nil
	case e.IsInt:
		return IntV(e.Int), nil
	case e.IsStr:
		return StrV(e.Str), nil
	case e.IsReal:
		return FloatV(e.Real), nil
	default:
		return Null, nil
	}
}

// ExecStmt runs a pre-parsed mutating statement (prepared-statement path).
func (db *DB) ExecStmt(st sql.Statement, params ...Value) (int, error) {
	tx := db.Begin()
	n, err := db.execStmtLocked(st, params)
	if err != nil {
		tx.Rollback()
		return n, err
	}
	tx.Commit()
	return n, nil
}

// ExecStmt runs a pre-parsed statement inside the transaction.
func (tx *Tx) ExecStmt(st sql.Statement, params ...Value) (int, error) {
	return tx.db.execStmtLocked(st, params)
}

func (db *DB) execLocked(text string, params []Value) (int, error) {
	st, err := sql.Parse(text)
	if err != nil {
		return 0, err
	}
	return db.execStmtLocked(st, params)
}

func (db *DB) execStmtLocked(st sql.Statement, params []Value) (int, error) {
	switch s := st.(type) {
	case *sql.CreateTable:
		_, err := db.createTable(s.Table, s.Columns, ModeRows)
		return 0, err

	case *sql.Insert:
		t, ok := db.tables[s.Table]
		if !ok {
			return 0, fmt.Errorf("h2: no table %s", s.Table)
		}
		vals := make([]Value, len(t.Columns))
		for i := range vals {
			vals[i] = Null
		}
		nextParam := 0
		for i, col := range s.Columns {
			ci, err := t.colIndex(col)
			if err != nil {
				return 0, err
			}
			v, err := bindExpr(s.Values[i], params, &nextParam)
			if err != nil {
				return 0, err
			}
			vals[ci] = v
		}
		if vals[t.PKIdx].Kind != KInt {
			return 0, fmt.Errorf("h2: insert into %s without integer primary key", t.Name)
		}
		return 1, db.insertRow(t, vals)

	case *sql.Update:
		t, ok := db.tables[s.Table]
		if !ok {
			return 0, fmt.Errorf("h2: no table %s", s.Table)
		}
		nextParam := 0
		type setv struct {
			ci int
			v  Value
		}
		var sets []setv
		for _, a := range s.Set {
			ci, err := t.colIndex(a.Column)
			if err != nil {
				return 0, err
			}
			v, err := bindExpr(a.Value, params, &nextParam)
			if err != nil {
				return 0, err
			}
			sets = append(sets, setv{ci, v})
		}
		pks, err := db.planKeys(t, s.Where, params, &nextParam)
		if err != nil {
			return 0, err
		}
		n := 0
		for _, pk := range pks {
			ok, err := db.updateRow(t, pk, func(vals []Value) error {
				for _, sv := range sets {
					vals[sv.ci] = sv.v
				}
				return nil
			})
			if err != nil {
				return n, err
			}
			if ok {
				n++
			}
		}
		return n, nil

	case *sql.Delete:
		t, ok := db.tables[s.Table]
		if !ok {
			return 0, fmt.Errorf("h2: no table %s", s.Table)
		}
		nextParam := 0
		pks, err := db.planKeys(t, s.Where, params, &nextParam)
		if err != nil {
			return 0, err
		}
		n := 0
		for _, pk := range pks {
			ok, err := db.deleteRow(t, pk)
			if err != nil {
				return n, err
			}
			if ok {
				n++
			}
		}
		return n, nil

	default:
		return 0, fmt.Errorf("h2: statement is not executable with Exec")
	}
}

// planKeys resolves a WHERE clause to the list of primary keys to touch:
// a point lookup when the predicate is on the primary key, otherwise a
// filtered scan.
func (db *DB) planKeys(t *Table, where *sql.Cond, params []Value, nextParam *int) ([]int64, error) {
	if where == nil {
		var pks []int64
		t.index.Scan(-1<<63, 1<<63-1, func(k int64, _ uint64) bool {
			pks = append(pks, k)
			return true
		})
		return pks, nil
	}
	ci, err := t.colIndex(where.Column)
	if err != nil {
		return nil, err
	}
	v, err := bindExpr(where.Value, params, nextParam)
	if err != nil {
		return nil, err
	}
	if ci == t.PKIdx {
		if v.Kind != KInt {
			return nil, fmt.Errorf("h2: primary key predicate must be an integer")
		}
		if _, ok := t.index.Get(v.I); ok {
			return []int64{v.I}, nil
		}
		return nil, nil
	}
	// Secondary predicate: full scan with filter.
	var pks []int64
	var scanErr error
	t.index.Scan(-1<<63, 1<<63-1, func(k int64, id uint64) bool {
		rec, err := db.store.read(rowID(id))
		if err != nil {
			scanErr = err
			return false
		}
		vals, err := decodeRow(rec[2:])
		if err != nil {
			scanErr = err
			return false
		}
		if vals[ci].Equal(v) {
			pks = append(pks, k)
		}
		return true
	})
	return pks, scanErr
}

func (db *DB) queryLocked(text string, params []Value) (*Rows, error) {
	st, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	return db.queryStmtLocked(st, params)
}

// QueryStmt runs a pre-parsed SELECT.
func (db *DB) QueryStmt(st sql.Statement, params ...Value) (*Rows, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.queryStmtLocked(st, params)
}

func (db *DB) queryStmtLocked(st sql.Statement, params []Value) (*Rows, error) {
	s, ok := st.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("h2: Query requires a SELECT")
	}
	t, tok := db.tables[s.Table]
	if !tok {
		return nil, fmt.Errorf("h2: no table %s", s.Table)
	}
	nextParam := 0
	pks, err := db.planKeys(t, s.Where, params, &nextParam)
	if err != nil {
		return nil, err
	}
	var proj []int
	var names []string
	if s.Columns == nil {
		for i, c := range t.Columns {
			proj = append(proj, i)
			names = append(names, c.Name)
		}
	} else {
		for _, cn := range s.Columns {
			ci, err := t.colIndex(cn)
			if err != nil {
				return nil, err
			}
			proj = append(proj, ci)
			names = append(names, cn)
		}
	}
	out := &Rows{Columns: names}
	for _, pk := range pks {
		vals, ok, err := db.getRow(t, pk)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		row := make([]Value, len(proj))
		for i, ci := range proj {
			row[i] = vals[ci]
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

// --- PJO fast path (DBPersistable shipping) ---

// PersistRef inserts or updates a ModeRefs row: the persistent-object
// reference plus the dirty-field bitmap the PJO provider tracked
// (field-level tracking, §5). No SQL is built or parsed. Auto-commits;
// use Tx.PersistRef to batch several under one transaction.
func (db *DB) PersistRef(table string, pk int64, ref uint64, dirty uint64) error {
	tx := db.Begin()
	if err := db.persistRefLocked(table, pk, ref, dirty); err != nil {
		tx.Rollback()
		return err
	}
	tx.Commit()
	return nil
}

// PersistRef is the transactional form of DB.PersistRef.
func (tx *Tx) PersistRef(table string, pk int64, ref uint64, dirty uint64) error {
	return tx.db.persistRefLocked(table, pk, ref, dirty)
}

func (db *DB) persistRefLocked(table string, pk int64, ref uint64, dirty uint64) error {
	t, ok := db.tables[table]
	if !ok {
		return fmt.Errorf("h2: no table %s", table)
	}
	if t.Mode != ModeRefs {
		return fmt.Errorf("h2: table %s does not store object references", table)
	}
	vals := []Value{IntV(pk), RefV(ref), IntV(int64(dirty))}
	if _, exists := t.index.Get(pk); exists {
		_, err := db.updateRow(t, pk, func(old []Value) error {
			copy(old, vals)
			return nil
		})
		return err
	}
	return db.insertRow(t, vals)
}

// GetRef fetches the object reference stored for pk.
func (db *DB) GetRef(table string, pk int64) (uint64, bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return 0, false, fmt.Errorf("h2: no table %s", table)
	}
	vals, found, err := db.getRow(t, pk)
	if err != nil || !found {
		return 0, false, err
	}
	return uint64(vals[1].I), true, nil
}

// DeleteRef removes a ModeRefs row (auto-commit).
func (db *DB) DeleteRef(table string, pk int64) (bool, error) {
	tx := db.Begin()
	ok, err := tx.db.deleteRefLocked(table, pk)
	if err != nil {
		tx.Rollback()
		return ok, err
	}
	tx.Commit()
	return ok, nil
}

// DeleteRef is the transactional form of DB.DeleteRef.
func (tx *Tx) DeleteRef(table string, pk int64) (bool, error) {
	return tx.db.deleteRefLocked(table, pk)
}

func (db *DB) deleteRefLocked(table string, pk int64) (bool, error) {
	t, ok := db.tables[table]
	if !ok {
		return false, fmt.Errorf("h2: no table %s", table)
	}
	return db.deleteRow(t, pk)
}

// ScanRefs visits every (pk, ref) pair in a ModeRefs table.
func (db *DB) ScanRefs(table string, fn func(pk int64, ref uint64) bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return fmt.Errorf("h2: no table %s", table)
	}
	var scanErr error
	t.index.Scan(-1<<63, 1<<63-1, func(k int64, id uint64) bool {
		vals, found, err := db.getRow(t, k)
		if err != nil {
			scanErr = err
			return false
		}
		if !found {
			return true
		}
		return fn(k, uint64(vals[1].I))
	})
	return scanErr
}
