package h2

import (
	"encoding/binary"
	"fmt"
	"sync"

	"espresso/internal/nvm"
	"espresso/internal/sql"
)

// StorageMode selects how a table stores rows (see the package comment).
type StorageMode uint8

const (
	// ModeRows serializes column values into the database's pages.
	ModeRows StorageMode = iota
	// ModeRefs stores a persistent-object reference per row; the values
	// live in PJH and belong to the PJO layer.
	ModeRefs
)

// Table is one table's metadata plus its primary-key index.
type Table struct {
	ID      uint16
	Name    string
	Columns []sql.ColumnDef
	PKIdx   int
	Mode    StorageMode
	index   *BTree
}

func (t *Table) colIndex(name string) (int, error) {
	for i, c := range t.Columns {
		if c.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("h2: table %s has no column %q", t.Name, name)
}

// DB is one embedded database instance.
type DB struct {
	mu      sync.Mutex
	dev     *nvm.Device
	store   *store
	undo    undoLog
	tables  map[string]*Table
	byID    map[uint16]*Table
	nextTID uint16
	inTx    bool
}

// Open attaches to (or formats) a database on dev, rolling back any
// transaction that was active at the crash and rebuilding the catalog and
// every index from the row pages.
func Open(dev *nvm.Device) (*DB, error) {
	db := &DB{
		dev:     dev,
		store:   newStore(dev),
		undo:    undoLog{dev},
		tables:  make(map[string]*Table),
		byID:    make(map[uint16]*Table),
		nextTID: 1,
	}
	if db.undo.pending() {
		db.undo.rollback()
	}
	// Pass 1: catalog records (table id 0).
	err := db.store.forEach(func(id rowID, rec []byte) error {
		if binary.LittleEndian.Uint16(rec) != 0 {
			return nil
		}
		t, err := decodeCatalogRow(rec[2:])
		if err != nil {
			return err
		}
		t.index = NewBTree()
		db.tables[t.Name] = t
		db.byID[t.ID] = t
		if t.ID >= db.nextTID {
			db.nextTID = t.ID + 1
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Pass 2: data rows → indexes.
	err = db.store.forEach(func(id rowID, rec []byte) error {
		tid := binary.LittleEndian.Uint16(rec)
		if tid == 0 {
			return nil
		}
		t, ok := db.byID[tid]
		if !ok {
			return fmt.Errorf("h2: row for unknown table id %d", tid)
		}
		vals, err := decodeRow(rec[2:])
		if err != nil {
			return err
		}
		t.index.Put(vals[t.PKIdx].I, uint64(id))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// New creates a database on a fresh device of the given size.
func New(size int, mode nvm.Mode) (*DB, error) {
	return Open(nvm.New(nvm.Config{Size: size, Mode: mode}))
}

// Device exposes the backing device (stats, crash images).
func (db *DB) Device() *nvm.Device { return db.dev }

// TableByName looks a table up.
func (db *DB) TableByName(name string) (*Table, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	return t, ok
}

func encodeCatalogRow(t *Table) []byte {
	vals := []Value{IntV(int64(t.ID)), StrV(t.Name), IntV(int64(t.PKIdx)), IntV(int64(t.Mode)), IntV(int64(len(t.Columns)))}
	for _, c := range t.Columns {
		pk := int64(0)
		if c.PrimaryKey {
			pk = 1
		}
		vals = append(vals, StrV(c.Name), IntV(int64(c.Type)), IntV(pk))
	}
	return encodeRow(vals)
}

func decodeCatalogRow(b []byte) (*Table, error) {
	vals, err := decodeRow(b)
	if err != nil {
		return nil, err
	}
	if len(vals) < 5 {
		return nil, fmt.Errorf("h2: corrupt catalog row")
	}
	t := &Table{
		ID:    uint16(vals[0].I),
		Name:  vals[1].S,
		PKIdx: int(vals[2].I),
		Mode:  StorageMode(vals[3].I),
	}
	n := int(vals[4].I)
	if len(vals) != 5+3*n {
		return nil, fmt.Errorf("h2: corrupt catalog columns")
	}
	for i := 0; i < n; i++ {
		t.Columns = append(t.Columns, sql.ColumnDef{
			Name:       vals[5+3*i].S,
			Type:       sql.ColumnType(vals[5+3*i+1].I),
			PrimaryKey: vals[5+3*i+2].I == 1,
		})
	}
	return t, nil
}

// createTable registers a table and persists its catalog row.
func (db *DB) createTable(name string, cols []sql.ColumnDef, mode StorageMode) (*Table, error) {
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("h2: table %s already exists", name)
	}
	pk := -1
	for i, c := range cols {
		if c.PrimaryKey {
			if pk >= 0 {
				return nil, fmt.Errorf("h2: table %s: multiple primary keys", name)
			}
			pk = i
		}
	}
	if pk < 0 {
		return nil, fmt.Errorf("h2: table %s needs a BIGINT primary key", name)
	}
	if cols[pk].Type != sql.ColBigint {
		return nil, fmt.Errorf("h2: table %s: primary key must be BIGINT", name)
	}
	t := &Table{ID: db.nextTID, Name: name, Columns: cols, PKIdx: pk, Mode: mode, index: NewBTree()}
	db.nextTID++
	rec := append(make([]byte, 2), encodeCatalogRow(t)...)
	// table id 0 tag is already the zero prefix
	if _, err := db.store.insert(rec); err != nil {
		return nil, err
	}
	db.tables[name] = t
	db.byID[t.ID] = t
	return t, nil
}

// CreateRefTable creates a ModeRefs table for the PJO fast path: the
// schema is (id BIGINT PRIMARY KEY, obj REF, dirty BIGINT).
func (db *DB) CreateRefTable(name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.createTable(name, []sql.ColumnDef{
		{Name: "id", Type: sql.ColBigint, PrimaryKey: true},
		{Name: "obj", Type: sql.ColBigint},
		{Name: "dirty", Type: sql.ColBigint},
	}, ModeRefs)
}

// --- Row mutations (shared by SQL execution and the fast path) ---

func (db *DB) insertRow(t *Table, vals []Value) error {
	pk := vals[t.PKIdx].I
	if _, dup := t.index.Get(pk); dup {
		return fmt.Errorf("h2: duplicate primary key %d in %s", pk, t.Name)
	}
	rec := make([]byte, 2)
	binary.LittleEndian.PutUint16(rec, t.ID)
	rec = append(rec, encodeRow(vals)...)
	// Undo rule: before-image of the page region the insert will touch is
	// the page header + slot dir; recording the header range suffices to
	// logically erase the row on rollback.
	id, err := db.insertLogged(rec)
	if err != nil {
		return err
	}
	t.index.Put(pk, uint64(id))
	return nil
}

func (db *DB) insertLogged(rec []byte) (rowID, error) {
	// Find the page the insert will land on to log its header state.
	p := db.store.fillPage
	for ; p < db.store.pageCount; p++ {
		nslots := db.store.slotCount(p)
		free := db.store.freeOff(p)
		if free+len(rec) <= pageSize-(nslots+1)*slotDirSize {
			break
		}
	}
	if p >= db.store.pageCount {
		return 0, fmt.Errorf("h2: out of database pages")
	}
	off := db.store.pageOff(p)
	if err := db.undo.record(off, pageHdrBytes); err != nil {
		return 0, err
	}
	nslots := db.store.slotCount(p)
	dirBase := off + pageSize - (nslots+1)*slotDirSize
	if err := db.undo.record(dirBase, slotDirSize); err != nil {
		return 0, err
	}
	return db.store.insert(rec)
}

func (db *DB) deleteRow(t *Table, pk int64) (bool, error) {
	idU, ok := t.index.Get(pk)
	if !ok {
		return false, nil
	}
	id := rowID(idU)
	p, slot := id.page(), id.slot()
	dirBase := db.store.pageOff(p) + pageSize - (slot+1)*slotDirSize
	if err := db.undo.record(dirBase, slotDirSize); err != nil {
		return false, err
	}
	db.store.delete(id)
	t.index.Delete(pk)
	return true, nil
}

func (db *DB) updateRow(t *Table, pk int64, apply func(vals []Value) error) (bool, error) {
	idU, ok := t.index.Get(pk)
	if !ok {
		return false, nil
	}
	rec, err := db.store.read(rowID(idU))
	if err != nil {
		return false, err
	}
	vals, err := decodeRow(rec[2:])
	if err != nil {
		return false, err
	}
	if err := apply(vals); err != nil {
		return false, err
	}
	if vals[t.PKIdx].I != pk {
		return false, fmt.Errorf("h2: updating the primary key is not supported")
	}
	// Delete + reinsert (rows are variable length).
	if _, err := db.deleteRow(t, pk); err != nil {
		return false, err
	}
	return true, db.insertRow(t, vals)
}

func (db *DB) getRow(t *Table, pk int64) ([]Value, bool, error) {
	idU, ok := t.index.Get(pk)
	if !ok {
		return nil, false, nil
	}
	rec, err := db.store.read(rowID(idU))
	if err != nil {
		return nil, false, err
	}
	vals, err := decodeRow(rec[2:])
	return vals, true, err
}

// --- Transactions ---

// Tx is an open transaction. The database serializes transactions under
// one lock, as the paper's single-node H2 deployment effectively does.
type Tx struct {
	db   *DB
	done bool
}

// Begin opens a transaction.
func (db *DB) Begin() *Tx {
	db.mu.Lock()
	db.inTx = true
	db.undo.begin()
	return &Tx{db: db}
}

// Commit makes the transaction durable.
func (tx *Tx) Commit() {
	tx.db.undo.commit()
	tx.db.inTx = false
	tx.done = true
	tx.db.mu.Unlock()
}

// Rollback undoes the transaction.
func (tx *Tx) Rollback() {
	tx.db.undo.rollback()
	// Indexes may now disagree with the pages; rebuild them.
	tx.db.rebuildIndexes()
	tx.db.inTx = false
	tx.done = true
	tx.db.mu.Unlock()
}

func (db *DB) rebuildIndexes() {
	for _, t := range db.tables {
		t.index = NewBTree()
	}
	db.store.fillPage = 0
	_ = db.store.forEach(func(id rowID, rec []byte) error {
		tid := binary.LittleEndian.Uint16(rec)
		if tid == 0 {
			return nil
		}
		if t, ok := db.byID[tid]; ok {
			vals, err := decodeRow(rec[2:])
			if err == nil {
				t.index.Put(vals[t.PKIdx].I, uint64(id))
			}
		}
		return nil
	})
}

// Exec runs a mutating statement inside the transaction.
func (tx *Tx) Exec(text string, params ...Value) (int, error) {
	return tx.db.execLocked(text, params)
}

// Query runs a SELECT inside the transaction.
func (tx *Tx) Query(text string, params ...Value) (*Rows, error) {
	return tx.db.queryLocked(text, params)
}

// Exec runs one auto-committed statement.
func (db *DB) Exec(text string, params ...Value) (int, error) {
	tx := db.Begin()
	n, err := db.execLocked(text, params)
	if err != nil {
		tx.Rollback()
		return n, err
	}
	tx.Commit()
	return n, nil
}

// Query runs one SELECT (no transaction needed: reads are stable under
// the global lock).
func (db *DB) Query(text string, params ...Value) (*Rows, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.queryLocked(text, params)
}
