package pjo

import (
	"testing"

	"espresso/internal/core"
	"espresso/internal/h2"
	"espresso/internal/jpa"
	"espresso/internal/jpab"
	"espresso/internal/nvm"
)

func newProviders(t testing.TB) (*jpa.Provider, *Provider) {
	t.Helper()
	dbJPA, err := h2.New(32<<20, nvm.Direct)
	if err != nil {
		t.Fatal(err)
	}
	dbPJO, err := h2.New(32<<20, nvm.Direct)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(core.Config{PJHDataSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.CreateHeap("pjo", 0); err != nil {
		t.Fatal(err)
	}
	return jpa.NewProvider(dbJPA), NewProvider(rt, dbPJO)
}

func crudSmoke(t *testing.T, em jpa.EntityManager) {
	t.Helper()
	def := jpab.Person
	if err := em.EnsureSchema(def); err != nil {
		t.Fatal(err)
	}
	em.Begin()
	e := def.NewEntity(1)
	e.SetStr("firstName", "Mingyu")
	e.SetStr("lastName", "Wu")
	e.SetStr("email", "mw@sjtu.edu.cn")
	e.SetFloat("score", 4.5)
	if err := em.Persist(e); err != nil {
		t.Fatal(err)
	}
	if err := em.Commit(); err != nil {
		t.Fatal(err)
	}

	got, err := em.Find(def, 1)
	if err != nil || got == nil {
		t.Fatalf("find: %v %v", got, err)
	}
	if got.GetStr("firstName") != "Mingyu" || got.GetFloat("score") != 4.5 {
		t.Fatalf("retrieved %q %v", got.GetStr("firstName"), got.GetFloat("score"))
	}

	em.Begin()
	got.SetFloat("score", 9.75)
	em.Persist(got)
	if err := em.Commit(); err != nil {
		t.Fatal(err)
	}
	again, _ := em.Find(def, 1)
	if again.GetFloat("score") != 9.75 {
		t.Fatalf("update lost: %v", again.GetFloat("score"))
	}

	if err := em.EnsureSchema(def); err != nil {
		t.Fatal(err)
	}
	em.Begin()
	if err := em.Remove(again); err != nil {
		t.Fatal(err)
	}
	if err := em.Commit(); err != nil {
		t.Fatal(err)
	}
	gone, err := em.Find(def, 1)
	if err != nil || gone != nil {
		t.Fatalf("remove failed: %v %v", gone, err)
	}
}

func TestCRUDOnBothProviders(t *testing.T) {
	jp, pj := newProviders(t)
	t.Run("JPA", func(t *testing.T) { crudSmoke(t, jp) })
	t.Run("PJO", func(t *testing.T) { crudSmoke(t, pj) })
}

// TestProvidersAgreeOnJPAB runs every JPAB test on both providers and
// checks they both complete and leave empty tables (all deletes applied).
func TestProvidersAgreeOnJPAB(t *testing.T) {
	for _, test := range jpab.AllTests() {
		test := test
		t.Run(test.Name, func(t *testing.T) {
			jp, pj := newProviders(t)
			rJPA, err := jpab.Run(test, jp, 40, 10)
			if err != nil {
				t.Fatalf("JPA: %v", err)
			}
			rPJO, err := jpab.Run(test, pj, 40, 10)
			if err != nil {
				t.Fatalf("PJO: %v", err)
			}
			for _, r := range []jpab.Result{rJPA, rPJO} {
				for op, v := range r.Ops() {
					if v <= 0 {
						t.Fatalf("%s %s throughput = %v", r.Test, op, v)
					}
				}
			}
		})
	}
}

func TestDedupRedirectsReads(t *testing.T) {
	_, pj := newProviders(t)
	def := jpab.Person
	pj.EnsureSchema(def)
	pj.Begin()
	e := def.NewEntity(7)
	e.SetStr("firstName", "volatile-before-commit")
	e.SetFloat("score", 1.0)
	pj.Persist(e)
	if err := pj.Commit(); err != nil {
		t.Fatal(err)
	}
	if e.SM.PJORef == 0 {
		t.Fatal("commit did not record the persistent copy")
	}
	if e.SM.ReadThrough == nil {
		t.Fatal("dedup did not redirect the entity")
	}
	// Reads now come from NVM.
	if e.GetStr("firstName") != "volatile-before-commit" {
		t.Fatalf("read-through = %q", e.GetStr("firstName"))
	}
	// Copy-on-write: a post-dedup write must not touch the persistent
	// copy until commit.
	refBefore := e.SM.PJORef
	e.SetStr("firstName", "shadowed")
	if e.GetStr("firstName") != "shadowed" {
		t.Fatal("shadow write invisible")
	}
	fresh, _ := pj.Find(def, 7)
	if fresh.GetStr("firstName") != "volatile-before-commit" {
		t.Fatal("shadow write leaked into the persistent copy before commit")
	}
	pj.Begin()
	pj.Persist(e)
	if err := pj.Commit(); err != nil {
		t.Fatal(err)
	}
	if e.SM.PJORef != refBefore {
		t.Fatal("update should reuse the persistent copy")
	}
	fresh2, _ := pj.Find(def, 7)
	if fresh2.GetStr("firstName") != "shadowed" {
		t.Fatal("committed shadow not visible")
	}
}

func TestFieldTrackingShipsOnlyDirtyColumns(t *testing.T) {
	_, pj := newProviders(t)
	def := jpab.Person
	pj.EnsureSchema(def)
	pj.Begin()
	e := def.NewEntity(3)
	e.SetStr("firstName", "A")
	e.SetStr("lastName", "B")
	e.SetFloat("score", 2.0)
	pj.Persist(e)
	pj.Commit()

	statsBefore := pj.rt.ActiveHeap().Device().Stats()
	pj.Begin()
	e.SetFloat("score", 3.0) // one dirty field
	pj.Persist(e)
	if err := pj.Commit(); err != nil {
		t.Fatal(err)
	}
	oneField := pj.rt.ActiveHeap().Device().Stats().Sub(statsBefore).BytesWritten

	pj.FieldTracking = false
	statsBefore = pj.rt.ActiveHeap().Device().Stats()
	pj.Begin()
	e.SetFloat("score", 4.0)
	pj.Persist(e)
	if err := pj.Commit(); err != nil {
		t.Fatal(err)
	}
	allFields := pj.rt.ActiveHeap().Device().Stats().Sub(statsBefore).BytesWritten
	if oneField >= allFields {
		t.Fatalf("field tracking did not reduce NVM writes: %d vs %d", oneField, allFields)
	}
}

func TestPJODataSurvivesDatabaseCrash(t *testing.T) {
	// The backend's own logging plus PJH storage: after a crash image of
	// both devices, the committed entity is still retrievable.
	db, err := h2.New(16<<20, nvm.Tracked)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(core.Config{PJHDataSize: 8 << 20, NVMMode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	rt.CreateHeap("pjo", 0)
	pj := NewProvider(rt, db)
	def := jpab.Person
	pj.EnsureSchema(def)
	pj.Begin()
	e := def.NewEntity(11)
	e.SetStr("firstName", "durable")
	e.SetFloat("score", 6.5)
	pj.Persist(e)
	if err := pj.Commit(); err != nil {
		t.Fatal(err)
	}

	// Crash both devices; reload.
	dbImg := db.Device().CrashImage(nvm.CrashFlushedOnly, 1)
	heapImg := rt.ActiveHeap().Device().CrashImage(nvm.CrashFlushedOnly, 1)
	db2, err := h2.Open(nvm.FromImage(dbImg, nvm.Config{Mode: nvm.Tracked}))
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := core.NewRuntime(core.Config{NVMMode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt2.NameManager().Register("pjo", nvm.FromImage(heapImg, nvm.Config{Mode: nvm.Tracked})); err != nil {
		t.Fatal(err)
	}
	if _, err := rt2.LoadHeap("pjo"); err != nil {
		t.Fatal(err)
	}
	pj2 := NewProvider(rt2, db2)
	got, err := pj2.Find(def, 11)
	if err != nil || got == nil {
		t.Fatalf("find after crash: %v %v", got, err)
	}
	if got.GetStr("firstName") != "durable" || got.GetFloat("score") != 6.5 {
		t.Fatalf("recovered entity: %q %v", got.GetStr("firstName"), got.GetFloat("score"))
	}
}
