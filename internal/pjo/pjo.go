// Package pjo implements Persistent Java Objects (paper §5): the
// NVM-aware replacement for the JPA provider. It keeps the JPA interfaces
// and annotations — the same jpa.EntityManager contract — but at commit
// it materializes a DBPersistable whose data fields live in the
// persistent Java heap and ships the *object* to the backend database,
// removing the SQL transformation phase entirely (paper Figure 13).
//
// The advanced features of §5 are here too:
//
//   - data deduplication: after commit, the volatile entity's fields are
//     redirected to the persisted copy, so the DRAM values can be
//     reclaimed (Figure 14d);
//   - field-level tracking: the enhancer's dirty bitmap travels with the
//     DBPersistable so the backend updates only modified columns;
//   - copy-on-write: once deduplicated, a field write goes to a volatile
//     shadow slot, protecting the persistent copy until the next commit.
package pjo

import (
	"encoding/binary"
	"fmt"
	"math"

	"espresso/internal/bench"
	"espresso/internal/core"
	"espresso/internal/h2"
	"espresso/internal/jpa"
	"espresso/internal/klass"
	"espresso/internal/layout"
)

// Provider is the PJO provider (the modified DataNucleus of the paper).
type Provider struct {
	rt   *core.Runtime
	db   *h2.DB
	prof *bench.Breakdown
	ctx  []*jpa.Entity
	inTx bool

	// klasses caches, per entity class, the DBPersistable klass plus the
	// FieldRef handle of every column, resolved once at schema time — the
	// JIT-compiled-accessor analog. Commit and read-through go through
	// these handles instead of re-resolving field names per access.
	klasses map[*jpa.EntityDef]*dbSchema

	// stage is the reusable DRAM staging buffer materialize assembles
	// DBPersistable images in before shipping them with one bulk write.
	stage []byte

	// Dedup and FieldTracking gate the §5 optimizations; both default on.
	// The ablation benchmark switches them off individually.
	Dedup         bool
	FieldTracking bool
}

// dbSchema is the resolved persistence schema of one entity class.
type dbSchema struct {
	k      *klass.Klass
	fields []core.FieldRef // one resolved handle per flattened column
	// refOffs lists the object-relative byte offsets of the
	// reference-typed (string) columns — the slots WriteFieldImage runs
	// the write barrier for when a whole image ships in one device write.
	refOffs []int
}

// NewProvider wires a PJO provider to a runtime (whose active heap holds
// the DBPersistable objects) and a backend database.
func NewProvider(rt *core.Runtime, db *h2.DB) *Provider {
	return &Provider{rt: rt, db: db, klasses: map[*jpa.EntityDef]*dbSchema{},
		Dedup: true, FieldTracking: true}
}

// SetProfile installs a phase recorder ("Transformation"/"Database").
// PJO's transformation phase exists but is small: building the
// DBPersistable is a few word stores, not SQL text.
func (p *Provider) SetProfile(b *bench.Breakdown) { p.prof = b }

func (p *Provider) phase(name string) func() {
	if p.prof == nil {
		return func() {}
	}
	return p.prof.Phase(name)
}

// EnsureSchema creates the ModeRefs table and the DBPersistable klass for
// an entity class.
func (p *Provider) EnsureSchema(def *jpa.EntityDef) error {
	if _, ok := p.klasses[def]; ok {
		return nil
	}
	if _, ok := p.db.TableByName(def.Table); !ok {
		if _, err := p.db.CreateRefTable(def.Table); err != nil {
			return err
		}
	}
	fields := make([]klass.Field, 0, len(def.AllFields()))
	for _, f := range def.AllFields() {
		switch f.Kind {
		case jpa.FStr:
			fields = append(fields, klass.Field{Name: f.Name, Type: layout.FTRef, RefKlass: core.StringKlassName})
		default:
			fields = append(fields, klass.Field{Name: f.Name, Type: layout.FTLong})
		}
	}
	k, err := p.rt.Reg.Define(klass.MustInstance("db/"+def.Name, nil, fields...))
	if err != nil {
		return err
	}
	s := &dbSchema{k: k, fields: make([]core.FieldRef, len(def.AllFields()))}
	for i, f := range def.AllFields() {
		if s.fields[i], err = p.rt.ResolveField(k, f.Name); err != nil {
			return err
		}
		if f.Kind == jpa.FStr {
			s.refOffs = append(s.refOffs, s.fields[i].Offset())
		}
	}
	p.klasses[def] = s
	return nil
}

// Begin opens a transaction.
func (p *Provider) Begin() {
	p.ctx = p.ctx[:0]
	p.inTx = true
}

// Persist adds an entity to the persistence context.
func (p *Provider) Persist(e *jpa.Entity) error {
	if !p.inTx {
		return fmt.Errorf("pjo: persist outside a transaction")
	}
	e.SM.State = jpa.StateManaged
	p.ctx = append(p.ctx, e)
	return nil
}

// Remove marks an entity for deletion at commit.
func (p *Provider) Remove(e *jpa.Entity) error {
	if !p.inTx {
		return fmt.Errorf("pjo: remove outside a transaction")
	}
	e.SM.State = jpa.StateRemoved
	p.ctx = append(p.ctx, e)
	return nil
}

// Find loads an entity: the index lookup yields the DBPersistable
// reference, and the entity reads *through* it — no row decoding, no
// copies (retrieval is where Figure 16 shows the largest wins).
func (p *Provider) Find(def *jpa.EntityDef, id int64) (*jpa.Entity, error) {
	if err := p.EnsureSchema(def); err != nil {
		return nil, err
	}
	stopD := p.phase("Database")
	ref, ok, err := p.db.GetRef(def.Table, id)
	stopD()
	if err != nil || !ok {
		return nil, err
	}
	e := def.NewEntity(id)
	e.SM = jpa.StateManager{State: jpa.StateManaged, PJORef: ref}
	p.attachReadThrough(e, def, layout.Ref(ref))
	return e, nil
}

// attachReadThrough points the entity's field reads at the persistent
// copy (the dedup arrangement of Figure 14d). Reads go through the
// resolved FieldRef handles: one device word op per field, plus one bulk
// read for string payloads.
func (p *Provider) attachReadThrough(e *jpa.Entity, def *jpa.EntityDef, ref layout.Ref) {
	rt := p.rt
	fields := def.AllFields()
	frefs := p.klasses[def].fields
	e.SM.ReadThrough = func(i int) h2.Value {
		switch fields[i].Kind {
		case jpa.FStr:
			sref := rt.GetRefFast(ref, frefs[i])
			if sref == layout.NullRef {
				return h2.Null
			}
			s, err := rt.GetString(sref)
			if err != nil {
				return h2.Null
			}
			return h2.StrV(s)
		case jpa.FFloat:
			return h2.FloatV(math.Float64frombits(uint64(rt.GetLongFast(ref, frefs[i]))))
		default:
			return h2.IntV(rt.GetLongFast(ref, frefs[i]))
		}
	}
}

// Commit ships each dirty entity's data to NVM as a DBPersistable and
// registers it with the backend — index plus transaction control only,
// no SQL (Figure 13's persistInTable path).
func (p *Provider) Commit() error {
	if !p.inTx {
		return fmt.Errorf("pjo: commit outside a transaction")
	}
	// Transformation (much smaller than JPA's): allocate/refresh the
	// DBPersistable copies.
	type shipment struct {
		e     *jpa.Entity
		ref   layout.Ref
		dirty uint64
	}
	var ships []shipment
	var removals []*jpa.Entity
	stopT := p.phase("Transformation")
	for _, e := range p.ctx {
		if e.SM.State == jpa.StateRemoved {
			removals = append(removals, e)
			continue
		}
		if e.SM.Dirty == 0 && e.SM.PJORef != 0 {
			continue
		}
		if err := p.EnsureSchema(e.Def); err != nil {
			stopT()
			return err
		}
		ref, dirty, err := p.materialize(e)
		if err != nil {
			stopT()
			return err
		}
		ships = append(ships, shipment{e, ref, dirty})
	}
	// Each shipment is already durable: materialize ships the image with
	// one bulk write and one FlushRange (string payloads persist eagerly
	// in NewString), so every reference the backend is about to learn
	// points at persisted data — no second flush pass over the shipment.
	stopT()

	// Database: one backend transaction covering the whole commit.
	stopD := p.phase("Database")
	tx := p.db.Begin()
	for _, s := range ships {
		if err := tx.PersistRef(s.e.Def.Table, s.e.ID(), uint64(s.ref), s.dirty); err != nil {
			tx.Rollback()
			stopD()
			return err
		}
	}
	for _, e := range removals {
		if _, err := tx.DeleteRef(e.Def.Table, e.ID()); err != nil {
			tx.Rollback()
			stopD()
			return err
		}
	}
	tx.Commit()
	stopD()

	// Post-commit bookkeeping: dedup redirects the entity at the
	// persisted copy and drops shadows.
	for _, s := range ships {
		s.e.SM.PJORef = uint64(s.ref)
		s.e.SM.Dirty = 0
		s.e.SM.New = false
		s.e.SM.Shadow = nil
		if p.Dedup {
			p.attachReadThrough(s.e, s.e.Def, s.ref)
		} else {
			s.e.SM.ReadThrough = nil
		}
	}
	p.ctx = p.ctx[:0]
	p.inTx = false
	return nil
}

// materialize ships the entity's fields to its DBPersistable through the
// bulk image encoder: the whole field area is assembled in a reusable
// DRAM staging buffer — for updates, seeded by one bulk device read of
// the existing image, so clean columns (including string references)
// survive untouched — and lands through core.WriteFieldImage: bulk
// writes for the primitive runs, one barriered atomic store per string
// column, one FlushRange. Device cost per entity persist is O(1)
// regardless of how many fields are dirty (it depends only on the
// schema's column shape); only new string payloads add their own
// (bulk, one-write) allocations.
func (p *Provider) materialize(e *jpa.Entity) (layout.Ref, uint64, error) {
	s := p.klasses[e.Def]
	fields := e.Def.AllFields()
	var ref layout.Ref
	dirty := e.SM.Dirty
	fresh := e.SM.PJORef == 0
	if !fresh {
		ref = layout.Ref(e.SM.PJORef)
	} else {
		var err error
		if ref, err = p.rt.PNew(s.k, 0); err != nil {
			return 0, 0, err
		}
		dirty = ^uint64(0) >> (64 - uint(len(fields))) // all fields
	}
	if !p.FieldTracking {
		dirty = ^uint64(0) >> (64 - uint(len(fields)))
	}
	size := len(fields) * layout.WordSize
	if cap(p.stage) < size {
		p.stage = make([]byte, size)
	}
	img := p.stage[:size]
	if fresh {
		clear(img)
	} else if err := p.rt.ReadFieldImage(ref, img); err != nil {
		return 0, 0, err
	}
	base := layout.FieldOff(0)
	for i, f := range fields {
		if dirty&(1<<uint(i)) == 0 {
			continue
		}
		v := e.Value(i)
		var bits uint64
		switch f.Kind {
		case jpa.FStr:
			if v.Kind == h2.KStr {
				sref, err := p.rt.NewString(v.S, true)
				if err != nil {
					return 0, 0, err
				}
				bits = uint64(sref)
			}
		case jpa.FFloat:
			bits = math.Float64bits(v.F)
			if v.Kind == h2.KInt {
				bits = uint64(v.I)
			}
		default:
			bits = uint64(v.I)
		}
		binary.LittleEndian.PutUint64(img[s.fields[i].Offset()-base:], bits)
	}
	if err := p.rt.WriteFieldImage(ref, img, s.refOffs); err != nil {
		return 0, 0, err
	}
	return ref, dirty, nil
}

var _ jpa.EntityManager = (*Provider)(nil)
var _ jpa.EntityManager = (*jpa.Provider)(nil)
