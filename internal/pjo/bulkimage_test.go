package pjo

import (
	"fmt"
	"testing"

	"espresso/internal/jpa"
	"espresso/internal/nvm"
)

// wideDef is an entity with many primitive columns, so dirty-field counts
// can be swept without strings (whose payload allocations add their own
// device writes) muddying the count.
func wideDef(t *testing.T, cols int) *jpa.EntityDef {
	t.Helper()
	fields := make([]jpa.FieldDef, cols)
	for i := range fields {
		fields[i] = jpa.FieldDef{Name: fmt.Sprintf("c%02d", i), Kind: jpa.FInt}
	}
	return jpa.MustEntityDef(fmt.Sprintf("Wide%d", cols), nil, fields...)
}

// persistWrites commits an update dirtying n columns of e and returns the
// device writes the commit cost.
func persistWrites(t *testing.T, p *Provider, dev *nvm.Device, e *jpa.Entity, n int) int {
	t.Helper()
	p.Begin()
	for i := 0; i < n; i++ {
		e.SetInt(fmt.Sprintf("c%02d", i), int64(1000*n+i))
	}
	if err := p.Persist(e); err != nil {
		t.Fatal(err)
	}
	s0 := dev.Stats()
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	d := dev.Stats().Sub(s0)
	return int(d.Writes)
}

// TestMaterializeDeviceWritesConstantInDirtyFields is the bulk-encoder
// regression gate: an entity persist must cost O(1) device writes no
// matter how many fields the commit dirties — the image is assembled in
// DRAM and ships with one bulk write (plus the flushed range), not a
// word store per dirty field.
func TestMaterializeDeviceWritesConstantInDirtyFields(t *testing.T) {
	const cols = 16
	_, p := newProviders(t)
	def := wideDef(t, cols)
	if err := p.EnsureSchema(def); err != nil {
		t.Fatal(err)
	}
	h := p.rt.Heaps()[0]
	dev := h.Device()

	// First persist (all fields dirty) establishes the DBPersistable.
	e := def.NewEntity(7)
	p.Begin()
	e.SetInt("c00", 1)
	if err := p.Persist(e); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}

	// Updates: 1 dirty field vs all 16 dirty fields must cost the same
	// device writes.
	w1 := persistWrites(t, p, dev, e, 1)
	wAll := persistWrites(t, p, dev, e, cols)
	if wAll != w1 {
		t.Fatalf("device writes grew with dirty-field count: %d writes for 1 dirty field, %d for %d — materialize is not O(1)",
			w1, wAll, cols)
	}
	// And the values all landed.
	got, err := p.Find(def, 7)
	if err != nil || got == nil {
		t.Fatalf("find: %v %v", got, err)
	}
	for i := 0; i < cols; i++ {
		name := fmt.Sprintf("c%02d", i)
		if v := got.GetInt(name); v != int64(1000*cols+i) {
			t.Fatalf("column %s = %d, want %d", name, v, 1000*cols+i)
		}
	}
}

// TestMaterializeFreshPersistBulk: the first persist of an entity (all
// fields dirty) also ships as one image — its device-write cost must not
// scale with the column count. A 16-column entity may cost at most a few
// more writes than a 4-column one (allocation metadata), never one per
// column.
func TestMaterializeFreshPersistBulk(t *testing.T) {
	writesFor := func(cols int) int {
		_, p := newProviders(t)
		def := wideDef(t, cols)
		if err := p.EnsureSchema(def); err != nil {
			t.Fatal(err)
		}
		dev := p.rt.Heaps()[0].Device()
		e := def.NewEntity(1)
		p.Begin()
		for i := 0; i < cols; i++ {
			e.SetInt(fmt.Sprintf("c%02d", i), int64(i))
		}
		if err := p.Persist(e); err != nil {
			t.Fatal(err)
		}
		s0 := dev.Stats()
		if err := p.Commit(); err != nil {
			t.Fatal(err)
		}
		return int(dev.Stats().Sub(s0).Writes)
	}
	w4, w16 := writesFor(4), writesFor(16)
	if w16 > w4 {
		t.Fatalf("fresh persist writes scale with columns: %d for 4 cols, %d for 16", w4, w16)
	}
}
