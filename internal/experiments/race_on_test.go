//go:build race

package experiments

// raceEnabled reports that this binary was built with -race: wall-clock
// throughput comparisons are skipped there, since the instrumentation
// skews the two sides unevenly and the tests would measure the detector,
// not the providers.
const raceEnabled = true
