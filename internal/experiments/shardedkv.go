package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pindex"
	"espresso/internal/pshard"
)

// The shardedkv experiment measures range-partitioned multi-heap
// sharding (internal/pshard) on two axes the single-heap kv experiment
// cannot move:
//
//   - Throughput: the same serving mix as kv, but routed over N
//     independent shard heaps. The modeled device critical path is the
//     slowest (mutator, shard) chain — a mutator's flushes to different
//     shards land on different media, so their service time overlaps,
//     and each shard's chains are disjoint lines on its own device. The
//     CI-gated claim: ≥3x modeled throughput at 4 shards × 2 mutators
//     over the 1-shard × 1-mutator baseline.
//
//   - Restart: a committed population is power-cut and reopened with 1,
//     2, and 4 recovery workers. The build is single-goroutine, so the
//     shard images — and therefore each shard's recovery device traffic
//     — are deterministic; the modeled restart time assigns per-shard
//     recovery costs (reads × read latency + flushed repair lines ×
//     write latency) to workers LPT-greedily and reports the slowest
//     worker. The CI-gated claim: ≥2x modeled recovery speedup at 4
//     workers over serial.
//
// Wall-clock columns ride along for eyeballing but are never gated.

// ShardedKVRow is one (shard count, mutator count) throughput
// measurement.
type ShardedKVRow struct {
	Series         string  `json:"series"` // "sharded"
	Shards         int     `json:"shards"`
	Goroutines     int     `json:"goroutines"` // mutators
	Ops            int     `json:"ops"`
	WallNsPerOp    float64 `json:"wall_ns_per_op"`
	ModeledNsPerOp float64 `json:"modeled_ns_per_op"`
	ModeledSpeedup float64 `json:"modeled_speedup_vs_1"`
	DevReads       float64 `json:"dev_reads_per_op"`
	DevWrites      float64 `json:"dev_writes_per_op"`
	FlushedLines   float64 `json:"flushed_lines_per_op"`
	Fences         float64 `json:"fences_per_op"`
	FinalEntries   int     `json:"final_entries"`
}

// ShardedRecoveryRow is one recovery-worker-count restart measurement.
type ShardedRecoveryRow struct {
	Series          string  `json:"series"` // "recovery"
	Shards          int     `json:"shards"`
	Workers         int     `json:"workers"`
	RecoveryKeys    int     `json:"recovery_keys"`
	WallRecoveryNs  float64 `json:"wall_recovery_ns"`
	ModeledNs       float64 `json:"modeled_recovery_ns"`
	RecoverySpeedup float64 `json:"recovery_speedup_vs_serial"`
	DevReadsPerKey  float64 `json:"dev_reads_per_key"`
	DevLinesPerKey  float64 `json:"dev_flushed_lines_per_key"`
}

// ShardedKVScaling runs the throughput curve: (1 shard, 1 mutator) as
// the baseline, then shard counts 1, 2, 4, … up to maxShards, each with
// `mutators` mutator goroutines.
func ShardedKVScaling(scale Scale, maxShards, mutators int) ([]ShardedKVRow, error) {
	if maxShards < 1 {
		maxShards = 1
	}
	if mutators < 1 {
		mutators = 1
	}
	n := scale.div(160000)

	type cfg struct{ shards, muts int }
	cfgs := []cfg{{1, 1}}
	for s := 1; s <= maxShards; s *= 2 {
		if !(s == 1 && mutators == 1) {
			cfgs = append(cfgs, cfg{s, mutators})
		}
	}

	var rows []ShardedKVRow
	var base float64
	for _, c := range cfgs {
		row, err := runShardedKVOnce(c.shards, c.muts, n)
		if err != nil {
			return nil, err
		}
		if c.shards == 1 && c.muts == 1 {
			base = row.ModeledNsPerOp
		}
		if base > 0 && row.ModeledNsPerOp > 0 {
			row.ModeledSpeedup = base / row.ModeledNsPerOp
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runShardedKVOnce(shards, mutators, n int) (ShardedKVRow, error) {
	perG := n / mutators
	if perG < 1 {
		perG = 1
	}
	total := perG * mutators
	// Node + box footprint split across shards, plus PLAB slack per
	// (mutator, shard) pair — every mutator lazily attaches an allocator
	// on every shard it touches.
	// The aggregate bucket table is held constant across shard counts
	// (1024 split over the shards) so per-op device costs are comparable:
	// sentinel setup scales with total buckets, and letting it grow with
	// the shard count would smear fixed cost into the per-op columns.
	buckets := 1024 / shards
	if buckets < 64 {
		buckets = 64
	}
	set, err := pshard.OpenSet(pshard.NewMemStore(), "bench", pshard.Options{
		Shards:        shards,
		ShardDataSize: total*96/shards + (mutators+16)*2*layout.RegionSize,
		Index: pindex.Options{
			InitialBuckets: buckets,
			MaxLoadFactor:  64,
		},
		Mode: nvm.Direct,
	})
	if err != nil {
		return ShardedKVRow{}, err
	}

	ctxs := make([]*pshard.Ctx, mutators)
	for i := range ctxs {
		ctxs[i] = set.NewCtx()
	}
	var devs0 []nvm.Stats
	for i := 0; i < shards; i++ {
		devs0 = append(devs0, set.Shard(i).Heap().Device().Stats())
	}
	var wg sync.WaitGroup
	errs := make([]error, mutators)
	t0 := time.Now()
	for g := 0; g < mutators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := ctxs[g]
			base := int64(g) << 32
			live := int64(0)
			for i := 0; i < perG; i++ {
				// The kv experiment's 10-op rotation: 6 puts, 3 gets,
				// 1 delete.
				switch i % 10 {
				case 0, 1, 2, 3, 4, 5:
					if err := c.Put(base+live, base+live); err != nil {
						errs[g] = err
						return
					}
					live++
				case 6, 7, 8:
					if live > 0 {
						k := base + int64(i)%live
						if _, ok := c.Get(k); !ok {
							errs[g] = fmt.Errorf("shardedkv: key %d lost", k)
							return
						}
					}
				default:
					if live > 0 {
						live--
						if !c.Delete(base + live) {
							errs[g] = fmt.Errorf("shardedkv: delete %d missed", base+live)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return ShardedKVRow{}, fmt.Errorf("shardedkv %d shards, %d mutators: %w", shards, mutators, err)
		}
	}

	// Device-cost critical path: each (mutator, shard) chain flushes
	// disjoint lines on its own device, so every chain's media time
	// overlaps; the slowest chain bounds completion.
	criticalLines := 0
	for _, c := range ctxs {
		for i := 0; i < shards; i++ {
			if lines := c.ShardFlushedLines(i); lines > criticalLines {
				criticalLines = lines
			}
		}
		c.Release()
	}
	var d nvm.Stats
	for i := 0; i < shards; i++ {
		d = addStats(d, set.Shard(i).Heap().Device().Stats().Sub(devs0[i]))
	}
	modeled := time.Duration(criticalLines) * NVMWriteLatency
	return ShardedKVRow{
		Series:         "sharded",
		Shards:         shards,
		Goroutines:     mutators,
		Ops:            total,
		WallNsPerOp:    float64(wall.Nanoseconds()) / float64(total),
		ModeledNsPerOp: float64(modeled.Nanoseconds()) / float64(total),
		DevReads:       float64(d.Reads) / float64(total),
		DevWrites:      float64(d.Writes) / float64(total),
		FlushedLines:   float64(d.FlushedLines) / float64(total),
		Fences:         float64(d.Fences) / float64(total),
		FinalEntries:   set.Len(),
	}, nil
}

func addStats(a, b nvm.Stats) nvm.Stats {
	a.Reads += b.Reads
	a.BytesRead += b.BytesRead
	a.Writes += b.Writes
	a.BytesWritten += b.BytesWritten
	a.Flushes += b.Flushes
	a.FlushedLines += b.FlushedLines
	a.Fences += b.Fences
	return a
}

// ShardedRecovery builds one committed population, power-cuts it, and
// reopens it with each worker count. The build runs on a single
// goroutine so every shard image — and therefore every per-shard
// recovery cost — is deterministic; CI gates the modeled speedups.
func ShardedRecovery(shards, keys int, workerCounts []int) ([]ShardedRecoveryRow, error) {
	if shards < 1 {
		shards = 1
	}
	if keys < shards {
		keys = shards
	}
	store := pshard.NewMemStore()
	set, err := pshard.OpenSet(store, "restart", pshard.Options{
		Shards:        shards,
		ShardDataSize: keys*96/shards + 34*layout.RegionSize,
		Index: pindex.Options{
			InitialBuckets: 4096,
			MaxLoadFactor:  64,
		},
		Mode: nvm.Tracked,
	})
	if err != nil {
		return nil, err
	}
	c := set.NewCtx()
	for k := 0; k < keys; k++ {
		if err := c.Put(int64(k), int64(k)*7); err != nil {
			return nil, fmt.Errorf("shardedkv recovery build: %w", err)
		}
	}
	c.Release()

	imgs := make(map[string][]byte)
	names := []string{pshard.ManifestName("restart")}
	for i := 0; i < shards; i++ {
		names = append(names, pshard.ShardHeapName("restart", i))
	}
	for _, name := range names {
		dev, err := store.Open(name)
		if err != nil {
			return nil, err
		}
		imgs[name] = dev.CrashImage(nvm.CrashFlushedOnly, 0)
	}

	var rows []ShardedRecoveryRow
	var serial float64
	for _, workers := range workerCounts {
		re := pshard.NewMemStore()
		for name, img := range imgs {
			cp := make([]byte, len(img))
			copy(cp, img)
			if err := re.Register(name, nvm.FromImage(cp, nvm.Config{Mode: nvm.Tracked})); err != nil {
				return nil, err
			}
		}
		t0 := time.Now()
		rset, err := pshard.OpenSet(re, "restart", pshard.Options{
			Mode:            nvm.Tracked,
			RecoveryWorkers: workers,
		})
		wall := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("shardedkv recovery (workers=%d): %w", workers, err)
		}
		if got := rset.Len(); got != keys {
			return nil, fmt.Errorf("shardedkv recovery (workers=%d): recovered %d keys, want %d", workers, got, keys)
		}
		costs := make([]float64, shards)
		var reads, lines int64
		for i := 0; i < shards; i++ {
			rec := rset.Shard(i).Recovery()
			costs[i] = statNs(rec.Dev)
			reads += int64(rec.Dev.Reads)
			lines += int64(rec.Dev.FlushedLines)
		}
		modeled := lptMakespan(costs, workers)
		if workers <= 1 {
			serial = modeled
		}
		row := ShardedRecoveryRow{
			Series:         "recovery",
			Shards:         shards,
			Workers:        workers,
			RecoveryKeys:   keys,
			WallRecoveryNs: float64(wall.Nanoseconds()),
			ModeledNs:      modeled,
			DevReadsPerKey: float64(reads) / float64(keys),
			DevLinesPerKey: float64(lines) / float64(keys),
		}
		if serial > 0 && modeled > 0 {
			row.RecoverySpeedup = serial / modeled
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// lptMakespan assigns costs to workers longest-processing-time-first
// (each cost to the least-loaded worker, costs descending) and returns
// the makespan — the slowest worker's total.
func lptMakespan(costs []float64, workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	if workers > len(costs) {
		workers = len(costs)
	}
	sorted := append([]float64(nil), costs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	loads := make([]float64, workers)
	for _, c := range sorted {
		min := 0
		for i := 1; i < workers; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += c
	}
	max := 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// PrintShardedKV renders both series with the headline ratios.
func PrintShardedKV(w io.Writer, scaling []ShardedKVRow, recovery []ShardedRecoveryRow) {
	fmt.Fprintln(w, "Sharded KV scaling — range-partitioned multi-heap sharding (internal/pshard)")
	fmt.Fprintf(w, "  %-8s %3s %3s %10s %12s %12s %8s %8s\n",
		"series", "S", "G", "wall ns", "modeled ns", "speedup", "writes", "lines")
	var best ShardedKVRow
	for _, r := range scaling {
		fmt.Fprintf(w, "  %-8s %3d %3d %10.1f %12.1f %11.2fx %8.2f %8.2f\n",
			r.Series, r.Shards, r.Goroutines, r.WallNsPerOp, r.ModeledNsPerOp,
			r.ModeledSpeedup, r.DevWrites, r.FlushedLines)
		if r.Shards > best.Shards || (r.Shards == best.Shards && r.Goroutines > best.Goroutines) {
			best = r
		}
	}
	if best.Shards > 1 {
		fmt.Fprintf(w, "  modeled throughput speedup at %d shards × %d mutators: %.2fx (device critical path)\n",
			best.Shards, best.Goroutines, best.ModeledSpeedup)
	}
	if len(recovery) == 0 {
		return
	}
	fmt.Fprintln(w, "Sharded parallel recovery — restart time vs recovery workers")
	fmt.Fprintf(w, "  %-8s %3s %3s %10s %14s %14s %10s\n",
		"series", "S", "W", "keys", "wall ms", "modeled ms", "speedup")
	var bestR ShardedRecoveryRow
	for _, r := range recovery {
		fmt.Fprintf(w, "  %-8s %3d %3d %10d %14.2f %14.2f %9.2fx\n",
			r.Series, r.Shards, r.Workers, r.RecoveryKeys,
			r.WallRecoveryNs/1e6, r.ModeledNs/1e6, r.RecoverySpeedup)
		if r.Workers > bestR.Workers {
			bestR = r
		}
	}
	if bestR.Workers > 1 {
		fmt.Fprintf(w, "  modeled recovery speedup at %d workers: %.2fx over serial replay\n",
			bestR.Workers, bestR.RecoverySpeedup)
	}
}
