package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
	"espresso/internal/pindex"
)

// The kv experiment measures the durable lock-free persistent index
// (internal/pindex) under a serving-style workload: G mutator
// goroutines, each with its own operation context (PLAB allocator +
// SATB buffer), run a fixed put/get/delete mix over disjoint key ranges.
//
// Two times are reported per row, exactly like the alloc experiment:
//
//   - wall_ns_per_op: host wall clock (scheduling noise on CI runners);
//   - modeled_ns_per_op: the deterministic device-cost critical path —
//     the slowest mutator's flushed lines (its own link-and-persist
//     publications, node persists, and allocator traffic) × the modeled
//     media write latency. Contexts flush disjoint lines in steady
//     state (each publishes its own links and allocates from its own
//     region), so their device time overlaps and the critical path
//     drops as mutators are added.
//
// The headline claim gated by CI: modeled throughput scales ≥3x from 1
// to 8 mutators, while per-op device costs stay flat — the lock-free
// CAS publication adds no shared persisted word the way a bucket-coarse
// lock-based map would.

// KVRow is one goroutine-count measurement.
type KVRow struct {
	Series         string  `json:"series"` // "pindex"
	Goroutines     int     `json:"goroutines"`
	Ops            int     `json:"ops"`
	WallNsPerOp    float64 `json:"wall_ns_per_op"`
	ModeledNsPerOp float64 `json:"modeled_ns_per_op"`
	ModeledSpeedup float64 `json:"modeled_speedup_vs_1"`
	DevReads       float64 `json:"dev_reads_per_op"`
	DevWrites      float64 `json:"dev_writes_per_op"`
	FlushedLines   float64 `json:"flushed_lines_per_op"`
	Fences         float64 `json:"fences_per_op"`
	HelpFlushes    int     `json:"help_flushes"`
	FinalEntries   int     `json:"final_entries"`
}

// KVScaling runs the scaling curve: goroutine counts 1, 2, 4, … up to
// maxParallel.
func KVScaling(scale Scale, maxParallel int) ([]KVRow, error) {
	if maxParallel < 1 {
		maxParallel = 1
	}
	n := scale.div(160000)
	var gs []int
	for g := 1; g < maxParallel; g *= 2 {
		gs = append(gs, g)
	}
	gs = append(gs, maxParallel)

	var rows []KVRow
	var base float64
	for _, g := range gs {
		row, err := runKVOnce(g, n)
		if err != nil {
			return nil, err
		}
		if g == 1 {
			base = row.ModeledNsPerOp
		}
		if base > 0 && row.ModeledNsPerOp > 0 {
			row.ModeledSpeedup = base / row.ModeledNsPerOp
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runKVOnce(goroutines, n int) (KVRow, error) {
	perG := n / goroutines
	if perG < 1 {
		perG = 1
	}
	total := perG * goroutines
	reg := klass.NewRegistry()
	// Node (48 B) + boxed value (32 B) per put, ~60% of ops are puts,
	// plus PLAB slack per mutator and the bucket tables.
	h, err := pheap.Create(reg, pheap.Config{
		DataSize: total*96 + (goroutines+16)*2*layout.RegionSize,
		Mode:     nvm.Direct,
	})
	if err != nil {
		return KVRow{}, err
	}
	boxK, err := reg.Define(klass.MustInstance("kv/Box", nil,
		klass.Field{Name: "v", Type: layout.FTLong}))
	if err != nil {
		return KVRow{}, err
	}
	ix, err := pindex.Open(h, pindex.NoPin{}, "bench", pindex.Options{
		InitialBuckets: 1024, // steady-state table so runs are comparable
		MaxLoadFactor:  64,
	})
	if err != nil {
		return KVRow{}, err
	}

	ctxs := make([]*pindex.Ctx, goroutines)
	for i := range ctxs {
		ctxs[i] = ix.NewCtx()
	}
	// Per-mutator lines flushed outside the ctx (the value-box persists),
	// so the critical path charges them to their owner too.
	boxLines := make([]int, goroutines)
	dev := h.Device()
	s0 := dev.Stats()
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	t0 := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := ctxs[g]
			base := int64(g) << 32
			live := int64(0) // keys [0, live) of this range are present
			for i := 0; i < perG; i++ {
				// Deterministic 10-op rotation: 6 puts, 3 gets, 1 delete —
				// the usual read-light serving mix flipped toward writes so
				// the durability protocol (not raw reads) dominates.
				switch i % 10 {
				case 0, 1, 2, 3, 4, 5:
					// Value box on the mutator's own PLAB, persisted before
					// the put publishes a durable reference to it.
					box, err := c.Allocator().Alloc(boxK, 0)
					if err != nil {
						errs[g] = err
						return
					}
					h.SetWord(box, layout.FieldOff(0), uint64(base+live))
					n := boxK.SizeOf(0)
					off := h.OffOf(box)
					boxLines[g] += (off+n-1)/layout.LineSize - off/layout.LineSize + 1
					h.FlushRange(box, 0, n)
					if err := c.Put(base+live, box); err != nil {
						errs[g] = err
						return
					}
					live++
				case 6, 7, 8:
					if live > 0 {
						k := base + int64(i)%live
						if _, ok := c.Get(k); !ok {
							errs[g] = fmt.Errorf("kv: key %d lost", k)
							return
						}
					}
				default:
					if live > 0 {
						live--
						if !c.Delete(base + live) {
							errs[g] = fmt.Errorf("kv: delete %d missed", base+live)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return KVRow{}, fmt.Errorf("kv %d goroutines: %w", goroutines, err)
		}
	}
	d := dev.Stats().Sub(s0)

	// Device-cost critical path: per-context flushed lines (its own
	// publications + help flushes + its allocator's persists) overlap
	// across contexts; the slowest one bounds completion.
	criticalLines, helpFlushes := 0, 0
	for g, c := range ctxs {
		lines := c.Stats().FlushedLines + c.AllocStats().FlushedLines + boxLines[g]
		helpFlushes += c.Stats().HelpFlushes
		if lines > criticalLines {
			criticalLines = lines
		}
		c.Release()
	}
	modeled := time.Duration(criticalLines) * NVMWriteLatency
	return KVRow{
		Series:         "pindex",
		Goroutines:     goroutines,
		Ops:            total,
		WallNsPerOp:    float64(wall.Nanoseconds()) / float64(total),
		ModeledNsPerOp: float64(modeled.Nanoseconds()) / float64(total),
		DevReads:       float64(d.Reads) / float64(total),
		DevWrites:      float64(d.Writes) / float64(total),
		FlushedLines:   float64(d.FlushedLines) / float64(total),
		Fences:         float64(d.Fences) / float64(total),
		HelpFlushes:    helpFlushes,
		FinalEntries:   ix.Len(),
	}, nil
}

// PrintKVScaling renders the scaling table with the headline ratio.
func PrintKVScaling(w io.Writer, rows []KVRow) {
	fmt.Fprintln(w, "KV index scaling — durable lock-free persistent hash map (internal/pindex)")
	fmt.Fprintf(w, "  %-7s %3s %10s %12s %12s %8s %8s %8s %8s\n",
		"series", "G", "wall ns", "modeled ns", "speedup", "reads", "writes", "lines", "fences")
	var best KVRow
	for _, r := range rows {
		fmt.Fprintf(w, "  %-7s %3d %10.1f %12.1f %11.2fx %8.2f %8.2f %8.2f %8.2f\n",
			r.Series, r.Goroutines, r.WallNsPerOp, r.ModeledNsPerOp, r.ModeledSpeedup,
			r.DevReads, r.DevWrites, r.FlushedLines, r.Fences)
		if r.Goroutines > best.Goroutines {
			best = r
		}
	}
	if best.Goroutines > 1 {
		fmt.Fprintf(w, "  modeled KV throughput speedup at %d mutators: %.2fx (device critical path)\n",
			best.Goroutines, best.ModeledSpeedup)
	}
}
