package experiments

import (
	"fmt"
	"io"
	"time"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pgc"
	"espresso/internal/pheap"
	"espresso/internal/pindex"
	"espresso/internal/telemetry/blackbox"
)

// The blackbox experiment enforces the flight recorder's two contracts
// (docs/observability.md):
//
//  1. Crash safety: a deterministic workload — create, allocation
//     bursts, an STW collection, a concurrent collection — is crashed at
//     EVERY flush boundary (plus a matrix of random-eviction seeds), and
//     the journal decoded from each crash image must be a checksum-valid,
//     sequence-contiguous strict prefix of the DRAM mirror oracle of that
//     same run. The decoder may truncate a torn tail; it must never
//     fabricate, reorder, or resurrect an event. Each crashed image must
//     also reload (pheap.Load + pgc recovery) and accept fresh appends.
//  2. Overhead: recording costs exactly one line write + one line flush
//     per event and NOTHING else — per workload, fences and reads must be
//     bit-identical off vs on, and writes/flushed-lines must differ by
//     exactly the number of events journaled. These are hard in-run
//     equalities; the absolute per-op device costs also land in the row
//     JSON that CI's bench gate compares against BENCH_blackbox.json.

// BlackboxRow is one (series, workload) measurement of the off/on matrix.
type BlackboxRow struct {
	Series       string  `json:"series"` // "off" or "on"
	Op           string  `json:"op"`     // "alloc", "kvput", "gccycle"
	Ops          int     `json:"ops"`
	Events       int     `json:"events"` // journal records appended during the window
	WallNsPerOp  float64 `json:"wall_ns_per_op"`
	DevReads     float64 `json:"dev_reads_per_op"`
	DevWrites    float64 `json:"dev_writes_per_op"`
	FlushedLines float64 `json:"flushed_lines_per_op"`
	Fences       float64 `json:"fences_per_op"`

	// raw is the undivided device delta — the contract gate compares
	// these exactly, immune to per-op float rounding.
	raw nvm.Stats
}

// BlackboxReport summarizes the crash sweep; Timeline is the full
// (uncrashed) run's decoded journal — CI uploads it as the failure
// artifact so a gate trip shows exactly what the recorder saw.
type BlackboxReport struct {
	CrashPoints  int               `json:"crash_points"`  // flush boundaries swept
	EvictionRuns int               `json:"eviction_runs"` // random-eviction crash images checked
	OracleEvents int               `json:"oracle_events"` // events the clean run journals
	ReloadChecks int               `json:"reload_checks"` // crash images reloaded + re-appended
	Timeline     blackbox.Timeline `json:"timeline"`
}

// crashAt is the panic payload the flush hook throws to simulate power
// loss at one exact flush boundary.
type crashAt struct{ k uint64 }

// blackboxWorkload drives one deterministic recorder-instrumented run:
// an allocation burst (PLAB handoffs), an STW collection, a second
// burst, and a single-worker concurrent collection — so the flush sweep
// crosses allocation, marking, compaction, and redo-commit boundaries.
func blackboxWorkload(h *pheap.Heap, reg *klass.Registry) error {
	node, err := reg.Define(klass.MustInstance("blackbox/Node", nil,
		klass.Field{Name: "id", Type: layout.FTLong},
		klass.Field{Name: "next", Type: layout.FTRef}))
	if err != nil {
		return err
	}
	burst := func(n int, root string) error {
		var prev layout.Ref
		for i := 0; i < n; i++ {
			ref, err := h.Alloc(node, 0)
			if err != nil {
				return err
			}
			h.SetWord(ref, layout.FieldOff(0), uint64(i))
			if i%2 == 0 { // odd allocations stay garbage for the collections
				h.SetWord(ref, layout.FieldOff(1), uint64(prev))
				prev = ref
			}
		}
		return h.SetRoot(root, prev)
	}
	if err := burst(96, "chain-a"); err != nil {
		return err
	}
	if _, err := pgc.Collect(h, pgc.NoRoots{}); err != nil {
		return err
	}
	if err := burst(96, "chain-b"); err != nil {
		return err
	}
	_, err = pgc.CollectConcurrentWorkers(h, pgc.NoRoots{}, pgc.StoppedWorld{}, 1)
	return err
}

// newBlackboxHeap creates the sweep's tracked heap with its recorder and
// DRAM mirror attached. Setup flushes (heap format, ring format) happen
// before the caller installs the crash hook, so the sweep counts only
// workload boundaries.
func newBlackboxHeap(mirror *[]blackbox.Record) (*pheap.Heap, *klass.Registry, error) {
	reg := klass.NewRegistry()
	h, err := pheap.Create(reg, pheap.Config{
		Name:     "blackbox",
		DataSize: 1 << 20,
		Mode:     nvm.Tracked,
	})
	if err != nil {
		return nil, nil, err
	}
	r, err := h.EnableFlightRecorder()
	if err != nil {
		return nil, nil, err
	}
	r.SetMirror(func(rec blackbox.Record) { *mirror = append(*mirror, rec) })
	return h, reg, nil
}

// checkPrefix verifies tl against the run's mirror: every decoded record
// matches the mirror at its sequence number, and the decode is
// gap-free. Returns an error naming the first violation.
func checkPrefix(tl blackbox.Timeline, mirror []blackbox.Record, what string) error {
	for i, e := range tl.Events {
		if e.Seq == 0 || e.Seq > uint64(len(mirror)) {
			return fmt.Errorf("blackbox %s: decoded seq %d beyond the %d-event oracle (fabricated record)",
				what, e.Seq, len(mirror))
		}
		m := mirror[e.Seq-1]
		if e.Kind != m.Kind || e.P0 != m.P0 || e.P1 != m.P1 || e.P2 != m.P2 {
			return fmt.Errorf("blackbox %s: decoded seq %d = kind %s p=(%d,%d,%d); oracle has kind %s p=(%d,%d,%d)",
				what, e.Seq, blackbox.KindName(e.Kind), e.P0, e.P1, e.P2,
				blackbox.KindName(m.Kind), m.P0, m.P1, m.P2)
		}
		if i > 0 && e.Seq != tl.Events[i-1].Seq+1 {
			return fmt.Errorf("blackbox %s: sequence gap %d -> %d survived decoding",
				what, tl.Events[i-1].Seq, e.Seq)
		}
	}
	return nil
}

// crashRun replays the workload with a crash injected at flush boundary
// k (counted from hook install) and returns the crash image plus the
// run's own mirror. The panic unwinds whatever the workload was doing —
// exactly what power loss does.
func crashRun(k uint64) (img []byte, mirror []blackbox.Record, err error) {
	h, reg, err := newBlackboxHeap(&mirror)
	if err != nil {
		return nil, nil, err
	}
	dev := h.Device()
	var flushes uint64
	dev.SetFlushHook(func(uint64) {
		flushes++
		if flushes == k {
			panic(crashAt{k})
		}
	})
	err = func() (werr error) {
		defer func() {
			if p := recover(); p != nil {
				if _, ok := p.(crashAt); !ok {
					panic(p)
				}
			}
		}()
		return blackboxWorkload(h, reg)
	}()
	dev.SetFlushHook(nil)
	if err != nil {
		return nil, nil, fmt.Errorf("blackbox: workload failed before crash point %d: %w", k, err)
	}
	return dev.CrashImage(nvm.CrashFlushedOnly, 0), mirror, nil
}

// BlackboxCrashSweep runs contract 1: decode-after-crash at every flush
// boundary, random-eviction images at a coarse stride, and reload
// verification. Hard-fails on the first violated prefix.
func BlackboxCrashSweep() (BlackboxReport, error) {
	var report BlackboxReport

	// Clean run: count flush boundaries, capture the oracle, and keep the
	// full decoded timeline for the report/artifact.
	var mirror []blackbox.Record
	h, reg, err := newBlackboxHeap(&mirror)
	if err != nil {
		return report, err
	}
	dev := h.Device()
	var total uint64
	dev.SetFlushHook(func(uint64) { total++ })
	if err := blackboxWorkload(h, reg); err != nil {
		return report, err
	}
	dev.SetFlushHook(nil)
	geo := h.Geo()
	tl, err := blackbox.Decode(dev, geo.BlackboxOff, geo.BlackboxSize)
	if err != nil {
		return report, err
	}
	if err := checkPrefix(tl, mirror, "clean run"); err != nil {
		return report, err
	}
	if len(tl.Events) != len(mirror) {
		return report, fmt.Errorf("blackbox: clean run decoded %d of %d journaled events", len(tl.Events), len(mirror))
	}
	report.OracleEvents = len(mirror)
	report.Timeline = tl

	for k := uint64(1); k <= total; k++ {
		img, runMirror, err := crashRun(k)
		if err != nil {
			return report, err
		}
		dead := nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})
		ctl, err := blackbox.Decode(dead, geo.BlackboxOff, geo.BlackboxSize)
		if err != nil {
			return report, fmt.Errorf("blackbox: crash at flush %d: %w", k, err)
		}
		what := fmt.Sprintf("crash at flush %d/%d", k, total)
		if err := checkPrefix(ctl, runMirror, what); err != nil {
			return report, err
		}
		report.CrashPoints++

		// Random-eviction images at a coarse stride: unflushed lines
		// randomly survive or vanish, the prefix rule must hold anyway.
		// Eviction is applied to the crashing device itself (a flushed-only
		// image has already lost its unflushed lines), so the run is
		// rebuilt per seed.
		if k%16 == 0 || k == total {
			for seed := int64(1); seed <= 3; seed++ {
				eimg, emirror, err := crashRunEvict(k, seed)
				if err != nil {
					return report, err
				}
				ed := nvm.FromImage(eimg, nvm.Config{Mode: nvm.Tracked})
				etl, err := blackbox.Decode(ed, geo.BlackboxOff, geo.BlackboxSize)
				if err != nil {
					return report, fmt.Errorf("blackbox: eviction crash at flush %d seed %d: %w", k, seed, err)
				}
				if err := checkPrefix(etl, emirror, fmt.Sprintf("eviction crash at flush %d seed %d", k, seed)); err != nil {
					return report, err
				}
				report.EvictionRuns++
			}
		}

		// Reload verification at a coarse stride: the crashed image loads,
		// recovers, and its journal keeps accepting appends that decode
		// contiguously after the survivors.
		if k%8 == 0 || k == total {
			if err := reloadCheck(img, geo); err != nil {
				return report, fmt.Errorf("blackbox: crash at flush %d: %w", k, err)
			}
			report.ReloadChecks++
		}
	}
	return report, nil
}

// crashRunEvict is crashRun with a random-eviction crash image: lines
// written but never flushed may survive.
func crashRunEvict(k uint64, seed int64) (img []byte, mirror []blackbox.Record, err error) {
	h, reg, err := newBlackboxHeap(&mirror)
	if err != nil {
		return nil, nil, err
	}
	dev := h.Device()
	var flushes uint64
	dev.SetFlushHook(func(uint64) {
		flushes++
		if flushes == k {
			panic(crashAt{k})
		}
	})
	err = func() (werr error) {
		defer func() {
			if p := recover(); p != nil {
				if _, ok := p.(crashAt); !ok {
					panic(p)
				}
			}
		}()
		return blackboxWorkload(h, reg)
	}()
	dev.SetFlushHook(nil)
	if err != nil {
		return nil, nil, fmt.Errorf("blackbox: workload failed before eviction crash point %d: %w", k, err)
	}
	return dev.CrashImage(nvm.CrashRandomEviction, seed), mirror, nil
}

// reloadCheck loads a crash image the way a restart would, finishes any
// interrupted collection, and verifies the journal accepts and decodes
// fresh appends.
func reloadCheck(img []byte, geo pheap.Geometry) error {
	dev := nvm.FromImage(append([]byte(nil), img...), nvm.Config{Mode: nvm.Tracked})
	h, err := pheap.Load(dev, klass.NewRegistry())
	if err != nil {
		return fmt.Errorf("reload: %w", err)
	}
	if _, _, err := pgc.RecoverIfNeeded(h); err != nil {
		return fmt.Errorf("reload recovery: %w", err)
	}
	r, err := h.EnableFlightRecorder()
	if err != nil {
		return fmt.Errorf("reload recorder: %w", err)
	}
	before := r.Seq()
	r.Append(blackbox.EvHeapLoad, h.GlobalTS(), 0, 0)
	tl, err := blackbox.Decode(dev, geo.BlackboxOff, geo.BlackboxSize)
	if err != nil {
		return fmt.Errorf("reload decode: %w", err)
	}
	if len(tl.Events) == 0 || tl.Events[len(tl.Events)-1].Seq != before+1 {
		return fmt.Errorf("reload: post-reload append (seq %d) did not decode as the tail", before+1)
	}
	for i := 1; i < len(tl.Events); i++ {
		if tl.Events[i].Seq != tl.Events[i-1].Seq+1 {
			return fmt.Errorf("reload: sequence gap %d -> %d after re-append",
				tl.Events[i-1].Seq, tl.Events[i].Seq)
		}
	}
	return nil
}

// Blackbox runs the crash sweep plus the off/on overhead matrix.
func Blackbox(scale Scale) ([]BlackboxRow, BlackboxReport, error) {
	report, err := BlackboxCrashSweep()
	if err != nil {
		return nil, report, err
	}
	var rows []BlackboxRow
	for _, op := range []string{"alloc", "kvput", "gccycle"} {
		var off, on BlackboxRow
		for _, enabled := range []bool{false, true} {
			row, err := runBlackboxOp(op, enabled, scale)
			if err != nil {
				return nil, report, err
			}
			if enabled {
				on = row
			} else {
				off = row
			}
			rows = append(rows, row)
		}
		// The overhead contract, exactly: per run, recording adds one
		// write and one flushed line per event and nothing else — and
		// never a fence or a read. Compared on raw counts, to the word.
		ev := uint64(on.Events)
		if on.raw.Fences != off.raw.Fences || on.raw.Reads != off.raw.Reads ||
			on.raw.Writes != off.raw.Writes+ev || on.raw.FlushedLines != off.raw.FlushedLines+ev {
			return nil, report, fmt.Errorf(
				"blackbox %s: recorder device cost off-contract (%d events): off r/w/l/f %d/%d/%d/%d, on %d/%d/%d/%d",
				op, on.Events,
				off.raw.Reads, off.raw.Writes, off.raw.FlushedLines, off.raw.Fences,
				on.raw.Reads, on.raw.Writes, on.raw.FlushedLines, on.raw.Fences)
		}
		// Mutator workloads journal only at region granularity (PLAB
		// dispenses) — orders of magnitude below one event per op. A
		// violation means an emission point slipped onto a per-op path.
		if op != "gccycle" && on.Events > on.Ops/100 {
			return nil, report, fmt.Errorf("blackbox %s: %d events for %d ops — emission must stay at region/cycle granularity", op, on.Events, on.Ops)
		}
	}
	return rows, report, nil
}

func runBlackboxOp(op string, enabled bool, scale Scale) (BlackboxRow, error) {
	series := "off"
	if enabled {
		series = "on"
	}
	var row BlackboxRow
	var err error
	switch op {
	case "alloc":
		row, err = blackboxAllocOp(enabled, scale.div(200000))
	case "kvput":
		row, err = blackboxKVPutOp(enabled, scale.div(100000))
	case "gccycle":
		row, err = blackboxGCCycleOp(enabled, scale.div(50000))
	default:
		return row, fmt.Errorf("blackbox: unknown op %q", op)
	}
	if err != nil {
		return row, fmt.Errorf("blackbox %s/%s: %w", op, series, err)
	}
	row.Series, row.Op = series, op
	return row, nil
}

func finishBlackboxRow(n, events int, wall time.Duration, d nvm.Stats) BlackboxRow {
	return BlackboxRow{
		Ops:          n,
		Events:       events,
		WallNsPerOp:  float64(wall.Nanoseconds()) / float64(n),
		DevReads:     float64(d.Reads) / float64(n),
		DevWrites:    float64(d.Writes) / float64(n),
		FlushedLines: float64(d.FlushedLines) / float64(n),
		Fences:       float64(d.Fences) / float64(n),
		raw:          d,
	}
}

// recorderSeq reports the journal sequence (0 when disabled), for
// counting the events a measurement window appended.
func recorderSeq(h *pheap.Heap) uint64 {
	return h.FlightRecorder().Seq()
}

func blackboxAllocOp(enabled bool, n int) (BlackboxRow, error) {
	reg := klass.NewRegistry()
	h, err := pheap.Create(reg, pheap.Config{
		DataSize: n*48 + 8*layout.RegionSize,
		Mode:     nvm.Direct,
	})
	if err != nil {
		return BlackboxRow{}, err
	}
	if enabled {
		if _, err := h.EnableFlightRecorder(); err != nil {
			return BlackboxRow{}, err
		}
	}
	node, err := reg.Define(klass.MustInstance("blackbox/Obj", nil,
		klass.Field{Name: "a", Type: layout.FTLong},
		klass.Field{Name: "b", Type: layout.FTLong}))
	if err != nil {
		return BlackboxRow{}, err
	}
	dev := h.Device()
	seq0 := recorderSeq(h)
	s0 := dev.Stats()
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if _, err := h.Alloc(node, 0); err != nil {
			return BlackboxRow{}, err
		}
	}
	wall := time.Since(t0)
	return finishBlackboxRow(n, int(recorderSeq(h)-seq0), wall, dev.Stats().Sub(s0)), nil
}

func blackboxKVPutOp(enabled bool, n int) (BlackboxRow, error) {
	reg := klass.NewRegistry()
	h, err := pheap.Create(reg, pheap.Config{
		DataSize: n*64 + 16*layout.RegionSize,
		Mode:     nvm.Direct,
	})
	if err != nil {
		return BlackboxRow{}, err
	}
	if enabled {
		if _, err := h.EnableFlightRecorder(); err != nil {
			return BlackboxRow{}, err
		}
	}
	ix, err := pindex.Open(h, pindex.NoPin{}, "bench", pindex.Options{
		InitialBuckets: 1024,
		MaxLoadFactor:  64,
	})
	if err != nil {
		return BlackboxRow{}, err
	}
	c := ix.NewCtx()
	defer c.Release()
	dev := h.Device()
	seq0 := recorderSeq(h)
	s0 := dev.Stats()
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if err := c.Put(int64(i), 0); err != nil {
			return BlackboxRow{}, err
		}
	}
	wall := time.Since(t0)
	return finishBlackboxRow(n, int(recorderSeq(h)-seq0), wall, dev.Stats().Sub(s0)), nil
}

func blackboxGCCycleOp(enabled bool, n int) (BlackboxRow, error) {
	reg := klass.NewRegistry()
	h, err := pheap.Create(reg, pheap.Config{
		DataSize: n*96 + 8*layout.RegionSize,
		Mode:     nvm.Direct,
	})
	if err != nil {
		return BlackboxRow{}, err
	}
	if enabled {
		if _, err := h.EnableFlightRecorder(); err != nil {
			return BlackboxRow{}, err
		}
	}
	node, err := reg.Define(klass.MustInstance("blackbox/GCNode", nil,
		klass.Field{Name: "next", Type: layout.FTRef},
		klass.Field{Name: "pad", Type: layout.FTLong}))
	if err != nil {
		return BlackboxRow{}, err
	}
	var prev layout.Ref
	for i := 0; i < n; i++ {
		if _, err := h.Alloc(node, 0); err != nil { // garbage
			return BlackboxRow{}, err
		}
		ref, err := h.Alloc(node, 0)
		if err != nil {
			return BlackboxRow{}, err
		}
		h.SetWord(ref, layout.FieldOff(0), uint64(prev))
		prev = ref
	}
	if err := h.SetRoot("chain", prev); err != nil {
		return BlackboxRow{}, err
	}
	dev := h.Device()
	seq0 := recorderSeq(h)
	s0 := dev.Stats()
	t0 := time.Now()
	if _, err := pgc.Collect(h, pgc.NoRoots{}); err != nil {
		return BlackboxRow{}, err
	}
	wall := time.Since(t0)
	// One cycle; per-op figures are per collection, not per object.
	return finishBlackboxRow(1, int(recorderSeq(h)-seq0), wall, dev.Stats().Sub(s0)), nil
}

// PrintBlackbox renders the sweep summary and the off/on matrix.
func PrintBlackbox(w io.Writer, rows []BlackboxRow, report BlackboxReport) {
	fmt.Fprintf(w, "Flight recorder — crash sweep: %d flush boundaries, %d eviction images, %d reload checks; oracle %d events, all decodes strict prefixes\n",
		report.CrashPoints, report.EvictionRuns, report.ReloadChecks, report.OracleEvents)
	fmt.Fprintln(w, "Recorder overhead — fences/reads identical off vs on; writes/lines +1 per event")
	fmt.Fprintf(w, "  %-9s %-9s %10s %8s %12s %8s %8s %8s %8s\n",
		"op", "series", "ops", "events", "wall ns", "reads", "writes", "lines", "fences")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-9s %-9s %10d %8d %12.1f %8.3f %8.3f %8.3f %8.3f\n",
			r.Op, r.Series, r.Ops, r.Events, r.WallNsPerOp, r.DevReads, r.DevWrites, r.FlushedLines, r.Fences)
	}
}
