package experiments

// The faults experiment is the robustness contract, run as a matrix:
// every fault class the simulator models (bit flip, torn line,
// transient read error, dropped flush) against every checksummed
// metadata structure (GC-phase word, redo batch, region-top line,
// shard manifest), each cell verified against a DRAM oracle of the
// committed key set. The contract per cell is fixed in the table
// below — detected-and-salvaged, detected-and-quarantined, fatal, or
// crash-equivalent — and the experiment hard-fails (returns an error)
// the moment any cell deviates: a fault that should be caught and
// isn't, a salvage that fabricates a key, a quarantine that leaks into
// a healthy shard's serving, or a retry that fails to restore the
// exact committed set.
//
// Two companion series ride along:
//
//   - "degraded": the end-to-end fence-and-serve scenario — a transient
//     read error with a finite budget quarantines one shard at open,
//     healthy shards serve the whole time, and the background backoff
//     loop reopens the shard once the budget exhausts, after which the
//     set must equal the oracle exactly.
//   - "overhead": the zero-cost contract for the fault hooks — with
//     faultdev.Passthrough installed on every shard device, a fixed
//     single-goroutine workload must leave every device counter
//     bit-identical to an unhooked run.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"espresso/internal/klass"
	"espresso/internal/nvm"
	"espresso/internal/nvm/faultdev"
	"espresso/internal/pgc"
	"espresso/internal/pheap"
	"espresso/internal/pindex"
	"espresso/internal/pshard"
)

// FaultsRow is one JSON row of the faults experiment: a matrix cell, the
// degraded-serving scenario, or an overhead measurement. The dev_*
// fields (overhead series only) are the benchgate-gated device costs.
type FaultsRow struct {
	Series string `json:"series"` // matrix | degraded | overhead
	Op     string `json:"op"`     // matrix: structure/fault; overhead: workload variant

	// Matrix + degraded fields.
	Expect         string `json:"expect,omitempty"` // salvage | quarantine | fatal | reopen | clean
	Detected       bool   `json:"detected"`
	Quarantined    bool   `json:"quarantined"`
	Healed         bool   `json:"healed"`
	KeysLost       int    `json:"keys_lost"`
	KeysServed     int    `json:"keys_served_degraded"`
	RecoveredExact bool   `json:"recovered_exact"`
	RetryFaults    int    `json:"retry_faults,omitempty"` // injected faults delivered before healing

	// Overhead fields (dev_* are gated by benchgate).
	Ops                  int     `json:"ops,omitempty"`
	DevWritesPerOp       float64 `json:"dev_writes_per_op,omitempty"`
	DevFlushedLinesPerOp float64 `json:"dev_flushed_lines_per_op,omitempty"`
	DevFencesPerOp       float64 `json:"dev_fences_per_op,omitempty"`
	HooksIdentical       bool    `json:"hooks_identical,omitempty"`
}

// faultsIndexOpts is the per-shard index sizing the fixture uses.
// MaxBuckets == InitialBuckets pins the bucket table: it never grows, so
// the index spine (header, bucket array, head sentinel) stays in the
// shard's first data region and a frontier-region quarantine amputates
// data, never the spine.
func faultsIndexOpts() pindex.Options {
	return pindex.Options{InitialBuckets: 8192, MaxBuckets: 8192, MaxLoadFactor: 8}
}

// faultsFixture is the golden committed state every cell starts from:
// crash images of a 3-shard set plus the DRAM oracle of its exact
// committed keys, and the device offsets of the fault targets inside
// shard 0's image.
type faultsFixture struct {
	oracle  map[int64]int64
	shardOf map[int64]int
	healthy int // oracle keys owned by shards other than 0

	manifest []byte
	shards   [][]byte

	// Shard-0 fault targets.
	gcPhaseOff    int
	gcPhaseSumOff int
	redoOff       int
	frontier      int    // highest data region with a committed top
	topOff        int    // its region-top line offset
	topVal        uint64 // its committed top word
}

func cloneImg(b []byte) []byte { return append([]byte(nil), b...) }

const faultsBase = "faults"

// buildFaultsFixture commits a deterministic population into a fresh
// 3-shard set and snapshots its crash images. The population is floored
// (not scaled down) because the region-top cells need shard 0 to span
// several data regions: the corrupted frontier region must hold data,
// not the index spine.
func buildFaultsFixture(s Scale) (*faultsFixture, error) {
	n := s.div(36000)
	if n < 24000 {
		n = 24000
	}
	store := pshard.NewMemStore()
	set, err := pshard.OpenSet(store, faultsBase, pshard.Options{
		Shards:        3,
		ShardDataSize: 4 << 20,
		Mode:          nvm.Tracked,
		Index:         faultsIndexOpts(),
	})
	if err != nil {
		return nil, err
	}
	defer set.Close()

	fx := &faultsFixture{
		oracle:  make(map[int64]int64, n),
		shardOf: make(map[int64]int, n),
	}
	ctx := set.NewCtx()
	for k := int64(1); k <= int64(n); k++ {
		if err := ctx.Put(k, k*7+11); err != nil {
			return nil, err
		}
		fx.oracle[k] = k*7 + 11
	}
	for k := int64(5); k <= int64(n); k += 10 {
		ctx.Delete(k)
		delete(fx.oracle, k)
	}
	for k := int64(3); k <= int64(n); k += 7 {
		if _, ok := fx.oracle[k]; ok {
			if err := ctx.Put(k, k*13+5); err != nil {
				return nil, err
			}
			fx.oracle[k] = k*13 + 5
		}
	}
	ctx.Release()
	for k := range fx.oracle {
		sh := set.ShardOf(k)
		fx.shardOf[k] = sh
		if sh != 0 {
			fx.healthy++
		}
	}

	// Golden crash images: the committed (durably flushed) state only.
	maniDev, err := store.Open(pshard.ManifestName(faultsBase))
	if err != nil {
		return nil, err
	}
	fx.manifest = maniDev.CrashImage(nvm.CrashFlushedOnly, 0)
	fx.shards = make([][]byte, set.NumShards())
	for i := 0; i < set.NumShards(); i++ {
		dev, err := store.Open(pshard.ShardHeapName(faultsBase, i))
		if err != nil {
			return nil, err
		}
		fx.shards[i] = dev.CrashImage(nvm.CrashFlushedOnly, 0)
	}

	// Fault-target offsets, from a throwaway strict load of shard 0.
	dev := nvm.FromImage(cloneImg(fx.shards[0]), nvm.Config{Mode: nvm.Tracked})
	h, err := pheap.Load(dev, klass.NewRegistry())
	if err != nil {
		return nil, fmt.Errorf("faults: golden shard 0 image does not load: %w", err)
	}
	fx.gcPhaseOff = h.GCPhaseMetaOff()
	fx.gcPhaseSumOff = h.GCPhaseSumMetaOff()
	geo := h.Geo()
	fx.redoOff = geo.RedoOff
	fx.frontier = -1
	for r := 0; r < geo.DataRegions(); r++ {
		if h.RegionTop(r) > 1 { // committed top, not untouched/humongous-interior
			fx.frontier = r
		}
	}
	if fx.frontier < 1 {
		return nil, fmt.Errorf("faults: population spans %d data region(s); need the frontier past region 0", fx.frontier+1)
	}
	fx.topOff = h.RegionTopMetaOff(fx.frontier)
	golden := nvm.FromImage(fx.shards[0], nvm.Config{Mode: nvm.Tracked})
	fx.topVal = golden.ReadU64(fx.topOff)
	return fx, nil
}

// makeStore registers per-cell copies of the images as fresh devices and
// returns the shard-0 and manifest devices for injector installs.
func (fx *faultsFixture) makeStore(man []byte, shard0 []byte) (*pshard.MemStore, *nvm.Device, *nvm.Device, error) {
	store := pshard.NewMemStore()
	maniDev := nvm.FromImage(cloneImg(man), nvm.Config{Mode: nvm.Tracked})
	if err := store.Register(pshard.ManifestName(faultsBase), maniDev); err != nil {
		return nil, nil, nil, err
	}
	var dev0 *nvm.Device
	for i, img := range fx.shards {
		src := img
		if i == 0 {
			src = shard0
		}
		dev := nvm.FromImage(cloneImg(src), nvm.Config{Mode: nvm.Tracked})
		if i == 0 {
			dev0 = dev
		}
		if err := store.Register(pshard.ShardHeapName(faultsBase, i), dev); err != nil {
			return nil, nil, nil, err
		}
	}
	return store, dev0, maniDev, nil
}

func (fx *faultsFixture) openDegraded(store *pshard.MemStore) (*pshard.Set, error) {
	return pshard.OpenSet(store, faultsBase, pshard.Options{
		Mode:             nvm.Tracked,
		Index:            faultsIndexOpts(),
		Degraded:         true,
		DisableRetryLoop: true,
	})
}

// imgRedoPending re-creates shard 0's image with a committed, unapplied
// redo batch of six no-op entries (each republishes the frontier top it
// already has). When drop is set, the flush covering the batch's second
// cache line of entries is silently dropped, so the persisted batch
// fails its checksum while its commit record stands — the
// dropped-writeback detection case.
func (fx *faultsFixture) imgRedoPending(drop bool) ([]byte, error) {
	dev := nvm.FromImage(cloneImg(fx.shards[0]), nvm.Config{Mode: nvm.Tracked})
	h, err := pheap.Load(dev, klass.NewRegistry())
	if err != nil {
		return nil, err
	}
	entries := make([]pheap.RedoEntry, 6)
	for i := range entries {
		entries[i] = pheap.RedoEntry{Off: fx.topOff, Val: fx.topVal}
	}
	var in *faultdev.Injector
	if drop {
		in = faultdev.Install(dev, faultdev.Plan{
			Kind: faultdev.DroppedFlush,
			Off:  fx.redoOff + nvm.LineSize,
			N:    nvm.LineSize,
		})
	}
	h.RedoCommit(entries)
	if in != nil {
		in.Remove()
	}
	return dev.CrashImage(nvm.CrashFlushedOnly, 0), nil
}

// imgGCPhaseDroppedFlush runs a full collection of shard 0 with every
// flush of the GC-phase word silently dropped, then crashes. The phase
// word's checksum shares its cache line, so a dropped line writeback
// leaves the old (word, sum) pair — a valid earlier state, handled as
// crash consistency rather than corruption.
func (fx *faultsFixture) imgGCPhaseDroppedFlush() ([]byte, error) {
	dev := nvm.FromImage(cloneImg(fx.shards[0]), nvm.Config{Mode: nvm.Tracked})
	h, err := pheap.Load(dev, klass.NewRegistry())
	if err != nil {
		return nil, err
	}
	in := faultdev.Install(dev, faultdev.Plan{Kind: faultdev.DroppedFlush, Off: fx.gcPhaseOff, N: 8})
	_, err = pgc.Collect(h, pgc.NoRoots{})
	in.Remove()
	if err != nil {
		return nil, err
	}
	return dev.CrashImage(nvm.CrashFlushedOnly, 0), nil
}

// imgTopDroppedFlush drops the writeback of a frontier-top
// republication (a redo batch rewriting the same top). Value and
// checksum ride one line, so the persisted pair stays the old —
// identical — one: crash-equivalent by construction.
func (fx *faultsFixture) imgTopDroppedFlush() ([]byte, error) {
	dev := nvm.FromImage(cloneImg(fx.shards[0]), nvm.Config{Mode: nvm.Tracked})
	h, err := pheap.Load(dev, klass.NewRegistry())
	if err != nil {
		return nil, err
	}
	in := faultdev.Install(dev, faultdev.Plan{Kind: faultdev.DroppedFlush, Off: fx.topOff, N: 16})
	h.RedoCommit([]pheap.RedoEntry{{Off: fx.topOff, Val: fx.topVal}})
	h.RedoApply()
	in.Remove()
	return dev.CrashImage(nvm.CrashFlushedOnly, 0), nil
}

// imgManifestDroppedFlush rewrites the manifest with the checksum
// word's flush dropped: header and bounds persist, the sum line never
// does, and the next open must reject the manifest.
func (fx *faultsFixture) imgManifestDroppedFlush() ([]byte, error) {
	src := nvm.FromImage(cloneImg(fx.manifest), nvm.Config{Mode: nvm.Tracked})
	m, err := pshard.ReadManifest(src)
	if err != nil {
		return nil, err
	}
	dev := nvm.New(nvm.Config{Size: pshard.ManifestDeviceSize, Mode: nvm.Tracked})
	in := faultdev.Install(dev, faultdev.Plan{Kind: faultdev.DroppedFlush, Off: pshard.ManifestSumOff, N: 8})
	err = pshard.WriteManifest(dev, m)
	in.Remove()
	if err != nil {
		return nil, err
	}
	return dev.CrashImage(nvm.CrashFlushedOnly, 0), nil
}

// verifyExact checks the set serves the oracle exactly: every oracle key
// present with its exact value, and a full scan surfaces nothing else.
func (fx *faultsFixture) verifyExact(set *pshard.Set) error {
	ctx := set.NewCtx()
	defer ctx.Release()
	for k, v := range fx.oracle {
		got, ok, err := ctx.Lookup(k)
		if err != nil {
			return fmt.Errorf("lookup %d: %v", k, err)
		}
		if !ok || got != v {
			return fmt.Errorf("key %d: got (%d,%v), want %d", k, got, ok, v)
		}
	}
	return fx.scanAgainstOracle(ctx, len(fx.oracle))
}

// scanAgainstOracle walks the whole set asserting never-fabricate:
// every scanned entry must exist in the oracle with its exact value.
// wantSeen < 0 skips the completeness check (amputation may have lost
// entries); otherwise the scan must yield exactly wantSeen entries.
func (fx *faultsFixture) scanAgainstOracle(ctx *pshard.Ctx, wantSeen int) error {
	seen := 0
	var bad error
	ctx.Scan(func(k, v int64) bool {
		want, ok := fx.oracle[k]
		if !ok {
			bad = fmt.Errorf("scan fabricated key %d (value %d)", k, v)
			return false
		}
		if v != want {
			bad = fmt.Errorf("scan key %d: fabricated value %d, want %d", k, v, want)
			return false
		}
		seen++
		return true
	})
	if bad != nil {
		return bad
	}
	if wantSeen >= 0 && seen != wantSeen {
		return fmt.Errorf("scan saw %d entries, want %d", seen, wantSeen)
	}
	return nil
}

// verifySalvaged checks a set whose shard 0 reopened through salvage:
// healthy-shard keys must all serve exactly, shard-0 keys serve exactly
// or read as amputated (absent), and nothing anywhere is fabricated.
// Returns how many shard-0 keys the amputation lost.
func (fx *faultsFixture) verifySalvaged(set *pshard.Set) (int, error) {
	if q := set.Quarantined(); len(q) != 0 {
		return 0, fmt.Errorf("unexpected quarantine of shards %v", q)
	}
	ctx := set.NewCtx()
	defer ctx.Release()
	lost := 0
	for k, v := range fx.oracle {
		got, ok, err := ctx.Lookup(k)
		if err != nil {
			return 0, fmt.Errorf("lookup %d: %v", k, err)
		}
		if !ok {
			if fx.shardOf[k] != 0 {
				return 0, fmt.Errorf("healthy-shard key %d lost to a shard-0 fault", k)
			}
			lost++
			continue
		}
		if got != v {
			return 0, fmt.Errorf("key %d: fabricated value %d, want %d", k, got, v)
		}
	}
	return lost, fx.scanAgainstOracle(ctx, len(fx.oracle)-lost)
}

// verifyDegradedServing checks the fence: with exactly shard 0
// quarantined, every healthy-shard key serves exactly while every
// shard-0 key fails with ErrShardQuarantined. Returns the healthy keys
// served.
func (fx *faultsFixture) verifyDegradedServing(set *pshard.Set) (int, error) {
	if q := set.Quarantined(); len(q) != 1 || q[0] != 0 {
		return 0, fmt.Errorf("quarantined shards %v, want [0]", q)
	}
	if set.QuarantineCause(0) == nil {
		return 0, fmt.Errorf("quarantined shard 0 has no recorded cause")
	}
	ctx := set.NewCtx()
	defer ctx.Release()
	served := 0
	for k, v := range fx.oracle {
		got, ok, err := ctx.Lookup(k)
		if fx.shardOf[k] == 0 {
			if !errors.Is(err, pshard.ErrShardQuarantined) {
				return 0, fmt.Errorf("key %d on quarantined shard returned (%d,%v,%v), want ErrShardQuarantined", k, got, ok, err)
			}
			continue
		}
		if err != nil || !ok || got != v {
			return 0, fmt.Errorf("healthy key %d: got (%d,%v,%v), want %d", k, got, ok, err, v)
		}
		served++
	}
	return served, nil
}

// faultCell is one matrix cell with its contracted outcome.
type faultCell struct {
	structure string
	kind      faultdev.Kind
	expect    string
}

// The matrix. "salvage": the degraded open detects the damage and
// amputates (never fabricates) its way back to serving. "quarantine":
// the shard fails to open, healthy shards serve, and a retry heals it
// (transient fault). "fatal": the set cannot open at all — the manifest
// is the routing spine and stays load-bearing in every mode. "reopen":
// the transient manifest fault fails one open; the next succeeds.
// "clean": the fault is indistinguishable from a valid earlier state by
// design (value and checksum share one line, so a dropped line
// writeback is an ordinary crash), and the strict open must serve the
// exact committed set.
var faultsMatrix = []faultCell{
	{"gc-phase", faultdev.BitFlip, "salvage"},
	{"gc-phase", faultdev.TornLine, "salvage"},
	{"gc-phase", faultdev.ReadError, "quarantine"},
	{"gc-phase", faultdev.DroppedFlush, "clean"},

	{"redo", faultdev.BitFlip, "salvage"},
	{"redo", faultdev.TornLine, "salvage"},
	{"redo", faultdev.ReadError, "quarantine"},
	{"redo", faultdev.DroppedFlush, "salvage"},

	{"region-top", faultdev.BitFlip, "salvage"},
	{"region-top", faultdev.TornLine, "salvage"},
	{"region-top", faultdev.ReadError, "quarantine"},
	{"region-top", faultdev.DroppedFlush, "clean"},

	{"manifest", faultdev.BitFlip, "fatal"},
	{"manifest", faultdev.TornLine, "fatal"},
	{"manifest", faultdev.ReadError, "reopen"},
	{"manifest", faultdev.DroppedFlush, "fatal"},
}

// prepareCell builds the cell's faulted images and, for read-error
// cells, the injector plan to arm (on the shard-0 or manifest device).
func (fx *faultsFixture) prepareCell(c faultCell) (man, shard0 []byte, plan *faultdev.Plan, onManifest bool, err error) {
	man, shard0 = fx.manifest, fx.shards[0]
	switch c.structure {
	case "gc-phase":
		switch c.kind {
		case faultdev.BitFlip:
			shard0 = cloneImg(shard0)
			faultdev.FlipBitInImage(shard0, fx.gcPhaseOff, 0)
		case faultdev.TornLine:
			// Torn inside the line: the phase word's newest value persisted,
			// its same-line checksum did not.
			shard0 = cloneImg(shard0)
			for i := 0; i < 8; i++ {
				shard0[fx.gcPhaseSumOff+i] ^= 0xA5
			}
		case faultdev.ReadError:
			plan = &faultdev.Plan{Kind: faultdev.ReadError, Off: fx.gcPhaseOff, N: 8, Budget: 1}
		case faultdev.DroppedFlush:
			shard0, err = fx.imgGCPhaseDroppedFlush()
		}
	case "redo":
		switch c.kind {
		case faultdev.BitFlip:
			shard0, err = fx.imgRedoPending(false)
			if err == nil {
				faultdev.FlipBitInImage(shard0, fx.redoOff+24, 3) // first entry's value word
			}
		case faultdev.TornLine:
			shard0, err = fx.imgRedoPending(false)
			if err == nil {
				faultdev.CorruptLineInImage(shard0, fx.redoOff, 99)
			}
		case faultdev.ReadError:
			plan = &faultdev.Plan{Kind: faultdev.ReadError, Off: fx.redoOff, N: 8, Budget: 1}
		case faultdev.DroppedFlush:
			shard0, err = fx.imgRedoPending(true)
		}
	case "region-top":
		switch c.kind {
		case faultdev.BitFlip:
			shard0 = cloneImg(shard0)
			faultdev.FlipBitInImage(shard0, fx.topOff, 2)
		case faultdev.TornLine:
			shard0 = cloneImg(shard0)
			faultdev.CorruptLineInImage(shard0, fx.topOff, 7)
		case faultdev.ReadError:
			plan = &faultdev.Plan{Kind: faultdev.ReadError, Off: fx.topOff, N: 16, Budget: 1}
		case faultdev.DroppedFlush:
			shard0, err = fx.imgTopDroppedFlush()
		}
	case "manifest":
		onManifest = true
		switch c.kind {
		case faultdev.BitFlip:
			man = cloneImg(man)
			faultdev.FlipBitInImage(man, pshard.ManifestBoundsOff+8, 4) // bounds[1]
		case faultdev.TornLine:
			man = cloneImg(man)
			faultdev.CorruptLineInImage(man, pshard.ManifestBoundsOff, 5)
		case faultdev.ReadError:
			plan = &faultdev.Plan{Kind: faultdev.ReadError, Off: pshard.ManifestStateOff, N: 8, Budget: 1}
		case faultdev.DroppedFlush:
			man, err = fx.imgManifestDroppedFlush()
		}
	}
	return man, shard0, plan, onManifest, err
}

// runMatrixCell executes one cell and enforces its contract.
func (fx *faultsFixture) runMatrixCell(c faultCell) (FaultsRow, error) {
	row := FaultsRow{Series: "matrix", Op: c.structure + "/" + c.kind.String(), Expect: c.expect}
	man, shard0, plan, onManifest, err := fx.prepareCell(c)
	if err != nil {
		return row, fmt.Errorf("preparing: %w", err)
	}

	// Detection evidence for at-rest image damage: scrub the faulted
	// shard image (read-only) and require it to flag exactly the cells
	// that are contracted to be detectable there.
	if !onManifest && plan == nil {
		rep, err := pheap.Scrub(nvm.FromImage(cloneImg(shard0), nvm.Config{Mode: nvm.Tracked}))
		if err != nil {
			return row, fmt.Errorf("scrub: image became unreadable: %w", err)
		}
		row.Detected = rep.Corrupt()
		if want := c.expect == "salvage"; row.Detected != want {
			return row, fmt.Errorf("scrub detected=%v, contract wants %v (findings %v)", row.Detected, want, rep.Findings)
		}
	}

	store, dev0, maniDev, err := fx.makeStore(man, shard0)
	if err != nil {
		return row, err
	}
	var in *faultdev.Injector
	if plan != nil {
		target := dev0
		if onManifest {
			target = maniDev
		}
		in = faultdev.Install(target, *plan)
		defer in.Remove()
	}

	switch c.expect {
	case "clean":
		set, err := pshard.OpenSet(store, faultsBase, pshard.Options{Mode: nvm.Tracked, Index: faultsIndexOpts()})
		if err != nil {
			return row, fmt.Errorf("strict open of a crash-equivalent image failed: %w", err)
		}
		defer set.Close()
		if err := fx.verifyExact(set); err != nil {
			return row, err
		}
		row.Healed, row.RecoveredExact = true, true

	case "salvage":
		set, err := fx.openDegraded(store)
		if err != nil {
			return row, fmt.Errorf("degraded open: %w", err)
		}
		defer set.Close()
		lost, err := fx.verifySalvaged(set)
		if err != nil {
			return row, err
		}
		row.KeysLost, row.Healed = lost, true
		rec := set.Shard(0).Recovery()
		if rec.Salvage == nil || !(rec.Salvage.Dirty() || rec.Index.Salvaged()) {
			return row, fmt.Errorf("shard 0 reopened without salvage repairs (report %v)", rec.Salvage)
		}
		switch c.structure {
		case "gc-phase":
			if !rec.Salvage.GCPhaseRepaired || lost != 0 {
				return row, fmt.Errorf("gc-phase salvage: repaired=%v lost=%d, want repaired with 0 lost", rec.Salvage.GCPhaseRepaired, lost)
			}
		case "redo":
			if !rec.Salvage.RedoDiscarded || lost != 0 {
				return row, fmt.Errorf("redo salvage: discarded=%v lost=%d, want discarded with 0 lost", rec.Salvage.RedoDiscarded, lost)
			}
		case "region-top":
			if len(rec.Salvage.RegionsLost) == 0 || lost == 0 {
				return row, fmt.Errorf("region-top salvage: regions_lost=%v keys_lost=%d, want amputation", rec.Salvage.RegionsLost, lost)
			}
		}
		row.RecoveredExact = lost == 0

	case "quarantine":
		set, err := fx.openDegraded(store)
		if err != nil {
			return row, fmt.Errorf("degraded open: %w", err)
		}
		defer set.Close()
		row.Detected, row.Quarantined = true, true
		served, err := fx.verifyDegradedServing(set)
		if err != nil {
			return row, err
		}
		row.KeysServed = served
		if served != fx.healthy {
			return row, fmt.Errorf("served %d healthy keys, want %d", served, fx.healthy)
		}
		healed := set.RetryQuarantined()
		if len(healed) != 1 || healed[0] != 0 {
			return row, fmt.Errorf("RetryQuarantined healed %v, want [0] (cause %v)", healed, set.QuarantineCause(0))
		}
		row.Healed = true
		row.RetryFaults = in.Fired()
		if err := fx.verifyExact(set); err != nil {
			return row, fmt.Errorf("after heal: %w", err)
		}
		row.RecoveredExact = true

	case "fatal":
		row.Detected = true
		if set, err := fx.openDegraded(store); err == nil {
			set.Close()
			return row, fmt.Errorf("degraded open of a corrupt manifest succeeded; the manifest must stay load-bearing")
		}

	case "reopen":
		row.Detected, row.Quarantined = true, true
		err := nvm.CatchMedia(func() error {
			set, err := fx.openDegraded(store)
			if err == nil {
				set.Close()
			}
			return err
		})
		if err == nil {
			return row, fmt.Errorf("first open with a failing manifest read succeeded")
		}
		set, err := fx.openDegraded(store)
		if err != nil {
			return row, fmt.Errorf("reopen after the read-error budget drained: %w", err)
		}
		defer set.Close()
		row.Healed = true
		row.RetryFaults = in.Fired()
		if err := fx.verifyExact(set); err != nil {
			return row, fmt.Errorf("after reopen: %w", err)
		}
		row.RecoveredExact = true
	}
	return row, nil
}

// runFaultsBackoff is the end-to-end degraded-serving scenario: a
// transient read error (budget 2) quarantines shard 0 at open, healthy
// shards serve while the background loop retries with exponential
// backoff, and once the budget drains the shard reopens on its own —
// after which the set must equal the oracle exactly.
func (fx *faultsFixture) runFaultsBackoff() (FaultsRow, error) {
	row := FaultsRow{Series: "degraded", Op: "read-error-backoff", Expect: "quarantine",
		Detected: true, Quarantined: true}
	store, dev0, _, err := fx.makeStore(fx.manifest, fx.shards[0])
	if err != nil {
		return row, err
	}
	in := faultdev.Install(dev0, faultdev.Plan{Kind: faultdev.ReadError, Off: fx.gcPhaseOff, N: 8, Budget: 2})
	defer in.Remove()

	set, err := pshard.OpenSet(store, faultsBase, pshard.Options{
		Mode:      nvm.Tracked,
		Index:     faultsIndexOpts(),
		Degraded:  true,
		Telemetry: true,
		RetryBase: 50 * time.Millisecond,
		RetryCap:  200 * time.Millisecond,
	})
	if err != nil {
		return row, fmt.Errorf("degraded open: %w", err)
	}
	defer set.Close()
	if q := set.Quarantined(); len(q) != 1 || q[0] != 0 {
		return row, fmt.Errorf("quarantined shards %v at open, want [0]", q)
	}

	// Serve through the fence while the backoff clock runs: a sample of
	// healthy keys must answer exactly, and at least one shard-0 key must
	// bounce with ErrShardQuarantined (the first retry is ≥50ms away).
	ctx := set.NewCtx()
	bounced := false
	for k := range fx.shardOf {
		if fx.shardOf[k] == 0 {
			if _, _, err := ctx.Lookup(k); errors.Is(err, pshard.ErrShardQuarantined) {
				bounced = true
			}
			break
		}
	}
	served := 0
	for k, v := range fx.oracle {
		if fx.shardOf[k] == 0 {
			continue
		}
		got, ok, err := ctx.Lookup(k)
		if err != nil || !ok || got != v {
			ctx.Release()
			return row, fmt.Errorf("healthy key %d during quarantine: (%d,%v,%v), want %d", k, got, ok, err, v)
		}
		if served++; served >= 200 {
			break
		}
	}
	ctx.Release()
	row.KeysServed = served
	if !bounced {
		return row, fmt.Errorf("no shard-0 operation bounced with ErrShardQuarantined during the backoff window")
	}

	// The background loop heals it: open fails (budget 1), the first
	// retry fails (budget 2), the second succeeds.
	deadline := time.Now().Add(10 * time.Second)
	for len(set.Quarantined()) > 0 {
		if time.Now().After(deadline) {
			return row, fmt.Errorf("shard 0 still quarantined after 10s (cause %v, faults fired %d)", set.QuarantineCause(0), in.Fired())
		}
		time.Sleep(5 * time.Millisecond)
	}
	row.Healed = true
	row.RetryFaults = in.Fired()
	if err := fx.verifyExact(set); err != nil {
		return row, fmt.Errorf("after background heal: %w", err)
	}
	row.RecoveredExact = true
	if n := set.Telemetry().Snapshot().Counters["shard.quarantined"]; n < 1 {
		return row, fmt.Errorf("telemetry counter shard.quarantined = %d, want ≥ 1", n)
	}
	return row, nil
}

// runFaultsOverhead measures the fault hooks' cost contract: a fixed
// single-goroutine put/get/delete workload, run once bare and once with
// faultdev.Passthrough armed on every shard device, must produce
// bit-identical device counters — installed-but-silent hooks are free,
// which is what makes leaving them compiled into the device affordable.
func runFaultsOverhead(s Scale) ([]FaultsRow, error) {
	n := s.div(20000)
	if n < 2000 {
		n = 2000
	}
	workload := func(hooks bool) (nvm.Stats, error) {
		store := pshard.NewMemStore()
		set, err := pshard.OpenSet(store, "faults-ovh", pshard.Options{
			Shards:        2,
			ShardDataSize: 4 << 20,
			Mode:          nvm.Direct,
			Index:         faultsIndexOpts(),
		})
		if err != nil {
			return nvm.Stats{}, err
		}
		defer set.Close()
		devs := make([]*nvm.Device, set.NumShards())
		for i := range devs {
			devs[i] = set.Shard(i).Heap().Device()
			if hooks {
				faultdev.Passthrough(devs[i])
			}
		}
		var before nvm.Stats
		for _, d := range devs {
			before = before.Add(d.Stats())
		}
		ctx := set.NewCtx()
		for k := int64(1); k <= int64(n); k++ {
			if err := ctx.Put(k, k*3+1); err != nil {
				return nvm.Stats{}, err
			}
		}
		for k := int64(1); k <= int64(n); k++ {
			if _, ok := ctx.Get(k); !ok {
				return nvm.Stats{}, fmt.Errorf("overhead workload lost key %d", k)
			}
		}
		for k := int64(1); k <= int64(n); k += 2 {
			ctx.Delete(k)
		}
		ctx.Release()
		var after nvm.Stats
		for _, d := range devs {
			after = after.Add(d.Stats())
		}
		return after.Sub(before), nil
	}

	bare, err := workload(false)
	if err != nil {
		return nil, err
	}
	hooked, err := workload(true)
	if err != nil {
		return nil, err
	}
	if bare != hooked {
		return nil, fmt.Errorf("fault hooks changed device counters: bare %+v, hooked %+v", bare, hooked)
	}
	ops := n + n + (n+1)/2
	mk := func(op string, st nvm.Stats, identical bool) FaultsRow {
		return FaultsRow{
			Series:               "overhead",
			Op:                   op,
			Ops:                  ops,
			DevWritesPerOp:       float64(st.Writes) / float64(ops),
			DevFlushedLinesPerOp: float64(st.FlushedLines) / float64(ops),
			DevFencesPerOp:       float64(st.Fences) / float64(ops),
			HooksIdentical:       identical,
		}
	}
	return []FaultsRow{mk("kvmix-nohooks", bare, true), mk("kvmix-hooks", hooked, true)}, nil
}

// Faults runs the full experiment: the 16-cell matrix, the
// degraded-serving backoff scenario, and the hook-overhead contract.
// Any contract violation is a hard error, so CI fails on the violation
// itself rather than on a drifted number.
func Faults(s Scale) ([]FaultsRow, error) {
	fx, err := buildFaultsFixture(s)
	if err != nil {
		return nil, err
	}
	var rows []FaultsRow
	for _, c := range faultsMatrix {
		row, err := fx.runMatrixCell(c)
		if err != nil {
			return nil, fmt.Errorf("faults %s/%s: %w", c.structure, c.kind, err)
		}
		rows = append(rows, row)
	}
	row, err := fx.runFaultsBackoff()
	if err != nil {
		return nil, fmt.Errorf("faults degraded scenario: %w", err)
	}
	rows = append(rows, row)
	ovh, err := runFaultsOverhead(s)
	if err != nil {
		return nil, fmt.Errorf("faults overhead: %w", err)
	}
	return append(rows, ovh...), nil
}

// WriteFaultImages dumps deterministic golden and corrupted images into
// dir as .pjh files for heaptool's CI exit-code checks: a clean shard
// image and manifest (scrub exits 0), checksum-corrupted variants
// (exit 4), and an unreadable bad-magic variant (exit 3).
func (fx *faultsFixture) WriteFaultImages(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	save := func(name string, img []byte) error {
		dev := nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})
		return dev.Save(filepath.Join(dir, name))
	}
	if err := save("shard-golden.pjh", fx.shards[0]); err != nil {
		return err
	}
	gcFlip := cloneImg(fx.shards[0])
	faultdev.FlipBitInImage(gcFlip, fx.gcPhaseOff, 0)
	if err := save("shard-gcphase-bitflip.pjh", gcFlip); err != nil {
		return err
	}
	topFlip := cloneImg(fx.shards[0])
	faultdev.FlipBitInImage(topFlip, fx.topOff, 2)
	if err := save("shard-regiontop-bitflip.pjh", topFlip); err != nil {
		return err
	}
	redoTorn, err := fx.imgRedoPending(false)
	if err != nil {
		return err
	}
	faultdev.CorruptLineInImage(redoTorn, fx.redoOff, 99)
	if err := save("shard-redo-torn.pjh", redoTorn); err != nil {
		return err
	}
	badMagic := cloneImg(fx.shards[0])
	faultdev.FlipBitInImage(badMagic, 0, 7)
	if err := save("shard-badmagic.pjh", badMagic); err != nil {
		return err
	}
	if err := save("manifest-golden.pjh", fx.manifest); err != nil {
		return err
	}
	maniFlip := cloneImg(fx.manifest)
	faultdev.FlipBitInImage(maniFlip, pshard.ManifestBoundsOff+8, 4)
	return save("manifest-bitflip.pjh", maniFlip)
}

// FaultsWithImages is Faults plus a dump of the CI scrub images into
// dir (skipped when dir is empty).
func FaultsWithImages(s Scale, dir string) ([]FaultsRow, error) {
	fx, err := buildFaultsFixture(s)
	if err != nil {
		return nil, err
	}
	if dir != "" {
		if err := fx.WriteFaultImages(dir); err != nil {
			return nil, fmt.Errorf("faults: writing scrub images: %w", err)
		}
	}
	var rows []FaultsRow
	for _, c := range faultsMatrix {
		row, err := fx.runMatrixCell(c)
		if err != nil {
			return nil, fmt.Errorf("faults %s/%s: %w", c.structure, c.kind, err)
		}
		rows = append(rows, row)
	}
	row, err := fx.runFaultsBackoff()
	if err != nil {
		return nil, fmt.Errorf("faults degraded scenario: %w", err)
	}
	rows = append(rows, row)
	ovh, err := runFaultsOverhead(s)
	if err != nil {
		return nil, fmt.Errorf("faults overhead: %w", err)
	}
	return append(rows, ovh...), nil
}

// PrintFaults renders the matrix, the degraded scenario, and the
// overhead rows as the experiment's report.
func PrintFaults(w io.Writer, rows []FaultsRow) {
	fmt.Fprintf(w, "%-26s %-11s %-8s %-6s %-6s %9s %9s %9s\n",
		"case", "expect", "detected", "quar", "healed", "lost", "served", "exact")
	for _, r := range rows {
		if r.Series == "overhead" {
			continue
		}
		fmt.Fprintf(w, "%-26s %-11s %-8v %-6v %-6v %9d %9d %9v\n",
			r.Op, r.Expect, r.Detected, r.Quarantined, r.Healed, r.KeysLost, r.KeysServed, r.RecoveredExact)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-16s %9s %14s %18s %14s %10s\n",
		"overhead", "ops", "dev writes/op", "flushed lines/op", "fences/op", "identical")
	for _, r := range rows {
		if r.Series != "overhead" {
			continue
		}
		fmt.Fprintf(w, "%-16s %9d %14.3f %18.3f %14.3f %10v\n",
			r.Op, r.Ops, r.DevWritesPerOp, r.DevFlushedLinesPerOp, r.DevFencesPerOp, r.HooksIdentical)
	}
}
