package experiments

import (
	"fmt"
	"io"
	"time"

	"espresso/internal/core"
	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
	"espresso/internal/pindex"
	"espresso/internal/telemetry"
)

// The telemetry experiment enforces the observability layer's overhead
// contract (docs/observability.md): enabling Options.Telemetry must add
// ZERO device operations to any mutator path, and must not add locks or
// fences there either. Three single-threaded workloads — PLAB
// allocation, durable reference stores, index puts — run twice each,
// telemetry off and on, and the experiment hard-fails (not a tolerance
// check: exact equality) if any per-op device metric differs between
// the two series. Wall clock is reported but never gated; the device
// counts are deterministic and are what CI compares against the
// committed BENCH_telemetry.json baseline.
//
// The same run verifies that telemetry, while free, is also truthful:
// the "on" series cross-checks the folded counters against the
// workload's known operation counts, and a concurrent collection must
// yield a span timeline whose phase durations nest — handshake + mark +
// final pause sum to no more than the cycle's wall time, and the
// remark/summarize/compact/redo spans fit inside the final pause.

// TelemetryRow is one (series, workload) measurement.
type TelemetryRow struct {
	Series       string  `json:"series"` // "off" or "on"
	Op           string  `json:"op"`     // "alloc", "refstore", "kvput"
	Ops          int     `json:"ops"`
	WallNsPerOp  float64 `json:"wall_ns_per_op"`
	DevReads     float64 `json:"dev_reads_per_op"`
	DevWrites    float64 `json:"dev_writes_per_op"`
	FlushedLines float64 `json:"flushed_lines_per_op"`
	Fences       float64 `json:"fences_per_op"`
}

// TelemetrySpanReport is the GC phase-timeline self-check.
type TelemetrySpanReport struct {
	CycleWall  time.Duration
	Handshake  time.Duration
	Mark       time.Duration
	FinalPause time.Duration
	Inner      time.Duration // remark + summarize + compact + redo

	// Snapshot is the span-check runtime's full folded telemetry — CI
	// uploads it alongside the row JSON when a gate fails, so the exact
	// counter and span state behind a regression is inspectable without
	// a local rerun.
	Snapshot telemetry.Snapshot
}

// TelemetryOverhead runs the off/on matrix plus the span check.
func TelemetryOverhead(scale Scale) ([]TelemetryRow, TelemetrySpanReport, error) {
	var rows []TelemetryRow
	for _, op := range []string{"alloc", "refstore", "kvput"} {
		var off, on TelemetryRow
		for _, enabled := range []bool{false, true} {
			row, err := runTelemetryOp(op, enabled, scale)
			if err != nil {
				return nil, TelemetrySpanReport{}, err
			}
			if enabled {
				on = row
			} else {
				off = row
			}
			rows = append(rows, row)
		}
		// The contract is exact, not approximate: the instrumented build
		// must issue the same device operations to the word. Any drift
		// means a counter bump slipped onto the device path.
		if on.DevReads != off.DevReads || on.DevWrites != off.DevWrites ||
			on.FlushedLines != off.FlushedLines || on.Fences != off.Fences {
			return nil, TelemetrySpanReport{}, fmt.Errorf(
				"telemetry %s: device ops changed with telemetry on: off r/w/l/f %.3f/%.3f/%.3f/%.3f, on %.3f/%.3f/%.3f/%.3f",
				op, off.DevReads, off.DevWrites, off.FlushedLines, off.Fences,
				on.DevReads, on.DevWrites, on.FlushedLines, on.Fences)
		}
	}
	report, err := telemetrySpanCheck(scale)
	if err != nil {
		return nil, TelemetrySpanReport{}, err
	}
	return rows, report, nil
}

func runTelemetryOp(op string, enabled bool, scale Scale) (TelemetryRow, error) {
	series := "off"
	if enabled {
		series = "on"
	}
	var row TelemetryRow
	var err error
	switch op {
	case "alloc":
		row, err = telemetryAllocOp(enabled, scale.div(200000))
	case "refstore":
		row, err = telemetryRefStoreOp(enabled, scale.div(200000))
	case "kvput":
		row, err = telemetryKVPutOp(enabled, scale.div(100000))
	default:
		return row, fmt.Errorf("telemetry: unknown op %q", op)
	}
	if err != nil {
		return row, fmt.Errorf("telemetry %s/%s: %w", op, series, err)
	}
	row.Series, row.Op = series, op
	return row, nil
}

func finishTelemetryRow(n int, wall time.Duration, d nvm.Stats) TelemetryRow {
	return TelemetryRow{
		Ops:          n,
		WallNsPerOp:  float64(wall.Nanoseconds()) / float64(n),
		DevReads:     float64(d.Reads) / float64(n),
		DevWrites:    float64(d.Writes) / float64(n),
		FlushedLines: float64(d.FlushedLines) / float64(n),
		Fences:       float64(d.Fences) / float64(n),
	}
}

func telemetryAllocOp(enabled bool, n int) (TelemetryRow, error) {
	rt, err := core.NewRuntime(core.Config{
		PJHDataSize: n*48 + 8*layout.RegionSize,
		NVMMode:     nvm.Direct,
		Telemetry:   enabled,
	})
	if err != nil {
		return TelemetryRow{}, err
	}
	h, err := rt.CreateHeap("telemetry", 0)
	if err != nil {
		return TelemetryRow{}, err
	}
	node := klass.MustInstance("telemetry/Obj", nil,
		klass.Field{Name: "a", Type: layout.FTLong},
		klass.Field{Name: "b", Type: layout.FTLong})
	m, err := rt.NewMutator()
	if err != nil {
		return TelemetryRow{}, err
	}
	defer m.Release()
	dev := h.Device()
	s0 := dev.Stats()
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if _, err := m.PNew(node, 0); err != nil {
			return TelemetryRow{}, err
		}
	}
	wall := time.Since(t0)
	row := finishTelemetryRow(n, wall, dev.Stats().Sub(s0))
	if enabled {
		// Free must not mean absent: the folded counters carry the loop.
		snap := rt.Metrics()
		if got := snap.Counter(telemetry.CtrAllocObjects.Name()); got < uint64(n) {
			return row, fmt.Errorf("alloc.objects %d < %d ops recorded", got, n)
		}
	}
	return row, nil
}

func telemetryRefStoreOp(enabled bool, n int) (TelemetryRow, error) {
	rt, err := core.NewRuntime(core.Config{
		PJHDataSize: 16 * layout.RegionSize,
		NVMMode:     nvm.Direct,
		Telemetry:   enabled,
	})
	if err != nil {
		return TelemetryRow{}, err
	}
	h, err := rt.CreateHeap("telemetry", 0)
	if err != nil {
		return TelemetryRow{}, err
	}
	node := klass.MustInstance("telemetry/Node", nil,
		klass.Field{Name: "ref", Type: layout.FTRef},
		klass.Field{Name: "pad", Type: layout.FTLong})
	refF, err := rt.ResolveField(node, "ref")
	if err != nil {
		return TelemetryRow{}, err
	}
	m, err := rt.NewMutator()
	if err != nil {
		return TelemetryRow{}, err
	}
	defer m.Release()
	const nodes = 64
	own := make([]layout.Ref, nodes)
	for i := range own {
		if own[i], err = m.PNew(node, 0); err != nil {
			return TelemetryRow{}, err
		}
	}
	vol, err := rt.NewString("telemetry-vol", false)
	if err != nil {
		return TelemetryRow{}, err
	}
	dev := h.Device()
	boff := refF.Offset()
	s0 := dev.Stats()
	t0 := time.Now()
	for i := 0; i < n; i++ {
		obj := own[i%nodes]
		val := own[(i+1)%nodes]
		if i%5 == 4 { // churn the remset through the delta buffers too
			val = vol
		}
		if err := m.SetRefFast(obj, refF, val); err != nil {
			return TelemetryRow{}, err
		}
		h.FlushRange(obj, boff, layout.WordSize)
	}
	wall := time.Since(t0)
	row := finishTelemetryRow(n, wall, dev.Stats().Sub(s0))
	if enabled {
		snap := rt.Metrics()
		if got := snap.Counter(telemetry.CtrRefStores.Name()); got != uint64(n) {
			return row, fmt.Errorf("refstore.stores %d != %d ops recorded", got, n)
		}
	}
	return row, nil
}

func telemetryKVPutOp(enabled bool, n int) (TelemetryRow, error) {
	reg := klass.NewRegistry()
	h, err := pheap.Create(reg, pheap.Config{
		DataSize: n*64 + 16*layout.RegionSize,
		Mode:     nvm.Direct,
	})
	if err != nil {
		return TelemetryRow{}, err
	}
	var tel *telemetry.Registry
	if enabled {
		tel = telemetry.New()
		h.SetTelemetry(tel)
	}
	ix, err := pindex.Open(h, pindex.NoPin{}, "bench", pindex.Options{
		InitialBuckets: 1024, // steady-state table so off/on runs are identical
		MaxLoadFactor:  64,
	})
	if err != nil {
		return TelemetryRow{}, err
	}
	c := ix.NewCtx()
	defer c.Release()
	dev := h.Device()
	s0 := dev.Stats()
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if err := c.Put(int64(i), 0); err != nil {
			return TelemetryRow{}, err
		}
	}
	wall := time.Since(t0)
	row := finishTelemetryRow(n, wall, dev.Stats().Sub(s0))
	if enabled {
		snap := tel.Snapshot()
		if got := snap.Counter(telemetry.CtrIndexPuts.Name()); got != uint64(n) {
			return row, fmt.Errorf("index.puts %d != %d ops recorded", got, n)
		}
	}
	return row, nil
}

// telemetrySpanCheck runs one concurrent collection with telemetry on
// and verifies the recorded phase timeline nests inside the measured
// cycle wall time. The phases are disjoint intervals by construction
// (handshake pause, overlapped mark, final pause; remark/summarize/
// compact/redo inside the final pause), so their sums bound strictly —
// a violation means a span was recorded with the wrong window.
func telemetrySpanCheck(scale Scale) (TelemetrySpanReport, error) {
	rt, err := core.NewRuntime(core.Config{
		PJHDataSize: 16 * layout.RegionSize,
		NVMMode:     nvm.Direct,
		Telemetry:   true,
	})
	if err != nil {
		return TelemetrySpanReport{}, err
	}
	if _, err := rt.CreateHeap("telemetry", 0); err != nil {
		return TelemetrySpanReport{}, err
	}
	node := klass.MustInstance("telemetry/GCNode", nil,
		klass.Field{Name: "next", Type: layout.FTRef},
		klass.Field{Name: "pad", Type: layout.FTLong})
	m, err := rt.NewMutator()
	if err != nil {
		return TelemetrySpanReport{}, err
	}
	// A rooted chain plus interleaved garbage gives every phase real work.
	var prev layout.Ref
	nextF, err := rt.ResolveField(node, "next")
	if err != nil {
		return TelemetrySpanReport{}, err
	}
	for i := 0; i < scale.div(50000); i++ {
		if _, err := m.PNew(node, 0); err != nil { // garbage
			return TelemetrySpanReport{}, err
		}
		ref, err := m.PNew(node, 0)
		if err != nil {
			return TelemetrySpanReport{}, err
		}
		if err := m.SetRefFast(ref, nextF, prev); err != nil {
			return TelemetrySpanReport{}, err
		}
		prev = ref
	}
	if err := rt.SetRoot("chain", prev); err != nil {
		return TelemetrySpanReport{}, err
	}
	m.Release()
	t0 := time.Now()
	if _, err := rt.PersistentGCConcurrentWorkers("telemetry", 2); err != nil {
		return TelemetrySpanReport{}, err
	}
	wall := time.Since(t0)
	snap := rt.Metrics()
	r := TelemetrySpanReport{
		Snapshot:   snap,
		CycleWall:  wall,
		Handshake:  snap.SpanTotal(telemetry.SpanGCHandshake),
		Mark:       snap.SpanTotal(telemetry.SpanGCMark),
		FinalPause: snap.SpanTotal(telemetry.SpanGCFinalPause),
		Inner: snap.SpanTotal(telemetry.SpanGCRemark) +
			snap.SpanTotal(telemetry.SpanGCSummarize) +
			snap.SpanTotal(telemetry.SpanGCCompact) +
			snap.SpanTotal(telemetry.SpanGCRedo),
	}
	if r.Handshake <= 0 || r.Mark <= 0 || r.FinalPause <= 0 {
		return r, fmt.Errorf("telemetry gc spans: missing phase (handshake %v, mark %v, finalpause %v)",
			r.Handshake, r.Mark, r.FinalPause)
	}
	if sum := r.Handshake + r.Mark + r.FinalPause; sum > r.CycleWall {
		return r, fmt.Errorf("telemetry gc spans: phases sum to %v > cycle wall %v", sum, r.CycleWall)
	}
	if r.Inner > r.FinalPause {
		return r, fmt.Errorf("telemetry gc spans: inner phases sum to %v > final pause %v", r.Inner, r.FinalPause)
	}
	if got := snap.Counter(telemetry.CtrGCCycles.Name()); got != 1 {
		return r, fmt.Errorf("telemetry gc spans: gc.cycles %d != 1", got)
	}
	return r, nil
}

// PrintTelemetry renders the off/on matrix and the span report.
func PrintTelemetry(w io.Writer, rows []TelemetryRow, report TelemetrySpanReport) {
	fmt.Fprintln(w, "Telemetry overhead — device ops per op must be identical off vs on")
	fmt.Fprintf(w, "  %-9s %-9s %10s %10s %8s %8s %8s %8s\n",
		"op", "series", "ops", "wall ns", "reads", "writes", "lines", "fences")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-9s %-9s %10d %10.1f %8.3f %8.3f %8.3f %8.3f\n",
			r.Op, r.Series, r.Ops, r.WallNsPerOp, r.DevReads, r.DevWrites, r.FlushedLines, r.Fences)
	}
	fmt.Fprintf(w, "  gc span timeline: handshake %v + mark %v + finalpause %v ≤ cycle %v; inner %v ≤ finalpause\n",
		report.Handshake.Round(time.Microsecond), report.Mark.Round(time.Microsecond),
		report.FinalPause.Round(time.Microsecond), report.CycleWall.Round(time.Microsecond),
		report.Inner.Round(time.Microsecond))
}
