package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
)

// The alloc experiment measures allocation scaling under the PLAB
// allocator: N objects split across G mutator goroutines, each with its
// own region-local allocation buffer, against the shared single-lock
// entry point ("shared" series — the seed allocator's concurrency
// behaviour, every goroutine funnelled through one allocator).
//
// Two times are reported per row:
//
//   - wall_ns_per_op: host wall clock. On a many-core host this shows
//     real scaling; on a starved CI runner it mostly shows scheduling.
//   - modeled_ns_per_op: the device-cost critical path, the same media
//     model the other experiments charge (NVMWriteLatency per flushed
//     line). PLAB mutators flush disjoint cache lines — their own
//     region's objects and their own region-top line — so their device
//     time overlaps: the critical path is the slowest mutator's flushed
//     lines. The shared series serializes every flush+fence round trip
//     behind one lock, so its critical path is the sum. This metric is
//     deterministic (line counts, not clocks), which is what lets CI
//     gate on it.
//
// The headline claim matches the ROADMAP item: modeled allocation
// throughput scales near-linearly with goroutines while the
// single-goroutine device-op counts stay at the seed's two flush+fence
// pairs per object.

// AllocRow is one (series, goroutine-count) measurement.
type AllocRow struct {
	Series          string  `json:"series"` // "plab" or "shared"
	Goroutines      int     `json:"goroutines"`
	Allocs          int     `json:"allocs"`
	WallNsPerOp     float64 `json:"wall_ns_per_op"`
	ModeledNsPerOp  float64 `json:"modeled_ns_per_op"`
	ModeledSpeedup  float64 `json:"modeled_speedup_vs_1"`
	DevReads        float64 `json:"dev_reads_per_op"`
	DevWrites       float64 `json:"dev_writes_per_op"`
	FlushedLines    float64 `json:"flushed_lines_per_op"`
	Fences          float64 `json:"fences_per_op"`
	RegionDispenses int     `json:"region_dispenses"`
}

// AllocScaling runs the allocation scaling curve: goroutine counts
// 1, 2, 4, … up to maxParallel, for both series.
func AllocScaling(scale Scale, maxParallel int) ([]AllocRow, error) {
	if maxParallel < 1 {
		maxParallel = 1
	}
	n := scale.div(200000)
	node := klass.MustInstance("alloc/Node", nil,
		klass.Field{Name: "a", Type: layout.FTLong},
		klass.Field{Name: "b", Type: layout.FTLong},
		klass.Field{Name: "c", Type: layout.FTLong},
		klass.Field{Name: "d", Type: layout.FTLong},
	)

	var gs []int
	for g := 1; g < maxParallel; g *= 2 {
		gs = append(gs, g)
	}
	gs = append(gs, maxParallel)

	var rows []AllocRow
	var plabBase float64
	for _, series := range []string{"plab", "shared"} {
		for _, g := range gs {
			if series == "shared" && g != 1 && g != maxParallel {
				continue // endpoints suffice for the contended baseline
			}
			row, err := runAllocOnce(series, g, n, node)
			if err != nil {
				return nil, err
			}
			if series == "plab" && g == 1 {
				plabBase = row.ModeledNsPerOp
			}
			if plabBase > 0 {
				row.ModeledSpeedup = plabBase / row.ModeledNsPerOp
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runAllocOnce(series string, goroutines, n int, node *klass.Klass) (AllocRow, error) {
	perG := n / goroutines
	if perG < 1 {
		perG = 1
	}
	total := perG * goroutines
	reg := klass.NewRegistry()
	nk, err := reg.Define(node)
	if err != nil {
		return AllocRow{}, err
	}
	h, err := pheap.Create(reg, pheap.Config{
		DataSize: total*nk.SizeOf(0) + (goroutines+16)*layout.RegionSize,
		Mode:     nvm.Direct,
	})
	if err != nil {
		return AllocRow{}, err
	}
	// Warm the klass segment so the measured loop is steady-state.
	warm := h.NewAllocator()
	if _, err := warm.Alloc(nk, 0); err != nil {
		return AllocRow{}, err
	}
	warm.Release()

	allocs := make([]*pheap.Allocator, goroutines)
	if series == "plab" {
		for i := range allocs {
			allocs[i] = h.NewAllocator()
		}
	}
	dev := h.Device()
	s0 := dev.Stats()
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	t0 := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if series == "plab" {
				a := allocs[g]
				for i := 0; i < perG; i++ {
					if _, err := a.Alloc(nk, 0); err != nil {
						errs[g] = err
						return
					}
				}
				return
			}
			for i := 0; i < perG; i++ {
				if _, err := h.Alloc(nk, 0); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return AllocRow{}, fmt.Errorf("alloc %s/%d: %w", series, goroutines, err)
		}
	}
	d := dev.Stats().Sub(s0)

	// Device-cost critical path: per-mutator flushed lines overlap across
	// PLABs (disjoint lines); the shared lock serializes everything.
	criticalLines := int(d.FlushedLines)
	dispenses := 0
	if series == "plab" {
		criticalLines = 0
		for _, a := range allocs {
			s := a.Stats()
			dispenses += s.Dispenses
			if s.FlushedLines > criticalLines {
				criticalLines = s.FlushedLines
			}
			a.Release()
		}
	}
	modeled := time.Duration(criticalLines) * NVMWriteLatency
	return AllocRow{
		Series:          series,
		Goroutines:      goroutines,
		Allocs:          total,
		WallNsPerOp:     float64(wall.Nanoseconds()) / float64(total),
		ModeledNsPerOp:  float64(modeled.Nanoseconds()) / float64(total),
		DevReads:        float64(d.Reads) / float64(total),
		DevWrites:       float64(d.Writes) / float64(total),
		FlushedLines:    float64(d.FlushedLines) / float64(total),
		Fences:          float64(d.Fences) / float64(total),
		RegionDispenses: dispenses,
	}, nil
}

// PrintAllocScaling renders the scaling table with the headline ratio.
func PrintAllocScaling(w io.Writer, rows []AllocRow) {
	fmt.Fprintln(w, "Allocation scaling — PLABs (per-mutator regions) vs shared single-lock allocator")
	fmt.Fprintf(w, "  %-7s %3s %10s %12s %12s %8s %8s %8s %8s\n",
		"series", "G", "wall ns", "modeled ns", "speedup", "reads", "writes", "lines", "fences")
	var best AllocRow
	for _, r := range rows {
		fmt.Fprintf(w, "  %-7s %3d %10.1f %12.1f %11.2fx %8.2f %8.2f %8.2f %8.2f\n",
			r.Series, r.Goroutines, r.WallNsPerOp, r.ModeledNsPerOp, r.ModeledSpeedup,
			r.DevReads, r.DevWrites, r.FlushedLines, r.Fences)
		if r.Series == "plab" && r.Goroutines > best.Goroutines {
			best = r
		}
	}
	if best.Goroutines > 1 {
		fmt.Fprintf(w, "  modeled allocation speedup at %d goroutines: %.2fx (device critical path)\n",
			best.Goroutines, best.ModeledSpeedup)
	}
}
