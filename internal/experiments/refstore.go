package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"espresso/internal/core"
	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
)

// The refstore experiment measures the write-combining reference-store
// barrier: G mutator goroutines hammer NVM→NVM and NVM→volatile
// reference stores (each made durable with a slot flush, the paper's
// persistent write path) over disjoint object sets.
//
// Two series:
//
//   - "refstore": every goroutine routes stores through its own
//     core.Mutator, so remembered-set maintenance is an append to a
//     mutator-local delta buffer — no shared lock, no shared cache
//     line; the shared set learns about the stores at publication
//     points (here: buffer overflow and the final snapshot). Mutators
//     flush disjoint slots, so their device time overlaps: the modeled
//     critical path is the slowest mutator's flushed lines.
//   - "shared": the same stores through the Runtime facade, which
//     funnels every goroutine's remset maintenance through the heap's
//     one shared default delta buffer — the serialized-protocol
//     convention of the alloc experiment's "shared" series: its
//     critical path is the sum of all lines, since every store's
//     barrier bookkeeping queues behind one lock before the next flush
//     can issue.
//
// Both report wall clock (scheduling noise on CI) and the deterministic
// modeled device critical path (line counts × NVMWriteLatency) that CI
// gates on: ≥3x modeled ref-store throughput scaling at 8 mutators on
// the "refstore" series, with per-op device ops no worse than the
// committed baseline — the delta append adds zero device traffic over
// the eager-remset seed (one word write + one line flush + one fence
// per durable ref store).
//
// Each run ends with a self-check: the published remembered set must
// equal the single-threaded oracle (the slots whose last store was
// volatile), proving no delta was lost or misordered on the way to the
// shared set.

// RefStoreRow is one (series, goroutine-count) measurement.
type RefStoreRow struct {
	Series         string  `json:"series"` // "refstore" or "shared"
	Goroutines     int     `json:"goroutines"`
	Ops            int     `json:"ops"`
	WallNsPerOp    float64 `json:"wall_ns_per_op"`
	ModeledNsPerOp float64 `json:"modeled_ns_per_op"`
	ModeledSpeedup float64 `json:"modeled_speedup_vs_1"`
	DevReads       float64 `json:"dev_reads_per_op"`
	DevWrites      float64 `json:"dev_writes_per_op"`
	FlushedLines   float64 `json:"flushed_lines_per_op"`
	Fences         float64 `json:"fences_per_op"`
	RemsetSlots    int     `json:"remset_slots"`
}

// RefStoreScaling runs the scaling curve for both series: goroutine
// counts 1, 2, 4, … up to maxParallel.
func RefStoreScaling(scale Scale, maxParallel int) ([]RefStoreRow, error) {
	if maxParallel < 1 {
		maxParallel = 1
	}
	n := scale.div(320000)
	var gs []int
	for g := 1; g < maxParallel; g *= 2 {
		gs = append(gs, g)
	}
	gs = append(gs, maxParallel)

	var rows []RefStoreRow
	for _, series := range []string{"refstore", "shared"} {
		var base float64
		for _, g := range gs {
			row, err := runRefStoreOnce(series, g, n)
			if err != nil {
				return nil, err
			}
			if g == 1 {
				base = row.ModeledNsPerOp
			}
			if base > 0 && row.ModeledNsPerOp > 0 {
				row.ModeledSpeedup = base / row.ModeledNsPerOp
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runRefStoreOnce(series string, goroutines, n int) (RefStoreRow, error) {
	perG := n / goroutines
	if perG < 1 {
		perG = 1
	}
	total := perG * goroutines
	const nodesPerG = 64

	rt, err := core.NewRuntime(core.Config{
		PJHDataSize: (goroutines + 4) * 4 * layout.RegionSize,
		NVMMode:     nvm.Direct,
	})
	if err != nil {
		return RefStoreRow{}, err
	}
	h, err := rt.CreateHeap("refstore", 0)
	if err != nil {
		return RefStoreRow{}, err
	}
	node := klass.MustInstance("refstore/Node", nil,
		klass.Field{Name: "ref", Type: layout.FTRef},
		klass.Field{Name: "pad", Type: layout.FTLong})
	refF, err := rt.ResolveField(node, "ref")
	if err != nil {
		return RefStoreRow{}, err
	}

	// Disjoint working sets: each goroutine owns nodesPerG persistent
	// nodes (allocated on its own PLAB, so they sit in its own regions
	// and its slot flushes touch no other goroutine's lines) plus one
	// volatile target allocated up front (vheap keeps the seed's
	// single-volatile-mutator contract, so workers only store references
	// to it, never mutate it).
	muts := make([]*core.Mutator, goroutines)
	nodes := make([][]layout.Ref, goroutines)
	volTargets := make([]layout.Ref, goroutines)
	for g := 0; g < goroutines; g++ {
		m, err := rt.NewMutator()
		if err != nil {
			return RefStoreRow{}, err
		}
		muts[g] = m
		nodes[g] = make([]layout.Ref, nodesPerG)
		for j := range nodes[g] {
			if nodes[g][j], err = m.PNew(node, 0); err != nil {
				return RefStoreRow{}, err
			}
		}
		if volTargets[g], err = rt.NewString(fmt.Sprintf("vol-%d", g), false); err != nil {
			return RefStoreRow{}, err
		}
	}

	dev := h.Device()
	s0 := dev.Stats()
	lines := make([]int, goroutines) // per-mutator flushed lines (disjoint by construction)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := muts[g]
			own := nodes[g]
			vol := volTargets[g]
			boff := refF.Offset()
			for i := 0; i < perG; i++ {
				obj := own[i%nodesPerG]
				// 4:1 NVM→NVM vs NVM→volatile mix. The mix period (5) is
				// coprime with nodesPerG (64), so every slot genuinely
				// alternates between volatile and persistent values over
				// the run — the remset churns (adds and removes) through
				// the delta buffers, and the oracle below would catch a
				// lost or stale delta.
				val := own[(i+1)%nodesPerG]
				if i%5 == 4 {
					val = vol
				}
				var err error
				if series == "refstore" {
					err = m.SetRefFast(obj, refF, val)
				} else {
					err = rt.SetRefFast(obj, refF, val)
				}
				if err != nil {
					errs[g] = err
					return
				}
				// Durability: persist the stored slot, as the paper's
				// persistent write path requires (one line, one fence).
				h.FlushRange(obj, boff, layout.WordSize)
				lines[g]++
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return RefStoreRow{}, fmt.Errorf("refstore %d goroutines: %w", goroutines, err)
		}
	}
	d := dev.Stats().Sub(s0)

	// Oracle self-check: the published remembered set must hold exactly
	// the slots whose last store was volatile — per node, decided by the
	// largest op index that targeted it.
	expected := 0
	for g := 0; g < goroutines; g++ {
		for j := 0; j < nodesPerG && j < perG; j++ {
			last := j + ((perG - 1 - j) / nodesPerG * nodesPerG) // largest i < perG with i%nodesPerG == j
			if last%5 == 4 {
				expected++
			}
		}
	}
	slots := rt.NVMToVolSlots()
	if len(slots) != expected {
		return RefStoreRow{}, fmt.Errorf("refstore %s/%d: remset holds %d slots, oracle says %d",
			series, goroutines, len(slots), expected)
	}
	for _, m := range muts {
		m.Release()
	}

	// Device-cost critical path: per-mutator slot flushes overlap for the
	// mutator-local series; the shared series serializes every store's
	// barrier bookkeeping behind one lock, so its lines sum.
	critical := 0
	for _, l := range lines {
		if series == "shared" {
			critical += l
		} else if l > critical {
			critical = l
		}
	}
	modeled := time.Duration(critical) * NVMWriteLatency
	return RefStoreRow{
		Series:         series,
		Goroutines:     goroutines,
		Ops:            total,
		WallNsPerOp:    float64(wall.Nanoseconds()) / float64(total),
		ModeledNsPerOp: float64(modeled.Nanoseconds()) / float64(total),
		DevReads:       float64(d.Reads) / float64(total),
		DevWrites:      float64(d.Writes) / float64(total),
		FlushedLines:   float64(d.FlushedLines) / float64(total),
		Fences:         float64(d.Fences) / float64(total),
		RemsetSlots:    len(slots),
	}, nil
}

// PrintRefStoreScaling renders the scaling table with the headline ratio.
func PrintRefStoreScaling(w io.Writer, rows []RefStoreRow) {
	fmt.Fprintln(w, "Ref-store scaling — write-combining remset barrier (per-mutator delta buffers)")
	fmt.Fprintf(w, "  %-9s %3s %10s %12s %12s %8s %8s %8s %8s\n",
		"series", "G", "wall ns", "modeled ns", "speedup", "reads", "writes", "lines", "fences")
	var best RefStoreRow
	for _, r := range rows {
		fmt.Fprintf(w, "  %-9s %3d %10.1f %12.1f %11.2fx %8.2f %8.2f %8.2f %8.2f\n",
			r.Series, r.Goroutines, r.WallNsPerOp, r.ModeledNsPerOp, r.ModeledSpeedup,
			r.DevReads, r.DevWrites, r.FlushedLines, r.Fences)
		if r.Series == "refstore" && r.Goroutines > best.Goroutines {
			best = r
		}
	}
	if best.Goroutines > 1 {
		fmt.Fprintf(w, "  modeled ref-store speedup at %d mutators: %.2fx (device critical path)\n",
			best.Goroutines, best.ModeledSpeedup)
	}
}
