package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"espresso/internal/core"
	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
)

// The fast-path experiment measures the resolved-accessor layer the way
// the paper measures everything else: wall time next to accounted device
// traffic. It is the source of BENCH_fastpath.json, the baseline CI
// compares new runs against by eye.

// FastpathRow is one operation's cost, per op.
type FastpathRow struct {
	Op           string  `json:"op"`
	NsPerOp      float64 `json:"ns_per_op"`
	DevReads     float64 `json:"dev_reads_per_op"`
	DevWrites    float64 `json:"dev_writes_per_op"`
	FlushedLines float64 `json:"flushed_lines_per_op"`
	Fences       float64 `json:"fences_per_op"`
}

// Fastpath measures named vs resolved field access, persistent-string
// round trips, and per-object vs coalesced transitive flushes.
func Fastpath(scale Scale) ([]FastpathRow, error) {
	rt, err := core.NewRuntime(core.Config{PJHDataSize: 64 << 20})
	if err != nil {
		return nil, err
	}
	h, err := rt.CreateHeap("fastpath", 0)
	if err != nil {
		return nil, err
	}
	dev := h.Device()
	n := scale.div(1000000)

	person := klass.MustInstance("fastpath/Person", nil,
		klass.Field{Name: "id", Type: layout.FTLong},
		klass.Field{Name: "name", Type: layout.FTRef, RefKlass: core.StringKlassName},
	)
	p, err := rt.PNew(person, 0)
	if err != nil {
		return nil, err
	}
	idF, err := rt.ResolveField(person, "id")
	if err != nil {
		return nil, err
	}

	var rows []FastpathRow
	measure := func(op string, iters int, fn func() error) error {
		s0 := dev.Stats()
		t0 := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("fastpath %s: %w", op, err)
		}
		wall := time.Since(t0)
		d := dev.Stats().Sub(s0)
		rows = append(rows, FastpathRow{
			Op:           op,
			NsPerOp:      float64(wall.Nanoseconds()) / float64(iters),
			DevReads:     float64(d.Reads) / float64(iters),
			DevWrites:    float64(d.Writes) / float64(iters),
			FlushedLines: float64(d.FlushedLines) / float64(iters),
			Fences:       float64(d.Fences) / float64(iters),
		})
		return nil
	}

	if err := measure("named-get", n, func() error {
		for i := 0; i < n; i++ {
			if _, err := rt.GetLong(p, "id"); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := measure("resolved-get", n, func() error {
		for i := 0; i < n; i++ {
			rt.GetLongFast(p, idF)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := measure("named-set", n, func() error {
		for i := 0; i < n; i++ {
			if err := rt.SetLong(p, "id", int64(i)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := measure("resolved-set", n, func() error {
		for i := 0; i < n; i++ {
			rt.SetLongFast(p, idF, int64(i))
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Strings: one round trip per iteration, measured in chunks with the
	// dead-string GC between them — outside both the timer and the
	// device-stat window, so the per-op numbers are scale-independent
	// and comparable against the committed baseline.
	payload := strings.Repeat("s", 256)
	strN := n / 10
	if strN < 1 {
		strN = 1
	}
	{
		var wall time.Duration
		var traffic nvm.Stats
		const chunk = 10000
		for done := 0; done < strN; {
			step := chunk
			if step > strN-done {
				step = strN - done
			}
			s0 := dev.Stats()
			t0 := time.Now()
			for i := 0; i < step; i++ {
				ref, err := rt.NewString(payload, true)
				if err != nil {
					return nil, fmt.Errorf("fastpath string-roundtrip: %w", err)
				}
				if _, err := rt.GetString(ref); err != nil {
					return nil, fmt.Errorf("fastpath string-roundtrip: %w", err)
				}
			}
			wall += time.Since(t0)
			d := dev.Stats().Sub(s0)
			traffic.Reads += d.Reads
			traffic.Writes += d.Writes
			traffic.FlushedLines += d.FlushedLines
			traffic.Fences += d.Fences
			done += step
			if done < strN {
				if _, err := rt.PersistentGC("fastpath"); err != nil {
					return nil, fmt.Errorf("fastpath string-roundtrip gc: %w", err)
				}
			}
		}
		rows = append(rows, FastpathRow{
			Op:           "string-roundtrip",
			NsPerOp:      float64(wall.Nanoseconds()) / float64(strN),
			DevReads:     float64(traffic.Reads) / float64(strN),
			DevWrites:    float64(traffic.Writes) / float64(strN),
			FlushedLines: float64(traffic.FlushedLines) / float64(strN),
			Fences:       float64(traffic.Fences) / float64(strN),
		})
	}

	// Transitive flush over a 64-node chain.
	node := klass.MustInstance("fastpath/Node", nil,
		klass.Field{Name: "next", Type: layout.FTRef, RefKlass: "fastpath/Node"},
		klass.Field{Name: "v", Type: layout.FTLong},
	)
	const graph = 64
	var head layout.Ref
	chain := make([]layout.Ref, graph)
	for i := 0; i < graph; i++ {
		r, err := rt.PNew(node, 0)
		if err != nil {
			return nil, err
		}
		if err := rt.SetRef(r, "next", head); err != nil {
			return nil, err
		}
		chain[i] = r
		head = r
	}
	flushN := n / 100
	if flushN < 1 {
		flushN = 1
	}
	if err := measure("flush-per-object", flushN, func() error {
		for i := 0; i < flushN; i++ {
			for _, r := range chain {
				if err := rt.FlushObject(r); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := measure("flush-transitive", flushN, func() error {
		for i := 0; i < flushN; i++ {
			if err := rt.FlushTransitive(head); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintFastpath renders the fast-path table with the headline ratios.
func PrintFastpath(w io.Writer, rows []FastpathRow) {
	fmt.Fprintln(w, "Fast path — resolved handles, bulk I/O, coalesced flushes (per op)")
	byOp := map[string]FastpathRow{}
	fmt.Fprintf(w, "  %-18s %12s %10s %10s %8s %8s\n", "op", "ns", "reads", "writes", "lines", "fences")
	for _, r := range rows {
		byOp[r.Op] = r
		fmt.Fprintf(w, "  %-18s %12.1f %10.2f %10.2f %8.2f %8.2f\n",
			r.Op, r.NsPerOp, r.DevReads, r.DevWrites, r.FlushedLines, r.Fences)
	}
	if ng, rg := byOp["named-get"], byOp["resolved-get"]; rg.NsPerOp > 0 && rg.DevReads > 0 {
		fmt.Fprintf(w, "  resolved get: %.2fx faster, %.1fx fewer device reads\n",
			ng.NsPerOp/rg.NsPerOp, ng.DevReads/rg.DevReads)
	}
	if po, tr := byOp["flush-per-object"], byOp["flush-transitive"]; tr.Fences > 0 {
		fmt.Fprintf(w, "  coalesced flush: %.0fx fewer fences, %.1fx fewer flushed lines\n",
			po.Fences/tr.Fences, po.FlushedLines/tr.FlushedLines)
	}
}
