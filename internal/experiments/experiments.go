// Package experiments regenerates every table and figure of the paper's
// motivation and evaluation sections (the per-experiment index lives in
// DESIGN.md §4). Each experiment builds the real systems, runs the real
// workloads, and prints rows/series shaped like the paper's plots.
//
// Absolute numbers differ from the paper — the substrate is a simulated
// NVM device, not a Xeon with Viking NVDIMMs — so experiments report the
// *shape*: who wins, by what factor, and where time goes. NVM media cost
// is modelled as write latency per flushed line and included in reported
// times, since flush traffic is precisely what the paper's hardware
// charges for.
package experiments

import (
	"fmt"
	"io"
	"time"

	"espresso/internal/bench"
	"espresso/internal/core"
	"espresso/internal/h2"
	"espresso/internal/jpa"
	"espresso/internal/jpab"
	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pcj"
	"espresso/internal/pcollections"
	"espresso/internal/pgc"
	"espresso/internal/pheap"
	"espresso/internal/pjo"
)

// NVMWriteLatency models the media write cost per flushed cache line
// (3D-XPoint-class media land in the 100–500 ns range; the paper's
// NVDIMMs are DRAM-speed but flushes still pay the clflush round trip).
const NVMWriteLatency = 300 * time.Nanosecond

// Scale shrinks workload sizes uniformly (1 = paper-sized where feasible;
// larger values divide the populations for quick runs and unit tests).
type Scale int

func (s Scale) div(n int) int {
	if s <= 1 {
		return n
	}
	v := n / int(s)
	if v < 1 {
		return 1
	}
	return v
}

// --- Figure 4: JPA commit breakdown ---

// Fig4 reproduces the DataNucleus commit breakdown (§2.1): database
// execution vs object→SQL transformation vs other, measured on the real
// JPA provider running the JPAB BasicTest workload.
// Paper: Database 24.0%, Transformation 41.9%, Other 34.1%.
func Fig4(w io.Writer, scale Scale) error {
	db, err := h2.New(64<<20, nvm.Direct)
	if err != nil {
		return err
	}
	p := jpa.NewProvider(db)
	prof := bench.NewBreakdown()
	p.SetProfile(prof)
	test := jpab.BasicTest()
	if _, err := jpab.Run(test, p, scale.div(4000), 50); err != nil {
		return err
	}
	prof.PrintFractions(w, "Figure 4 — JPA (DataNucleus-style) commit breakdown")
	fmt.Fprintln(w, "paper: Database 24.0%  Transformation 41.9%  Other 34.1%")
	return nil
}

// --- Figure 6: PCJ create breakdown ---

// Fig6 reproduces the PCJ create-operation breakdown (§2.2): 200,000
// PersistentLong objects, time split across transaction, GC (refcount),
// metadata (type-information memorization), allocation, and data.
// Paper: Data 1.8%, Metadata 36.8%, GC 14.8% (+ allocation, transaction).
func Fig6(w io.Writer, scale Scale) error {
	h := pcj.New(pcj.Config{Size: 256 << 20, Mode: nvm.Direct, WriteLatency: NVMWriteLatency})
	prof := bench.NewBreakdown()
	h.SetProfile(prof)
	n := scale.div(200000)
	for i := 0; i < n; i++ {
		if _, err := h.NewLong(int64(i)); err != nil {
			return err
		}
	}
	h.SetProfile(nil)
	prof.PrintFractions(w, fmt.Sprintf("Figure 6 — PCJ create breakdown (%d PersistentLong objects)", n))
	fmt.Fprintln(w, "paper: Data 1.8%  Metadata 36.8%  GC 14.8%  (rest: allocation, transaction, other)")
	return nil
}

// --- Figure 15: PJH vs PCJ microbenchmarks ---

// Fig15Row is one (data type, operation) speedup.
type Fig15Row struct {
	Type, Op string
	PCJ      time.Duration
	Espresso time.Duration
	Speedup  float64
}

// Fig15 runs create/set/get on the five data types of §6.2 over both
// systems, both with ACID semantics (PCJ's built-in transactions vs
// Espresso's undo log), reporting normalized speedup PJH over PCJ.
// Paper: up to 256.3x (tuple set), ≥6.0x on gets.
func Fig15(scale Scale) ([]Fig15Row, error) {
	n := scale.div(100000)

	pcjHeap := pcj.New(pcj.Config{Size: 512 << 20, Mode: nvm.Direct, WriteLatency: NVMWriteLatency})
	ph, err := pheap.Create(klass.NewRegistry(), pheap.Config{
		DataSize: 256 << 20, Mode: nvm.Direct, WriteLatency: NVMWriteLatency})
	if err != nil {
		return nil, err
	}
	world, err := pcollections.NewWorld(ph)
	if err != nil {
		return nil, err
	}

	timeOp := func(dev *nvm.Device, fn func() error) (time.Duration, error) {
		s0 := dev.Stats()
		t0 := time.Now()
		err := fn()
		wall := time.Since(t0)
		return wall + dev.Stats().Sub(s0).ModeledFlushTime(), err
	}

	var rows []Fig15Row
	add := func(typ, op string, pcjFn, espFn func() error) error {
		tp, err := timeOp(pcjHeap.Device(), pcjFn)
		if err != nil {
			return fmt.Errorf("fig15 %s/%s pcj: %w", typ, op, err)
		}
		te, err := timeOp(ph.Device(), espFn)
		if err != nil {
			return fmt.Errorf("fig15 %s/%s espresso: %w", typ, op, err)
		}
		rows = append(rows, Fig15Row{typ, op, tp, te, float64(tp) / float64(te)})
		return nil
	}

	// Shared fixtures.
	pcjBox, _ := pcjHeap.NewLong(0)
	espBox, _ := world.NewLong(0)

	// ArrayList.
	pcjList, _ := pcjHeap.NewList()
	espList, _ := world.NewList(8)
	if err := add("ArrayList", "Create",
		func() error {
			for i := 0; i < n; i++ {
				if err := pcjHeap.ListAdd(pcjList, pcjBox); err != nil {
					return err
				}
			}
			return nil
		},
		func() error {
			for i := 0; i < n; i++ {
				if err := world.ListAdd(espList, espBox); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
		return nil, err
	}
	if err := add("ArrayList", "Set",
		func() error {
			for i := 0; i < n; i++ {
				pcjHeap.ListSet(pcjList, i%n, pcjBox)
			}
			return nil
		},
		func() error {
			for i := 0; i < n; i++ {
				if err := world.ListSet(espList, i%n, espBox); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
		return nil, err
	}
	if err := add("ArrayList", "Get",
		func() error {
			for i := 0; i < n; i++ {
				pcjHeap.ListGet(pcjList, i%n)
			}
			return nil
		},
		func() error {
			for i := 0; i < n; i++ {
				if _, err := world.ListGet(espList, i%n); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
		return nil, err
	}

	// Generic array.
	const arrLen = 1024
	pcjArr, _ := pcjHeap.NewArray(arrLen)
	espArr, _ := world.NewArray(arrLen)
	if err := add("Generic", "Create",
		func() error {
			for i := 0; i < n/arrLen+1; i++ {
				if _, err := pcjHeap.NewArray(arrLen); err != nil {
					return err
				}
			}
			return nil
		},
		func() error {
			for i := 0; i < n/arrLen+1; i++ {
				if _, err := world.NewArray(arrLen); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
		return nil, err
	}
	if err := add("Generic", "Set",
		func() error {
			for i := 0; i < n; i++ {
				pcjHeap.ArraySet(pcjArr, i%arrLen, pcjBox)
			}
			return nil
		},
		func() error {
			for i := 0; i < n; i++ {
				if err := world.ArraySet(espArr, i%arrLen, espBox); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
		return nil, err
	}
	if err := add("Generic", "Get",
		func() error {
			for i := 0; i < n; i++ {
				pcjHeap.ArrayGet(pcjArr, i%arrLen)
			}
			return nil
		},
		func() error {
			for i := 0; i < n; i++ {
				world.ArrayGet(espArr, i%arrLen)
			}
			return nil
		}); err != nil {
		return nil, err
	}

	// Tuple.
	pcjTup, _ := pcjHeap.NewTuple(pcjBox, pcjBox, pcjBox)
	espTup, _ := world.NewTuple(espBox, espBox, espBox)
	if err := add("Tuple", "Create",
		func() error {
			for i := 0; i < n; i++ {
				if _, err := pcjHeap.NewTuple(pcjBox, pcjBox, pcjBox); err != nil {
					return err
				}
			}
			return nil
		},
		func() error {
			for i := 0; i < n; i++ {
				if _, err := world.NewTuple(espBox, espBox, espBox); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
		return nil, err
	}
	if err := add("Tuple", "Set",
		func() error {
			for i := 0; i < n; i++ {
				pcjHeap.TupleSet(pcjTup, i%3, pcjBox)
			}
			return nil
		},
		func() error {
			for i := 0; i < n; i++ {
				if err := world.TupleSet(espTup, i%3, espBox); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
		return nil, err
	}
	if err := add("Tuple", "Get",
		func() error {
			for i := 0; i < n; i++ {
				pcjHeap.TupleGet(pcjTup, i%3)
			}
			return nil
		},
		func() error {
			for i := 0; i < n; i++ {
				world.TupleGet(espTup, i%3)
			}
			return nil
		}); err != nil {
		return nil, err
	}

	// Primitive (boxed long, the PersistentLong case).
	if err := add("Primitive", "Create",
		func() error {
			for i := 0; i < n; i++ {
				if _, err := pcjHeap.NewLong(int64(i)); err != nil {
					return err
				}
			}
			return nil
		},
		func() error {
			for i := 0; i < n; i++ {
				if _, err := world.NewLong(int64(i)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
		return nil, err
	}
	if err := add("Primitive", "Set",
		func() error {
			for i := 0; i < n; i++ {
				pcjHeap.SetLongValue(pcjBox, int64(i))
			}
			return nil
		},
		func() error {
			for i := 0; i < n; i++ {
				if err := world.SetLongValue(espBox, int64(i)); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
		return nil, err
	}
	if err := add("Primitive", "Get",
		func() error {
			for i := 0; i < n; i++ {
				pcjHeap.LongValue(pcjBox)
			}
			return nil
		},
		func() error {
			for i := 0; i < n; i++ {
				world.LongValue(espBox)
			}
			return nil
		}); err != nil {
		return nil, err
	}

	// Hashmap.
	pcjMap, _ := pcjHeap.NewMap()
	espMap, _ := world.NewMap(64)
	if err := add("Hashmap", "Create",
		func() error {
			for i := 0; i < n; i++ {
				if err := pcjHeap.MapPut(pcjMap, int64(i%4096), pcjBox); err != nil {
					return err
				}
			}
			return nil
		},
		func() error {
			for i := 0; i < n; i++ {
				if err := world.MapPut(espMap, int64(i%4096), espBox); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
		return nil, err
	}
	if err := add("Hashmap", "Set",
		func() error {
			for i := 0; i < n; i++ {
				if err := pcjHeap.MapPut(pcjMap, int64(i%4096), pcjBox); err != nil {
					return err
				}
			}
			return nil
		},
		func() error {
			for i := 0; i < n; i++ {
				if err := world.MapPut(espMap, int64(i%4096), espBox); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
		return nil, err
	}
	if err := add("Hashmap", "Get",
		func() error {
			for i := 0; i < n; i++ {
				pcjHeap.MapGet(pcjMap, int64(i%4096))
			}
			return nil
		},
		func() error {
			for i := 0; i < n; i++ {
				world.MapGet(espMap, int64(i%4096))
			}
			return nil
		}); err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintFig15 renders the speedup table.
func PrintFig15(w io.Writer, rows []Fig15Row) {
	t := &bench.Table{Header: []string{"Type", "Op", "PCJ", "Espresso", "Speedup"}}
	for _, r := range rows {
		t.AddRow(r.Type, r.Op,
			r.PCJ.Round(time.Microsecond).String(),
			r.Espresso.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", r.Speedup))
	}
	fmt.Fprintln(w, "Figure 15 — normalized speedup, PJH over PCJ (ACID on both sides)")
	t.Print(w)
	fmt.Fprintln(w, "paper: speedups from 6.0x (gets) up to 256.3x (tuple sets)")
}

// --- Figures 16/17: JPAB, H2-JPA vs H2-PJO ---

// Fig16Row is one (test, operation) throughput pair.
type Fig16Row struct {
	Test, Op string
	JPA, PJO float64 // ops/sec
}

// stackSize scales the backing stores with the workload so small test
// runs do not spend their time (and flush the page cache) zero-filling
// hundreds of megabytes they never touch.
func stackSize(scale Scale) int {
	if scale <= 1 {
		return 128 << 20
	}
	size := (128 << 20) / int(scale)
	if size < 16<<20 {
		size = 16 << 20
	}
	return size
}

func newJPAStack(scale Scale) (*jpa.Provider, error) {
	db, err := h2.New(stackSize(scale), nvm.Direct)
	if err != nil {
		return nil, err
	}
	return jpa.NewProvider(db), nil
}

func newPJOStack(scale Scale) (*pjo.Provider, error) {
	db, err := h2.New(stackSize(scale), nvm.Direct)
	if err != nil {
		return nil, err
	}
	rt, err := core.NewRuntime(core.Config{PJHDataSize: stackSize(scale)})
	if err != nil {
		return nil, err
	}
	if _, err := rt.CreateHeap("pjo-bench", 0); err != nil {
		return nil, err
	}
	return pjo.NewProvider(rt, db), nil
}

// runBest runs a JPAB test several times on the same stack and keeps the
// best rate per operation — the usual best-of-k discipline for wall-clock
// microbenchmarks, applied identically to both providers.
func runBest(t *jpab.Test, em jpa.EntityManager, n, attempts int) (map[string]float64, error) {
	best := map[string]float64{}
	for a := 0; a < attempts; a++ {
		r, err := jpab.Run(t, em, n, 50)
		if err != nil {
			return nil, err
		}
		for op, v := range r.Ops() {
			if v > best[op] {
				best[op] = v
			}
		}
	}
	return best, nil
}

// Fig16 runs the four JPAB tests over both providers.
// Paper: H2-PJO beats H2-JPA everywhere, up to 3.24x.
func Fig16(scale Scale) ([]Fig16Row, error) {
	n := scale.div(2000)
	// Throughput cells need enough ops to rise above scheduler jitter;
	// scaling below this floor measures noise, not providers.
	if n < 250 {
		n = 250
	}
	const attempts = 3
	var rows []Fig16Row
	for _, mk := range jpab.AllTests() {
		jp, err := newJPAStack(scale)
		if err != nil {
			return nil, err
		}
		rJPA, err := runBest(mk, jp, n, attempts)
		if err != nil {
			return nil, fmt.Errorf("fig16 %s JPA: %w", mk.Name, err)
		}
		pj, err := newPJOStack(scale)
		if err != nil {
			return nil, err
		}
		rPJO, err := runBest(mk, pj, n, attempts)
		if err != nil {
			return nil, fmt.Errorf("fig16 %s PJO: %w", mk.Name, err)
		}
		for _, op := range []string{"Retrieve", "Update", "Delete", "Create"} {
			rows = append(rows, Fig16Row{Test: mk.Name, Op: op, JPA: rJPA[op], PJO: rPJO[op]})
		}
	}
	return rows, nil
}

// PrintFig16 renders the throughput table with speedups.
func PrintFig16(w io.Writer, rows []Fig16Row) {
	t := &bench.Table{Header: []string{"Test", "Op", "H2-JPA (ops/s)", "H2-PJO (ops/s)", "PJO/JPA"}}
	for _, r := range rows {
		t.AddRow(r.Test, r.Op, fmt.Sprintf("%.0f", r.JPA), fmt.Sprintf("%.0f", r.PJO),
			fmt.Sprintf("%.2fx", r.PJO/r.JPA))
	}
	fmt.Fprintln(w, "Figure 16 — JPAB throughput, H2-JPA vs H2-PJO")
	t.Print(w)
	fmt.Fprintln(w, "paper: H2-PJO wins every cell, up to 3.24x")
}

// Fig17 reruns BasicTest with phase profiles on both providers, printing
// the execution/transformation/other split per operation (paper's
// Figure 17 stacked bars).
func Fig17(w io.Writer, scale Scale) error {
	n := scale.div(2000)
	fmt.Fprintln(w, "Figure 17 — BasicTest time breakdown (Execution = database, Transformation, Other)")
	for _, sys := range []string{"H2-JPA", "H2-PJO"} {
		var em jpa.EntityManager
		var setProf func(*bench.Breakdown)
		if sys == "H2-JPA" {
			p, err := newJPAStack(scale)
			if err != nil {
				return err
			}
			em, setProf = p, p.SetProfile
		} else {
			p, err := newPJOStack(scale)
			if err != nil {
				return err
			}
			em, setProf = p, p.SetProfile
		}
		test := jpab.BasicTest()
		for _, def := range test.Defs {
			if err := em.EnsureSchema(def); err != nil {
				return err
			}
		}
		phases := []struct {
			op  string
			run func() error
		}{
			{"Create", func() error {
				for base := 0; base < n; base += 50 {
					sz := 50
					if base+sz > n {
						sz = n - base
					}
					if err := test.MakeBatch(em, int64(base), sz); err != nil {
						return err
					}
				}
				return nil
			}},
			{"Retrieve", func() error {
				for id := 0; id < n; id++ {
					if err := test.Fetch(em, int64(id)); err != nil {
						return err
					}
				}
				return nil
			}},
			{"Update", func() error {
				for id := 0; id < n; id++ {
					if err := test.Touch(em, int64(id)); err != nil {
						return err
					}
				}
				return nil
			}},
			{"Delete", func() error {
				for id := 0; id < n; id++ {
					if err := test.Drop(em, int64(id)); err != nil {
						return err
					}
				}
				return nil
			}},
		}
		for _, ph := range phases {
			prof := bench.NewBreakdown()
			setProf(prof)
			if err := ph.run(); err != nil {
				return fmt.Errorf("fig17 %s %s: %w", sys, ph.op, err)
			}
			setProf(nil)
			fr := prof.Fractions()
			fmt.Fprintf(w, "  %-7s %-9s total %-10v Execution %5.1f%%  Transformation %5.1f%%  Other %5.1f%%\n",
				sys, ph.op, prof.Total().Round(time.Microsecond),
				fr["Database"]*100, fr["Transformation"]*100, fr["Other"]*100)
		}
	}
	fmt.Fprintln(w, "paper: PJO removes nearly all transformation time; execution also drops for most ops")
	return nil
}

// --- Figure 18: heap loading time ---

// Fig18Point is one (object count, load time) measurement per safety
// level.
type Fig18Point struct {
	Objects  int
	UGMillis float64
	ZeroMs   float64
}

// Fig18 builds heaps of 0.2M–2M objects across 20 Klasses and measures
// loadHeap under user-guaranteed and zeroing safety.
// Paper: UG flat (∝ #Klasses), Zero linear (whole-heap scan); ~72.76 ms
// at 2M objects.
func Fig18(scale Scale) ([]Fig18Point, error) {
	var points []Fig18Point
	maxObjs := Scale(1).div(2000000) / int(scale)
	step := maxObjs / 10
	if step == 0 {
		step = 1
	}
	for count := step; count <= maxObjs; count += step {
		img, err := buildFig18Image(count)
		if err != nil {
			return nil, err
		}
		// User-guaranteed: metadata + Klass reinitialization only.
		dev := nvm.FromImage(img, nvm.Config{})
		t0 := time.Now()
		if _, err := pheap.Load(dev, klass.NewRegistry()); err != nil {
			return nil, err
		}
		ug := time.Since(t0)
		// Zeroing: plus the whole-heap scan.
		dev2 := nvm.FromImage(img, nvm.Config{})
		t0 = time.Now()
		h2nd, err := pheap.Load(dev2, klass.NewRegistry())
		if err != nil {
			return nil, err
		}
		if _, err := h2nd.ZeroingScan(h2nd.Contains); err != nil {
			return nil, err
		}
		zero := time.Since(t0)
		points = append(points, Fig18Point{
			Objects:  count,
			UGMillis: float64(ug.Microseconds()) / 1000,
			ZeroMs:   float64(zero.Microseconds()) / 1000,
		})
	}
	return points, nil
}

func buildFig18Image(objects int) ([]byte, error) {
	reg := klass.NewRegistry()
	h, err := pheap.Create(reg, pheap.Config{DataSize: objects*48 + (8 << 20), Mode: nvm.Tracked})
	if err != nil {
		return nil, err
	}
	// 20 distinct Klasses, as in the paper's microbenchmark.
	klasses := make([]*klass.Klass, 20)
	for i := range klasses {
		klasses[i], err = reg.Define(klass.MustInstance(fmt.Sprintf("bench/K%d", i), nil,
			klass.Field{Name: "a", Type: layout.FTLong},
			klass.Field{Name: "b", Type: layout.FTRef},
		))
		if err != nil {
			return nil, err
		}
	}
	var prev layout.Ref
	for i := 0; i < objects; i++ {
		ref, err := h.Alloc(klasses[i%20], 0)
		if err != nil {
			return nil, err
		}
		// Half the refs point intra-heap, some point "volatile" so the
		// zeroing scan has real work.
		if i%2 == 0 && prev != 0 {
			h.SetWord(ref, layout.FieldOff(1), uint64(prev))
		} else if i%5 == 1 {
			h.SetWord(ref, layout.FieldOff(1), uint64(layout.YoungBase+layout.Ref(i*16)))
		}
		prev = ref
	}
	if err := h.SetRoot("head", prev); err != nil {
		return nil, err
	}
	h.Device().FlushAll()
	return h.Device().CrashImage(nvm.CrashFlushedOnly, 0), nil
}

// PrintFig18 renders the two series.
func PrintFig18(w io.Writer, points []Fig18Point) {
	fmt.Fprintln(w, "Figure 18 — heap loading time vs object count")
	ug := &bench.Series{Name: "UG (ms)"}
	zero := &bench.Series{Name: "Zero (ms)"}
	for _, p := range points {
		ug.Points = append(ug.Points, bench.Point{X: float64(p.Objects) / 1e6, Y: p.UGMillis})
		zero.Points = append(zero.Points, bench.Point{X: float64(p.Objects) / 1e6, Y: p.ZeroMs})
	}
	bench.PrintSeries(w, "objects (M)", "load time", []*bench.Series{ug, zero})
	fmt.Fprintln(w, "paper: UG flat; Zero linear, ~72.76 ms at 2M objects")
}

// --- §6.4: recoverable GC flush cost ---

// GCFlushResult compares the crash-consistent collection's pause with and
// without clflush.
type GCFlushResult struct {
	WithFlush    time.Duration
	WithoutFlush time.Duration
	OverheadPct  float64
	LiveBytes    int
}

// GCFlushCost allocates liveBytes of rooted objects plus garbage on PJH
// and measures a forced collection twice: flushes on and off.
// Paper: flushes add 17.8% to the pause.
//
// The paper's device is a battery-backed NVDIMM — DRAM-speed media — so
// a clflush costs the cache-line writeback, not slow-media latency. The
// device therefore runs in Tracked mode (each flush really copies its
// lines to the persisted view, the writeback analog) with no added media
// latency; the measured overhead is the flush work itself.
func GCFlushCost(liveBytes int) (GCFlushResult, error) {
	build := func() (*pheap.Heap, error) {
		reg := klass.NewRegistry()
		h, err := pheap.Create(reg, pheap.Config{
			DataSize: liveBytes*3 + (16 << 20), Mode: nvm.Tracked})
		if err != nil {
			return nil, err
		}
		node, err := reg.Define(klass.MustInstance("bench/GCNode", nil,
			klass.Field{Name: "next", Type: layout.FTRef},
			klass.Field{Name: "pad1", Type: layout.FTLong},
			klass.Field{Name: "pad2", Type: layout.FTLong},
			klass.Field{Name: "pad3", Type: layout.FTLong},
		))
		if err != nil {
			return nil, err
		}
		size := node.SizeOf(0)
		var prev layout.Ref
		for allocated := 0; allocated < liveBytes; allocated += size {
			// Interleave garbage so the collector has moving to do.
			if _, err := h.Alloc(node, 0); err != nil {
				return nil, err
			}
			ref, err := h.Alloc(node, 0)
			if err != nil {
				return nil, err
			}
			h.SetWord(ref, layout.FieldOff(0), uint64(prev))
			prev = ref
		}
		if err := h.SetRoot("chain", prev); err != nil {
			return nil, err
		}
		return h, nil
	}

	h0, err := build()
	if err != nil {
		return GCFlushResult{}, err
	}
	h0.Device().FlushAll()
	img := h0.Device().CrashImage(nvm.CrashFlushedOnly, 0)

	// Each measurement collects an identical copy of the image; a warmup
	// run first touches the allocator and page cache.
	collect := func(noFlush bool) (pgc.Result, error) {
		cp := make([]byte, len(img))
		copy(cp, img)
		h, err := pheap.Load(nvm.FromImage(cp, nvm.Config{Mode: nvm.Tracked}), klass.NewRegistry())
		if err != nil {
			return pgc.Result{}, err
		}
		h.Device().SetNoFlush(noFlush)
		return pgc.Collect(h, pgc.NoRoots{})
	}
	if _, err := collect(false); err != nil { // warmup
		return GCFlushResult{}, err
	}
	// Wall-clock pauses are noisy at this scale (the host's own memory
	// system intrudes); take the best of three per mode, as pause-time
	// studies conventionally do.
	best := func(noFlush bool) (time.Duration, int, error) {
		bestD := time.Duration(1<<62 - 1)
		live := 0
		for i := 0; i < 3; i++ {
			r, err := collect(noFlush)
			if err != nil {
				return 0, 0, err
			}
			if d := r.PauseTime + r.DeviceStats.ModeledFlushTime(); d < bestD {
				bestD = d
			}
			live = r.LiveBytes
		}
		return bestD, live, nil
	}
	with, live, err := best(false)
	if err != nil {
		return GCFlushResult{}, err
	}
	without, _, err := best(true)
	if err != nil {
		return GCFlushResult{}, err
	}
	return GCFlushResult{
		WithFlush:    with,
		WithoutFlush: without,
		OverheadPct:  (float64(with)/float64(without) - 1) * 100,
		LiveBytes:    live,
	}, nil
}

// PrintGCFlush renders the §6.4 result.
func PrintGCFlush(w io.Writer, r GCFlushResult) {
	fmt.Fprintf(w, "Recoverable GC pause (§6.4), %d live bytes:\n", r.LiveBytes)
	fmt.Fprintf(w, "  with clflush:    %v\n", r.WithFlush.Round(time.Microsecond))
	fmt.Fprintf(w, "  without clflush: %v\n", r.WithoutFlush.Round(time.Microsecond))
	fmt.Fprintf(w, "  overhead:        %.1f%%   (paper: 17.8%%)\n", r.OverheadPct)
}
