package experiments

import (
	"fmt"
	"io"
	"strings"
	"testing"
)

// The experiments are exercised end to end at tiny scale so the figure
// harness itself is under test (shapes are asserted where they are
// scale-invariant).

const tiny = Scale(100)

func TestFig4Runs(t *testing.T) {
	var sb strings.Builder
	if err := Fig4(&sb, tiny); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Transformation") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestFig6MetadataDominatesData(t *testing.T) {
	if err := Fig6(io.Discard, tiny); err != nil {
		t.Fatal(err)
	}
}

func TestFig15EspressoWinsEverywhere(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock provider comparison is meaningless under -race instrumentation")
	}
	rows, err := Fig15(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 { // 5 types × 3 ops
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Errorf("%s/%s: PCJ beat Espresso (%.2fx)", r.Type, r.Op, r.Speedup)
		}
	}
}

func TestFig16PJOWinsEverywhere(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock provider comparison is meaningless under -race instrumentation")
	}
	rows, err := Fig16(Scale(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 { // 4 tests × 4 ops
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PJO <= r.JPA {
			t.Errorf("%s/%s: JPA beat PJO (%.0f vs %.0f ops/s)", r.Test, r.Op, r.JPA, r.PJO)
		}
	}
}

func TestFig17Runs(t *testing.T) {
	if err := Fig17(io.Discard, Scale(50)); err != nil {
		t.Fatal(err)
	}
}

func TestFig18UGFlatZeroGrows(t *testing.T) {
	points, err := Fig18(Scale(20)) // up to 100k objects
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("points = %d", len(points))
	}
	first, last := points[0], points[len(points)-1]
	// Zeroing cost must grow with object count; UG must not grow with it
	// (allow generous noise: 5x bound on a 10x object-count range).
	if last.ZeroMs < first.ZeroMs {
		t.Errorf("zeroing did not grow: %v → %v ms", first.ZeroMs, last.ZeroMs)
	}
	if last.UGMillis > first.UGMillis*5+1 {
		t.Errorf("UG load grew with objects: %v → %v ms", first.UGMillis, last.UGMillis)
	}
}

func TestGCFlushCostPositive(t *testing.T) {
	r, err := GCFlushCost(4 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.LiveBytes == 0 || r.WithFlush == 0 || r.WithoutFlush == 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
}

func TestKVScalingPIndex(t *testing.T) {
	rows, err := KVScaling(Scale(50), 8)
	if err != nil {
		t.Fatal(err)
	}
	byG := map[int]KVRow{}
	for _, r := range rows {
		byG[r.Goroutines] = r
	}
	r1, ok1 := byG[1]
	r8, ok8 := byG[8]
	if !ok1 || !ok8 {
		t.Fatalf("missing rows: %+v", rows)
	}
	// Per-op device costs must not grow with mutators (no shared
	// persisted word on the hot path), within rounding.
	if r8.FlushedLines > r1.FlushedLines*1.1+0.05 || r8.Fences > r1.Fences*1.1+0.05 {
		t.Fatalf("per-op device cost grew with mutators: 1g=%+v 8g=%+v", r1, r8)
	}
	// The acceptance bar: ≥3x modeled throughput scaling at 8 mutators.
	if r8.ModeledSpeedup < 3 {
		t.Fatalf("modeled KV speedup at 8 mutators = %.2fx, want ≥3x", r8.ModeledSpeedup)
	}
	if r8.FinalEntries == 0 {
		t.Fatal("kv run left an empty index")
	}
}

func TestShardedKVScaling(t *testing.T) {
	rows, err := ShardedKVScaling(Scale(50), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]ShardedKVRow{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%d/%d", r.Shards, r.Goroutines)] = r
	}
	base, okB := byKey["1/2"]
	top, okT := byKey["4/2"]
	if _, ok1 := byKey["1/1"]; !ok1 || !okB || !okT {
		t.Fatalf("missing rows: %+v", rows)
	}
	// The acceptance bar: ≥3x modeled throughput at 4 shards × 2
	// mutators over the 1×1 baseline.
	if top.ModeledSpeedup < 3 {
		t.Fatalf("modeled sharded speedup at 4 shards × 2 mutators = %.2fx, want ≥3x", top.ModeledSpeedup)
	}
	// Sharding must beat the same mutator count on one shard: the win
	// comes from independent devices, not just from more goroutines.
	if top.ModeledSpeedup <= base.ModeledSpeedup {
		t.Fatalf("4 shards (%.2fx) did not beat 1 shard (%.2fx) at 2 mutators",
			top.ModeledSpeedup, base.ModeledSpeedup)
	}
	// Per-op device costs must not grow with shards (no shared persisted
	// word between shards), within rounding.
	if top.FlushedLines > base.FlushedLines*1.1+0.05 || top.Fences > base.Fences*1.1+0.05 {
		t.Fatalf("per-op device cost grew with shards: 1s=%+v 4s=%+v", base, top)
	}
	if top.FinalEntries == 0 {
		t.Fatal("sharded run left empty indexes")
	}
}

func TestShardedRecoverySpeedup(t *testing.T) {
	rows, err := ShardedRecovery(4, 6000, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byW := map[int]ShardedRecoveryRow{}
	for _, r := range rows {
		byW[r.Workers] = r
	}
	if byW[1].RecoverySpeedup != 1 {
		t.Fatalf("serial speedup = %.2f, want 1", byW[1].RecoverySpeedup)
	}
	// The acceptance bar: ≥2x modeled recovery speedup at 4 workers.
	if byW[4].RecoverySpeedup < 2 {
		t.Fatalf("modeled recovery speedup at 4 workers = %.2fx, want ≥2x", byW[4].RecoverySpeedup)
	}
	if byW[2].RecoverySpeedup > byW[4].RecoverySpeedup+1e-9 {
		t.Fatalf("speedup not monotone in workers: %+v", rows)
	}
	// Determinism across worker counts: the images are the same, so the
	// per-key recovery traffic must match exactly.
	if byW[1].DevReadsPerKey != byW[4].DevReadsPerKey ||
		byW[1].DevLinesPerKey != byW[4].DevLinesPerKey {
		t.Fatalf("recovery traffic varies with workers: %+v vs %+v", byW[1], byW[4])
	}
}

func TestRefStoreScaling(t *testing.T) {
	rows, err := RefStoreScaling(Scale(50), 8)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]RefStoreRow{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%s/%d", r.Series, r.Goroutines)] = r
	}
	r1, ok1 := byKey["refstore/1"]
	r8, ok8 := byKey["refstore/8"]
	s1, okS := byKey["shared/1"]
	if !ok1 || !ok8 || !okS {
		t.Fatalf("missing rows: %+v", rows)
	}
	// The delta-buffer barrier must add zero device traffic over the
	// seed's eager-remset path: one word write, one line flush, one
	// fence per durable ref store, regardless of routing.
	if r1.DevWrites != s1.DevWrites || r1.FlushedLines != s1.FlushedLines || r1.Fences != s1.Fences {
		t.Fatalf("refstore/1 device cost %+v != shared/1 %+v", r1, s1)
	}
	if r8.DevWrites > r1.DevWrites*1.1+0.05 || r8.FlushedLines > r1.FlushedLines*1.1+0.05 {
		t.Fatalf("per-op device cost grew with mutators: 1g=%+v 8g=%+v", r1, r8)
	}
	// The acceptance bar: ≥3x modeled ref-store scaling at 8 mutators.
	if r8.ModeledSpeedup < 3 {
		t.Fatalf("modeled ref-store speedup at 8 mutators = %.2fx, want ≥3x", r8.ModeledSpeedup)
	}
	// Every run already self-checks its remset against the oracle; make
	// sure the workload actually leaves NVM→vol edges behind.
	if r8.RemsetSlots == 0 {
		t.Fatal("refstore run left an empty remset — the NVM→vol mix did not exercise the barrier")
	}
}

func TestAllocScalingPLABs(t *testing.T) {
	rows, err := AllocScaling(Scale(50), 8)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]AllocRow{}
	for _, r := range rows {
		byKey[fmt.Sprintf("%s/%d", r.Series, r.Goroutines)] = r
	}
	p1, ok1 := byKey["plab/1"]
	p8, ok8 := byKey["plab/8"]
	s1, okS := byKey["shared/1"]
	if !ok1 || !ok8 || !okS {
		t.Fatalf("missing rows: %+v", rows)
	}
	// Single-mutator PLAB allocation must cost exactly what the shared
	// (seed-equivalent) path costs: the same device ops per object.
	if p1.DevWrites != s1.DevWrites || p1.FlushedLines != s1.FlushedLines || p1.Fences != s1.Fences {
		t.Fatalf("plab/1 device cost %+v != shared/1 %+v", p1, s1)
	}
	// The acceptance bar: ≥3x modeled allocation scaling at 8 mutators.
	if p8.ModeledSpeedup < 3 {
		t.Fatalf("modeled speedup at 8 goroutines = %.2fx, want ≥3x", p8.ModeledSpeedup)
	}
}
