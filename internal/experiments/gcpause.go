package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"espresso/internal/core"
	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pgc"
)

// The gcpause experiment measures persistent-GC pause times under a
// multi-mutator allocation workload: G mutator goroutines churn rooted
// chains (allocate, prepend, unlink — through the PLAB allocator and the
// SATB write barrier) against a large stable live graph, and the
// collector runs either stop-the-world (the whole collection is the
// pause) or concurrently (marking overlaps the mutators; only the
// handshake and remark+compaction pause them).
//
// Wall-clock pauses are reported but too noisy to gate in CI. The gated
// metric is the deterministic modeled pause: device reads in the pause ×
// NVMReadLatency plus flushed lines in the pause × NVMWriteLatency —
// tracing is read-dominated, compaction flush-dominated, and both
// counters come from the device, not the host clock. The headline claim
// matches the ROADMAP item: moving marking (and, via the marker's
// outgoing-reference summary, most of the pause-time reference rescan)
// out of the pause cuts the max stop-the-world pause by well over 3x on
// the 8-mutator workload.

// NVMReadLatency models media read cost per accounted device read for
// pause metrics (3D-XPoint-class reads land in the 100–350 ns range).
const NVMReadLatency = 100 * time.Nanosecond

// GCPauseRow is one (series, workers) measurement over several
// collection cycles. The dev_* fields are emitted only for the stw
// series (deterministic: its cycles run against a quiescent heap); the
// concurrent row carries the absolute pause ceiling and the reduction
// ratio instead, both gated by benchgate; the parallel rows carry the
// modeled device critical path of mark+compact and (on the
// largest-workers row) the speedup over one worker, floor-gated by
// benchgate.
type GCPauseRow struct {
	Series            string  `json:"series"` // "stw", "concurrent", or "parallel"
	Mutators          int     `json:"mutators"`
	Workers           int     `json:"workers,omitempty"` // GC pool size (parallel series)
	Cycles            int     `json:"cycles"`
	LiveObjects       int     `json:"live_objects"`
	WallMaxPauseNs    float64 `json:"wall_max_pause_ns"`
	WallAvgPauseNs    float64 `json:"wall_avg_pause_ns"`
	WallMaxMarkNs     float64 `json:"wall_max_mark_ns"`
	ModeledMaxPauseNs float64 `json:"modeled_max_pause_ns"`

	DevReadsInPause float64 `json:"dev_reads_in_pause_per_cycle,omitempty"`
	DevLinesInPause float64 `json:"dev_flushed_lines_in_pause_per_cycle,omitempty"`

	PauseReduction float64 `json:"pause_reduction_vs_stw,omitempty"`
	ModeledCeiling float64 `json:"modeled_max_pause_ns_ceiling,omitempty"`

	// Parallel-series fields. The critical path models the device time a
	// real NVM would charge the slowest worker: max over mark workers +
	// max over compaction fix workers + the serial compaction residue
	// (the evacuation pass is serial by design — contiguous destinations
	// share cache lines, and each source region must stay intact until
	// its evacuation is durable). The per-cycle totals (reads, flushed
	// lines) are identical across worker counts — parallelism splits the
	// work, it must not add device traffic — so the speedup is pure
	// critical-path reduction.
	ModeledCritPathNs      float64 `json:"modeled_critical_path_ns,omitempty"`
	DevReadsPerCycle       float64 `json:"dev_reads_per_cycle,omitempty"`
	DevLinesPerCycle       float64 `json:"dev_flushed_lines_per_cycle,omitempty"`
	ModeledParallelSpeedup float64 `json:"modeled_parallel_speedup,omitempty"`
}

const gcPauseCycles = 3

// gcPauseCeilingNs is the absolute modeled-pause budget for a concurrent
// cycle: a fixed 3 ms floor plus a 250 ns/live-object allowance. The
// budget covers the worst goroutine schedule (all churn landing inside
// the marking window, maximizing remark + dirty-card rescans) yet stays
// a third of what the same workload costs stop-the-world (~800 ns/obj
// of tracing plus compaction), so regressions that drag marking or the
// reference rescan back into the pause trip the gate long before they
// reach parity.
func gcPauseCeilingNs(liveObjects int) float64 {
	return 3e6 + 250*float64(liveObjects)
}

func modeledPauseNs(s pgc.Result) float64 {
	return float64(s.PauseDeviceStats.Reads)*float64(NVMReadLatency.Nanoseconds()) +
		float64(s.PauseDeviceStats.FlushedLines)*float64(NVMWriteLatency.Nanoseconds())
}

// statNs converts one accounting bucket to modeled device time: reads ×
// read latency + flushed lines × write latency (the same model as the
// pause metric).
func statNs(s nvm.Stats) float64 {
	return float64(s.Reads)*float64(NVMReadLatency.Nanoseconds()) +
		float64(s.FlushedLines)*float64(NVMWriteLatency.Nanoseconds())
}

// modeledCritPathNs is the modeled device critical path of mark+compact:
// the busiest mark worker, plus the busiest compaction fix worker, plus
// the serial compaction residue. With one worker it degenerates to the
// serial mark+compact device time.
func modeledCritPathNs(res pgc.Result) float64 {
	maxNs := func(ws []nvm.Stats) float64 {
		m := 0.0
		for _, s := range ws {
			if v := statNs(s); v > m {
				m = v
			}
		}
		return m
	}
	return maxNs(res.MarkWorkerStats) + maxNs(res.CompactFixWorkerStats) + statNs(res.CompactSerialStats)
}

// gcPauseParallelWorkers are the GC pool sizes of the parallel series:
// the serial baseline and the cores axis CI gates the speedup on.
var gcPauseParallelWorkers = []int{1, 4}

// GCPause runs the stw and concurrent series at the given mutator
// count, then the parallel series (quiescent, mark-heavy) across
// gcPauseParallelWorkers.
func GCPause(scale Scale, mutators int) ([]GCPauseRow, error) {
	if mutators < 1 {
		mutators = 1
	}
	live := scale.div(40000)
	churn := scale.div(600)
	var rows []GCPauseRow
	var stwModeledMax float64
	for _, series := range []string{"stw", "concurrent"} {
		row, err := runGCPauseSeries(series, mutators, live, churn)
		if err != nil {
			return nil, err
		}
		if series == "stw" {
			stwModeledMax = row.ModeledMaxPauseNs
		} else {
			if row.ModeledMaxPauseNs > 0 {
				row.PauseReduction = stwModeledMax / row.ModeledMaxPauseNs
			}
			row.ModeledCeiling = gcPauseCeilingNs(row.LiveObjects)
			// Only the stw row's in-pause device counters are
			// deterministic enough to ratio-gate; drop them here.
			row.DevReadsInPause = 0
			row.DevLinesInPause = 0
		}
		rows = append(rows, row)
	}

	// Parallel series: same workload family but mark-heavy — a larger
	// stable live set and lighter churn — because the parallelism claim
	// is about the tracing-dominated device critical path (the serial
	// evacuation pass is a fixed Amdahl residue that light churn keeps
	// small). Cycles are quiescent so per-cycle device totals are exactly
	// reproducible.
	var critBase float64
	for _, workers := range gcPauseParallelWorkers {
		row, err := runGCPauseParallelSeries(mutators, workers, 2*live, scale.div(150))
		if err != nil {
			return nil, err
		}
		if workers == gcPauseParallelWorkers[0] {
			critBase = row.ModeledCritPathNs
		} else if row.ModeledCritPathNs > 0 {
			row.ModeledParallelSpeedup = critBase / row.ModeledCritPathNs
		}
		rows = append(rows, row)
	}
	return rows, nil
}

type gcPauseNode struct {
	klass      *klass.Klass
	idF, nextF core.FieldRef
}

func runGCPauseSeries(series string, mutators, live, churnOps int) (GCPauseRow, error) {
	// Size the heap to the workload: stable graph + in-flight churn +
	// PLAB slack. An oversized heap would only inflate the pause-time
	// bitmap persist, which covers the heap, not the live set.
	rt, err := core.NewRuntime(core.Config{
		PJHDataSize: live*64 + mutators*(churnOps*64+2*layout.RegionSize) + (4 << 20),
	})
	if err != nil {
		return GCPauseRow{}, err
	}
	if _, err := rt.CreateHeap("gcpause", 0); err != nil {
		return GCPauseRow{}, err
	}
	nk := klass.MustInstance("gcpause/Node", nil,
		klass.Field{Name: "id", Type: layout.FTLong},
		klass.Field{Name: "next", Type: layout.FTRef, RefKlass: "gcpause/Node"},
	)
	n := gcPauseNode{klass: nk, idF: rt.MustResolveField(nk, "id"), nextF: rt.MustResolveField(nk, "next")}

	// Build the stable live graph — each mutator bump-allocates its own
	// rooted chain through its PLAB. The build runs the mutators
	// sequentially: it is setup, not workload, and a concurrent build
	// hands the initial region layout to the goroutine scheduler — the
	// same run then measures one of two layout modes whose per-cycle
	// compaction work differs by several ms (whether a low recycled hole
	// ends up hosting a cyclically-replaced root-index node decides if
	// the sliding compactor re-evacuates everything above it each
	// cycle). The measured churn phases stay concurrent.
	perM := live / mutators
	if perM < 1 {
		perM = 1
	}
	if err := forEachMutatorSeq(rt, mutators, func(g int, m *core.Mutator) error {
		var head layout.Ref
		for i := 0; i < perM; i++ {
			ref, err := m.PNew(n.klass, 0)
			if err != nil {
				return err
			}
			m.SetLongFast(ref, n.idF, int64(g*10_000_000+i))
			if err := m.SetRefFast(ref, n.nextF, head); err != nil {
				return err
			}
			head = ref
		}
		return m.SetRoot(fmt.Sprintf("stable%d", g), head)
	}); err != nil {
		return GCPauseRow{}, err
	}

	// Warmup collection (unmeasured): the freshly built heap is region-
	// interleaved across mutators, so the first cycle compacts nearly
	// everything. The measured cycles then see the steady state — a dense
	// stable graph plus per-cycle churn — which is what pause-time claims
	// are about.
	if _, err := rt.PersistentGC("gcpause"); err != nil {
		return GCPauseRow{}, err
	}
	if err := warmupChurn(rt, n, mutators, churnOps); err != nil {
		return GCPauseRow{}, err
	}

	row := GCPauseRow{Series: series, Mutators: mutators, Cycles: gcPauseCycles}
	var wallPauses, wallMarks, modeled []float64
	var maxReads, maxLines uint64
	for c := 0; c < gcPauseCycles; c++ {
		churn := func(ops int) func() error {
			return func() error {
				return forEachMutator(rt, mutators, func(g int, m *core.Mutator) error {
					return runChurn(m, n, fmt.Sprintf("churn%d", g), ops, g, c)
				})
			}
		}
		var res pgc.Result
		if series == "stw" {
			// Quiescent baseline: churn completes, then the whole
			// collection is one pause. The churn runs sequentially — this
			// row's in-pause device counters are the ones CI ratio-gates,
			// and concurrent churn hands the heap layout to the goroutine
			// scheduler (occasionally flipping how much the compactor
			// slides per cycle, a ~30% swing in flushed lines).
			// Concurrency lives in the concurrent and parallel series,
			// whose gates are floors and ceilings, not ratios.
			if err := forEachMutatorSeq(rt, mutators, func(g int, m *core.Mutator) error {
				return runChurn(m, n, fmt.Sprintf("churn%d", g), churnOps, g, c)
			}); err != nil {
				return GCPauseRow{}, err
			}
			if res, err = rt.PersistentGC("gcpause"); err != nil {
				return GCPauseRow{}, err
			}
		} else {
			// Concurrent: half the churn runs quiescently first — a
			// mutator running between collections, refilling the holes
			// the previous cycle published, which is what keeps the heap
			// top (and hence the dead-wood budget) in steady state — and
			// half overlaps the collection, exercising the SATB barrier,
			// the dirty-card rescans, and the floating-garbage path.
			// (Allocation during marking is allocate-black above the
			// snapshot tops and cannot reuse holes, so a series that
			// overlaps all of its churn measures an ever-growing top and
			// the periodic slide that reclaims it, not the barrier.) The
			// safepoint lock inside the runtime provides the handshakes.
			// One tracer, pinned: this series isolates what the barrier
			// buys over stop-the-world, so it keeps the seed's
			// single-tracer shape. (On a host with fewer cores than the
			// default pool, extra tracers competing with the mutators
			// stretch the marking window, which inflates churn-driven
			// remark work — the row would measure the host, not the
			// collector. The workers axis lives in the parallel series
			// below.)
			if err := churn(churnOps / 2)(); err != nil {
				return GCPauseRow{}, err
			}
			churnErr := make(chan error, 1)
			go func() { churnErr <- churn(churnOps - churnOps/2)() }()
			if res, err = rt.PersistentGCConcurrentWorkers("gcpause", 1); err != nil {
				return GCPauseRow{}, err
			}
			if err := <-churnErr; err != nil {
				return GCPauseRow{}, err
			}
		}
		row.LiveObjects = res.LiveObjects
		wallPauses = append(wallPauses, float64(res.PauseTime.Nanoseconds()))
		wallMarks = append(wallMarks, float64(res.MarkTime.Nanoseconds()))
		modeled = append(modeled, modeledPauseNs(res))
		if res.PauseDeviceStats.Reads > maxReads {
			maxReads = res.PauseDeviceStats.Reads
		}
		if res.PauseDeviceStats.FlushedLines > maxLines {
			maxLines = res.PauseDeviceStats.FlushedLines
		}
	}
	row.WallMaxPauseNs = maxOf(wallPauses)
	row.WallAvgPauseNs = avgOf(wallPauses)
	row.WallMaxMarkNs = maxOf(wallMarks)
	row.ModeledMaxPauseNs = maxOf(modeled)
	row.DevReadsInPause = float64(maxReads)
	row.DevLinesInPause = float64(maxLines)
	return row, nil
}

// runGCPauseParallelSeries measures one GC pool size on the mark-heavy
// quiescent workload: churn completes, then the concurrent collector
// runs with an explicit worker count (no mutators overlap it, so the
// per-cycle device totals are exactly reproducible; only the split of
// work across workers — and hence the critical path — depends on
// stealing order).
func runGCPauseParallelSeries(mutators, workers, live, churnOps int) (GCPauseRow, error) {
	rt, err := core.NewRuntime(core.Config{
		PJHDataSize: live*64 + mutators*(churnOps*64+2*layout.RegionSize) + (4 << 20),
	})
	if err != nil {
		return GCPauseRow{}, err
	}
	if _, err := rt.CreateHeap("gcpause", 0); err != nil {
		return GCPauseRow{}, err
	}
	nk := klass.MustInstance("gcpause/Node", nil,
		klass.Field{Name: "id", Type: layout.FTLong},
		klass.Field{Name: "next", Type: layout.FTRef, RefKlass: "gcpause/Node"},
	)
	n := gcPauseNode{klass: nk, idF: rt.MustResolveField(nk, "id"), nextF: rt.MustResolveField(nk, "next")}

	perM := live / mutators
	if perM < 1 {
		perM = 1
	}
	// Sequential build for a deterministic region layout — see
	// runGCPauseSeries.
	if err := forEachMutatorSeq(rt, mutators, func(g int, m *core.Mutator) error {
		var head layout.Ref
		for i := 0; i < perM; i++ {
			ref, err := m.PNew(n.klass, 0)
			if err != nil {
				return err
			}
			m.SetLongFast(ref, n.idF, int64(g*10_000_000+i))
			if err := m.SetRefFast(ref, n.nextF, head); err != nil {
				return err
			}
			head = ref
		}
		return m.SetRoot(fmt.Sprintf("stable%d", g), head)
	}); err != nil {
		return GCPauseRow{}, err
	}
	if _, err := rt.PersistentGC("gcpause"); err != nil { // warmup (see runGCPauseSeries)
		return GCPauseRow{}, err
	}
	if err := warmupChurn(rt, n, mutators, churnOps); err != nil {
		return GCPauseRow{}, err
	}

	// Give every worker a scheduling slot for the measured cycles. The
	// series measures how the collector divides device work across the
	// pool (the modeled critical path); on a host with fewer cores than
	// workers, Go's coarse preemption would otherwise let min(cores,
	// workers) tracers absorb most of the scanning and the row would
	// measure the host's core count instead.
	prevProcs := runtime.GOMAXPROCS(0)
	if workers > prevProcs {
		runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prevProcs)
	}

	row := GCPauseRow{Series: "parallel", Mutators: mutators, Workers: workers, Cycles: gcPauseCycles}
	var wallPauses, wallMarks, modeled, crits []float64
	var maxReads, maxLines uint64
	for c := 0; c < gcPauseCycles; c++ {
		if err := forEachMutator(rt, mutators, func(g int, m *core.Mutator) error {
			return runChurn(m, n, fmt.Sprintf("churn%d", g), churnOps, g, c)
		}); err != nil {
			return GCPauseRow{}, err
		}
		res, err := rt.PersistentGCConcurrentWorkers("gcpause", workers)
		if err != nil {
			return GCPauseRow{}, err
		}
		row.LiveObjects = res.LiveObjects
		wallPauses = append(wallPauses, float64(res.PauseTime.Nanoseconds()))
		wallMarks = append(wallMarks, float64(res.MarkTime.Nanoseconds()))
		modeled = append(modeled, modeledPauseNs(res))
		crits = append(crits, modeledCritPathNs(res))
		if res.DeviceStats.Reads > maxReads {
			maxReads = res.DeviceStats.Reads
		}
		if res.DeviceStats.FlushedLines > maxLines {
			maxLines = res.DeviceStats.FlushedLines
		}
	}
	row.WallMaxPauseNs = maxOf(wallPauses)
	row.WallAvgPauseNs = avgOf(wallPauses)
	row.WallMaxMarkNs = maxOf(wallMarks)
	row.ModeledMaxPauseNs = maxOf(modeled)
	row.ModeledCritPathNs = maxOf(crits)
	row.DevReadsPerCycle = float64(maxReads)
	row.DevLinesPerCycle = float64(maxLines)
	return row, nil
}

// runChurn performs one mutator's churn phase: prepend a node to its
// churn chain, unlinking the second node every third op — each multi-step
// sequence inside a Do scope so held references survive collector pauses.
// The first op starts a fresh chain instead of linking to the previous
// cycle's head, so overwriting the root drops the old chain wholesale.
// That keeps the workload steady-state: each cycle's garbage is the prior
// cycle's chain plus this cycle's unlinks, and per-cycle collection work
// is constant. (Chaining across cycles instead lets survivors accumulate
// into an ever-growing pile that any lower garbage — e.g. a root-index
// node replaced in a recycled hole — forces the sliding compactor to
// re-evacuate wholesale, every cycle, growing without bound; the series
// would then measure the pile's age, not the pause.)
func runChurn(m *core.Mutator, n gcPauseNode, root string, ops, g, cycle int) error {
	for i := 0; i < ops; i++ {
		var opErr error
		m.Do(func() {
			var head layout.Ref
			if i > 0 {
				head, _ = m.GetRoot(root)
			}
			ref, err := m.PNew(n.klass, 0)
			if err != nil {
				opErr = err
				return
			}
			m.SetLongFast(ref, n.idF, int64(g*1_000_000+cycle*10_000+i))
			if err := m.SetRefFast(ref, n.nextF, head); err != nil {
				opErr = err
				return
			}
			opErr = m.SetRoot(root, ref)
		})
		if opErr != nil {
			return opErr
		}
		if i%3 == 2 {
			m.Do(func() {
				head, _ := m.GetRoot(root)
				if head == layout.NullRef {
					return
				}
				second := m.GetRefFast(head, n.nextF)
				if second == layout.NullRef {
					return
				}
				opErr = m.SetRefFast(head, n.nextF, m.GetRefFast(second, n.nextF))
			})
			if opErr != nil {
				return opErr
			}
		}
	}
	return nil
}

// warmupChurn runs two unmeasured sequential churn+collect rounds. The
// first churn epoch after the build is transitional: its garbage is a
// solid block that exceeds the summary's dead-wood budget, so one more
// near-full compaction follows before the heap settles into the
// recycled-hole steady state (churn allocating into, and dying inside,
// the holes the previous cycle published) that the measured cycles are
// about. Sequential churn and stop-the-world collections keep the
// resulting layout deterministic.
func warmupChurn(rt *core.Runtime, n gcPauseNode, mutators, churnOps int) error {
	for w := 0; w < 2; w++ {
		if err := forEachMutatorSeq(rt, mutators, func(g int, m *core.Mutator) error {
			return runChurn(m, n, fmt.Sprintf("churn%d", g), churnOps, g, w)
		}); err != nil {
			return err
		}
		if _, err := rt.PersistentGC("gcpause"); err != nil {
			return err
		}
	}
	return nil
}

// forEachMutatorSeq runs fn for each mutator index in order on the
// calling goroutine — deterministic allocation interleaving for setup
// phases.
func forEachMutatorSeq(rt *core.Runtime, count int, fn func(g int, m *core.Mutator) error) error {
	for g := 0; g < count; g++ {
		m, err := rt.NewMutator()
		if err != nil {
			return err
		}
		if err := fn(g, m); err != nil {
			return err
		}
	}
	return nil
}

// forEachMutator runs fn on count parallel mutator goroutines, each with
// its own Mutator context, and joins them.
func forEachMutator(rt *core.Runtime, count int, fn func(g int, m *core.Mutator) error) error {
	errs := make([]error, count)
	var wg sync.WaitGroup
	for g := 0; g < count; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m, err := rt.NewMutator()
			if err != nil {
				errs[g] = err
				return
			}
			defer m.Release()
			errs[g] = fn(g, m)
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func avgOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// PrintGCPause renders every series with the headline reduction and
// parallel speedup.
func PrintGCPause(w io.Writer, rows []GCPauseRow) {
	fmt.Fprintln(w, "GC pause — stop-the-world vs concurrent SATB marking (pauses only: remark+compact)")
	fmt.Fprintf(w, "  %-10s %4s %3s %8s %14s %14s %14s %14s %14s\n",
		"series", "G", "W", "live", "wall max", "wall avg", "wall mark", "modeled max", "crit path")
	for _, r := range rows {
		workers := "-"
		if r.Workers > 0 {
			workers = fmt.Sprintf("%d", r.Workers)
		}
		crit := "-"
		if r.ModeledCritPathNs > 0 {
			crit = time.Duration(r.ModeledCritPathNs).Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "  %-10s %4d %3s %8d %14s %14s %14s %14s %14s\n",
			r.Series, r.Mutators, workers, r.LiveObjects,
			time.Duration(r.WallMaxPauseNs).Round(time.Microsecond),
			time.Duration(r.WallAvgPauseNs).Round(time.Microsecond),
			time.Duration(r.WallMaxMarkNs).Round(time.Microsecond),
			time.Duration(r.ModeledMaxPauseNs).Round(time.Microsecond),
			crit)
	}
	for _, r := range rows {
		if r.Series == "concurrent" && r.PauseReduction > 0 {
			fmt.Fprintf(w, "  max modeled STW pause reduced %.1fx by concurrent marking (ceiling %s)\n",
				r.PauseReduction, time.Duration(r.ModeledCeiling).Round(time.Millisecond))
		}
		if r.Series == "parallel" && r.ModeledParallelSpeedup > 0 {
			fmt.Fprintf(w, "  modeled mark+compact device critical path cut %.1fx by %d GC workers\n",
				r.ModeledParallelSpeedup, r.Workers)
		}
	}
}
