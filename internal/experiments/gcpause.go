package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"espresso/internal/core"
	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/pgc"
)

// The gcpause experiment measures persistent-GC pause times under a
// multi-mutator allocation workload: G mutator goroutines churn rooted
// chains (allocate, prepend, unlink — through the PLAB allocator and the
// SATB write barrier) against a large stable live graph, and the
// collector runs either stop-the-world (the whole collection is the
// pause) or concurrently (marking overlaps the mutators; only the
// handshake and remark+compaction pause them).
//
// Wall-clock pauses are reported but too noisy to gate in CI. The gated
// metric is the deterministic modeled pause: device reads in the pause ×
// NVMReadLatency plus flushed lines in the pause × NVMWriteLatency —
// tracing is read-dominated, compaction flush-dominated, and both
// counters come from the device, not the host clock. The headline claim
// matches the ROADMAP item: moving marking (and, via the marker's
// outgoing-reference summary, most of the pause-time reference rescan)
// out of the pause cuts the max stop-the-world pause by well over 3x on
// the 8-mutator workload.

// NVMReadLatency models media read cost per accounted device read for
// pause metrics (3D-XPoint-class reads land in the 100–350 ns range).
const NVMReadLatency = 100 * time.Nanosecond

// GCPauseRow is one (series) measurement over several collection cycles.
// The dev_* fields are emitted only for the stw series (deterministic:
// its cycles run against a quiescent heap); the concurrent row carries
// the absolute pause ceiling and the reduction ratio instead, both
// gated by benchgate.
type GCPauseRow struct {
	Series            string  `json:"series"` // "stw" or "concurrent"
	Mutators          int     `json:"mutators"`
	Cycles            int     `json:"cycles"`
	LiveObjects       int     `json:"live_objects"`
	WallMaxPauseNs    float64 `json:"wall_max_pause_ns"`
	WallAvgPauseNs    float64 `json:"wall_avg_pause_ns"`
	WallMaxMarkNs     float64 `json:"wall_max_mark_ns"`
	ModeledMaxPauseNs float64 `json:"modeled_max_pause_ns"`

	DevReadsInPause float64 `json:"dev_reads_in_pause_per_cycle,omitempty"`
	DevLinesInPause float64 `json:"dev_flushed_lines_in_pause_per_cycle,omitempty"`

	PauseReduction float64 `json:"pause_reduction_vs_stw,omitempty"`
	ModeledCeiling float64 `json:"modeled_max_pause_ns_ceiling,omitempty"`
}

const gcPauseCycles = 3

// gcPauseCeilingNs is the absolute modeled-pause budget for a concurrent
// cycle: a fixed 3 ms floor plus a 250 ns/live-object allowance. The
// budget covers the worst goroutine schedule (all churn landing inside
// the marking window, maximizing remark + dirty-card rescans) yet stays
// a third of what the same workload costs stop-the-world (~800 ns/obj
// of tracing plus compaction), so regressions that drag marking or the
// reference rescan back into the pause trip the gate long before they
// reach parity.
func gcPauseCeilingNs(liveObjects int) float64 {
	return 3e6 + 250*float64(liveObjects)
}

func modeledPauseNs(s pgc.Result) float64 {
	return float64(s.PauseDeviceStats.Reads)*float64(NVMReadLatency.Nanoseconds()) +
		float64(s.PauseDeviceStats.FlushedLines)*float64(NVMWriteLatency.Nanoseconds())
}

// GCPause runs both series at the given mutator count.
func GCPause(scale Scale, mutators int) ([]GCPauseRow, error) {
	if mutators < 1 {
		mutators = 1
	}
	live := scale.div(40000)
	churn := scale.div(600)
	var rows []GCPauseRow
	var stwModeledMax float64
	for _, series := range []string{"stw", "concurrent"} {
		row, err := runGCPauseSeries(series, mutators, live, churn)
		if err != nil {
			return nil, err
		}
		if series == "stw" {
			stwModeledMax = row.ModeledMaxPauseNs
		} else {
			if row.ModeledMaxPauseNs > 0 {
				row.PauseReduction = stwModeledMax / row.ModeledMaxPauseNs
			}
			row.ModeledCeiling = gcPauseCeilingNs(row.LiveObjects)
			// Only the stw row's in-pause device counters are
			// deterministic enough to ratio-gate; drop them here.
			row.DevReadsInPause = 0
			row.DevLinesInPause = 0
		}
		rows = append(rows, row)
	}
	return rows, nil
}

type gcPauseNode struct {
	klass      *klass.Klass
	idF, nextF core.FieldRef
}

func runGCPauseSeries(series string, mutators, live, churnOps int) (GCPauseRow, error) {
	// Size the heap to the workload: stable graph + in-flight churn +
	// PLAB slack. An oversized heap would only inflate the pause-time
	// bitmap persist, which covers the heap, not the live set.
	rt, err := core.NewRuntime(core.Config{
		PJHDataSize: live*64 + mutators*(churnOps*64+2*layout.RegionSize) + (4 << 20),
	})
	if err != nil {
		return GCPauseRow{}, err
	}
	if _, err := rt.CreateHeap("gcpause", 0); err != nil {
		return GCPauseRow{}, err
	}
	nk := klass.MustInstance("gcpause/Node", nil,
		klass.Field{Name: "id", Type: layout.FTLong},
		klass.Field{Name: "next", Type: layout.FTRef, RefKlass: "gcpause/Node"},
	)
	n := gcPauseNode{klass: nk, idF: rt.MustResolveField(nk, "id"), nextF: rt.MustResolveField(nk, "next")}

	// Build the stable live graph: the 8-mutator alloc workload — each
	// mutator bump-allocates its own rooted chain through its PLAB.
	perM := live / mutators
	if perM < 1 {
		perM = 1
	}
	if err := forEachMutator(rt, mutators, func(g int, m *core.Mutator) error {
		var head layout.Ref
		for i := 0; i < perM; i++ {
			ref, err := m.PNew(n.klass, 0)
			if err != nil {
				return err
			}
			m.SetLongFast(ref, n.idF, int64(g*10_000_000+i))
			if err := m.SetRefFast(ref, n.nextF, head); err != nil {
				return err
			}
			head = ref
		}
		return m.SetRoot(fmt.Sprintf("stable%d", g), head)
	}); err != nil {
		return GCPauseRow{}, err
	}

	// Warmup collection (unmeasured): the freshly built heap is region-
	// interleaved across mutators, so the first cycle compacts nearly
	// everything. The measured cycles then see the steady state — a dense
	// stable graph plus per-cycle churn — which is what pause-time claims
	// are about.
	if _, err := rt.PersistentGC("gcpause"); err != nil {
		return GCPauseRow{}, err
	}

	row := GCPauseRow{Series: series, Mutators: mutators, Cycles: gcPauseCycles}
	var wallPauses, wallMarks, modeled []float64
	var maxReads, maxLines uint64
	for c := 0; c < gcPauseCycles; c++ {
		churn := func() error {
			return forEachMutator(rt, mutators, func(g int, m *core.Mutator) error {
				return runChurn(m, n, fmt.Sprintf("churn%d", g), churnOps, g, c)
			})
		}
		var res pgc.Result
		if series == "stw" {
			// Quiescent baseline: churn completes, then the whole
			// collection is one pause (and its device work is exactly
			// reproducible, which is what CI gates on).
			if err := churn(); err != nil {
				return GCPauseRow{}, err
			}
			if res, err = rt.PersistentGC("gcpause"); err != nil {
				return GCPauseRow{}, err
			}
		} else {
			// Concurrent: churn overlaps the collection; the safepoint
			// lock inside the runtime provides the handshakes.
			churnErr := make(chan error, 1)
			go func() { churnErr <- churn() }()
			if res, err = rt.PersistentGCConcurrent("gcpause"); err != nil {
				return GCPauseRow{}, err
			}
			if err := <-churnErr; err != nil {
				return GCPauseRow{}, err
			}
		}
		row.LiveObjects = res.LiveObjects
		wallPauses = append(wallPauses, float64(res.PauseTime.Nanoseconds()))
		wallMarks = append(wallMarks, float64(res.MarkTime.Nanoseconds()))
		modeled = append(modeled, modeledPauseNs(res))
		if res.PauseDeviceStats.Reads > maxReads {
			maxReads = res.PauseDeviceStats.Reads
		}
		if res.PauseDeviceStats.FlushedLines > maxLines {
			maxLines = res.PauseDeviceStats.FlushedLines
		}
	}
	row.WallMaxPauseNs = maxOf(wallPauses)
	row.WallAvgPauseNs = avgOf(wallPauses)
	row.WallMaxMarkNs = maxOf(wallMarks)
	row.ModeledMaxPauseNs = maxOf(modeled)
	row.DevReadsInPause = float64(maxReads)
	row.DevLinesInPause = float64(maxLines)
	return row, nil
}

// runChurn performs one mutator's churn phase: prepend a node to its
// churn chain, unlinking the second node every third op — each multi-step
// sequence inside a Do scope so held references survive collector pauses.
func runChurn(m *core.Mutator, n gcPauseNode, root string, ops, g, cycle int) error {
	for i := 0; i < ops; i++ {
		var opErr error
		m.Do(func() {
			head, _ := m.GetRoot(root)
			ref, err := m.PNew(n.klass, 0)
			if err != nil {
				opErr = err
				return
			}
			m.SetLongFast(ref, n.idF, int64(g*1_000_000+cycle*10_000+i))
			if err := m.SetRefFast(ref, n.nextF, head); err != nil {
				opErr = err
				return
			}
			opErr = m.SetRoot(root, ref)
		})
		if opErr != nil {
			return opErr
		}
		if i%3 == 2 {
			m.Do(func() {
				head, _ := m.GetRoot(root)
				if head == layout.NullRef {
					return
				}
				second := m.GetRefFast(head, n.nextF)
				if second == layout.NullRef {
					return
				}
				opErr = m.SetRefFast(head, n.nextF, m.GetRefFast(second, n.nextF))
			})
			if opErr != nil {
				return opErr
			}
		}
	}
	return nil
}

// forEachMutator runs fn on count parallel mutator goroutines, each with
// its own Mutator context, and joins them.
func forEachMutator(rt *core.Runtime, count int, fn func(g int, m *core.Mutator) error) error {
	errs := make([]error, count)
	var wg sync.WaitGroup
	for g := 0; g < count; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m, err := rt.NewMutator()
			if err != nil {
				errs[g] = err
				return
			}
			defer m.Release()
			errs[g] = fn(g, m)
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func avgOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// PrintGCPause renders both series with the headline reduction.
func PrintGCPause(w io.Writer, rows []GCPauseRow) {
	fmt.Fprintln(w, "GC pause — stop-the-world vs concurrent SATB marking (pauses only: remark+compact)")
	fmt.Fprintf(w, "  %-10s %4s %8s %14s %14s %14s %14s\n",
		"series", "G", "live", "wall max", "wall avg", "wall mark", "modeled max")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %4d %8d %14s %14s %14s %14s\n",
			r.Series, r.Mutators, r.LiveObjects,
			time.Duration(r.WallMaxPauseNs).Round(time.Microsecond),
			time.Duration(r.WallAvgPauseNs).Round(time.Microsecond),
			time.Duration(r.WallMaxMarkNs).Round(time.Microsecond),
			time.Duration(r.ModeledMaxPauseNs).Round(time.Microsecond))
	}
	for _, r := range rows {
		if r.Series == "concurrent" && r.PauseReduction > 0 {
			fmt.Fprintf(w, "  max modeled STW pause reduced %.1fx by concurrent marking (ceiling %s)\n",
				r.PauseReduction, time.Duration(r.ModeledCeiling).Round(time.Millisecond))
		}
	}
}
