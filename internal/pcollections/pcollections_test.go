package pcollections

import (
	"math/rand"
	"testing"
	"testing/quick"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pgc"
	"espresso/internal/pheap"
)

func world(t testing.TB) *World {
	t.Helper()
	h, err := pheap.Create(klass.NewRegistry(), pheap.Config{DataSize: 16 << 20, Mode: nvm.Direct})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(h)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLongBox(t *testing.T) {
	w := world(t)
	b, err := w.NewLong(42)
	if err != nil {
		t.Fatal(err)
	}
	if w.LongValue(b) != 42 {
		t.Fatalf("value = %d", w.LongValue(b))
	}
	if err := w.SetLongValue(b, -7); err != nil {
		t.Fatal(err)
	}
	if w.LongValue(b) != -7 {
		t.Fatalf("value = %d", w.LongValue(b))
	}
}

func TestTuple(t *testing.T) {
	w := world(t)
	a, _ := w.NewLong(1)
	b, _ := w.NewLong(2)
	tup, err := w.NewTuple(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if w.TupleGet(tup, 0) != a || w.TupleGet(tup, 1) != b {
		t.Fatal("tuple contents wrong")
	}
	c, _ := w.NewLong(3)
	if err := w.TupleSet(tup, 1, c); err != nil {
		t.Fatal(err)
	}
	if w.TupleGet(tup, 1) != c {
		t.Fatal("tuple set failed")
	}
	// Different arities coexist.
	t3, err := w.NewTuple(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if w.TupleGet(t3, 2) != c {
		t.Fatal("3-tuple contents wrong")
	}
}

func TestListGrowth(t *testing.T) {
	w := world(t)
	list, err := w.NewList(4)
	if err != nil {
		t.Fatal(err)
	}
	var boxes []layout.Ref
	for i := 0; i < 100; i++ {
		b, _ := w.NewLong(int64(i))
		boxes = append(boxes, b)
		if err := w.ListAdd(list, b); err != nil {
			t.Fatal(err)
		}
	}
	if w.ListLen(list) != 100 {
		t.Fatalf("len = %d", w.ListLen(list))
	}
	for i, want := range boxes {
		got, err := w.ListGet(list, i)
		if err != nil || got != want {
			t.Fatalf("elem %d = %#x err=%v", i, uint64(got), err)
		}
	}
	if _, err := w.ListGet(list, 100); err == nil {
		t.Fatal("out-of-range get accepted")
	}
	b, _ := w.NewLong(999)
	if err := w.ListSet(list, 50, b); err != nil {
		t.Fatal(err)
	}
	got, _ := w.ListGet(list, 50)
	if w.LongValue(got) != 999 {
		t.Fatal("list set failed")
	}
}

func TestQuickMapMatchesModel(t *testing.T) {
	w := world(t)
	f := func(seed int64, n uint8) bool {
		m, err := w.NewMap(16)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		model := map[int64]int64{}
		for i := 0; i < int(n); i++ {
			k := int64(rng.Intn(50))
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Int63()
				box, err := w.NewLong(v)
				if err != nil {
					return false
				}
				if err := w.MapPut(m, k, box); err != nil {
					return false
				}
				model[k] = v
			case 2:
				present, err := w.MapRemove(m, k)
				if err != nil {
					return false
				}
				_, inModel := model[k]
				if present != inModel {
					return false
				}
				delete(model, k)
			}
		}
		if w.MapLen(m) != len(model) {
			return false
		}
		for k, v := range model {
			box, ok := w.MapGet(m, k)
			if !ok || w.LongValue(box) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionsSurviveReload(t *testing.T) {
	h, err := pheap.Create(klass.NewRegistry(), pheap.Config{DataSize: 4 << 20, Mode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(h)
	if err != nil {
		t.Fatal(err)
	}
	list, _ := w.NewList(4)
	for i := 0; i < 10; i++ {
		b, _ := w.NewLong(int64(i * 11))
		w.ListAdd(list, b)
	}
	if err := h.SetRoot("mylist", list); err != nil {
		t.Fatal(err)
	}
	img := h.Device().CrashImage(nvm.CrashFlushedOnly, 0)
	re, err := pheap.Load(nvm.FromImage(img, nvm.Config{}), klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	w2, err := NewWorld(re)
	if err != nil {
		t.Fatal(err)
	}
	list2, ok := re.GetRoot("mylist")
	if !ok {
		t.Fatal("list root lost")
	}
	if w2.ListLen(list2) != 10 {
		t.Fatalf("reloaded len = %d", w2.ListLen(list2))
	}
	for i := 0; i < 10; i++ {
		b, err := w2.ListGet(list2, i)
		if err != nil || w2.LongValue(b) != int64(i*11) {
			t.Fatalf("reloaded elem %d wrong", i)
		}
	}
}

// midMarkWorld runs the queued callback when CollectConcurrent releases
// the world after its initial handshake — i.e. with the SATB barrier
// armed and the snapshot taken — so the mutations exercise exactly the
// window where an unbarriered store could hide a snapshot-reachable
// object from the marker.
type midMarkWorld struct{ onStart []func() }

func (w *midMarkWorld) StopWorld() {}
func (w *midMarkWorld) StartWorld() {
	if len(w.onStart) > 0 {
		fn := w.onStart[0]
		w.onStart = w.onStart[1:]
		fn()
	}
}

// TestLegacyCollectionsSafeDuringConcurrentGC mutates the map and list
// mid-concurrent-mark (through the barrier-aware transactional stores)
// and verifies nothing is lost or corrupted by the cycle's compaction.
func TestLegacyCollectionsSafeDuringConcurrentGC(t *testing.T) {
	w := world(t)
	h := w.H
	m, err := w.NewMap(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetRoot("map", m); err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 64; k++ {
		b, _ := w.NewLong(k * 3)
		if err := w.MapPut(m, k, b); err != nil {
			t.Fatal(err)
		}
	}
	world := &midMarkWorld{onStart: []func(){func() {
		// Overwrites + removals mid-mark: each store's old referent must
		// reach the marker through the SATB barrier or compaction would
		// operate on a lost-object summary.
		for k := int64(0); k < 32; k++ {
			b, _ := w.NewLong(k * 1000)
			if err := w.MapPut(m, k, b); err != nil {
				panic(err)
			}
		}
		for k := int64(48); k < 64; k++ {
			if _, err := w.MapRemove(m, k); err != nil {
				panic(err)
			}
		}
	}}}
	if _, err := pgc.CollectConcurrent(h, pgc.NoRoots{}, world); err != nil {
		t.Fatal(err)
	}
	m, _ = h.GetRoot("map") // compaction may have moved everything
	for k := int64(0); k < 64; k++ {
		b, ok := w.MapGet(m, k)
		switch {
		case k < 32:
			if !ok || w.LongValue(b) != k*1000 {
				t.Fatalf("key %d: ok=%v val=%d, want %d", k, ok, w.LongValue(b), k*1000)
			}
		case k < 48:
			if !ok || w.LongValue(b) != k*3 {
				t.Fatalf("key %d: ok=%v, want untouched %d", k, ok, k*3)
			}
		default:
			if ok {
				t.Fatalf("removed key %d still present", k)
			}
		}
	}
	if w.MapLen(m) != 48 {
		t.Fatalf("map len = %d, want 48", w.MapLen(m))
	}
}
