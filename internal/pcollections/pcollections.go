// Package pcollections implements persistent data structures over PJH —
// the Espresso-side counterparts of PCJ's types used in the §6.2
// comparison: a boxed long (PersistentLong), tuples, a generic array, an
// array list, and a hash map. They are ordinary Java-object graphs
// allocated with pnew; each mutating operation runs in a ptx undo-log
// transaction so both sides of the comparison offer the same ACID
// guarantee. Reference stores go through ptx.Tx.WriteRefWord — the SATB
// pre-write barrier plus a single atomic machine store — so these legacy
// collections stay correct while pgc.CollectConcurrent marks; the
// concurrent serving-oriented index lives in internal/pindex.
package pcollections

import (
	"fmt"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/pheap"
	"espresso/internal/ptx"
)

// World bundles the heap, its registry, and the transaction manager the
// collections operate in.
type World struct {
	H  *pheap.Heap
	TX *ptx.Manager

	boxKlass    *klass.Klass
	entryKlass  *klass.Klass
	listKlass   *klass.Klass
	mapKlass    *klass.Klass
	tupleKlass  map[int]*klass.Klass
	objArrKlass *klass.Klass

	// Field offsets resolved once at world construction — the same
	// resolve-once discipline as core's FieldRef fast path, so the §6.2
	// hot loops do no per-access name-map lookups.
	boxValueOff                                          int
	entryHashOff, entryKeyOff, entryValOff, entryNextOff int
	listSizeOff, listElemsOff                            int
	mapSizeOff, mapBucketsOff                            int
}

// NewWorld prepares the collection classes on a heap.
func NewWorld(h *pheap.Heap) (*World, error) {
	tm, err := ptx.NewManager(h)
	if err != nil {
		return nil, err
	}
	w := &World{H: h, TX: tm, tupleKlass: map[int]*klass.Klass{}}
	reg := h.Registry()
	if w.boxKlass, err = reg.Define(klass.MustInstance("espresso/PLong", nil,
		klass.Field{Name: "value", Type: layout.FTLong})); err != nil {
		return nil, err
	}
	if w.entryKlass, err = reg.Define(klass.MustInstance("espresso/PMapEntry", nil,
		klass.Field{Name: "hash", Type: layout.FTLong},
		klass.Field{Name: "key", Type: layout.FTLong},
		klass.Field{Name: "value", Type: layout.FTRef},
		klass.Field{Name: "next", Type: layout.FTRef, RefKlass: "espresso/PMapEntry"})); err != nil {
		return nil, err
	}
	if w.listKlass, err = reg.Define(klass.MustInstance("espresso/PArrayList", nil,
		klass.Field{Name: "size", Type: layout.FTLong},
		klass.Field{Name: "elems", Type: layout.FTRef})); err != nil {
		return nil, err
	}
	if w.mapKlass, err = reg.Define(klass.MustInstance("espresso/PHashMap", nil,
		klass.Field{Name: "size", Type: layout.FTLong},
		klass.Field{Name: "buckets", Type: layout.FTRef})); err != nil {
		return nil, err
	}
	w.objArrKlass = reg.ObjArray("java/lang/Object")
	w.boxValueOff = fieldOff(w.boxKlass, "value")
	w.entryHashOff = fieldOff(w.entryKlass, "hash")
	w.entryKeyOff = fieldOff(w.entryKlass, "key")
	w.entryValOff = fieldOff(w.entryKlass, "value")
	w.entryNextOff = fieldOff(w.entryKlass, "next")
	w.listSizeOff = fieldOff(w.listKlass, "size")
	w.listElemsOff = fieldOff(w.listKlass, "elems")
	w.mapSizeOff = fieldOff(w.mapKlass, "size")
	w.mapBucketsOff = fieldOff(w.mapKlass, "buckets")
	return w, nil
}

func fieldOff(k *klass.Klass, name string) int {
	i, ok := k.FieldIndex(name)
	if !ok {
		panic("pcollections: missing field " + name)
	}
	return layout.FieldOff(i)
}

// --- PLong (the PersistentLong equivalent) ---

// NewLong allocates a boxed long with ACID semantics.
func (w *World) NewLong(v int64) (layout.Ref, error) {
	ref, err := w.H.Alloc(w.boxKlass, 0)
	if err != nil {
		return 0, err
	}
	err = w.TX.Run(func(tx *ptx.Tx) error {
		return tx.WriteWord(ref, w.boxValueOff, uint64(v))
	})
	return ref, err
}

// LongValue reads a boxed long.
func (w *World) LongValue(ref layout.Ref) int64 {
	return int64(w.H.GetWord(ref, w.boxValueOff))
}

// SetLongValue updates a boxed long transactionally.
func (w *World) SetLongValue(ref layout.Ref, v int64) error {
	return w.TX.Run(func(tx *ptx.Tx) error {
		return tx.WriteWord(ref, w.boxValueOff, uint64(v))
	})
}

// --- Tuples ---

// tupleKlassOf builds (or reuses) the N-ary tuple class.
func (w *World) tupleKlassOf(n int) (*klass.Klass, error) {
	if k, ok := w.tupleKlass[n]; ok {
		return k, nil
	}
	fields := make([]klass.Field, n)
	for i := range fields {
		fields[i] = klass.Field{Name: fmt.Sprintf("f%d", i), Type: layout.FTRef}
	}
	k, err := w.H.Registry().Define(klass.MustInstance(fmt.Sprintf("espresso/PTuple%d", n), nil, fields...))
	if err != nil {
		return nil, err
	}
	w.tupleKlass[n] = k
	return k, nil
}

// NewTuple allocates an n-ary tuple and stores its elements.
func (w *World) NewTuple(elems ...layout.Ref) (layout.Ref, error) {
	k, err := w.tupleKlassOf(len(elems))
	if err != nil {
		return 0, err
	}
	ref, err := w.H.Alloc(k, 0)
	if err != nil {
		return 0, err
	}
	err = w.TX.Run(func(tx *ptx.Tx) error {
		for i, e := range elems {
			if err := tx.WriteRefWord(ref, layout.FieldOff(i), e); err != nil {
				return err
			}
		}
		return nil
	})
	return ref, err
}

// TupleGet reads tuple slot i.
func (w *World) TupleGet(ref layout.Ref, i int) layout.Ref {
	return layout.Ref(w.H.GetWord(ref, layout.FieldOff(i)))
}

// TupleSet writes tuple slot i transactionally.
func (w *World) TupleSet(ref layout.Ref, i int, v layout.Ref) error {
	return w.TX.Run(func(tx *ptx.Tx) error {
		return tx.WriteRefWord(ref, layout.FieldOff(i), v)
	})
}

// --- Generic object array ---

// NewArray allocates a persistent object array.
func (w *World) NewArray(n int) (layout.Ref, error) {
	return w.H.Alloc(w.objArrKlass, n)
}

// ArrayGet reads element i.
func (w *World) ArrayGet(arr layout.Ref, i int) layout.Ref {
	return layout.Ref(w.H.GetWord(arr, layout.ElemOff(layout.FTRef, i)))
}

// ArraySet writes element i transactionally.
func (w *World) ArraySet(arr layout.Ref, i int, v layout.Ref) error {
	return w.TX.Run(func(tx *ptx.Tx) error {
		return tx.WriteRefWord(arr, layout.ElemOff(layout.FTRef, i), v)
	})
}

// --- PArrayList ---

// NewList allocates an array list with the given capacity.
func (w *World) NewList(capacity int) (layout.Ref, error) {
	if capacity < 4 {
		capacity = 4
	}
	elems, err := w.NewArray(capacity)
	if err != nil {
		return 0, err
	}
	ref, err := w.H.Alloc(w.listKlass, 0)
	if err != nil {
		return 0, err
	}
	err = w.TX.Run(func(tx *ptx.Tx) error {
		if err := tx.WriteWord(ref, w.listSizeOff, 0); err != nil {
			return err
		}
		return tx.WriteRefWord(ref, w.listElemsOff, elems)
	})
	return ref, err
}

// ListLen reports the list's element count.
func (w *World) ListLen(list layout.Ref) int {
	return int(w.H.GetWord(list, w.listSizeOff))
}

// ListAdd appends v, growing the backing array by doubling when full.
func (w *World) ListAdd(list layout.Ref, v layout.Ref) error {
	size := w.ListLen(list)
	elems := layout.Ref(w.H.GetWord(list, w.listElemsOff))
	cap := w.H.ArrayLen(elems)
	if size == cap {
		bigger, err := w.NewArray(cap * 2)
		if err != nil {
			return err
		}
		for i := 0; i < size; i++ {
			w.H.SetWord(bigger, layout.ElemOff(layout.FTRef, i),
				w.H.GetWord(elems, layout.ElemOff(layout.FTRef, i)))
		}
		w.H.FlushRange(bigger, 0, w.objArrKlass.SizeOf(cap*2))
		if err := w.TX.Run(func(tx *ptx.Tx) error {
			return tx.WriteRefWord(list, w.listElemsOff, bigger)
		}); err != nil {
			return err
		}
		elems = bigger
	}
	return w.TX.Run(func(tx *ptx.Tx) error {
		if err := tx.WriteRefWord(elems, layout.ElemOff(layout.FTRef, size), v); err != nil {
			return err
		}
		return tx.WriteWord(list, w.listSizeOff, uint64(size+1))
	})
}

// ListGet reads element i.
func (w *World) ListGet(list layout.Ref, i int) (layout.Ref, error) {
	if i < 0 || i >= w.ListLen(list) {
		return 0, fmt.Errorf("pcollections: list index %d out of range", i)
	}
	elems := layout.Ref(w.H.GetWord(list, w.listElemsOff))
	return w.ArrayGet(elems, i), nil
}

// ListSet overwrites element i transactionally.
func (w *World) ListSet(list layout.Ref, i int, v layout.Ref) error {
	if i < 0 || i >= w.ListLen(list) {
		return fmt.Errorf("pcollections: list index %d out of range", i)
	}
	elems := layout.Ref(w.H.GetWord(list, w.listElemsOff))
	return w.ArraySet(elems, i, v)
}

// --- PHashMap (int64 keys → object refs) ---

// NewMap allocates a hash map with the given bucket count.
func (w *World) NewMap(buckets int) (layout.Ref, error) {
	if buckets < 8 {
		buckets = 8
	}
	arr, err := w.NewArray(buckets)
	if err != nil {
		return 0, err
	}
	ref, err := w.H.Alloc(w.mapKlass, 0)
	if err != nil {
		return 0, err
	}
	err = w.TX.Run(func(tx *ptx.Tx) error {
		if err := tx.WriteWord(ref, w.mapSizeOff, 0); err != nil {
			return err
		}
		return tx.WriteRefWord(ref, w.mapBucketsOff, arr)
	})
	return ref, err
}

func mixHash(k int64) uint64 { return layout.MixHash64(k) }

// MapPut inserts or updates key → value.
func (w *World) MapPut(m layout.Ref, key int64, value layout.Ref) error {
	buckets := layout.Ref(w.H.GetWord(m, w.mapBucketsOff))
	nb := w.H.ArrayLen(buckets)
	slot := int(mixHash(key) % uint64(nb))
	head := w.ArrayGet(buckets, slot)
	for e := head; e != layout.NullRef; e = layout.Ref(w.H.GetWord(e, w.entryNextOff)) {
		if int64(w.H.GetWord(e, w.entryKeyOff)) == key {
			return w.TX.Run(func(tx *ptx.Tx) error {
				return tx.WriteRefWord(e, w.entryValOff, value)
			})
		}
	}
	entry, err := w.H.Alloc(w.entryKlass, 0)
	if err != nil {
		return err
	}
	size := int64(w.H.GetWord(m, w.mapSizeOff))
	return w.TX.Run(func(tx *ptx.Tx) error {
		if err := tx.WriteWord(entry, w.entryHashOff, mixHash(key)); err != nil {
			return err
		}
		if err := tx.WriteWord(entry, w.entryKeyOff, uint64(key)); err != nil {
			return err
		}
		if err := tx.WriteRefWord(entry, w.entryValOff, value); err != nil {
			return err
		}
		if err := tx.WriteRefWord(entry, w.entryNextOff, head); err != nil {
			return err
		}
		if err := tx.WriteRefWord(buckets, layout.ElemOff(layout.FTRef, slot), entry); err != nil {
			return err
		}
		return tx.WriteWord(m, w.mapSizeOff, uint64(size+1))
	})
}

// MapGet looks a key up.
func (w *World) MapGet(m layout.Ref, key int64) (layout.Ref, bool) {
	buckets := layout.Ref(w.H.GetWord(m, w.mapBucketsOff))
	nb := w.H.ArrayLen(buckets)
	slot := int(mixHash(key) % uint64(nb))
	for e := w.ArrayGet(buckets, slot); e != layout.NullRef; e = layout.Ref(w.H.GetWord(e, w.entryNextOff)) {
		if int64(w.H.GetWord(e, w.entryKeyOff)) == key {
			return layout.Ref(w.H.GetWord(e, w.entryValOff)), true
		}
	}
	return 0, false
}

// MapRemove deletes a key, reporting whether it was present.
func (w *World) MapRemove(m layout.Ref, key int64) (bool, error) {
	buckets := layout.Ref(w.H.GetWord(m, w.mapBucketsOff))
	nb := w.H.ArrayLen(buckets)
	slot := int(mixHash(key) % uint64(nb))
	nextOff := w.entryNextOff
	var prev layout.Ref
	for e := w.ArrayGet(buckets, slot); e != layout.NullRef; e = layout.Ref(w.H.GetWord(e, nextOff)) {
		if int64(w.H.GetWord(e, w.entryKeyOff)) == key {
			next := w.H.GetWord(e, nextOff)
			size := w.H.GetWord(m, w.mapSizeOff)
			err := w.TX.Run(func(tx *ptx.Tx) error {
				if prev == layout.NullRef {
					if err := tx.WriteRefWord(buckets, layout.ElemOff(layout.FTRef, slot), layout.Ref(next)); err != nil {
						return err
					}
				} else if err := tx.WriteRefWord(prev, nextOff, layout.Ref(next)); err != nil {
					return err
				}
				return tx.WriteWord(m, w.mapSizeOff, size-1)
			})
			return true, err
		}
		prev = e
	}
	return false, nil
}

// MapLen reports the entry count.
func (w *World) MapLen(m layout.Ref) int {
	return int(w.H.GetWord(m, w.mapSizeOff))
}
