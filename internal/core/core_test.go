package core

import (
	"errors"
	"path/filepath"
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/vheap"
)

func newRT(t testing.TB, cfg Config) *Runtime {
	t.Helper()
	if cfg.PJHDataSize == 0 {
		cfg.PJHDataSize = 4 << 20
	}
	if cfg.NVMMode == 0 {
		cfg.NVMMode = nvm.Tracked
	}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func personKlass(t testing.TB, rt *Runtime) *klass.Klass {
	t.Helper()
	k, err := rt.Reg.Define(klass.MustInstance("Person", nil,
		klass.Field{Name: "id", Type: layout.FTLong},
		klass.Field{Name: "name", Type: layout.FTRef, RefKlass: StringKlassName},
	))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestFigure11Workflow walks the paper's Figure 11 example: check, create
// or load a heap, allocate with pnew, set a root, and find it again.
func TestFigure11Workflow(t *testing.T) {
	rt := newRT(t, Config{})
	if rt.ExistsHeap("Jimmy") {
		t.Fatal("heap should not exist yet")
	}
	if _, err := rt.CreateHeap("Jimmy", 1<<20); err != nil {
		t.Fatal(err)
	}
	p := personKlass(t, rt)
	ref, err := rt.PNew(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	name, err := rt.NewString("Jimmy Woo", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetLong(ref, "id", 1001); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetRef(ref, "name", name); err != nil {
		t.Fatal(err)
	}
	if err := rt.FlushObject(ref); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetRoot("Jimmy_info", ref); err != nil {
		t.Fatal(err)
	}

	got, ok := rt.GetRoot("Jimmy_info")
	if !ok || got != ref {
		t.Fatalf("GetRoot = %#x %v", uint64(got), ok)
	}
	id, _ := rt.GetLong(got, "id")
	nref, _ := rt.GetRef(got, "name")
	s, err := rt.GetString(nref)
	if err != nil || id != 1001 || s != "Jimmy Woo" {
		t.Fatalf("round trip: id=%d name=%q err=%v", id, s, err)
	}
}

func TestHeapSurvivesSimulatedReboot(t *testing.T) {
	dir := t.TempDir()
	rt := newRT(t, Config{HeapDir: dir})
	if _, err := rt.CreateHeap("store", 1<<20); err != nil {
		t.Fatal(err)
	}
	p := personKlass(t, rt)
	ref, _ := rt.PNew(p, 0)
	rt.SetLong(ref, "id", 7)
	name, _ := rt.NewString("persisted", true)
	rt.SetRef(ref, "name", name)
	rt.FlushObject(ref)
	rt.SetRoot("who", ref)
	if err := rt.SyncHeap("store"); err != nil {
		t.Fatal(err)
	}
	if _, err := filepath.Glob(filepath.Join(dir, "*.pjh")); err != nil {
		t.Fatal(err)
	}

	// New process: fresh runtime, fresh registry — classes come back from
	// the Klass segment.
	rt2 := newRT(t, Config{HeapDir: dir})
	if !rt2.ExistsHeap("store") {
		t.Fatal("heap lost across reboot")
	}
	if _, err := rt2.LoadHeap("store"); err != nil {
		t.Fatal(err)
	}
	got, ok := rt2.GetRoot("who")
	if !ok {
		t.Fatal("root lost across reboot")
	}
	id, err := rt2.GetLong(got, "id")
	if err != nil || id != 7 {
		t.Fatalf("id = %d err=%v", id, err)
	}
	nref, _ := rt2.GetRef(got, "name")
	if s, _ := rt2.GetString(nref); s != "persisted" {
		t.Fatalf("name = %q", s)
	}
}

// TestFigure10AliasKlass reproduces the paper's Figure 10: under the
// stock JVM's strict check, mixing new and pnew of the same class makes a
// redundant cast throw; with alias Klasses it succeeds.
func TestFigure10AliasKlass(t *testing.T) {
	t.Run("strict check throws", func(t *testing.T) {
		rt := newRT(t, Config{StrictCast: true})
		rt.CreateHeap("h", 1<<20)
		p := personKlass(t, rt)
		a, err := rt.New(p, 0) // Person a = new Person(...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.PNew(p, 0); err != nil { // Person b = pnew Person(...)
			t.Fatal(err)
		}
		err = rt.CheckCast(a, "Person") // somefunc((Person) a)
		var cce *ClassCastError
		if !errors.As(err, &cce) {
			t.Fatalf("expected ClassCastException, got %v", err)
		}
	})
	t.Run("alias check succeeds", func(t *testing.T) {
		rt := newRT(t, Config{})
		rt.CreateHeap("h", 1<<20)
		p := personKlass(t, rt)
		a, _ := rt.New(p, 0)
		b, _ := rt.PNew(p, 0)
		if err := rt.CheckCast(a, "Person"); err != nil {
			t.Fatalf("alias cast of DRAM instance failed: %v", err)
		}
		if err := rt.CheckCast(b, "Person"); err != nil {
			t.Fatalf("alias cast of NVM instance failed: %v", err)
		}
	})
}

func TestCheckCastSubclassAndMismatch(t *testing.T) {
	rt := newRT(t, Config{})
	rt.CreateHeap("h", 1<<20)
	p := personKlass(t, rt)
	e, _ := rt.Reg.Define(klass.MustInstance("Employee", p,
		klass.Field{Name: "salary", Type: layout.FTLong}))
	emp, _ := rt.PNew(e, 0)
	if err := rt.CheckCast(emp, "Person"); err != nil {
		t.Fatalf("upcast failed: %v", err)
	}
	per, _ := rt.PNew(p, 0)
	if err := rt.CheckCast(per, "Employee"); err == nil {
		t.Fatal("downcast of a Person to Employee should fail")
	}
	ok, err := rt.InstanceOf(emp, "Person")
	if err != nil || !ok {
		t.Fatalf("InstanceOf = %v %v", ok, err)
	}
}

func TestMixedGraphAndVolatileGC(t *testing.T) {
	// A persistent object holding the only reference to a volatile one:
	// the NVM remembered set must keep the volatile object alive and the
	// NVM slot must be patched when the scavenger moves it.
	rt := newRT(t, Config{})
	rt.CreateHeap("h", 1<<20)
	p := personKlass(t, rt)
	pobj, _ := rt.PNew(p, 0)
	vname, _ := rt.NewString("volatile value", false)
	if err := rt.SetRef(pobj, "name", vname); err != nil {
		t.Fatal(err)
	}
	if len(rt.NVMToVolSlots()) != 1 {
		t.Fatalf("remset = %v", rt.NVMToVolSlots())
	}
	if err := rt.MinorGC(); err != nil {
		t.Fatal(err)
	}
	got, _ := rt.GetRef(pobj, "name")
	if got == vname {
		t.Fatal("volatile object did not move (scavenge should have copied it)")
	}
	if s, err := rt.GetString(got); err != nil || s != "volatile value" {
		t.Fatalf("string after scavenge: %q %v", s, err)
	}
}

func TestPersistentGCWithDRAMRoots(t *testing.T) {
	// A volatile object holding the only reference to a persistent one:
	// the DRAM scan must treat it as a root and get patched on compaction.
	rt := newRT(t, Config{})
	rt.CreateHeap("h", 2<<20)
	p := personKlass(t, rt)
	holder, _ := rt.Reg.Define(klass.MustInstance("Holder", nil,
		klass.Field{Name: "target", Type: layout.FTRef}))
	// Garbage first so the live object moves.
	for i := 0; i < 200; i++ {
		rt.PNew(p, 0)
	}
	pobj, _ := rt.PNew(p, 0)
	rt.SetLong(pobj, "id", 31337)
	rt.FlushObject(pobj)
	vobj, _ := rt.New(holder, 0)
	rt.SetRef(vobj, "target", pobj)
	hv := rt.NewHandle(vobj)

	res, err := rt.PersistentGC("h")
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveObjects != 1 {
		t.Fatalf("live = %d, want 1 (DRAM-rooted)", res.LiveObjects)
	}
	newTarget, _ := rt.GetRef(rt.Get(hv), "target")
	if newTarget == pobj {
		t.Fatal("DRAM slot not patched after compaction")
	}
	if id, _ := rt.GetLong(newTarget, "id"); id != 31337 {
		t.Fatalf("payload lost: %d", id)
	}
}

func TestHandlesSurviveVolatileGC(t *testing.T) {
	rt := newRT(t, Config{Volatile: vheap.Config{EdenSize: 64 << 10, SurvivorSize: 16 << 10}})
	p := personKlass(t, rt)
	obj, _ := rt.New(p, 0)
	rt.SetLong(obj, "id", 555)
	h := rt.NewHandle(obj)
	// Churn until scavenges happen.
	for i := 0; i < 5000; i++ {
		if _, err := rt.New(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	if rt.Volatile().MinorGCs == 0 {
		t.Fatal("expected at least one scavenge")
	}
	if id, _ := rt.GetLong(rt.Get(h), "id"); id != 555 {
		t.Fatalf("handle referent corrupted: %d", id)
	}
	rt.Release(h)
}

func TestZeroingSafetyOnLoad(t *testing.T) {
	dir := t.TempDir()
	rt := newRT(t, Config{HeapDir: dir, Safety: Zeroing})
	rt.CreateHeap("z", 1<<20)
	p := personKlass(t, rt)
	pobj, _ := rt.PNew(p, 0)
	vstr, _ := rt.NewString("dram", false)
	rt.SetRef(pobj, "name", vstr) // NVM → DRAM pointer
	rt.SetLong(pobj, "id", 9)
	rt.FlushObject(pobj)
	rt.SetRoot("r", pobj)
	rt.SyncHeap("z")

	rt2 := newRT(t, Config{HeapDir: dir, Safety: Zeroing})
	if _, err := rt2.LoadHeap("z"); err != nil {
		t.Fatal(err)
	}
	got, _ := rt2.GetRoot("r")
	nref, err := rt2.GetRef(got, "name")
	if err != nil {
		t.Fatal(err)
	}
	if nref != layout.NullRef {
		t.Fatalf("stale DRAM pointer survived zeroing load: %#x", uint64(nref))
	}
	if id, _ := rt2.GetLong(got, "id"); id != 9 {
		t.Fatalf("primitive field damaged by zeroing scan: %d", id)
	}
}

func TestUserGuaranteedLoadKeepsStalePointer(t *testing.T) {
	dir := t.TempDir()
	rt := newRT(t, Config{HeapDir: dir})
	rt.CreateHeap("ug", 1<<20)
	p := personKlass(t, rt)
	pobj, _ := rt.PNew(p, 0)
	vstr, _ := rt.NewString("dram", false)
	rt.SetRef(pobj, "name", vstr)
	rt.FlushObject(pobj)
	rt.SetRoot("r", pobj)
	rt.SyncHeap("ug")

	rt2 := newRT(t, Config{HeapDir: dir, Safety: UserGuaranteed})
	if _, err := rt2.LoadHeap("ug"); err != nil {
		t.Fatal(err)
	}
	got, _ := rt2.GetRoot("r")
	nref, _ := rt2.GetRef(got, "name")
	if nref == layout.NullRef {
		t.Fatal("user-guaranteed load must not touch pointers")
	}
}

func TestTypeBasedSafetyRejections(t *testing.T) {
	rt := newRT(t, Config{Safety: TypeBased})
	rt.CreateHeap("tb", 1<<20)
	// Unannotated class: pnew must fail.
	plain := klass.MustInstance("Plain", nil, klass.Field{Name: "x", Type: layout.FTLong})
	if _, err := rt.PNew(plain, 0); err == nil {
		t.Fatal("pnew of unannotated class accepted under type-based safety")
	}
	// Annotated class with persistent closure: accepted.
	good := klass.MustInstance("Good", nil,
		klass.Field{Name: "name", Type: layout.FTRef, RefKlass: StringKlassName})
	good.Persistent = true
	gobj, err := rt.PNew(good, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Storing a volatile ref into NVM is rejected.
	vstr, _ := rt.NewString("volatile", false)
	if err := rt.SetRef(gobj, "name", vstr); err == nil {
		t.Fatal("volatile store into NVM accepted under type-based safety")
	}
	pstr, _ := rt.NewString("persistent", true)
	if err := rt.SetRef(gobj, "name", pstr); err != nil {
		t.Fatal(err)
	}
	// Annotated class referencing a non-persistent class: rejected.
	bad := klass.MustInstance("Bad", nil,
		klass.Field{Name: "p", Type: layout.FTRef, RefKlass: "Plain"})
	bad.Persistent = true
	rt.Reg.Define(plain)
	if _, err := rt.PNew(bad, 0); err == nil {
		t.Fatal("non-persistent field closure accepted")
	}
}

func TestFlushAPIs(t *testing.T) {
	rt := newRT(t, Config{})
	rt.CreateHeap("f", 1<<20)
	p := personKlass(t, rt)
	pobj, _ := rt.PNew(p, 0)
	rt.SetLong(pobj, "id", 42)
	if err := rt.FlushField(pobj, "id"); err != nil {
		t.Fatal(err)
	}
	arr, _ := rt.PNew(rt.Reg.PrimArray(layout.FTLong), 10)
	rt.SetLongElem(arr, 3, 99)
	if err := rt.FlushArrayElem(arr, 3); err != nil {
		t.Fatal(err)
	}
	if err := rt.FlushObject(arr); err != nil {
		t.Fatal(err)
	}
	// Flushing a volatile object is an error.
	vobj, _ := rt.New(p, 0)
	if err := rt.FlushField(vobj, "id"); err == nil {
		t.Fatal("flush of volatile object accepted")
	}
	// Transitive flush covers reachable persistent objects.
	other, _ := rt.PNew(p, 0)
	name, _ := rt.NewString("x", true)
	rt.SetRef(other, "name", name)
	rt.SetRef(pobj, "name", name)
	if err := rt.FlushTransitive(pobj); err != nil {
		t.Fatal(err)
	}
}

func TestPNewMultiArray(t *testing.T) {
	rt := newRT(t, Config{})
	rt.CreateHeap("m", 1<<20)
	p := personKlass(t, rt)
	arr, err := rt.PNewMultiArray(p, []int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if rt.ArrayLen(arr) != 3 {
		t.Fatalf("outer len = %d", rt.ArrayLen(arr))
	}
	inner, err := rt.GetElem(arr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rt.ArrayLen(inner) != 2 {
		t.Fatalf("inner len = %d", rt.ArrayLen(inner))
	}
	if !rt.InPersistent(inner) {
		t.Fatal("inner array not persistent")
	}
}

func TestMultipleHeaps(t *testing.T) {
	rt := newRT(t, Config{})
	h1, err := rt.CreateHeap("one", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := rt.CreateHeap("two", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if h1.Base() == h2.Base() {
		t.Fatal("heaps share a base address")
	}
	p := personKlass(t, rt)
	rt.SetActiveHeap("one")
	a, _ := rt.PNew(p, 0)
	rt.SetActiveHeap("two")
	b, _ := rt.PNew(p, 0)
	if !h1.Contains(a) || !h2.Contains(b) {
		t.Fatal("objects landed in the wrong heaps")
	}
	// Cross-heap references are legal (both persistent).
	if err := rt.SetRef(a, "name", b); err != nil {
		t.Fatal(err)
	}
	rt.SetRoot("a", a)
	rt.SetRoot("b", b)
	if _, err := rt.PersistentGC("one"); err != nil {
		t.Fatal(err)
	}
	got, _ := rt.GetRoot("a")
	cross, _ := rt.GetRef(got, "name")
	if cross != b {
		t.Fatalf("cross-heap ref damaged: %#x", uint64(cross))
	}
}

func TestRebaseOnAddressCollision(t *testing.T) {
	// Create two runtimes whose heaps get the same hint, save both, then
	// load both into one runtime: the second must be rebased, with all
	// internal pointers rewritten.
	dirA, dirB := t.TempDir(), t.TempDir()
	mk := func(dir, heap, rootVal string) {
		rt := newRT(t, Config{HeapDir: dir})
		rt.CreateHeap(heap, 1<<20)
		p := personKlass(t, rt)
		obj, _ := rt.PNew(p, 0)
		s, _ := rt.NewString(rootVal, true)
		rt.SetRef(obj, "name", s)
		rt.FlushObject(obj)
		rt.SetRoot("r", obj)
		rt.SyncHeap(heap)
	}
	mk(dirA, "alpha", "from alpha")
	mk(dirB, "beta", "from beta")

	rt := newRT(t, Config{HeapDir: dirA})
	if _, err := rt.LoadHeap("alpha"); err != nil {
		t.Fatal(err)
	}
	// Point the manager at dirB by copying the image in.
	devB, err := nvm.LoadFile(filepath.Join(dirB, "beta.pjh"), nvm.Config{Mode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.NameManager().Register("beta", devB); err != nil {
		t.Fatal(err)
	}
	hb, err := rt.LoadHeap("beta")
	if err != nil {
		t.Fatal(err)
	}
	ha := rt.heapByName["alpha"]
	if hb.Base() < ha.Limit() && ha.Base() < hb.Limit() {
		t.Fatal("loaded heaps overlap after rebase")
	}
	got, ok := rt.GetRoot("r") // alpha wins the search order; check both heaps directly
	if !ok {
		t.Fatal("root lost")
	}
	_ = got
	refB, ok := hb.GetRoot("r")
	if !ok {
		t.Fatal("beta root lost after rebase")
	}
	nref, err := rt.GetRef(refB, "name")
	if err != nil {
		t.Fatal(err)
	}
	if s, err := rt.GetString(nref); err != nil || s != "from beta" {
		t.Fatalf("rebased heap contents: %q %v", s, err)
	}
}

func TestGetRootNullAndMissing(t *testing.T) {
	rt := newRT(t, Config{})
	rt.CreateHeap("h", 1<<20)
	if _, ok := rt.GetRoot("nope"); ok {
		t.Fatal("missing root found")
	}
	if err := rt.SetRoot("bad", layout.YoungBase); err == nil {
		t.Fatal("volatile root accepted")
	}
}
