// Package core implements the Espresso runtime: the piece of the modified
// JVM that stitches the volatile ParallelScavenge heap, any number of
// persistent Java heaps, and the klass metaspace into one object world.
//
// It is the landing point for everything the paper adds to the language
// and runtime: the pnew allocation entry points (§3.2), the alias-Klass
// type checks (§3.2), the heap-management APIs of Table 1 (§3.3), the
// memory-safety levels (§3.4), the field/array/object flush primitives
// (§3.5), and the stop-the-world orchestration of the crash-consistent
// persistent GC (§4) with DRAM↔NVM cross-references handled by precise
// remembered sets.
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/namemgr"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
	"espresso/internal/telemetry"
	"espresso/internal/vheap"
)

// SafetyLevel selects the memory-safety contract for NVM→DRAM references
// (paper §3.4).
type SafetyLevel int

const (
	// UserGuaranteed: volatile pointers in persistent objects are the
	// programmer's problem after a reload. Fastest loads.
	UserGuaranteed SafetyLevel = iota
	// Zeroing: loadHeap scans the whole heap and nullifies stale volatile
	// pointers, so a careless access fails with a null dereference rather
	// than undefined behaviour. Load time grows with heap size.
	Zeroing
	// TypeBased: only classes annotated persistent may be pnew'd, their
	// ref fields must be persistent classes, and storing a volatile
	// reference into NVM is rejected — no pointer can dangle.
	TypeBased
)

func (s SafetyLevel) String() string {
	switch s {
	case UserGuaranteed:
		return "user-guaranteed"
	case Zeroing:
		return "zeroing"
	case TypeBased:
		return "type-based"
	default:
		return fmt.Sprintf("SafetyLevel(%d)", int(s))
	}
}

// Config assembles a runtime.
type Config struct {
	// HeapDir is where the external name manager stores heap images;
	// empty keeps heaps in memory only.
	HeapDir string
	// Safety is the memory-safety level (default UserGuaranteed).
	Safety SafetyLevel
	// Young configures the volatile heap.
	Volatile vheap.Config
	// NVMMode and NVMWriteLatency configure persistent devices.
	NVMMode         nvm.Mode
	NVMWriteLatency time.Duration
	// PJHDataSize is the default data size for CreateHeap when the caller
	// passes size 0.
	PJHDataSize int
	// StrictCast disables the alias-Klass extension, reproducing the
	// spurious ClassCastException of paper Figure 10. For tests and demos.
	StrictCast bool
	// ConcurrentGC routes PersistentGC through the concurrent collector:
	// marking overlaps the mutators and only final remark + compaction
	// pause the world. PersistentGCConcurrent selects it per call.
	ConcurrentGC bool
	// GCWorkers is the parallel GC pool size: marking fans out over this
	// many work-stealing tracers and the compaction pause shards its
	// reference-fix and fill passes over the same count. Zero or negative
	// means GOMAXPROCS. One worker reproduces the serial collector
	// exactly; the heap image is byte-identical for every value on a
	// quiescent heap.
	GCWorkers int
	// Telemetry enables the runtime's observability registry: per-mutator
	// counter cells, GC phase spans, latency histograms. Off (the default)
	// every instrumented path sees nil and records nothing; on, the mutator
	// fast paths still take no lock, fence, or device op — counts are
	// owner-local stores folded only when a snapshot asks.
	Telemetry bool
	// FlightRecorder enables the NVM-persisted event journal on every heap
	// this runtime creates or loads: GC phase transitions, safepoint
	// aggregates, recovery steps, redo commits, and PLAB handoffs are
	// appended to a per-heap ring that survives crashes and is decoded by
	// `heaptool postmortem`. Appends happen only at already-fenced
	// publication points (one line write + flush each, never a fence), so
	// mutator fast paths gain zero fences.
	FlightRecorder bool
}

// Runtime is one simulated JVM instance.
type Runtime struct {
	mu  sync.Mutex
	cfg Config

	// world is the safepoint lock — the mutator-handshake mechanism of
	// the concurrent persistent GC. Every heap-touching public operation
	// runs under a read lock (mutators are "in" an op or parked between
	// ops, never mid-op when a pause begins); the collector's pauses take
	// the write lock, so StopWorld returns exactly when every in-flight
	// operation has drained. The lock makes *persistent-heap* access safe
	// against collector pauses; the volatile heap keeps the seed's
	// single-volatile-mutator contract (vheap has no internal locking).
	// Internal (lowercase) helpers assume the caller holds the read lock
	// and must never re-acquire it: a nested RLock can deadlock against a
	// waiting writer.
	world sync.RWMutex

	// gcMu serializes persistent collections: a collector whose marking
	// phase runs with the world released must never overlap another
	// collection of the same runtime (pheap's per-heap guard is the
	// erroring backstop; this lock makes concurrent callers queue
	// instead).
	gcMu sync.Mutex

	Reg *klass.Registry
	vol *vheap.Heap
	mgr *namemgr.Manager

	heaps      []*pheap.Heap // sorted by base address
	heapByName map[string]*pheap.Heap
	active     *pheap.Heap // target of PNew
	nextBase   layout.Ref

	// lastHeap is a one-entry cache over heapOf's binary search: almost
	// every access run stays within one heap, so the common case is a
	// pair of bounds checks instead of a sort.Search.
	lastHeap atomic.Pointer[pheap.Heap]

	handles     []layout.Ref
	freeHandles []int

	// nvmToVol is the persistent-to-volatile remembered set: absolute
	// addresses of NVM slots currently holding DRAM references. The
	// volatile collectors treat these as roots and patch them; the
	// zeroing scan and type-based safety police them. Mutator stores do
	// not touch it directly: the write barrier appends to per-mutator
	// delta buffers that merge here at publication points (see remset.go
	// for the lifecycle), so consumers publish pending deltas first.
	nvmToVol *remset

	// flushWork is FlushTransitive/FlushBatch's reusable traversal state
	// (work stack, visited set, line coalescer, object read buffer),
	// serialized by flushMu so concurrent committers do not interleave.
	flushMu   sync.Mutex
	flushWork flushState

	cp *klass.ConstantPool

	stringKlass *klass.Klass

	// tel is the runtime's observability registry (nil unless
	// Config.Telemetry): heaps report into it via pheap's cell
	// registration, the collectors emit phase spans, and the safepoint
	// machinery times pause handshakes.
	tel *telemetry.Registry

	// Safepoint aggregates for the flight recorder's EvSafepoint events:
	// pauses begun and total stop-the-world wait. Kept on the runtime (not
	// per heap) because the safepoint domain is the runtime.
	spWaits  atomic.Uint64
	spWaitNS atomic.Uint64
}

// StringKlassName is the name of the built-in string class (a packed byte
// array, standing in for java.lang.String).
const StringKlassName = "java/lang/String"

// NewRuntime boots a runtime.
func NewRuntime(cfg Config) (*Runtime, error) {
	reg := klass.NewRegistry()
	rt := &Runtime{
		cfg:        cfg,
		Reg:        reg,
		vol:        vheap.New(reg, cfg.Volatile),
		mgr:        namemgr.New(cfg.HeapDir, cfg.NVMMode),
		heapByName: make(map[string]*pheap.Heap),
		nvmToVol:   newRemset(),
		cp:         klass.NewConstantPool(),
		nextBase:   layout.DefaultPJHBase,
	}
	if cfg.Telemetry {
		rt.tel = telemetry.New()
	}
	sk := &klass.Klass{Name: StringKlassName, Kind: klass.KindPrimArray, Elem: layout.FTByte, Persistent: true}
	var err error
	if rt.stringKlass, err = reg.Define(sk); err != nil {
		return nil, err
	}
	return rt, nil
}

// Volatile exposes the volatile heap (tests, diagnostics).
func (rt *Runtime) Volatile() *vheap.Heap { return rt.vol }

// Telemetry returns the runtime's observability registry, nil when
// Config.Telemetry is off. Every registry method is nil-receiver-safe.
func (rt *Runtime) Telemetry() *telemetry.Registry { return rt.tel }

// Metrics folds the runtime's telemetry into one snapshot (empty when
// telemetry is disabled).
func (rt *Runtime) Metrics() telemetry.Snapshot { return rt.tel.Snapshot() }

// lockWorldCounted acquires the safepoint write lock — the collector
// pause handshake — timing how long the world took to stop (mutators
// drain their in-flight ops) and recording it as a safepoint.wait span.
// It returns the wait so the flight recorder can journal the stop; the
// runtime-level aggregates feed the same EvSafepoint event. With neither
// telemetry nor the recorder enabled it is just the lock.
func (rt *Runtime) lockWorldCounted() time.Duration {
	if rt.tel == nil && !rt.cfg.FlightRecorder {
		rt.world.Lock()
		return 0
	}
	start := time.Now()
	rt.world.Lock()
	wait := time.Since(start)
	rt.spWaits.Add(1)
	rt.spWaitNS.Add(uint64(wait))
	if rt.tel != nil {
		rt.tel.RecordSpan(telemetry.SpanSafepoint, -1, -1, start, wait)
		rt.tel.Shared().AtomicInc(telemetry.CtrSafepointWaits)
	}
	return wait
}

// SafepointPin exposes the runtime's safepoint read lock as a Pin/Unpin
// pair — the hook lock-free subsystems (internal/pindex) use to make
// each of their operations a safepoint interval without going through a
// Mutator. Pin must not be held across a call to any public Runtime or
// Mutator accessor (they re-acquire the lock) nor nested.
type SafepointPin struct{ rt *Runtime }

// SafepointPinner returns the runtime's safepoint pin handle.
func (rt *Runtime) SafepointPinner() SafepointPin { return SafepointPin{rt} }

// Pin enters a safepoint interval: no collector pause can begin until
// the matching Unpin.
func (p SafepointPin) Pin() { p.rt.world.RLock() }

// Unpin leaves the safepoint interval.
func (p SafepointPin) Unpin() { p.rt.world.RUnlock() }

// NameManager exposes the external name manager.
func (rt *Runtime) NameManager() *namemgr.Manager { return rt.mgr }

// StringKlass returns the built-in string class.
func (rt *Runtime) StringKlass() *klass.Klass { return rt.stringKlass }

// heapOf locates the persistent heap containing ref, or nil. A one-entry
// last-heap cache short-circuits the binary search: the bounds are
// re-checked on every hit, so a stale entry can only miss, never lie.
func (rt *Runtime) heapOf(ref layout.Ref) *pheap.Heap {
	if h := rt.lastHeap.Load(); h != nil && ref >= h.Base() && ref < h.Limit() {
		return h
	}
	i := sort.Search(len(rt.heaps), func(i int) bool { return rt.heaps[i].Limit() > ref })
	if i < len(rt.heaps) && ref >= rt.heaps[i].Base() {
		rt.lastHeap.Store(rt.heaps[i])
		return rt.heaps[i]
	}
	return nil
}

// InPersistent reports whether ref points into any loaded persistent heap.
func (rt *Runtime) InPersistent(ref layout.Ref) bool {
	h := rt.heapOf(ref)
	return h != nil && h.Contains(ref)
}

// InVolatile reports whether ref points into the volatile heap.
func (rt *Runtime) InVolatile(ref layout.Ref) bool { return rt.vol.Contains(ref) }

// KlassOf resolves the class of any object, volatile or persistent.
func (rt *Runtime) KlassOf(ref layout.Ref) (*klass.Klass, error) {
	rt.world.RLock()
	defer rt.world.RUnlock()
	return rt.klassOf(ref)
}

func (rt *Runtime) klassOf(ref layout.Ref) (*klass.Klass, error) {
	if rt.vol.Contains(ref) {
		return rt.vol.KlassOf(ref)
	}
	if h := rt.heapOf(ref); h != nil {
		return h.KlassOf(ref)
	}
	return nil, fmt.Errorf("core: %#x is not an object address", uint64(ref))
}

// New allocates a volatile object — the plain Java `new`. Allocation
// failure triggers a scavenge, then a full collection, before giving up.
func (rt *Runtime) New(k *klass.Klass, arrayLen int) (layout.Ref, error) {
	rt.world.RLock()
	defer rt.world.RUnlock()
	return rt.vnew(k, arrayLen)
}

func (rt *Runtime) vnew(k *klass.Klass, arrayLen int) (layout.Ref, error) {
	if _, err := rt.Reg.Define(k); err != nil {
		return 0, err
	}
	rt.cp.Resolve(k.Name, rt.Reg.MetaAddr(k))
	ref, err := rt.vol.Alloc(k, arrayLen)
	if err == vheap.ErrNeedGC {
		if err = rt.minorGC(); err != nil {
			return 0, err
		}
		ref, err = rt.vol.Alloc(k, arrayLen)
	}
	if err == vheap.ErrNeedGC || err == vheap.ErrOldFull {
		if err = rt.fullGC(); err != nil {
			return 0, err
		}
		ref, err = rt.vol.Alloc(k, arrayLen)
	}
	if err != nil {
		return 0, fmt.Errorf("core: new %s: %w", k.Name, err)
	}
	return ref, nil
}

// PNew allocates a persistent object in the active heap — the pnew
// keyword (and, for arrays, the panewarray/pnewarray bytecodes). Under
// type-based safety the class must be annotated persistent with a
// persistent-closed field closure.
func (rt *Runtime) PNew(k *klass.Klass, arrayLen int) (layout.Ref, error) {
	rt.world.RLock()
	defer rt.world.RUnlock()
	return rt.pnew(k, arrayLen)
}

func (rt *Runtime) pnew(k *klass.Klass, arrayLen int) (layout.Ref, error) {
	h := rt.active
	if h == nil {
		return 0, fmt.Errorf("core: pnew %s: no persistent heap loaded", k.Name)
	}
	if _, err := rt.Reg.Define(k); err != nil {
		return 0, err
	}
	if rt.cfg.Safety == TypeBased {
		if err := rt.checkPersistentClosure(k); err != nil {
			return 0, err
		}
	}
	ref, err := h.Alloc(k, arrayLen)
	if err != nil {
		return 0, fmt.Errorf("core: pnew %s: %w", k.Name, err)
	}
	// Constant-pool resolution now caches the NVM Klass address — the
	// overwrite that makes the strict (non-alias) check of Figure 10 fail.
	if kaddr, ok := h.KlassAddr(k); ok {
		rt.cp.Resolve(k.Name, kaddr)
	}
	return ref, nil
}

// PNewMultiArray allocates a persistent array of arrays (the
// pmultianewarray bytecode): dims gives the length at each level. The
// array klass at every level is resolved once up front; the recursion
// only allocates.
func (rt *Runtime) PNewMultiArray(elem *klass.Klass, dims []int) (layout.Ref, error) {
	if len(dims) == 0 {
		return 0, fmt.Errorf("core: pmultianewarray needs at least one dimension")
	}
	chain := make([]*klass.Klass, len(dims))
	leaf := elem
	if elem.Kind != klass.KindPrimArray {
		leaf = rt.Reg.ObjArray(elem.Name)
	}
	chain[len(dims)-1] = leaf
	for i := len(dims) - 2; i >= 0; i-- {
		chain[i] = rt.Reg.ObjArray(chain[i+1].Name)
	}
	rt.world.RLock()
	defer rt.world.RUnlock()
	return rt.pnewMulti(chain, dims)
}

func (rt *Runtime) pnewMulti(chain []*klass.Klass, dims []int) (layout.Ref, error) {
	arr, err := rt.pnew(chain[0], dims[0])
	if err != nil {
		return 0, err
	}
	if len(dims) == 1 {
		return arr, nil
	}
	for i := 0; i < dims[0]; i++ {
		sub, err := rt.pnewMulti(chain[1:], dims[1:])
		if err != nil {
			return 0, err
		}
		if err := rt.setElem(arr, i, sub, nil, nil, nil); err != nil {
			return 0, err
		}
	}
	return arr, nil
}

func (rt *Runtime) checkPersistentClosure(k *klass.Klass) error {
	if !k.Persistent {
		return fmt.Errorf("core: type-based safety: %s is not annotated persistent", k.Name)
	}
	for _, f := range k.Fields() {
		if f.Type != layout.FTRef || f.RefKlass == "" {
			continue
		}
		fk, ok := rt.Reg.Lookup(f.RefKlass)
		if ok && !fk.Persistent {
			return fmt.Errorf("core: type-based safety: %s.%s references non-persistent class %s",
				k.Name, f.Name, f.RefKlass)
		}
	}
	return nil
}

// NewString allocates a string. persistent selects pnew vs new — the
// `pnew String(name, true)` constructor of paper Figure 9.
func (rt *Runtime) NewString(s string, persistent bool) (layout.Ref, error) {
	rt.world.RLock()
	defer rt.world.RUnlock()
	var ref layout.Ref
	var err error
	if persistent {
		ref, err = rt.pnew(rt.stringKlass, len(s))
	} else {
		ref, err = rt.vnew(rt.stringKlass, len(s))
	}
	if err != nil {
		return 0, err
	}
	// Bulk store: one device write (or one DRAM memmove) for the whole
	// payload, not a per-byte read-modify-write loop.
	if len(s) > 0 {
		boff := layout.ElemOff(layout.FTByte, 0)
		if persistent {
			rt.heapOf(ref).WriteBytesAt(ref, boff, []byte(s))
		} else {
			copy(rt.vol.Bytes(ref, boff, len(s)), s)
		}
	}
	if persistent {
		// Strings are immutable: persist eagerly like the paper's string
		// constructor does.
		rt.heapOf(ref).FlushRange(ref, 0, rt.stringKlass.SizeOf(len(s)))
	}
	return ref, nil
}

// GetString reads a string object's contents with one bulk device read.
func (rt *Runtime) GetString(ref layout.Ref) (string, error) {
	rt.world.RLock()
	defer rt.world.RUnlock()
	k, err := rt.klassOf(ref)
	if err != nil {
		return "", err
	}
	if !klass.SameLogical(k, rt.stringKlass) {
		return "", fmt.Errorf("core: %#x is a %s, not a string", uint64(ref), k.Name)
	}
	n := rt.arrayLen(ref)
	if n == 0 {
		return "", nil
	}
	boff := layout.ElemOff(layout.FTByte, 0)
	if rt.vol.Contains(ref) {
		return string(rt.vol.Bytes(ref, boff, n)), nil
	}
	b := make([]byte, n)
	rt.heapOf(ref).ReadBytesAt(ref, boff, b)
	return string(b), nil
}
