package core

import (
	"fmt"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
	"espresso/internal/telemetry"
)

// Field and array access with the write barriers that maintain the two
// remembered sets and the concurrent collector's SATB invariant:
//
//   - old-generation slot ← young ref  → recorded for the scavenger;
//   - persistent slot ← volatile ref   → recorded in the NVM-to-DRAM
//     remembered set (used as volatile-GC roots, policed by type-based
//     safety, nullified by the zeroing scan);
//   - persistent slot overwritten while a concurrent mark runs → the old
//     referent is recorded in a SATB buffer (pre-write barrier), so the
//     snapshot-at-the-beginning marker never loses a reachable object.
//
// Public accessors run under the runtime's safepoint read lock; the
// lowercase helpers assume the caller holds it and never re-acquire it.

func (rt *Runtime) getWord(ref layout.Ref, boff int) uint64 {
	if rt.vol.Contains(ref) {
		return rt.vol.GetWord(ref, boff)
	}
	if h := rt.heapOf(ref); h != nil {
		return h.GetWord(ref, boff)
	}
	panic(fmt.Sprintf("core: load from non-object address %#x", uint64(ref)))
}

func (rt *Runtime) setWord(ref layout.Ref, boff int, v uint64) {
	if rt.vol.Contains(ref) {
		rt.vol.SetWord(ref, boff, v)
		return
	}
	if h := rt.heapOf(ref); h != nil {
		h.SetWord(ref, boff, v)
		return
	}
	panic(fmt.Sprintf("core: store to non-object address %#x", uint64(ref)))
}

func (rt *Runtime) arrayLen(ref layout.Ref) int {
	return int(rt.getWord(ref, layout.ArrayLenOff))
}

// ArrayLen reports the length of the array at ref.
func (rt *Runtime) ArrayLen(ref layout.Ref) int {
	rt.world.RLock()
	defer rt.world.RUnlock()
	return rt.arrayLen(ref)
}

// fieldOff resolves a named field to its byte offset.
func (rt *Runtime) fieldOff(ref layout.Ref, name string) (int, *klass.Klass, error) {
	k, err := rt.klassOf(ref)
	if err != nil {
		return 0, nil, err
	}
	i, ok := k.FieldIndex(name)
	if !ok {
		return 0, nil, fmt.Errorf("core: class %s has no field %q", k.Name, name)
	}
	return layout.FieldOff(i), k, nil
}

// GetLong reads a primitive field as a 64-bit integer.
func (rt *Runtime) GetLong(ref layout.Ref, field string) (int64, error) {
	rt.world.RLock()
	defer rt.world.RUnlock()
	boff, _, err := rt.fieldOff(ref, field)
	if err != nil {
		return 0, err
	}
	return int64(rt.getWord(ref, boff)), nil
}

// SetLong writes a primitive field as a 64-bit integer.
func (rt *Runtime) SetLong(ref layout.Ref, field string, v int64) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	boff, _, err := rt.fieldOff(ref, field)
	if err != nil {
		return err
	}
	rt.setWord(ref, boff, uint64(v))
	return nil
}

// GetRef reads a reference field.
func (rt *Runtime) GetRef(ref layout.Ref, field string) (layout.Ref, error) {
	rt.world.RLock()
	defer rt.world.RUnlock()
	boff, k, err := rt.fieldOff(ref, field)
	if err != nil {
		return 0, err
	}
	if i, _ := k.FieldIndex(field); k.FieldAt(i).Type != layout.FTRef {
		return 0, fmt.Errorf("core: field %s.%s is not a reference", k.Name, field)
	}
	return layout.Ref(rt.getWord(ref, boff)), nil
}

// SetRef writes a reference field through the write barrier.
func (rt *Runtime) SetRef(ref layout.Ref, field string, val layout.Ref) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	return rt.setRefNamed(ref, field, val, nil, nil, nil)
}

func (rt *Runtime) setRefNamed(ref layout.Ref, field string, val layout.Ref, satb *pheap.SATBBuffer, rdelta *pheap.RemsetDeltaBuffer, cell *telemetry.Cell) error {
	boff, k, err := rt.fieldOff(ref, field)
	if err != nil {
		return err
	}
	if i, _ := k.FieldIndex(field); k.FieldAt(i).Type != layout.FTRef {
		return fmt.Errorf("core: field %s.%s is not a reference", k.Name, field)
	}
	return rt.storeRef(ref, boff, val, satb, rdelta, cell)
}

// GetElem reads element i of a reference array.
func (rt *Runtime) GetElem(arr layout.Ref, i int) (layout.Ref, error) {
	rt.world.RLock()
	defer rt.world.RUnlock()
	if err := rt.boundsCheck(arr, i); err != nil {
		return 0, err
	}
	return layout.Ref(rt.getWord(arr, layout.ElemOff(layout.FTRef, i))), nil
}

// SetElem stores element i of a reference array through the write barrier.
func (rt *Runtime) SetElem(arr layout.Ref, i int, val layout.Ref) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	return rt.setElem(arr, i, val, nil, nil, nil)
}

func (rt *Runtime) setElem(arr layout.Ref, i int, val layout.Ref, satb *pheap.SATBBuffer, rdelta *pheap.RemsetDeltaBuffer, cell *telemetry.Cell) error {
	if err := rt.boundsCheck(arr, i); err != nil {
		return err
	}
	return rt.storeRef(arr, layout.ElemOff(layout.FTRef, i), val, satb, rdelta, cell)
}

// GetLongElem reads element i of a long array.
func (rt *Runtime) GetLongElem(arr layout.Ref, i int) (int64, error) {
	rt.world.RLock()
	defer rt.world.RUnlock()
	if err := rt.boundsCheck(arr, i); err != nil {
		return 0, err
	}
	return int64(rt.getWord(arr, layout.ElemOff(layout.FTLong, i))), nil
}

// SetLongElem stores element i of a long array.
func (rt *Runtime) SetLongElem(arr layout.Ref, i int, v int64) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	if err := rt.boundsCheck(arr, i); err != nil {
		return err
	}
	rt.setWord(arr, layout.ElemOff(layout.FTLong, i), uint64(v))
	return nil
}

func (rt *Runtime) boundsCheck(arr layout.Ref, i int) error {
	k, err := rt.klassOf(arr)
	if err != nil {
		return err
	}
	if !k.IsArray() {
		return fmt.Errorf("core: %s is not an array class", k.Name)
	}
	if n := rt.arrayLen(arr); i < 0 || i >= n {
		return fmt.Errorf("core: index %d out of bounds for length %d", i, n)
	}
	return nil
}

// storeRef performs the reference store plus barrier bookkeeping. satb
// and rdelta select the buffers the two barriers record into: the
// calling mutator's own, or (nil) the heap's shared default buffers.
// cell is the calling mutator's telemetry cell (owner-counted, fence-free)
// or nil — facade-routed stores then tally into the heap registry's
// shared cell with atomic ops, so the op mix stays complete either way.
func (rt *Runtime) storeRef(obj layout.Ref, boff int, val layout.Ref, satb *pheap.SATBBuffer, rdelta *pheap.RemsetDeltaBuffer, cell *telemetry.Cell) error {
	slot := obj + layout.Ref(boff)
	if h := rt.heapOf(obj); h != nil {
		// Persistent object. The paper permits NVM→DRAM references at the
		// language level (§3.2); type-based safety forbids them (§3.4).
		// Remembered-set maintenance is write-combined: the store appends
		// one delta to a mutator-local buffer (before the device store,
		// preserving the eager path's ordering) and the shared set learns
		// about it at the next publication point — transaction commit,
		// safepoint entry, or buffer overflow. See remset.go for the full
		// lifecycle. The hot path therefore takes no shared lock and
		// touches no shared cache line for the remembered set.
		isVol := val != layout.NullRef && rt.vol.Contains(val)
		if isVol && rt.cfg.Safety == TypeBased {
			return fmt.Errorf("core: type-based safety forbids storing a volatile reference into NVM")
		}
		if rdelta == nil {
			rdelta = h.DefaultRemsetDeltaBuffer(slot)
		}
		// SATB pre-write barrier: while a concurrent mark runs, the old
		// referent must reach the marker before it is overwritten, or a
		// snapshot-reachable object could be hidden from the trace. Off
		// the marking phase this costs one atomic flag load.
		var satbReads uint64
		if h.ConcurrentMarkActive() {
			// Record the untagged old referent and dirty the card: the
			// store may retarget this object at something the marker's
			// outgoing-reference summary did not see, so its card must be
			// rescanned in the compaction pause.
			h.SATBRecordBarrier(obj, h.GetWordAtomic(obj, boff), satb)
			satbReads = 1
		}
		// The store (a single atomic machine store, so the concurrent
		// marker's slot loads never tear against it) and its delta land
		// as one drain-atomic step: no publication can consume the delta
		// before the value it must re-derive from is on the device.
		rdelta.RecordStore(slot, isVol, func() {
			h.SetWordAtomic(obj, boff, uint64(val))
		})
		if cell != nil {
			cell.Inc(telemetry.CtrRefStores)
			cell.Add(telemetry.CtrSATBRecords, satbReads)
			cell.Dev(nvm.SubRefstore, satbReads, 1, 0, 0)
		} else if sc := h.Telemetry().Shared(); sc != nil {
			sc.AtomicInc(telemetry.CtrRefStores)
			sc.AtomicAdd(telemetry.CtrSATBRecords, satbReads)
			sc.AtomicDev(nvm.SubRefstore, satbReads, 1, 0, 0)
		}
		return nil
	}
	// Volatile object: old→young stores feed the scavenger's remset.
	if rt.vol.InOld(obj) && val != layout.NullRef && rt.vol.InYoung(val) {
		rt.vol.RecordOldToYoung(slot)
	}
	rt.vol.SetWord(obj, boff, uint64(val))
	return nil
}

// NVMToVolSlots snapshots the persistent-to-volatile remembered set
// (diagnostics and tests). Pending per-mutator deltas are published
// first, so the snapshot reflects every store issued before the call.
func (rt *Runtime) NVMToVolSlots() []layout.Ref {
	rt.world.RLock()
	defer rt.world.RUnlock()
	rt.publishRemsetDeltas()
	return rt.nvmToVol.Snapshot()
}

// publishRemsetDeltas drains every heap's pending remembered-set deltas
// into the shared set. Callers hold the safepoint read lock (a collector
// drain is safe against concurrent owner appends: the per-buffer mutex
// serializes them, and a store that has not yet appended its delta has
// not yet hit the device either).
func (rt *Runtime) publishRemsetDeltas() {
	for _, h := range rt.heaps {
		h.PublishRemsetDeltas()
	}
}
