package core

import (
	"fmt"

	"espresso/internal/layout"
	"espresso/internal/pgc"
	"espresso/internal/pheap"
	"espresso/internal/telemetry/blackbox"
)

// The five heap-management APIs of paper Table 1, plus Sync/Unload
// housekeeping. createHeap/loadHeap register the heap in the runtime's
// address map and make it the active target of pnew.

// CreateHeap creates a persistent heap of the given data size (0 selects
// the configured default) and makes it active (Table 1: createHeap).
func (rt *Runtime) CreateHeap(name string, size int) (*pheap.Heap, error) {
	if rt.mgr.Exists(name) {
		return nil, fmt.Errorf("core: heap %q already exists", name)
	}
	if size == 0 {
		size = rt.cfg.PJHDataSize
	}
	h, err := pheap.Create(rt.Reg, pheap.Config{
		Name:         name,
		AddressHint:  rt.reserveBase(),
		DataSize:     size,
		Mode:         rt.cfg.NVMMode,
		WriteLatency: rt.cfg.NVMWriteLatency,
	})
	if err != nil {
		return nil, err
	}
	if err := rt.mgr.Register(name, h.Device()); err != nil {
		return nil, err
	}
	if rt.cfg.FlightRecorder {
		if _, err := h.EnableFlightRecorder(); err != nil {
			return nil, fmt.Errorf("core: flight recorder on %q: %w", name, err)
		}
		h.FlightRecorder().Append(blackbox.EvHeapCreate,
			uint64(h.Geo().DataSize), uint64(h.Geo().DataRegions()), h.FormatVersion())
	}
	rt.attach(h)
	return h, nil
}

// reserveBase hands out address hints for new heaps, skipping windows
// already occupied by loaded heaps (which sit at their own hints).
func (rt *Runtime) reserveBase() layout.Ref {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	const window = layout.Ref(1 << 36)
	for {
		base := rt.nextBase
		rt.nextBase += window
		occupied := false
		for _, h := range rt.heaps {
			if base < h.Limit() && h.Base() < base+window {
				occupied = true
				break
			}
		}
		if !occupied {
			return base
		}
	}
}

// LoadHeap loads a pre-existing heap image into this runtime (Table 1:
// loadHeap): map the image at its address hint, re-initialize the Klass
// records in place, finish any interrupted collection, and apply the
// configured safety level. The loaded heap becomes the active pnew target.
func (rt *Runtime) LoadHeap(name string) (*pheap.Heap, error) {
	if h, ok := rt.heapByName[name]; ok {
		rt.active = h
		return h, nil // already mapped in this runtime
	}
	dev, err := rt.mgr.Device(name)
	if err != nil {
		return nil, err
	}
	h, err := pheap.Load(dev, rt.Reg)
	if err != nil {
		return nil, err
	}
	h.SetName(name)
	// The address hint may clash with a heap already mapped here — the
	// paper's remap case. Rebase rewrites every intra-heap pointer.
	if clash := rt.overlaps(h); clash != nil {
		if err := h.Rebase(rt.reserveBase()); err != nil {
			return nil, fmt.Errorf("core: remapping %q away from %q: %w", name, clash.Name(), err)
		}
	}
	// The flight recorder attaches before recovery runs so the recovery
	// narrative itself lands in the journal — the whole point of a black
	// box is seeing what happened around the crash.
	if rt.cfg.FlightRecorder {
		if _, err := h.EnableFlightRecorder(); err != nil {
			return nil, fmt.Errorf("core: flight recorder on %q: %w", name, err)
		}
		fr := h.FlightRecorder()
		if from := h.UpgradedFrom(); from != 0 {
			fr.Append(blackbox.EvFormatUpgrade, from, h.FormatVersion(), 0)
		}
		active := uint64(0)
		if h.GCActive() {
			active = 1
		}
		fr.Append(blackbox.EvHeapLoad, h.GlobalTS(), active, uint64(h.GCPhase()))
	}
	// Crash recovery (paper §4.3) runs before the heap is used. A
	// persisted concurrent-mark phase with gcActive clear means the crash
	// interrupted marking: Recover clears the word and the heap proceeds
	// untouched (the STW-fallback contract — the next collection starts a
	// fresh cycle).
	if _, _, err := pgc.RecoverIfNeeded(h); err != nil {
		return nil, fmt.Errorf("core: recovering %q: %w", name, err)
	}
	if rt.cfg.Safety == Zeroing {
		if _, err := h.ZeroingScan(func(ref layout.Ref) bool {
			if h.Contains(ref) {
				return true
			}
			other := rt.heapOf(ref)
			return other != nil && other.Contains(ref)
		}); err != nil {
			return nil, fmt.Errorf("core: zeroing scan of %q: %w", name, err)
		}
	}
	rt.attach(h)
	return h, nil
}

// ExistsHeap checks whether a heap image exists (Table 1: existsHeap).
func (rt *Runtime) ExistsHeap(name string) bool { return rt.mgr.Exists(name) }

// SetRoot marks an object as a named root in the heap that contains it
// (Table 1: setRoot).
func (rt *Runtime) SetRoot(name string, ref layout.Ref) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	return rt.setRoot(name, ref)
}

func (rt *Runtime) setRoot(name string, ref layout.Ref) error {
	h := rt.heapOf(ref)
	if h == nil {
		return fmt.Errorf("core: setRoot %q: %#x is not a persistent object", name, uint64(ref))
	}
	return h.SetRoot(name, ref)
}

// GetRoot fetches a root object by name, searching every loaded heap
// (Table 1: getRoot). The result is an untyped object reference; the
// caller casts, as in the paper.
func (rt *Runtime) GetRoot(name string) (layout.Ref, bool) {
	rt.world.RLock()
	defer rt.world.RUnlock()
	return rt.getRoot(name)
}

func (rt *Runtime) getRoot(name string) (layout.Ref, bool) {
	for _, h := range rt.heaps {
		if ref, ok := h.GetRoot(name); ok {
			return ref, true
		}
	}
	return 0, false
}

// ActiveHeap returns the current pnew target.
func (rt *Runtime) ActiveHeap() *pheap.Heap { return rt.active }

// SetActiveHeap selects which loaded heap pnew allocates into.
func (rt *Runtime) SetActiveHeap(name string) error {
	h, ok := rt.heapByName[name]
	if !ok {
		return fmt.Errorf("core: heap %q is not loaded", name)
	}
	rt.active = h
	return nil
}

// Heaps lists the loaded persistent heaps.
func (rt *Runtime) Heaps() []*pheap.Heap { return append([]*pheap.Heap(nil), rt.heaps...) }

// SyncHeap writes a heap's persisted image to the name manager's backing
// store (a shutdown msync; meaningful when HeapDir is configured).
func (rt *Runtime) SyncHeap(name string) error { return rt.mgr.Sync(name) }

func (rt *Runtime) attach(h *pheap.Heap) {
	// The heap's reference stores feed the runtime's remembered set
	// through per-mutator delta buffers; the sink is their drain target.
	h.SetRemsetSink(remsetSink{rt})
	// And its allocators report into the runtime's telemetry registry
	// (nil when disabled — pheap records nothing then).
	h.SetTelemetry(rt.tel)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.heaps = append(rt.heaps, h)
	for i := len(rt.heaps) - 1; i > 0 && rt.heaps[i-1].Base() > rt.heaps[i].Base(); i-- {
		rt.heaps[i-1], rt.heaps[i] = rt.heaps[i], rt.heaps[i-1]
	}
	rt.heapByName[h.Name()] = h
	rt.active = h
}

func (rt *Runtime) overlaps(h *pheap.Heap) *pheap.Heap {
	for _, other := range rt.heaps {
		if h.Base() < other.Limit() && other.Base() < h.Limit() {
			return other
		}
	}
	return nil
}
