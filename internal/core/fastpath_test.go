package core

import (
	"strings"
	"sync"
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
)

// The fast-path contract is accounted device traffic, not just wall
// clock: these tests pin the exact nvm.Stats deltas of the hot
// operations so a regression that re-introduces per-call device work
// (an extra klass read, a per-byte loop, a per-object fence) fails
// loudly.

func fastpathRT(t *testing.T) (*Runtime, *nvm.Device) {
	t.Helper()
	rt, err := NewRuntime(Config{PJHDataSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	h, err := rt.CreateHeap("fast", 0)
	if err != nil {
		t.Fatal(err)
	}
	return rt, h.Device()
}

func personK(t *testing.T) *klass.Klass {
	t.Helper()
	return klass.MustInstance("fast/Person", nil,
		klass.Field{Name: "id", Type: layout.FTLong},
		klass.Field{Name: "name", Type: layout.FTRef, RefKlass: StringKlassName},
	)
}

func TestFastPathFieldDeviceTraffic(t *testing.T) {
	rt, dev := fastpathRT(t)
	k := personK(t)
	p, err := rt.PNew(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	idF, err := rt.ResolveField(k, "id")
	if err != nil {
		t.Fatal(err)
	}
	rt.SetLongFast(p, idF, 41)

	// Resolved get: exactly one 8-byte device read, nothing else.
	dev.ResetStats()
	if got := rt.GetLongFast(p, idF); got != 41 {
		t.Fatalf("GetLongFast = %d", got)
	}
	if s := dev.Stats(); s != (nvm.Stats{Reads: 1, BytesRead: 8}) {
		t.Fatalf("fast get stats = %+v", s)
	}

	// Named get re-reads the klass word: twice the device reads.
	dev.ResetStats()
	if got, err := rt.GetLong(p, "id"); err != nil || got != 41 {
		t.Fatalf("GetLong = %d, %v", got, err)
	}
	if s := dev.Stats(); s != (nvm.Stats{Reads: 2, BytesRead: 16}) {
		t.Fatalf("named get stats = %+v", s)
	}

	// Resolved set: exactly one 8-byte device write.
	dev.ResetStats()
	rt.SetLongFast(p, idF, 42)
	if s := dev.Stats(); s != (nvm.Stats{Writes: 1, BytesWritten: 8}) {
		t.Fatalf("fast set stats = %+v", s)
	}
	if got := rt.GetLongFast(p, idF); got != 42 {
		t.Fatalf("after set, GetLongFast = %d", got)
	}
}

func TestStringRoundTripDeviceTraffic(t *testing.T) {
	rt, dev := fastpathRT(t)
	// Warm the klass segment so the measured allocations are steady-state.
	if _, err := rt.NewString("warmup-string-aligned-64b-padding-xx", true); err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{40, 400} {
		s := strings.Repeat("x", n)

		// Write: header init is 3 word stores + 1 zeroing store, the
		// payload is ONE bulk store, and the eager persist is one header
		// flush + one top flush (top + its same-line checksum) + one
		// whole-object flush — all constant in op count regardless of
		// length.
		dev.ResetStats()
		ref, err := rt.NewString(s, true)
		if err != nil {
			t.Fatal(err)
		}
		st := dev.Stats()
		if st.Writes != 7 {
			t.Fatalf("len %d: NewString writes = %d (want 7: zero, 3 header words, payload, top, top sum)", n, st.Writes)
		}
		if st.Flushes != 3 || st.Fences != 3 {
			t.Fatalf("len %d: NewString flushes/fences = %d/%d (want 3/3)", n, st.Flushes, st.Fences)
		}

		// Read: klass word + length word + ONE bulk payload read.
		dev.ResetStats()
		got, err := rt.GetString(ref)
		if err != nil || got != s {
			t.Fatalf("len %d: GetString mismatch (err %v)", n, err)
		}
		st = dev.Stats()
		want := nvm.Stats{Reads: 3, BytesRead: uint64(16 + n)}
		if st != want {
			t.Fatalf("len %d: GetString stats = %+v, want %+v", n, st, want)
		}
	}
}

func TestFlushTransitiveDeviceTraffic(t *testing.T) {
	rt, dev := fastpathRT(t)
	node := klass.MustInstance("fast/Node", nil,
		klass.Field{Name: "left", Type: layout.FTRef, RefKlass: "fast/Leaf"},
		klass.Field{Name: "right", Type: layout.FTRef, RefKlass: "fast/Leaf"},
	)
	leaf := klass.MustInstance("fast/Leaf", nil,
		klass.Field{Name: "v", Type: layout.FTLong},
	)
	// Allocate contiguously: parent (32B) + two leaves (32B each) = 96
	// bytes from a line-aligned start — spanning exactly two cache lines.
	parent, err := rt.PNew(node, 0)
	if err != nil {
		t.Fatal(err)
	}
	l1, _ := rt.PNew(leaf, 0)
	l2, _ := rt.PNew(leaf, 0)
	if err := rt.SetRef(parent, "left", l1); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetRef(parent, "right", l2); err != nil {
		t.Fatal(err)
	}

	dev.ResetStats()
	if err := rt.FlushTransitive(parent); err != nil {
		t.Fatal(err)
	}
	s := dev.Stats()
	// Parent: one header read + one body read; each leaf (no ref
	// fields): one header read. 4 reads for a 3-object graph.
	if s.Reads != 4 {
		t.Fatalf("FlushTransitive reads = %d, want 4", s.Reads)
	}
	// The three extents merge into one run: one Flush call covering two
	// lines, one trailing fence — not one flush+fence per object.
	if s.Flushes != 1 || s.FlushedLines != 2 || s.Fences != 1 {
		t.Fatalf("FlushTransitive flushes/lines/fences = %d/%d/%d, want 1/2/1",
			s.Flushes, s.FlushedLines, s.Fences)
	}
	if s.Writes != 0 {
		t.Fatalf("FlushTransitive performed %d writes", s.Writes)
	}
}

func TestFlushTransitiveCycleAndDedup(t *testing.T) {
	rt, dev := fastpathRT(t)
	node := klass.MustInstance("fast/CNode", nil,
		klass.Field{Name: "next", Type: layout.FTRef, RefKlass: "fast/CNode"},
	)
	a, _ := rt.PNew(node, 0)
	b, _ := rt.PNew(node, 0)
	if err := rt.SetRef(a, "next", b); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetRef(b, "next", a); err != nil { // cycle
		t.Fatal(err)
	}
	dev.ResetStats()
	if err := rt.FlushTransitive(a); err != nil {
		t.Fatal(err)
	}
	s := dev.Stats()
	// Both 32-byte objects share one cache line: it must be flushed once.
	if s.FlushedLines != 1 || s.Fences != 1 {
		t.Fatalf("cycle flush lines/fences = %d/%d, want 1/1", s.FlushedLines, s.Fences)
	}
}

func TestFlushBatchSingleFence(t *testing.T) {
	rt, dev := fastpathRT(t)
	leaf := klass.MustInstance("fast/BLeaf", nil,
		klass.Field{Name: "v", Type: layout.FTLong},
	)
	refs := make([]layout.Ref, 8)
	for i := range refs {
		r, err := rt.PNew(leaf, 0)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = r
	}
	dev.ResetStats()
	if err := rt.FlushBatch(refs); err != nil {
		t.Fatal(err)
	}
	s := dev.Stats()
	// 8 contiguous 32-byte objects = 256 bytes = 4 lines, one merged
	// flush, one fence.
	if s.Flushes != 1 || s.FlushedLines != 4 || s.Fences != 1 {
		t.Fatalf("FlushBatch flushes/lines/fences = %d/%d/%d, want 1/4/1",
			s.Flushes, s.FlushedLines, s.Fences)
	}
}

func TestFastRefAccessAndBarrier(t *testing.T) {
	rt, _ := fastpathRT(t)
	k := personK(t)
	p, err := rt.PNew(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	nameF, err := rt.ResolveField(k, "name")
	if err != nil {
		t.Fatal(err)
	}
	idF := rt.MustResolveField(k, "id")

	s, err := rt.NewString("fastname", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetRefFast(p, nameF, s); err != nil {
		t.Fatal(err)
	}
	if got := rt.GetRefFast(p, nameF); got != s {
		t.Fatalf("GetRefFast = %#x, want %#x", uint64(got), uint64(s))
	}

	// SetRefFast through a non-ref handle is rejected.
	if err := rt.SetRefFast(p, idF, s); err == nil {
		t.Fatal("SetRefFast through a long handle succeeded")
	}

	// SetLongFast through a ref handle would bypass the write barrier:
	// it must panic. GetRefFast through a long handle likewise.
	mustPanic := func(what string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", what)
			}
		}()
		fn()
	}
	mustPanic("SetLongFast through ref handle", func() { rt.SetLongFast(p, nameF, 1) })
	mustPanic("GetRefFast through long handle", func() { rt.GetRefFast(p, idF) })

	// The write barrier still records NVM→DRAM references.
	vol, err := rt.NewString("volatile", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetRefFast(p, nameF, vol); err != nil {
		t.Fatal(err)
	}
	if slots := rt.NVMToVolSlots(); len(slots) != 1 {
		t.Fatalf("remset has %d slots, want 1", len(slots))
	}
	if err := rt.SetRefFast(p, nameF, layout.NullRef); err != nil {
		t.Fatal(err)
	}
	if slots := rt.NVMToVolSlots(); len(slots) != 0 {
		t.Fatalf("remset has %d slots after null store, want 0", len(slots))
	}

	// ResolveField on a missing field errors.
	if _, err := rt.ResolveField(k, "nope"); err == nil {
		t.Fatal("ResolveField of missing field succeeded")
	}

	// Handle introspection reflects the resolved class and layout.
	if idF.Offset() != layout.FieldOff(0) || idF.Type() != layout.FTLong {
		t.Fatalf("idF = offset %d type %s", idF.Offset(), idF.Type())
	}
	canon, _ := rt.Reg.Lookup(k.Name)
	if idF.KlassID() != canon.ID() {
		t.Fatalf("idF.KlassID() = %d, want %d", idF.KlassID(), canon.ID())
	}
}

func TestConcurrentFlushers(t *testing.T) {
	rt, _ := fastpathRT(t)
	node := klass.MustInstance("fast/PNode", nil,
		klass.Field{Name: "next", Type: layout.FTRef, RefKlass: "fast/PNode"},
	)
	refs := make([]layout.Ref, 32)
	var prev layout.Ref
	for i := range refs {
		r, err := rt.PNew(node, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.SetRef(r, "next", prev); err != nil {
			t.Fatal(err)
		}
		refs[i] = r
		prev = r
	}
	// FlushTransitive and FlushBatch share the runtime's traversal state;
	// concurrent committers must serialize, not interleave (run with
	// -race to see a regression).
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := rt.FlushTransitive(prev); err != nil {
					t.Error(err)
					return
				}
				if err := rt.FlushBatch(refs); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestBulkArrayCopies(t *testing.T) {
	rt, dev := fastpathRT(t)
	arr, err := rt.PNew(rt.Reg.PrimArray(layout.FTLong), 64)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]int64, 64)
	for i := range src {
		src[i] = int64(i * 3)
	}
	dev.ResetStats()
	if err := rt.WriteLongs(arr, 0, src); err != nil {
		t.Fatal(err)
	}
	// Klass read + length read + one bulk write.
	if s := dev.Stats(); s.Writes != 1 || s.Reads != 2 {
		t.Fatalf("WriteLongs stats = %+v", s)
	}
	dst := make([]int64, 64)
	dev.ResetStats()
	if err := rt.CopyLongs(arr, 0, dst); err != nil {
		t.Fatal(err)
	}
	if s := dev.Stats(); s.Reads != 3 {
		t.Fatalf("CopyLongs reads = %d, want 3", s.Reads)
	}
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], src[i])
		}
	}

	// Partial ranges and bounds.
	if err := rt.CopyLongs(arr, 60, make([]int64, 4)); err != nil {
		t.Fatal(err)
	}
	if err := rt.CopyLongs(arr, 60, make([]int64, 5)); err == nil {
		t.Fatal("out-of-range CopyLongs succeeded")
	}
	if err := rt.WriteLongs(arr, -1, src[:1]); err == nil {
		t.Fatal("negative-start WriteLongs succeeded")
	}

	// Byte arrays, volatile side included.
	barr, err := rt.New(rt.Reg.PrimArray(layout.FTByte), 32)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef0123456789abcdef")
	if err := rt.WriteBytes(barr, 0, payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 32)
	if err := rt.CopyBytes(barr, 0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("CopyBytes = %q", got)
	}
	// Type confusion is rejected.
	if err := rt.CopyLongs(barr, 0, dst[:1]); err == nil {
		t.Fatal("CopyLongs on byte array succeeded")
	}
}

func TestPNewMultiArrayKlassChain(t *testing.T) {
	rt, _ := fastpathRT(t)

	// Three-level object multi-array.
	p := personK(t)
	arr, err := rt.PNewMultiArray(p, []int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	k, err := rt.KlassOf(arr)
	if err != nil {
		t.Fatal(err)
	}
	if want := "[L[L[Lfast/Person;;;"; k.Name != want {
		t.Fatalf("outer klass = %s, want %s", k.Name, want)
	}
	mid, err := rt.GetElem(arr, 1)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := rt.GetElem(mid, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rt.ArrayLen(inner) != 4 {
		t.Fatalf("inner len = %d", rt.ArrayLen(inner))
	}

	// Two-level primitive multi-array: long[2][5] — the outer klass is an
	// array of long-arrays, not doubly wrapped.
	larr, err := rt.PNewMultiArray(rt.Reg.PrimArray(layout.FTLong), []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	k, err = rt.KlassOf(larr)
	if err != nil {
		t.Fatal(err)
	}
	if want := "[L[long;"; k.Name != want {
		t.Fatalf("outer prim-multi klass = %s, want %s", k.Name, want)
	}
	row, err := rt.GetElem(larr, 0)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := rt.KlassOf(row)
	if err != nil {
		t.Fatal(err)
	}
	if rk.Name != "[long" {
		t.Fatalf("row klass = %s, want [long", rk.Name)
	}
	if rt.ArrayLen(row) != 5 {
		t.Fatalf("row len = %d", rt.ArrayLen(row))
	}
}
