package core

import "espresso/internal/layout"

// Handles are the runtime's pinned root slots — the JNI-handle analog.
// Application code running outside the simulated heaps (Go code) holds a
// Handle rather than a raw Ref so collections can move the object and
// patch the slot.

// Handle names a root slot in the runtime's handle table. Handle
// operations run under the safepoint read lock plus the runtime lock:
// persistent collections patch the table inside their pauses, so a Get
// never races a compaction and always observes the patched referent,
// and rt.mu orders readers against a concurrent NewHandle growing the
// slice.
type Handle struct{ idx int }

// NewHandle registers ref as a GC root and returns its handle.
func (rt *Runtime) NewHandle(ref layout.Ref) Handle {
	rt.world.RLock()
	defer rt.world.RUnlock()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if n := len(rt.freeHandles); n > 0 {
		idx := rt.freeHandles[n-1]
		rt.freeHandles = rt.freeHandles[:n-1]
		rt.handles[idx] = ref
		return Handle{idx}
	}
	rt.handles = append(rt.handles, ref)
	return Handle{len(rt.handles) - 1}
}

// Get returns the handle's current referent (collections may have moved
// it since the handle was created). rt.mu additionally excludes a
// concurrent NewHandle's slice growth — the safepoint read lock is
// shared among mutators, so it alone cannot order a reader against the
// appender.
func (rt *Runtime) Get(h Handle) layout.Ref {
	rt.world.RLock()
	defer rt.world.RUnlock()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.handles[h.idx]
}

// SetHandle repoints a handle.
func (rt *Runtime) SetHandle(h Handle, ref layout.Ref) {
	rt.world.RLock()
	defer rt.world.RUnlock()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.handles[h.idx] = ref
}

// Release drops the handle, letting its referent die.
func (rt *Runtime) Release(h Handle) {
	rt.world.RLock()
	defer rt.world.RUnlock()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.handles[h.idx] = layout.NullRef
	rt.freeHandles = append(rt.freeHandles, h.idx)
}
