package core

import (
	"fmt"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/pheap"
)

// Mutator is a per-goroutine allocation context: the runtime analog of a
// JVM mutator thread with a thread-local allocation buffer. It pins the
// heap that was active when it was created and routes PNew through its
// own pheap.Allocator, so steady-state allocation touches no shared lock
// — the PLAB bump path persists only the mutator's own region top.
//
// A Mutator is not safe for concurrent use; give each goroutine its own.
// Class metadata work (Define, safety checks, constant-pool resolution,
// Klass-segment append) happens once per class per mutator, serialized
// on the runtime lock. At a persistent-GC safepoint the collector
// detaches every mutator's PLAB (pheap.PrepareForCollection); the world
// must be stopped then, exactly as for the shared allocation path.
type Mutator struct {
	rt       *Runtime
	h        *pheap.Heap
	alloc    *pheap.Allocator
	prepared map[*klass.Klass]bool
}

// NewMutator attaches a new mutator context to the active heap.
func (rt *Runtime) NewMutator() (*Mutator, error) {
	h := rt.active
	if h == nil {
		return nil, fmt.Errorf("core: no persistent heap loaded")
	}
	return &Mutator{
		rt:       rt,
		h:        h,
		alloc:    h.NewAllocator(),
		prepared: make(map[*klass.Klass]bool),
	}, nil
}

// Heap reports the persistent heap this mutator allocates into.
func (m *Mutator) Heap() *pheap.Heap { return m.h }

// AllocStats snapshots the underlying allocator's own-path counters.
func (m *Mutator) AllocStats() pheap.AllocatorStats { return m.alloc.Stats() }

// PNew allocates a persistent object of k in the mutator's heap — the
// pnew keyword on this mutator's thread. The first allocation of each
// class runs the shared metadata path (class definition, safety check,
// constant-pool resolution) under the runtime lock; after that the PLAB
// bump path is lock-free.
func (m *Mutator) PNew(k *klass.Klass, arrayLen int) (layout.Ref, error) {
	if !m.prepared[k] {
		if err := m.prepare(k); err != nil {
			return 0, err
		}
	}
	ref, err := m.alloc.Alloc(k, arrayLen)
	if err != nil {
		return 0, fmt.Errorf("core: pnew %s: %w", k.Name, err)
	}
	return ref, nil
}

func (m *Mutator) prepare(k *klass.Klass) error {
	rt := m.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, err := rt.Reg.Define(k); err != nil {
		return err
	}
	if rt.cfg.Safety == TypeBased {
		if err := rt.checkPersistentClosure(k); err != nil {
			return err
		}
	}
	if _, err := m.h.EnsureKlass(k); err != nil {
		return fmt.Errorf("core: pnew %s: %w", k.Name, err)
	}
	if kaddr, ok := m.h.KlassAddr(k); ok {
		rt.cp.Resolve(k.Name, kaddr)
	}
	m.prepared[k] = true
	return nil
}

// Release retires the mutator: its PLAB headroom and recycled hole go
// back to the heap's dispenser for the next mutator to continue filling.
func (m *Mutator) Release() { m.alloc.Release() }
