package core

import (
	"fmt"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/pheap"
	"espresso/internal/telemetry"
)

// Mutator is a per-goroutine allocation and mutation context: the runtime
// analog of a JVM mutator thread with a thread-local allocation buffer
// and a thread-local SATB barrier buffer. It pins the heap that was
// active when it was created and routes PNew through its own
// pheap.Allocator, so steady-state allocation touches no shared lock —
// the PLAB bump path persists only the mutator's own region top. Its
// reference stores feed the pre-write barrier through its own SATB
// buffer, so barrier records contend with nothing while the concurrent
// marker runs, and remembered-set maintenance through its own delta
// buffer, so the hot ref-store path takes no shared lock at all — the
// shared NVM→DRAM set learns about the stores at the next publication
// point (transaction commit, safepoint entry, or buffer overflow; see
// remset.go).
//
// A Mutator is not safe for concurrent use; give each goroutine its own.
// Class metadata work (Define, safety checks, constant-pool resolution,
// Klass-segment append) happens once per class per mutator, serialized
// on the runtime lock.
//
// Every Mutator operation is a safepoint interval: it runs under the
// runtime's safepoint read lock, and the concurrent collector's pauses
// wait for it to finish (the mutator handshake). References held across
// operations can be invalidated by a pause — compaction moves objects
// and patches only roots it can see (handles, named roots, heap and
// volatile slots), never Go locals. Wrap multi-step sequences in Do to
// pin the world for their duration:
//
//	m.Do(func() {
//		head, _ := m.GetRoot("list")
//		n, _ := m.PNew(node, 0)
//		m.SetRefFast(n, nextF, head)
//		m.SetRoot("list", n)
//	})
//
// Inside Do, use the Mutator's own accessors only — Runtime methods
// would re-acquire the safepoint lock and can deadlock against a
// collector waiting to pause.
type Mutator struct {
	rt       *Runtime
	h        *pheap.Heap
	alloc    *pheap.Allocator
	satb     *pheap.SATBBuffer
	rdelta   *pheap.RemsetDeltaBuffer
	cell     *telemetry.Cell // the allocator's counter cell, shared across this mutator's paths
	prepared map[*klass.Klass]bool
	locked   bool // inside Do: safepoint lock already held
}

// NewMutator attaches a new mutator context to the active heap.
func (rt *Runtime) NewMutator() (*Mutator, error) {
	h := rt.active
	if h == nil {
		return nil, fmt.Errorf("core: no persistent heap loaded")
	}
	alloc := h.NewAllocator()
	return &Mutator{
		rt:       rt,
		h:        h,
		alloc:    alloc,
		satb:     h.NewSATBBuffer(),
		rdelta:   h.NewRemsetDeltaBuffer(),
		cell:     alloc.TelemetryCell(),
		prepared: make(map[*klass.Klass]bool),
	}, nil
}

// Heap reports the persistent heap this mutator allocates into.
func (m *Mutator) Heap() *pheap.Heap { return m.h }

// AllocStats snapshots the underlying allocator's own-path counters.
func (m *Mutator) AllocStats() pheap.AllocatorStats { return m.alloc.Stats() }

// enter acquires the safepoint read lock unless Do already holds it.
// exit is its paired release. The flag is mutator-local state, touched
// only by the owning goroutine.
func (m *Mutator) enter() {
	if !m.locked {
		m.rt.world.RLock()
	}
}

func (m *Mutator) exit() {
	if !m.locked {
		m.rt.world.RUnlock()
	}
}

// Do runs fn with the world pinned: no GC pause can begin until fn
// returns, so references obtained inside fn stay valid throughout it.
// Keep fn short — it delays every collector pause (and any other caller
// of a stop-the-world operation). Do must not nest.
func (m *Mutator) Do(fn func()) {
	m.rt.world.RLock()
	m.locked = true
	defer func() {
		m.locked = false
		m.rt.world.RUnlock()
	}()
	fn()
}

// PNew allocates a persistent object of k in the mutator's heap — the
// pnew keyword on this mutator's thread. The first allocation of each
// class runs the shared metadata path (class definition, safety check,
// constant-pool resolution) under the runtime lock; after that the PLAB
// bump path is lock-free.
func (m *Mutator) PNew(k *klass.Klass, arrayLen int) (layout.Ref, error) {
	m.enter()
	defer m.exit()
	if !m.prepared[k] {
		if err := m.prepare(k); err != nil {
			return 0, err
		}
	}
	ref, err := m.alloc.Alloc(k, arrayLen)
	if err != nil {
		return 0, fmt.Errorf("core: pnew %s: %w", k.Name, err)
	}
	return ref, nil
}

func (m *Mutator) prepare(k *klass.Klass) error {
	rt := m.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, err := rt.Reg.Define(k); err != nil {
		return err
	}
	if rt.cfg.Safety == TypeBased {
		if err := rt.checkPersistentClosure(k); err != nil {
			return err
		}
	}
	if _, err := m.h.EnsureKlass(k); err != nil {
		return fmt.Errorf("core: pnew %s: %w", k.Name, err)
	}
	if kaddr, ok := m.h.KlassAddr(k); ok {
		rt.cp.Resolve(k.Name, kaddr)
	}
	m.prepared[k] = true
	return nil
}

// SetRef writes a named reference field through the write barrier,
// recording SATB entries in this mutator's own buffer.
func (m *Mutator) SetRef(ref layout.Ref, field string, val layout.Ref) error {
	m.enter()
	defer m.exit()
	return m.rt.setRefNamed(ref, field, val, m.satb, m.rdelta, m.cell)
}

// SetRefFast writes a reference field through a resolved handle, with
// the full write barrier routed through this mutator's SATB buffer.
func (m *Mutator) SetRefFast(ref layout.Ref, f FieldRef, val layout.Ref) error {
	m.enter()
	defer m.exit()
	return m.rt.setRefFast(ref, f, val, m.satb, m.rdelta, m.cell)
}

// SetElem stores element i of a reference array through the write
// barrier, SATB records going to this mutator's buffer.
func (m *Mutator) SetElem(arr layout.Ref, i int, val layout.Ref) error {
	m.enter()
	defer m.exit()
	return m.rt.setElem(arr, i, val, m.satb, m.rdelta, m.cell)
}

// GetElem reads element i of a reference array on this mutator's thread
// (usable inside Do, unlike the Runtime accessor).
func (m *Mutator) GetElem(arr layout.Ref, i int) (layout.Ref, error) {
	m.enter()
	defer m.exit()
	if err := m.rt.boundsCheck(arr, i); err != nil {
		return 0, err
	}
	return layout.Ref(m.rt.getWord(arr, layout.ElemOff(layout.FTRef, i))), nil
}

// GetRefFast reads a reference field through a resolved handle.
func (m *Mutator) GetRefFast(ref layout.Ref, f FieldRef) layout.Ref {
	m.enter()
	defer m.exit()
	return m.rt.getRefFast(ref, f)
}

// GetLongFast reads a primitive field through a resolved handle.
func (m *Mutator) GetLongFast(ref layout.Ref, f FieldRef) int64 {
	m.enter()
	defer m.exit()
	return m.rt.getLongFast(ref, f)
}

// SetLongFast writes a primitive field through a resolved handle.
func (m *Mutator) SetLongFast(ref layout.Ref, f FieldRef, v int64) {
	m.enter()
	defer m.exit()
	m.rt.setLongFast(ref, f, v)
}

// GetRoot fetches a named root (Table 1: getRoot) on this mutator's
// thread.
func (m *Mutator) GetRoot(name string) (layout.Ref, bool) {
	m.enter()
	defer m.exit()
	return m.rt.getRoot(name)
}

// SetRoot names ref as a root (Table 1: setRoot) on this mutator's
// thread.
func (m *Mutator) SetRoot(name string, ref layout.Ref) error {
	m.enter()
	defer m.exit()
	return m.rt.setRoot(name, ref)
}

// PendingRemsetDeltas reports how many remembered-set deltas this
// mutator has recorded but not yet published (diagnostics, tests).
func (m *Mutator) PendingRemsetDeltas() int { return m.rdelta.Pending() }

// Release retires the mutator: its PLAB headroom and recycled hole go
// back to the heap's dispenser for the next mutator to continue filling,
// its SATB buffer is unregistered (pending barrier records are handed to
// the heap's shared buffer, so none are lost mid-mark), and its
// remembered-set delta buffer is unregistered after publishing anything
// still pending. Like every mutator operation it is a safepoint interval.
func (m *Mutator) Release() {
	m.enter()
	defer m.exit()
	m.alloc.Release()
	m.cell = nil // released with the allocator; counts folded into the registry
	m.h.ReleaseSATBBuffer(m.satb)
	m.satb = nil
	m.h.ReleaseRemsetDeltaBuffer(m.rdelta)
	m.rdelta = nil
}
