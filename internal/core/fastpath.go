package core

import (
	"encoding/binary"
	"fmt"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/pheap"
	"espresso/internal/telemetry"
)

// The resolved-accessor fast path. GetLong/SetRef and friends re-resolve
// the klass (a device read of the klass word) and the field name (a map
// lookup) on every call — per-API-call overhead the paper's direct object
// access is supposed to remove. A FieldRef is resolved once, like a
// resolved constant-pool entry in compiled bytecode; accesses through it
// cost one device word op plus the write barrier, nothing else.

// FieldRef is a resolved field handle: klass identity, byte offset, and
// field type, fixed at resolve time. The zero FieldRef is invalid.
//
// A FieldRef carries no object identity: like a field offset baked into
// JIT-compiled code, using it against an object of an unrelated class
// reads whichever slot sits at that offset. Resolve against the class (or
// a superclass) of the objects it will access.
type FieldRef struct {
	klassID int
	boff    int
	ftype   layout.FieldType
}

// Offset reports the field's byte offset within the object.
func (f FieldRef) Offset() int { return f.boff }

// Type reports the field's declared type.
func (f FieldRef) Type() layout.FieldType { return f.ftype }

// KlassID reports the registry slot of the class the handle was
// resolved against — the handle's provenance, for diagnostics and for
// callers that cache handles per class.
func (f FieldRef) KlassID() int { return f.klassID }

// ResolveField resolves a named field of k to a reusable handle. The
// class is defined in the registry as a side effect, exactly as the slow
// path does on first touch.
func (rt *Runtime) ResolveField(k *klass.Klass, name string) (FieldRef, error) {
	canon, err := rt.Reg.Define(k)
	if err != nil {
		return FieldRef{}, err
	}
	rf, ok := canon.Resolve(name)
	if !ok {
		return FieldRef{}, fmt.Errorf("core: class %s has no field %q", canon.Name, name)
	}
	return FieldRef{klassID: rf.KlassID, boff: rf.Off, ftype: rf.Type}, nil
}

// MustResolveField is ResolveField for static handle tables; panics on
// error.
func (rt *Runtime) MustResolveField(k *klass.Klass, name string) FieldRef {
	f, err := rt.ResolveField(k, name)
	if err != nil {
		panic(err)
	}
	return f
}

// GetLongFast reads a primitive field through a resolved handle: one
// device word read, no name map, no klass read, no error allocation.
// Reading a ref-typed field this way is permitted (it returns the raw
// slot bits; reads need no barrier).
func (rt *Runtime) GetLongFast(ref layout.Ref, f FieldRef) int64 {
	rt.world.RLock()
	defer rt.world.RUnlock()
	return rt.getLongFast(ref, f)
}

func (rt *Runtime) getLongFast(ref layout.Ref, f FieldRef) int64 {
	return int64(rt.getWord(ref, f.boff))
}

// SetLongFast writes a primitive field through a resolved handle. A
// ref-typed handle is rejected with a panic — a raw store to a
// reference slot would bypass the write barrier (remembered sets,
// type-based safety, SATB), the JVM-verifier-error analog.
func (rt *Runtime) SetLongFast(ref layout.Ref, f FieldRef, v int64) {
	rt.world.RLock()
	defer rt.world.RUnlock()
	rt.setLongFast(ref, f, v)
}

func (rt *Runtime) setLongFast(ref layout.Ref, f FieldRef, v int64) {
	if f.ftype == layout.FTRef {
		panic("core: SetLongFast through a ref field handle; use SetRefFast")
	}
	rt.setWord(ref, f.boff, uint64(v))
}

// GetRefFast reads a reference field through a resolved handle. The
// handle's ref-ness is enforced here (one compare), so no klass read is
// needed.
func (rt *Runtime) GetRefFast(ref layout.Ref, f FieldRef) layout.Ref {
	rt.world.RLock()
	defer rt.world.RUnlock()
	return rt.getRefFast(ref, f)
}

func (rt *Runtime) getRefFast(ref layout.Ref, f FieldRef) layout.Ref {
	if f.ftype != layout.FTRef {
		panic("core: GetRefFast through a " + f.ftype.String() + " field handle")
	}
	return layout.Ref(rt.getWord(ref, f.boff))
}

// SetRefFast writes a reference field through a resolved handle, keeping
// the full write barrier (remembered sets, type-based safety, SATB).
// Remembered-set maintenance is a mutator-local delta append — no shared
// lock, no shared cache line; route stores through a Mutator to give the
// append a truly private buffer.
func (rt *Runtime) SetRefFast(ref layout.Ref, f FieldRef, val layout.Ref) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	return rt.setRefFast(ref, f, val, nil, nil, nil)
}

func (rt *Runtime) setRefFast(ref layout.Ref, f FieldRef, val layout.Ref, satb *pheap.SATBBuffer, rdelta *pheap.RemsetDeltaBuffer, cell *telemetry.Cell) error {
	if f.ftype != layout.FTRef {
		return fmt.Errorf("core: SetRefFast through a %s field handle", f.ftype)
	}
	return rt.storeRef(ref, f.boff, val, satb, rdelta, cell)
}

// --- Bulk primitive-array transfer ---
//
// Element loops over GetLongElem/SetLongElem cost one accounted device
// op per element. These copies move the whole span with one device read
// or write, making the cost proportional to bytes, not calls.

// bulkCheck validates arr as a t-typed array covering [start, start+n)
// and returns the byte offset of element start.
func (rt *Runtime) bulkCheck(arr layout.Ref, t layout.FieldType, start, n int) (int, error) {
	k, err := rt.klassOf(arr)
	if err != nil {
		return 0, err
	}
	if !k.IsArray() || k.ElemType() != t {
		return 0, fmt.Errorf("core: %s is not a %s array class", k.Name, t)
	}
	if l := rt.arrayLen(arr); start < 0 || n < 0 || start+n > l {
		return 0, fmt.Errorf("core: range [%d,%d) out of bounds for length %d", start, start+n, l)
	}
	return layout.ElemOff(t, start), nil
}

// CopyLongs reads len(dst) elements of a long array starting at start
// with a single bulk device read.
func (rt *Runtime) CopyLongs(arr layout.Ref, start int, dst []int64) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	boff, err := rt.bulkCheck(arr, layout.FTLong, start, len(dst))
	if err != nil || len(dst) == 0 {
		return err
	}
	b := rt.bulkBytes(arr, boff, len(dst)*8)
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return nil
}

// WriteLongs stores src into a long array starting at element start with
// a single bulk device write.
func (rt *Runtime) WriteLongs(arr layout.Ref, start int, src []int64) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	boff, err := rt.bulkCheck(arr, layout.FTLong, start, len(src))
	if err != nil || len(src) == 0 {
		return err
	}
	if rt.vol.Contains(arr) {
		b := rt.vol.Bytes(arr, boff, len(src)*8)
		for i, v := range src {
			binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
		}
		return nil
	}
	b := make([]byte, len(src)*8)
	for i, v := range src {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
	}
	rt.heapOf(arr).WriteBytesAt(arr, boff, b)
	return nil
}

// CopyBytes reads len(dst) elements of a byte array starting at start
// with a single bulk device read.
func (rt *Runtime) CopyBytes(arr layout.Ref, start int, dst []byte) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	boff, err := rt.bulkCheck(arr, layout.FTByte, start, len(dst))
	if err != nil || len(dst) == 0 {
		return err
	}
	copy(dst, rt.bulkBytes(arr, boff, len(dst)))
	return nil
}

// WriteBytes stores src into a byte array starting at element start with
// a single bulk device write.
func (rt *Runtime) WriteBytes(arr layout.Ref, start int, src []byte) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	boff, err := rt.bulkCheck(arr, layout.FTByte, start, len(src))
	if err != nil || len(src) == 0 {
		return err
	}
	if rt.vol.Contains(arr) {
		copy(rt.vol.Bytes(arr, boff, len(src)), src)
		return nil
	}
	rt.heapOf(arr).WriteBytesAt(arr, boff, src)
	return nil
}

// bulkBytes returns n bytes at boff of the object at ref. For volatile
// objects it is a window over the backing store; for persistent objects
// it is one accounted device read into a fresh buffer.
func (rt *Runtime) bulkBytes(ref layout.Ref, boff, n int) []byte {
	if rt.vol.Contains(ref) {
		return rt.vol.Bytes(ref, boff, n)
	}
	b := make([]byte, n)
	rt.heapOf(ref).ReadBytesAt(ref, boff, b)
	return b
}
