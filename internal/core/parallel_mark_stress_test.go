package core

import (
	"sync"
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
)

// TestParallelMarkStress is TestSATBMarkStress's worker-pool arm: the
// same mutator churn (prepend + unlink through the SATB barrier), but
// every collection runs with an explicit 4-worker marking pool, so the
// work-stealing deques, the shared CAS-claimed mark bitmap, the
// per-worker SATB/remset shard drains, and the parallel compaction
// passes all race against live mutator stores. Run under -race in CI,
// it proves the pool adds no data races over the single-worker marker;
// the model check proves it loses no reachable objects either.
func TestParallelMarkStress(t *testing.T) {
	rt, err := NewRuntime(Config{PJHDataSize: 48 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.CreateHeap("pmark", 0); err != nil {
		t.Fatal(err)
	}
	node := klass.MustInstance("pmark/Node", nil,
		klass.Field{Name: "id", Type: layout.FTLong},
		klass.Field{Name: "next", Type: layout.FTRef, RefKlass: "pmark/Node"},
	)
	idF := rt.MustResolveField(node, "id")
	nextF := rt.MustResolveField(node, "next")

	const goroutines = 6
	const iters = 300
	const gcWorkers = 4
	rootName := func(g int) string { return "chain" + string(rune('A'+g)) }

	models := make([][]int64, goroutines) // surviving ids, head first
	var wg sync.WaitGroup
	stopGC := make(chan struct{})

	gcDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stopGC:
				gcDone <- nil
				return
			default:
			}
			if _, err := rt.PersistentGCConcurrentWorkers("pmark", gcWorkers); err != nil {
				gcDone <- err
				return
			}
		}
	}()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m, err := rt.NewMutator()
			if err != nil {
				t.Errorf("mutator %d: %v", g, err)
				return
			}
			defer m.Release()
			name := rootName(g)
			for i := 0; i < iters; i++ {
				id := int64(g*1_000_000 + i)
				var opErr error
				m.Do(func() {
					head, _ := m.GetRoot(name)
					n, err := m.PNew(node, 0)
					if err != nil {
						opErr = err
						return
					}
					m.SetLongFast(n, idF, id)
					if err := m.SetRefFast(n, nextF, head); err != nil {
						opErr = err
						return
					}
					opErr = m.SetRoot(name, n)
				})
				if opErr != nil {
					t.Errorf("mutator %d iter %d: %v", g, i, opErr)
					return
				}
				models[g] = append([]int64{id}, models[g]...)

				if i%3 == 2 && len(models[g]) >= 2 {
					// Unlink the second node: the overwrite the SATB barrier
					// must report to whichever worker owns the shard.
					m.Do(func() {
						head, _ := m.GetRoot(name)
						second := m.GetRefFast(head, nextF)
						if second == layout.NullRef {
							return
						}
						third := m.GetRefFast(second, nextF)
						opErr = m.SetRefFast(head, nextF, third)
					})
					if opErr != nil {
						t.Errorf("mutator %d unlink %d: %v", g, i, opErr)
						return
					}
					models[g] = append(models[g][:1], models[g][2:]...)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stopGC)
	if err := <-gcDone; err != nil {
		t.Fatalf("parallel concurrent GC: %v", err)
	}
	if t.Failed() {
		t.FailNow()
	}

	verify := func(when string) {
		for g := 0; g < goroutines; g++ {
			ref, ok := rt.GetRoot(rootName(g))
			if !ok {
				t.Fatalf("%s: chain root %d missing", when, g)
			}
			for i, wantID := range models[g] {
				if ref == layout.NullRef {
					t.Fatalf("%s: chain %d truncated at %d/%d — a reachable object was reclaimed",
						when, g, i, len(models[g]))
				}
				if got := rt.GetLongFast(ref, idF); got != wantID {
					t.Fatalf("%s: chain %d node %d: id %d, want %d", when, g, i, got, wantID)
				}
				ref = rt.GetRefFast(ref, nextF)
			}
			if ref != layout.NullRef {
				t.Fatalf("%s: chain %d has trailing nodes beyond the model", when, g)
			}
		}
	}
	verify("after churn")

	// Quiescent cycles at both worker counts must agree with the models
	// and with each other (the workers axis is byte-identical on a
	// quiescent heap, so graph equality is the weakest consequence).
	if _, err := rt.PersistentGCConcurrentWorkers("pmark", gcWorkers); err != nil {
		t.Fatal(err)
	}
	verify("after final parallel GC")
	if _, err := rt.PersistentGCConcurrentWorkers("pmark", 1); err != nil {
		t.Fatal(err)
	}
	verify("after final single-worker GC")
	if _, err := rt.PersistentGC("pmark"); err != nil {
		t.Fatal(err)
	}
	verify("after final STW GC")
}
