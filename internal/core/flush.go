package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
)

// Application-level persistence primitives (paper §3.5). The pnew keyword
// only guarantees heap-*metadata* crash consistency; applications persist
// their own data with these field/array/object flushes, each at most
// 8 bytes for the fine-grained forms (atomicity) and each followed by an
// sfence (ordering).

// FlushField persists one named field of a persistent object — the
// Field.flush(obj) reflection API of Figure 12.
func (rt *Runtime) FlushField(obj layout.Ref, field string) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	h := rt.heapOf(obj)
	if h == nil {
		return fmt.Errorf("core: flush of a non-persistent object")
	}
	boff, _, err := rt.fieldOff(obj, field)
	if err != nil {
		return err
	}
	h.FlushRange(obj, boff, layout.WordSize)
	return nil
}

// FlushArrayElem persists element i of a persistent array — the
// Array.flush(z, i) API of Figure 12.
func (rt *Runtime) FlushArrayElem(arr layout.Ref, i int) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	h := rt.heapOf(arr)
	if h == nil {
		return fmt.Errorf("core: flush of a non-persistent array")
	}
	k, err := rt.klassOf(arr)
	if err != nil {
		return err
	}
	if !k.IsArray() {
		return fmt.Errorf("core: %s is not an array class", k.Name)
	}
	if err := rt.boundsCheck(arr, i); err != nil {
		return err
	}
	et := k.ElemType()
	h.FlushRange(arr, layout.ElemOff(et, i), et.ElemSize())
	return nil
}

// FlushObject persists every data field of a persistent object with a
// single trailing sfence — the coarse-grained Object.flush for scenarios
// where persist order among the fields does not matter.
func (rt *Runtime) FlushObject(obj layout.Ref) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	h := rt.heapOf(obj)
	if h == nil {
		return fmt.Errorf("core: flush of a non-persistent object")
	}
	k, err := rt.klassOf(obj)
	if err != nil {
		return err
	}
	n := 0
	if k.IsArray() {
		n = rt.arrayLen(obj)
	}
	h.FlushRange(obj, 0, k.SizeOf(n))
	return nil
}

// flushState is the reusable traversal state behind FlushTransitive and
// FlushBatch: a work stack and visited set (no recursion, no per-call
// map churn after warmup), a scratch buffer for bulk object reads, and a
// per-heap line-aligned range accumulator so each cache line is flushed
// once per call with one trailing fence per device.
type flushState struct {
	stack  []layout.Ref
	seen   map[layout.Ref]struct{}
	buf    []byte
	ranges map[*pheap.Heap][]nvm.Range
}

func (fw *flushState) reset() {
	fw.stack = fw.stack[:0]
	if fw.seen == nil {
		fw.seen = make(map[layout.Ref]struct{})
	} else {
		clear(fw.seen)
	}
	if fw.ranges == nil {
		fw.ranges = make(map[*pheap.Heap][]nvm.Range)
	} else {
		for h, rs := range fw.ranges {
			fw.ranges[h] = rs[:0]
		}
	}
}

// addExtent records an object extent, widened to cache-line boundaries.
func (fw *flushState) addExtent(h *pheap.Heap, off, size int) {
	lo := off &^ (nvm.LineSize - 1)
	hi := (off + size + nvm.LineSize - 1) &^ (nvm.LineSize - 1)
	fw.ranges[h] = append(fw.ranges[h], nvm.Range{Off: lo, N: hi - lo})
}

// flushAll merges the accumulated line ranges per heap and issues one
// coalesced FlushBatch (single trailing fence) per device. Overlapping
// and adjacent extents collapse, so no line is written back twice.
func (fw *flushState) flushAll() {
	for h, rs := range fw.ranges {
		if len(rs) == 0 {
			continue
		}
		sorted := true
		for i := 1; i < len(rs); i++ {
			if rs[i].Off < rs[i-1].Off {
				sorted = false
				break
			}
		}
		if !sorted {
			sort.Slice(rs, func(i, j int) bool { return rs[i].Off < rs[j].Off })
		}
		merged := rs[:1]
		for _, r := range rs[1:] {
			last := &merged[len(merged)-1]
			if r.Off <= last.Off+last.N {
				if end := r.Off + r.N; end > last.Off+last.N {
					last.N = end - last.Off
				}
			} else {
				merged = append(merged, r)
			}
		}
		h.Device().FlushBatch(merged)
		fw.ranges[h] = rs[:0]
	}
}

// scanObject decodes the object at ref with at most two bulk device
// reads (header, then body when it can hold references), records its
// flush extent, and pushes its outgoing persistent references.
func (rt *Runtime) scanObject(fw *flushState, h *pheap.Heap, ref layout.Ref) error {
	if cap(fw.buf) < layout.ArrayHdrBytes {
		fw.buf = make([]byte, 4096)
	}
	hdr := fw.buf[:layout.ArrayHdrBytes]
	h.ReadBytesAt(ref, 0, hdr)
	kaddr := layout.Ref(binary.LittleEndian.Uint64(hdr[layout.KlassWordOff:]))
	k, ok := h.KlassByAddr(kaddr)
	if !ok {
		return fmt.Errorf("core: object %#x has dangling klass word %#x", uint64(ref), uint64(kaddr))
	}
	n := 0
	if k.IsArray() {
		n = int(binary.LittleEndian.Uint64(hdr[layout.ArrayLenOff:]))
	}
	size := k.SizeOf(n)
	fw.addExtent(h, h.OffOf(ref), size)

	hasRefs := k.Kind == klass.KindObjArray && n > 0
	if k.Kind == klass.KindInstance {
		for _, f := range k.Fields() {
			if f.Type == layout.FTRef {
				hasRefs = true
				break
			}
		}
	}
	if !hasRefs {
		return nil
	}
	if cap(fw.buf) < size {
		fw.buf = make([]byte, size)
	}
	body := fw.buf[:size]
	h.ReadBytesAt(ref, 0, body)
	// Reuse the canonical ref-slot enumeration over the bulk buffer.
	pheap.RefSlots(bufReader{body}, 0, k, func(slotBoff int) {
		// Slot values may carry low link-state tag bits (layout.RefTagMask,
		// the persistent index's marks); strip them before treating the
		// value as an address.
		child := layout.UntagRef(layout.Ref(binary.LittleEndian.Uint64(body[slotBoff:])))
		if child != layout.NullRef {
			fw.stack = append(fw.stack, child)
		}
	})
	return nil
}

// bufReader adapts an object's bulk-read bytes to the ReadU64 interface
// pheap.RefSlots walks.
type bufReader struct{ b []byte }

func (r bufReader) ReadU64(off int) uint64 { return binary.LittleEndian.Uint64(r.b[off:]) }

// FlushTransitive persists obj and everything persistent reachable from
// it — the "advanced feature ... easily implemented with those basic
// methods" the paper mentions. The traversal is iterative over a
// reusable work stack, objects are parsed with bulk reads, and the
// covered cache lines are deduplicated and flushed once with a single
// trailing fence per device — cost proportional to bytes reached, not
// to references followed. Concurrent flushers serialize on the shared
// traversal state.
func (rt *Runtime) FlushTransitive(obj layout.Ref) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	rt.flushMu.Lock()
	defer rt.flushMu.Unlock()
	fw := &rt.flushWork
	fw.reset()
	fw.stack = append(fw.stack, obj)
	for len(fw.stack) > 0 {
		ref := fw.stack[len(fw.stack)-1]
		fw.stack = fw.stack[:len(fw.stack)-1]
		if _, ok := fw.seen[ref]; ok {
			continue
		}
		h := rt.heapOf(ref)
		if h == nil {
			continue
		}
		fw.seen[ref] = struct{}{}
		if err := rt.scanObject(fw, h, ref); err != nil {
			return err
		}
	}
	fw.flushAll()
	return nil
}

// FlushBatch persists the data of several persistent objects with
// coalesced line flushes and a single trailing fence per device — the
// bulk counterpart of FlushObject for commit paths that persist many
// objects at once. Concurrent flushers serialize on the shared
// traversal state.
func (rt *Runtime) FlushBatch(refs []layout.Ref) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	rt.flushMu.Lock()
	defer rt.flushMu.Unlock()
	fw := &rt.flushWork
	fw.reset()
	for _, ref := range refs {
		h := rt.heapOf(ref)
		if h == nil {
			return fmt.Errorf("core: flush of a non-persistent object %#x", uint64(ref))
		}
		_, size, err := h.SizeOfObjectAt(h.OffOf(ref))
		if err != nil {
			return err
		}
		fw.addExtent(h, h.OffOf(ref), size)
	}
	fw.flushAll()
	return nil
}
