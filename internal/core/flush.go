package core

import (
	"fmt"

	"espresso/internal/layout"
)

// Application-level persistence primitives (paper §3.5). The pnew keyword
// only guarantees heap-*metadata* crash consistency; applications persist
// their own data with these field/array/object flushes, each at most
// 8 bytes for the fine-grained forms (atomicity) and each followed by an
// sfence (ordering).

// FlushField persists one named field of a persistent object — the
// Field.flush(obj) reflection API of Figure 12.
func (rt *Runtime) FlushField(obj layout.Ref, field string) error {
	h := rt.heapOf(obj)
	if h == nil {
		return fmt.Errorf("core: flush of a non-persistent object")
	}
	boff, _, err := rt.fieldOff(obj, field)
	if err != nil {
		return err
	}
	h.FlushRange(obj, boff, layout.WordSize)
	return nil
}

// FlushArrayElem persists element i of a persistent array — the
// Array.flush(z, i) API of Figure 12.
func (rt *Runtime) FlushArrayElem(arr layout.Ref, i int) error {
	h := rt.heapOf(arr)
	if h == nil {
		return fmt.Errorf("core: flush of a non-persistent array")
	}
	k, err := rt.KlassOf(arr)
	if err != nil {
		return err
	}
	if !k.IsArray() {
		return fmt.Errorf("core: %s is not an array class", k.Name)
	}
	if err := rt.boundsCheck(arr, i); err != nil {
		return err
	}
	et := k.ElemType()
	h.FlushRange(arr, layout.ElemOff(et, i), et.ElemSize())
	return nil
}

// FlushObject persists every data field of a persistent object with a
// single trailing sfence — the coarse-grained Object.flush for scenarios
// where persist order among the fields does not matter.
func (rt *Runtime) FlushObject(obj layout.Ref) error {
	h := rt.heapOf(obj)
	if h == nil {
		return fmt.Errorf("core: flush of a non-persistent object")
	}
	k, err := rt.KlassOf(obj)
	if err != nil {
		return err
	}
	n := 0
	if k.IsArray() {
		n = rt.arrayLen(obj)
	}
	h.FlushRange(obj, 0, k.SizeOf(n))
	return nil
}

// FlushTransitive persists obj and everything persistent reachable from
// it — the "advanced feature ... easily implemented with those basic
// methods" the paper mentions.
func (rt *Runtime) FlushTransitive(obj layout.Ref) error {
	seen := map[layout.Ref]bool{}
	var walk func(ref layout.Ref) error
	walk = func(ref layout.Ref) error {
		if ref == layout.NullRef || seen[ref] || rt.heapOf(ref) == nil {
			return nil
		}
		seen[ref] = true
		if err := rt.FlushObject(ref); err != nil {
			return err
		}
		k, err := rt.KlassOf(ref)
		if err != nil {
			return err
		}
		h := rt.heapOf(ref)
		var refs []layout.Ref
		off := h.OffOf(ref)
		for i, f := range k.Fields() {
			if f.Type == layout.FTRef {
				refs = append(refs, layout.Ref(h.Device().ReadU64(off+layout.FieldOff(i))))
			}
		}
		if k.IsArray() && k.ElemType() == layout.FTRef {
			for i := 0; i < rt.arrayLen(ref); i++ {
				refs = append(refs, layout.Ref(h.Device().ReadU64(off+layout.ElemOff(layout.FTRef, i))))
			}
		}
		for _, r := range refs {
			if err := walk(r); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(obj)
}
