package core

import (
	"sync"

	"espresso/internal/layout"
)

// remset is the persistent-to-volatile remembered set: absolute addresses
// of NVM slots currently holding DRAM references. It is sharded by slot
// address so concurrent mutators storing refs into different objects do
// not serialize on one lock — the write barrier is on every SetRef, and a
// global mutex there is exactly the kind of per-call cost the fast path
// removes.
//
// Stop-the-world operations (GC root scans, rebuilds) still see a
// consistent view: they run with mutators stopped, as in the JVM.
const remsetShards = 64

type remset struct {
	shards [remsetShards]remsetShard
}

type remsetShard struct {
	mu sync.Mutex
	m  map[layout.Ref]struct{}
}

func newRemset() *remset {
	r := &remset{}
	for i := range r.shards {
		r.shards[i].m = make(map[layout.Ref]struct{})
	}
	return r
}

// shard picks the shard for a slot address. Slots are word-aligned, so
// the low three bits carry no entropy; a Fibonacci mix spreads nearby
// slots (fields of one object) across shards.
func (r *remset) shard(slot layout.Ref) *remsetShard {
	h := uint64(slot) * 0x9e3779b97f4a7c15
	return &r.shards[h>>(64-6)]
}

// Add records that slot holds a volatile reference.
func (r *remset) Add(slot layout.Ref) {
	s := r.shard(slot)
	s.mu.Lock()
	s.m[slot] = struct{}{}
	s.mu.Unlock()
}

// Remove forgets slot. Removing an absent slot is a no-op.
func (r *remset) Remove(slot layout.Ref) {
	s := r.shard(slot)
	s.mu.Lock()
	delete(s.m, slot)
	s.mu.Unlock()
}

// Empty reports whether no slot is recorded in any shard.
func (r *remset) Empty() bool {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n := len(s.m)
		s.mu.Unlock()
		if n > 0 {
			return false
		}
	}
	return true
}

// Snapshot returns every recorded slot (order unspecified).
func (r *remset) Snapshot() []layout.Ref {
	var out []layout.Ref
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for slot := range s.m {
			out = append(out, slot)
		}
		s.mu.Unlock()
	}
	return out
}

// RemoveIf deletes every slot for which pred returns true.
func (r *remset) RemoveIf(pred func(layout.Ref) bool) {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for slot := range s.m {
			if pred(slot) {
				delete(s.m, slot)
			}
		}
		s.mu.Unlock()
	}
}
