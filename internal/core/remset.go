package core

import (
	"sync"

	"espresso/internal/layout"
	"espresso/internal/pheap"
)

// The persistent-to-volatile remembered set and its write-combining
// barrier lifecycle.
//
// The shared set (remset below) holds the absolute addresses of NVM slots
// currently believed to hold DRAM references. It is consulted by the
// volatile collectors (those slots are scavenge roots and get patched
// when DRAM objects move), rebuilt by the persistent collector after
// compaction, and policed by the safety levels. It is sharded, but since
// PR 5 no mutator-hot path touches it directly: a shard lock per
// reference store was the last shared-memory contention point left on the
// mutator fast path after PLABs and the lock-free index.
//
// The lifecycle of one reference store is instead:
//
//	store        core.storeRef classifies the new value (volatile or
//	             not) and appends a RemsetDelta{slot, add} to a buffer
//	             owned by the storing mutator (pheap.RemsetDeltaBuffer,
//	             the same owner-append/collector-drain shape as the SATB
//	             buffers; stores outside a Mutator use the heap's shared
//	             default buffer). The append happens before the device
//	             store, preserving the eager path's ordering.
//
//	delta        The record sits in the mutator-local buffer — invisible
//	             to the shared set, touching no shared cache line.
//
//	publication  Deltas merge into the shared set at exactly three
//	             points:
//	               1. transaction commit — ptx.Tx.Commit publishes the
//	                  transaction's batch (Abort replays corrective
//	                  records for the rolled-back slots instead, exactly
//	                  like it replays SATB barrier records, so the set
//	                  returns to its pre-tx contents);
//	               2. safepoint entry — pheap.PrepareForCollection drains
//	                  every registered buffer with the world stopped, so
//	                  both persistent collectors see a complete set
//	                  before marking/compaction, and the runtime drains
//	                  before every volatile collection for the same
//	                  reason;
//	               3. buffer overflow — the owner publishes its own
//	                  buffer past RemsetDeltaOverflow records, amortized.
//
// A delta is a hint, not an instruction: membership is RE-DERIVED from
// the slot's current device value when the delta is applied (see
// applyRemsetDeltas). Within one buffer deltas arrive in program order,
// but one slot can be stored through two buffers (a Runtime-routed store
// and a Mutator-routed one, or a ptx transaction), and buffers drain in
// registration order — trusting the hints alone could let an early
// remove erase a later add and drop a live scavenge root. Re-derivation
// makes publication order-independent and idempotent: after any full
// drain the set equals exactly {slots whose current value is volatile}
// among slots that ever saw a delta. The hints still pay their way by
// gating the device read — a remove hint for a slot the set does not
// contain is dropped without touching the device, so workloads that
// never store a volatile reference (the common case) publish with zero
// device traffic, matching the eager path's cost.
//
// Between publications the shared set can be stale for slots with
// pending deltas; every consumer therefore publishes first (see
// remsetSink and the publishRemsetDeltas calls in gc.go).

// remset is sharded by slot address so publication batches from different
// mutators do not serialize on one lock, and so the (rare) bufferless
// paths stay cheap.
const remsetShards = 64

type remset struct {
	shards [remsetShards]remsetShard
}

type remsetShard struct {
	mu sync.Mutex
	m  map[layout.Ref]struct{}
}

func newRemset() *remset {
	r := &remset{}
	for i := range r.shards {
		r.shards[i].m = make(map[layout.Ref]struct{})
	}
	return r
}

// shard picks the shard for a slot address. Slots are word-aligned, so
// the low three bits carry no entropy; a Fibonacci mix spreads nearby
// slots (fields of one object) across shards.
func (r *remset) shard(slot layout.Ref) *remsetShard {
	h := uint64(slot) * 0x9e3779b97f4a7c15
	return &r.shards[h>>(64-6)]
}

// Add records that slot holds a volatile reference.
func (r *remset) Add(slot layout.Ref) {
	s := r.shard(slot)
	s.mu.Lock()
	s.m[slot] = struct{}{}
	s.mu.Unlock()
}

// Remove forgets slot. Removing an absent slot is a no-op.
func (r *remset) Remove(slot layout.Ref) {
	s := r.shard(slot)
	s.mu.Lock()
	delete(s.m, slot)
	s.mu.Unlock()
}

// Empty reports whether no slot is recorded in any shard.
func (r *remset) Empty() bool {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n := len(s.m)
		s.mu.Unlock()
		if n > 0 {
			return false
		}
	}
	return true
}

// Snapshot returns every recorded slot (order unspecified).
func (r *remset) Snapshot() []layout.Ref {
	var out []layout.Ref
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for slot := range s.m {
			out = append(out, slot)
		}
		s.mu.Unlock()
	}
	return out
}

// Contains reports whether slot is recorded.
func (r *remset) Contains(slot layout.Ref) bool {
	s := r.shard(slot)
	s.mu.Lock()
	_, ok := s.m[slot]
	s.mu.Unlock()
	return ok
}

// remsetSink adapts the runtime's remembered set to pheap.RemsetSink —
// the hook heap-level publication points (safepoint drains, transaction
// commits, buffer overflows) deliver deltas through. Installed on every
// heap at attach time.
type remsetSink struct{ rt *Runtime }

func (s remsetSink) PublishRemsetDeltas(ds []pheap.RemsetDelta) { s.rt.applyRemsetDeltas(ds) }

func (s remsetSink) RefIsVolatile(ref layout.Ref) bool { return s.rt.vol.Contains(ref) }

// applyRemsetDeltas merges one published batch. Membership is re-derived
// from the slot's current device value, which makes application
// order-independent across buffers (see the package comment): an add
// hint always re-reads; a remove hint re-reads only when the slot is
// actually in the set (an absent remove is a guaranteed no-op, so the
// pure NVM→NVM workload publishes without device traffic). The batch is
// deduplicated by slot first — only its final record matters, and one
// read per slot bounds the publication's device cost by the working set,
// not the store count. Safe to run concurrently with mutators (overflow
// publications race collector drains): the slot load is a single atomic
// device read, exactly the discipline the concurrent marker uses.
func (rt *Runtime) applyRemsetDeltas(ds []pheap.RemsetDelta) {
	if len(ds) == 0 {
		return
	}
	seen := make(map[layout.Ref]struct{}, len(ds))
	for i := len(ds) - 1; i >= 0; i-- {
		d := ds[i]
		if _, dup := seen[d.Slot]; dup {
			continue
		}
		seen[d.Slot] = struct{}{}
		if !d.Add && !rt.nvmToVol.Contains(d.Slot) {
			continue
		}
		if rt.slotHoldsVolatile(d.Slot) {
			rt.nvmToVol.Add(d.Slot)
		} else {
			rt.nvmToVol.Remove(d.Slot)
		}
	}
}

// slotHoldsVolatile re-reads an NVM slot and reports whether its current
// value points into the volatile heap. Tag bits (layout.RefTagMask) are
// stripped, as everywhere slot values are interpreted as addresses.
func (rt *Runtime) slotHoldsVolatile(slot layout.Ref) bool {
	h := rt.heapOf(slot)
	if h == nil {
		return false
	}
	boff := int(slot) - int(h.Base())
	v := layout.UntagRef(layout.Ref(h.Device().ReadU64Atomic(boff)))
	return v != layout.NullRef && rt.vol.Contains(v)
}

// RemoveIf deletes every slot for which pred returns true.
func (r *remset) RemoveIf(pred func(layout.Ref) bool) {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for slot := range s.m {
			if pred(slot) {
				delete(s.m, slot)
			}
		}
		s.mu.Unlock()
	}
}
