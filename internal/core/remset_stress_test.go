package core

import (
	"sort"
	"sync"
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
)

// TestRemsetDeltaGCStress is the write-combining barrier's correctness
// stress: mutator goroutines churn NVM→volatile and NVM→NVM reference
// stores through their per-mutator delta buffers while a collector
// goroutine runs back-to-back concurrent persistent collections (each
// safepoint draining whatever deltas happen to be pending). After every
// round the world quiesces, one more concurrent cycle plus a volatile
// scavenge consume the remembered set, and the published set must equal
// the single-threaded oracle exactly — the slot set whose last store was
// a volatile reference. No delta may be lost, duplicated, or misordered
// on its way from a mutator-local buffer to the shared set, across
// buffer overflows, safepoint drains, and compactions that move the
// objects owning the slots. Runs under -race in CI.
func TestRemsetDeltaGCStress(t *testing.T) {
	rt, err := NewRuntime(Config{PJHDataSize: 48 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.CreateHeap("remset", 0); err != nil {
		t.Fatal(err)
	}
	node := klass.MustInstance("remset/Node", nil,
		klass.Field{Name: "ref", Type: layout.FTRef},
		klass.Field{Name: "pad", Type: layout.FTLong},
	)
	refF := rt.MustResolveField(node, "ref")

	const goroutines = 6
	const nodesPerG = 24
	const rounds = 6
	const opsPerRound = 700 // > RemsetDeltaOverflow so overflow publication is exercised

	// All nodes live in one rooted object array, all volatile targets in
	// another persistent array ("volHolder"), so compaction can move
	// nodes and volatile scavenges can move targets while every consumer
	// re-derives addresses through roots. The volHolder's own element
	// slots hold volatile refs, so they are permanent remset members.
	arr, err := rt.PNew(rt.Reg.ObjArray("remset/Node"), goroutines*nodesPerG)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < goroutines*nodesPerG; i++ {
		n, err := rt.PNew(node, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.SetElem(arr, i, n); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.SetRoot("remset/nodes", arr); err != nil {
		t.Fatal(err)
	}
	vh, err := rt.PNew(rt.Reg.ObjArray("java/lang/Object"), goroutines)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < goroutines; g++ {
		v, err := rt.NewString("vol-target", false)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.SetElem(vh, g, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.SetRoot("remset/vols", vh); err != nil {
		t.Fatal(err)
	}

	muts := make([]*Mutator, goroutines)
	for g := range muts {
		if muts[g], err = rt.NewMutator(); err != nil {
			t.Fatal(err)
		}
		defer muts[g].Release()
	}

	// lastVol is the oracle: per node, whether the most recent store to
	// its ref slot was a volatile reference. Written only by the owning
	// mutator during a round, read only by the main goroutine between
	// rounds (the WaitGroup is the happens-before edge).
	lastVol := make([][]bool, goroutines)
	for g := range lastVol {
		lastVol[g] = make([]bool, nodesPerG)
	}

	verify := func(when string, round int) {
		t.Helper()
		arrRef, ok := rt.GetRoot("remset/nodes")
		if !ok {
			t.Fatalf("%s round %d: node array root missing", when, round)
		}
		vhRef, _ := rt.GetRoot("remset/vols")
		var expected []layout.Ref
		for g := 0; g < goroutines; g++ {
			vslot := vhRef + layout.Ref(layout.ElemOff(layout.FTRef, g))
			expected = append(expected, vslot)
			for j := 0; j < nodesPerG; j++ {
				if !lastVol[g][j] {
					continue
				}
				n, err := rt.GetElem(arrRef, g*nodesPerG+j)
				if err != nil {
					t.Fatalf("%s round %d: %v", when, round, err)
				}
				expected = append(expected, n+layout.Ref(refF.Offset()))
			}
		}
		got := rt.NVMToVolSlots()
		sort.Slice(expected, func(i, j int) bool { return expected[i] < expected[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(expected) {
			t.Fatalf("%s round %d: remset has %d slots, oracle says %d",
				when, round, len(got), len(expected))
		}
		for i := range got {
			if got[i] != expected[i] {
				t.Fatalf("%s round %d: remset[%d] = %#x, oracle %#x",
					when, round, i, uint64(got[i]), uint64(expected[i]))
			}
		}
	}

	for round := 0; round < rounds; round++ {
		// Collector goroutine races the round's churn with back-to-back
		// concurrent cycles.
		stopGC := make(chan struct{})
		gcDone := make(chan error, 1)
		go func() {
			for {
				select {
				case <-stopGC:
					gcDone <- nil
					return
				default:
				}
				if _, err := rt.PersistentGCConcurrent("remset"); err != nil {
					gcDone <- err
					return
				}
			}
		}()

		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				m := muts[g]
				for i := 0; i < opsPerRound; i++ {
					j := (round*opsPerRound + i) % nodesPerG
					toVol := i%3 == 2
					var opErr error
					m.Do(func() {
						arrRef, _ := m.GetRoot("remset/nodes")
						n, err := m.GetElem(arrRef, g*nodesPerG+j)
						if err != nil {
							opErr = err
							return
						}
						var val layout.Ref
						if toVol {
							vhRef, _ := m.GetRoot("remset/vols")
							if val, err = m.GetElem(vhRef, g); err != nil {
								opErr = err
								return
							}
						} else if val, err = m.GetElem(arrRef, g*nodesPerG+(j+1)%nodesPerG); err != nil {
							opErr = err
							return
						}
						opErr = m.SetRefFast(n, refF, val)
					})
					if opErr != nil {
						t.Errorf("mutator %d round %d op %d: %v", g, round, i, opErr)
						return
					}
					lastVol[g][j] = toVol
				}
			}(g)
		}
		wg.Wait()
		close(stopGC)
		if err := <-gcDone; err != nil {
			t.Fatalf("round %d concurrent GC: %v", round, err)
		}
		if t.Failed() {
			t.FailNow()
		}

		// Quiesced: one more concurrent cycle (pending deltas drain at its
		// safepoints, compaction may move every node), then a volatile
		// scavenge (which consumes the set as roots and patches the moved
		// targets), then the oracle comparison.
		if _, err := rt.PersistentGCConcurrent("remset"); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		verify("after concurrent cycle", round)
		if err := rt.MinorGC(); err != nil {
			t.Fatalf("round %d minor GC: %v", round, err)
		}
		verify("after volatile scavenge", round)
	}

	// A final stop-the-world collection must see the same remset.
	if _, err := rt.PersistentGC("remset"); err != nil {
		t.Fatal(err)
	}
	verify("after final STW GC", rounds)
}
