package core

import (
	"fmt"

	"espresso/internal/klass"
	"espresso/internal/layout"
)

// Alias-Klass type checking (paper §3.2, Figure 10). The constant pool
// caches one resolved Klass address per class symbol. Allocating the same
// class with `new` and then `pnew` leaves the slot pointing at the NVM
// Klass, so an address-equality checkcast against the DRAM instance
// throws a spurious ClassCastException. Espresso extends the check: two
// Klasses that are aliases — logically the same class in different
// places — compare equal.

// ClassCastError is the ClassCastException analog.
type ClassCastError struct {
	Have, Want string
}

func (e *ClassCastError) Error() string {
	return fmt.Sprintf("core: ClassCastException: %s cannot be cast to %s", e.Have, e.Want)
}

// klassByAddr resolves a Klass address from either the metaspace or any
// loaded heap's Klass segment.
func (rt *Runtime) klassByAddr(addr layout.Ref) (*klass.Klass, bool) {
	if klass.IsMetaAddr(addr) {
		return rt.Reg.ByMetaAddr(addr)
	}
	for _, h := range rt.heaps {
		if k, ok := h.KlassByAddr(addr); ok {
			return k, ok
		}
	}
	return nil, false
}

// CheckCast performs `(className) obj` against the constant pool's
// resolved slot for className. With StrictCast configured it reproduces
// the stock JVM's address-equality check and the Figure 10 exception;
// otherwise the alias-aware check accepts any incarnation of the class
// (or a subclass).
func (rt *Runtime) CheckCast(obj layout.Ref, className string) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	if obj == layout.NullRef {
		return nil // casting null always succeeds
	}
	objKlassAddr := layout.Ref(rt.getWord(obj, layout.KlassWordOff))
	slotAddr, resolved := rt.cp.Get(className)
	if !resolved {
		// First use of the symbol: resolve it against the object's own
		// class, as the interpreter would on a cold constant-pool slot.
		rt.cp.Resolve(className, objKlassAddr)
		slotAddr = objKlassAddr
	}
	if rt.cfg.StrictCast {
		if objKlassAddr == slotAddr {
			return nil
		}
		have, want := rt.klassName(objKlassAddr), rt.klassName(slotAddr)
		return &ClassCastError{Have: have, Want: want}
	}
	objK, ok := rt.klassByAddr(objKlassAddr)
	if !ok {
		return fmt.Errorf("core: object %#x has unresolvable klass", uint64(obj))
	}
	targetK, ok := rt.klassByAddr(slotAddr)
	if !ok {
		return fmt.Errorf("core: class symbol %q resolves to unknown klass", className)
	}
	if objK.IsSubclassOf(targetK) {
		return nil
	}
	return &ClassCastError{Have: objK.Name, Want: targetK.Name}
}

// InstanceOf reports whether obj is an instance of className (alias-aware).
func (rt *Runtime) InstanceOf(obj layout.Ref, className string) (bool, error) {
	rt.world.RLock()
	defer rt.world.RUnlock()
	if obj == layout.NullRef {
		return false, nil
	}
	objK, err := rt.klassOf(obj)
	if err != nil {
		return false, err
	}
	target, ok := rt.Reg.Lookup(className)
	if !ok {
		return false, fmt.Errorf("core: unknown class %q", className)
	}
	return objK.IsSubclassOf(target), nil
}

func (rt *Runtime) klassName(addr layout.Ref) string {
	if k, ok := rt.klassByAddr(addr); ok {
		return k.Name
	}
	return fmt.Sprintf("<klass@%#x>", uint64(addr))
}
