package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"espresso/internal/layout"
)

// Bulk object materialization: the coalesced-device-I/O discipline of
// NewString extended to whole instance field areas. A provider (pjo)
// assembles the object's image in a DRAM staging buffer and ships it
// with bulk device writes for the primitive spans, one atomic word store
// per reference slot, and one FlushRange — instead of a device word
// store (and, on the flush side, a line flush) per dirty field. Device
// cost per entity persist is O(1) in the dirty-field count: it depends
// only on the schema's reference-column count, never on how many fields
// a commit touched.
//
// Reference slots keep the full write barrier and the full access
// discipline: each contributes a remembered-set delta landing
// drain-atomically with its store (RecordStore — concurrent publications
// re-read slots with atomic loads, which a bulk memmove over a reference
// slot would tear against), plus a SATB pre-write record while a
// concurrent mark runs, and type-based safety vets volatile values
// before any byte lands.

// ReadFieldImage fills dst with the object's field area — starting at
// the first instance field — using a single bulk device read. The caller
// sizes dst (nFields × WordSize for all-word layouts like pjo's
// DBPersistables).
func (rt *Runtime) ReadFieldImage(ref layout.Ref, dst []byte) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	h := rt.heapOf(ref)
	if h == nil {
		return fmt.Errorf("core: ReadFieldImage of a non-persistent object %#x", uint64(ref))
	}
	h.ReadBytesAt(ref, layout.FieldOff(0), dst)
	return nil
}

// WriteFieldImage stores img over the object's field area (starting at
// the first instance field) and persists it with one FlushRange + fence.
// refOffs lists the object-relative byte offsets of the reference-typed
// slots inside the image; each gets the same barrier bookkeeping and
// store discipline as storeRef — type-based safety, a drain-atomic
// remembered-set delta, an atomic machine store (the concurrent marker
// and delta publications read reference slots atomically; no bulk
// memmove ever covers one), and the SATB pre-write barrier while marking
// is active. The primitive spans between reference slots move with bulk
// writes, so total device writes per call are bounded by the schema's
// reference-column count plus its contiguous primitive runs — never by
// the field count.
func (rt *Runtime) WriteFieldImage(ref layout.Ref, img []byte, refOffs []int) error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	h := rt.heapOf(ref)
	if h == nil {
		return fmt.Errorf("core: WriteFieldImage of a non-persistent object %#x", uint64(ref))
	}
	base := layout.FieldOff(0)
	if len(img)%layout.WordSize != 0 {
		return fmt.Errorf("core: WriteFieldImage of %d bytes (not word-aligned)", len(img))
	}
	// Validate every ref slot before any barrier bookkeeping or byte
	// lands: a failure must leave no recorded delta for a store that
	// never happened, and no partially written image.
	sorted := append([]int(nil), refOffs...)
	sort.Ints(sorted)
	for i, boff := range sorted {
		if boff < base || boff+layout.WordSize > base+len(img) || (boff-base)%layout.WordSize != 0 {
			return fmt.Errorf("core: WriteFieldImage ref slot offset %d outside image", boff)
		}
		if i > 0 && sorted[i-1] == boff {
			return fmt.Errorf("core: WriteFieldImage duplicate ref slot offset %d", boff)
		}
		if rt.cfg.Safety == TypeBased {
			val := layout.Ref(binary.LittleEndian.Uint64(img[boff-base:]))
			if val != layout.NullRef && rt.vol.Contains(val) {
				return fmt.Errorf("core: type-based safety forbids storing a volatile reference into NVM")
			}
		}
	}
	// Ship the image: bulk-write each primitive run, store each reference
	// slot atomically with its drain-atomic delta (and the SATB barrier
	// while marking — the armed flag cannot flip mid-call: marking arms
	// only at a safepoint and this call holds the safepoint read lock).
	marking := h.ConcurrentMarkActive()
	run := base
	writeRun := func(upto int) {
		if upto > run {
			h.WriteBytesAt(ref, run, img[run-base:upto-base])
		}
	}
	for _, boff := range sorted {
		writeRun(boff)
		run = boff + layout.WordSize
		val := layout.Ref(binary.LittleEndian.Uint64(img[boff-base:]))
		if marking {
			h.SATBRecordBarrier(ref, h.GetWordAtomic(ref, boff), nil)
		}
		slot := ref + layout.Ref(boff)
		h.DefaultRemsetDeltaBuffer(slot).RecordStore(slot, val != layout.NullRef && rt.vol.Contains(val), func() {
			h.SetWordAtomic(ref, boff, uint64(val))
		})
	}
	writeRun(base + len(img))
	h.FlushRange(ref, base, len(img))
	return nil
}
