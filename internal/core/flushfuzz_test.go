package core

import (
	"fmt"
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pheap"
)

// Crash-consistency fuzzing for the coalesced flush paths (ROADMAP
// item): FlushTransitive and FlushBatch deduplicate cache-line flushes
// and issue a single trailing fence per device. The §3.5 contract for
// the fine-grained flushes is that an 8-byte field is persisted
// atomically: after a crash a field reads either its old or its new
// value, never a torn mix, and heap metadata stays parseable. Coalescing
// must not widen that vulnerability window — so these tests drive the
// flush-hook crash injector through every flush boundary of both paths
// and assert exactly that contract on the reloaded image.

const (
	fuzzNodes = 24
	fuzzSeed  = 7
)

// buildFlushFuzzHeap creates a fresh runtime + heap with a chain of
// fuzzNodes nodes (two payload longs + a next ref), all roots named, all
// OLD payloads persisted. The build is deterministic, so every crash
// iteration reconstructs the identical pre-crash state.
func buildFlushFuzzHeap(t *testing.T) (*Runtime, *pheap.Heap, []layout.Ref, FieldRef, FieldRef, FieldRef) {
	t.Helper()
	rt, err := NewRuntime(Config{PJHDataSize: 4 << 20, NVMMode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	h, err := rt.CreateHeap("fuzz", 0)
	if err != nil {
		t.Fatal(err)
	}
	node := klass.MustInstance("fuzz/Node", nil,
		klass.Field{Name: "a", Type: layout.FTLong},
		klass.Field{Name: "b", Type: layout.FTLong},
		klass.Field{Name: "next", Type: layout.FTRef, RefKlass: "fuzz/Node"},
	)
	aF := rt.MustResolveField(node, "a")
	bF := rt.MustResolveField(node, "b")
	nextF := rt.MustResolveField(node, "next")

	refs := make([]layout.Ref, fuzzNodes)
	var prev layout.Ref
	for i := range refs {
		ref, err := rt.PNew(node, 0)
		if err != nil {
			t.Fatal(err)
		}
		rt.SetLongFast(ref, aF, oldA(i))
		rt.SetLongFast(ref, bF, oldB(i))
		if err := rt.SetRefFast(ref, nextF, prev); err != nil {
			t.Fatal(err)
		}
		if err := rt.SetRoot(fmt.Sprintf("n%d", i), ref); err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
		prev = ref
	}
	// Baseline: everything persisted (allocation metadata, roots, OLD
	// payloads).
	h.Device().FlushAll()
	return rt, h, refs, aF, bF, nextF
}

func oldA(i int) int64 { return int64(1000 + i) }
func oldB(i int) int64 { return int64(2000 + i) }
func newA(i int) int64 { return int64(501000 + i) }
func newB(i int) int64 { return int64(502000 + i) }

// checkCrashImage reloads a crash image and asserts the §3.5 contract:
// the heap parses, every root resolves, and each payload field is
// exactly old or exactly new — field-granular atomicity, the same
// guarantee the unbatched flush+fence sequence gives.
func checkCrashImage(t *testing.T, img []byte, when string) {
	t.Helper()
	h, err := pheap.Load(nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked}), klass.NewRegistry())
	if err != nil {
		t.Fatalf("%s: reload: %v", when, err)
	}
	if err := h.ForEachObject(func(int, *klass.Klass, int) bool { return true }); err != nil {
		t.Fatalf("%s: heap does not parse: %v", when, err)
	}
	for i := 0; i < fuzzNodes; i++ {
		ref, ok := h.GetRoot(fmt.Sprintf("n%d", i))
		if !ok {
			t.Fatalf("%s: root n%d lost", when, i)
		}
		a := int64(h.GetWord(ref, layout.FieldOff(0)))
		b := int64(h.GetWord(ref, layout.FieldOff(1)))
		if a != oldA(i) && a != newA(i) {
			t.Fatalf("%s: node %d field a torn: %d (want %d or %d)", when, i, a, oldA(i), newA(i))
		}
		if b != oldB(i) && b != newB(i) {
			t.Fatalf("%s: node %d field b torn: %d (want %d or %d)", when, i, b, oldB(i), newB(i))
		}
	}
}

// checkAllNew asserts every payload persisted its NEW value — the
// postcondition once the coalesced flush call returned.
func checkAllNew(t *testing.T, img []byte, when string) {
	t.Helper()
	h, err := pheap.Load(nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked}), klass.NewRegistry())
	if err != nil {
		t.Fatalf("%s: reload: %v", when, err)
	}
	for i := 0; i < fuzzNodes; i++ {
		ref, _ := h.GetRoot(fmt.Sprintf("n%d", i))
		if a := int64(h.GetWord(ref, layout.FieldOff(0))); a != newA(i) {
			t.Fatalf("%s: node %d field a = %d after completed flush, want %d", when, i, a, newA(i))
		}
		if b := int64(h.GetWord(ref, layout.FieldOff(1))); b != newB(i) {
			t.Fatalf("%s: node %d field b = %d after completed flush, want %d", when, i, b, newB(i))
		}
	}
}

// runFlushCrashFuzz exercises one coalesced flush path at every flush
// boundary. doFlush mutates all payloads to NEW and invokes the flush
// path under test.
func runFlushCrashFuzz(t *testing.T, label string, doFlush func(rt *Runtime, refs []layout.Ref) error) {
	// Dry run to count the path's flushes.
	rt, h, refs, aF, bF, _ := buildFlushFuzzHeap(t)
	base := h.Device().Stats().Flushes
	for i, ref := range refs {
		rt.SetLongFast(ref, aF, newA(i))
		rt.SetLongFast(ref, bF, newB(i))
	}
	if err := doFlush(rt, refs); err != nil {
		t.Fatal(err)
	}
	total := h.Device().Stats().Flushes - base
	if total == 0 {
		t.Fatalf("%s: no flushes to fuzz", label)
	}

	for k := uint64(1); k <= total+1; k++ {
		rt, h, refs, aF, bF, _ := buildFlushFuzzHeap(t)
		dev := h.Device()
		for i, ref := range refs {
			rt.SetLongFast(ref, aF, newA(i))
			rt.SetLongFast(ref, bF, newB(i))
		}
		start := dev.Stats().Flushes
		dev.SetFlushHook(func(n uint64) {
			if n == start+k {
				panic("flush fuzz crash")
			}
		})
		crashed := false
		func() {
			defer func() {
				if recover() != nil {
					crashed = true
				}
			}()
			if err := doFlush(rt, refs); err != nil {
				t.Fatalf("%s k=%d: %v", label, k, err)
			}
		}()
		dev.SetFlushHook(nil)
		when := fmt.Sprintf("%s k=%d", label, k)
		// Adversarial eviction: a random subset of unflushed dirty lines
		// persisted anyway. The contract must hold under every subset.
		checkCrashImage(t, dev.CrashImage(nvm.CrashRandomEviction, int64(k)), when)
		checkCrashImage(t, dev.CrashImage(nvm.CrashFlushedOnly, 0), when+" (flushed-only)")
		if !crashed {
			// Past the last flush: the call completed, everything is NEW.
			checkAllNew(t, dev.CrashImage(nvm.CrashFlushedOnly, 0), when+" (completed)")
			break
		}
	}
}

func TestFlushTransitiveCrashAtEveryBoundary(t *testing.T) {
	runFlushCrashFuzz(t, "FlushTransitive", func(rt *Runtime, refs []layout.Ref) error {
		// The chain head reaches every node transitively.
		return rt.FlushTransitive(refs[len(refs)-1])
	})
}

func TestFlushBatchCrashAtEveryBoundary(t *testing.T) {
	runFlushCrashFuzz(t, "FlushBatch", func(rt *Runtime, refs []layout.Ref) error {
		return rt.FlushBatch(refs)
	})
}

// TestCoalescedFenceDiscipline pins the single-trailing-fence claim the
// fuzz relies on: a transitive flush over N objects issues exactly one
// fence, and its line flushes never write back the same line twice.
func TestCoalescedFenceDiscipline(t *testing.T) {
	rt, h, refs, aF, _, _ := buildFlushFuzzHeap(t)
	for i, ref := range refs {
		rt.SetLongFast(ref, aF, newA(i))
	}
	s0 := h.Device().Stats()
	if err := rt.FlushTransitive(refs[len(refs)-1]); err != nil {
		t.Fatal(err)
	}
	d := h.Device().Stats().Sub(s0)
	if d.Fences != 1 {
		t.Fatalf("transitive flush issued %d fences, want 1", d.Fences)
	}
	maxLines := uint64(fuzzNodes*48/nvm.LineSize + fuzzNodes + 2)
	if d.FlushedLines > maxLines {
		t.Fatalf("flushed %d lines for %d nodes — lines written back more than once?", d.FlushedLines, fuzzNodes)
	}
}
