package core

import (
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
)

// TestRemsetDeltaCrossBufferOrder pins the publication-order hazard: one
// slot stored through two different delta buffers (a Runtime-routed
// store uses the heap's default buffer, a Mutator-routed one its own),
// where buffer drain order disagrees with store order. Publication
// re-derives membership from the device, so the later store must win
// regardless of which buffer drains first.
func TestRemsetDeltaCrossBufferOrder(t *testing.T) {
	rt, err := NewRuntime(Config{PJHDataSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.CreateHeap("order", 0); err != nil {
		t.Fatal(err)
	}
	node := klass.MustInstance("order/Node", nil,
		klass.Field{Name: "ref", Type: layout.FTRef})
	refF := rt.MustResolveField(node, "ref")
	a, err := rt.PNew(node, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rt.PNew(node, 0)
	if err != nil {
		t.Fatal(err)
	}
	vol, err := rt.NewString("dram", false)
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.NewMutator()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()

	// Mutator buffer registered first; default buffer registers lazily on
	// the Runtime-routed store below, so it drains after the mutator's.
	// Store order: Runtime (remove hint, default buffer) THEN Mutator
	// (add hint, mutator buffer). A drain trusting hints in registration
	// order would apply add-then-remove and drop the live edge.
	if err := rt.SetRefFast(a, refF, b); err != nil { // NVM ref → remove hint
		t.Fatal(err)
	}
	if err := m.SetRefFast(a, refF, vol); err != nil { // volatile → add hint
		t.Fatal(err)
	}
	if got := rt.NVMToVolSlots(); len(got) != 1 {
		t.Fatalf("remset = %v after NVM-then-vol mixed routing, want the live slot", got)
	}

	// And the mirror image: vol through the Runtime (add hint in the
	// later-draining buffer), then NVM through the Mutator (remove hint
	// in the earlier-draining one). The final store is NVM→NVM, so the
	// slot must end absent even though the add hint drains last.
	if err := rt.SetRefFast(a, refF, vol); err != nil {
		t.Fatal(err)
	}
	if err := m.SetRefFast(a, refF, b); err != nil {
		t.Fatal(err)
	}
	if got := rt.NVMToVolSlots(); len(got) != 0 {
		t.Fatalf("remset = %v after vol-then-NVM mixed routing, want empty", got)
	}
}
