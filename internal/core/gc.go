package core

import (
	"fmt"
	"runtime"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/pgc"
	"espresso/internal/pheap"
	"espresso/internal/telemetry/blackbox"
)

// Stop-the-world GC orchestration. The runtime supplies each collector
// with the cross-space roots it cannot see on its own:
//
//   - volatile collections treat runtime handles and the NVM→DRAM
//     remembered set as roots (a persistent object may be the only thing
//     keeping a DRAM object alive), and patch those slots when objects
//     move;
//   - persistent collections treat runtime handles plus every DRAM slot
//     referencing the heap as roots (paper: root objects are only *known
//     entry points after reboot* — while the process lives, DRAM
//     references also keep persistent objects alive), and patch them
//     after compaction.

// volRoots adapts handles + the NVM remembered set to vheap.RootSet.
type volRoots struct{ rt *Runtime }

// UpdateSlots feeds every handle and NVM-resident slot through fn. NVM
// slots are read and patched with atomic word accesses: a volatile
// collection may run (under the safepoint read lock) while the
// concurrent persistent marker is loading the same slots. The handle
// patch takes rt.mu so it cannot race a concurrent NewHandle growing
// the table.
func (r volRoots) UpdateSlots(fn func(layout.Ref) layout.Ref) {
	rt := r.rt
	rt.mu.Lock()
	for i, v := range rt.handles {
		if v != layout.NullRef {
			rt.handles[i] = fn(v)
		}
	}
	rt.mu.Unlock()
	for _, slot := range rt.nvmToVol.Snapshot() {
		h := rt.heapOf(slot)
		if h == nil {
			continue
		}
		boff := int(slot) - int(h.Base())
		v := layout.Ref(h.Device().ReadU64Atomic(boff))
		nv := fn(v)
		if nv != v {
			h.Device().WriteU64Atomic(boff, uint64(nv))
			// The slot now points elsewhere; membership is re-derived.
			if nv == layout.NullRef || !rt.vol.Contains(nv) {
				rt.nvmToVol.Remove(slot)
			}
		}
	}
}

// MinorGC runs a young-generation scavenge. Volatile collections (and
// the volatile heap generally, as in the seed) assume a single volatile
// mutator: the safepoint read lock only orders them against persistent
// GC pauses, not against other goroutines touching DRAM objects.
func (rt *Runtime) MinorGC() error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	return rt.minorGC()
}

// Volatile collections consume the NVM→DRAM remembered set as their
// root set, so pending per-mutator deltas are published first — the
// write-combining barrier's "drain before scavenging" obligation. (The
// persistent collectors get the same drain from PrepareForCollection.)
func (rt *Runtime) minorGC() error {
	rt.publishRemsetDeltas()
	return rt.vol.MinorGC(volRoots{rt})
}

// FullGC collects the whole volatile heap; see MinorGC for the
// single-volatile-mutator contract.
func (rt *Runtime) FullGC() error {
	rt.world.RLock()
	defer rt.world.RUnlock()
	return rt.fullGC()
}

func (rt *Runtime) fullGC() error {
	rt.publishRemsetDeltas()
	return rt.vol.FullGC(volRoots{rt})
}

// persRoots adapts handles + a scan of the volatile heap to pgc.Rooter.
type persRoots struct {
	rt *Runtime
	h  *pheap.Heap
}

// Roots visits every DRAM reference into the persistent heap: handles and
// fields/elements of volatile objects.
func (r persRoots) Roots(visit func(layout.Ref)) {
	for _, v := range r.rt.handles {
		visit(v)
	}
	err := r.rt.vol.ForEachObject(func(ref layout.Ref, k *klass.Klass, size int) bool {
		r.rt.vol.RefSlotsOf(ref, k, func(_, val layout.Ref) {
			if val != layout.NullRef && r.h.Contains(val) {
				visit(val)
			}
		})
		return true
	})
	if err != nil {
		panic(fmt.Sprintf("core: volatile heap scan during persistent GC: %v", err))
	}
}

// UpdateRoots patches every such slot through the forwarding function,
// then rebuilds the NVM→DRAM remembered set (remembered slots moved with
// their objects). The collector calls it inside the pause — before
// mutators resume under the concurrent collector — so no mutator ever
// observes unpatched roots or a stale remembered set.
func (r persRoots) UpdateRoots(fwd func(layout.Ref) layout.Ref) {
	rt := r.rt
	for i, v := range rt.handles {
		if v != layout.NullRef && r.h.Contains(v) {
			rt.handles[i] = fwd(v)
		}
	}
	err := rt.vol.ForEachObject(func(ref layout.Ref, k *klass.Klass, size int) bool {
		rt.vol.RefSlotsOf(ref, k, func(slotAddr, val layout.Ref) {
			if val != layout.NullRef && r.h.Contains(val) {
				if nv := fwd(val); nv != val {
					boff := int(slotAddr - ref)
					rt.vol.SetWord(ref, boff, uint64(nv))
				}
			}
		})
		return true
	})
	if err != nil {
		panic(fmt.Sprintf("core: volatile heap patch during persistent GC: %v", err))
	}
	rt.rebuildNVMRemset(r.h)
}

// worldLocker adapts the runtime's safepoint lock to pgc.World: stopping
// the world means waiting out every in-flight mutator operation and
// holding new ones at the lock — the mutator handshake. Each stop is
// timed into the telemetry safepoint.wait histogram, so handshake delays
// caused by long mutator ops are observable, and journaled as an
// EvSafepoint aggregate when h carries a flight recorder (the append
// rides the pause's first persist fence).
type worldLocker struct {
	rt *Runtime
	h  *pheap.Heap
}

func (w worldLocker) StopWorld() {
	wait := w.rt.lockWorldCounted()
	w.h.FlightRecorder().Append(blackbox.EvSafepoint,
		w.rt.spWaits.Load(), w.rt.spWaitNS.Load(), uint64(wait))
}
func (w worldLocker) StartWorld() { w.rt.world.Unlock() }

// PersistentGC runs the crash-consistent collection of paper §4 on the
// named heap (System.gc() for the persistent space). Mutators on other
// goroutines are paused through the safepoint lock for the whole
// collection; with Config.ConcurrentGC set, the concurrent collector
// runs instead and pauses them only for handshake and compaction.
func (rt *Runtime) PersistentGC(name string) (pgc.Result, error) {
	if rt.cfg.ConcurrentGC {
		return rt.PersistentGCConcurrent(name)
	}
	h, ok := rt.heapByName[name]
	if !ok {
		return pgc.Result{}, fmt.Errorf("core: heap %q is not loaded", name)
	}
	rt.gcMu.Lock()
	defer rt.gcMu.Unlock()
	wait := rt.lockWorldCounted()
	defer rt.world.Unlock()
	h.FlightRecorder().Append(blackbox.EvSafepoint,
		rt.spWaits.Load(), rt.spWaitNS.Load(), uint64(wait))
	return pgc.Collect(h, persRoots{rt, h})
}

// PersistentGCConcurrent collects the named heap with SATB concurrent
// marking: the object graph is traced while mutators keep running (the
// pre-write barrier in storeRef keeps the snapshot consistent, and
// allocation proceeds above the snapshotted region tops), and only final
// remark + compaction + the redo-log finish stop the world. The GC pool
// size comes from Config.GCWorkers (zero means GOMAXPROCS).
func (rt *Runtime) PersistentGCConcurrent(name string) (pgc.Result, error) {
	return rt.PersistentGCConcurrentWorkers(name, rt.gcWorkers())
}

// PersistentGCConcurrentWorkers is PersistentGCConcurrent with an
// explicit GC pool size, overriding Config.GCWorkers for this cycle.
// workers < 1 means 1.
func (rt *Runtime) PersistentGCConcurrentWorkers(name string, workers int) (pgc.Result, error) {
	h, ok := rt.heapByName[name]
	if !ok {
		return pgc.Result{}, fmt.Errorf("core: heap %q is not loaded", name)
	}
	rt.gcMu.Lock()
	defer rt.gcMu.Unlock()
	return pgc.CollectConcurrentWorkers(h, persRoots{rt, h}, worldLocker{rt, h}, workers)
}

// gcWorkers resolves Config.GCWorkers: zero or negative means
// GOMAXPROCS, the conventional "use the machine" default.
func (rt *Runtime) gcWorkers() int {
	if rt.cfg.GCWorkers > 0 {
		return rt.cfg.GCWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// rebuildNVMRemset rescans one heap's live objects for volatile
// references. Called after compaction invalidates slot addresses. The
// remembered set is precise — every NVM→DRAM store passes the write
// barrier — so an empty set means no persistent slot anywhere holds a
// volatile reference and the whole-heap rescan (a pause-time cost
// proportional to everything live) is skipped.
func (rt *Runtime) rebuildNVMRemset(h *pheap.Heap) {
	if rt.nvmToVol.Empty() {
		return
	}
	rt.nvmToVol.RemoveIf(h.ContainsImage)
	_ = h.ForEachObject(func(off int, k *klass.Klass, size int) bool {
		if pheap.IsFiller(k) {
			return true
		}
		pheap.RefSlots(h.Device(), off, k, func(slotBoff int) {
			v := layout.Ref(h.Device().ReadU64(off + slotBoff))
			if v != layout.NullRef && rt.vol.Contains(v) {
				rt.nvmToVol.Add(h.AddrOf(off + slotBoff))
			}
		})
		return true
	})
}
