package core

import (
	"fmt"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/pgc"
	"espresso/internal/pheap"
)

// Stop-the-world GC orchestration. The runtime supplies each collector
// with the cross-space roots it cannot see on its own:
//
//   - volatile collections treat runtime handles and the NVM→DRAM
//     remembered set as roots (a persistent object may be the only thing
//     keeping a DRAM object alive), and patch those slots when objects
//     move;
//   - persistent collections treat runtime handles plus every DRAM slot
//     referencing the heap as roots (paper: root objects are only *known
//     entry points after reboot* — while the process lives, DRAM
//     references also keep persistent objects alive), and patch them
//     after compaction.

// volRoots adapts handles + the NVM remembered set to vheap.RootSet.
type volRoots struct{ rt *Runtime }

// UpdateSlots feeds every handle and NVM-resident slot through fn.
func (r volRoots) UpdateSlots(fn func(layout.Ref) layout.Ref) {
	rt := r.rt
	for i, v := range rt.handles {
		if v != layout.NullRef {
			rt.handles[i] = fn(v)
		}
	}
	for _, slot := range rt.nvmToVol.Snapshot() {
		h := rt.heapOf(slot)
		if h == nil {
			continue
		}
		boff := int(slot) - int(h.Base())
		v := layout.Ref(h.Device().ReadU64(boff))
		nv := fn(v)
		if nv != v {
			h.Device().WriteU64(boff, uint64(nv))
			// The slot now points elsewhere; membership is re-derived.
			if nv == layout.NullRef || !rt.vol.Contains(nv) {
				rt.nvmToVol.Remove(slot)
			}
		}
	}
}

// MinorGC runs a young-generation scavenge.
func (rt *Runtime) MinorGC() error { return rt.vol.MinorGC(volRoots{rt}) }

// FullGC collects the whole volatile heap.
func (rt *Runtime) FullGC() error { return rt.vol.FullGC(volRoots{rt}) }

// persRoots adapts handles + a scan of the volatile heap to pgc.Rooter.
type persRoots struct {
	rt *Runtime
	h  *pheap.Heap
}

// Roots visits every DRAM reference into the persistent heap: handles and
// fields/elements of volatile objects.
func (r persRoots) Roots(visit func(layout.Ref)) {
	for _, v := range r.rt.handles {
		visit(v)
	}
	err := r.rt.vol.ForEachObject(func(ref layout.Ref, k *klass.Klass, size int) bool {
		r.rt.vol.RefSlotsOf(ref, k, func(_, val layout.Ref) {
			if val != layout.NullRef && r.h.Contains(val) {
				visit(val)
			}
		})
		return true
	})
	if err != nil {
		panic(fmt.Sprintf("core: volatile heap scan during persistent GC: %v", err))
	}
}

// UpdateRoots patches every such slot through the forwarding function.
func (r persRoots) UpdateRoots(fwd func(layout.Ref) layout.Ref) {
	rt := r.rt
	for i, v := range rt.handles {
		if v != layout.NullRef && r.h.Contains(v) {
			rt.handles[i] = fwd(v)
		}
	}
	err := rt.vol.ForEachObject(func(ref layout.Ref, k *klass.Klass, size int) bool {
		rt.vol.RefSlotsOf(ref, k, func(slotAddr, val layout.Ref) {
			if val != layout.NullRef && r.h.Contains(val) {
				if nv := fwd(val); nv != val {
					boff := int(slotAddr - ref)
					rt.vol.SetWord(ref, boff, uint64(nv))
				}
			}
		})
		return true
	})
	if err != nil {
		panic(fmt.Sprintf("core: volatile heap patch during persistent GC: %v", err))
	}
}

// PersistentGC runs the crash-consistent collection of paper §4 on the
// named heap (System.gc() for the persistent space). After compaction the
// NVM→DRAM remembered set is rebuilt, since remembered slots moved with
// their objects.
func (rt *Runtime) PersistentGC(name string) (pgc.Result, error) {
	h, ok := rt.heapByName[name]
	if !ok {
		return pgc.Result{}, fmt.Errorf("core: heap %q is not loaded", name)
	}
	res, err := pgc.Collect(h, persRoots{rt, h})
	if err != nil {
		return res, err
	}
	rt.rebuildNVMRemset(h)
	return res, nil
}

// rebuildNVMRemset rescans one heap's live objects for volatile
// references. Called after compaction invalidates slot addresses.
func (rt *Runtime) rebuildNVMRemset(h *pheap.Heap) {
	rt.nvmToVol.RemoveIf(h.ContainsImage)
	_ = h.ForEachObject(func(off int, k *klass.Klass, size int) bool {
		if pheap.IsFiller(k) {
			return true
		}
		pheap.RefSlots(h.Device(), off, k, func(slotBoff int) {
			v := layout.Ref(h.Device().ReadU64(off + slotBoff))
			if v != layout.NullRef && rt.vol.Contains(v) {
				rt.nvmToVol.Add(h.AddrOf(off + slotBoff))
			}
		})
		return true
	})
}
