package core

import (
	"sync"
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
)

// TestSATBMarkStress is the concurrent collector's correctness stress:
// several mutator goroutines churn rooted linked lists — allocating,
// prepending, and unlinking nodes through the SATB pre-write barrier —
// while the collector runs concurrent collections on another goroutine.
// After the churn, each mutator's surviving chain must match its local
// model exactly: no reachable object was ever reclaimed, no payload
// corrupted, no link broken. Run under -race in CI, this also proves the
// marker/mutator access discipline (atomic slot loads vs atomic slot
// stores, safepoint handshake for everything else) is data-race-free.
func TestSATBMarkStress(t *testing.T) {
	rt, err := NewRuntime(Config{PJHDataSize: 48 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.CreateHeap("satb", 0); err != nil {
		t.Fatal(err)
	}
	node := klass.MustInstance("satb/Node", nil,
		klass.Field{Name: "id", Type: layout.FTLong},
		klass.Field{Name: "next", Type: layout.FTRef, RefKlass: "satb/Node"},
	)
	idF := rt.MustResolveField(node, "id")
	nextF := rt.MustResolveField(node, "next")

	const goroutines = 6
	const iters = 400
	rootName := func(g int) string { return "chain" + string(rune('A'+g)) }

	models := make([][]int64, goroutines) // surviving ids, head first
	var wg sync.WaitGroup
	stopGC := make(chan struct{})

	// Collector goroutine: back-to-back concurrent collections while the
	// mutators churn. Every cycle pauses the world only for handshake and
	// compaction; marking overlaps the stores below.
	gcDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stopGC:
				gcDone <- nil
				return
			default:
			}
			if _, err := rt.PersistentGCConcurrent("satb"); err != nil {
				gcDone <- err
				return
			}
		}
	}()

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m, err := rt.NewMutator()
			if err != nil {
				t.Errorf("mutator %d: %v", g, err)
				return
			}
			defer m.Release()
			name := rootName(g)
			for i := 0; i < iters; i++ {
				id := int64(g*1_000_000 + i)
				var opErr error
				// Multi-step sequences pin the world with Do so the refs
				// they hold stay valid across the whole sequence.
				m.Do(func() {
					head, _ := m.GetRoot(name)
					n, err := m.PNew(node, 0)
					if err != nil {
						opErr = err
						return
					}
					m.SetLongFast(n, idF, id)
					if err := m.SetRefFast(n, nextF, head); err != nil {
						opErr = err
						return
					}
					opErr = m.SetRoot(name, n)
				})
				if opErr != nil {
					t.Errorf("mutator %d iter %d: %v", g, i, opErr)
					return
				}
				models[g] = append([]int64{id}, models[g]...)

				if i%3 == 2 && len(models[g]) >= 2 {
					// Unlink the second node: overwrites head.next while the
					// marker may be tracing — exactly the store the SATB
					// barrier exists for.
					m.Do(func() {
						head, _ := m.GetRoot(name)
						second := m.GetRefFast(head, nextF)
						if second == layout.NullRef {
							return
						}
						third := m.GetRefFast(second, nextF)
						opErr = m.SetRefFast(head, nextF, third)
					})
					if opErr != nil {
						t.Errorf("mutator %d unlink %d: %v", g, i, opErr)
						return
					}
					models[g] = append(models[g][:1], models[g][2:]...)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stopGC)
	if err := <-gcDone; err != nil {
		t.Fatalf("concurrent GC: %v", err)
	}
	if t.Failed() {
		t.FailNow()
	}

	verify := func(when string) {
		for g := 0; g < goroutines; g++ {
			ref, ok := rt.GetRoot(rootName(g))
			if !ok {
				t.Fatalf("%s: chain root %d missing", when, g)
			}
			for i, wantID := range models[g] {
				if ref == layout.NullRef {
					t.Fatalf("%s: chain %d truncated at %d/%d — a reachable object was reclaimed",
						when, g, i, len(models[g]))
				}
				if got := rt.GetLongFast(ref, idF); got != wantID {
					t.Fatalf("%s: chain %d node %d: id %d, want %d", when, g, i, got, wantID)
				}
				ref = rt.GetRefFast(ref, nextF)
			}
			if ref != layout.NullRef {
				t.Fatalf("%s: chain %d has trailing nodes beyond the model", when, g)
			}
		}
	}
	verify("after churn")

	// One quiescent concurrent cycle and one STW cycle: the floating
	// garbage drains and the graphs still match both collectors.
	if _, err := rt.PersistentGCConcurrent("satb"); err != nil {
		t.Fatal(err)
	}
	verify("after final concurrent GC")
	if _, err := rt.PersistentGC("satb"); err != nil {
		t.Fatal(err)
	}
	verify("after final STW GC")
}

// TestConcurrentGCConfigRoutesPersistentGC: with Config.ConcurrentGC,
// the standard PersistentGC entry point runs the concurrent collector
// (observable through the MarkTime/PauseTime split: marking happens
// outside the pause).
func TestConcurrentGCConfigRoutesPersistentGC(t *testing.T) {
	rt, err := NewRuntime(Config{PJHDataSize: 16 << 20, ConcurrentGC: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.CreateHeap("route", 0); err != nil {
		t.Fatal(err)
	}
	node := klass.MustInstance("route/Node", nil,
		klass.Field{Name: "next", Type: layout.FTRef, RefKlass: "route/Node"},
	)
	nextF := rt.MustResolveField(node, "next")
	var head layout.Ref
	for i := 0; i < 2000; i++ {
		n, err := rt.PNew(node, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.SetRefFast(n, nextF, head); err != nil {
			t.Fatal(err)
		}
		head = n
	}
	if err := rt.SetRoot("head", head); err != nil {
		t.Fatal(err)
	}
	res, err := rt.PersistentGC("route")
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveObjects != 2000 {
		t.Fatalf("live = %d, want 2000", res.LiveObjects)
	}
	if res.MarkTime <= 0 {
		t.Fatalf("concurrent route must report marking time, got %v", res.MarkTime)
	}
	// Under the concurrent collector the pause excludes marking, so the
	// pause's device traffic must be a strict subset of the total.
	if res.PauseDeviceStats.Reads >= res.DeviceStats.Reads {
		t.Fatalf("pause reads %d not below total %d — marking ran inside the pause?",
			res.PauseDeviceStats.Reads, res.DeviceStats.Reads)
	}
	ref, _ := rt.GetRoot("head")
	n := 0
	for ref != layout.NullRef {
		n++
		ref = rt.GetRefFast(ref, nextF)
	}
	if n != 2000 {
		t.Fatalf("chain length %d after concurrent GC", n)
	}
}
