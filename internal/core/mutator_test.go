package core

import (
	"sync"
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
)

// TestMutatorParallelPNew: several mutator contexts allocate persistent
// objects concurrently; the results are distinct, typed, live across a
// stop-the-world persistent collection (which retires every PLAB at the
// safepoint), and allocation resumes cleanly afterwards.
func TestMutatorParallelPNew(t *testing.T) {
	rt, err := NewRuntime(Config{PJHDataSize: 32 << 20, NVMMode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	h, err := rt.CreateHeap("mut", 0)
	if err != nil {
		t.Fatal(err)
	}
	node := klass.MustInstance("mut/Node", nil,
		klass.Field{Name: "v", Type: layout.FTLong},
		klass.Field{Name: "pad", Type: layout.FTLong},
	)

	const goroutines = 6
	const perG = 500
	refs := make([][]layout.Ref, goroutines)
	muts := make([]*Mutator, goroutines)
	for g := range muts {
		if muts[g], err = rt.NewMutator(); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := muts[g]
			for i := 0; i < perG; i++ {
				ref, err := m.PNew(node, 0)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				h.SetWord(ref, layout.FieldOff(0), uint64(g*perG+i))
				refs[g] = append(refs[g], ref)
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	seen := make(map[layout.Ref]bool)
	for g, rs := range refs {
		if len(rs) != perG {
			t.Fatalf("goroutine %d allocated %d, want %d", g, len(rs), perG)
		}
		for _, r := range rs {
			if seen[r] {
				t.Fatalf("duplicate ref %#x", uint64(r))
			}
			seen[r] = true
			if k, err := rt.KlassOf(r); err != nil || k.Name != "mut/Node" {
				t.Fatalf("KlassOf(%#x) = %v, %v", uint64(r), k, err)
			}
		}
	}

	// Keep one chain rooted, collect (world stopped: mutator goroutines
	// have joined), and verify the safepoint retired the PLABs without
	// losing the rooted object or breaking allocation afterwards.
	if err := rt.SetRoot("keeper", refs[0][0]); err != nil {
		t.Fatal(err)
	}
	res, err := rt.PersistentGC("mut")
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveObjects != 1 {
		t.Fatalf("live after GC = %d, want 1", res.LiveObjects)
	}
	keeper, _ := rt.GetRoot("keeper")
	if v := h.GetWord(keeper, layout.FieldOff(0)); v != 0 {
		t.Fatalf("keeper field = %d, want 0", v)
	}
	for g, m := range muts {
		if _, err := m.PNew(node, 0); err != nil {
			t.Fatalf("mutator %d post-GC PNew: %v", g, err)
		}
		m.Release()
	}
}

// TestMutatorAllocationsSurviveReboot: objects published by mutator PLABs
// survive a crash image reload, and the mutator stats expose the PLAB
// accounting used by the alloc experiment.
func TestMutatorAllocationsSurviveReboot(t *testing.T) {
	dir := t.TempDir()
	rt, err := NewRuntime(Config{HeapDir: dir, NVMMode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.CreateHeap("reboot", 8<<20); err != nil {
		t.Fatal(err)
	}
	m, err := rt.NewMutator()
	if err != nil {
		t.Fatal(err)
	}
	node := klass.MustInstance("reboot/Node", nil,
		klass.Field{Name: "v", Type: layout.FTLong},
	)
	ref, err := m.PNew(node, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Heap().SetWord(ref, layout.FieldOff(0), 777)
	if err := rt.FlushObject(ref); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetRoot("it", ref); err != nil {
		t.Fatal(err)
	}
	if s := m.AllocStats(); s.Allocs != 1 || s.Dispenses != 1 {
		t.Fatalf("mutator stats = %+v", s)
	}
	if err := rt.SyncHeap("reboot"); err != nil {
		t.Fatal(err)
	}

	rt2, err := NewRuntime(Config{HeapDir: dir, NVMMode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := rt2.LoadHeap("reboot")
	if err != nil {
		t.Fatal(err)
	}
	got, ok := rt2.GetRoot("it")
	if !ok {
		t.Fatal("root lost across reboot")
	}
	if v := h2.GetWord(got, layout.FieldOff(0)); v != 777 {
		t.Fatalf("field after reboot = %d", v)
	}
}
