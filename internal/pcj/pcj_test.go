package pcj

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"espresso/internal/bench"
	"espresso/internal/nvm"
)

func heap(t testing.TB) *Heap {
	t.Helper()
	return New(Config{Size: 16 << 20, Mode: nvm.Direct})
}

func TestLongRoundTrip(t *testing.T) {
	h := heap(t)
	o, err := h.NewLong(42)
	if err != nil {
		t.Fatal(err)
	}
	if h.LongValue(o) != 42 {
		t.Fatalf("value = %d", h.LongValue(o))
	}
	h.SetLongValue(o, -5)
	if h.LongValue(o) != -5 {
		t.Fatalf("value = %d", h.LongValue(o))
	}
	if h.TypeNameOf(o) != "lib.util.persistent.PersistentLong" {
		t.Fatalf("type = %q", h.TypeNameOf(o))
	}
}

func TestIntegerAndString(t *testing.T) {
	h := heap(t)
	i, _ := h.NewInteger(-123)
	if h.IntValue(i) != -123 {
		t.Fatalf("int = %d", h.IntValue(i))
	}
	s, err := h.NewString("persistent collections for java")
	if err != nil {
		t.Fatal(err)
	}
	if h.StringValue(s) != "persistent collections for java" {
		t.Fatalf("string = %q", h.StringValue(s))
	}
}

func TestTupleRefcounting(t *testing.T) {
	h := heap(t)
	a, _ := h.NewLong(1)
	b, _ := h.NewLong(2)
	tup, err := h.NewTuple(a, b)
	if err != nil {
		t.Fatal(err)
	}
	live := h.LiveObjects()
	// Dropping the caller's refs leaves the tuple owning a and b.
	h.Release(a)
	h.Release(b)
	if h.LiveObjects() != live {
		t.Fatalf("children freed while tuple still references them")
	}
	if h.LongValue(h.TupleGet(tup, 0)) != 1 {
		t.Fatal("tuple child corrupted")
	}
	// Dropping the tuple cascades.
	h.Release(tup)
	if h.LiveObjects() != live-3 {
		t.Fatalf("cascade free: live = %d, want %d", h.LiveObjects(), live-3)
	}
}

func TestRefcountBalanceNoLeaks(t *testing.T) {
	h := heap(t)
	free0 := h.FreeBytes()
	live0 := h.LiveObjects()
	for round := 0; round < 20; round++ {
		a, _ := h.NewLong(int64(round))
		b, _ := h.NewLong(int64(round * 2))
		tup, _ := h.NewTuple(a, b)
		h.Release(a)
		h.Release(b)
		h.TupleSet(tup, 0, 0) // drops a
		h.Release(tup)        // drops tuple and b
	}
	if h.LiveObjects() != live0 {
		t.Fatalf("leaked %d objects", h.LiveObjects()-live0)
	}
	if h.FreeBytes() < free0-1024 {
		t.Fatalf("allocator lost space: %d → %d", free0, h.FreeBytes())
	}
}

func TestListMatchesModel(t *testing.T) {
	h := heap(t)
	list, err := h.NewList()
	if err != nil {
		t.Fatal(err)
	}
	var model []int64
	for i := 0; i < 64; i++ {
		v := int64(i * 7)
		box, _ := h.NewLong(v)
		if err := h.ListAdd(list, box); err != nil {
			t.Fatal(err)
		}
		h.Release(box)
		model = append(model, v)
	}
	if h.ListLen(list) != len(model) {
		t.Fatalf("len = %d", h.ListLen(list))
	}
	for i, want := range model {
		if got := h.LongValue(h.ListGet(list, i)); got != want {
			t.Fatalf("elem %d = %d, want %d", i, got, want)
		}
	}
	box, _ := h.NewLong(-1)
	h.ListSet(list, 10, box)
	h.Release(box)
	if h.LongValue(h.ListGet(list, 10)) != -1 {
		t.Fatal("list set failed")
	}
}

func TestQuickMapMatchesModel(t *testing.T) {
	h := heap(t)
	f := func(seed int64, n uint8) bool {
		m, err := h.NewMap()
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		model := map[int64]int64{}
		for i := 0; i < int(n); i++ {
			k := int64(rng.Intn(40))
			v := rng.Int63()
			box, err := h.NewLong(v)
			if err != nil {
				return false
			}
			if err := h.MapPut(m, k, box); err != nil {
				return false
			}
			h.Release(box)
			model[k] = v
		}
		if h.MapLen(m) != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := h.MapGet(m, k)
			if !ok || h.LongValue(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorSplitAndReuse(t *testing.T) {
	h := heap(t)
	free0 := h.FreeBytes()
	var objs []Obj
	for i := 0; i < 100; i++ {
		o, err := h.NewLong(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, o)
	}
	for _, o := range objs {
		h.Release(o)
	}
	if h.FreeBytes() < free0-2048 {
		t.Fatalf("free space not recovered: %d → %d", free0, h.FreeBytes())
	}
}

func TestProfileRecordsAllPhases(t *testing.T) {
	h := New(Config{Size: 16 << 20, Mode: nvm.Direct, WriteLatency: 300 * time.Nanosecond})
	prof := bench.NewBreakdown()
	h.SetProfile(prof)
	for i := 0; i < 1000; i++ {
		o, err := h.NewLong(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		_ = o
	}
	h.SetProfile(nil)
	for _, phase := range []string{"Transaction", "Allocation", "Metadata", "GC", "Data"} {
		if prof.Get(phase) == 0 {
			t.Fatalf("phase %s not recorded", phase)
		}
	}
	// The paper's Figure 6 shape: metadata work dwarfs the payload store.
	if prof.Get("Metadata") < prof.Get("Data") {
		t.Fatalf("expected metadata ≥ data: %v vs %v", prof.Get("Metadata"), prof.Get("Data"))
	}
}
