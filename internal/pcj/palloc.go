// Package pcj reimplements the architecture of Intel's Persistent
// Collections for Java (PCJ), the paper's fine-grained baseline (§2.2):
// a separate persistent type system whose objects live *off the Java
// heap* as native NVM allocations managed by an NVML-like library.
//
// Each design decision the paper's Figure 6 breakdown attributes cost to
// is implemented, not scripted:
//
//   - native allocation through a free-list allocator (Allocation);
//   - per-object type-information memorization — every object records its
//     full type descriptor, where a JVM heap stores one klass pointer
//     (Metadata);
//   - reference-counting GC with a persistent object directory, updated
//     and flushed on every initialization (GC);
//   - a global-lock undo-log transaction around every single operation,
//     NVML-style (Transaction);
//   - and, finally, the actual payload store (Data).
package pcj

import (
	"fmt"

	"espresso/internal/nvm"
)

// Free-list allocator block format:
//
//	+0 size|usedBit (u64, size includes the 16-byte header)
//	+8 next free block offset (u64, meaningful when free)
//
// The head of the free list lives at device offset 8 (offset 0 holds a
// magic). First-fit with splitting; adjacent-forward coalescing on free.
const (
	allocMagicOff = 0
	freeHeadOff   = 8
	heapStartOff  = 64
	blockHdr      = 16
	usedBit       = 1
	allocMagic    = 0x50434a31 // "PCJ1"
)

type allocator struct {
	dev  *nvm.Device
	size int
}

func newAllocator(dev *nvm.Device) *allocator {
	a := &allocator{dev: dev, size: dev.Size()}
	dev.WriteU64(allocMagicOff, allocMagic)
	// One giant free block.
	first := heapStartOff
	dev.WriteU64(first, uint64(a.size-first))
	dev.WriteU64(first+8, 0)
	dev.WriteU64(freeHeadOff, uint64(first))
	dev.Flush(0, 64)
	dev.Flush(first, blockHdr)
	dev.Fence()
	return a
}

func align8(n int) int { return (n + 7) &^ 7 }

// alloc returns the data offset (header excluded) of a block with at
// least n data bytes. Allocator metadata updates are flushed, as NVML's
// persistent allocator must.
func (a *allocator) alloc(n int) (int, error) {
	need := align8(n) + blockHdr
	prev := freeHeadOff
	cur := int(a.dev.ReadU64(freeHeadOff))
	for cur != 0 {
		sz := int(a.dev.ReadU64(cur))
		next := int(a.dev.ReadU64(cur + 8))
		if sz&usedBit == 0 && sz >= need {
			rest := sz - need
			if rest >= blockHdr+32 {
				// Split: tail becomes a new free block.
				tail := cur + need
				a.dev.WriteU64(tail, uint64(rest))
				a.dev.WriteU64(tail+8, uint64(next))
				a.dev.Flush(tail, blockHdr)
				a.dev.WriteU64(cur, uint64(need)|usedBit)
				a.dev.WriteU64(prevNextOff(prev), uint64(tail))
			} else {
				a.dev.WriteU64(cur, uint64(sz)|usedBit)
				a.dev.WriteU64(prevNextOff(prev), uint64(next))
			}
			a.dev.Flush(cur, blockHdr)
			a.dev.Flush(prevNextOff(prev), 8)
			a.dev.Fence()
			return cur + blockHdr, nil
		}
		prev = cur
		cur = next
	}
	return 0, fmt.Errorf("pcj: out of native heap space")
}

// prevNextOff is where the "next" pointer of the predecessor lives: the
// head word for the list head, the next field for a block.
func prevNextOff(prev int) int {
	if prev == freeHeadOff {
		return freeHeadOff
	}
	return prev + 8
}

// free returns a data offset's block to the free list.
func (a *allocator) free(dataOff int) {
	blk := dataOff - blockHdr
	sz := a.dev.ReadU64(blk) &^ usedBit
	head := a.dev.ReadU64(freeHeadOff)
	a.dev.WriteU64(blk, sz)
	a.dev.WriteU64(blk+8, head)
	a.dev.Flush(blk, blockHdr)
	a.dev.WriteU64(freeHeadOff, uint64(blk))
	a.dev.Flush(freeHeadOff, 8)
	a.dev.Fence()
}

// freeBytes sums the free list (tests, diagnostics).
func (a *allocator) freeBytes() int {
	total := 0
	for cur := int(a.dev.ReadU64(freeHeadOff)); cur != 0; cur = int(a.dev.ReadU64(cur + 8)) {
		total += int(a.dev.ReadU64(cur))
	}
	return total
}
