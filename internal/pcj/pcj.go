package pcj

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"espresso/internal/bench"
	"espresso/internal/nvm"
)

// Object layout (data offsets within an allocation):
//
//	+0  refcount u64
//	+8  refMask  u64 (bit i set → field i holds an object reference)
//	+16 fieldCount u64
//	+24 typeNameLen u64
//	+32 typeName bytes, 8-aligned   ← the "type information memorization"
//	+.. fieldCount × u64 field slots
//
// PCJ objects carry their full type descriptor because they live outside
// any JVM heap: there is no Klass pointer to share, so every allocation
// writes (and flushes) its own metadata — the dominant cost in the
// paper's Figure 6.
const (
	oRefcount = 0
	oRefMask  = 8
	oFieldCnt = 16
	oTypeLen  = 24
	oTypeName = 32
)

// Obj is a handle to a native PCJ object (its data offset). The zero Obj
// is null.
type Obj int

// Heap is an off-heap PCJ world on its own NVM device, with an NVML-style
// transaction lock and log and a persistent object directory for the
// reference-counting collector.
type Heap struct {
	mu    sync.Mutex
	dev   *nvm.Device
	alloc *allocator

	// NVML-ish undo log: fixed region carved out of the device.
	logOff, logCap int

	// Object directory: open-addressing table of object offsets,
	// updated (and flushed) on every create and free.
	dirOff, dirCap int

	prof *bench.Breakdown

	// scratch is txAddRange's reusable log-assembly buffer (guarded by
	// mu, like the log itself).
	scratch []byte

	liveObjects int
}

// Config sizes a PCJ heap.
type Config struct {
	Size int
	Mode nvm.Mode
	// WriteLatency is the modelled NVM media latency per flushed line; it
	// is charged to the breakdown phases so device cost, not Go timer
	// overhead, determines the Figure 6 split.
	WriteLatency time.Duration
}

// New creates a PCJ heap.
func New(cfg Config) *Heap {
	if cfg.Size == 0 {
		cfg.Size = 64 << 20
	}
	dev := nvm.New(nvm.Config{Size: cfg.Size, Mode: cfg.Mode, WriteLatency: cfg.WriteLatency})
	h := &Heap{dev: dev}
	h.alloc = newAllocator(dev)
	var err error
	h.logCap = 1024
	logBytes := 16 + h.logCap*16
	h.logOff, err = h.alloc.alloc(logBytes)
	if err != nil {
		panic(err)
	}
	h.dirCap = 1 << 16
	h.dirOff, err = h.alloc.alloc(h.dirCap * 8)
	if err != nil {
		panic(err)
	}
	dev.Zero(h.logOff, logBytes)
	dev.Zero(h.dirOff, h.dirCap*8)
	dev.FlushAll()
	return h
}

// Device exposes the backing device for stats.
func (h *Heap) Device() *nvm.Device { return h.dev }

// SetProfile installs a phase breakdown recorder (Figure 6). Pass nil to
// stop profiling.
func (h *Heap) SetProfile(b *bench.Breakdown) { h.prof = b }

// LiveObjects reports the number of allocated, unfreed objects.
func (h *Heap) LiveObjects() int { return h.liveObjects }

// FreeBytes reports the allocator's free space.
func (h *Heap) FreeBytes() int { return h.alloc.freeBytes() }

// phase times a breakdown phase, charging both wall time and the modelled
// NVM cost of the lines the phase flushed (the paper measures on real
// NVDIMMs, where the flush traffic *is* the cost; our wall clock alone
// would mostly measure instrumentation).
func (h *Heap) phase(name string) func() {
	if h.prof == nil {
		return func() {}
	}
	before := h.dev.Stats().ModeledFlushNS
	stop := h.prof.Phase(name)
	return func() {
		stop()
		h.prof.Add(name, time.Duration(h.dev.Stats().ModeledFlushNS-before))
	}
}

// --- NVML-style transactions ---
//
// Every public operation runs under the global lock with an undo log:
// begin persists the log state, each store logs the old word first, and
// commit flushes the data then retires the log. This is the
// "synchronization primitives and logging" cost of §2.2.

func (h *Heap) txBegin() {
	h.dev.WriteU64(h.logOff+8, 0) // count
	h.dev.WriteU64(h.logOff, 1)   // active
	h.dev.Flush(h.logOff, 16)
	h.dev.Fence()
}

func (h *Heap) txWrite(off int, v uint64) {
	count := int(h.dev.ReadU64(h.logOff + 8))
	if count < h.logCap {
		e := h.logOff + 16 + count*16
		h.dev.WriteU64(e, uint64(off))
		h.dev.WriteU64(e+8, h.dev.ReadU64(off))
		h.dev.Flush(e, 16)
		h.dev.WriteU64(h.logOff+8, uint64(count+1))
		h.dev.Flush(h.logOff+8, 8)
		h.dev.Fence()
	}
	h.dev.WriteU64(off, v)
	h.dev.Flush(off, 8)
}

// txAddRange logs a before-image of [off, off+n), the snapshot
// libpmemobj takes before a transactional store to the range. The old
// words are fetched with one bulk read and the log entries appended with
// one bulk write; the flush traffic (the real NVM cost) is unchanged.
func (h *Heap) txAddRange(off, n int) {
	count := int(h.dev.ReadU64(h.logOff + 8))
	words := (n + 7) / 8
	if words > h.logCap-count {
		words = h.logCap - count
	}
	if words > 0 {
		if cap(h.scratch) < words*24 {
			h.scratch = make([]byte, words*24)
		}
		old := h.scratch[:words*8]
		ent := h.scratch[words*8 : words*8+words*16]
		h.dev.ReadBytes(off, old)
		for w := 0; w < words; w++ {
			binary.LittleEndian.PutUint64(ent[w*16:], uint64(off+w*8))
			copy(ent[w*16+8:w*16+16], old[w*8:])
		}
		h.dev.WriteBytes(h.logOff+16+count*16, ent)
		count += words
	}
	h.dev.Flush(h.logOff+16, count*16)
	h.dev.WriteU64(h.logOff+8, uint64(count))
	h.dev.Flush(h.logOff+8, 8)
	h.dev.Fence()
}

func (h *Heap) txCommit() {
	h.dev.Fence()
	h.dev.WriteU64(h.logOff, 0)
	h.dev.Flush(h.logOff, 8)
	h.dev.Fence()
}

// --- Object plumbing ---

func (h *Heap) typeNamePad(name string) int { return align8(len(name)) }

func (h *Heap) fieldOff(o Obj, i int) int {
	tl := int(h.dev.ReadU64(int(o) + oTypeLen))
	return int(o) + oTypeName + align8(tl) + i*8
}

// create allocates and initializes a PCJ object, charging each phase of
// Figure 6 as it happens.
func (h *Heap) create(typeName string, refMask uint64, fields []uint64) (Obj, error) {
	stopTx := h.phase("Transaction")
	h.txBegin()
	stopTx()

	stopAlloc := h.phase("Allocation")
	size := oTypeName + h.typeNamePad(typeName) + len(fields)*8
	off, err := h.alloc.alloc(size)
	stopAlloc()
	if err != nil {
		h.txCommit()
		return 0, err
	}

	// Metadata: memorize the type descriptor in the object itself. NVML
	// logs object initialization like any other store, so every header
	// word goes through the undo log — this, plus the per-object type
	// name, is what makes metadata the dominant cost of a PCJ create
	// (paper §2.2: 36.8%, "most of which is caused by type information
	// memorization"; a JVM heap does one pointer store instead).
	stopMeta := h.phase("Metadata")
	h.txWrite(off+oRefMask, refMask)
	h.txWrite(off+oFieldCnt, uint64(len(fields)))
	h.txWrite(off+oTypeLen, uint64(len(typeName)))
	h.dev.WriteBytes(off+oTypeName, []byte(typeName))
	h.dev.Flush(off+oTypeName, h.typeNamePad(typeName))
	h.dev.Fence()
	stopMeta()

	// GC: initialize the reference count and register the object in the
	// persistent directory.
	stopGC := h.phase("GC")
	h.txWrite(off+oRefcount, 1)
	h.dirInsert(off)
	h.liveObjects++
	stopGC()

	// Data: the payload the caller actually wanted stored.
	stopData := h.phase("Data")
	fieldBase := off + oTypeName + h.typeNamePad(typeName)
	for i, v := range fields {
		h.txWrite(fieldBase+i*8, v)
		if isRefField(refMask, i) && v != 0 {
			h.incRef(Obj(v))
		}
	}
	stopData()

	stopTx2 := h.phase("Transaction")
	h.txCommit()
	stopTx2()
	return Obj(off), nil
}

// TypeNameOf reads an object's memorized type descriptor.
func (h *Heap) TypeNameOf(o Obj) string {
	n := int(h.dev.ReadU64(int(o) + oTypeLen))
	return string(h.dev.View(int(o)+oTypeName, n))
}

func (h *Heap) dirSlot(off int) int {
	x := uint64(off)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(h.dirCap))
}

func (h *Heap) dirInsert(off int) {
	s := h.dirSlot(off)
	for i := 0; i < h.dirCap; i++ {
		p := h.dirOff + ((s+i)%h.dirCap)*8
		v := h.dev.ReadU64(p)
		if v == 0 || v == ^uint64(0) {
			h.txWrite(p, uint64(off))
			return
		}
	}
	panic("pcj: object directory full")
}

func (h *Heap) dirRemove(off int) {
	s := h.dirSlot(off)
	for i := 0; i < h.dirCap; i++ {
		p := h.dirOff + ((s+i)%h.dirCap)*8
		v := h.dev.ReadU64(p)
		if v == 0 {
			return
		}
		if v == uint64(off) {
			h.txWrite(p, ^uint64(0)) // tombstone
			return
		}
	}
}

// --- Reference counting ---

func (h *Heap) incRef(o Obj) {
	if o == 0 {
		return
	}
	h.txWrite(int(o)+oRefcount, h.dev.ReadU64(int(o)+oRefcount)+1)
}

func (h *Heap) decRef(o Obj) {
	if o == 0 {
		return
	}
	rc := h.dev.ReadU64(int(o) + oRefcount)
	if rc == 0 {
		return // already dead (defensive)
	}
	rc--
	h.txWrite(int(o)+oRefcount, rc)
	if rc == 0 {
		h.freeObject(o)
	}
}

func (h *Heap) freeObject(o Obj) {
	mask := h.dev.ReadU64(int(o) + oRefMask)
	n := int(h.dev.ReadU64(int(o) + oFieldCnt))
	for i := 0; i < n; i++ {
		if isRefField(mask, i) {
			child := Obj(h.dev.ReadU64(h.fieldOff(o, i)))
			h.decRef(child)
		}
	}
	h.dirRemove(int(o))
	h.alloc.free(int(o))
	h.liveObjects--
}

// Release drops the caller's reference to o (handles are counted like any
// other reference; dropping the last one frees the object).
func (h *Heap) Release(o Obj) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.txBegin()
	h.decRef(o)
	h.txCommit()
}

// refMaskAll marks every field after field 0 as a reference (the array
// layout, whose element count exceeds the 64 bits of an explicit mask).
const refMaskAll = ^uint64(0)

func isRefField(mask uint64, i int) bool {
	if mask == refMaskAll {
		return i >= 1
	}
	return i < 64 && mask&(1<<uint(i)) != 0
}

// checkType performs the per-access metadata validation PCJ does on every
// operation: locate the object's type descriptor and walk its name (the
// library dispatches through ObjectType metadata since there is no JVM
// klass word to trust). This is part of the "non-trivial management
// overhead" of §2.2 — a JVM heap does none of it on a field access.
func (h *Heap) checkType(o Obj) {
	n := int(h.dev.ReadU64(int(o) + oTypeLen))
	// One bulk read of the descriptor instead of a per-byte device loop;
	// the modelled validation work (the name walk) is unchanged.
	var nameBuf [64]byte
	b := nameBuf[:]
	if n > len(b) {
		b = make([]byte, n)
	}
	h.dev.ReadBytes(int(o)+oTypeName, b[:n])
	var hash uint64 = 14695981039346656037
	for i := 0; i < n; i++ {
		hash ^= uint64(b[i])
		hash *= 1099511628211
	}
	_ = hash
}

// objectBytes is the object's full extent (header + type name + fields).
func (h *Heap) objectBytes(o Obj) int {
	tl := int(h.dev.ReadU64(int(o) + oTypeLen))
	n := int(h.dev.ReadU64(int(o) + oFieldCnt))
	return oTypeName + align8(tl) + n*8
}

// getField reads field i; setField stores it transactionally with
// refcount maintenance when the field is a reference.
func (h *Heap) getField(o Obj, i int) uint64 {
	h.checkType(o)
	return h.dev.ReadU64(h.fieldOff(o, i))
}

func (h *Heap) setField(o Obj, i int, v uint64) {
	stopTx := h.phase("Transaction")
	h.txBegin()
	h.checkType(o)
	// NVML transactions snapshot whole ranges (TX_ADD on the object), not
	// individual words: log and flush the object's full extent.
	h.txAddRange(int(o), h.objectBytes(o))
	stopTx()
	mask := h.dev.ReadU64(int(o) + oRefMask)
	if isRefField(mask, i) {
		stopGC := h.phase("GC")
		old := Obj(h.getField(o, i))
		if Obj(v) != old {
			h.incRef(Obj(v))
			h.decRef(old)
		}
		stopGC()
	}
	stopData := h.phase("Data")
	h.txWrite(h.fieldOff(o, i), v)
	stopData()
	stopTx2 := h.phase("Transaction")
	h.txCommit()
	stopTx2()
}

// --- Public persistent types (PersistentObject subclasses) ---

// NewLong allocates a PersistentLong.
func (h *Heap) NewLong(v int64) (Obj, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.create("lib.util.persistent.PersistentLong", 0, []uint64{uint64(v)})
}

// LongValue reads a PersistentLong.
func (h *Heap) LongValue(o Obj) int64 { return int64(h.getField(o, 0)) }

// SetLongValue updates a PersistentLong.
func (h *Heap) SetLongValue(o Obj, v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.setField(o, 0, uint64(v))
}

// NewInteger allocates a PersistentInteger.
func (h *Heap) NewInteger(v int32) (Obj, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.create("lib.util.persistent.PersistentInteger", 0, []uint64{uint64(uint32(v))})
}

// IntValue reads a PersistentInteger.
func (h *Heap) IntValue(o Obj) int32 { return int32(uint32(h.getField(o, 0))) }

// NewString allocates a PersistentString. The bytes are stored in a
// second native allocation referenced by the header object.
func (h *Heap) NewString(s string) (Obj, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.txBegin()
	stopAlloc := h.phase("Allocation")
	raw, err := h.alloc.alloc(8 + len(s))
	stopAlloc()
	if err != nil {
		h.txCommit()
		return 0, err
	}
	h.dev.WriteU64(raw, uint64(len(s)))
	h.dev.WriteBytes(raw+8, []byte(s))
	h.dev.Flush(raw, 8+len(s))
	h.txCommit()
	return h.create("lib.util.persistent.PersistentString", 0, []uint64{uint64(raw)})
}

// StringValue reads a PersistentString.
func (h *Heap) StringValue(o Obj) string {
	raw := int(h.getField(o, 0))
	n := int(h.dev.ReadU64(raw))
	return string(h.dev.View(raw+8, n))
}

// NewTuple allocates an N-ary PersistentTuple of object references.
func (h *Heap) NewTuple(elems ...Obj) (Obj, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fields := make([]uint64, len(elems))
	var mask uint64
	for i, e := range elems {
		fields[i] = uint64(e)
		mask |= 1 << uint(i)
	}
	return h.create(fmt.Sprintf("lib.util.persistent.PersistentTuple%d", len(elems)), mask, fields)
}

// TupleGet reads tuple slot i.
func (h *Heap) TupleGet(o Obj, i int) Obj { return Obj(h.getField(o, i)) }

// TupleSet writes tuple slot i.
func (h *Heap) TupleSet(o Obj, i int, v Obj) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.setField(o, i, uint64(v))
}

// NewArray allocates a generic PersistentArray of n reference slots.
// Slot 0 holds the length; elements follow.
func (h *Heap) NewArray(n int) (Obj, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fields := make([]uint64, n+1)
	fields[0] = uint64(n)
	return h.create("lib.util.persistent.PersistentArray", refMaskAll, fields)
}

// ArrayLen reads an array's length.
func (h *Heap) ArrayLen(o Obj) int { return int(h.getField(o, 0)) }

// ArrayGet reads element i.
func (h *Heap) ArrayGet(o Obj, i int) Obj { return Obj(h.getField(o, i+1)) }

// ArraySet writes element i.
func (h *Heap) ArraySet(o Obj, i int, v Obj) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.setField(o, i+1, uint64(v))
}

// --- PersistentArrayList ---
//
// Layout: field 0 = size, field 1 = backing PersistentArray.

// NewList allocates a PersistentArrayList.
func (h *Heap) NewList() (Obj, error) {
	arr, err := h.NewArray(8)
	if err != nil {
		return 0, err
	}
	h.mu.Lock()
	list, err := h.create("lib.util.persistent.PersistentArrayList", 1<<1, []uint64{0, uint64(arr)})
	h.mu.Unlock()
	if err != nil {
		return 0, err
	}
	h.Release(arr) // the list owns the backing array now
	return list, nil
}

// ListLen reads the element count.
func (h *Heap) ListLen(o Obj) int { return int(h.getField(o, 0)) }

// ListAdd appends v.
func (h *Heap) ListAdd(o Obj, v Obj) error {
	size := h.ListLen(o)
	arr := Obj(h.getField(o, 1))
	if size == h.ArrayLen(arr) {
		bigger, err := h.NewArray(size * 2)
		if err != nil {
			return err
		}
		for i := 0; i < size; i++ {
			h.ArraySet(bigger, i, h.ArrayGet(arr, i))
		}
		h.mu.Lock()
		h.setField(o, 1, uint64(bigger))
		h.mu.Unlock()
		h.Release(bigger) // the list now owns it
		arr = bigger
	}
	h.ArraySet(arr, size, v)
	h.mu.Lock()
	h.setField(o, 0, uint64(size+1))
	h.mu.Unlock()
	return nil
}

// ListGet reads element i.
func (h *Heap) ListGet(o Obj, i int) Obj {
	arr := Obj(h.getField(o, 1))
	return h.ArrayGet(arr, i)
}

// ListSet overwrites element i.
func (h *Heap) ListSet(o Obj, i int, v Obj) {
	arr := Obj(h.getField(o, 1))
	h.ArraySet(arr, i, v)
}

// --- PersistentHashMap (int64 keys → Obj values) ---
//
// Header: field 0 = size, field 1 = bucket PersistentArray. Entries are
// 4-field objects: key (raw), value (ref), next (ref), hash (raw).

const mapBuckets = 64

// NewMap allocates a PersistentHashMap.
func (h *Heap) NewMap() (Obj, error) {
	arr, err := h.NewArray(mapBuckets)
	if err != nil {
		return 0, err
	}
	h.mu.Lock()
	m, err := h.create("lib.util.persistent.PersistentHashMap", 1<<1, []uint64{0, uint64(arr)})
	h.mu.Unlock()
	if err != nil {
		return 0, err
	}
	h.Release(arr) // the map owns the bucket array now
	return m, nil
}

func pcjMix(k int64) uint64 {
	x := uint64(k)
	x ^= x >> 31
	x *= 0x7fb5d329728ea185
	x ^= x >> 27
	return x
}

// MapPut inserts or updates key → value.
func (h *Heap) MapPut(m Obj, key int64, value Obj) error {
	arr := Obj(h.getField(m, 1))
	slot := int(pcjMix(key) % mapBuckets)
	head := h.ArrayGet(arr, slot)
	for e := head; e != 0; e = Obj(h.getField(e, 2)) {
		if int64(h.getField(e, 0)) == key {
			h.mu.Lock()
			h.setField(e, 1, uint64(value))
			h.mu.Unlock()
			return nil
		}
	}
	h.mu.Lock()
	entry, err := h.create("lib.util.persistent.PersistentHashMap$Entry",
		(1<<1)|(1<<2), []uint64{uint64(key), uint64(value), uint64(head), pcjMix(key)})
	h.mu.Unlock()
	if err != nil {
		return err
	}
	h.ArraySet(arr, slot, entry)
	h.Release(entry) // the bucket chain owns it now
	h.mu.Lock()
	h.setField(m, 0, h.getField(m, 0)+1)
	h.mu.Unlock()
	return nil
}

// MapGet looks up a key.
func (h *Heap) MapGet(m Obj, key int64) (Obj, bool) {
	arr := Obj(h.getField(m, 1))
	slot := int(pcjMix(key) % mapBuckets)
	for e := h.ArrayGet(arr, slot); e != 0; e = Obj(h.getField(e, 2)) {
		if int64(h.getField(e, 0)) == key {
			return Obj(h.getField(e, 1)), true
		}
	}
	return 0, false
}

// MapLen reads the entry count.
func (h *Heap) MapLen(m Obj) int { return int(h.getField(m, 0)) }
