package vheap

import (
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
)

func nodeKlass(reg *klass.Registry) *klass.Klass {
	k, err := reg.Define(klass.MustInstance("VNode", nil,
		klass.Field{Name: "id", Type: layout.FTLong},
		klass.Field{Name: "next", Type: layout.FTRef},
	))
	if err != nil {
		panic(err)
	}
	return k
}

// handleRoots is a RootSet over a slice of handle slots.
type handleRoots struct{ slots []layout.Ref }

func (r *handleRoots) UpdateSlots(fn func(layout.Ref) layout.Ref) {
	for i, v := range r.slots {
		r.slots[i] = fn(v)
	}
}

func newTestHeap(t *testing.T) (*Heap, *klass.Klass) {
	t.Helper()
	reg := klass.NewRegistry()
	h := New(reg, Config{EdenSize: 64 << 10, SurvivorSize: 16 << 10, OldSize: 1 << 20})
	return h, nodeKlass(reg)
}

func TestAllocAndFieldAccess(t *testing.T) {
	h, node := newTestHeap(t)
	ref, err := h.Alloc(node, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !h.InEden(ref) {
		t.Fatal("fresh allocation not in eden")
	}
	h.SetWord(ref, layout.FieldOff(0), 99)
	if h.GetWord(ref, layout.FieldOff(0)) != 99 {
		t.Fatal("field store lost")
	}
	k, err := h.KlassOf(ref)
	if err != nil || k.Name != "VNode" {
		t.Fatalf("KlassOf = %v %v", k, err)
	}
}

func TestScavengeKeepsRootedChain(t *testing.T) {
	h, node := newTestHeap(t)
	// Build a chain a→b→c rooted at a handle; plus garbage.
	refs := make([]layout.Ref, 3)
	for i := range refs {
		refs[i], _ = h.Alloc(node, 0)
		h.SetWord(refs[i], layout.FieldOff(0), uint64(i+1))
	}
	h.SetWord(refs[0], layout.FieldOff(1), uint64(refs[1]))
	h.SetWord(refs[1], layout.FieldOff(1), uint64(refs[2]))
	for i := 0; i < 100; i++ {
		h.Alloc(node, 0) // garbage
	}
	roots := &handleRoots{slots: []layout.Ref{refs[0]}}
	if err := h.MinorGC(roots); err != nil {
		t.Fatal(err)
	}
	a := roots.slots[0]
	if a == refs[0] {
		t.Fatal("root slot not forwarded out of eden")
	}
	if h.GetWord(a, layout.FieldOff(0)) != 1 {
		t.Fatal("payload lost in scavenge")
	}
	b := layout.Ref(h.GetWord(a, layout.FieldOff(1)))
	c := layout.Ref(h.GetWord(b, layout.FieldOff(1)))
	if h.GetWord(b, layout.FieldOff(0)) != 2 || h.GetWord(c, layout.FieldOff(0)) != 3 {
		t.Fatal("chain broken by scavenge")
	}
	if h.UsedYoung() >= 104*node.SizeOf(0) {
		t.Fatalf("garbage not reclaimed: young = %d", h.UsedYoung())
	}
}

func TestPromotionAfterAging(t *testing.T) {
	h, node := newTestHeap(t)
	ref, _ := h.Alloc(node, 0)
	h.SetWord(ref, layout.FieldOff(0), 7)
	roots := &handleRoots{slots: []layout.Ref{ref}}
	for i := 0; i < PromoteAge+1; i++ {
		if err := h.MinorGC(roots); err != nil {
			t.Fatal(err)
		}
	}
	if !h.InOld(roots.slots[0]) {
		t.Fatalf("object not promoted after %d scavenges (at %#x)", PromoteAge+1, uint64(roots.slots[0]))
	}
	if h.GetWord(roots.slots[0], layout.FieldOff(0)) != 7 {
		t.Fatal("payload lost during promotion")
	}
}

func TestOldToYoungRemset(t *testing.T) {
	h, node := newTestHeap(t)
	oldObj, _ := h.Alloc(node, 0)
	roots := &handleRoots{slots: []layout.Ref{oldObj}}
	for i := 0; i < PromoteAge+1; i++ {
		h.MinorGC(roots)
	}
	oldObj = roots.slots[0]
	if !h.InOld(oldObj) {
		t.Fatal("setup: object not old")
	}
	// Old object points at a young one; only the remset keeps it alive.
	young, _ := h.Alloc(node, 0)
	h.SetWord(young, layout.FieldOff(0), 55)
	h.SetWord(oldObj, layout.FieldOff(1), uint64(young))
	h.RecordOldToYoung(oldObj + layout.Ref(layout.FieldOff(1)))
	if err := h.MinorGC(roots); err != nil {
		t.Fatal(err)
	}
	got := layout.Ref(h.GetWord(roots.slots[0], layout.FieldOff(1)))
	if got == young || got == layout.NullRef {
		t.Fatalf("old→young slot not forwarded: %#x", uint64(got))
	}
	if h.GetWord(got, layout.FieldOff(0)) != 55 {
		t.Fatal("young object lost despite remset")
	}
}

func TestFullGCCompactsOld(t *testing.T) {
	h, node := newTestHeap(t)
	// Promote a keeper and lots of garbage into old.
	keeper, _ := h.Alloc(node, 0)
	h.SetWord(keeper, layout.FieldOff(0), 123)
	roots := &handleRoots{slots: []layout.Ref{keeper}}
	for round := 0; round < 8; round++ {
		for i := 0; i < 50; i++ {
			if _, err := h.Alloc(node, 0); err != nil {
				h.MinorGC(roots)
			}
		}
		h.MinorGC(roots)
	}
	// Force everything young into old, then drop the garbage.
	usedBefore := h.UsedOld()
	if err := h.FullGC(roots); err != nil {
		t.Fatal(err)
	}
	if h.UsedOld() > usedBefore && usedBefore > 0 {
		t.Fatalf("full GC did not shrink old: %d → %d", usedBefore, h.UsedOld())
	}
	if h.UsedOld() != node.SizeOf(0) {
		t.Fatalf("old should hold exactly the keeper: %d", h.UsedOld())
	}
	if h.GetWord(roots.slots[0], layout.FieldOff(0)) != 123 {
		t.Fatal("keeper corrupted by full GC")
	}
}

func TestFullGCPreservesGraph(t *testing.T) {
	h, node := newTestHeap(t)
	// A cycle: a→b→a, rooted at a.
	a, _ := h.Alloc(node, 0)
	b, _ := h.Alloc(node, 0)
	h.SetWord(a, layout.FieldOff(0), 1)
	h.SetWord(b, layout.FieldOff(0), 2)
	h.SetWord(a, layout.FieldOff(1), uint64(b))
	h.SetWord(b, layout.FieldOff(1), uint64(a))
	roots := &handleRoots{slots: []layout.Ref{a}}
	if err := h.FullGC(roots); err != nil {
		t.Fatal(err)
	}
	na := roots.slots[0]
	nb := layout.Ref(h.GetWord(na, layout.FieldOff(1)))
	if h.GetWord(na, layout.FieldOff(0)) != 1 || h.GetWord(nb, layout.FieldOff(0)) != 2 {
		t.Fatal("cycle payloads lost")
	}
	if layout.Ref(h.GetWord(nb, layout.FieldOff(1))) != na {
		t.Fatal("cycle back-edge not fixed up")
	}
}

func TestBigObjectGoesStraightToOld(t *testing.T) {
	h, _ := newTestHeap(t)
	big := h.reg.PrimArray(layout.FTLong)
	ref, err := h.Alloc(big, (64<<10)/8) // eden is 64 KB: too big for half
	if err != nil {
		t.Fatal(err)
	}
	if !h.InOld(ref) {
		t.Fatal("oversized allocation should be tenured immediately")
	}
}

func TestAllocReturnsNeedGC(t *testing.T) {
	h, node := newTestHeap(t)
	var err error
	for i := 0; i < 1<<20; i++ {
		if _, err = h.Alloc(node, 0); err != nil {
			break
		}
	}
	if err != ErrNeedGC {
		t.Fatalf("err = %v, want ErrNeedGC", err)
	}
	if err := h.MinorGC(NoRoots{}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(node, 0); err != nil {
		t.Fatalf("alloc after scavenge: %v", err)
	}
}

func TestArrayScavenge(t *testing.T) {
	h, node := newTestHeap(t)
	reg := h.Registry()
	arr, _ := h.Alloc(reg.ObjArray("VNode"), 4)
	for i := 0; i < 4; i++ {
		n, _ := h.Alloc(node, 0)
		h.SetWord(n, layout.FieldOff(0), uint64(100+i))
		h.SetWord(arr, layout.ElemOff(layout.FTRef, i), uint64(n))
	}
	roots := &handleRoots{slots: []layout.Ref{arr}}
	if err := h.MinorGC(roots); err != nil {
		t.Fatal(err)
	}
	na := roots.slots[0]
	if h.ArrayLen(na) != 4 {
		t.Fatalf("array len after GC = %d", h.ArrayLen(na))
	}
	for i := 0; i < 4; i++ {
		el := layout.Ref(h.GetWord(na, layout.ElemOff(layout.FTRef, i)))
		if h.GetWord(el, layout.FieldOff(0)) != uint64(100+i) {
			t.Fatalf("element %d corrupted", i)
		}
	}
}
