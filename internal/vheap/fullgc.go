package vheap

import (
	"sort"

	"espresso/internal/layout"
	"espresso/internal/pheap"
)

// FullGC collects the whole volatile heap: a scavenge that tenures every
// young survivor, then a Lisp-2 sliding compaction of the old generation.
// Every external slot (handles, NVM-resident fields) is patched through
// the same RootSet the scavenge uses.
func (h *Heap) FullGC(roots RootSet) error {
	h.FullGCs++

	// Phase 0: empty the young generation into old so one compaction
	// covers everything (ParallelScavenge's full GC behaves the same way).
	if err := h.minorGCTenuringAll(roots); err != nil {
		return err
	}

	// Phase 1: mark the old generation from roots.
	marked := make(map[layout.Ref]int) // object → size
	var order []layout.Ref
	var stack []layout.Ref
	push := func(ref layout.Ref) {
		if ref != layout.NullRef && h.InOld(ref) {
			stack = append(stack, ref)
		}
	}
	roots.UpdateSlots(func(ref layout.Ref) layout.Ref { push(ref); return ref })
	for len(stack) > 0 {
		ref := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := marked[ref]; ok {
			continue
		}
		k, size, err := h.sizeOf(ref)
		if err != nil {
			return err
		}
		marked[ref] = size
		order = append(order, ref)
		m, off := h.mem(ref)
		pheap.RefSlots(memReader{m}, off, k, func(slotBoff int) {
			push(layout.Ref(le64(m[off+slotBoff:])))
		})
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	// Phase 2: compute sliding forwarding addresses.
	fwd := make(map[layout.Ref]layout.Ref, len(order))
	fill := h.oldBase
	for _, ref := range order {
		fwd[ref] = fill
		fill += layout.Ref(marked[ref])
	}
	forward := func(ref layout.Ref) layout.Ref {
		if nv, ok := fwd[ref]; ok {
			return nv
		}
		return ref
	}

	// Phase 3: update references (roots, remembered slots, object fields)
	// before anything moves.
	roots.UpdateSlots(forward)
	for _, ref := range order {
		k, _, _ := h.sizeOf(ref)
		m, off := h.mem(ref)
		pheap.RefSlots(memReader{m}, off, k, func(slotBoff int) {
			v := layout.Ref(le64(m[off+slotBoff:]))
			if nv := forward(v); nv != v {
				put64(m[off+slotBoff:], uint64(nv))
			}
		})
	}
	// Old slots recorded in the remembered set move with their objects.
	newRemset := make(map[layout.Ref]struct{}, len(h.oldToYoung))
	for slot := range h.oldToYoung {
		base := h.findContaining(order, marked, slot)
		if base == layout.NullRef {
			continue // the referencing object died
		}
		newRemset[forward(base)+(slot-base)] = struct{}{}
	}
	h.oldToYoung = newRemset

	// Phase 4: slide the objects (ascending order makes overlap safe).
	for _, ref := range order {
		size := marked[ref]
		dst := fwd[ref]
		if dst != ref {
			copy(h.old[int(dst-h.oldBase):int(dst-h.oldBase)+size],
				h.old[int(ref-h.oldBase):int(ref-h.oldBase)+size])
		}
	}
	h.oldTop = int(fill - h.oldBase)
	return nil
}

// minorGCTenuringAll runs a scavenge that promotes every survivor.
func (h *Heap) minorGCTenuringAll(roots RootSet) error {
	// Temporarily force promotion by draining with an age floor: simplest
	// is to run two scavenges — every object ages past the threshold —
	// but a direct way is to set survivor capacity to zero for one round.
	realSurv := h.survSize
	h.survSize = 0
	err := h.MinorGC(roots)
	h.survSize = realSurv
	return err
}

// findContaining locates the marked object whose body contains addr.
func (h *Heap) findContaining(order []layout.Ref, sizes map[layout.Ref]int, addr layout.Ref) layout.Ref {
	i := sort.Search(len(order), func(i int) bool { return order[i] > addr })
	if i == 0 {
		return layout.NullRef
	}
	base := order[i-1]
	if addr < base+layout.Ref(sizes[base]) {
		return base
	}
	return layout.NullRef
}
