package vheap

import (
	"espresso/internal/layout"
	"espresso/internal/pheap"
)

// MinorGC scavenges the young generation: live young objects are copied to
// the empty survivor space (or promoted to the old generation once their
// age exceeds PromoteAge, or when the survivor overflows), and every slot
// that referenced them — external roots, old-generation remembered slots —
// is patched to the new location.
func (h *Heap) MinorGC(roots RootSet) error {
	h.MinorGCs++
	toBase := h.survBase[h.toIdx]
	to := h.surv[h.toIdx]
	toTop := 0

	var scanList []layout.Ref // copied objects pending field scan
	var gcErr error

	// evacuate copies one young object (or returns its existing forward).
	var evacuate func(ref layout.Ref) layout.Ref
	evacuate = func(ref layout.Ref) layout.Ref {
		mark := h.GetWord(ref, layout.MarkWordOff)
		if layout.MarkFlags(mark)&flagForwarded != 0 {
			return layout.Ref(mark >> 8)
		}
		k, size, err := h.sizeOf(ref)
		if err != nil {
			if gcErr == nil {
				gcErr = err
			}
			return ref
		}
		age := int(layout.MarkFlags(mark) & ageMask)
		var newRef layout.Ref
		if age+1 >= PromoteAge || toTop+size > h.survSize {
			// Tenure into the old generation.
			promoted, err := h.allocOld(k, arrayLenOf(h, ref, k), size)
			if err != nil {
				if gcErr == nil {
					gcErr = err
				}
				return ref
			}
			src, soff := h.mem(ref)
			dst, doff := h.mem(promoted)
			copy(dst[doff:doff+size], src[soff:soff+size])
			h.SetWord(promoted, layout.MarkWordOff, layout.MarkWord(0, 0))
			newRef = promoted
			h.PromotedBytes += uint64(size)
		} else {
			src, soff := h.mem(ref)
			copy(to[toTop:toTop+size], src[soff:soff+size])
			newRef = toBase + layout.Ref(toTop)
			toTop += size
			h.SetWord(newRef, layout.MarkWordOff, layout.MarkWord(0, uint8(age+1)))
			h.CopiedBytes += uint64(size)
		}
		// Leave a forwarding pointer in the original.
		h.SetWord(ref, layout.MarkWordOff, uint64(newRef)<<8|flagForwarded)
		scanList = append(scanList, newRef)
		return newRef
	}

	update := func(ref layout.Ref) layout.Ref {
		if ref != layout.NullRef && h.InYoung(ref) {
			return evacuate(ref)
		}
		return ref
	}

	// Roots: external slots, then the old→young remembered set.
	roots.UpdateSlots(update)
	newRemset := make(map[layout.Ref]struct{})
	for slot := range h.oldToYoung {
		m, off := h.mem(slot)
		v := layout.Ref(le64(m[off:]))
		nv := update(v)
		if nv != v {
			put64(m[off:], uint64(nv))
		}
		if nv != layout.NullRef && h.InYoung(nv) {
			newRemset[slot] = struct{}{}
		}
	}
	h.oldToYoung = newRemset

	// Cheney scan: fields of copied/promoted objects. Promoted objects'
	// young refs re-enter the remembered set.
	for len(scanList) > 0 {
		ref := scanList[len(scanList)-1]
		scanList = scanList[:len(scanList)-1]
		k, _, err := h.sizeOf(ref)
		if err != nil {
			return err
		}
		m, off := h.mem(ref)
		pheap.RefSlots(memReader{m}, off, k, func(slotBoff int) {
			v := layout.Ref(le64(m[off+slotBoff:]))
			nv := update(v)
			if nv != v {
				put64(m[off+slotBoff:], uint64(nv))
			}
			if h.InOld(ref) && nv != layout.NullRef && h.InYoung(nv) {
				h.oldToYoung[ref+layout.Ref(slotBoff)] = struct{}{}
			}
		})
	}
	if gcErr != nil {
		return gcErr
	}

	// Reset eden and swap survivor roles.
	h.edenTop = 0
	h.survTop = toTop
	h.toIdx = 1 - h.toIdx
	return nil
}

func arrayLenOf(h *Heap, ref layout.Ref, k interface{ IsArray() bool }) int {
	if k.IsArray() {
		return h.ArrayLen(ref)
	}
	return 0
}

// memReader adapts a byte slice to the ReadU64 interface pheap.RefSlots
// expects.
type memReader struct{ m []byte }

func (r memReader) ReadU64(off int) uint64 { return le64(r.m[off:]) }

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func put64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
