// Package vheap implements the volatile side of the ParallelScavenge heap
// the paper extends (§3.1): a young generation (eden plus two survivor
// semispaces) collected by copying scavenges with age-based promotion, and
// an old generation collected by sliding mark-compact. PJH is "an
// independent Persistent Space against the original PSHeap"; this package
// is that original heap, giving `new` objects somewhere to live so mixed
// DRAM/NVM object graphs, alias Klasses, and the safety levels are real.
//
// DRAM needs no crash consistency, so the collectors here are the plain
// textbook algorithms; cross-space references are tracked with precise
// remembered sets maintained by the runtime's write barrier.
package vheap

import (
	"encoding/binary"
	"errors"
	"fmt"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/pheap"
)

// ErrNeedGC reports an allocation that should be retried after a minor
// collection.
var ErrNeedGC = errors.New("vheap: young generation full")

// ErrOldFull reports an allocation that should be retried after a full
// collection.
var ErrOldFull = errors.New("vheap: old generation full")

// ErrOutOfMemory reports exhaustion even after collection.
var ErrOutOfMemory = errors.New("vheap: out of memory")

// Mark-word flag bits (the low byte layout.MarkWord reserves).
const (
	flagForwarded = 0x80 // mark word holds a forwarding address
	ageMask       = 0x0f
	// PromoteAge is the survivor round count after which an object is
	// tenured into the old generation.
	PromoteAge = 3
)

// Config sizes the heap. Zero values choose defaults.
type Config struct {
	EdenSize     int // default 4 MB
	SurvivorSize int // per semispace, default 512 KB
	OldSize      int // default 16 MB
}

// RootSet enumerates and patches the slots outside the volatile heap that
// may hold references into it: runtime handles and NVM-resident fields
// (the persistent-to-volatile remembered set). The collector calls fn on
// every slot value; the implementation must store the result back.
type RootSet interface {
	UpdateSlots(fn func(layout.Ref) layout.Ref)
}

// NoRoots is an empty RootSet.
type NoRoots struct{}

// UpdateSlots is a no-op.
func (NoRoots) UpdateSlots(func(layout.Ref) layout.Ref) {}

// Heap is the volatile two-generation heap.
type Heap struct {
	reg *klass.Registry

	eden     []byte
	surv     [2][]byte // survivor semispaces; toIdx names the empty one
	old      []byte
	edenBase layout.Ref
	survBase [2]layout.Ref
	oldBase  layout.Ref
	edenTop  int
	survTop  int // fill of the *from* space after the last scavenge
	oldTop   int
	toIdx    int
	edenSize int
	survSize int
	oldSize  int

	// oldToYoung is the precise remembered set: device-wide virtual
	// addresses of old-generation slots currently holding young refs.
	oldToYoung map[layout.Ref]struct{}

	// Stats.
	MinorGCs, FullGCs int
	PromotedBytes     uint64
	CopiedBytes       uint64
}

// New creates an empty heap.
func New(reg *klass.Registry, cfg Config) *Heap {
	if cfg.EdenSize == 0 {
		cfg.EdenSize = 4 << 20
	}
	if cfg.SurvivorSize == 0 {
		cfg.SurvivorSize = 512 << 10
	}
	if cfg.OldSize == 0 {
		cfg.OldSize = 16 << 20
	}
	h := &Heap{
		reg:        reg,
		eden:       make([]byte, cfg.EdenSize),
		old:        make([]byte, cfg.OldSize),
		edenSize:   cfg.EdenSize,
		survSize:   cfg.SurvivorSize,
		oldSize:    cfg.OldSize,
		edenBase:   layout.YoungBase,
		oldBase:    layout.OldBase,
		oldToYoung: make(map[layout.Ref]struct{}),
		toIdx:      1,
	}
	h.surv[0] = make([]byte, cfg.SurvivorSize)
	h.surv[1] = make([]byte, cfg.SurvivorSize)
	h.survBase[0] = layout.YoungBase + layout.Ref(cfg.EdenSize)
	h.survBase[1] = h.survBase[0] + layout.Ref(cfg.SurvivorSize)
	return h
}

// Registry returns the klass registry.
func (h *Heap) Registry() *klass.Registry { return h.reg }

// InEden reports whether ref lies in eden.
func (h *Heap) InEden(ref layout.Ref) bool {
	return ref >= h.edenBase && ref < h.edenBase+layout.Ref(h.edenSize)
}

// InSurvivor reports whether ref lies in either survivor space.
func (h *Heap) InSurvivor(ref layout.Ref) bool {
	return (ref >= h.survBase[0] && ref < h.survBase[0]+layout.Ref(h.survSize)) ||
		(ref >= h.survBase[1] && ref < h.survBase[1]+layout.Ref(h.survSize))
}

// InYoung reports whether ref lies in the young generation.
func (h *Heap) InYoung(ref layout.Ref) bool { return h.InEden(ref) || h.InSurvivor(ref) }

// InOld reports whether ref lies in the old generation.
func (h *Heap) InOld(ref layout.Ref) bool {
	return ref >= h.oldBase && ref < h.oldBase+layout.Ref(h.oldSize)
}

// Contains reports whether ref lies anywhere in the volatile heap.
func (h *Heap) Contains(ref layout.Ref) bool { return h.InYoung(ref) || h.InOld(ref) }

// mem resolves a ref to its backing slice and byte offset.
func (h *Heap) mem(ref layout.Ref) ([]byte, int) {
	switch {
	case h.InEden(ref):
		return h.eden, int(ref - h.edenBase)
	case ref >= h.survBase[0] && ref < h.survBase[0]+layout.Ref(h.survSize):
		return h.surv[0], int(ref - h.survBase[0])
	case ref >= h.survBase[1] && ref < h.survBase[1]+layout.Ref(h.survSize):
		return h.surv[1], int(ref - h.survBase[1])
	case h.InOld(ref):
		return h.old, int(ref - h.oldBase)
	}
	panic(fmt.Sprintf("vheap: address %#x outside volatile heap", uint64(ref)))
}

// GetWord loads the 8-byte slot at byte offset boff of the object at ref.
func (h *Heap) GetWord(ref layout.Ref, boff int) uint64 {
	m, off := h.mem(ref)
	return binary.LittleEndian.Uint64(m[off+boff:])
}

// SetWord stores the 8-byte slot at byte offset boff of the object at ref.
func (h *Heap) SetWord(ref layout.Ref, boff int, v uint64) {
	m, off := h.mem(ref)
	binary.LittleEndian.PutUint64(m[off+boff:], v)
}

// Bytes returns a window over the n bytes at byte offset boff of the
// object at ref, backed by the heap's own storage. Callers may read or
// write through it directly — DRAM needs no flush accounting — which is
// what makes bulk string/array copies one memmove instead of a per-byte
// word loop.
func (h *Heap) Bytes(ref layout.Ref, boff, n int) []byte {
	m, off := h.mem(ref)
	return m[off+boff : off+boff+n : off+boff+n]
}

// KlassOf resolves the klass of the object at ref.
func (h *Heap) KlassOf(ref layout.Ref) (*klass.Klass, error) {
	kaddr := layout.Ref(h.GetWord(ref, layout.KlassWordOff))
	k, ok := h.reg.ByMetaAddr(kaddr)
	if !ok {
		return nil, fmt.Errorf("vheap: object %#x has dangling klass word %#x", uint64(ref), uint64(kaddr))
	}
	return k, nil
}

// ArrayLen reads the length word of the array at ref.
func (h *Heap) ArrayLen(ref layout.Ref) int { return int(h.GetWord(ref, layout.ArrayLenOff)) }

// sizeOf decodes an object's klass and total size.
func (h *Heap) sizeOf(ref layout.Ref) (*klass.Klass, int, error) {
	k, err := h.KlassOf(ref)
	if err != nil {
		return nil, 0, err
	}
	n := 0
	if k.IsArray() {
		n = h.ArrayLen(ref)
	}
	return k, k.SizeOf(n), nil
}

// Alloc allocates in eden. It returns ErrNeedGC when eden is full so the
// runtime can run a scavenge and retry; objects larger than eden go
// straight to the old generation.
func (h *Heap) Alloc(k *klass.Klass, arrayLen int) (layout.Ref, error) {
	size := k.SizeOf(arrayLen)
	if size > h.edenSize/2 {
		return h.allocOld(k, arrayLen, size)
	}
	if h.edenTop+size > h.edenSize {
		return 0, ErrNeedGC
	}
	off := h.edenTop
	h.edenTop += size
	clear(h.eden[off : off+size])
	ref := h.edenBase + layout.Ref(off)
	h.initHeader(ref, k, arrayLen)
	return ref, nil
}

func (h *Heap) allocOld(k *klass.Klass, arrayLen, size int) (layout.Ref, error) {
	if h.oldTop+size > h.oldSize {
		return 0, ErrOldFull
	}
	off := h.oldTop
	h.oldTop += size
	clear(h.old[off : off+size])
	ref := h.oldBase + layout.Ref(off)
	h.initHeader(ref, k, arrayLen)
	return ref, nil
}

func (h *Heap) initHeader(ref layout.Ref, k *klass.Klass, arrayLen int) {
	h.SetWord(ref, layout.MarkWordOff, layout.MarkWord(0, 0))
	h.SetWord(ref, layout.KlassWordOff, uint64(h.reg.MetaAddr(k)))
	if k.IsArray() {
		h.SetWord(ref, layout.ArrayLenOff, uint64(arrayLen))
	}
}

// RecordOldToYoung notes that the old-generation slot at the given virtual
// address now holds a young reference (called by the runtime write
// barrier — the card-mark analog).
func (h *Heap) RecordOldToYoung(slotAddr layout.Ref) {
	h.oldToYoung[slotAddr] = struct{}{}
}

// UsedYoung reports allocated young bytes (eden plus the live survivor).
func (h *Heap) UsedYoung() int { return h.edenTop + h.survTop }

// UsedOld reports allocated old bytes.
func (h *Heap) UsedOld() int { return h.oldTop }

// ForEachObject walks every object in the volatile heap (eden, the live
// survivor space, and the old generation). The persistent collector uses
// it to find DRAM slots referencing NVM objects.
func (h *Heap) ForEachObject(fn func(ref layout.Ref, k *klass.Klass, size int) bool) error {
	walk := func(base layout.Ref, limit int) error {
		off := 0
		for off < limit {
			ref := base + layout.Ref(off)
			k, size, err := h.sizeOf(ref)
			if err != nil {
				return err
			}
			if !fn(ref, k, size) {
				return nil
			}
			off += size
		}
		return nil
	}
	if err := walk(h.edenBase, h.edenTop); err != nil {
		return err
	}
	if err := walk(h.survBase[1-h.toIdx], h.survTop); err != nil {
		return err
	}
	return walk(h.oldBase, h.oldTop)
}

// RefSlotsOf invokes fn with the absolute slot address and current value
// of every reference slot of the object at ref.
func (h *Heap) RefSlotsOf(ref layout.Ref, k *klass.Klass, fn func(slotAddr layout.Ref, val layout.Ref)) {
	m, off := h.mem(ref)
	pheap.RefSlots(memReader{m}, off, k, func(slotBoff int) {
		fn(ref+layout.Ref(slotBoff), layout.Ref(le64(m[off+slotBoff:])))
	})
}
