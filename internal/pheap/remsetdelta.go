package pheap

import (
	"sync"

	"espresso/internal/layout"
	"espresso/internal/telemetry"
)

// Per-mutator remembered-set delta buffers — the write-combining half of
// the reference-store barrier. The runtime above (internal/core) keeps a
// precise NVM→DRAM remembered set; maintaining it eagerly would put a
// shared map mutation (and its lock) on every hot reference store. So the
// barrier instead appends a RemsetDelta to a buffer owned by the storing
// mutator — the same owner-append/collector-drain lifecycle as the SATB
// buffers next door — and the shared set is only touched at publication
// points:
//
//   - transaction commit (ptx.Tx publishes its batch, aborts discard it);
//   - safepoint entry (PrepareForCollection drains every registered
//     buffer with the world stopped, so both collectors observe a
//     complete remembered set);
//   - buffer overflow (the owner drains its own buffer, amortized).
//
// The heap cannot interpret the deltas itself — the remembered set and
// the volatile-address predicate live in core — so core installs a
// RemsetSink per heap and the buffers drain through it.

// RemsetDelta is one pending remembered-set mutation: the absolute slot
// address and whether the slot now holds a volatile reference (Add) or a
// persistent/null one (Remove). Deltas for one slot are applied in append
// order, so the last store wins, exactly as eager updates would.
type RemsetDelta struct {
	Slot layout.Ref
	Add  bool
}

// RemsetSink consumes published deltas and classifies references; the
// runtime that owns the remembered set installs one per heap with
// SetRemsetSink. Implementations must be safe for concurrent use: owners
// publish on overflow while collectors publish at safepoints.
type RemsetSink interface {
	// PublishRemsetDeltas applies a batch to the shared remembered set in
	// slice order.
	PublishRemsetDeltas([]RemsetDelta)
	// RefIsVolatile reports whether ref points into the volatile heap —
	// the membership predicate heap-level writers (ptx) cannot evaluate
	// themselves.
	RefIsVolatile(ref layout.Ref) bool
}

// RemsetDeltaOverflow is the per-buffer record count at which the owner
// publishes its own buffer instead of letting it grow — the third
// publication point. Large enough that publication cost (one shard-locked
// map op per record) amortizes to noise per store; small enough that a
// buffer never holds more than a few cache lines of pending records.
const RemsetDeltaOverflow = 512

// RemsetDeltaBuffer collects remembered-set deltas for one mutator. The
// owning mutator appends; publication points drain. The mutex is
// buffer-local — appends contend with nothing except the moment of a
// safepoint drain, so the hot store path touches no shared lock and no
// shared cache line for remset maintenance.
type RemsetDeltaBuffer struct {
	mu     sync.Mutex
	deltas []RemsetDelta
	h      *Heap // overflow publication target
}

// Record appends one delta; on overflow the owner publishes its own
// buffer through the heap's sink (amortized, never on the common path).
// Use RecordStore when the delta describes a device store the caller is
// about to perform — Record alone gives a drain no guarantee about
// whether the store has landed.
func (b *RemsetDeltaBuffer) Record(slot layout.Ref, add bool) {
	b.RecordStore(slot, add, nil)
}

// RecordStore performs store (when non-nil) and appends the delta as one
// step that no drain can split: both happen under the buffer mutex, so
// by the time any drain — a safepoint publication, a collector, or this
// buffer's own overflow — observes the delta, the store it describes is
// on the device. Publication re-derives remembered-set membership from
// the slot's current value, which is only sound with that ordering: a
// delta drained before its store landed would re-derive from the stale
// value and lose the edge forever. The mutex is buffer-local, so the
// hot path still contends with nothing but the moment of a drain.
func (b *RemsetDeltaBuffer) RecordStore(slot layout.Ref, add bool, store func()) {
	b.mu.Lock()
	if store != nil {
		store()
	}
	b.deltas = append(b.deltas, RemsetDelta{Slot: slot, Add: add})
	overflow := len(b.deltas) >= RemsetDeltaOverflow
	b.mu.Unlock()
	if overflow {
		b.Publish()
	}
}

// Pending reports how many deltas are buffered (diagnostics, heaptool).
func (b *RemsetDeltaBuffer) Pending() int {
	b.mu.Lock()
	n := len(b.deltas)
	b.mu.Unlock()
	return n
}

// drain moves the buffered deltas out, leaving the buffer empty.
func (b *RemsetDeltaBuffer) drain() []RemsetDelta {
	b.mu.Lock()
	ds := b.deltas
	b.deltas = nil
	b.mu.Unlock()
	return ds
}

// Publish drains this buffer into the heap's sink. Without a sink (a
// standalone pheap, heaptool) the deltas are dropped — there is no
// remembered set to maintain.
func (b *RemsetDeltaBuffer) Publish() {
	ds := b.drain()
	if len(ds) == 0 {
		return
	}
	// Publication is a cold path (commit / safepoint / every-512 overflow)
	// and may run on a collector draining another owner's buffer, so the
	// counts go to the registry's shared cell with atomic ops.
	if sc := b.h.tel.Shared(); sc != nil {
		sc.AtomicInc(telemetry.CtrRemsetPublish)
		sc.AtomicAdd(telemetry.CtrRemsetDeltas, uint64(len(ds)))
	}
	if sink := b.h.RemsetSink(); sink != nil {
		sink.PublishRemsetDeltas(ds)
	}
}

// SetRemsetSink installs the remembered-set consumer for this heap. The
// runtime calls it when the heap is attached, before any mutator runs;
// the atomic store keeps late readers (overflow publishes on other
// goroutines) race-free regardless.
func (h *Heap) SetRemsetSink(s RemsetSink) {
	if s != nil {
		h.remsetSink.Store(&s)
	}
}

// RemsetSink returns the installed sink, or nil.
func (h *Heap) RemsetSink() RemsetSink {
	if p := h.remsetSink.Load(); p != nil {
		return *p
	}
	return nil
}

// NewRemsetDeltaBuffer registers a fresh per-mutator delta buffer with
// the heap, beside the mutator's SATB buffer.
func (h *Heap) NewRemsetDeltaBuffer() *RemsetDeltaBuffer {
	b := &RemsetDeltaBuffer{h: h}
	h.remsetMu.Lock()
	h.remsetBuffers = append(h.remsetBuffers, b)
	h.remsetMu.Unlock()
	return b
}

// ReleaseRemsetDeltaBuffer unregisters b, publishing anything still
// pending so a mutator retiring between safepoints cannot lose deltas.
func (h *Heap) ReleaseRemsetDeltaBuffer(b *RemsetDeltaBuffer) {
	if b == nil {
		return
	}
	h.remsetMu.Lock()
	for i, other := range h.remsetBuffers {
		if other == b {
			h.remsetBuffers = append(h.remsetBuffers[:i], h.remsetBuffers[i+1:]...)
			break
		}
	}
	h.remsetMu.Unlock()
	b.Publish()
}

// remsetDefaultShards is the number of shared fallback buffers. Stores
// outside any mutator context (the Runtime facade path) ride these, and
// RecordStore holds the buffer mutex across the device store — one
// buffer would serialize every facade-routed ref store on the heap,
// a regression against the old 64-way-sharded eager set. Sharding by
// slot restores the spread; deltas for one slot landing in different
// shards across calls is fine, because publication re-derives membership
// from the device rather than trusting cross-buffer order.
const remsetDefaultShards = 16

// DefaultRemsetDeltaBuffer returns the heap's shared fallback buffer for
// slot, used by reference stores that run outside any mutator context
// (the analog of the default SATB buffer, sharded by slot address). The
// lookup is one atomic load after the shard's first use.
func (h *Heap) DefaultRemsetDeltaBuffer(slot layout.Ref) *RemsetDeltaBuffer {
	s := &h.remsetDefault[(uint64(slot)*0x9e3779b97f4a7c15)>>60]
	if b := s.Load(); b != nil {
		return b
	}
	h.remsetMu.Lock()
	defer h.remsetMu.Unlock()
	if b := s.Load(); b != nil {
		return b
	}
	b := &RemsetDeltaBuffer{h: h}
	h.remsetBuffers = append(h.remsetBuffers, b)
	s.Store(b)
	return b
}

// PublishRemsetDeltas drains every registered buffer through the sink.
// PrepareForCollection calls it with the world stopped — the safepoint
// publication point that makes the shared remembered set complete before
// either collector consults it — and the runtime calls it before
// volatile collections, which run under the safepoint read lock (the
// per-buffer mutex makes a collector drain safe against a concurrent
// owner append).
func (h *Heap) PublishRemsetDeltas() {
	h.remsetMu.Lock()
	buffers := append([]*RemsetDeltaBuffer(nil), h.remsetBuffers...)
	h.remsetMu.Unlock()
	for _, b := range buffers {
		b.Publish()
	}
}

// PublishRemsetDeltasShard drains the registered buffers whose registry
// index ≡ worker (mod workers) — the parallel-marking analog of
// PublishRemsetDeltas, letting the worker pool spread the publication
// work the same way DrainSATBShard spreads the SATB buffers. Sound
// because the sink contract requires concurrent safety and publication
// re-derives membership per slot from the device, so shard order across
// workers does not matter.
func (h *Heap) PublishRemsetDeltasShard(worker, workers int) {
	h.remsetMu.Lock()
	buffers := append([]*RemsetDeltaBuffer(nil), h.remsetBuffers...)
	h.remsetMu.Unlock()
	for i := worker; i < len(buffers); i += workers {
		buffers[i].Publish()
	}
}

// RemsetDeltaStats reports, per registered buffer, the number of pending
// deltas (diagnostics: heaptool inspect, tests).
func (h *Heap) RemsetDeltaStats() []int {
	h.remsetMu.Lock()
	buffers := append([]*RemsetDeltaBuffer(nil), h.remsetBuffers...)
	h.remsetMu.Unlock()
	counts := make([]int, len(buffers))
	for i, b := range buffers {
		counts[i] = b.Pending()
	}
	return counts
}
